package sid

import (
	"reflect"
	"testing"
)

// TestFleetMatchesStandaloneDeployments pins the facade fleet's isolation
// contract: every field behaves exactly as the same deployment run alone,
// and the aggregate stats are the per-field sums.
func TestFleetMatchesStandaloneDeployments(t *testing.T) {
	const dur = 200
	mkCfg := func(seed int64) Config {
		cfg := DefaultDeployment()
		cfg.Rows, cfg.Cols = 3, 3
		cfg.Seed = seed
		return cfg
	}
	seeds := []int64{101, 102, 103}

	solo := make([]*Deployment, len(seeds))
	for i, seed := range seeds {
		dep, err := NewDeployment(mkCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.AddIntruder(Intruder{SpeedKnots: 10, CrossAt: 100}); err != nil {
			t.Fatal(err)
		}
		if err := dep.Run(dur); err != nil {
			t.Fatal(err)
		}
		solo[i] = dep
	}

	var fc FleetConfig
	for _, seed := range seeds {
		fc.Deployments = append(fc.Deployments, mkCfg(seed))
	}
	fleet, err := NewFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Size() != len(seeds) {
		t.Fatalf("fleet size %d, want %d", fleet.Size(), len(seeds))
	}
	for i := range seeds {
		if err := fleet.AddIntruder(i, Intruder{SpeedKnots: 10, CrossAt: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Run(dur); err != nil {
		t.Fatal(err)
	}

	var wantStats Stats
	for i := range seeds {
		got := fleet.Field(i).Detections()
		want := solo[i].Detections()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("field %d: fleet detections differ from standalone deployment", i)
		}
		s := solo[i].Stats()
		wantStats.ClustersFormed += s.ClustersFormed
		wantStats.ClustersCancelled += s.ClustersCancelled
		wantStats.FramesSent += s.FramesSent
		wantStats.FramesLost += s.FramesLost
		wantStats.Retransmissions += s.Retransmissions
		wantStats.Acks += s.Acks
		wantStats.ReliableDropped += s.ReliableDropped
		wantStats.Failovers += s.Failovers
		wantStats.SendErrors += s.SendErrors
	}
	if got := fleet.Stats(); got != wantStats {
		t.Errorf("fleet stats %+v, want per-field sum %+v", got, wantStats)
	}
	for _, det := range fleet.Detections() {
		if det.Field < 0 || det.Field >= fleet.Size() {
			t.Errorf("detection tagged with out-of-range field %d", det.Field)
		}
	}
	if err := fleet.AddIntruder(99, Intruder{SpeedKnots: 5}); err == nil {
		t.Error("AddIntruder on missing field accepted")
	}
}
