package sid

import (
	"reflect"
	"strings"
	"testing"
)

// TestFleetMatchesStandaloneDeployments pins the facade fleet's isolation
// contract: every field behaves exactly as the same deployment run alone,
// and the aggregate stats are the per-field sums.
func TestFleetMatchesStandaloneDeployments(t *testing.T) {
	const dur = 200
	mkCfg := func(seed int64) Config {
		cfg := DefaultDeployment()
		cfg.Rows, cfg.Cols = 3, 3
		cfg.Seed = seed
		return cfg
	}
	seeds := []int64{101, 102, 103}

	solo := make([]*Deployment, len(seeds))
	for i, seed := range seeds {
		dep, err := NewDeployment(mkCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.AddIntruder(Intruder{SpeedKnots: 10, CrossAt: 100}); err != nil {
			t.Fatal(err)
		}
		if err := dep.Run(dur); err != nil {
			t.Fatal(err)
		}
		solo[i] = dep
	}

	var fc FleetConfig
	for _, seed := range seeds {
		fc.Deployments = append(fc.Deployments, mkCfg(seed))
	}
	fleet, err := NewFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Size() != len(seeds) {
		t.Fatalf("fleet size %d, want %d", fleet.Size(), len(seeds))
	}
	for i := range seeds {
		if err := fleet.AddIntruder(i, Intruder{SpeedKnots: 10, CrossAt: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Run(dur); err != nil {
		t.Fatal(err)
	}

	var wantStats Stats
	for i := range seeds {
		got := fleet.Field(i).Detections()
		want := solo[i].Detections()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("field %d: fleet detections differ from standalone deployment", i)
		}
		s := solo[i].Stats()
		wantStats.ClustersFormed += s.ClustersFormed
		wantStats.ClustersCancelled += s.ClustersCancelled
		wantStats.FramesSent += s.FramesSent
		wantStats.FramesLost += s.FramesLost
		wantStats.Retransmissions += s.Retransmissions
		wantStats.Acks += s.Acks
		wantStats.ReliableDropped += s.ReliableDropped
		wantStats.Failovers += s.Failovers
		wantStats.SendErrors += s.SendErrors
	}
	if got := fleet.Stats(); got != wantStats {
		t.Errorf("fleet stats %+v, want per-field sum %+v", got, wantStats)
	}
	for _, det := range fleet.Detections() {
		if det.Field < 0 || det.Field >= fleet.Size() {
			t.Errorf("detection tagged with out-of-range field %d", det.Field)
		}
	}
	if err := fleet.AddIntruder(99, Intruder{SpeedKnots: 5}); err == nil {
		t.Error("AddIntruder on missing field accepted")
	}
}

// TestFleetErrorPaths pins the facade's error surface: empty fleets and
// invalid members are rejected at construction with the failing field
// attributed by index, and out-of-range field access is safe.
func TestFleetErrorPaths(t *testing.T) {
	if _, err := NewFleet(FleetConfig{}); err == nil {
		t.Error("empty Deployments accepted")
	}

	bad := DefaultDeployment()
	bad.Rows = 0
	_, err := NewFleet(FleetConfig{Deployments: []Config{DefaultDeployment(), bad}})
	if err == nil {
		t.Fatal("invalid member deployment accepted")
	}
	if !strings.Contains(err.Error(), "deployment 1") {
		t.Errorf("construction error not attributed to the failing index: %v", err)
	}

	fleet, err := NewFleet(FleetConfig{Deployments: []Config{DefaultDeployment()}})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 1, 99} {
		if d := fleet.Field(i); d != nil {
			t.Errorf("Field(%d) returned a deployment for an out-of-range index", i)
		}
		if err := fleet.AddIntruder(i, Intruder{SpeedKnots: 10}); err == nil {
			t.Errorf("AddIntruder(%d) accepted an out-of-range index", i)
		}
	}
	if d := fleet.Field(0); d == nil {
		t.Error("Field(0) returned nil for a valid index")
	}
	if err := fleet.AddIntruder(0, Intruder{SpeedKnots: 0}); err == nil {
		t.Error("zero-speed intruder accepted")
	}
	if err := fleet.AddIntruder(0, Intruder{SpeedKnots: -3}); err == nil {
		t.Error("negative-speed intruder accepted")
	}
}

// TestConfigValidate pins the facade validation entry point: the zero
// Config is rejected, the default accepted, and single-field breakage is
// caught.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero Config validated")
	}
	if err := DefaultDeployment().Validate(); err != nil {
		t.Errorf("DefaultDeployment invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"zero rows":       func(c *Config) { c.Rows = 0 },
		"negative loss":   func(c *Config) { c.PacketLoss = -0.1 },
		"negative wave":   func(c *Config) { c.SignificantWaveHeightM = -1 },
		"zero period":     func(c *Config) { c.PeakPeriodS = 0 },
		"negative worker": func(c *Config) { c.Workers = -1 },
	}
	for name, mutate := range cases {
		cfg := DefaultDeployment()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}
