package sid

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (each regenerates the artifact at a reduced trial count and
// reports the headline numbers as custom metrics), plus ablation benches
// for the design choices DESIGN.md calls out and micro-benchmarks of the
// hot substrates. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-resolution artifacts are produced by cmd/sidbench.

import (
	"testing"

	"github.com/sid-wsn/sid/internal/cluster"
	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/dsp"
	"github.com/sid-wsn/sid/internal/eval"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	isid "github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/sim"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// --- Experiment benches: one per paper artifact ---

func BenchmarkFig5OceanWaves(b *testing.B) {
	sc := eval.DefaultScenario()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		r, err := eval.Fig5(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Z.Std, "zstd-counts")
	}
}

func BenchmarkFig6STFT(b *testing.B) {
	sc := eval.DefaultScenario()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		r, err := eval.Fig6N(sc, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanShipWakeBandEnergyRatio, "wakeband-ratio")
	}
}

func BenchmarkFig7Wavelet(b *testing.B) {
	sc := eval.DefaultScenario()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		r, err := eval.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.LowBandFractionDuring, "lowband-%")
	}
}

func BenchmarkFig8Filter(b *testing.B) {
	sc := eval.DefaultScenario()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		r, err := eval.Fig8(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DisturbanceRatio, "disturbance-x")
	}
}

func BenchmarkFig11NodeLevel(b *testing.B) {
	cfg := eval.DefaultFig11Config()
	cfg.Ms = []float64{2}
	cfg.AFs = []float64{0.6}
	cfg.Trials = 2
	for i := 0; i < b.N; i++ {
		cfg.Scenario.Seed = int64(i + 1)
		pts, err := eval.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Ratio, "ratio@M2af60")
	}
}

func BenchmarkTable1NoShip(b *testing.B) {
	cfg := eval.DefaultTableConfig()
	cfg.Ms = []float64{2}
	cfg.RowsSet = []int{4}
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		cells, err := eval.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].C, "C-noship")
	}
}

func BenchmarkTable2Ship(b *testing.B) {
	cfg := eval.DefaultTableConfig()
	cfg.Ms = []float64{2}
	cfg.RowsSet = []int{4}
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		cells, err := eval.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].C, "C-ship")
	}
}

func BenchmarkFig12Speed(b *testing.B) {
	cfg := eval.DefaultFig12Config()
	cfg.SpeedsKn = []float64{10}
	cfg.AnglesDeg = []float64{10}
	cfg.RunsPerAngle = 1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rows, err := eval.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Runs > 0 {
			b.ReportMetric(rows[0].MeanKn, "est-kn")
		}
	}
}

// --- Ablation benches (design choices from DESIGN.md §5) ---

// ablationScenario runs one node-level detection trial and reports whether
// the wake was detected and how many false events fired.
func ablationDetect(b *testing.B, mutate func(*detect.Config)) (detected, falseEvents float64) {
	b.Helper()
	sc := eval.DefaultScenario()
	sc.Seed = int64(b.N) // varies across runs, deterministic within
	samples, ship, err := sc.Record(400, 260)
	if err != nil {
		b.Fatal(err)
	}
	_ = ship
	cfg := detect.DefaultConfig()
	mutate(&cfg)
	det, err := detect.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var wake, falseN float64
	last := -1e9
	for _, ws := range det.ProcessSeries(0, sensor.ZSeries(samples)) {
		if !det.Detected(ws) {
			continue
		}
		if ws.Onset >= 255 && ws.Onset <= 285 {
			wake = 1
		} else if ws.Onset-last > 15 {
			falseN++
			last = ws.Onset
		} else {
			last = ws.Onset
		}
	}
	return wake, falseN
}

func BenchmarkAblationThresholdModePaper(b *testing.B) {
	var det, fa float64
	for i := 0; i < b.N; i++ {
		d, f := ablationDetect(b, func(c *detect.Config) { c.Mode = detect.ThresholdModePaper })
		det += d
		fa += f
	}
	b.ReportMetric(det/float64(b.N), "detect-rate")
	b.ReportMetric(fa/float64(b.N), "false-events")
}

func BenchmarkAblationThresholdModeZScore(b *testing.B) {
	var det, fa float64
	for i := 0; i < b.N; i++ {
		d, f := ablationDetect(b, func(c *detect.Config) { c.Mode = detect.ThresholdModeZScore })
		det += d
		fa += f
	}
	b.ReportMetric(det/float64(b.N), "detect-rate")
	b.ReportMetric(fa/float64(b.N), "false-events")
}

func BenchmarkAblationGateSample(b *testing.B) {
	var det, fa float64
	for i := 0; i < b.N; i++ {
		d, f := ablationDetect(b, func(c *detect.Config) { c.Gate = detect.GateSample })
		det += d
		fa += f
	}
	b.ReportMetric(det/float64(b.N), "detect-rate")
	b.ReportMetric(fa/float64(b.N), "false-events")
}

func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	// Frozen (non-adaptive) threshold under the default sea: the
	// comparison point for the adaptive design.
	var det, fa float64
	for i := 0; i < b.N; i++ {
		d, f := ablationDetect(b, func(c *detect.Config) { c.FreezeAfterWarmup = true })
		det += d
		fa += f
	}
	b.ReportMetric(det/float64(b.N), "detect-rate")
	b.ReportMetric(fa/float64(b.N), "false-events")
}

// BenchmarkAblationClusterRule compares the correlation-gated cluster
// decision (eq. 13) against a plain majority vote on false-alarm data:
// the vote confirms random reports, the correlation does not.
func BenchmarkAblationClusterRule(b *testing.B) {
	var voteFP, corrFP float64
	for i := 0; i < b.N; i++ {
		reports := randomClusterReports(int64(i + 1))
		if cluster.MajorityVote(reports, 6) {
			voteFP++
		}
		res, err := cluster.Evaluate(reports, cluster.DefaultConfig())
		if err == nil && res.Detected {
			corrFP++
		}
	}
	b.ReportMetric(voteFP/float64(b.N), "vote-falsepos")
	b.ReportMetric(corrFP/float64(b.N), "corr-falsepos")
}

func randomClusterReports(seed int64) []cluster.Report {
	rng := newSplit(seed)
	var out []cluster.Report
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			out = append(out, cluster.Report{
				Node:   r*5 + c,
				Pos:    geo.Vec2{X: float64(r) * 25, Y: float64(c) * 25},
				Row:    r,
				Onset:  rng() * 100,
				Energy: rng() * 50,
			})
		}
	}
	return out
}

func newSplit(seed int64) func() float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + 1
	return func() float64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		return float64(x%1000000) / 1000000
	}
}

// BenchmarkAblationFailures measures cluster detection under node failures
// and packet loss (§IV-C's reliability discussion).
func BenchmarkAblationFailures(b *testing.B) {
	var ok float64
	for i := 0; i < b.N; i++ {
		cfg := isid.DefaultConfig()
		cfg.Grid = geo.GridSpec{Rows: 5, Cols: 5, Spacing: 25}
		cfg.Radio.LossProb = 0.15
		cfg.Seed = int64(i + 1)
		rt, err := isid.NewRuntime(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Kill 3 random-ish nodes (deterministic picks).
		for _, id := range []int{3, 11, 18} {
			rt.Network().MustNode(wsn.NodeID(id)).Fail()
		}
		center := cfg.Grid.Center()
		track := geo.NewLine(geo.Vec2{X: center.X + 12.5, Y: -200}, geo.Vec2{X: 0, Y: 1})
		ship, err := wake.NewShip(track, geo.Knots(10), 12)
		if err != nil {
			b.Fatal(err)
		}
		ship.Time0 = 150 - (ship.ArrivalTime(center) - ship.Time0)
		rt.AddShip(ship)
		if err := rt.Run(350); err != nil {
			b.Fatal(err)
		}
		if len(rt.SinkReports()) > 0 {
			ok++
		}
	}
	b.ReportMetric(ok/float64(b.N), "detect-rate")
}

// --- Substrate micro-benchmarks ---

func BenchmarkFFT2048(b *testing.B) {
	x := make([]float64, 2048)
	for i := range x {
		x[i] = float64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.PowerSpectrum(x)
	}
}

func BenchmarkMorletCWT(b *testing.B) {
	x := make([]float64, 50*60)
	for i := range x {
		x[i] = float64(i % 31)
	}
	m, err := dsp.NewMorletCWT(50)
	if err != nil {
		b.Fatal(err)
	}
	freqs, _ := dsp.LogFreqs(0.1, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transform(x, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectorPush(b *testing.B) {
	det, err := detect.New(detect.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Push(float64(i)/50, 1024+float64(i%13))
	}
}

func BenchmarkOceanFieldSample(b *testing.B) {
	sc := eval.DefaultScenario()
	sens, model, _, err := sc.Build(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sens.SampleAt(model, float64(i)/50)
	}
}

// --- Wave-synthesis and FFT-plan benchmarks ---
//
// These back the numbers in docs/PERFORMANCE.md and BENCH_baseline.json;
// perf-affecting PRs must re-run them (see the rules in PERFORMANCE.md).

// benchField builds a representative directional sea: 64 frequency bins ×
// 8 directions, the default discretization used by deployments.
func benchField(b *testing.B) *ocean.Field {
	b.Helper()
	spec, err := ocean.NewPiersonMoskowitz(0.3, 6)
	if err != nil {
		b.Fatal(err)
	}
	f, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, NumFreqs: 64, NumDirs: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// seriesBlock is the samples synthesized per benchmark op (10 s at 50 Hz),
// long enough to cross no resync boundary yet amortize setup, matching how
// the runtime consumes the API.
const seriesBlock = 500

// BenchmarkFieldSeriesPerSample is the pre-batching baseline: one
// sin/cos-per-component SampleSurface call per sample.
func BenchmarkFieldSeriesPerSample(b *testing.B) {
	f := benchField(b)
	p := geo.Vec2{X: 40, Y: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := float64(i)
		for s := 0; s < seriesBlock; s++ {
			f.SampleSurface(p, t0+float64(s)/50)
		}
	}
}

// BenchmarkFieldSeries synthesizes the same samples through the
// phasor-rotation recurrence; the ns/op ratio against
// BenchmarkFieldSeriesPerSample is the headline speedup.
func BenchmarkFieldSeries(b *testing.B) {
	f := benchField(b)
	p := geo.Vec2{X: 40, Y: 60}
	accel := make([]float64, seriesBlock)
	slopeX := make([]float64, seriesBlock)
	slopeY := make([]float64, seriesBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AccumulateSeries(p, float64(i), 1.0/50, seriesBlock, accel, slopeX, slopeY)
	}
}

// BenchmarkFieldStreamSpectral synthesizes the same samples through
// FFT-based spectral block synthesis (docs/SYNTHESIS.md); the ns/op ratio
// against BenchmarkFieldSeries is the tentpole speedup of the spectral path.
func BenchmarkFieldStreamSpectral(b *testing.B) {
	f := benchField(b)
	plan, err := ocean.NewSpectralPlan(f, ocean.SpectralConfig{Rate: 50})
	if err != nil {
		b.Fatal(err)
	}
	st := plan.NewStream(geo.Vec2{X: 40, Y: 60})
	accel := make([]float64, seriesBlock)
	slopeX := make([]float64, seriesBlock)
	slopeY := make([]float64, seriesBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range accel {
			accel[j], slopeX[j], slopeY[j] = 0, 0, 0
		}
		st.AccumulateStream(float64(i*seriesBlock)/50, seriesBlock, accel, slopeX, slopeY)
	}
}

// BenchmarkSensorBlock measures the full batched sensing path (series
// synthesis + tilt/quantization/noise) for a one-second 50-sample block —
// the unit of work the runtime fans out per node.
func BenchmarkSensorBlock(b *testing.B) {
	sc := eval.DefaultScenario()
	sens, model, _, err := sc.Build(0)
	if err != nil {
		b.Fatal(err)
	}
	var buf sensor.BlockBuffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sens.SampleBlock(model, float64(i), 50, &buf)
	}
}

// BenchmarkBluestein1500 exercises the cached chirp-z plan on a
// non-power-of-two length (Welch/PSD segment sizes land here).
func BenchmarkBluestein1500(b *testing.B) {
	x := make([]complex128, 1500)
	for i := range x {
		x[i] = complex(float64(i%23), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFT(x)
	}
}

// benchDeployment runs a short full-deployment segment with the given
// worker count and synthesis mode; Serial vs Parallel shows the fan-out
// gain (none expected on a single-core host — the synthesis algorithm
// itself is the cross-platform win).
func benchDeployment(b *testing.B, workers int, mode source.SynthesisMode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := isid.DefaultConfig()
		cfg.Seed = 7
		cfg.Workers = workers
		cfg.Synthesis = mode
		rt, err := isid.NewRuntime(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Run(60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeploymentSerial(b *testing.B)   { benchDeployment(b, 1, source.SynthPhasor) }
func BenchmarkDeploymentParallel(b *testing.B) { benchDeployment(b, 0, source.SynthPhasor) }

func BenchmarkDeploymentSerialSpectral(b *testing.B) {
	benchDeployment(b, 1, source.SynthSpectral)
}
func BenchmarkDeploymentParallelSpectral(b *testing.B) {
	benchDeployment(b, 0, source.SynthSpectral)
}

func BenchmarkClusterEvaluate(b *testing.B) {
	reports := randomClusterReports(1)
	cfg := cluster.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Evaluate(reports, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReliableUnicast measures the acknowledged-transport path: one
// ARQ-protected hop at 20% frame loss, including the ACK frames and any
// backed-off retransmissions the loss draws force.
func BenchmarkReliableUnicast(b *testing.B) {
	radio := wsn.DefaultRadioConfig()
	radio.LossProb = 0.2
	radio.Reliable = wsn.DefaultReliableConfig()
	sched := sim.NewScheduler(1)
	positions := geo.GridSpec{Rows: 1, Cols: 2, Spacing: 25}.Positions()
	net, err := wsn.NewNetwork(sched, positions, radio)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Unicast(0, 1, "bench", i); err != nil {
			b.Fatal(err)
		}
		sched.RunAll()
	}
	b.ReportMetric(float64(net.Stats().Retransmissions)/float64(b.N), "retrans/op")
	b.ReportMetric(float64(net.Stats().ReliableDelivered)/float64(b.N), "delivered/op")
}
