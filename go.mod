module github.com/sid-wsn/sid

go 1.22
