// Quickstart: deploy a SID surveillance grid, send one intruder across it,
// and print what the sink confirms.
package main

import (
	"fmt"
	"log"

	"github.com/sid-wsn/sid"
)

func main() {
	// A 5×5 buoy grid at 25 m spacing on a slight sea — the paper's
	// experimental deployment.
	cfg := sid.DefaultDeployment()
	cfg.Seed = 42
	dep, err := sid.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A 10-knot boat crosses the field perpendicular to the grid rows,
	// its wake front reaching the center at t = 150 s.
	if err := dep.AddIntruder(sid.Intruder{SpeedKnots: 10, CrossAt: 150}); err != nil {
		log.Fatal(err)
	}

	// Run 400 s of simulated time: sampling at 50 Hz, node-level adaptive
	// detection, temporary clustering, correlation, sink reporting.
	if err := dep.Run(400); err != nil {
		log.Fatal(err)
	}

	dets := dep.Detections()
	if len(dets) == 0 {
		log.Fatal("no intrusion confirmed — unexpected for this scenario")
	}
	for _, d := range dets {
		fmt.Printf("intrusion confirmed at t=%.1fs: correlation C=%.2f from %d node reports\n",
			d.Time, d.C, d.Reports)
		if d.HasSpeed {
			fmt.Printf("  estimated intruder speed %.1f kn, heading %.0f° (actual: 10.0 kn, 90°)\n",
				d.SpeedKnots, d.HeadingDeg)
		}
	}
	st := dep.Stats()
	fmt.Printf("protocol: %d clusters formed, %d cancelled as false alarms, %d frames sent (%d lost)\n",
		st.ClustersFormed, st.ClustersCancelled, st.FramesSent, st.FramesLost)
}
