// Speedtrap: the four-node speed-estimation geometry of Fig. 10. Two
// vertical node pairs straddle a shipping lane; the Kelvin cusp sweeps
// them in order, and eqs. (14)–(16) turn the four detection timestamps
// into the intruder's speed and heading — using nothing but the fixed
// 19°28′ wake angle.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/speed"
	"github.com/sid-wsn/sid/internal/wake"
)

func main() {
	const (
		d       = 25.0 // deployment distance (m)
		actual  = 12.0 // knots
		heading = 15.0 // degrees
		arrival = 140.0
		dur     = 240.0
	)
	// Fig. 10 layout: pair i north of the lane, pair j south of it.
	positions := []geo.Vec2{
		{X: 0, Y: 30}, {X: 0, Y: 30 + d},
		{X: 60, Y: -30 - d}, {X: 60, Y: -30},
	}
	phi := geo.Deg(heading)
	track := geo.NewLine(geo.Vec2{}, geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)})
	ship, err := wake.NewShip(track, geo.Knots(actual), 12)
	if err != nil {
		log.Fatal(err)
	}
	ship.Time0 = arrival - (ship.ArrivalTime(positions[0]) - ship.Time0)

	spec, err := ocean.NewJONSWAP(0.3, 6, 3.3)
	if err != nil {
		log.Fatal(err)
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: 5, BuoyRadius: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	model := sensor.Composite{field, wake.Field{Ship: ship}}

	fmt.Printf("lane watch: %.0f kn vessel, heading %.0f°; four buoys at D = %.0f m\n\n", actual, heading, d)
	names := []string{"Si ", "S'i", "Sj ", "S'j"}
	onsets := make([]float64, 4)
	for i, pos := range positions {
		buoy := sensor.NewBuoy(sensor.BuoyConfig{Anchor: pos, DriftRadius: 2, Seed: int64(i) + 9})
		sens, err := sensor.NewSensor(buoy, sensor.DefaultAccelConfig())
		if err != nil {
			log.Fatal(err)
		}
		dcfg := detect.DefaultConfig()
		dcfg.AnomalyThreshold = 0.5
		det, err := detect.New(dcfg)
		if err != nil {
			log.Fatal(err)
		}
		rec := sens.Record(model, 0, dur)
		// Earliest onset among the strongest detection windows — the
		// report the paper keeps ("highest detected energy").
		maxE := math.Inf(-1)
		var windows []detect.WindowStat
		for _, ws := range det.ProcessSeries(0, sensor.ZSeries(rec)) {
			if det.Detected(ws) {
				windows = append(windows, ws)
				if ws.Energy > maxE {
					maxE = ws.Energy
				}
			}
		}
		onset := math.NaN()
		for _, ws := range windows {
			if ws.Energy >= 0.7*maxE && (math.IsNaN(onset) || ws.Onset < onset) {
				onset = ws.Onset
			}
		}
		if math.IsNaN(onset) {
			log.Fatalf("node %s saw no wake", names[i])
		}
		onsets[i] = onset
		fmt.Printf("  %s at %v: wake front detected at t=%6.2f s (true arrival %6.2f s)\n",
			names[i], pos, onset, ship.ArrivalTime(pos))
	}

	est, err := speed.Estimate4(onsets[0], onsets[1], onsets[2], onsets[3], d)
	if err != nil {
		log.Fatal(err)
	}
	estKn := geo.ToKnots(est.Speed)
	fmt.Printf("\neqs. (14)-(16) with θ = 20°:\n")
	fmt.Printf("  pair estimates: %.1f / %.1f kn\n", geo.ToKnots(est.SpeedI), geo.ToKnots(est.SpeedJ))
	fmt.Printf("  speed %.1f kn (actual %.1f, error %.1f%%), heading %.0f° (actual %.0f°)\n",
		estKn, actual, 100*math.Abs(estKn-actual)/actual, geo.ToDeg(geo.NormalizeAngle(est.Alpha)), heading)

	// The same estimation as the cluster head would run it, with assigned
	// positions (EstimateFromDetections resolves the travel direction).
	dets := make([]speed.Detection, 4)
	for i := range positions {
		dets[i] = speed.Detection{Pos: positions[i], Time: onsets[i], Energy: 1}
	}
	if est2, err := speed.EstimateFromDetections(dets, track, d); err == nil {
		dir := "outbound"
		if !est2.Forward {
			dir = "inbound"
		}
		fmt.Printf("  cluster-head view: %.1f kn, %s\n", geo.ToKnots(est2.Speed), dir)
	}
}
