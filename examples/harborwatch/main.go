// Harborwatch: a long-running harbor-protection scenario — the paper's
// motivating application. A larger grid guards a harbor approach through
// worsening weather while several vessels cross at different speeds and
// headings; batteries drain as the network works. The example shows
// multi-intrusion handling, false-alarm suppression, and energy
// accounting.
package main

import (
	"fmt"
	"log"

	"github.com/sid-wsn/sid"
)

func main() {
	cfg := sid.DefaultDeployment()
	cfg.Rows, cfg.Cols = 6, 6
	cfg.SignificantWaveHeightM = 0.35
	cfg.PacketLoss = 0.10 // congested harbor spectrum
	cfg.BatteryJ = 5000   // finite node batteries
	cfg.Seed = 7
	dep, err := sid.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Traffic: a slow trawler, a fast smuggler's skiff, and a patrol boat
	// at an oblique heading.
	intruders := []sid.Intruder{
		{SpeedKnots: 8, HeadingDeg: 90, OffsetM: 10, CrossAt: 200},
		{SpeedKnots: 16, HeadingDeg: 90, OffsetM: -20, CrossAt: 700},
		{SpeedKnots: 12, HeadingDeg: 60, OffsetM: 0, CrossAt: 1200},
	}
	for _, in := range intruders {
		if err := dep.AddIntruder(in); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheduled: %.0f kn vessel, heading %.0f°, crossing at t=%.0fs\n",
			in.SpeedKnots, in.HeadingDeg, in.CrossAt)
	}

	const watch = 1500.0
	if err := dep.Run(watch); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n== harbor log after %.0f s ==\n", watch)
	dets := dep.Detections()
	for i, d := range dets {
		fmt.Printf("[%02d] t=%7.1fs  C=%.2f  reports=%2d", i+1, d.Time, d.C, d.Reports)
		if d.HasSpeed {
			fmt.Printf("  speed %.1f kn heading %.0f°", d.SpeedKnots, d.HeadingDeg)
		}
		fmt.Println()
	}
	fmt.Printf("confirmed %d of %d crossings\n", len(dets), len(intruders))

	st := dep.Stats()
	fmt.Printf("clusters: %d formed, %d cancelled (false alarms suppressed at cluster level)\n",
		st.ClustersFormed, st.ClustersCancelled)
	fmt.Printf("radio: %d frames sent, %d lost (%.1f%%)\n",
		st.FramesSent, st.FramesLost, 100*float64(st.FramesLost)/float64(st.FramesSent))

	e := dep.Runtime().Energy()
	fmt.Printf("energy: mean battery %.1f%%, weakest node %.1f%%, dead nodes %d\n",
		100*e.MeanFraction, 100*e.MinFraction, e.DeadNodes)
}
