// Spectrum: the signal-processing walk-through of §III — how ship wakes
// are told apart from ocean waves. Records one buoy during a ship pass,
// then runs the paper's two analyses: the 2048-point STFT (Fig. 6) and the
// Morlet wavelet transform (Fig. 7), printing ASCII spectra.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/sid-wsn/sid/internal/dsp"
	"github.com/sid-wsn/sid/internal/eval"
	"github.com/sid-wsn/sid/internal/sensor"
)

func main() {
	sc := eval.DefaultScenario()
	sc.Seed = 3
	const (
		dur     = 400.0
		arrival = 300.0
	)
	samples, ship, err := sc.Record(dur, arrival)
	if err != nil {
		log.Fatal(err)
	}
	z := sensor.ZSeries(samples)
	dsp.Detrend(z)
	fmt.Printf("recorded %.0f s at 50 Hz; wake front (f≈%.2f Hz) arrives at t=%.0f s\n\n",
		dur, ship.WakeFreq(), arrival)

	// --- STFT (Fig. 6) ---
	sg, err := dsp.STFT(z, dsp.STFTConfig{WindowSize: 2048, HopSize: 512, Window: dsp.Hann, SampleRate: 50})
	if err != nil {
		log.Fatal(err)
	}
	var quiet, during *dsp.Frame
	for i := range sg.Frames {
		f := &sg.Frames[i]
		if f.Time < arrival-25 && quiet == nil {
			quiet = f
		}
		if f.Time >= arrival && during == nil {
			during = f
		}
	}
	cut := dsp.FreqBin(1.2, 2048, 50)
	fmt.Println("2048-point STFT power, 0–1.2 Hz (each row ≈ 0.049 Hz):")
	fmt.Println("         quiet sea                 |  during ship passage")
	printSpectra(dsp.SmoothSpectrum(quiet.Power[:cut], 2), dsp.SmoothSpectrum(during.Power[:cut], 2), sg.Freqs[:cut])

	// --- Morlet CWT (Fig. 7) ---
	m, err := dsp.NewMorletCWT(50)
	if err != nil {
		log.Fatal(err)
	}
	freqs, _ := dsp.LogFreqs(0.08, 2, 12)
	scg, err := m.Transform(z, freqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMorlet scalogram, time → (each column = 20 s), rows = frequency:")
	printScalogram(scg, dur)
	fmt.Printf("\nship waves concentrate below 1 Hz around t=%.0f s — the Fig. 7 signature\n", arrival)
}

func printSpectra(a, b, freqs []float64) {
	// Bin both spectra into 24 rows and bar-plot side by side.
	const rows = 24
	binA := rebin(a, rows)
	binB := rebin(b, rows)
	maxA, maxB := maxOf(binA), maxOf(binB)
	for i := 0; i < rows; i++ {
		f := freqs[i*len(freqs)/rows]
		barA := strings.Repeat("#", int(24*binA[i]/maxA))
		barB := strings.Repeat("#", int(24*binB[i]/maxB))
		fmt.Printf("%5.2fHz %-26s| %s\n", f, barA, barB)
	}
}

func printScalogram(sg *dsp.Scalogram, dur float64) {
	const colSec = 20.0
	cols := int(dur / colSec)
	grid := make([][]float64, len(sg.Freqs))
	var max float64
	for i := range sg.Freqs {
		grid[i] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			n0 := int(float64(c) * colSec * sg.SampleRate)
			n1 := int(float64(c+1) * colSec * sg.SampleRate)
			var s float64
			for n := n0; n < n1 && n < len(sg.Power[i]); n++ {
				s += sg.Power[i][n]
			}
			grid[i][c] = s
			if s > max {
				max = s
			}
		}
	}
	shades := []byte(" .:-=+*#%@")
	for i := len(sg.Freqs) - 1; i >= 0; i-- {
		fmt.Printf("%5.2fHz ", sg.Freqs[i])
		for c := 0; c < cols; c++ {
			idx := int(grid[i][c] / max * float64(len(shades)-1))
			fmt.Printf("%c", shades[idx])
		}
		fmt.Println()
	}
	fmt.Printf("        0s%sthe %ss mark\n", strings.Repeat(" ", cols-12), "400")
}

func rebin(xs []float64, n int) []float64 {
	out := make([]float64, n)
	for i, v := range xs {
		out[i*n/len(xs)] += v
	}
	return out
}

func maxOf(xs []float64) float64 {
	m := 1e-12
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
