// Command sidserve runs the SID detection service: a multi-tenant HTTP
// server where each tenant is one surveillance field. Tenants are created
// from the library's Config JSON, fed accelerometer chunks over POST, and
// stream their journal and detections back over SSE or JSONL.
//
//	sidserve -addr :8080
//	sidserve -addr :8080 -workers 4 -max-tenants 2048
//
// The API is documented in docs/SERVING.md. The process also serves
// /debug/vars (with the server registry published as the expvar "sid"
// variable) on the same address, plus /debug/pprof when -pprof is given.
// SIGINT/SIGTERM drain every tenant before exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent pipeline slots (0 = GOMAXPROCS)")
		maxTenants = flag.Int("max-tenants", 0, "tenant cap (0 = default 4096)")
		queue      = flag.Int("queue", 0, "default per-tenant ingest queue depth in chunks (0 = default 4)")
		pprof      = flag.Bool("pprof", false, "expose /debug/pprof (off by default: profiling is a DoS surface)")
	)
	flag.Parse()
	if err := run(*addr, serve.Config{
		Workers:      *workers,
		MaxTenants:   *maxTenants,
		DefaultQueue: *queue,
		PProf:        *pprof,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config) error {
	srv := serve.New(cfg)
	obs.PublishRegistry(srv.Registry())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("sidserve: listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("sidserve: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("sidserve: %v, draining tenants\n", s)
	case err := <-errc:
		srv.Close()
		return fmt.Errorf("sidserve: serve: %w", err)
	}
	_ = hs.Close() // stop accepting; event streams unblock via request contexts
	srv.Close()    // drain every tenant synchronously
	fmt.Println("sidserve: drained, bye")
	return nil
}
