// Command sidsim runs one SID surveillance scenario end to end and reports
// what the sink saw: grid deployment, ambient sea, one or more intruder
// crossings, detection and speed estimation.
//
// Example:
//
//	sidsim -rows 5 -cols 5 -speed 10 -heading 90 -dur 400
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sid-wsn/sid"
)

func main() {
	var (
		rows    = flag.Int("rows", 5, "grid rows")
		cols    = flag.Int("cols", 5, "grid columns")
		spacing = flag.Float64("spacing", 25, "node spacing D in meters")
		hs      = flag.Float64("hs", 0.3, "significant wave height in meters")
		tp      = flag.Float64("tp", 6, "sea peak period in seconds")
		m       = flag.Float64("m", 2, "node threshold multiplier M")
		speed   = flag.Float64("speed", 10, "intruder speed in knots")
		heading = flag.Float64("heading", 90, "intruder heading in degrees from the row axis")
		offset  = flag.Float64("offset", 12.5, "sailing-line offset from grid center in meters")
		crossAt = flag.Float64("cross", 150, "time the wake front reaches the grid center (s)")
		dur     = flag.Float64("dur", 400, "simulated duration in seconds")
		loss    = flag.Float64("loss", 0.05, "radio frame loss probability")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := sid.DefaultDeployment()
	cfg.Rows, cfg.Cols, cfg.SpacingM = *rows, *cols, *spacing
	cfg.SignificantWaveHeightM, cfg.PeakPeriodS = *hs, *tp
	cfg.ThresholdM = *m
	cfg.PacketLoss = *loss
	cfg.Seed = *seed

	dep, err := sid.NewDeployment(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *speed > 0 {
		err := dep.AddIntruder(sid.Intruder{
			SpeedKnots: *speed,
			HeadingDeg: *heading,
			OffsetM:    *offset,
			CrossAt:    *crossAt,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("intruder: %.1f kn, heading %.0f°, crossing at t=%.0fs\n", *speed, *heading, *crossAt)
	}
	fmt.Printf("deployment: %dx%d grid at %.0f m, sea Hs=%.2f m Tp=%.0f s, M=%.1f, loss=%.0f%%\n",
		*rows, *cols, *spacing, *hs, *tp, *m, 100**loss)

	if err := dep.Run(*dur); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dets := dep.Detections()
	st := dep.Stats()
	fmt.Printf("\nafter %.0f s: %d confirmed intrusion(s); clusters formed %d, cancelled %d; frames sent %d, lost %d\n",
		*dur, len(dets), st.ClustersFormed, st.ClustersCancelled, st.FramesSent, st.FramesLost)
	for i, d := range dets {
		fmt.Printf("  [%d] t=%.1fs C=%.2f reports=%d onset=%.1fs", i+1, d.Time, d.C, d.Reports, d.MeanOnset)
		if d.HasSpeed {
			fmt.Printf(" speed=%.1f kn heading=%.0f°", d.SpeedKnots, d.HeadingDeg)
		}
		fmt.Println()
	}
	if len(dets) == 0 && *speed > 0 {
		fmt.Println("  (no confirmation — try a denser grid, calmer sea, or a closer crossing)")
		os.Exit(2)
	}
}
