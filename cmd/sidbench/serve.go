package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	sidapi "github.com/sid-wsn/sid"
	"github.com/sid-wsn/sid/internal/serve"
)

// serveBenchName is the baseline entry the serving-layer load test records;
// checkBench requires it, so perf-affecting PRs re-measure the server too.
const serveBenchName = "serve_1k_tenants"

// serveFeed pairs a recorded ingest load with the spec that produced it, so
// every tenant replaying the feed is created with the exact deployment the
// recording ran.
type serveFeed struct {
	spec sidapi.Config
	feed *serve.Feed
	// blocksPerChunk is the node-block count of one chunk: nodes × batches
	// (one block is one 0.5 s sensing batch on one node).
	blocksPerChunk int
	chunkS         float64
}

// serveLoadResult is one measured load-generator run.
type serveLoadResult struct {
	Tenants    int
	Chunks     int
	NodeBlocks int
	Detections int
	WantDets   int
	Wall       time.Duration
	P50, P99   time.Duration
	// DetP50/DetP99 are detection end-to-end latency: the POST of the chunk
	// whose processing confirmed the detection → the detection event arriving
	// on the tenant's wire stream.
	DetP50, DetP99 time.Duration
}

// BlocksPerSec is the sustained ingest throughput in node-blocks per
// wall-clock second.
func (r *serveLoadResult) BlocksPerSec() float64 {
	return float64(r.NodeBlocks) / r.Wall.Seconds()
}

// buildServeFeeds records the load mix once: three cheap 3×3 quiet-ish
// crossings that make up the bulk of the fleet, plus one detection-bearing
// hot crossing (5×5 unless the -grid flag overrides it) assigned to every
// 50th tenant so the run exercises the full confirmation pipeline (cluster
// formation, correlation test, detection events on the wire) and not just
// ingest.
func buildServeFeeds(hotRows, hotCols int) (cheap []serveFeed, hot serveFeed, err error) {
	if hotRows == 0 {
		hotRows, hotCols = 5, 5
	}
	const batch = 0.5
	mk := func(rows, cols int, seed int64, dur, chunkS, crossAt float64) (serveFeed, error) {
		spec := sidapi.DefaultDeployment()
		spec.Rows, spec.Cols = rows, cols
		spec.Seed = seed
		feed, err := serve.BuildFeed(serve.FeedSpec{
			Spec:      spec,
			Intruders: []sidapi.Intruder{{SpeedKnots: 10, CrossAt: crossAt}},
			Duration:  dur,
			ChunkS:    chunkS,
		})
		if err != nil {
			return serveFeed{}, err
		}
		return serveFeed{
			spec:           spec,
			feed:           feed,
			blocksPerChunk: rows * cols * int(chunkS/batch+0.5),
			chunkS:         chunkS,
		}, nil
	}
	for i, seed := range []int64{201, 202, 203} {
		f, err := mk(3, 3, seed, 20, 5, 10)
		if err != nil {
			return nil, serveFeed{}, fmt.Errorf("cheap feed %d: %w", i, err)
		}
		cheap = append(cheap, f)
	}
	hot, err = mk(hotRows, hotCols, 301, 120, 10, 60)
	if err != nil {
		return nil, serveFeed{}, fmt.Errorf("hot feed: %w", err)
	}
	if len(hot.feed.Detections) == 0 {
		return nil, serveFeed{}, fmt.Errorf("hot feed recorded no detections; the load test needs confirmation traffic")
	}
	return cheap, hot, nil
}

// waitReady polls the tenant listing until the server answers.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/tenants")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %s not ready after %v: %v", base, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// wireEvent is the decoded shape of one NDJSON event line.
type wireEvent struct {
	T    float64         `json:"t"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// driveTenant runs one tenant's full lifecycle closed-loop over HTTP:
// create, subscribe to the event stream, post every chunk and wait for its
// ingest confirmation before posting the next, then delete. It returns the
// per-chunk POST→confirmation latencies, the per-detection end-to-end
// latencies (chunk POST → detection event on the wire), and counts the
// detection events observed.
func driveTenant(client *http.Client, base, id string, f serveFeed, dets *int64) ([]time.Duration, []time.Duration, error) {
	body, err := json.Marshal(serve.CreateRequest{ID: id, Spec: f.spec})
	if err != nil {
		return nil, nil, err
	}
	resp, err := client.Post(base+"/v1/tenants", serve.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		return nil, nil, fmt.Errorf("create: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, nil, fmt.Errorf("create: status %d", resp.StatusCode)
	}

	// Event stream: NDJSON, read until serve.end or stream close.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/tenants/"+id+"/events", nil)
	if err != nil {
		return nil, nil, err
	}
	es, err := client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("events: %w", err)
	}
	if es.StatusCode != http.StatusOK {
		es.Body.Close()
		return nil, nil, fmt.Errorf("events: status %d", es.StatusCode)
	}
	ingested := make(chan serve.IngestDone, 16)
	readerErr := make(chan error, 1)
	// postNs carries the wall time of the chunk POST currently in flight to
	// the reader goroutine; a detection event's end-to-end latency is
	// measured against it (closed-loop posting means the detection's chunk
	// is always the in-flight one).
	var postNs atomic.Int64
	var detMu sync.Mutex
	var detLats []time.Duration
	go func() {
		defer es.Body.Close()
		sc := bufio.NewScanner(es.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev wireEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				readerErr <- fmt.Errorf("events: bad line: %w", err)
				return
			}
			switch ev.Kind {
			case serve.KindIngest:
				var done serve.IngestDone
				if err := json.Unmarshal(ev.Data, &done); err != nil {
					readerErr <- err
					return
				}
				ingested <- done
			case serve.KindDetection:
				atomic.AddInt64(dets, 1)
				if s := postNs.Load(); s > 0 {
					e2e := time.Since(time.Unix(0, s))
					detMu.Lock()
					detLats = append(detLats, e2e)
					detMu.Unlock()
				}
			case serve.KindError:
				readerErr <- fmt.Errorf("events: stream error: %s", ev.Data)
				return
			case serve.KindEnd:
				readerErr <- nil
				return
			}
		}
		readerErr <- sc.Err()
	}()

	lats := make([]time.Duration, 0, len(f.feed.Chunks))
	for k, chunk := range f.feed.Chunks {
		start := time.Now()
		postNs.Store(start.UnixNano())
		for {
			resp, err := client.Post(base+"/v1/tenants/"+id+"/chunks",
				serve.ContentTypeBundle, bytes.NewReader(chunk))
			if err != nil {
				return nil, nil, fmt.Errorf("chunk %d: %w", k, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				// Closed-loop posting should never fill the queue; back off
				// anyway so an overloaded server sheds load instead of
				// failing the run.
				time.Sleep(50 * time.Millisecond)
				continue
			}
			return nil, nil, fmt.Errorf("chunk %d: status %d", k, resp.StatusCode)
		}
		select {
		case done := <-ingested:
			if done.Seq != k {
				return nil, nil, fmt.Errorf("chunk %d: confirmation for seq %d", k, done.Seq)
			}
			lats = append(lats, time.Since(start))
		case err := <-readerErr:
			if err == nil {
				err = fmt.Errorf("event stream ended before chunk %d confirmed", k)
			}
			return nil, nil, err
		case <-time.After(10 * time.Minute):
			return nil, nil, fmt.Errorf("chunk %d: confirmation timeout", k)
		}
	}

	req, err = http.NewRequest(http.MethodDelete, base+"/v1/tenants/"+id, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err = client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("delete: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("delete: status %d", resp.StatusCode)
	}
	select {
	case err := <-readerErr:
		if err != nil {
			return nil, nil, err
		}
	case <-time.After(time.Minute):
		return nil, nil, fmt.Errorf("no end-of-stream event after delete")
	}
	detMu.Lock()
	defer detMu.Unlock()
	return lats, detLats, nil
}

// measureServe drives tenants concurrent closed-loop tenants against a
// detection server over loopback HTTP and measures sustained ingest
// throughput and POST→confirmation latency. With addr == "" it starts an
// in-process server on an ephemeral port; otherwise it targets a running
// sidserve at addr (the CI smoke path).
func measureServe(tenants int, addr string, hotRows, hotCols int) (*serveLoadResult, error) {
	if tenants <= 0 {
		return nil, fmt.Errorf("serve: tenant count must be positive, got %d", tenants)
	}
	cheap, hot, err := buildServeFeeds(hotRows, hotCols)
	if err != nil {
		return nil, err
	}

	base := "http://" + addr
	if addr != "" {
		// External server (the CI smoke boots sidserve just before the
		// run): wait for it to accept requests rather than racing it.
		if err := waitReady(base, 10*time.Second); err != nil {
			return nil, err
		}
	} else {
		srv := serve.New(serve.Config{MaxTenants: tenants + 16})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	defer client.CloseIdleConnections()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    []time.Duration
		detLats []time.Duration
		firstEr error
		dets    int64
	)
	res := &serveLoadResult{Tenants: tenants}
	start := time.Now()
	for i := 0; i < tenants; i++ {
		f := cheap[i%len(cheap)]
		if i%50 == 0 {
			f = hot
		}
		res.Chunks += len(f.feed.Chunks)
		res.NodeBlocks += len(f.feed.Chunks) * f.blocksPerChunk
		res.WantDets += len(f.feed.Detections)
		wg.Add(1)
		go func(i int, f serveFeed) {
			defer wg.Done()
			tl, dl, err := driveTenant(client, base, fmt.Sprintf("lg%d", i), f, &dets)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstEr == nil {
				firstEr = fmt.Errorf("tenant lg%d: %w", i, err)
			}
			lats = append(lats, tl...)
			detLats = append(detLats, dl...)
		}(i, f)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	if firstEr != nil {
		return nil, firstEr
	}
	res.Detections = int(dets)
	if res.Detections != res.WantDets {
		return nil, fmt.Errorf("serve: %d detection events on the wire, want %d (events lost under load)",
			res.Detections, res.WantDets)
	}
	if len(lats) != res.Chunks {
		return nil, fmt.Errorf("serve: %d latency samples for %d chunks", len(lats), res.Chunks)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res.P50 = lats[len(lats)/2]
	res.P99 = lats[len(lats)*99/100]
	if len(detLats) == 0 {
		return nil, fmt.Errorf("serve: no detection end-to-end latency samples (hot feed produced no detections?)")
	}
	sort.Slice(detLats, func(a, b int) bool { return detLats[a] < detLats[b] })
	res.DetP50 = detLats[len(detLats)/2]
	res.DetP99 = detLats[len(detLats)*99/100]
	return res, nil
}

func (r *serveLoadResult) print() {
	fmt.Printf("%d tenants closed-loop over loopback HTTP\n", r.Tenants)
	fmt.Printf("  chunks ingested:   %d (%d node-blocks)\n", r.Chunks, r.NodeBlocks)
	fmt.Printf("  wall time:         %.1f s\n", r.Wall.Seconds())
	fmt.Printf("  throughput:        %.0f node-blocks/s\n", r.BlocksPerSec())
	fmt.Printf("  ingest latency:    p50 %.1f ms, p99 %.1f ms (POST -> confirmation event)\n",
		float64(r.P50.Microseconds())/1000, float64(r.P99.Microseconds())/1000)
	fmt.Printf("  detection e2e:     p50 %.1f ms, p99 %.1f ms (chunk POST -> detection event)\n",
		float64(r.DetP50.Microseconds())/1000, float64(r.DetP99.Microseconds())/1000)
	fmt.Printf("  detections on wire: %d (all %d expected confirmations delivered)\n",
		r.Detections, r.WantDets)
}

// benchEntry converts the measured run into its baseline-file form: ns/op
// is the p99 POST→confirmation latency, ops the chunk count.
func (r *serveLoadResult) benchEntry() benchResult {
	return benchResult{
		Name:        serveBenchName,
		NsPerOp:     float64(r.P99.Nanoseconds()),
		Ops:         r.Chunks,
		DetE2eP50Ns: float64(r.DetP50.Nanoseconds()),
		DetE2eP99Ns: float64(r.DetP99.Nanoseconds()),
		Note: fmt.Sprintf("p99 ingest latency, %d closed-loop tenants, %.0f node-blocks/s sustained, %d detections on the wire",
			r.Tenants, r.BlocksPerSec(), r.Detections),
	}
}

// runServeExp is the -exp serve entry point: run the load generator and,
// when the run is at the canonical 1k-tenant scale against the in-process
// server, refresh the serve_1k_tenants entry in the baseline file.
func runServeExp(tenants int, addr, benchPath string, hotRows, hotCols int) error {
	res, err := measureServe(tenants, addr, hotRows, hotCols)
	if err != nil {
		return err
	}
	res.print()
	if tenants != 1000 || addr != "" || hotRows != 0 {
		fmt.Printf("(baseline not updated: the %s entry is recorded at 1000 tenants in-process on the default feed mix)\n", serveBenchName)
		return nil
	}
	if err := mergeServeBaseline(benchPath, res); err != nil {
		return err
	}
	fmt.Printf("refreshed %s in %s\n", serveBenchName, benchPath)
	return nil
}

// mergeServeBaseline upserts the serve load entry into an existing baseline
// file, leaving every other measurement untouched. A full -bench run also
// records the entry; this path refreshes it alone.
func mergeServeBaseline(path string, res *serveLoadResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline must exist before merging (run -bench first): %w", err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	entry := res.benchEntry()
	replaced := false
	for i := range bf.Benchmarks {
		if bf.Benchmarks[i].Name == serveBenchName {
			bf.Benchmarks[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Benchmarks = append(bf.Benchmarks, entry)
	}
	if bf.Derived == nil {
		bf.Derived = map[string]string{}
	}
	bf.Derived["serve_blocks_per_sec"] = fmt.Sprintf("%.0f", res.BlocksPerSec())
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
