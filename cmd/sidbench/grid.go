package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
)

// gridBenchName is the baseline entry for the large-field scaling run: a
// 100×100-node spectral deployment with the spatial wake index, hierarchical
// report collection, and memory-bounded history all engaged.
const gridBenchName = "grid_100x100"

// parseGrid parses an "RxC" grid size like "100x100".
func parseGrid(s string) (rows, cols int, err error) {
	if n, err := fmt.Sscanf(s, "%dx%d", &rows, &cols); err != nil || n != 2 {
		return 0, 0, fmt.Errorf("grid must be RxC (e.g. 100x100), got %q", s)
	}
	if rows < 1 || cols < 1 {
		return 0, 0, fmt.Errorf("grid dimensions must be positive, got %dx%d", rows, cols)
	}
	return rows, cols, nil
}

// gridConfig is the large-field configuration: spectral synthesis (the index
// only routes spectral wake evaluation), 20% sentinel duty cycling, a
// 30 s collection window, two-level report collection, and a bounded
// 60 s detection history.
func gridConfig(rows, cols, workers int) sid.Config {
	cfg := sid.DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: rows, Cols: cols, Spacing: 25}
	cfg.Seed = 11
	cfg.Synthesis = source.SynthSpectral
	cfg.DutyCycle = 0.2
	cfg.CollectWindow = 30
	cfg.HistoryWindow = 60
	cfg.Workers = workers
	cfg.Hierarchy = sid.DefaultHierarchyConfig()
	cfg.Hierarchy.Enabled = true
	return cfg
}

// gridShip returns a 10 kn intruder crossing the field's center, wake front
// arriving around crossAt.
func gridShip(cfg sid.Config, crossAt float64) (*wake.Ship, error) {
	center := cfg.Grid.Center()
	dir := geo.Vec2{X: 0, Y: 1}
	track := geo.NewLine(center.Sub(dir.Scale(2000)), dir)
	ship, err := wake.NewShip(track, geo.Knots(10), 12)
	if err != nil {
		return nil, err
	}
	ship.Time0 = crossAt - (ship.ArrivalTime(center) - ship.Time0)
	return ship, nil
}

// gridRun builds and runs one large-field deployment, returning the runtime
// and the wall-clock time of the simulated run (construction excluded — the
// curve measures the pipeline, not one-time setup).
func gridRun(rows, cols, workers int, dur float64) (*sid.Runtime, time.Duration, error) {
	cfg := gridConfig(rows, cols, workers)
	rt, err := sid.NewRuntime(cfg)
	if err != nil {
		return nil, 0, err
	}
	ship, err := gridShip(cfg, 30)
	if err != nil {
		return nil, 0, err
	}
	rt.AddShip(ship)
	start := time.Now()
	if err := rt.Run(dur); err != nil {
		return nil, 0, err
	}
	return rt, time.Since(start), nil
}

// gridCrossCheck is the correctness gate in front of the measurement: on a
// downscaled field it runs the indexed source against a DisableIndex
// reference and demands bit-identical detections, then re-runs the indexed
// field at Workers=2 and demands bit-identity with Workers=1. Only after
// both hold is the big-field wall-clock worth recording.
func gridCrossCheck() error {
	const rows, cols = 12, 12
	run := func(disableIndex bool, workers int) (*sid.Runtime, error) {
		cfg := gridConfig(rows, cols, workers)
		cfg.HistoryWindow = 0 // compare complete histories, not surviving tails
		src, err := source.NewSynthetic(source.SyntheticConfig{
			Positions:    cfg.Grid.Positions(),
			Hs:           cfg.Hs,
			Tp:           cfg.Tp,
			DriftRadius:  cfg.DriftRadius,
			Seed:         cfg.Seed,
			Synthesis:    cfg.Synthesis,
			DisableIndex: disableIndex,
		})
		if err != nil {
			return nil, err
		}
		cfg.Source = src
		rt, err := sid.NewRuntime(cfg)
		if err != nil {
			return nil, err
		}
		ship, err := gridShip(cfg, 30)
		if err != nil {
			return nil, err
		}
		rt.AddShip(ship)
		if err := rt.Run(90); err != nil {
			return nil, err
		}
		return rt, nil
	}
	indexed, err := run(false, 1)
	if err != nil {
		return err
	}
	plain, err := run(true, 1)
	if err != nil {
		return err
	}
	if len(indexed.NodeReports()) == 0 {
		return fmt.Errorf("cross-check crossing produced no node reports; parity would be vacuous")
	}
	if !reflect.DeepEqual(indexed.NodeReports(), plain.NodeReports()) {
		return fmt.Errorf("indexed node reports diverge from the unindexed reference")
	}
	if !reflect.DeepEqual(indexed.SinkReports(), plain.SinkReports()) {
		return fmt.Errorf("indexed sink reports diverge from the unindexed reference")
	}
	par, err := run(false, 2)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(indexed.NodeReports(), par.NodeReports()) ||
		!reflect.DeepEqual(indexed.SinkReports(), par.SinkReports()) {
		return fmt.Errorf("indexed run not bit-identical across worker counts")
	}
	fmt.Printf("  cross-check %dx%d: indexed == unindexed (%d node reports), workers 1 == 2\n",
		rows, cols, len(indexed.NodeReports()))
	return nil
}

// runGridExp is the -exp grid entry point: verify index parity on a
// downscaled field, then run the large field (default 100×100, override via
// -grid) across Workers 1/2/4 and record wall clock, index hit rate, and
// peak per-node memory. The baseline entry is refreshed only at the
// canonical 100×100 size; smaller -grid runs are smokes.
func runGridExp(rows, cols int, benchOut string) error {
	if rows == 0 {
		rows, cols = 100, 100
	}
	if err := gridCrossCheck(); err != nil {
		return err
	}
	const dur = 60.0
	workersCurve := []int{1, 2, 4}
	walls := make([]time.Duration, len(workersCurve))
	var hitRate float64
	var peakBytes int
	var detections int
	for i, w := range workersCurve {
		rt, wall, err := gridRun(rows, cols, w, dur)
		if err != nil {
			return err
		}
		walls[i] = wall
		fmt.Printf("  %dx%d workers=%d: %.1f s wall for %.0f s simulated\n",
			rows, cols, w, wall.Seconds(), dur)
		if i == 0 {
			syn, ok := rt.Source().(*source.Synthetic)
			if !ok {
				return fmt.Errorf("grid run source is %T, not the synthetic field", rt.Source())
			}
			st := syn.SynthesisStats()
			if st.IndexNodesOffered == 0 {
				return fmt.Errorf("spatial index never engaged (0 node-blocks offered)")
			}
			hitRate = st.IndexHitRate()
			peakBytes = rt.PeakNodeBytes()
			detections = len(rt.NodeReports())
			if detections == 0 {
				return fmt.Errorf("crossing produced no node detections on the %dx%d field", rows, cols)
			}
			if peakBytes <= 0 {
				return fmt.Errorf("peak node bytes not tracked")
			}
		}
	}
	fmt.Printf("  index hit rate %.4f, peak node bytes %d, node detections %d\n",
		hitRate, peakBytes, detections)
	entry := benchResult{
		Name:          gridBenchName,
		NsPerOp:       float64(walls[0].Nanoseconds()),
		Ops:           1,
		IndexHitRate:  hitRate,
		PeakNodeBytes: int64(peakBytes),
		Note: fmt.Sprintf("%dx%d nodes, %.0f s simulated, spectral+index+hierarchy+bounded history; workers 1/2/4: %.1fs/%.1fs/%.1fs",
			rows, cols, dur, walls[0].Seconds(), walls[1].Seconds(), walls[2].Seconds()),
	}
	if rows != 100 || cols != 100 {
		fmt.Printf("(baseline not updated: the %s entry is recorded at 100x100)\n", gridBenchName)
		return nil
	}
	if err := mergeGridBaseline(benchOut, entry, walls, workersCurve); err != nil {
		return err
	}
	fmt.Printf("refreshed %s in %s\n", gridBenchName, benchOut)
	return nil
}

// mergeGridBaseline upserts the grid entry and its speedup curve into an
// existing baseline file, leaving every other measurement untouched.
func mergeGridBaseline(path string, entry benchResult, walls []time.Duration, workers []int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline must exist before merging (run -bench first): %w", err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	replaced := false
	for i := range bf.Benchmarks {
		if bf.Benchmarks[i].Name == gridBenchName {
			bf.Benchmarks[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Benchmarks = append(bf.Benchmarks, entry)
	}
	if bf.Derived == nil {
		bf.Derived = map[string]string{}
	}
	for i := 1; i < len(workers); i++ {
		key := fmt.Sprintf("grid_parallel_speedup_w%d", workers[i])
		bf.Derived[key] = fmt.Sprintf("%.2fx", walls[0].Seconds()/walls[i].Seconds())
	}
	bf.Derived["grid_index_hit_rate"] = fmt.Sprintf("%.4f", entry.IndexHitRate)
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
