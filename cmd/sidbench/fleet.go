package main

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"github.com/sid-wsn/sid/internal/sid"
)

// runFleetExp measures the fleet sharding axis: N independent surveillance
// fields × fleet workers, reporting simulated-seconds-per-wall-second
// throughput and verifying the isolation contract (per-field results
// identical at every worker count).
func runFleetExp(seed int64) error {
	const dur = 30.0
	sizes := []int{2, 4, 8}
	workerSet := []int{1, runtime.GOMAXPROCS(0)}

	fmt.Printf("fleet sharding: N independent 3x3 fields, %.0f s simulated each\n", dur)
	fmt.Printf("%6s %9s %12s %14s %10s\n", "fields", "workers", "wall (ms)", "sim-s/wall-s", "confirms")
	for _, n := range sizes {
		var baseline [][]sid.NodeReport
		for _, workers := range workerSet {
			fc := sid.FleetConfig{Workers: workers}
			for i := 0; i < n; i++ {
				dc := sid.DefaultConfig()
				dc.Grid.Rows, dc.Grid.Cols = 3, 3
				dc.Seed = seed + int64(i)
				fc.Deployments = append(fc.Deployments, dc)
			}
			fl, err := sid.NewFleet(fc)
			if err != nil {
				return err
			}
			start := time.Now()
			if err := fl.Run(dur); err != nil {
				return err
			}
			wall := time.Since(start)
			reports := make([][]sid.NodeReport, n)
			for i := 0; i < n; i++ {
				reports[i] = fl.Runtime(i).NodeReports()
			}
			if baseline == nil {
				baseline = reports
			} else if !reflect.DeepEqual(reports, baseline) {
				return fmt.Errorf("fleet results differ between worker counts (N=%d, workers=%d)", n, workers)
			}
			fmt.Printf("%6d %9d %12.1f %14.1f %10d\n",
				n, workers, float64(wall.Microseconds())/1000,
				float64(n)*dur/wall.Seconds(), fl.SinkReportsTotal())
		}
	}
	fmt.Println("per-field results verified identical across worker counts")
	return nil
}
