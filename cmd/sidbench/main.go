// Command sidbench regenerates every table and figure of the paper's
// evaluation from the synthetic substrates and prints them in the paper's
// layout. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// measured-vs-paper notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/sid-wsn/sid/internal/eval"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/scenario"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: fig5,fig6,fig7,fig8,fig11,table1,table2,fig12,resilience,adversarial,scenarios,fleet,serve,trace,grid or all")
	trials := flag.Int("trials", 0, "override trial counts (0 = experiment defaults)")
	seed := flag.Int64("seed", 1, "base seed")
	bench := flag.Bool("bench", false, "run the performance baseline suite instead of the experiments")
	benchOut := flag.String("benchout", "BENCH_baseline.json", "output path for -bench results")
	benchCheck := flag.Bool("check", false, "validate the -benchout baseline file instead of running anything")
	gomaxprocs := flag.Int("gomaxprocs", 0, "pin runtime.GOMAXPROCS for this run (0 = leave as-is); the committed baseline is recorded at 2 so parallel speedups are measured even on single-core hosts")
	update := flag.Bool("update", false, "with -exp scenarios: rewrite the golden regression corpus")
	goldenDir := flag.String("golden", scenario.DefaultGoldenDir, "golden corpus directory (for -exp scenarios)")
	journalDir := flag.String("journal", "", "with -exp scenarios: write one JSONL event journal per scenario into this directory (render with sidwatch)")
	only := flag.String("only", "", "with -exp scenarios: run only the named scenario")
	httpAddr := flag.String("http", "", "serve /debug/pprof and /debug/vars on this address while running (e.g. localhost:6060)")
	tenants := flag.Int("tenants", 1000, "with -exp serve: concurrent tenant count for the load generator")
	serveAddr := flag.String("addr", "", "with -exp serve: drive a running sidserve at this address instead of an in-process server (e.g. localhost:8080)")
	gridFlag := flag.String("grid", "", "RxC grid size (e.g. 100x100): the -exp grid field size (default 100x100; smaller sizes run as smokes without touching the baseline) and the -exp serve hot-feed grid override (default 5x5)")
	flag.Parse()

	gridRows, gridCols := 0, 0
	if *gridFlag != "" {
		var err error
		gridRows, gridCols, err = parseGrid(*gridFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			os.Exit(1)
		}
	}

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "http: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/pprof and /debug/vars\n", srv.Addr())
	}

	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}

	if *benchCheck {
		if err := checkBench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "bench-check: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bench {
		if err := runBench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig5", func() error {
		sc := eval.DefaultScenario()
		sc.Seed = *seed
		r, err := eval.Fig5(sc)
		if err != nil {
			return err
		}
		fmt.Printf("duration %.0fs, three-axis accelerometer (counts)\n", r.Duration)
		fmt.Printf("  x: mean %8.1f  std %6.1f  range [%6.1f, %6.1f]\n", r.X.Mean, r.X.Std, r.X.Min, r.X.Max)
		fmt.Printf("  y: mean %8.1f  std %6.1f  range [%6.1f, %6.1f]\n", r.Y.Mean, r.Y.Std, r.Y.Min, r.Y.Max)
		fmt.Printf("  z: mean %8.1f  std %6.1f  range [%6.1f, %6.1f]\n", r.Z.Mean, r.Z.Std, r.Z.Min, r.Z.Max)
		fmt.Printf("  paper: z oscillates around ~1000 counts (1 g), x/y around 0\n")
		return nil
	})

	run("fig6", func() error {
		sc := eval.DefaultScenario()
		sc.Seed = *seed
		r, err := eval.Fig6(sc)
		if err != nil {
			return err
		}
		fmt.Printf("2048-point STFT (40.96 s), sub-2 Hz band, %d trials\n", r.Trials)
		fmt.Printf("  mean peaks: no-ship %.1f, ship %.1f\n", r.MeanNoShipPeaks, r.MeanShipPeaks)
		fmt.Printf("  wake-band (%.3f Hz) peak present: ship %.0f%%, no-ship %.0f%%\n",
			r.WakeFreq, 100*r.WakeBandFracShip, 100*r.WakeBandFracQuiet)
		fmt.Printf("  wake-band energy ratio ship/quiet: %.1fx\n", r.MeanShipWakeBandEnergyRatio)
		fmt.Printf("  paper: single high peak without ship; multiple peaks / wide crests with ship\n")
		return nil
	})

	run("fig7", func() error {
		sc := eval.DefaultScenario()
		sc.Seed = *seed
		r, err := eval.Fig7(sc)
		if err != nil {
			return err
		}
		fmt.Printf("Morlet CWT scalogram of the ship passage\n")
		fmt.Printf("  power below 1 Hz during passage: %.1f%%\n", 100*r.LowBandFractionDuring)
		fmt.Printf("  passage/quiet power ratio: %.1fx, peak row %.3f Hz\n", r.BurstRatio, r.PeakFreq)
		fmt.Printf("  paper: ship waves focus on the low frequency spectrum\n")
		return nil
	})

	run("fig8", func() error {
		sc := eval.DefaultScenario()
		sc.Seed = *seed
		r, err := eval.Fig8(sc)
		if err != nil {
			return err
		}
		fmt.Printf("raw vs 1 Hz low-passed z signal\n")
		fmt.Printf("  std: raw %.1f -> filtered %.1f counts\n", r.RawStd, r.FilteredStd)
		fmt.Printf("  >1 Hz band power: raw %.2f -> filtered %.5f counts^2/Hz-integrated\n", r.HighBandPowerRaw, r.HighBandPowerFiltered)
		fmt.Printf("  wake disturbance peak / quiet std: %.1fx\n", r.DisturbanceRatio)
		return nil
	})

	run("fig11", func() error {
		cfg := eval.DefaultFig11Config()
		cfg.Scenario.Seed = *seed
		if *trials > 0 {
			cfg.Trials = *trials
		}
		pts, err := eval.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("successful detection ratio vs anomaly frequency (%d trials/point)\n", cfg.Trials)
		fmt.Printf("%8s", "af\\M")
		for _, m := range cfg.Ms {
			fmt.Printf("%8.1f", m)
		}
		fmt.Println()
		for _, af := range cfg.AFs {
			fmt.Printf("%7.0f%%", af*100)
			for _, m := range cfg.Ms {
				for _, p := range pts {
					if p.M == m && p.AF == af {
						fmt.Printf("%8.2f", p.Ratio)
					}
				}
			}
			fmt.Println()
		}
		fmt.Printf("paper: ratio rises with af and M; ~0.70+ at M=2, af=60%%\n")
		return nil
	})

	run("table1", func() error {
		cfg := eval.DefaultTableConfig()
		cfg.Seed = *seed
		if *trials > 0 {
			cfg.Trials = *trials
		}
		cells, err := eval.Table1(cfg)
		if err != nil {
			return err
		}
		printTable("Table I: correlation coefficient WITHOUT ship intrusion", cfg, cells)
		fmt.Printf("paper: 0.019..0 falling with M and rows\n")
		return nil
	})

	run("table2", func() error {
		cfg := eval.DefaultTableConfig()
		cfg.Seed = *seed
		if *trials > 0 {
			cfg.Trials = *trials
		}
		cells, err := eval.Table2(cfg)
		if err != nil {
			return err
		}
		printTable("Table II: correlation coefficient WITH ship intrusion", cfg, cells)
		fmt.Printf("paper: 0.47..0.81, rising with M, falling with rows\n")
		return nil
	})

	run("resilience", func() error {
		cfg := eval.DefaultResilienceConfig()
		cfg.Seed = *seed
		if *trials > 0 {
			cfg.Trials = *trials
		}
		points, err := eval.Resilience(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("detection under radio loss and node failures (%d trials/point, paired seeds)\n", cfg.Trials)
		fmt.Printf("%6s %6s %12s | %7s %7s | %9s %9s\n",
			"loss", "fail", "transport", "detect", "speed", "failovers", "retrans")
		for _, p := range points {
			mode := "fire+forget"
			if p.Resilient {
				mode = "resilient"
			}
			fmt.Printf("%5.0f%% %5.0f%% %12s | %6.0f%% %6.0f%% | %9d %9d\n",
				100*p.LossRate, 100*p.FailFrac, mode,
				100*p.DetectionRatio, 100*p.SpeedRatio, p.Failovers, p.Retransmissions)
		}
		s := eval.Summarize(points)
		fmt.Printf("resilient: baseline %.0f%%, worst %.0f%%; fire+forget: baseline %.0f%%, worst %.0f%%\n",
			100*s.ResilientBaseline, 100*s.ResilientWorst,
			100*s.UnreliableBaseline, 100*s.UnreliableWorst)
		return nil
	})

	run("adversarial", func() error {
		cfg := eval.DefaultAdversarialConfig()
		cfg.Seed = *seed
		if *trials > 0 {
			cfg.Trials = *trials
		}
		points, err := eval.Adversarial(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("detection under byzantine report injection (%d trials/point, paired seeds)\n", cfg.Trials)
		fmt.Printf("%6s %11s | %7s %8s | %9s %9s %11s\n",
			"byz", "arm", "detect", "false/tr", "injected", "rejected", "quarantined")
		for _, p := range points {
			arm := "undefended"
			if p.Defended {
				arm = "defended"
			}
			fmt.Printf("%5.0f%% %11s | %6.0f%% %8.2f | %9d %9d %11d\n",
				100*p.ByzFrac, arm, 100*p.DetectionRatio, p.FalseAlarmRate,
				p.Injected, p.Rejected, p.Quarantined)
		}
		s := eval.SummarizeAdversarial(points)
		fmt.Printf("honest: detect %.0f%%, false alarms %.2f/trial; at %.0f%% byzantine: defended %.0f%% (false %.2f/trial), undefended %.0f%%\n",
			100*s.HonestDetection, s.HonestFalseAlarmRate, 100*s.WorstFrac,
			100*s.DefendedDetectionAtWorst, s.DefendedFalseAlarmsAtWorst,
			100*s.UndefendedDetectionAtWorst)
		return nil
	})

	run("scenarios", func() error {
		return runScenarios(*goldenDir, *update, *journalDir, *only)
	})

	run("fleet", func() error {
		return runFleetExp(*seed)
	})

	// The serve load generator is opt-in only: "all" regenerates the paper's
	// evaluation, while serve drives a 1000-tenant HTTP load run (~half a
	// minute of saturated ingest) and touches the baseline file.
	if want["serve"] {
		fmt.Println("== serve ==")
		if err := runServeExp(*tenants, *serveAddr, *benchOut, gridRows, gridCols); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	// The grid scaling run is opt-in like serve: it simulates the large
	// field (default 100x100 nodes) across a Workers curve after an
	// index-parity cross-check, and refreshes the baseline's grid entry
	// when run at the canonical size.
	if want["grid"] {
		fmt.Println("== grid ==")
		if err := runGridExp(gridRows, gridCols, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	// The trace smoke is opt-in like serve, and it keeps stdout clean: it
	// prints only the served detection-trace JSONL so the output pipes
	// straight into `sidwatch trace`.
	if want["trace"] {
		if err := runTraceExp(*serveAddr); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
	}

	run("fig12", func() error {
		cfg := eval.DefaultFig12Config()
		cfg.Seed = *seed
		rows, err := eval.Fig12(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("ship speed estimation (four nodes, D = 25 m)\n")
		for _, r := range rows {
			fmt.Printf("  actual %5.1f kn: est min %5.1f mean %5.1f max %5.1f kn, worst err %4.1f%%, runs %d (failures %d)\n",
				r.ActualKn, r.MinKn, r.MeanKn, r.MaxKn, 100*r.WorstRelErr, r.Runs, r.Failures)
		}
		fmt.Printf("paper: 10 kn -> 8..12 kn, 16 kn -> 15..18 kn, errors within 20%%\n")
		return nil
	})
}

func printTable(title string, cfg eval.TableConfig, cells []eval.TableCell) {
	fmt.Println(title)
	fmt.Printf("%6s", "M\\rows")
	for _, r := range cfg.RowsSet {
		fmt.Printf("%8d", r)
	}
	fmt.Println()
	for _, m := range cfg.Ms {
		fmt.Printf("%6.0f", m)
		for _, r := range cfg.RowsSet {
			for _, c := range cells {
				if c.M == m && c.Rows == r {
					fmt.Printf("%8.3f", c.C)
				}
			}
		}
		fmt.Println()
	}
}
