package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/sid-wsn/sid/internal/dsp"
	"github.com/sid-wsn/sid/internal/eval"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/sim"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// benchResult is one measured benchmark in the machine-readable baseline.
type benchResult struct {
	Name string `json:"name"`
	// NsPerOp is the mean wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Ops is the number of operations timed.
	Ops int `json:"ops"`
	// Note describes what one op is (e.g. samples synthesized).
	Note string `json:"note,omitempty"`
	// DetE2eP50Ns/DetE2eP99Ns are recorded only by the serve load entry:
	// detection end-to-end latency (chunk POST → detection event on the
	// wire) percentiles in nanoseconds.
	DetE2eP50Ns float64 `json:"det_e2e_p50_ns,omitempty"`
	DetE2eP99Ns float64 `json:"det_e2e_p99_ns,omitempty"`
	// IndexHitRate/PeakNodeBytes are recorded only by the grid scaling
	// entry: the spatial wake index's node-block selection rate (low is
	// good) and the peak per-node resident footprint in bytes.
	IndexHitRate  float64 `json:"index_hit_rate,omitempty"`
	PeakNodeBytes int64   `json:"peak_node_bytes,omitempty"`
}

// stageResult is one pipeline stage's aggregate from the instrumented
// deployment run (obs.Profiler spans: synthesis, detect, cluster, speed).
type stageResult struct {
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchFile is the schema of BENCH_baseline.json. Perf-affecting PRs must
// regenerate the file (see docs/PERFORMANCE.md).
type benchFile struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// GOMAXPROCS is the scheduler width the suite ran under (the -gomaxprocs
	// flag). The baseline is recorded at > 1 so Workers fan-out is measured;
	// NumCPU says how much hardware backed it — on a single-core host a
	// GOMAXPROCS=2 run is honest about showing ~1x parallel speedups.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is runtime.NumCPU() on the generating host.
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Stages is the per-stage wall-clock breakdown of one intruder crossing
	// (profiled deployment, Workers=GOMAXPROCS) with spectral synthesis —
	// the production-leaning configuration the ≥5x synthesis target is
	// pinned against. Wall-clock values — compare ratios across machines,
	// not absolutes.
	Stages map[string]stageResult `json:"stages,omitempty"`
	// StagesPhasor is the same profiled crossing on the exact phasor
	// reference path; Stages/StagesPhasor synthesis is the spectral speedup.
	StagesPhasor map[string]stageResult `json:"stages_phasor,omitempty"`
	Derived      map[string]string      `json:"derived"`
}

// timeIt runs fn repeatedly for roughly a second (after one warm-up call)
// and returns the mean ns/op and iteration count.
func timeIt(fn func()) (float64, int) {
	fn() // warm-up: plan caches, allocator
	start := time.Now()
	fn()
	per := time.Since(start)
	if per <= 0 {
		per = time.Nanosecond
	}
	n := int(time.Second / per)
	if n < 3 {
		n = 3
	}
	if n > 100000 {
		n = 100000
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), n
}

// profileStages runs one default deployment with a 10 kn intruder crossing
// under an attached stage profiler and returns the per-stage wall-clock
// aggregates. The crossing guarantees the cluster-confirmation and
// speed-estimation stages actually execute (a quiet sea never reaches them).
func profileStages(mode source.SynthesisMode) (map[string]stageResult, error) {
	col := obs.New()
	col.SetProfiler(obs.NewProfiler())
	cfg := sid.DefaultConfig()
	cfg.Seed = 7
	cfg.Synthesis = mode
	cfg.Obs = col
	rt, err := sid.NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	center := cfg.Grid.Center()
	dir := geo.Vec2{X: 0, Y: 1} // perpendicular crossing, as in the facade default
	track := geo.NewLine(center.Sub(dir.Scale(1000)), dir)
	ship, err := wake.NewShip(track, geo.Knots(10), 12)
	if err != nil {
		return nil, err
	}
	ship.Time0 = 40 - (ship.ArrivalTime(center) - ship.Time0)
	rt.AddShip(ship)
	if err := rt.Run(200); err != nil {
		return nil, err
	}
	out := make(map[string]stageResult)
	for _, st := range col.Profiler().Snapshot() {
		out[st.Stage] = stageResult{Count: st.Count, TotalNs: st.TotalNs, NsPerOp: st.NsPerOp()}
	}
	return out, nil
}

// runBench measures the performance baseline suite and writes it as JSON to
// path. The suite mirrors the go-test benchmarks in bench_test.go so the
// two stay comparable: per-sample vs batched wave synthesis, cached FFT
// plans, the batched sensing path, and a short full deployment serial vs
// parallel.
func runBench(path string) error {
	spec, err := ocean.NewPiersonMoskowitz(0.3, 6)
	if err != nil {
		return err
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, NumFreqs: 64, NumDirs: 8, Seed: 1})
	if err != nil {
		return err
	}
	p := geo.Vec2{X: 40, Y: 60}
	const block = 500 // samples per op, 10 s at 50 Hz

	var results []benchResult
	add := func(name, note string, fn func()) benchResult {
		ns, ops := timeIt(fn)
		r := benchResult{Name: name, NsPerOp: ns, Ops: ops, Note: note}
		results = append(results, r)
		fmt.Printf("  %-28s %12.0f ns/op  (%d ops)\n", name, ns, ops)
		return r
	}

	fmt.Println("== bench: performance baseline ==")
	var tick float64
	perSample := add("field_series_per_sample", fmt.Sprintf("%d samples via SampleSurface", block), func() {
		for s := 0; s < block; s++ {
			a, sl := field.SampleSurface(p, tick+float64(s)/50)
			tick += (a + sl.X) * 0 // keep the result live
		}
		tick++
	})
	accel := make([]float64, block)
	slopeX := make([]float64, block)
	slopeY := make([]float64, block)
	var t0 float64
	batched := add("field_series_batched", fmt.Sprintf("%d samples via AccumulateSeries", block), func() {
		field.AccumulateSeries(p, t0, 1.0/50, block, accel, slopeX, slopeY)
		t0++
	})

	// Spectral block synthesis: the same 500 samples through the FFT path
	// behind source.SynthSpectral (docs/SYNTHESIS.md). The ratio against
	// field_series_batched is the tentpole speedup.
	plan, err := ocean.NewSpectralPlan(field, ocean.SpectralConfig{Rate: 50})
	if err != nil {
		return err
	}
	stream := plan.NewStream(p)
	var st0 float64
	spectral := add("field_stream_spectral", fmt.Sprintf("%d samples via spectral AccumulateStream", block), func() {
		for i := range accel {
			accel[i], slopeX[i], slopeY[i] = 0, 0, 0
		}
		stream.AccumulateStream(st0*float64(block)/50, block, accel, slopeX, slopeY)
		st0++
	})

	xr := make([]float64, 2048)
	for i := range xr {
		xr[i] = float64(i % 97)
	}
	add("fft_2048_planned", "PowerSpectrum, cached radix-2 plan", func() { dsp.PowerSpectrum(xr) })

	xc := make([]complex128, 1500)
	for i := range xc {
		xc[i] = complex(float64(i%23), 0)
	}
	add("bluestein_1500_planned", "complex FFT, cached chirp-z plan", func() { dsp.FFT(xc) })

	sc := eval.DefaultScenario()
	sens, model, _, err := sc.Build(0)
	if err != nil {
		return err
	}
	var buf sensor.BlockBuffers
	var bt float64
	add("sensor_block_50", "one node, 1 s block at 50 Hz", func() {
		sens.SampleBlock(model, bt, 50, &buf)
		bt++
	})

	deployment := func(workers int, mode source.SynthesisMode) func() {
		return func() {
			cfg := sid.DefaultConfig()
			cfg.Seed = 7
			cfg.Workers = workers
			cfg.Synthesis = mode
			rt, err := sid.NewRuntime(cfg)
			if err != nil {
				panic(err)
			}
			if err := rt.Run(60); err != nil {
				panic(err)
			}
		}
	}
	serial := add("deployment_serial_60s", "5x5 grid, 60 s simulated, Workers=1", deployment(1, source.SynthPhasor))
	par := add("deployment_parallel_60s", "5x5 grid, 60 s simulated, Workers=GOMAXPROCS", deployment(0, source.SynthPhasor))
	sserial := add("deployment_serial_60s_spectral", "5x5 grid, 60 s simulated, Workers=1, spectral synthesis", deployment(1, source.SynthSpectral))
	spar := add("deployment_parallel_60s_spectral", "5x5 grid, 60 s simulated, Workers=GOMAXPROCS, spectral synthesis", deployment(0, source.SynthSpectral))

	// Fleet sharding: many small independent fields fanned across cores.
	// Inner Workers is forced to 1 by the fleet, so this measures the
	// across-deployment scaling axis rather than within-deployment fan-out.
	fleet := func(workers int) func() {
		return func() {
			fc := sid.FleetConfig{Workers: workers}
			for i := 0; i < 8; i++ {
				dc := sid.DefaultConfig()
				dc.Grid.Rows, dc.Grid.Cols = 3, 3
				dc.Seed = int64(100 + i)
				fc.Deployments = append(fc.Deployments, dc)
			}
			fl, err := sid.NewFleet(fc)
			if err != nil {
				panic(err)
			}
			if err := fl.Run(30); err != nil {
				panic(err)
			}
		}
	}
	fserial := add("fleet_8x30s_serial", "8 independent 3x3 fields, 30 s simulated, fleet Workers=1", fleet(1))
	fpar := add("fleet_8x30s_parallel", "8 independent 3x3 fields, 30 s simulated, fleet Workers=GOMAXPROCS", fleet(0))

	// Stage breakdown: one profiled deployment with an intruder crossing per
	// synthesis mode, so every pipeline stage (synthesis, detect, cluster,
	// speed) runs. The spectral run is the headline Stages section.
	stages, err := profileStages(source.SynthSpectral)
	if err != nil {
		return err
	}
	stagesPhasor, err := profileStages(source.SynthPhasor)
	if err != nil {
		return err
	}
	printStages := func(label string, st map[string]stageResult) {
		fmt.Printf("  stage breakdown (profiled intruder crossing, %s):\n", label)
		names := make([]string, 0, len(st))
		for name := range st {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := st[name]
			fmt.Printf("    %-10s %6d spans  %12.0f ns/op  %8.1f ms total\n",
				name, s.Count, s.NsPerOp, float64(s.TotalNs)/1e6)
		}
	}
	printStages("spectral", stages)
	printStages("phasor", stagesPhasor)

	// Serving layer under load: 1000 closed-loop tenants against an
	// in-process detection server over loopback HTTP. Recorded as p99
	// POST→confirmation latency; the sustained node-block throughput rides
	// along in the note and the derived section.
	fmt.Println("  serve load (1000 tenants, closed-loop over loopback)...")
	serveRes, err := measureServe(1000, "", 0, 0)
	if err != nil {
		return err
	}
	serveEntry := serveRes.benchEntry()
	results = append(results, serveEntry)
	fmt.Printf("  %-28s %12.0f ns/op  (%d ops)  %.0f node-blocks/s\n",
		serveEntry.Name, serveEntry.NsPerOp, serveEntry.Ops, serveRes.BlocksPerSec())

	radio := wsn.DefaultRadioConfig()
	radio.LossProb = 0.2
	radio.Reliable = wsn.DefaultReliableConfig()
	rsched := sim.NewScheduler(1)
	rnet, err := wsn.NewNetwork(rsched, geo.GridSpec{Rows: 1, Cols: 2, Spacing: 25}.Positions(), radio)
	if err != nil {
		return err
	}
	var seq int
	add("reliable_unicast_20loss", "one ARQ-acked hop at 20% loss, incl. retransmissions", func() {
		if err := rnet.Unicast(0, 1, "bench", seq); err != nil {
			panic(err)
		}
		seq++
		rsched.RunAll()
	})

	out := benchFile{
		GeneratedBy:  "go run ./cmd/sidbench -bench",
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Benchmarks:   results,
		Stages:       stages,
		StagesPhasor: stagesPhasor,
		Derived: map[string]string{
			"field_series_speedup":                 fmt.Sprintf("%.2fx", perSample.NsPerOp/batched.NsPerOp),
			"field_spectral_speedup":               fmt.Sprintf("%.2fx", batched.NsPerOp/spectral.NsPerOp),
			"deployment_parallel_speedup":          fmt.Sprintf("%.2fx", serial.NsPerOp/par.NsPerOp),
			"deployment_parallel_speedup_spectral": fmt.Sprintf("%.2fx", sserial.NsPerOp/spar.NsPerOp),
			"deployment_spectral_speedup":          fmt.Sprintf("%.2fx", serial.NsPerOp/sserial.NsPerOp),
			"synthesis_spectral_speedup":           fmt.Sprintf("%.2fx", stagesPhasor["synthesis"].NsPerOp/stages["synthesis"].NsPerOp),
			"fleet_parallel_speedup":               fmt.Sprintf("%.2fx", fserial.NsPerOp/fpar.NsPerOp),
			"serve_blocks_per_sec":                 fmt.Sprintf("%.0f", serveRes.BlocksPerSec()),
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  field series speedup: %s\n", out.Derived["field_series_speedup"])
	fmt.Printf("  field spectral speedup: %s\n", out.Derived["field_spectral_speedup"])
	fmt.Printf("  synthesis stage spectral speedup: %s\n", out.Derived["synthesis_spectral_speedup"])
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// checkBench validates an existing baseline file without re-measuring: the
// `make bench-check` smoke gate. It fails when the file is missing, was
// recorded at GOMAXPROCS ≤ 1 (parallel speedups would be meaningless), or
// lacks the per-stage breakdown the synthesis perf target is pinned to.
func checkBench(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if bf.GOMAXPROCS <= 1 {
		return fmt.Errorf("%s: recorded at gomaxprocs=%d; regenerate with -gomaxprocs 2 or higher so parallel speedups are measured", path, bf.GOMAXPROCS)
	}
	if bf.NumCPU == 0 {
		return fmt.Errorf("%s: num_cpu missing; regenerate with the current sidbench", path)
	}
	if len(bf.Stages) == 0 {
		return fmt.Errorf("%s: no stage breakdown; regenerate with the current sidbench", path)
	}
	for _, stage := range []string{"synthesis", "detect"} {
		if _, ok := bf.Stages[stage]; !ok {
			return fmt.Errorf("%s: stage %q missing from the breakdown", path, stage)
		}
	}
	if len(bf.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	hasServe := false
	for _, b := range bf.Benchmarks {
		if b.Name == serveBenchName {
			hasServe = b.Ops > 0 && b.NsPerOp > 0
			if hasServe && (b.DetE2eP50Ns <= 0 || b.DetE2eP99Ns <= 0) {
				return fmt.Errorf("%s: %s lacks detection e2e percentiles; refresh it with -exp serve", path, serveBenchName)
			}
			break
		}
	}
	if !hasServe {
		return fmt.Errorf("%s: %s missing; regenerate with -bench or refresh it with -exp serve", path, serveBenchName)
	}
	hasGrid := false
	for _, b := range bf.Benchmarks {
		if b.Name == gridBenchName {
			hasGrid = b.Ops > 0 && b.NsPerOp > 0
			if hasGrid && (b.IndexHitRate <= 0 || b.PeakNodeBytes <= 0) {
				return fmt.Errorf("%s: %s lacks index_hit_rate/peak_node_bytes; refresh it with -exp grid", path, gridBenchName)
			}
			break
		}
	}
	if !hasGrid {
		return fmt.Errorf("%s: %s missing; refresh it with -exp grid", path, gridBenchName)
	}
	fmt.Printf("%s: ok (gomaxprocs=%d, num_cpu=%d, %d benchmarks, %d stages)\n",
		path, bf.GOMAXPROCS, bf.NumCPU, len(bf.Benchmarks), len(bf.Stages))
	return nil
}
