package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	sidapi "github.com/sid-wsn/sid"
	"github.com/sid-wsn/sid/internal/serve"
)

// runTraceExp is the -exp trace entry point and the CI trace smoke: record
// the detection-bearing hot feed with a tracer attached, replay it into a
// traced tenant (in-process unless -addr points at a running sidserve),
// fetch the tenant's deterministic trace serialization, assert it matches
// the recording byte for byte, and print the JSONL to stdout so it can be
// piped into `sidwatch trace`. All commentary goes to stderr.
func runTraceExp(addr string) error {
	const label = "trace-smoke"
	spec := sidapi.DefaultDeployment()
	spec.Rows, spec.Cols = 5, 5
	spec.Seed = 301
	feed, err := serve.BuildFeed(serve.FeedSpec{
		Spec:       spec,
		Intruders:  []sidapi.Intruder{{SpeedKnots: 10, CrossAt: 60}},
		Duration:   120,
		ChunkS:     10,
		TraceLabel: label,
	})
	if err != nil {
		return err
	}
	if len(feed.Detections) == 0 {
		return fmt.Errorf("trace: the recorded feed produced no detections")
	}
	if len(feed.Trace) == 0 {
		return fmt.Errorf("trace: the recorded feed produced no trace spans")
	}

	base := "http://" + addr
	if addr != "" {
		if err := waitReady(base, 10*time.Second); err != nil {
			return err
		}
	} else {
		srv := serve.New(serve.Config{})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}
	client := http.DefaultClient

	body, err := json.Marshal(serve.CreateRequest{
		ID: label, Spec: spec, Trace: true, Genesis: feed.Genesis,
	})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/tenants", serve.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("trace: create: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("trace: create: status %d", resp.StatusCode)
	}
	defer func() {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/tenants/"+label, nil)
		if err != nil {
			return
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	var accepted float64
	for k, chunk := range feed.Chunks {
		for {
			resp, err := client.Post(base+"/v1/tenants/"+label+"/chunks",
				serve.ContentTypeBundle, bytes.NewReader(chunk))
			if err != nil {
				return fmt.Errorf("trace: chunk %d: %w", k, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			return fmt.Errorf("trace: chunk %d: status %d", k, resp.StatusCode)
		}
		accepted += 10
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st serve.TenantStatus
		resp, err := client.Get(base + "/v1/tenants/" + label)
		if err != nil {
			return fmt.Errorf("trace: status: %w", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("trace: status: %w", err)
		}
		if st.Err != "" {
			return fmt.Errorf("trace: tenant failed: %s", st.Err)
		}
		if st.ProcessedS >= accepted {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("trace: tenant stuck at %gs of %gs processed", st.ProcessedS, accepted)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err = client.Get(base + "/v1/tenants/" + label + "/traces?format=jsonl")
	if err != nil {
		return fmt.Errorf("trace: fetch: %w", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("trace: fetch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: fetch: status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, feed.Trace) {
		return fmt.Errorf("trace: served trace differs from the in-process recording (%d vs %d bytes) — wire determinism broken",
			len(got), len(feed.Trace))
	}
	fmt.Fprintf(os.Stderr, "trace: %d detections, %d trace bytes, wire == in-process\n",
		len(feed.Detections), len(got))
	os.Stdout.Write(got)
	return nil
}
