package main

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/scenario"
)

// runScenarios executes the golden regression corpus. With update=true the
// golden files are rewritten (review the diff before committing!);
// otherwise each run is checked against the committed golden and any
// out-of-tolerance metric is reported.
func runScenarios(goldenDir string, update bool) error {
	drift := 0
	for _, spec := range scenario.Corpus() {
		res, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s clusters %d, cancelled %d, false confirms %d, node reports %d\n",
			res.Name, res.ClustersFormed, res.Cancelled, res.FalseConfirms, len(res.NodeReports))
		for _, sh := range res.Ships {
			line := fmt.Sprintf("  %-12s true %5.1f kn @ %6.1f°, sweep [%5.1f, %5.1f]s:",
				sh.Name, sh.TrueSpeedKn, sh.TrueHeadingDeg, sh.SweepStart, sh.SweepEnd)
			if !sh.Detected {
				fmt.Printf("%s MISSED\n", line)
				continue
			}
			fmt.Printf("%s %d confirm(s), C %.3f", line, sh.Confirms, sh.BestC)
			if sh.HasSpeed {
				fmt.Printf(", est %.1f kn @ %.1f° (err %.0f%%, %.1f°)",
					sh.SpeedKn, sh.HeadingDeg, 100*sh.SpeedErrFrac, sh.HeadingErrDeg)
			}
			fmt.Println()
		}
		if update {
			if err := scenario.WriteGolden(goldenDir, res); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", scenario.GoldenPath(goldenDir, res.Name))
			continue
		}
		want, err := scenario.LoadGolden(goldenDir, spec.Name)
		if err != nil {
			return fmt.Errorf("no golden for %q (run with -update to create): %w", spec.Name, err)
		}
		for _, viol := range scenario.Diff(want, res) {
			fmt.Printf("  DRIFT: %s\n", viol)
			drift++
		}
	}
	if drift > 0 {
		return fmt.Errorf("%d metric(s) drifted outside tolerance", drift)
	}
	return nil
}
