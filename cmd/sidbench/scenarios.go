package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/scenario"
)

// runScenarios executes the golden regression corpus. With update=true the
// golden files are rewritten (review the diff before committing!);
// otherwise each run is checked against the committed golden and any
// out-of-tolerance metric is reported. only, when non-empty, restricts the
// sweep to the named scenario. journalDir, when non-empty, attaches a fresh
// observability collector per scenario and streams its event journal to
// <journalDir>/<name>.jsonl, ending with an embedded metrics snapshot —
// render it with sidwatch.
func runScenarios(goldenDir string, update bool, journalDir, only string) error {
	if journalDir != "" {
		if err := os.MkdirAll(journalDir, 0o755); err != nil {
			return err
		}
	}
	drift := 0
	matched := false
	// The adversarial family keeps its own golden subdirectory so the two
	// corpora can be refreshed and reviewed independently.
	for _, c := range []struct {
		specs []scenario.Spec
		dir   string
	}{
		{scenario.Corpus(), goldenDir},
		{scenario.AdversarialCorpus(), scenario.AdversarialGoldenDir(goldenDir)},
	} {
		d, m, err := runCorpus(c.specs, c.dir, update, journalDir, only)
		if err != nil {
			return err
		}
		drift += d
		matched = matched || m
	}
	if only != "" && !matched {
		return fmt.Errorf("no scenario named %q in either corpus", only)
	}
	if drift > 0 {
		return fmt.Errorf("%d metric(s) drifted outside tolerance", drift)
	}
	return nil
}

// runCorpus executes one golden family against its directory, returning the
// drift count and whether any scenario matched the -only filter.
func runCorpus(specs []scenario.Spec, goldenDir string, update bool, journalDir, only string) (int, bool, error) {
	drift := 0
	matched := false
	for _, spec := range specs {
		if only != "" && spec.Name != only {
			continue
		}
		matched = true
		var col *obs.Collector
		var sink *os.File
		if journalDir != "" {
			var err error
			sink, err = os.Create(filepath.Join(journalDir, spec.Name+".jsonl"))
			if err != nil {
				return drift, matched, err
			}
			j := obs.NewJournal(obs.DefaultJournalCap)
			j.SetSink(sink)
			col = obs.New()
			col.SetJournal(j)
			obs.PublishRegistry(col.Registry()) // live /debug/vars follows the current run
		}
		res, err := scenario.RunWithCollector(spec, col)
		if err != nil {
			return drift, matched, err
		}
		if col != nil {
			// Close the journal with the final counter state so sidwatch can
			// print radio totals without a live registry.
			col.Emit(spec.Duration, obs.KindMetrics, col.Registry().Snapshot())
			if err := col.Journal().Err(); err != nil {
				return drift, matched, fmt.Errorf("journal %s: %w", spec.Name, err)
			}
			if err := sink.Close(); err != nil {
				return drift, matched, err
			}
			fmt.Printf("  wrote journal %s (%d events)\n",
				filepath.Join(journalDir, spec.Name+".jsonl"), col.Journal().Total())
		}
		fmt.Printf("%-14s clusters %d, cancelled %d, false confirms %d, node reports %d\n",
			res.Name, res.ClustersFormed, res.Cancelled, res.FalseConfirms, len(res.NodeReports))
		for _, sh := range res.Ships {
			line := fmt.Sprintf("  %-12s true %5.1f kn @ %6.1f°, sweep [%5.1f, %5.1f]s:",
				sh.Name, sh.TrueSpeedKn, sh.TrueHeadingDeg, sh.SweepStart, sh.SweepEnd)
			if !sh.Detected {
				fmt.Printf("%s MISSED\n", line)
				continue
			}
			fmt.Printf("%s %d confirm(s), C %.3f", line, sh.Confirms, sh.BestC)
			if sh.HasSpeed {
				fmt.Printf(", est %.1f kn @ %.1f° (err %.0f%%, %.1f°)",
					sh.SpeedKn, sh.HeadingDeg, 100*sh.SpeedErrFrac, sh.HeadingErrDeg)
			}
			fmt.Println()
		}
		if update {
			if err := scenario.WriteGolden(goldenDir, res); err != nil {
				return drift, matched, err
			}
			fmt.Printf("  wrote %s\n", scenario.GoldenPath(goldenDir, res.Name))
			continue
		}
		want, err := scenario.LoadGolden(goldenDir, spec.Name)
		if err != nil {
			return drift, matched, fmt.Errorf("no golden for %q (run with -update to create): %w", spec.Name, err)
		}
		for _, viol := range scenario.Diff(want, res) {
			fmt.Printf("  DRIFT: %s\n", viol)
			drift++
		}
	}
	return drift, matched, nil
}
