package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/scenario"
	"github.com/sid-wsn/sid/internal/source"
)

// manifestFile carries the recorded scenario's spec alongside the per-node
// traces, so replay needs nothing but the directory.
const manifestFile = "manifest.json"

// recordCmd runs a corpus scenario while teeing every node's sample stream
// into per-node SIDTRACE files plus a manifest of the generating spec.
func recordCmd(args []string) error {
	fs := flag.NewFlagSet("sidtrace record", flag.ExitOnError)
	name := fs.String("scenario", "single-10kn", "corpus scenario to record (see -list)")
	dir := fs.String("dir", "traces", "output directory for per-node traces + manifest")
	list := fs.Bool("list", false, "list corpus scenarios and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, spec := range scenario.Corpus() {
			fmt.Printf("%-24s %4.0f s, %d ships, seed %d\n",
				spec.Name, spec.Duration, len(spec.Ships), spec.Seed)
		}
		return nil
	}
	spec, err := corpusSpec(*name)
	if err != nil {
		return err
	}
	res, rec, err := scenario.Record(spec, nil)
	if err != nil {
		return err
	}
	if err := rec.Save(*dir); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, manifestFile), append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d node traces in %s (%d node reports, %d confirmations)\n",
		spec.Name, gridNodes(spec), *dir, len(res.NodeReports), len(res.Sink))
	return nil
}

// replayCmd feeds a recorded directory back through the detection pipeline
// and prints the detections; -verify re-runs the originating simulation and
// requires bit-identical results.
func replayCmd(args []string) error {
	fs := flag.NewFlagSet("sidtrace replay", flag.ExitOnError)
	dir := fs.String("dir", "traces", "directory written by sidtrace record")
	verify := fs.Bool("verify", false, "re-run the originating simulation and require bit-identical detections")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(*dir, manifestFile))
	if err != nil {
		return fmt.Errorf("reading manifest (was this directory written by sidtrace record?): %w", err)
	}
	var spec scenario.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return err
	}
	src, err := source.OpenTraceDir(*dir)
	if err != nil {
		return err
	}
	defer src.Close()
	res, err := scenario.Replay(spec, src, nil)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s: %d node reports, %d confirmations\n",
		spec.Name, len(res.NodeReports), len(res.Sink))
	for _, rep := range res.Sink {
		fmt.Printf("  head %d: C=%.3f reports=%d onset=%.1f s", rep.Head, rep.C, rep.Reports, rep.MeanOnset)
		if rep.HasSpeed {
			fmt.Printf(" speed=%.1f kn heading=%.0f°", geo.ToKnots(rep.Speed), geo.ToDeg(rep.Heading))
		}
		fmt.Println()
	}
	if !*verify {
		return nil
	}
	orig, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(res, orig) {
		return fmt.Errorf("verify FAILED: replay differs from the originating simulation "+
			"(%d vs %d node reports, %d vs %d confirmations)",
			len(res.NodeReports), len(orig.NodeReports), len(res.Sink), len(orig.Sink))
	}
	fmt.Println("verify OK: replay is bit-identical to the originating simulation")
	return nil
}

func corpusSpec(name string) (scenario.Spec, error) {
	for _, spec := range scenario.Corpus() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return scenario.Spec{}, fmt.Errorf("no corpus scenario %q (use record -list)", name)
}

func gridNodes(spec scenario.Spec) int {
	rows, cols := spec.Rows, spec.Cols
	if rows == 0 {
		rows = 4
	}
	if cols == 0 {
		cols = 5
	}
	return rows * cols
}
