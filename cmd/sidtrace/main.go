// Command sidtrace generates, inspects, records and replays accelerometer
// traces in the SID trace format — the stand-in for the paper's sea-trial
// recordings.
//
// Subcommands close the record→replay loop around the detection pipeline:
//
//	sidtrace record -scenario single-10kn -dir traces/   # scenario → per-node SIDTRACE files
//	sidtrace replay -dir traces/                         # feed them back, print detections
//	sidtrace replay -dir traces/ -verify                 # re-run the sim, require bit-equality
//
// Legacy single-trace generation and inspection remain:
//
//	sidtrace -o pass.sidtrc -dur 400 -ship 10 -dist 25   # generate
//	sidtrace -i pass.sidtrc                              # inspect
//	sidtrace -i pass.sidtrc -csv pass.csv                # convert
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sid-wsn/sid/internal/eval"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/stats"
	"github.com/sid-wsn/sid/internal/trace"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			if err := recordCmd(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case "replay":
			if err := replayCmd(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
	}

	var (
		out    = flag.String("o", "", "output trace file to generate")
		in     = flag.String("i", "", "input trace file to inspect")
		csvOut = flag.String("csv", "", "also write the trace as CSV to this path")
		dur    = flag.Float64("dur", 400, "recording duration in seconds")
		shipKn = flag.Float64("ship", 10, "ship speed in knots (0 = no ship)")
		dist   = flag.Float64("dist", 25, "buoy distance from the sailing line (m)")
		arrive = flag.Float64("arrive", 0.6, "wake arrival as a fraction of the duration")
		hs     = flag.Float64("hs", 0.4, "significant wave height (m)")
		tp     = flag.Float64("tp", 6, "sea peak period (s)")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sidtrace record|replay [flags]  (see -h of each)\n   or: sidtrace [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *out != "":
		if err := generate(*out, *csvOut, *dur, *shipKn, *dist, *arrive, *hs, *tp, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *in != "":
		if err := inspect(*in, *csvOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(path, csvPath string, dur, shipKn, dist, arrive, hs, tp float64, seed int64) error {
	sc := eval.Scenario{
		Hs: hs, Tp: tp, Gamma: 3.3,
		ShipSpeed: geo.Knots(shipKn),
		ShipDist:  dist,
		Drift:     true,
		Seed:      seed,
	}
	samples, ship, err := sc.Record(dur, arrive*dur)
	if err != nil {
		return err
	}
	h := trace.Header{
		SampleRate: sensor.DefaultAccelConfig().SampleRate,
		CountsPerG: sensor.DefaultAccelConfig().CountsPerG,
		Seed:       seed,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, h, samples); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples, %.0f s at %.0f Hz", path, len(samples), dur, h.SampleRate)
	if ship != nil {
		fmt.Printf(", ship %.0f kn at %.0f m (front at t=%.1f s)", shipKn, dist, arrive*dur)
	}
	fmt.Println()
	if csvPath != "" {
		return writeCSV(csvPath, h, samples)
	}
	return nil
}

func inspect(path, csvPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, samples, err := trace.Read(f)
	if err != nil {
		return err
	}
	z := sensor.ZSeries(samples)
	m, sd := stats.MeanStd(z)
	min, max := stats.MinMax(z)
	fmt.Printf("%s: %d samples, %.1f s at %.0f Hz, scale %.0f counts/g, seed %d\n",
		path, h.NumSamples, float64(h.NumSamples)/h.SampleRate, h.SampleRate, h.CountsPerG, h.Seed)
	fmt.Printf("  z: mean %.1f std %.1f range [%.0f, %.0f] counts\n", m, sd, min, max)
	if csvPath != "" {
		return writeCSV(csvPath, h, samples)
	}
	return nil
}

func writeCSV(path string, h trace.Header, samples []sensor.Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, h, samples); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
