package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/sid-wsn/sid/internal/obs"
)

// traceMain is the `sidwatch trace` subcommand: it reads a detection trace
// set — either the TraceSet JSON served at /v1/tenants/{id}/traces or the
// deterministic span JSONL (?format=jsonl, obs.Tracer.SerializePipeline) —
// and renders one waterfall per confirmed detection. With -wall the
// wall-clock overlays (evaluation and serving-layer timings, kept out of
// the deterministic serialization) are shown alongside the sim-time bars.
// -min-kinds N exits nonzero unless at least N distinct span kinds appear,
// which is what the CI smoke asserts.
func traceMain(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	minKinds := fs.Int("min-kinds", 0, "fail unless at least this many distinct span kinds appear")
	wall := fs.Bool("wall", false, "show wall-clock overlays (wall_ns) next to sim-time spans")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sidwatch trace [-min-kinds N] [-wall] [traces.json|traces.jsonl]\nRenders per-detection waterfalls from a trace set (JSON or span JSONL).\nWith no argument the trace set is read from stdin.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sidwatch trace: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidwatch trace: %v\n", err)
		return 1
	}
	set, err := parseTraceSet(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidwatch trace: %v\n", err)
		return 1
	}
	kinds := renderTraceSet(os.Stdout, set, *wall)
	if len(kinds) < *minKinds {
		fmt.Fprintf(os.Stderr, "sidwatch trace: %d distinct span kinds (%s), want >= %d\n",
			len(kinds), strings.Join(kinds, ", "), *minKinds)
		return 1
	}
	return 0
}

// parseTraceSet accepts either the TraceSet JSON document or the
// deterministic span JSONL (one Span per line, Trace field set).
func parseTraceSet(data []byte) (obs.TraceSet, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return obs.TraceSet{}, fmt.Errorf("empty input")
	}
	if trimmed[0] == '{' && !bytes.Contains(bytes.SplitN(trimmed, []byte{'\n'}, 2)[0], []byte(`"kind"`)) {
		var set obs.TraceSet
		if err := json.Unmarshal(trimmed, &set); err != nil {
			return obs.TraceSet{}, fmt.Errorf("parsing trace set: %w", err)
		}
		return set, nil
	}
	// Span JSONL: group lines by their Trace ID, preserving first-seen
	// order (the serialization sorts by TraceID already).
	var set obs.TraceSet
	index := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(trimmed))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return obs.TraceSet{}, fmt.Errorf("line %d: %w", line, err)
		}
		if s.Trace == "" {
			return obs.TraceSet{}, fmt.Errorf("line %d: span without a trace id", line)
		}
		i, ok := index[s.Trace]
		if !ok {
			i = len(set.Traces)
			index[s.Trace] = i
			set.Traces = append(set.Traces, obs.TraceDoc{ID: s.Trace})
		}
		s.Trace = ""
		set.Traces[i].Spans = append(set.Traces[i].Spans, s)
	}
	if err := sc.Err(); err != nil {
		return obs.TraceSet{}, err
	}
	return set, nil
}

// renderTraceSet prints one waterfall per trace and returns the sorted set
// of distinct span kinds seen (pipeline and serving spans combined).
func renderTraceSet(w io.Writer, set obs.TraceSet, wall bool) []string {
	if set.Label != "" {
		fmt.Fprintf(w, "trace set %q: %d confirmed detections\n", set.Label, len(set.Traces))
	} else {
		fmt.Fprintf(w, "trace set: %d confirmed detections\n", len(set.Traces))
	}
	for _, m := range set.Genesis {
		fmt.Fprintf(w, "  genesis: ship %d at t=%.2fs %s\n", m.Ship, m.T, m.Note)
	}
	kinds := map[string]bool{}
	for _, doc := range set.Traces {
		fmt.Fprintf(w, "\n%s\n", doc.ID)
		spans := append(append([]obs.Span(nil), doc.Spans...), doc.Serve...)
		for _, s := range spans {
			kinds[s.Kind] = true
		}
		renderWaterfall(w, spans, wall)
	}
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	fmt.Fprintf(w, "\n%d span kinds: %s\n", len(out), strings.Join(out, ", "))
	return out
}

// renderWaterfall prints spans as scaled text bars over the trace's
// sim-time extent. Instantaneous spans render as a single tick.
func renderWaterfall(w io.Writer, spans []obs.Span, wall bool) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "  (no spans)")
		return
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End < spans[j].End
	})
	tMin, tMax := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start < tMin {
			tMin = s.Start
		}
		if s.End > tMax {
			tMax = s.End
		}
	}
	const width = 48
	scale := func(t float64) int {
		if tMax <= tMin {
			return 0
		}
		p := int(float64(width) * (t - tMin) / (tMax - tMin))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	for _, s := range spans {
		bar := []byte(strings.Repeat(" ", width))
		a, b := scale(s.Start), scale(s.End)
		if b <= a {
			bar[a] = '|'
		} else {
			for i := a; i <= b; i++ {
				bar[i] = '='
			}
			bar[a], bar[b] = '[', ']'
		}
		detail := fmt.Sprintf("node=%d", s.Node)
		if s.Peer != 0 {
			detail += fmt.Sprintf(" peer=%d", s.Peer)
		}
		if s.Seq != 0 {
			detail += fmt.Sprintf(" seq=%d", s.Seq)
		}
		if s.Value != 0 {
			detail += fmt.Sprintf(" value=%.3g", s.Value)
		}
		if s.Note != "" {
			detail += " " + s.Note
		}
		if wall && s.WallNs != 0 {
			detail += fmt.Sprintf(" wall=%.3fms", float64(s.WallNs)/1e6)
		}
		fmt.Fprintf(w, "  %-15s %s %9.2fs -> %9.2fs  %s\n", s.Kind, bar, s.Start, s.End, detail)
	}
}
