package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/sid-wsn/sid/internal/obs"
)

// render reconstructs a per-run report from the journal's raw events and
// writes it to w. It tolerates unknown kinds (forward compatibility) and
// payloads it cannot decode; it only fails on an empty journal.
func render(w io.Writer, events []obs.RawEvent) error {
	if len(events) == 0 {
		return fmt.Errorf("empty journal")
	}

	type nodeAgg struct {
		node, row        int
		windows, reports int
		firstOnset       float64
		peakEnergy       float64
	}
	nodes := map[int]*nodeAgg{}
	nodeOf := func(id int) *nodeAgg {
		a, ok := nodes[id]
		if !ok {
			a = &nodeAgg{node: id, row: -1, firstOnset: math.Inf(1)}
			nodes[id] = a
		}
		return a
	}

	kinds := map[string]int{}
	var tMin, tMax = math.Inf(1), math.Inf(-1)
	var evals, cancels, sinks, fits, elects, joins, setups, extends []obs.RawEvent
	var arqRetrans, arqAcks, arqDrops, arqDropsReceived int
	var snapshot *obs.Snapshot

	for _, e := range events {
		kinds[e.Kind]++
		if e.T < tMin {
			tMin = e.T
		}
		if e.T > tMax {
			tMax = e.T
		}
		switch e.Kind {
		case obs.KindNodeWindow:
			var p obs.NodeWindow
			if json.Unmarshal(e.Data, &p) == nil {
				nodeOf(p.Node).windows++
			}
		case obs.KindNodeReport:
			var p obs.NodeReport
			if json.Unmarshal(e.Data, &p) == nil {
				a := nodeOf(p.Node)
				a.reports++
				a.row = p.Row
				if p.Onset < a.firstOnset {
					a.firstOnset = p.Onset
				}
				if p.Energy > a.peakEnergy {
					a.peakEnergy = p.Energy
				}
			}
		case obs.KindClusterSetup:
			setups = append(setups, e)
		case obs.KindClusterJoin:
			joins = append(joins, e)
		case obs.KindClusterExtend:
			extends = append(extends, e)
		case obs.KindClusterCancel:
			cancels = append(cancels, e)
		case obs.KindClusterEval:
			evals = append(evals, e)
		case obs.KindSpeedFit:
			fits = append(fits, e)
		case obs.KindSinkReport:
			sinks = append(sinks, e)
		case obs.KindFailoverElect:
			elects = append(elects, e)
		case obs.KindArqRetransmit:
			arqRetrans++
		case obs.KindArqAck:
			arqAcks++
		case obs.KindArqDrop:
			arqDrops++
			var p obs.ArqDrop
			if json.Unmarshal(e.Data, &p) == nil && p.Received {
				arqDropsReceived++
			}
		case obs.KindMetrics:
			var s obs.Snapshot
			if json.Unmarshal(e.Data, &s) == nil {
				snapshot = &s
			}
		}
	}

	fmt.Fprintf(w, "SID run report — %d events, t = [%.1f, %.1f]s\n", len(events), tMin, tMax)
	kindNames := make([]string, 0, len(kinds))
	for k := range kinds {
		kindNames = append(kindNames, k)
	}
	sort.Strings(kindNames)
	parts := make([]string, 0, len(kindNames))
	for _, k := range kindNames {
		parts = append(parts, fmt.Sprintf("%s:%d", k, kinds[k]))
	}
	fmt.Fprintf(w, "  %s\n\n", strings.Join(parts, "  "))

	// Node timeline: every node that saw the wake, ordered by first onset.
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := nodes[ids[i]], nodes[ids[j]]
		if a.firstOnset != b.firstOnset {
			return a.firstOnset < b.firstOnset
		}
		return a.node < b.node
	})
	fmt.Fprintf(w, "node timeline (%d nodes with anomaly windows)\n", len(ids))
	for _, id := range ids {
		a := nodes[id]
		row := "-"
		if a.row >= 0 {
			row = fmt.Sprintf("%d", a.row)
		}
		onset := "      -"
		if !math.IsInf(a.firstOnset, 1) {
			onset = fmt.Sprintf("%7.1f", a.firstOnset)
		}
		fmt.Fprintf(w, "  node %3d  row %-2s  windows %3d  reports %2d  first onset %ss  peak E %.2f\n",
			a.node, row, a.windows, a.reports, onset, a.peakEnergy)
	}
	fmt.Fprintln(w)

	// Row sweep: the wake front should hit rows in order; per row, the
	// earliest reported onset tells the sweep direction and speed.
	type rowAgg struct {
		row      int
		nodes    int
		earliest float64
	}
	rows := map[int]*rowAgg{}
	for _, a := range nodes {
		if a.row < 0 || math.IsInf(a.firstOnset, 1) {
			continue
		}
		ra, ok := rows[a.row]
		if !ok {
			ra = &rowAgg{row: a.row, earliest: math.Inf(1)}
			rows[a.row] = ra
		}
		ra.nodes++
		if a.firstOnset < ra.earliest {
			ra.earliest = a.firstOnset
		}
	}
	if len(rows) > 0 {
		rlist := make([]*rowAgg, 0, len(rows))
		for _, ra := range rows {
			rlist = append(rlist, ra)
		}
		sort.Slice(rlist, func(i, j int) bool { return rlist[i].row < rlist[j].row })
		fmt.Fprintln(w, "row sweep (earliest reported onset per grid row)")
		for _, ra := range rlist {
			fmt.Fprintf(w, "  row %d  %2d reporting node(s)  first onset %8.1fs\n", ra.row, ra.nodes, ra.earliest)
		}
		fmt.Fprintln(w)
	}

	// Cluster lifecycle and correlation breakdown.
	fmt.Fprintf(w, "clusters: %d setup, %d join(s), %d extension(s), %d cancellation(s), %d failover election(s)\n",
		len(setups), len(joins), len(extends), len(cancels), len(elects))
	for _, e := range cancels {
		var p obs.ClusterCancel
		if json.Unmarshal(e.Data, &p) != nil {
			continue
		}
		fmt.Fprintf(w, "  t=%8.1f  head %3d cancelled (%s) with %d report(s)\n", e.T, p.Head, p.Reason, p.Reports)
	}
	for _, e := range elects {
		var p obs.FailoverElect
		if json.Unmarshal(e.Data, &p) != nil {
			continue
		}
		fmt.Fprintf(w, "  t=%8.1f  failover: node %d replaces head %d\n", e.T, p.New, p.Old)
	}
	for _, e := range evals {
		var p obs.ClusterEval
		if json.Unmarshal(e.Data, &p) != nil {
			continue
		}
		verdict := "REJECTED"
		if p.Detected {
			verdict = "CONFIRMED"
		}
		fmt.Fprintf(w, "  t=%8.1f  head %3d eval: C=%.3f (C_Nt=%.3f × C_Ne=%.3f)  sweep=%.2f  order-tau=%.2f  rows %d/%d  reports %d  %s\n",
			e.T, p.Head, p.C, p.CNt, p.CNe, p.Sweep, p.OrderTau, p.RowsUsed, p.RowsTotal, p.Reports, verdict)
		if p.Err != "" {
			fmt.Fprintf(w, "             eval error: %s\n", p.Err)
		}
	}
	fmt.Fprintln(w)

	// Speed estimator candidate fits.
	if len(fits) > 0 {
		fmt.Fprintln(w, "speed estimator candidate headings (arrival-law least squares)")
		for _, e := range fits {
			var p obs.SpeedFit
			if json.Unmarshal(e.Data, &p) != nil {
				continue
			}
			mark := " "
			if p.Chosen {
				mark = "*"
			}
			status := "rejected"
			if p.OK {
				status = fmt.Sprintf("sse=%.3f", p.SSE)
			}
			fmt.Fprintf(w, "  %s head %3d  alpha=%7.1f°  slope=%+.4f s/m  %s\n",
				mark, p.Head, p.AlphaRad*180/math.Pi, p.Slope, status)
		}
		fmt.Fprintln(w)
	}

	// Sink confirmations.
	fmt.Fprintf(w, "sink confirmations: %d\n", len(sinks))
	for _, e := range sinks {
		var p obs.SinkReport
		if json.Unmarshal(e.Data, &p) != nil {
			continue
		}
		line := fmt.Sprintf("  t=%8.1f  head %3d  C=%.3f  %d report(s)  mean onset %.1fs",
			e.T, p.Head, p.C, p.Reports, p.MeanOnset)
		if p.HasSpeed {
			line += fmt.Sprintf("  speed %.2f m/s @ %.1f°", p.Speed, p.Heading*180/math.Pi)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w)

	// Radio layer.
	fmt.Fprintf(w, "radio: %d ARQ retransmission(s), %d ACK(s), %d abandoned hop(s) (%d of those had in fact delivered)\n",
		arqRetrans, arqAcks, arqDrops, arqDropsReceived)
	if snapshot != nil {
		fmt.Fprintln(w, "final counters (embedded metrics snapshot):")
		for _, c := range snapshot.Counters {
			fmt.Fprintf(w, "  %-28s %d\n", c.Name, c.Value)
		}
		for _, g := range snapshot.Gauges {
			fmt.Fprintf(w, "  %-28s %g\n", g.Name, g.Value)
		}
		for _, h := range snapshot.Histograms {
			fmt.Fprintf(w, "  %-28s count=%d sum=%.3f buckets=%v (bounds %v)\n",
				h.Name, h.Count, h.Sum, h.Buckets, h.Bounds)
		}
	}
	return nil
}
