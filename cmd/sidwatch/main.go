// Command sidwatch renders a per-run report from a SID event journal — the
// JSONL file written by the observability layer (internal/obs), e.g. via
// `sidbench -exp scenarios -journal DIR`. The report reconstructs what the
// deployment did from the journal alone: which nodes saw the wake and when
// (node timeline), how the wake swept the grid rows (row sweep table), how
// each cluster head's correlation evaluation broke down into C = C_Nt ×
// C_Ne with its gate inputs, which candidate headings the speed estimator
// weighed, and what the radio layer did underneath (ARQ traffic, frame
// counters from the embedded metrics snapshot).
//
// Usage:
//
//	sidwatch run.jsonl
//	sidbench -exp scenarios -only single-10kn -journal /tmp/j && sidwatch /tmp/j/single-10kn.jsonl
//	cat run.jsonl | sidwatch
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/sid-wsn/sid/internal/obs"
)

func main() {
	// `sidwatch trace` renders per-detection waterfalls from a trace set
	// (see trace.go); everything else is the journal report.
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		os.Exit(traceMain(os.Args[2:]))
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sidwatch [journal.jsonl]\n       sidwatch trace [-min-kinds N] [-wall] [traces.json|traces.jsonl]\nReads a SID event journal (JSONL) and prints a per-run report.\nWith no argument the journal is read from stdin.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sidwatch: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	events, err := obs.ReadJSONL(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidwatch: %v\n", err)
		os.Exit(1)
	}
	if err := render(os.Stdout, events); err != nil {
		fmt.Fprintf(os.Stderr, "sidwatch: %v\n", err)
		os.Exit(1)
	}
}
