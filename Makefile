GO ?= go

.PHONY: test bench race vet baseline obs

test:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Race-checks the worker pool and everything it fans out into; run after
# touching the parallel pipeline (see docs/PERFORMANCE.md). internal/sid
# alone takes >10 min under -race on a single-core host, hence the default
# timeout. CI shards this target per package group (see .github/workflows/
# ci.yml): override RACE_PKGS to run one shard and RACE_TIMEOUT to bound it.
RACE_PKGS ?= ./internal/...
RACE_TIMEOUT ?= 25m
race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Regenerates the machine-readable perf baseline (BENCH_baseline.json).
baseline:
	$(GO) run ./cmd/sidbench -bench

# Observability smoke: journal one golden scenario and render it with
# sidwatch (see docs/OBSERVABILITY.md). Fails if the report comes out empty.
OBS_TMP := $(shell mktemp -d)
obs:
	$(GO) run ./cmd/sidbench -exp scenarios -only single-10kn -journal $(OBS_TMP)
	$(GO) run ./cmd/sidwatch $(OBS_TMP)/single-10kn.jsonl > $(OBS_TMP)/report.txt
	@test -s $(OBS_TMP)/report.txt || { echo "obs: empty sidwatch report"; exit 1; }
	@cat $(OBS_TMP)/report.txt
	@rm -rf $(OBS_TMP)
