GO ?= go

.PHONY: test bench race vet baseline

test:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Race-checks the worker pool and everything it fans out into; run after
# touching the parallel pipeline (see docs/PERFORMANCE.md).
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Regenerates the machine-readable perf baseline (BENCH_baseline.json).
baseline:
	$(GO) run ./cmd/sidbench -bench
