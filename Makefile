GO ?= go

.PHONY: test bench race vet baseline

test:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Race-checks the worker pool and everything it fans out into; run after
# touching the parallel pipeline (see docs/PERFORMANCE.md). internal/sid
# alone takes >10 min under -race on a single-core host, hence the default
# timeout. CI shards this target per package group (see .github/workflows/
# ci.yml): override RACE_PKGS to run one shard and RACE_TIMEOUT to bound it.
RACE_PKGS ?= ./internal/...
RACE_TIMEOUT ?= 25m
race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Regenerates the machine-readable perf baseline (BENCH_baseline.json).
baseline:
	$(GO) run ./cmd/sidbench -bench
