GO ?= go

.PHONY: test bench race vet baseline

test:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Race-checks the worker pool and everything it fans out into; run after
# touching the parallel pipeline (see docs/PERFORMANCE.md). internal/sid
# alone takes >10 min under -race on a single-core host, hence the timeout.
race:
	$(GO) test -race -timeout 25m ./internal/...

vet:
	$(GO) vet ./...

# Regenerates the machine-readable perf baseline (BENCH_baseline.json).
baseline:
	$(GO) run ./cmd/sidbench -bench
