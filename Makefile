GO ?= go

.PHONY: test bench race vet fmt baseline bench-check obs replay adversarial serve loadgen serve-smoke trace-smoke grid-smoke grid-baseline

test:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Race-checks the worker pool and everything it fans out into; run after
# touching the parallel pipeline (see docs/PERFORMANCE.md). internal/sid
# alone takes >10 min under -race on a single-core host, hence the default
# timeout. CI shards this target per package group (see .github/workflows/
# ci.yml): override RACE_PKGS to run one shard and RACE_TIMEOUT to bound it.
RACE_PKGS ?= ./internal/...
RACE_TIMEOUT ?= 25m
race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Fails (listing the files) if anything is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Record→replay smoke: record the single-10kn golden scenario into per-node
# SIDTRACE files, replay them through the detection pipeline, and require the
# result to be bit-identical to the originating simulation
# (see docs/STREAMING.md).
REPLAY_TMP := $(shell mktemp -d)
replay:
	$(GO) run ./cmd/sidtrace record -scenario single-10kn -dir $(REPLAY_TMP)
	$(GO) run ./cmd/sidtrace replay -dir $(REPLAY_TMP) -verify
	@rm -rf $(REPLAY_TMP)

# Paired-seed byzantine sweep behind docs/RESILIENCE.md's threat-model
# table: detection per compromised-node fraction, undefended vs defended
# arms on identical seeds. The adversarial golden scenarios themselves ride
# the regular test target (TestAdversarialGoldenCorpus).
adversarial:
	$(GO) run ./cmd/sidbench -exp adversarial

# Regenerates the machine-readable perf baseline (BENCH_baseline.json).
# Pinned to GOMAXPROCS=2 so the Workers fan-out is exercised and recorded
# even on single-core hosts; see docs/PERFORMANCE.md for the methodology.
baseline:
	$(GO) run ./cmd/sidbench -bench -gomaxprocs 2

# Smoke-checks the committed baseline without re-measuring: fails if
# BENCH_baseline.json is missing, was recorded at GOMAXPROCS <= 1, or lacks
# the per-stage breakdown the synthesis perf target is pinned to.
bench-check:
	$(GO) run ./cmd/sidbench -check

# Large-field smoke: the index-vs-unindexed parity cross-check plus a
# downscaled grid run with every scaling feature on (spatial wake index,
# hierarchical collection, duty cycling, bounded history). Small grids never
# touch the committed baseline; see docs/PERFORMANCE.md.
grid-smoke:
	$(GO) run ./cmd/sidbench -exp grid -grid 8x8 -gomaxprocs 2

# Refreshes the canonical grid_100x100 baseline entry and its speedup curve
# (tens of seconds per worker setting; see docs/PERFORMANCE.md).
grid-baseline:
	$(GO) run ./cmd/sidbench -exp grid -gomaxprocs 2

# Runs the multi-tenant detection server (docs/SERVING.md).
SERVE_ADDR ?= localhost:8080
serve:
	$(GO) run ./cmd/sidserve -addr $(SERVE_ADDR)

# Closed-loop load generator against an in-process server: 1000 concurrent
# tenants over loopback HTTP; refreshes the serve_1k_tenants entry in
# BENCH_baseline.json (pinned to GOMAXPROCS=2 like the rest of the
# baseline; see docs/SERVING.md and docs/PERFORMANCE.md).
loadgen:
	$(GO) run ./cmd/sidbench -exp serve -gomaxprocs 2

# Serve smoke: boot sidserve, drive a handful of tenants through the load
# generator's external-address path (create, ingest, event-stream
# confirmations, delete), and shut the server down. The load generator
# waits for readiness itself and fails if any ingest confirmation or
# detection event goes missing.
SERVE_SMOKE_ADDR ?= localhost:18080
serve-smoke:
	@$(GO) build -o /tmp/sidserve-smoke ./cmd/sidserve
	@/tmp/sidserve-smoke -addr $(SERVE_SMOKE_ADDR) & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	$(GO) run ./cmd/sidbench -exp serve -tenants 8 -addr $(SERVE_SMOKE_ADDR); \
	status=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	exit $$status

# Trace smoke: record the hot feed with tracing, replay it into a traced
# tenant over HTTP, assert the served trace is byte-identical to the
# recording (sidbench exits nonzero otherwise), and render the detection
# waterfall with sidwatch, requiring at least four distinct span kinds
# (see docs/OBSERVABILITY.md).
TRACE_TMP := $(shell mktemp -d)
trace-smoke:
	$(GO) run ./cmd/sidbench -exp trace > $(TRACE_TMP)/trace.jsonl
	$(GO) run ./cmd/sidwatch trace -min-kinds 4 $(TRACE_TMP)/trace.jsonl
	@rm -rf $(TRACE_TMP)

# Observability smoke: journal one golden scenario and render it with
# sidwatch (see docs/OBSERVABILITY.md). Fails if the report comes out empty.
OBS_TMP := $(shell mktemp -d)
obs:
	$(GO) run ./cmd/sidbench -exp scenarios -only single-10kn -journal $(OBS_TMP)
	$(GO) run ./cmd/sidwatch $(OBS_TMP)/single-10kn.jsonl > $(OBS_TMP)/report.txt
	@test -s $(OBS_TMP)/report.txt || { echo "obs: empty sidwatch report"; exit 1; }
	@cat $(OBS_TMP)/report.txt
	@rm -rf $(OBS_TMP)
