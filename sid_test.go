package sid

import (
	"math"
	"testing"
)

func TestDeploymentEndToEnd(t *testing.T) {
	cfg := DefaultDeployment()
	cfg.Seed = 42
	dep, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.AddIntruder(Intruder{SpeedKnots: 10, CrossAt: 150}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Run(400); err != nil {
		t.Fatal(err)
	}
	dets := dep.Detections()
	if len(dets) == 0 {
		t.Fatalf("no detection (stats %+v)", dep.Stats())
	}
	d := dets[0]
	if d.C < cfg.CThreshold {
		t.Errorf("C = %v below threshold", d.C)
	}
	if d.HasSpeed {
		if math.Abs(d.SpeedKnots-10)/10 > 0.3 {
			t.Errorf("speed estimate %v kn, actual 10", d.SpeedKnots)
		}
	}
	st := dep.Stats()
	if st.FramesSent == 0 {
		t.Error("no radio activity")
	}
}

func TestDeploymentQuietSeaSilent(t *testing.T) {
	cfg := DefaultDeployment()
	cfg.Seed = 43
	dep, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Run(300); err != nil {
		t.Fatal(err)
	}
	if n := len(dep.Detections()); n != 0 {
		t.Errorf("quiet sea produced %d detections", n)
	}
}

func TestDeploymentValidation(t *testing.T) {
	cfg := DefaultDeployment()
	cfg.Rows = 0
	if _, err := NewDeployment(cfg); err == nil {
		t.Error("expected error for zero rows")
	}
	// Validate delegates to the internal runtime validator — same verdicts
	// as NewDeployment, without building anything. The per-rule rejection
	// table lives in internal/sid/config_test.go; this only pins the
	// delegation.
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a config NewDeployment rejects")
	}
	if err := DefaultDeployment().Validate(); err != nil {
		t.Errorf("Validate rejected the default deployment: %v", err)
	}
	dep, err := NewDeployment(DefaultDeployment())
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.AddIntruder(Intruder{SpeedKnots: 0}); err == nil {
		t.Error("expected error for zero-speed intruder")
	}
}

func TestIntruderDefaults(t *testing.T) {
	dep, err := NewDeployment(DefaultDeployment())
	if err != nil {
		t.Fatal(err)
	}
	// Zero heading defaults to a perpendicular crossing; zero length to 12 m.
	if err := dep.AddIntruder(Intruder{SpeedKnots: 8, CrossAt: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDeploymentSpectralSynthesis: the facade's SpectralSynthesis knob must
// run end-to-end and still detect the intruder. The count-level equivalence
// against the phasor path is pinned in internal/source and
// internal/scenario; here we only require the public wiring to work.
func TestDeploymentSpectralSynthesis(t *testing.T) {
	cfg := DefaultDeployment()
	cfg.Seed = 42
	cfg.SpectralSynthesis = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.AddIntruder(Intruder{SpeedKnots: 10, CrossAt: 150}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Run(400); err != nil {
		t.Fatal(err)
	}
	if len(dep.Detections()) == 0 {
		t.Fatalf("spectral deployment missed the intruder (stats %+v)", dep.Stats())
	}
}

// TestDeploymentAdversaryDefense: the facade's Adversary and Defense knobs
// must wire through to the internal runtime — a replay campaign against a
// defended deployment is rejected and quarantined while the genuine
// crossing stays confirmed. The attack/defense behavior itself is pinned
// in internal/sid and internal/scenario; here we only require the public
// wiring to work.
func TestDeploymentAdversaryDefense(t *testing.T) {
	cfg := DefaultDeployment()
	cfg.Seed = 42
	cfg.Defense = true
	cfg.Adversary = AdversaryPlan{
		Byzantine: []ByzantineNode{
			{Node: 3, Replay: true, Start: 300, Period: 20, Count: 5},
			{Node: 7, Replay: true, Start: 300, Period: 20, Count: 5},
		},
		ClockSpoofs: []ClockSpoof{{Node: 11, At: 60, SkewPPM: 8000}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.AddIntruder(Intruder{SpeedKnots: 10, CrossAt: 150}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Run(450); err != nil {
		t.Fatal(err)
	}
	if len(dep.Detections()) == 0 {
		t.Fatal("defended deployment lost the genuine crossing")
	}
	rt := dep.Runtime()
	if rt.InjectedReports() == 0 {
		t.Error("adversary plan did not inject")
	}
	if rt.RejectedReports() == 0 {
		t.Error("defense rejected nothing")
	}
	// A plan naming a node outside the grid must be rejected up front.
	bad := cfg
	bad.Adversary = AdversaryPlan{Byzantine: []ByzantineNode{{Node: 99, Start: 1, Period: 1, Count: 1, EnergyBase: 10}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range byzantine node accepted")
	}
}
