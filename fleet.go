package sid

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/sid"
)

// FleetConfig shards many independent surveillance fields over the
// process's cores: one Deployment per field, run concurrently. Fields are
// fully isolated — each has its own scheduler, sea, network and seed — so
// a fleet run produces exactly the results of running each field alone,
// only faster.
type FleetConfig struct {
	// Deployments configures each field. Per-field Workers is forced to 1:
	// the fleet parallelizes across fields instead, and results are
	// bit-identical for any Workers value, so only wall-clock time moves.
	Deployments []Config
	// Workers bounds how many fields run concurrently (0 = all cores,
	// 1 = serial). Results are bit-identical for any value.
	Workers int
}

// Fleet is a set of independent deployments run as one unit.
type Fleet struct {
	fl     *sid.Fleet
	fields []*Deployment
}

// NewFleet builds every field eagerly, so configuration errors surface at
// construction, attributed to their field index.
func NewFleet(fc FleetConfig) (*Fleet, error) {
	ic := sid.FleetConfig{Workers: fc.Workers}
	for _, cfg := range fc.Deployments {
		ic.Deployments = append(ic.Deployments, cfg.runtimeConfig())
	}
	fl, err := sid.NewFleet(ic)
	if err != nil {
		return nil, err
	}
	f := &Fleet{fl: fl}
	for i, cfg := range fc.Deployments {
		f.fields = append(f.fields, &Deployment{rt: fl.Runtime(i), cfg: cfg})
	}
	return f, nil
}

// Size returns the number of fields.
func (f *Fleet) Size() int { return len(f.fields) }

// Field returns field i for per-field setup (AddIntruder) and per-field
// results (Detections, Stats). Out-of-range indices return nil.
func (f *Fleet) Field(i int) *Deployment {
	if i < 0 || i >= len(f.fields) {
		return nil
	}
	return f.fields[i]
}

// AddIntruder schedules a vessel crossing in field i.
func (f *Fleet) AddIntruder(i int, in Intruder) error {
	if i < 0 || i >= len(f.fields) {
		return fmt.Errorf("sid: fleet has no field %d", i)
	}
	return f.fields[i].AddIntruder(in)
}

// Run advances every field by dur seconds of simulated time, fanning the
// fields across the fleet's workers. The first failing field's error is
// returned; the rest still complete.
func (f *Fleet) Run(dur float64) error { return f.fl.Run(dur) }

// Stats sums protocol counters across the fleet.
func (f *Fleet) Stats() Stats {
	var total Stats
	for _, d := range f.fields {
		s := d.Stats()
		total.ClustersFormed += s.ClustersFormed
		total.ClustersCancelled += s.ClustersCancelled
		total.FramesSent += s.FramesSent
		total.FramesLost += s.FramesLost
		total.Retransmissions += s.Retransmissions
		total.Acks += s.Acks
		total.ReliableDropped += s.ReliableDropped
		total.Failovers += s.Failovers
		total.SendErrors += s.SendErrors
	}
	return total
}

// Detections gathers every field's confirmed intrusions, tagged by field
// index in FleetDetection.
func (f *Fleet) Detections() []FleetDetection {
	var out []FleetDetection
	for i, d := range f.fields {
		for _, det := range d.Detections() {
			out = append(out, FleetDetection{Field: i, Detection: det})
		}
	}
	return out
}

// FleetDetection is one confirmed intrusion with the field it came from.
type FleetDetection struct {
	Field int
	Detection
}
