// Package sid is the public facade of the SID reproduction: ship intrusion
// detection with wireless sensor networks, after Luo et al., ICDCS 2011
// (DOI 10.1109/ICDCS.2011.21).
//
// SID detects unauthorized vessels from the V-shaped Kelvin wake they drag
// across a field of accelerometer buoys: every node runs an
// environment-adaptive threshold detector on its z-axis acceleration; a
// detecting node forms a temporary cluster within six radio hops; the
// cluster head confirms the intrusion by checking the spatial/temporal
// correlations the sweeping wake imposes on report times and energies, and
// estimates the intruder's speed and heading from four detection
// timestamps using the fixed 19°28′ Kelvin cusp angle.
//
// The facade wraps the full simulated deployment (ocean, wakes, buoys,
// radios, clocks, batteries, and the distributed SID protocol on a
// discrete-event scheduler). Quick start:
//
//	dep, err := sid.NewDeployment(sid.DefaultDeployment())
//	if err != nil { ... }
//	dep.AddIntruder(sid.Intruder{SpeedKnots: 10, CrossAt: 150})
//	if err := dep.Run(400); err != nil { ... }
//	for _, det := range dep.Detections() {
//	    fmt.Printf("intrusion C=%.2f speed=%.1f kn\n", det.C, det.SpeedKnots)
//	}
//
// The packages under internal/ implement the substrates (DSP, ocean and
// wake physics, sensing, the WSN runtime, the detection pipeline, and the
// evaluation harness reproducing every table and figure of the paper);
// see DESIGN.md for the inventory.
package sid

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/adversary"
	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Deployment is a running SID surveillance field.
type Deployment struct {
	rt  *sid.Runtime
	cfg Config
}

// Config configures a deployment. The zero value is not valid; start from
// DefaultDeployment.
type Config struct {
	// Rows, Cols and SpacingM describe the buoy grid (the paper deploys
	// manually in a grid at D = 25 m).
	Rows, Cols int
	SpacingM   float64
	// SignificantWaveHeightM and PeakPeriodS describe the ambient sea.
	SignificantWaveHeightM float64
	PeakPeriodS            float64
	// ThresholdM is the node-level threshold multiplier M (1–3).
	ThresholdM float64
	// AnomalyThreshold is the af fraction required for a node report.
	AnomalyThreshold float64
	// CThreshold is the cluster-level correlation threshold (0.4).
	CThreshold float64
	// PacketLoss is the radio frame loss probability.
	PacketLoss float64
	// BatteryJ equips nodes with finite batteries when positive.
	BatteryJ float64
	// Seed makes the whole deployment reproducible.
	Seed int64
	// Workers bounds the goroutines synthesizing per-node sensor blocks:
	// 0 uses GOMAXPROCS, 1 forces serial execution. Results are
	// bit-identical for every value — same Seed, same Detections — so the
	// knob trades only wall-clock time, never reproducibility.
	Workers int
	// SpectralSynthesis switches sample production from the exact
	// per-component phasor sum to FFT-based spectral block synthesis —
	// typically >5× faster and equivalent within one ADC count per sample
	// (see docs/SYNTHESIS.md). Off by default: the phasor path remains the
	// bit-exact reference for goldens and recordings.
	SpectralSynthesis bool
	// ReliableTransport layers a per-hop ACK/retransmission protocol
	// (deterministic exponential backoff, bounded retries) under every
	// unicast and multi-hop send. Off by default: fire-and-forget runs
	// stay bit-identical to earlier releases.
	ReliableTransport bool
	// Failover makes temporary cluster heads lease their role via
	// heartbeats; when a head dies mid-collection the members elect the
	// lowest alive ID as replacement and re-send their reports. Off by
	// default.
	Failover bool
	// Faults injects a deterministic failure schedule (node crashes,
	// battery depletion, clock steps, burst loss). The zero value injects
	// nothing.
	Faults FaultPlan
	// Adversary injects deterministic byzantine behavior (fabricated or
	// replayed reports, smoothly spoofed clocks). The zero value injects
	// nothing.
	Adversary AdversaryPlan
	// Defense enables the head-side byzantine defenses (report freshness
	// gating, trimmed robust evaluation, per-node suspicion with
	// quarantine, leave-one-out speed fitting). Off by default: undefended
	// runs stay bit-identical to earlier releases.
	Defense bool
}

// AdversaryPlan is a declarative, deterministic attack schedule. Identical
// plans on identical seeds reproduce identical attacks.
type AdversaryPlan struct {
	// Byzantine nodes inject fabricated or replayed reports into the
	// protocol's genuine collection path.
	Byzantine []ByzantineNode
	// ClockSpoofs smoothly skew node clocks (no step discontinuity), the
	// stealthy poisoning of the four-timestamp speed fit.
	ClockSpoofs []ClockSpoof
}

// ByzantineNode schedules one compromised node's injection campaign:
// Count reports starting at Start seconds, Period seconds apart.
type ByzantineNode struct {
	Node int
	// Replay re-sends the node's own last genuine report verbatim;
	// otherwise the node fabricates plausible fresh reports with energies
	// around EnergyBase.
	Replay     bool
	Start      float64
	Period     float64
	Count      int
	EnergyBase float64
}

// ClockSpoof skews a node's clock by SkewPPM parts-per-million starting at
// At seconds, keeping local time continuous — invisible to step detectors,
// poisonous to timestamp arithmetic.
type ClockSpoof struct {
	Node    int
	At      float64
	SkewPPM float64
}

// internalAdversary converts the public attack plan to the internal one.
func (p AdversaryPlan) internalAdversary() adversary.Plan {
	var out adversary.Plan
	for _, b := range p.Byzantine {
		behavior := adversary.Fabricate
		if b.Replay {
			behavior = adversary.Replay
		}
		out.Byzantine = append(out.Byzantine, adversary.ByzantineNode{
			Node: b.Node, Behavior: behavior,
			Start: b.Start, Period: b.Period, Count: b.Count,
			EnergyBase: b.EnergyBase,
		})
	}
	for _, s := range p.ClockSpoofs {
		out.ClockSpoofs = append(out.ClockSpoofs, adversary.ClockSpoof{
			Node: s.Node, At: s.At, SkewPPM: s.SkewPPM,
		})
	}
	return out
}

// FaultPlan is a declarative, deterministic failure schedule. Identical
// plans on identical seeds reproduce identical runs.
type FaultPlan struct {
	// Crashes schedules node failures (and optional revivals).
	Crashes []NodeCrash
	// Depletions empties node batteries at scheduled times.
	Depletions []BatteryDepletion
	// ClockSteps knocks node clocks by fixed offsets.
	ClockSteps []ClockStep
	// Burst replaces the Bernoulli radio loss with a Gilbert–Elliott
	// burst-loss channel when non-nil.
	Burst *BurstLoss
}

// NodeCrash takes a node down at At seconds; ReviveAt > At restores it.
type NodeCrash struct {
	Node     int
	At       float64
	ReviveAt float64
}

// BatteryDepletion empties a node's battery at At seconds (nodes without a
// battery are crashed permanently instead).
type BatteryDepletion struct {
	Node int
	At   float64
}

// ClockStep adds OffsetS to a node's clock at At seconds.
type ClockStep struct {
	Node    int
	At      float64
	OffsetS float64
}

// BurstLoss is a two-state Gilbert–Elliott burst-loss channel: good and
// bad states with mean sojourn times MeanGoodS/MeanBadS and per-frame loss
// probabilities LossGood/LossBad.
type BurstLoss struct {
	MeanGoodS, MeanBadS float64
	LossGood, LossBad   float64
}

// internalPlan converts the public fault plan to the internal one.
func (p FaultPlan) internalPlan() fault.Plan {
	var out fault.Plan
	for _, c := range p.Crashes {
		out.Crashes = append(out.Crashes, fault.Crash{Node: c.Node, At: c.At, ReviveAt: c.ReviveAt})
	}
	for _, d := range p.Depletions {
		out.Depletions = append(out.Depletions, fault.Depletion{Node: d.Node, At: d.At})
	}
	for _, s := range p.ClockSteps {
		out.ClockSteps = append(out.ClockSteps, fault.ClockStep{Node: s.Node, At: s.At, Offset: s.OffsetS})
	}
	if p.Burst != nil {
		out.Burst = &fault.BurstLoss{
			MeanGoodS: p.Burst.MeanGoodS, MeanBadS: p.Burst.MeanBadS,
			LossGood: p.Burst.LossGood, LossBad: p.Burst.LossBad,
		}
	}
	return out
}

// DefaultDeployment is a 5×5 grid at 25 m on a slight sea with the paper's
// algorithm parameters.
func DefaultDeployment() Config {
	return Config{
		Rows: 5, Cols: 5, SpacingM: 25,
		SignificantWaveHeightM: 0.3,
		PeakPeriodS:            6,
		ThresholdM:             2,
		AnomalyThreshold:       0.6,
		CThreshold:             0.4,
		PacketLoss:             0.05,
	}
}

// runtimeConfig lowers the public Config onto the internal one. It is the
// single conversion path: NewDeployment, NewFleet and Validate all go
// through it, so the internal validator is the one source of truth for
// what a deployment accepts.
func (cfg Config) runtimeConfig() sid.Config {
	rc := sid.DefaultConfig()
	rc.Grid = geo.GridSpec{Rows: cfg.Rows, Cols: cfg.Cols, Spacing: cfg.SpacingM}
	rc.Hs = cfg.SignificantWaveHeightM
	rc.Tp = cfg.PeakPeriodS
	rc.Detect.M = cfg.ThresholdM
	rc.Detect.AnomalyThreshold = cfg.AnomalyThreshold
	rc.Cluster.CThreshold = cfg.CThreshold
	rc.Cluster.RowSpacing = cfg.SpacingM
	rc.Radio.LossProb = cfg.PacketLoss
	rc.BatteryJ = cfg.BatteryJ
	if cfg.BatteryJ > 0 {
		rc.Energy = wsn.DefaultEnergyConfig()
	}
	rc.Seed = cfg.Seed
	rc.Workers = cfg.Workers
	if cfg.SpectralSynthesis {
		rc.Synthesis = source.SynthSpectral
	}
	if cfg.ReliableTransport {
		rc.Radio.Reliable = wsn.DefaultReliableConfig()
	}
	if cfg.Failover {
		rc.Failover = sid.DefaultFailoverConfig()
	}
	rc.Faults = cfg.Faults.internalPlan()
	rc.Adversary = cfg.Adversary.internalAdversary()
	if cfg.Defense {
		rc.Defense = sid.DefaultDefenseConfig()
	}
	return rc
}

// Validate reports whether the configuration describes a buildable
// deployment, by delegating to the internal runtime validator (the same
// check NewDeployment performs).
func (cfg Config) Validate() error {
	return cfg.runtimeConfig().Validate()
}

// RuntimeConfig lowers the public configuration onto the internal runtime
// configuration — the same single conversion path NewDeployment, NewFleet
// and Validate use. It exists for in-module layers: the detection server
// (internal/serve) compiles tenant specs through it so a served deployment
// is exactly the deployment the facade would build. Code outside this
// module cannot name the returned type and should use NewDeployment.
func (cfg Config) RuntimeConfig() sid.Config { return cfg.runtimeConfig() }

// NewDeployment builds the simulated field.
func NewDeployment(cfg Config) (*Deployment, error) {
	rt, err := sid.NewRuntime(cfg.runtimeConfig())
	if err != nil {
		return nil, err
	}
	return &Deployment{rt: rt, cfg: cfg}, nil
}

// Intruder describes a vessel crossing the surveillance field.
type Intruder struct {
	// SpeedKnots is the vessel speed.
	SpeedKnots float64
	// HeadingDeg is the sailing direction in degrees from the grid's
	// row (east) axis; 90 crosses the grid perpendicular to its rows.
	HeadingDeg float64
	// OffsetM shifts the sailing line sideways from the grid center.
	OffsetM float64
	// CrossAt is the simulation time (seconds) at which the wake front
	// reaches the grid center.
	CrossAt float64
	// LengthM is the waterline length (default 12 m).
	LengthM float64
}

// AddIntruder schedules a vessel crossing. Call before or between Run
// segments.
func (d *Deployment) AddIntruder(in Intruder) error {
	if in.SpeedKnots <= 0 {
		return fmt.Errorf("sid: intruder speed must be positive, got %g", in.SpeedKnots)
	}
	grid := geo.GridSpec{Rows: d.cfg.Rows, Cols: d.cfg.Cols, Spacing: d.cfg.SpacingM}
	ship, err := wake.CrossingShip(grid.Center(),
		in.SpeedKnots, in.HeadingDeg, in.OffsetM, in.CrossAt, in.LengthM)
	if err != nil {
		return err
	}
	d.rt.AddShip(ship)
	return nil
}

// Run advances the deployment by dur seconds of simulated time.
func (d *Deployment) Run(dur float64) error { return d.rt.Run(dur) }

// Detection is one confirmed intrusion as received at the sink.
type Detection struct {
	// Time is the sink-local arrival time of the confirmation.
	Time float64
	// C is the spatial/temporal correlation coefficient (eq. 13).
	C float64
	// Reports is the number of node reports behind the confirmation.
	Reports int
	// MeanOnset is the mean node onset time of the event.
	MeanOnset float64
	// HasSpeed reports whether the four-node speed condition was met.
	HasSpeed bool
	// SpeedKnots and HeadingDeg estimate the intruder's motion (if
	// HasSpeed).
	SpeedKnots float64
	HeadingDeg float64
}

// Detections returns the confirmed intrusions so far.
func (d *Deployment) Detections() []Detection {
	var out []Detection
	for _, r := range d.rt.SinkReports() {
		det := Detection{
			Time:      r.Time,
			C:         r.C,
			Reports:   r.Reports,
			MeanOnset: r.MeanOnset,
			HasSpeed:  r.HasSpeed,
		}
		if r.HasSpeed {
			det.SpeedKnots = geo.ToKnots(r.Speed)
			det.HeadingDeg = geo.ToDeg(r.Heading)
		}
		out = append(out, det)
	}
	return out
}

// Stats summarizes protocol activity.
type Stats struct {
	ClustersFormed    int
	ClustersCancelled int
	FramesSent        int
	FramesLost        int
	// Retransmissions, Acks and ReliableDropped describe the reliable
	// transport (zero when ReliableTransport is off): retransmitted data
	// frames, acknowledgment frames, and hops abandoned after the
	// retransmission bound.
	Retransmissions int
	Acks            int
	ReliableDropped int
	// Failovers counts cluster-head takeovers (zero when Failover is off).
	Failovers int
	// SendErrors counts synchronous routing failures (no path at send
	// time) that the protocol observed and counted instead of discarding.
	SendErrors int
}

// Stats returns protocol counters.
func (d *Deployment) Stats() Stats {
	ns := d.rt.Network().Stats()
	return Stats{
		ClustersFormed:    d.rt.ClustersFormed(),
		ClustersCancelled: d.rt.Cancelled(),
		FramesSent:        ns.Sent,
		FramesLost:        ns.Lost,
		Retransmissions:   ns.Retransmissions,
		Acks:              ns.Acks,
		ReliableDropped:   ns.ReliableDropped,
		Failovers:         d.rt.Failovers(),
		SendErrors:        d.rt.SendErrors(),
	}
}

// Runtime exposes the underlying runtime for advanced use (fault
// injection, energy accounting, direct network access).
func (d *Deployment) Runtime() *sid.Runtime { return d.rt }
