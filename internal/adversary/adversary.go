// Package adversary is the attacker model layered over internal/fault's
// chaos harness: where fault breaks nodes honestly (crashes, drained cells,
// stepped clocks, lossy radios), adversary makes them lie. Compromised
// nodes fabricate plausible anomaly reports or replay stale genuine ones
// into cluster collection, and spoofed clocks skew smoothly — a rate
// change, not a step — so the 4-timestamp speed fit is poisoned without
// any discontinuity a step detector could flag. The shapes follow the
// maritime cyber-physical threat model (AIS position-offset attacks,
// identity tampering): plausible data, wrong content.
//
// Like fault.Plan, a Plan is pure data and fully deterministic: the SID
// runtime schedules every injection on the discrete-event clock and draws
// fabricated payloads from a dedicated seeded stream ("adversary.byz"), so
// the same plan on the same seed replays the same attack bit for bit —
// which is what lets the evaluation pair defended and undefended arms on
// identical seeds.
//
// The package owns the plan types, their validation, the clock-spoof
// application (wsn-level), and the deterministic victim-selection helpers;
// report injection needs the SID protocol and lives in internal/sid.
package adversary

import (
	"fmt"
	"sort"

	"github.com/sid-wsn/sid/internal/wsn"
)

// Behavior selects what a compromised node does with its injections.
type Behavior int

const (
	// Fabricate invents fresh, plausible-looking reports: onset near the
	// current time, energy drawn around EnergyBase. This is the false-data
	// injection attack — it pollutes genuine collections and can seed
	// clusters of its own.
	Fabricate Behavior = iota
	// Replay re-sends the node's last genuine report verbatim, stale onset
	// included. Coordinated replays reproduce a real pass's consistent
	// space-time pattern and are the attack that defeats pure
	// order-statistics gates — only freshness checks stop them.
	Replay
)

// String names the behavior for journals and error messages.
func (b Behavior) String() string {
	switch b {
	case Fabricate:
		return "fabricate"
	case Replay:
		return "replay"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// ByzantineNode schedules one compromised node's injection campaign:
// Count injections starting at Start, Period seconds apart.
type ByzantineNode struct {
	// Node is the compromised node's ID.
	Node int
	// Behavior selects fabrication or replay.
	Behavior Behavior
	// Start is the first injection time in simulation seconds.
	Start float64
	// Period is the injection spacing in seconds (default 10 when 0).
	Period float64
	// Count is the number of injections (default 1 when 0).
	Count int
	// EnergyBase scales fabricated energies: each draw is uniform in
	// [0.5, 1.5]·EnergyBase. Ignored by Replay. Must be positive for
	// fabricators — a zero-energy report would be trivially implausible.
	EnergyBase float64
	// OnsetJitter bounds how far (seconds) a fabricated onset is placed
	// before the injection time, drawn uniformly (default 2 when 0).
	// Ignored by Replay.
	OnsetJitter float64
}

// ClockSpoof skews one node's clock rate by SkewPPM at time At, smoothly
// (no step — see wsn.Clock.Skew). At 10 000 ppm the victim's timestamps
// drift a full second every 100 s: enough to corrupt the wake-front
// arrival differences the speed estimator inverts, while staying invisible
// to any discontinuity check.
type ClockSpoof struct {
	Node int
	At   float64
	// SkewPPM is the rate change in parts per million (may be negative).
	SkewPPM float64
}

// Plan is a complete, declarative attack schedule. The zero value is the
// empty plan (no adversary).
type Plan struct {
	Byzantine   []ByzantineNode
	ClockSpoofs []ClockSpoof
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool {
	return len(p.Byzantine) == 0 && len(p.ClockSpoofs) == 0
}

// Validate checks the plan against a network of n nodes. Error messages
// name the offending entry index and field.
func (p Plan) Validate(n int) error {
	for i, b := range p.Byzantine {
		if b.Node < 0 || b.Node >= n {
			return fmt.Errorf("adversary: Byzantine[%d].Node = %d outside [0,%d)", i, b.Node, n)
		}
		if b.Behavior != Fabricate && b.Behavior != Replay {
			return fmt.Errorf("adversary: Byzantine[%d].Behavior = %d unknown", i, int(b.Behavior))
		}
		if b.Start < 0 {
			return fmt.Errorf("adversary: Byzantine[%d].Start = %g, must be non-negative", i, b.Start)
		}
		if b.Period < 0 {
			return fmt.Errorf("adversary: Byzantine[%d].Period = %g, must be non-negative", i, b.Period)
		}
		if b.Count < 0 {
			return fmt.Errorf("adversary: Byzantine[%d].Count = %d, must be non-negative", i, b.Count)
		}
		if b.Behavior == Fabricate && b.EnergyBase <= 0 {
			return fmt.Errorf("adversary: Byzantine[%d].EnergyBase = %g, must be positive for fabricators", i, b.EnergyBase)
		}
		if b.OnsetJitter < 0 {
			return fmt.Errorf("adversary: Byzantine[%d].OnsetJitter = %g, must be non-negative", i, b.OnsetJitter)
		}
	}
	for i, s := range p.ClockSpoofs {
		if s.Node < 0 || s.Node >= n {
			return fmt.Errorf("adversary: ClockSpoofs[%d].Node = %d outside [0,%d)", i, s.Node, n)
		}
		if s.At < 0 {
			return fmt.Errorf("adversary: ClockSpoofs[%d].At = %g, must be non-negative", i, s.At)
		}
		if s.SkewPPM == 0 {
			return fmt.Errorf("adversary: ClockSpoofs[%d].SkewPPM = 0, spoof would be a no-op", i)
		}
	}
	return nil
}

// ApplyClocks schedules every clock spoof onto the network's event queue
// (in slice order, so identical plans enqueue identically). Byzantine
// report injection is applied by the SID runtime — it needs the protocol.
func ApplyClocks(p Plan, net *wsn.Network) error {
	for i, s := range p.ClockSpoofs {
		n := net.MustNode(wsn.NodeID(s.Node))
		skew := s.SkewPPM
		if err := net.Sched.Schedule(s.At, func() {
			n.Clock.Skew(skew, net.Sched.Now())
		}); err != nil {
			return fmt.Errorf("adversary: ClockSpoofs[%d]: %w", i, err)
		}
	}
	return nil
}

// ByzantineFraction compromises frac of the n nodes (rounded down) with the
// given behavior template (Node is overwritten per victim), never touching
// the protected IDs (e.g. the sink). Victims are chosen by the same
// deterministic hash family fault.CrashFraction uses, salted differently so
// the compromised set is independent of any crash set on the same seed.
func ByzantineFraction(n int, frac float64, template ByzantineNode, seed int64, protected ...int) []ByzantineNode {
	ids := pickNodes(n, int(frac*float64(n)), seed, 0xada11ce, protected...)
	out := make([]ByzantineNode, 0, len(ids))
	for _, id := range ids {
		b := template
		b.Node = id
		out = append(out, b)
	}
	return out
}

// SpoofNodes picks count victims for clock spoofing with the same
// deterministic hash, salted independently of ByzantineFraction so the two
// victim sets overlap only by chance.
func SpoofNodes(n, count int, seed int64, protected ...int) []int {
	return pickNodes(n, count, seed, 0x51c0ffee, protected...)
}

// pickNodes returns count deterministic victims among the unprotected IDs,
// ordered by a salted splitmix-style hash of (seed, id).
func pickNodes(n, count int, seed int64, salt uint64, protected ...int) []int {
	if count <= 0 {
		return nil
	}
	prot := make(map[int]bool, len(protected))
	for _, id := range protected {
		prot[id] = true
	}
	type scored struct {
		id   int
		hash uint64
	}
	var order []scored
	for id := 0; id < n; id++ {
		if prot[id] {
			continue
		}
		h := (uint64(id)*0x9e3779b97f4a7c15 ^ uint64(seed)*0xbf58476d1ce4e5b9) + salt
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		h ^= h >> 32
		order = append(order, scored{id, h})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].hash != order[j].hash {
			return order[i].hash < order[j].hash
		}
		return order[i].id < order[j].id
	})
	if count > len(order) {
		count = len(order)
	}
	ids := make([]int, count)
	for i := 0; i < count; i++ {
		ids[i] = order[i].id
	}
	sort.Ints(ids)
	return ids
}
