package adversary

import (
	"strings"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sim"
	"github.com/sid-wsn/sid/internal/wsn"
)

func testNet(t *testing.T, seed int64) (*wsn.Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(seed)
	positions := geo.GridSpec{Rows: 2, Cols: 3, Spacing: 25}.Positions()
	radio := wsn.DefaultRadioConfig()
	radio.LossProb = 0
	net, err := wsn.NewNetwork(sched, positions, radio)
	if err != nil {
		t.Fatal(err)
	}
	return net, sched
}

// TestPlanValidate covers every rejection path and checks the message names
// the offending entry and field.
func TestPlanValidate(t *testing.T) {
	const n = 6
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error
	}{
		{"byz node high", Plan{Byzantine: []ByzantineNode{{Node: 6, EnergyBase: 1}}}, "Byzantine[0].Node"},
		{"byz node negative", Plan{Byzantine: []ByzantineNode{{Node: -1, EnergyBase: 1}}}, "Byzantine[0].Node"},
		{"byz behavior", Plan{Byzantine: []ByzantineNode{{Node: 1, Behavior: 7, EnergyBase: 1}}}, "Byzantine[0].Behavior"},
		{"byz start", Plan{Byzantine: []ByzantineNode{{Node: 1, Start: -1, EnergyBase: 1}}}, "Byzantine[0].Start"},
		{"byz period", Plan{Byzantine: []ByzantineNode{{Node: 1, Period: -2, EnergyBase: 1}}}, "Byzantine[0].Period"},
		{"byz count", Plan{Byzantine: []ByzantineNode{{Node: 1, Count: -1, EnergyBase: 1}}}, "Byzantine[0].Count"},
		{"byz energy", Plan{Byzantine: []ByzantineNode{{Node: 1, Behavior: Fabricate}}}, "Byzantine[0].EnergyBase"},
		{"byz jitter", Plan{Byzantine: []ByzantineNode{{Node: 1, EnergyBase: 1, OnsetJitter: -1}}}, "Byzantine[0].OnsetJitter"},
		{"spoof node", Plan{ClockSpoofs: []ClockSpoof{{Node: 9, SkewPPM: 100}}}, "ClockSpoofs[0].Node"},
		{"spoof at", Plan{ClockSpoofs: []ClockSpoof{{Node: 1, At: -1, SkewPPM: 100}}}, "ClockSpoofs[0].At"},
		{"spoof zero", Plan{ClockSpoofs: []ClockSpoof{{Node: 1, At: 1}}}, "ClockSpoofs[0].SkewPPM"},
		{"second entry", Plan{Byzantine: []ByzantineNode{
			{Node: 1, EnergyBase: 1}, {Node: 99, EnergyBase: 1},
		}}, "Byzantine[1].Node"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate(n)
			if err == nil {
				t.Fatalf("expected validation error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name %q", err, c.want)
			}
		})
	}
	replay := Plan{Byzantine: []ByzantineNode{{Node: 2, Behavior: Replay}}}
	if err := replay.Validate(n); err != nil {
		t.Errorf("replay without EnergyBase should be valid: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if (Plan{ClockSpoofs: []ClockSpoof{{Node: 1, SkewPPM: 1}}}).Empty() {
		t.Error("plan with a spoof is not empty")
	}
}

// TestClockSpoofSmooth checks that an applied spoof changes the clock rate
// without any step: the local reading is continuous at the spoof time and
// diverges linearly afterwards.
func TestClockSpoofSmooth(t *testing.T) {
	net, sched := testNet(t, 7)
	const at, skew = 10.0, 10000.0 // 1%: 1 s of error per 100 s
	node := net.MustNode(3)
	before := node.Clock
	plan := Plan{ClockSpoofs: []ClockSpoof{{Node: 3, At: at, SkewPPM: skew}}}
	if err := ApplyClocks(plan, net); err != nil {
		t.Fatal(err)
	}
	sched.Run(at + 1)
	after := node.Clock
	// Continuity at the spoof instant.
	if got, want := after.Local(at), before.Local(at); abs(got-want) > 1e-9 {
		t.Errorf("Local(%g) stepped: %g vs %g", at, got, want)
	}
	// Divergence afterwards at the skew rate.
	dt := 100.0
	gotDiv := (after.Local(at+dt) - before.Local(at+dt))
	wantDiv := skew * 1e-6 * dt
	if abs(gotDiv-wantDiv) > 1e-9 {
		t.Errorf("divergence after %g s: got %g, want %g", dt, gotDiv, wantDiv)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestByzantineFractionDeterministic pins the selection contract: same
// arguments, same victims; the sink is never compromised; and the victim
// set differs from fault.CrashFraction's on the same seed (independent
// salts), so crash and compromise experiments do not collide by design.
func TestByzantineFractionDeterministic(t *testing.T) {
	tmpl := ByzantineNode{Behavior: Fabricate, Start: 100, Period: 10, Count: 3, EnergyBase: 50}
	a := ByzantineFraction(36, 0.2, tmpl, 42, 0)
	b := ByzantineFraction(36, 0.2, tmpl, 42, 0)
	if len(a) != 7 {
		t.Fatalf("20%% of 36 = 7 victims, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic: %+v vs %+v", a[i], b[i])
		}
		if a[i].Node == 0 {
			t.Error("protected node 0 was compromised")
		}
		if a[i].Behavior != Fabricate || a[i].EnergyBase != 50 {
			t.Error("template fields not copied")
		}
	}
	c := ByzantineFraction(36, 0.2, tmpl, 43, 0)
	same := true
	for i := range a {
		if a[i].Node != c[i].Node {
			same = false
		}
	}
	if same {
		t.Error("different seeds picked identical victim sets")
	}
	if got := ByzantineFraction(36, 0, tmpl, 42); len(got) != 0 {
		t.Errorf("zero fraction should pick no one, got %v", got)
	}
	spoof := SpoofNodes(36, 3, 42, 0)
	if len(spoof) != 3 {
		t.Fatalf("want 3 spoof victims, got %d", len(spoof))
	}
	for _, id := range spoof {
		if id == 0 {
			t.Error("protected node 0 was spoofed")
		}
	}
}
