package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for _, spec := range []struct {
		at float64
		id int
	}{{3, 3}, {1, 1}, {2, 2}, {5, 5}, {4, 4}} {
		spec := spec
		if err := s.Schedule(spec.at, func() { order = append(order, spec.id) }); err != nil {
			t.Fatal(err)
		}
	}
	n := s.RunAll()
	if n != 5 {
		t.Errorf("executed %d events", n)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if s.Now() != 5 {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.Schedule(7, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Schedule(5, func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if err := s.Schedule(1, func() {}); err == nil {
		t.Error("expected error scheduling in the past")
	}
	if err := s.Schedule(10, nil); err == nil {
		t.Error("expected error for nil function")
	}
}

func TestAfter(t *testing.T) {
	s := NewScheduler(1)
	var fired float64 = -1
	if err := s.After(2.5, func() { fired = s.Now() }); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if fired != 2.5 {
		t.Errorf("After fired at %v", fired)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := NewScheduler(1)
	var times []float64
	var chain func()
	chain = func() {
		times = append(times, s.Now())
		if len(times) < 5 {
			if err := s.After(1, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := s.Schedule(0, chain); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	want := []float64{0, 1, 2, 3, 4}
	if len(times) != len(want) {
		t.Fatalf("chain times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("chain times = %v", times)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		_ = s.Schedule(at, func() { fired = append(fired, at) })
	}
	n := s.Run(3)
	if n != 3 {
		t.Errorf("Run(3) executed %d", n)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	// Run past the last event: clock advances to until.
	s.Run(100)
	if s.Now() != 100 {
		t.Errorf("Now = %v, want 100", s.Now())
	}
	if len(fired) != 5 {
		t.Errorf("fired = %v", fired)
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	_ = s.Schedule(1, func() { count++; s.Stop() })
	_ = s.Schedule(2, func() { count++ })
	s.RunAll()
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped)", count)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
	if s.Step() {
		t.Error("Step after Stop should be false")
	}
}

func TestRNGDeterministicAndDecoupled(t *testing.T) {
	s1 := NewScheduler(99)
	s2 := NewScheduler(99)
	a1 := s1.RNG("radio")
	a2 := s2.RNG("radio")
	for i := 0; i < 10; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatal("same (seed, name) produced different streams")
		}
	}
	b := s1.RNG("noise")
	c := s1.RNG("radio")
	same := true
	for i := 0; i < 10; i++ {
		if b.Float64() != c.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct names produced identical streams")
	}
}

func TestQueueOrderProperty(t *testing.T) {
	// Whatever the insertion order, execution is by time then insertion seq.
	f := func(times []uint8) bool {
		s := NewScheduler(0)
		var executed []float64
		for _, raw := range times {
			at := float64(raw % 32)
			if err := s.Schedule(at, func() { executed = append(executed, at) }); err != nil {
				return false
			}
		}
		s.RunAll()
		return sort.Float64sAreSorted(executed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
