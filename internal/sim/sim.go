// Package sim provides the deterministic discrete-event simulation engine
// the WSN substrate runs on: a time-ordered event queue with stable
// tie-breaking, a simulation clock, and named deterministic random streams
// so that independent model components (radio loss, clock drift, sensor
// noise) draw from decoupled sequences and every run is reproducible from
// a single seed.
//
// Events always execute strictly serially, one at a time, on the goroutine
// that calls Run/Step: the scheduler itself is not safe for concurrent use.
// An event's callback may fan work out to other goroutines (the sid runtime
// parallelizes sample-block synthesis this way) as long as it joins them
// before returning, which keeps the event order — and thus every run —
// deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Event is a scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a discrete-event simulation clock. The zero value is not
// usable; create with NewScheduler.
type Scheduler struct {
	now     float64
	seq     uint64
	queue   eventQueue
	seed    int64
	stopped bool
}

// NewScheduler returns a scheduler starting at time 0 with the given base
// seed for derived random streams.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now returns the current simulation time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// is an error (it would silently reorder causality).
func (s *Scheduler) Schedule(at float64, fn func()) error {
	if at < s.now {
		return fmt.Errorf("sim: scheduling at %g before now %g", at, s.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event function")
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
	return nil
}

// After enqueues fn to run delay seconds from now.
func (s *Scheduler) After(delay float64, fn func()) error {
	return s.Schedule(s.now+delay, fn)
}

// Step runs the single earliest event, advancing the clock to it. It
// returns false if the queue is empty or the scheduler is stopped.
func (s *Scheduler) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue empties or the clock passes until.
// Events scheduled exactly at until still run. It returns the number of
// events executed.
func (s *Scheduler) Run(until float64) int {
	count := 0
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= until {
		s.Step()
		count++
	}
	if s.now < until && !s.stopped {
		s.now = until
	}
	return count
}

// RunAll executes events until the queue is empty and returns the count.
func (s *Scheduler) RunAll() int {
	count := 0
	for s.Step() {
		count++
	}
	return count
}

// Stop halts the simulation: no further events run.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// RNG returns a deterministic random stream derived from the scheduler
// seed and the stream name. The same (seed, name) always yields the same
// sequence, and distinct names yield decoupled sequences.
func (s *Scheduler) RNG(name string) *rand.Rand { return RNG(s.seed, name) }

// RNG is the stream derivation behind Scheduler.RNG, exposed so components
// constructed away from a scheduler (e.g. a sample source built standalone)
// can reproduce exactly the stream a scheduler-owned construction would
// have drawn from the same (seed, name).
func RNG(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}
