// Package wake models the V-shaped Kelvin wake a moving ship leaves on deep
// water — the physical phenomenon SID detects (§II of the paper). It stands
// in for the paper's real ship passes (a fishing boat at 10 and 16 knots).
//
// The model implements the published relations the paper builds on:
//
//   - Kelvin geometry: the cusp locus trails the ship at 19°28′ from the
//     sailing line regardless of ship size or speed; diverging wave crests
//     meet the cusp locus at 54°44′.
//   - Decay (eq. 1): the maximum wave height of the divergent (cusp) waves
//     decays as Hm = c·d^(−1/3) with distance d from the sailing line;
//     transverse waves decay faster, as d^(−1/2), so only divergent waves
//     are observable far from the vessel.
//   - Wake wave speed (eq. 2): W_v = V·cosΘ with
//     Θ = 35.27°·(1 − e^{12(F_d − 1)}), F_d the ship's Froude number.
//   - Finite duration: at a fixed point the wake is a short train of waves
//     (2–3 s at 25 m in the paper's observation), modeled as a
//     Gaussian-enveloped packet whose width grows slowly with distance
//     (frequency dispersion).
package wake

import (
	"fmt"
	"math"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
)

// Kelvin wake geometry constants.
var (
	// KelvinHalfAngle is the half-angle of the wake V: 19°28′.
	KelvinHalfAngle = geo.Deg(19 + 28.0/60)
	// CuspCrestAngle is the angle between the sailing line and the
	// diverging wave crests at the cusp locus: 54°44′.
	CuspCrestAngle = geo.Deg(54 + 44.0/60)
	// ThetaMax is the 35.27° factor in the wake wave speed equation.
	ThetaMax = geo.Deg(35.27)
)

// Ship is a vessel moving at constant speed along a sailing line.
type Ship struct {
	// Track is the directed sailing line.
	Track geo.Line
	// Speed is the ship speed V in m/s. Must be positive.
	Speed float64
	// Time0 is the simulation time at which the ship is at Track.Origin.
	Time0 float64
	// Length is the waterline hull length in meters, used for the Froude
	// number. Must be positive.
	Length float64
	// WaveCoeff is c in eq. (1), Hm = c·d^(−1/3), in m^(4/3). It captures
	// hull shape and speed-dependent wave-making; 1.5 yields ~0.5 m cusp
	// value for a small planing fishing boat.
	WaveCoeff float64
	// BaseDuration is the wave-train duration observed at the reference
	// distance of 25 m, in seconds (the paper observed 2–3 s; default 2.5).
	BaseDuration float64
}

// NewShip validates and returns a ship. Zero WaveCoeff defaults to 1.5 and
// zero BaseDuration to 2.5 s.
func NewShip(track geo.Line, speed, length float64) (*Ship, error) {
	if speed <= 0 {
		return nil, fmt.Errorf("wake: ship speed must be positive, got %g", speed)
	}
	if length <= 0 {
		return nil, fmt.Errorf("wake: ship length must be positive, got %g", length)
	}
	return &Ship{
		Track:        track,
		Speed:        speed,
		Length:       length,
		WaveCoeff:    1.5,
		BaseDuration: 2.5,
	}, nil
}

// CrossingShip builds the standard intruder geometry: a ship sailing a
// straight line whose wake front reaches center at time crossAt. The
// heading is in degrees from the +X (grid row) axis — 0 defaults to 90, a
// perpendicular crossing — offsetM shifts the sailing line sideways from
// center, and lengthM is the hull length (0 defaults to 12 m). The track
// starts 1 km before the center so the approach is fully off-field. This
// is the single source of the facade's AddIntruder geometry; the serving
// layer's feed builders reuse it so a served intruder is exactly the
// library's.
func CrossingShip(center geo.Vec2, speedKnots, headingDeg, offsetM, crossAt, lengthM float64) (*Ship, error) {
	if speedKnots <= 0 {
		return nil, fmt.Errorf("wake: intruder speed must be positive, got %g", speedKnots)
	}
	if lengthM == 0 {
		lengthM = 12
	}
	heading := geo.Deg(headingDeg)
	if headingDeg == 0 {
		heading = geo.Deg(90) // default: perpendicular crossing
	}
	dir := geo.Vec2{X: math.Cos(heading), Y: math.Sin(heading)}
	normal := geo.Vec2{X: -dir.Y, Y: dir.X}
	origin := center.Add(normal.Scale(offsetM)).Sub(dir.Scale(1000))
	ship, err := NewShip(geo.NewLine(origin, dir), geo.Knots(speedKnots), lengthM)
	if err != nil {
		return nil, err
	}
	ship.Time0 = crossAt - (ship.ArrivalTime(center) - ship.Time0)
	return ship, nil
}

// Position returns the ship position at time t.
func (s *Ship) Position(t float64) geo.Vec2 {
	return s.Track.At(s.Speed * (t - s.Time0))
}

// FroudeNumber returns F_d = V / sqrt(g·L).
func (s *Ship) FroudeNumber() float64 {
	return s.Speed / math.Sqrt(ocean.Gravity*s.Length)
}

// thetaFor returns Θ = 35.27°·(1 − e^{12(F_d−1)}) in radians (eq. 2) for a
// hull of the given length at the given speed, clamped to [0, 35.27°] for
// super-critical Froude numbers. Shared by Ship and Maneuver so a vessel's
// wake signature shifts consistently with its speed regime.
func thetaFor(speed, length float64) float64 {
	fd := speed / math.Sqrt(ocean.Gravity*length)
	th := ThetaMax * (1 - math.Exp(12*(fd-1)))
	if th < 0 {
		th = 0
	}
	return th
}

// Theta returns Θ = 35.27°·(1 − e^{12(F_d−1)}) in radians (eq. 2), clamped
// to [0, 35.27°] for super-critical Froude numbers.
func (s *Ship) Theta() float64 {
	return thetaFor(s.Speed, s.Length)
}

// WakeWaveSpeed returns W_v = V·cosΘ (eq. 2), the propagation speed of the
// divergent wake waves.
func (s *Ship) WakeWaveSpeed() float64 {
	return s.Speed * math.Cos(s.Theta())
}

// WakeFreq returns the frequency (Hz) of the divergent wake waves observed
// at a fixed point: the deep-water wave whose phase speed equals the wake
// wave speed. For small craft this lands in the 0.3–1 Hz band, above the
// swell peak but below the node's 1 Hz low-pass cutoff — the spectral
// signature of Figs. 6 and 7.
func (s *Ship) WakeFreq() float64 {
	return ocean.FreqForPhaseSpeed(s.WakeWaveSpeed())
}

// TransverseFreq returns the frequency of the transverse wake waves, whose
// phase speed matches the ship speed.
func (s *Ship) TransverseFreq() float64 {
	return ocean.FreqForPhaseSpeed(s.Speed)
}

// refSpeed is the speed at which WaveCoeff applies directly; the paper's
// eq. (1) notes c is "a parameter related to the speed of the passing
// ship", and wake height grows roughly linearly with speed in the
// semi-planing regime of small craft, so the effective coefficient is
// WaveCoeff·(V/refSpeed).
const refSpeed = 5.0

// EffectiveCoeff returns the speed-scaled wave-making coefficient.
func (s *Ship) EffectiveCoeff() float64 {
	return s.WaveCoeff * s.Speed / refSpeed
}

// CuspHeight returns the divergent-wave maximum height Hm = c·d^(−1/3)
// (eq. 1) at perpendicular distance d from the sailing line. Distances
// below MinDecayDistance are clamped to keep the near-field finite.
func (s *Ship) CuspHeight(d float64) float64 {
	if d < MinDecayDistance {
		d = MinDecayDistance
	}
	return s.EffectiveCoeff() * math.Pow(d, -1.0/3.0)
}

// TransverseHeight returns the transverse-wave height c·d^(−1/2) at
// perpendicular distance d.
func (s *Ship) TransverseHeight(d float64) float64 {
	if d < MinDecayDistance {
		d = MinDecayDistance
	}
	return s.EffectiveCoeff() * math.Pow(d, -0.5)
}

// MinDecayDistance clamps the decay laws' singularity at the sailing line
// (meters).
const MinDecayDistance = 2.0

// ArrivalTime returns the time at which the wake front (the cusp locus
// line trailing the ship at the Kelvin half-angle) sweeps the point p.
// The front passes p when the ship is d/tan(19°28′) beyond p's projection
// onto the sailing line.
func (s *Ship) ArrivalTime(p geo.Vec2) float64 {
	along := s.Track.Project(p)
	d := s.Track.Dist(p)
	lead := d / math.Tan(KelvinHalfAngle)
	return s.Time0 + (along+lead)/s.Speed
}

// Duration returns the wave-train duration at perpendicular distance d,
// growing as the fourth root of distance (frequency dispersion slowly
// stretches the packet).
func (s *Ship) Duration(d float64) float64 {
	if d < MinDecayDistance {
		d = MinDecayDistance
	}
	return s.BaseDuration * math.Pow(d/25.0, 0.25)
}

// Signal is the deterministic wake packet observed at one fixed point: a
// Gaussian-enveloped wave train for the divergent (cusp) waves plus a
// faster-decaying transverse component.
type Signal struct {
	// Arrival is the wake-front arrival time at the point (seconds).
	Arrival float64
	// Amp is the divergent-wave amplitude (half of Hm) in meters.
	Amp float64
	// TransAmp is the transverse-wave amplitude in meters.
	TransAmp float64
	// Freq is the divergent wave frequency in Hz.
	Freq float64
	// TransFreq is the transverse wave frequency in Hz.
	TransFreq float64
	// Sigma is the Gaussian envelope width in seconds.
	Sigma float64
}

// SignalAt precomputes the wake packet parameters for point p.
func (s *Ship) SignalAt(p geo.Vec2) Signal {
	return signalFor(s.Speed, s.Length, s.WaveCoeff, s.BaseDuration,
		s.Track.Dist(p), s.ArrivalTime(p))
}

// signalFor assembles the wake packet observed at perpendicular distance d
// from the sailing line, arriving at the given time, for a hull of the
// given length generating the wake at the given speed. It is the single
// formula behind Ship.SignalAt and the per-leg packets of a Maneuver.
func signalFor(speed, length, waveCoeff, baseDuration, d, arrival float64) Signal {
	if d < MinDecayDistance {
		d = MinDecayDistance
	}
	coeff := waveCoeff * speed / refSpeed
	theta := thetaFor(speed, length)
	dur := baseDuration * math.Pow(d/25.0, 0.25)
	return Signal{
		Arrival:   arrival,
		Amp:       coeff * math.Pow(d, -1.0/3.0) / 2,
		TransAmp:  coeff * math.Pow(d, -0.5) / 2 * transverseWeight,
		Freq:      ocean.FreqForPhaseSpeed(speed * math.Cos(theta)),
		TransFreq: ocean.FreqForPhaseSpeed(speed),
		Sigma:     dur / 2,
	}
	// The envelope width σ = duration/2 puts ~95% of the packet energy
	// within ±duration of the center.
}

// transverseWeight scales the transverse contribution relative to the
// divergent waves; transverse waves are weaker at the cusp observation
// points (the paper: "only divergent waves can be observed far from the
// vessel").
const transverseWeight = 0.4

// packetCenterLag places the packet center this many σ after the front
// arrival, so the envelope onset coincides with the front.
const packetCenterLag = 1.5

// Elevation returns the wake's surface-elevation contribution at time t.
func (g Signal) Elevation(t float64) float64 {
	u := t - (g.Arrival + packetCenterLag*g.Sigma)
	if g.Sigma <= 0 {
		return 0
	}
	env := math.Exp(-u * u / (2 * g.Sigma * g.Sigma))
	e := g.Amp * env * math.Cos(2*math.Pi*g.Freq*u)
	e += g.TransAmp * env * math.Cos(2*math.Pi*g.TransFreq*u)
	return e
}

// VerticalAccel returns the exact second time derivative of Elevation,
// i.e. the vertical acceleration a surface-following buoy experiences from
// the wake packet.
func (g Signal) VerticalAccel(t float64) float64 {
	if g.Sigma <= 0 {
		return 0
	}
	u := t - (g.Arrival + packetCenterLag*g.Sigma)
	s2 := g.Sigma * g.Sigma
	env := math.Exp(-u * u / (2 * s2))
	envD1 := -u / s2            // g'/g
	envD2 := u*u/(s2*s2) - 1/s2 // g''/g
	acc := 0.0
	for _, c := range [2]struct{ amp, freq float64 }{{g.Amp, g.Freq}, {g.TransAmp, g.TransFreq}} {
		w := 2 * math.Pi * c.freq
		cos, sin := math.Cos(w*u), math.Sin(w*u)
		// d²/dt² [env·cos(wu)] = env·[(g''/g − w²)·cos − 2w·(g'/g)·sin]
		acc += c.amp * env * ((envD2-w*w)*cos - 2*w*envD1*sin)
	}
	return acc
}

// Bounds returns conservative upper bounds on |VerticalAccel| (given the
// wavenumber k the slope model uses) and |Slope| over the window [t0, t1].
// The packet is a Gaussian envelope times bounded oscillations, so
//
//	|accel| ≤ (Amp+TransAmp) · env(u) · (u²/σ⁴ + 1/σ² + ω² + 2ωu/σ²)
//	|slope| ≤ k · (Amp+TransAmp) · env(u)
//
// with u the distance from the packet center and ω the larger angular
// frequency. env·poly is monotone decreasing for u ≥ 2σ, so the bound is
// evaluated at the window edge nearest the center; windows closer than 2σ
// get env = 1 and the polynomial at 2σ, which dominates the whole inner
// region. The sensor layer uses this to cull wake evaluation per block
// (see sensor.BoundedModel); wake_test.go verifies the bound dominates the
// exact signal across the packet.
func (g Signal) Bounds(t0, t1, k float64) (accel, slope float64) {
	if g.Sigma <= 0 {
		return 0, 0
	}
	tc := g.Arrival + packetCenterLag*g.Sigma
	var ug float64 // distance from [t0, t1] to the packet center
	switch {
	case t1 < tc:
		ug = tc - t1
	case t0 > tc:
		ug = t0 - tc
	}
	s2 := g.Sigma * g.Sigma
	ampSum := g.Amp + g.TransAmp
	wmax := 2 * math.Pi * math.Max(g.Freq, g.TransFreq)
	ue, env := ug, 1.0
	if ug < 2*g.Sigma {
		ue = 2 * g.Sigma
	} else {
		env = math.Exp(-ug * ug / (2 * s2))
	}
	poly := ue*ue/(s2*s2) + 1/s2 + wmax*wmax + 2*wmax*ue/s2
	accel = ampSum * env * poly
	slope = k * ampSum * math.Exp(-ug*ug/(2*s2))
	return accel, slope
}

// Field adapts a Ship into a position-dependent acceleration source with
// the same interface shape as ocean.Field, for composition by the sensor
// model.
type Field struct {
	Ship *Ship
}

// Elevation returns the wake elevation contribution at p and t.
func (f Field) Elevation(p geo.Vec2, t float64) float64 {
	return f.Ship.SignalAt(p).Elevation(t)
}

// VerticalAccel returns the wake's vertical acceleration at p and t.
func (f Field) VerticalAccel(p geo.Vec2, t float64) float64 {
	return f.Ship.SignalAt(p).VerticalAccel(t)
}

// Slope returns the wake-induced surface slope. The packet model is
// point-local; slope is approximated from the divergent wave's wavenumber
// along the propagation direction (perpendicular-ish to the cusp line).
// Its magnitude is |∂η/∂x| ≈ k·η with k from the wake frequency.
func (f Field) Slope(p geo.Vec2, t float64) geo.Vec2 {
	e := f.Ship.SignalAt(p).Elevation(t)
	return f.slopeNormal(p).Scale(ocean.WavenumberFor(f.Ship.WakeFreq()) * e)
}

// Bounds implements sensor.BoundedModel: conservative upper bounds on the
// wake's |VerticalAccel| and |Slope| at p over [t0, t1], letting the sensor
// skip the per-sample evaluation for blocks the packet provably cannot
// reach above the quantization floor.
func (f Field) Bounds(p geo.Vec2, t0, t1 float64) (accel, slope float64) {
	return f.Ship.SignalAt(p).Bounds(t0, t1, ocean.WavenumberFor(f.Ship.WakeFreq()))
}

// slopeNormal is the unit direction the wake slope points along at p: away
// from the sailing line.
func (f Field) slopeNormal(p geo.Vec2) geo.Vec2 {
	side := f.Ship.Track.SignedDist(p)
	normal := geo.Vec2{X: -f.Ship.Track.Dir.Y, Y: f.Ship.Track.Dir.X}
	if side < 0 {
		normal = normal.Scale(-1)
	}
	return normal
}

// Note: Field deliberately does not implement the batched
// sensor.SurfaceSeriesSampler fast path. The batched path freezes the
// observation point for a whole block, which is harmless for the ambient
// sea (statistics-critical) but shifts the wake packet's arrival phase at
// a drifting buoy — and those onset times are exactly what the four-node
// speed estimator consumes. The wake is a single packet evaluation per
// sample, so the exact per-sample path costs little.
