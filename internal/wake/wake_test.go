package wake

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testShip(t *testing.T, speed float64) *Ship {
	t.Helper()
	s, err := NewShip(geo.NewLine(geo.Vec2{}, geo.Vec2{X: 1, Y: 0}), speed, 12)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewShipValidation(t *testing.T) {
	line := geo.NewLine(geo.Vec2{}, geo.Vec2{X: 1, Y: 0})
	if _, err := NewShip(line, 0, 12); err == nil {
		t.Error("expected error for zero speed")
	}
	if _, err := NewShip(line, 5, 0); err == nil {
		t.Error("expected error for zero length")
	}
	s, err := NewShip(line, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.WaveCoeff != 1.5 || s.BaseDuration != 2.5 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestKelvinConstants(t *testing.T) {
	if !almostEq(geo.ToDeg(KelvinHalfAngle), 19.4667, 1e-3) {
		t.Errorf("KelvinHalfAngle = %v°", geo.ToDeg(KelvinHalfAngle))
	}
	if !almostEq(geo.ToDeg(CuspCrestAngle), 54.7333, 1e-3) {
		t.Errorf("CuspCrestAngle = %v°", geo.ToDeg(CuspCrestAngle))
	}
}

func TestShipPosition(t *testing.T) {
	s := testShip(t, 5)
	s.Time0 = 10
	if p := s.Position(10); p != (geo.Vec2{X: 0, Y: 0}) {
		t.Errorf("position at Time0 = %v", p)
	}
	if p := s.Position(12); !almostEq(p.X, 10, 1e-12) || p.Y != 0 {
		t.Errorf("position after 2s = %v, want (10, 0)", p)
	}
}

func TestFroudeAndTheta(t *testing.T) {
	s := testShip(t, geo.Knots(10)) // 5.14 m/s, L=12 → Fd ≈ 0.474
	fd := s.FroudeNumber()
	if math.Abs(fd-0.474) > 0.01 {
		t.Errorf("Froude = %v, want ~0.474", fd)
	}
	// For sub-critical Froude numbers Θ is near 35.27°.
	th := geo.ToDeg(s.Theta())
	if th < 35.0 || th > 35.27 {
		t.Errorf("Theta = %v°, want just below 35.27", th)
	}
	// Super-critical ship: Θ clamps to ≥ 0 and decreases.
	fast := testShip(t, 30) // Fd ≈ 2.77
	if fast.Theta() != 0 {
		t.Errorf("super-critical Theta = %v, want 0", fast.Theta())
	}
}

func TestWakeWaveSpeedAndFreq(t *testing.T) {
	s := testShip(t, geo.Knots(10))
	wv := s.WakeWaveSpeed()
	want := s.Speed * math.Cos(s.Theta())
	if !almostEq(wv, want, 1e-12) {
		t.Errorf("WakeWaveSpeed = %v, want %v", wv, want)
	}
	if wv >= s.Speed {
		t.Error("wake wave speed must be below ship speed")
	}
	// 10-knot boat: wake frequency in the detectable sub-1 Hz band,
	// above typical swell (~0.2 Hz).
	f := s.WakeFreq()
	if f < 0.25 || f > 1.0 {
		t.Errorf("WakeFreq = %v Hz, want in [0.25, 1]", f)
	}
	// Transverse waves are slower in frequency (phase speed = V).
	if tf := s.TransverseFreq(); tf >= f {
		t.Errorf("TransverseFreq %v should be below divergent freq %v", tf, f)
	}
}

func TestDecayLaws(t *testing.T) {
	s := testShip(t, 5)
	// Hm = c·d^(-1/3): doubling distance scales by 2^(-1/3).
	h25 := s.CuspHeight(25)
	h50 := s.CuspHeight(50)
	if !almostEq(h50/h25, math.Pow(2, -1.0/3.0), 1e-9) {
		t.Errorf("cusp decay ratio = %v", h50/h25)
	}
	// Transverse decays faster: ratio 2^(-1/2).
	t25 := s.TransverseHeight(25)
	t50 := s.TransverseHeight(50)
	if !almostEq(t50/t25, math.Pow(2, -0.5), 1e-9) {
		t.Errorf("transverse decay ratio = %v", t50/t25)
	}
	// Far from the ship, transverse waves are negligible relative to
	// divergent waves (both same c here, so ratio shrinks with d).
	if s.TransverseHeight(400)/s.CuspHeight(400) >= s.TransverseHeight(25)/s.CuspHeight(25) {
		t.Error("transverse/divergent ratio should fall with distance")
	}
	// Near-field clamp keeps heights finite.
	if math.IsInf(s.CuspHeight(0), 0) || s.CuspHeight(0) != s.CuspHeight(MinDecayDistance) {
		t.Error("near-field clamp failed")
	}
}

func TestArrivalTimeGeometry(t *testing.T) {
	// Ship along +X at 5 m/s starting at origin at t=0. A node at (100, 25):
	// the front passes when the ship is 25/tan(19.47°) ≈ 70.7 m beyond x=100.
	s := testShip(t, 5)
	p := geo.Vec2{X: 100, Y: 25}
	at := s.ArrivalTime(p)
	lead := 25 / math.Tan(KelvinHalfAngle)
	want := (100 + lead) / 5
	if !almostEq(at, want, 1e-9) {
		t.Errorf("ArrivalTime = %v, want %v", at, want)
	}
	// Symmetric on both sides of the track.
	if a2 := s.ArrivalTime(geo.Vec2{X: 100, Y: -25}); !almostEq(a2, at, 1e-9) {
		t.Errorf("asymmetric arrival: %v vs %v", a2, at)
	}
	// Farther nodes are hit later.
	if s.ArrivalTime(geo.Vec2{X: 100, Y: 50}) <= at {
		t.Error("farther node should be hit later")
	}
	// Time0 shifts arrivals.
	s.Time0 = 100
	if a3 := s.ArrivalTime(p); !almostEq(a3, want+100, 1e-9) {
		t.Errorf("Time0 shift: %v", a3)
	}
}

func TestArrivalOrderAcrossRow(t *testing.T) {
	// Nodes in a row perpendicular to the track: closer nodes detect first —
	// the spatial/temporal correlation the cluster level exploits (§IV-C1).
	s := testShip(t, geo.Knots(10))
	prev := math.Inf(-1)
	for d := 25.0; d <= 150; d += 25 {
		at := s.ArrivalTime(geo.Vec2{X: 200, Y: d})
		if at <= prev {
			t.Fatalf("arrival not increasing with distance at d=%v", d)
		}
		prev = at
	}
}

func TestDurationGrowsWithDistance(t *testing.T) {
	s := testShip(t, 5)
	if !almostEq(s.Duration(25), s.BaseDuration, 1e-12) {
		t.Errorf("Duration(25) = %v, want %v", s.Duration(25), s.BaseDuration)
	}
	if s.Duration(100) <= s.Duration(25) {
		t.Error("duration should grow with distance")
	}
	if s.Duration(0) != s.Duration(MinDecayDistance) {
		t.Error("duration clamp failed")
	}
}

func TestSignalPacketShape(t *testing.T) {
	s := testShip(t, geo.Knots(10))
	p := geo.Vec2{X: 200, Y: 25}
	sig := s.SignalAt(p)
	if sig.Amp <= 0 || sig.Sigma <= 0 {
		t.Fatalf("degenerate signal: %+v", sig)
	}
	// Before the front: negligible. At packet center: near max envelope.
	center := sig.Arrival + packetCenterLag*sig.Sigma
	far := sig.Arrival - 10*sig.Sigma
	if math.Abs(sig.Elevation(far)) > 1e-6*sig.Amp {
		t.Errorf("packet leaks before arrival: %v", sig.Elevation(far))
	}
	// Peak envelope magnitude near center across one period.
	var peak float64
	for dt := -1.0; dt <= 1.0; dt += 0.01 {
		if v := math.Abs(sig.Elevation(center + dt)); v > peak {
			peak = v
		}
	}
	if peak < 0.8*sig.Amp {
		t.Errorf("packet peak %v too small vs amp %v", peak, sig.Amp)
	}
}

func TestSignalAccelMatchesNumericalDerivative(t *testing.T) {
	s := testShip(t, geo.Knots(16))
	sig := s.SignalAt(geo.Vec2{X: 150, Y: 30})
	h := 1e-4
	for _, dt := range []float64{-2, -0.5, 0, 0.7, 2.5} {
		tm := sig.Arrival + packetCenterLag*sig.Sigma + dt
		num := (sig.Elevation(tm+h) - 2*sig.Elevation(tm) + sig.Elevation(tm-h)) / (h * h)
		got := sig.VerticalAccel(tm)
		if math.Abs(num-got) > 1e-3*(1+math.Abs(got)) {
			t.Errorf("dt=%v: accel %v vs numerical %v", dt, got, num)
		}
	}
}

func TestSignalZeroSigma(t *testing.T) {
	var sig Signal
	if sig.Elevation(0) != 0 || sig.VerticalAccel(0) != 0 {
		t.Error("zero-sigma signal should be silent")
	}
}

func TestWakeAmplitudeDecaysAcrossRows(t *testing.T) {
	// Nodes closer to the travel line see higher wake energy — the basis of
	// the energy correlation C_re (§IV-C1, eq. 11).
	s := testShip(t, geo.Knots(10))
	prev := math.Inf(1)
	for d := 25.0; d <= 150; d += 25 {
		sig := s.SignalAt(geo.Vec2{X: 200, Y: d})
		if sig.Amp >= prev {
			t.Fatalf("amplitude not decreasing at d=%v", d)
		}
		prev = sig.Amp
	}
}

func TestFieldComposition(t *testing.T) {
	s := testShip(t, geo.Knots(10))
	f := Field{Ship: s}
	p := geo.Vec2{X: 100, Y: 25}
	sig := s.SignalAt(p)
	tm := sig.Arrival + packetCenterLag*sig.Sigma
	if f.Elevation(p, tm) != sig.Elevation(tm) {
		t.Error("Field.Elevation disagrees with SignalAt")
	}
	if f.VerticalAccel(p, tm) != sig.VerticalAccel(tm) {
		t.Error("Field.VerticalAccel disagrees with SignalAt")
	}
	// Slope points away from the track (positive side → +Y-ish normal),
	// and is finite.
	sl := f.Slope(p, tm)
	if math.IsNaN(sl.X) || math.IsNaN(sl.Y) {
		t.Errorf("slope NaN: %v", sl)
	}
}

func TestFasterShipStrongerHigherFreqWake(t *testing.T) {
	slow := testShip(t, geo.Knots(10))
	fast := testShip(t, geo.Knots(16))
	// Faster ship → faster wake waves → lower frequency (deep water:
	// f = g/(2πc)).
	if fast.WakeFreq() >= slow.WakeFreq() {
		t.Errorf("16-kn wake freq %v should be below 10-kn %v", fast.WakeFreq(), slow.WakeFreq())
	}
}
