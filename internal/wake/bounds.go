package wake

import (
	"math"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
)

// This file extends the per-point packet bounds of Signal.Bounds to whole
// axis-aligned regions, so a spatial index over node positions can discard
// entire buckets of provably-quiet nodes with a single evaluation (see
// geo.Index.QueryRegion and the source-layer wiring).
//
// The derivation mirrors Signal.Bounds. Over a rectangle, the along-track
// projection and the signed perpendicular distance to a sailing line are both
// affine in the observation point, so their extremes sit at the rectangle's
// corners. From the distance interval [dMin, dMax] follow intervals for the
// packet amplitude (largest at dMin), the envelope width σ (monotone in d),
// and — together with the projection interval — the wake-front arrival time.
// The interval form of the envelope/polynomial bound then uses, for each
// factor, the end of its interval that maximizes the product:
//
//	|accel| ≤ ampMax · env(ugBox; σHi) · poly(max(ugBox, 2σHi); σLo)
//	|slope| ≤ kMax · ampMax · env(ugBox; σHi)
//
// with ugBox the distance from the sample window to the *interval* of packet
// centers. env·poly is monotone decreasing for u ≥ 2σ, which makes the mixed
// σLo/σHi evaluation dominate every per-point bound; bounds_test.go verifies
// the domination property over randomized geometry.

// packetBoxBound carries interval bounds on a family of wake packets — one
// per observation point of a rectangle — in the same shape Signal.Bounds
// consumes point values.
type packetBoxBound struct {
	ampMax       float64 // max of Amp+TransAmp over the rectangle
	sigLo, sigHi float64 // envelope width range over the rectangle
	wMax         float64 // largest angular frequency of any packet
	kMax         float64 // largest slope wavenumber of any packet
	arrLo, arrHi float64 // wake-front arrival range over the rectangle
}

// bounds returns conservative upper bounds on |VerticalAccel| and |Slope|
// over the window [t0, t1] for every packet in the family.
func (b packetBoxBound) bounds(t0, t1 float64) (accel, slope float64) {
	if b.sigLo <= 0 {
		return 0, 0
	}
	// Every packet's center lies in [tcLo, tcHi].
	tcLo := b.arrLo + packetCenterLag*b.sigLo
	tcHi := b.arrHi + packetCenterLag*b.sigHi
	var ug float64 // distance from [t0, t1] to the center interval
	switch {
	case t1 < tcLo:
		ug = tcLo - t1
	case t0 > tcHi:
		ug = t0 - tcHi
	}
	s2lo := b.sigLo * b.sigLo
	s2hi := b.sigHi * b.sigHi
	ue, env := ug, 1.0
	if ug < 2*b.sigHi {
		ue = 2 * b.sigHi
	} else {
		env = math.Exp(-ug * ug / (2 * s2hi))
	}
	poly := ue*ue/(s2lo*s2lo) + 1/s2lo + b.wMax*b.wMax + 2*b.wMax*ue/s2lo
	accel = b.ampMax * env * poly
	slope = b.kMax * b.ampMax * math.Exp(-ug*ug/(2*s2hi))
	return accel, slope
}

// boxTrackRange returns the range of along-track projections and of
// perpendicular distances from the rectangle [min, max] to the track. Both
// the projection and the signed distance are affine over the plane, so their
// extremes are attained at the rectangle's corners; the distance interval
// collapses to zero at its low end when the track crosses the rectangle.
func boxTrackRange(track geo.Line, min, max geo.Vec2) (alongLo, alongHi, dMin, dMax float64) {
	corners := [4]geo.Vec2{min, {X: max.X, Y: min.Y}, max, {X: min.X, Y: max.Y}}
	sLo, sHi := math.Inf(1), math.Inf(-1)
	alongLo, alongHi = math.Inf(1), math.Inf(-1)
	for _, c := range corners {
		a := track.Project(c)
		alongLo = math.Min(alongLo, a)
		alongHi = math.Max(alongHi, a)
		s := track.SignedDist(c)
		sLo = math.Min(sLo, s)
		sHi = math.Max(sHi, s)
	}
	dMax = math.Max(math.Abs(sLo), math.Abs(sHi))
	if sLo <= 0 && sHi >= 0 {
		dMin = 0
	} else {
		dMin = math.Min(math.Abs(sLo), math.Abs(sHi))
	}
	return alongLo, alongHi, dMin, dMax
}

// BoundsBox returns conservative upper bounds on the wake's |VerticalAccel|
// and |Slope| over the window [t0, t1] for every observation point inside
// the rectangle [min, max]: for all p in the box, Bounds(p, t0, t1) is
// dominated componentwise. It implements sensor.RegionBoundedModel so the
// source layer's spatial index can skip whole buckets of nodes per block.
func (f Field) BoundsBox(min, max geo.Vec2, t0, t1 float64) (accel, slope float64) {
	s := f.Ship
	alongLo, alongHi, dMin, dMax := boxTrackRange(s.Track, min, max)
	// Amplitude and envelope width use the decay-clamped distance, exactly
	// as signalFor does; the arrival geometry uses the raw distance, exactly
	// as ArrivalTime does.
	dLo := math.Max(dMin, MinDecayDistance)
	dHi := math.Max(dMax, MinDecayDistance)
	coeff := s.EffectiveCoeff()
	tanK := math.Tan(KelvinHalfAngle)
	b := packetBoxBound{
		ampMax: coeff*math.Pow(dLo, -1.0/3.0)/2 + coeff*math.Pow(dLo, -0.5)/2*transverseWeight,
		sigLo:  s.Duration(dLo) / 2,
		sigHi:  s.Duration(dHi) / 2,
		wMax:   2 * math.Pi * math.Max(s.WakeFreq(), s.TransverseFreq()),
		kMax:   ocean.WavenumberFor(s.WakeFreq()),
		arrLo:  s.Time0 + (alongLo+dMin/tanK)/s.Speed,
		arrHi:  s.Time0 + (alongHi+dMax/tanK)/s.Speed,
	}
	return b.bounds(t0, t1)
}

// BoundsBox is the region form of ManeuverField.Bounds: per covering leg,
// the projection/distance intervals come from the rectangle's corners, the
// generation-speed interval from the (monotone) leg kinematics over the
// clamped foot range, and the frequency/wavenumber extremes from the slow
// end of that interval — the phase speed V·cosΘ(V) grows with V, so the
// observed frequency and wavenumber peak at the minimum generation speed.
// Contributions of all possibly-covering legs add, as in Bounds.
func (f ManeuverField) BoundsBox(min, max geo.Vec2, t0, t1 float64) (accel, slope float64) {
	m := f.M
	tanK := math.Tan(KelvinHalfAngle)
	for _, l := range m.legs {
		alongLo, alongHi, dMin, dMax := boxTrackRange(l.track, min, max)
		if alongHi < 0 || alongLo > l.length {
			continue // no point of the box has its perpendicular foot on this leg
		}
		sLo := math.Max(alongLo, 0)
		sHi := math.Min(alongHi, l.length)
		vA, vB := l.speedAtS(sLo), l.speedAtS(sHi)
		vMin, vMax := math.Min(vA, vB), math.Max(vA, vB)
		dLo := math.Max(dMin, MinDecayDistance)
		dHi := math.Max(dMax, MinDecayDistance)
		coeff := m.WaveCoeff * vMax / refSpeed
		theta := thetaFor(vMin, m.Length)
		divFreq := ocean.FreqForPhaseSpeed(vMin * math.Cos(theta))
		transFreq := ocean.FreqForPhaseSpeed(vMin)
		b := packetBoxBound{
			ampMax: coeff*math.Pow(dLo, -1.0/3.0)/2 + coeff*math.Pow(dLo, -0.5)/2*transverseWeight,
			sigLo:  m.BaseDuration * math.Pow(dLo/25.0, 0.25) / 2,
			sigHi:  m.BaseDuration * math.Pow(dHi/25.0, 0.25) / 2,
			wMax:   2 * math.Pi * math.Max(divFreq, transFreq),
			kMax:   ocean.WavenumberFor(divFreq),
			arrLo:  l.timeAtS(sLo + dMin/tanK),
			arrHi:  l.timeAtS(sHi + dMax/tanK),
		}
		a, sl := b.bounds(t0, t1)
		accel += a
		slope += sl
	}
	return accel, slope
}
