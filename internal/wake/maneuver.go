package wake

import (
	"fmt"
	"math"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
)

// Waypoint is one vertex of a piecewise-linear vessel trajectory together
// with the speed the vessel holds as it passes that vertex. Between two
// waypoints the vessel accelerates uniformly, so speed ramps linearly in
// time from one waypoint's value to the next.
type Waypoint struct {
	Pos geo.Vec2
	// Speed is the vessel speed at this waypoint in m/s. Must be positive
	// (the wake model has no meaning for a stationary or reversing hull).
	Speed float64
}

// Maneuver is a vessel following a waypoint trajectory: straight legs with
// per-leg constant acceleration. It generalizes Ship (one infinite leg at
// constant speed) to the multi-leg, accelerating intruders of the scenario
// engine: a vessel enters at its first waypoint at a given time, sails each
// leg in turn, and vanishes past the last waypoint (it has left the area).
//
// The wake of each leg is the same Gaussian-enveloped Kelvin packet as
// Ship's, with the packet parameters taken from the speed the vessel had
// when it generated the wake observed at a point — so an accelerating
// ship's wake frequency and amplitude shift along its track exactly as the
// Froude-number relations (eqs. 1–2) prescribe. Wakes of concurrent legs
// and of concurrent vessels superpose linearly (the elevation fields add),
// which is how the scenario engine composes multi-ship trials.
type Maneuver struct {
	// Length is the waterline hull length in meters (Froude number).
	Length float64
	// WaveCoeff is c in eq. (1); see Ship.WaveCoeff.
	WaveCoeff float64
	// BaseDuration is the wave-train duration at 25 m; see Ship.
	BaseDuration float64

	legs []leg
}

// leg is one straight trajectory segment with constant acceleration.
type leg struct {
	track  geo.Line // directed from leg start to leg end
	length float64  // meters along track
	t0, t1 float64  // absolute times at leg start and end
	v0, v1 float64  // speeds at leg start and end
	accel  float64  // (v1−v0)/(t1−t0)
	last   bool
}

// NewManeuver validates and builds a maneuver: the vessel is at wps[0] at
// time enterAt and sails the waypoints in order. At least two waypoints are
// required, consecutive waypoints must be distinct, and every speed must be
// positive. Leg durations follow from the uniform-acceleration kinematics
// T = 2L/(v0+v1). Hull length must be positive; zero WaveCoeff defaults to
// 1.5 and zero BaseDuration to 2.5 s, as for Ship.
func NewManeuver(enterAt, length float64, wps []Waypoint) (*Maneuver, error) {
	if length <= 0 {
		return nil, fmt.Errorf("wake: maneuver hull length must be positive, got %g", length)
	}
	if len(wps) < 2 {
		return nil, fmt.Errorf("wake: maneuver needs at least 2 waypoints, got %d", len(wps))
	}
	m := &Maneuver{Length: length, WaveCoeff: 1.5, BaseDuration: 2.5}
	t := enterAt
	for i := 0; i+1 < len(wps); i++ {
		a, b := wps[i], wps[i+1]
		if a.Speed <= 0 || b.Speed <= 0 {
			return nil, fmt.Errorf("wake: waypoint speeds must be positive, got %g, %g", a.Speed, b.Speed)
		}
		dist := a.Pos.Dist(b.Pos)
		if dist == 0 {
			return nil, fmt.Errorf("wake: waypoints %d and %d coincide at %v", i, i+1, a.Pos)
		}
		dur := 2 * dist / (a.Speed + b.Speed)
		m.legs = append(m.legs, leg{
			track:  geo.LineThrough(a.Pos, b.Pos),
			length: dist,
			t0:     t, t1: t + dur,
			v0: a.Speed, v1: b.Speed,
			accel: (b.Speed - a.Speed) / dur,
		})
		t += dur
	}
	m.legs[len(m.legs)-1].last = true
	return m, nil
}

// EnterAt returns the time the vessel is at its first waypoint.
func (m *Maneuver) EnterAt() float64 { return m.legs[0].t0 }

// ExitAt returns the time the vessel reaches its last waypoint.
func (m *Maneuver) ExitAt() float64 { return m.legs[len(m.legs)-1].t1 }

// sAt returns the distance sailed along the leg at absolute time t.
func (l leg) sAt(t float64) float64 {
	tau := t - l.t0
	return l.v0*tau + 0.5*l.accel*tau*tau
}

// speedAtS returns the vessel speed after sailing s meters of the leg
// (v² = v0² + 2as). s is clamped to the leg, so the result lies between
// v0 and v1.
func (l leg) speedAtS(s float64) float64 {
	if s < 0 {
		s = 0
	}
	if s > l.length {
		s = l.length
	}
	v2 := l.v0*l.v0 + 2*l.accel*s
	if v2 <= 0 {
		return math.Min(l.v0, l.v1)
	}
	return math.Sqrt(v2)
}

// timeAtS returns the absolute time the vessel is s meters along the leg.
// Positions past the leg end extrapolate at the leg's exit speed — used for
// wake-front arrivals whose lead distance extends beyond the leg (the waves
// were generated on the leg; the front keeps sweeping outward after the
// vessel has turned or left).
func (l leg) timeAtS(s float64) float64 {
	if s > l.length {
		return l.t1 + (s-l.length)/l.v1
	}
	if math.Abs(l.accel) < 1e-12 {
		return l.t0 + s/l.v0
	}
	// The admissible root of v0·τ + a·τ²/2 = s on [t0, t1].
	v2 := l.v0*l.v0 + 2*l.accel*s
	if v2 < 0 {
		v2 = 0
	}
	return l.t0 + (math.Sqrt(v2)-l.v0)/l.accel
}

// legAt returns the leg active at time t, clamping before entry and after
// exit.
func (m *Maneuver) legAt(t float64) leg {
	for _, l := range m.legs {
		if t < l.t1 || l.last {
			return l
		}
	}
	return m.legs[len(m.legs)-1]
}

// Position returns the vessel position at time t, clamped to the trajectory
// endpoints before entry and after exit.
func (m *Maneuver) Position(t float64) geo.Vec2 {
	l := m.legAt(t)
	if t <= l.t0 {
		return l.track.Origin
	}
	s := l.sAt(math.Min(t, l.t1))
	if s > l.length {
		s = l.length
	}
	return l.track.At(s)
}

// SpeedAt returns the vessel speed at time t (clamped to the trajectory).
func (m *Maneuver) SpeedAt(t float64) float64 {
	l := m.legAt(t)
	return l.speedAtS(l.sAt(math.Min(math.Max(t, l.t0), l.t1)))
}

// HeadingAt returns the unit sailing direction at time t (clamped).
func (m *Maneuver) HeadingAt(t float64) geo.Vec2 { return m.legAt(t).track.Dir }

// legSignal returns the wake packet the leg contributes at p. A leg
// contributes iff the perpendicular foot of p falls within it — the segment
// of track that generated the divergent waves observed at p. Legs partition
// the trajectory half-open ([0, length) except the last, which includes its
// end), so a collinear chain of legs covers each point exactly once and a
// constant-speed multi-leg straight run reproduces Ship bit for bit. Near a
// turn a point can see the wakes of both adjoining legs, or neither —
// wake caustics and shadow sectors, the price of the piecewise model.
//
// The packet parameters use the speed the vessel had at the foot (the
// generation speed); the front arrival extrapolates the leg's kinematics to
// the cusp-locus lead position, per ArrivalTime's geometry.
func (m *Maneuver) legSignal(l leg, p geo.Vec2) (Signal, bool) {
	s := l.track.Project(p)
	if s < 0 || s > l.length || (s == l.length && !l.last) {
		return Signal{}, false
	}
	d := l.track.Dist(p)
	v := l.speedAtS(s)
	lead := d / math.Tan(KelvinHalfAngle)
	arrival := l.timeAtS(s + lead)
	return signalFor(v, m.Length, m.WaveCoeff, m.BaseDuration, d, arrival), true
}

// ArrivalTime returns the earliest wake-front arrival at p over the legs
// that cover p, and whether any leg covers it at all (a point beyond the
// trajectory's lateral extent, or in a turn's shadow sector, sees no wake).
func (m *Maneuver) ArrivalTime(p geo.Vec2) (float64, bool) {
	t, ok := math.Inf(1), false
	for _, l := range m.legs {
		if sig, covered := m.legSignal(l, p); covered {
			ok = true
			if sig.Arrival < t {
				t = sig.Arrival
			}
		}
	}
	return t, ok
}

// GenerationSpeed returns the vessel speed that generated the wake observed
// at p (the speed at the perpendicular foot of the earliest covering leg),
// and whether p is covered. This is the ground truth a speed estimator
// should be scored against for an accelerating vessel.
func (m *Maneuver) GenerationSpeed(p geo.Vec2) (float64, bool) {
	best, speed, ok := math.Inf(1), 0.0, false
	for _, l := range m.legs {
		sig, covered := m.legSignal(l, p)
		if !covered {
			continue
		}
		if sig.Arrival < best {
			best = sig.Arrival
			speed = l.speedAtS(l.track.Project(p))
			ok = true
		}
	}
	return speed, ok
}

// GenerationHeading returns the sailing direction of the leg whose wake
// arrives first at p, and whether p is covered.
func (m *Maneuver) GenerationHeading(p geo.Vec2) (geo.Vec2, bool) {
	best, dir, ok := math.Inf(1), geo.Vec2{}, false
	for _, l := range m.legs {
		sig, covered := m.legSignal(l, p)
		if !covered {
			continue
		}
		if sig.Arrival < best {
			best = sig.Arrival
			dir = l.track.Dir
			ok = true
		}
	}
	return dir, ok
}

// ManeuverField adapts a Maneuver into a surface-motion source with the
// same interface shape as Field. Contributions of all covering legs add —
// the linear superposition that also composes concurrent vessels.
//
// Like Field, ManeuverField deliberately has no batched series path: wake
// packets are onset-critical for the speed estimator, so every sample is
// evaluated at the exact drifted buoy position (see the note at the bottom
// of wake.go). The ambient sea keeps its phasor-rotation fast path.
type ManeuverField struct {
	M *Maneuver
}

// Elevation returns the summed wake elevation contribution at p and t.
func (f ManeuverField) Elevation(p geo.Vec2, t float64) float64 {
	var e float64
	for _, l := range f.M.legs {
		if sig, ok := f.M.legSignal(l, p); ok {
			e += sig.Elevation(t)
		}
	}
	return e
}

// VerticalAccel returns the summed wake vertical acceleration at p and t.
func (f ManeuverField) VerticalAccel(p geo.Vec2, t float64) float64 {
	var a float64
	for _, l := range f.M.legs {
		if sig, ok := f.M.legSignal(l, p); ok {
			a += sig.VerticalAccel(t)
		}
	}
	return a
}

// Bounds implements sensor.BoundedModel: the sum of every covering leg's
// packet bounds over [t0, t1] (superposition bounds superpose), with each
// leg's slope bound using that leg's generation-speed wavenumber exactly as
// Slope does.
func (f ManeuverField) Bounds(p geo.Vec2, t0, t1 float64) (accel, slope float64) {
	for _, l := range f.M.legs {
		sig, ok := f.M.legSignal(l, p)
		if !ok {
			continue
		}
		v := l.speedAtS(l.track.Project(p))
		theta := thetaFor(v, f.M.Length)
		k := ocean.WavenumberFor(ocean.FreqForPhaseSpeed(v * math.Cos(theta)))
		a, s := sig.Bounds(t0, t1, k)
		accel += a
		slope += s
	}
	return accel, slope
}

// Slope returns the wake-induced surface slope at p and t, summing each
// covering leg's contribution along its own away-from-track normal (the
// same point-local approximation as Field.Slope).
func (f ManeuverField) Slope(p geo.Vec2, t float64) geo.Vec2 {
	var out geo.Vec2
	for _, l := range f.M.legs {
		sig, ok := f.M.legSignal(l, p)
		if !ok {
			continue
		}
		normal := geo.Vec2{X: -l.track.Dir.Y, Y: l.track.Dir.X}
		if l.track.SignedDist(p) < 0 {
			normal = normal.Scale(-1)
		}
		v := l.speedAtS(l.track.Project(p))
		theta := thetaFor(v, f.M.Length)
		k := ocean.WavenumberFor(ocean.FreqForPhaseSpeed(v * math.Cos(theta)))
		out = out.Add(normal.Scale(k * sig.Elevation(t)))
	}
	return out
}
