package wake

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// A single-leg maneuver at constant speed must reproduce Ship exactly: same
// arrival, same packet, same field samples. This pins the refactor that
// extracted signalFor/thetaFor out of Ship.
func TestManeuverMatchesShipOnConstantLeg(t *testing.T) {
	track := geo.LineThrough(geo.Vec2{X: -50, Y: 30}, geo.Vec2{X: 450, Y: 80})
	ship, err := NewShip(track, 6.0, 12)
	if err != nil {
		t.Fatal(err)
	}
	ship.Time0 = 40

	m, err := NewManeuver(40, 12, []Waypoint{
		{Pos: geo.Vec2{X: -50, Y: 30}, Speed: 6.0},
		{Pos: geo.Vec2{X: 450, Y: 80}, Speed: 6.0},
	})
	if err != nil {
		t.Fatal(err)
	}

	points := []geo.Vec2{
		{X: 0, Y: 90}, {X: 100, Y: -10}, {X: 200, Y: 120}, {X: 330, Y: 60},
	}
	for _, p := range points {
		want := ship.SignalAt(p)
		at, ok := m.ArrivalTime(p)
		if !ok {
			t.Fatalf("maneuver does not cover %v", p)
		}
		if math.Abs(at-want.Arrival) > 1e-9 {
			t.Errorf("arrival at %v: maneuver %g, ship %g", p, at, want.Arrival)
		}
		sf, ff := Field{Ship: ship}, ManeuverField{M: m}
		for _, tm := range []float64{want.Arrival - 3, want.Arrival, want.Arrival + 4, want.Arrival + 9} {
			if a, b := sf.VerticalAccel(p, tm), ff.VerticalAccel(p, tm); math.Abs(a-b) > 1e-9 {
				t.Errorf("accel at %v t=%g: ship %g, maneuver %g", p, tm, a, b)
			}
			if a, b := sf.Elevation(p, tm), ff.Elevation(p, tm); math.Abs(a-b) > 1e-9 {
				t.Errorf("elevation at %v t=%g: ship %g, maneuver %g", p, tm, a, b)
			}
			sa, sb := sf.Slope(p, tm), ff.Slope(p, tm)
			if sa.Dist(sb) > 1e-9 {
				t.Errorf("slope at %v t=%g: ship %v, maneuver %v", p, tm, sa, sb)
			}
		}
		if v, ok := m.GenerationSpeed(p); !ok || math.Abs(v-6.0) > 1e-12 {
			t.Errorf("generation speed at %v: %g ok=%v, want 6", p, v, ok)
		}
		if dir, ok := m.GenerationHeading(p); !ok || dir.Dist(track.Dir) > 1e-12 {
			t.Errorf("generation heading at %v: %v ok=%v, want %v", p, dir, ok, track.Dir)
		}
	}
}

// Uniform-acceleration kinematics: a leg from v0 to v1 over distance L takes
// T = 2L/(v0+v1); position and speed interpolate accordingly, and
// Position/SpeedAt clamp outside the trajectory.
func TestManeuverKinematics(t *testing.T) {
	// 300 m straight run accelerating from 4 to 8 m/s: T = 600/12 = 50 s.
	m, err := NewManeuver(10, 12, []Waypoint{
		{Pos: geo.Vec2{X: 0, Y: 0}, Speed: 4},
		{Pos: geo.Vec2{X: 300, Y: 0}, Speed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.EnterAt(); got != 10 {
		t.Fatalf("EnterAt = %g, want 10", got)
	}
	if got := m.ExitAt(); math.Abs(got-60) > 1e-12 {
		t.Fatalf("ExitAt = %g, want 60", got)
	}
	// Mid-time: τ=25, s = 4·25 + ½·0.08·625 = 125, v = 4 + 0.08·25 = 6.
	if p := m.Position(35); math.Abs(p.X-125) > 1e-9 || p.Y != 0 {
		t.Errorf("Position(35) = %v, want (125, 0)", p)
	}
	if v := m.SpeedAt(35); math.Abs(v-6) > 1e-9 {
		t.Errorf("SpeedAt(35) = %g, want 6", v)
	}
	// Clamps.
	if p := m.Position(0); p != (geo.Vec2{X: 0, Y: 0}) {
		t.Errorf("Position before entry = %v, want origin", p)
	}
	if p := m.Position(1000); math.Abs(p.X-300) > 1e-9 {
		t.Errorf("Position after exit = %v, want (300, 0)", p)
	}
	if v := m.SpeedAt(0); v != 4 {
		t.Errorf("SpeedAt before entry = %g, want 4", v)
	}
	if v := m.SpeedAt(1000); math.Abs(v-8) > 1e-9 {
		t.Errorf("SpeedAt after exit = %g, want 8", v)
	}
	// GenerationSpeed halfway down the track (abeam at x=150):
	// v² = 16 + 2·0.08·150 = 40.
	p := geo.Vec2{X: 150, Y: 80}
	v, ok := m.GenerationSpeed(p)
	if !ok || math.Abs(v-math.Sqrt(40)) > 1e-9 {
		t.Errorf("GenerationSpeed(%v) = %g ok=%v, want %g", p, v, ok, math.Sqrt(40))
	}
	// The wake packet there must carry the local generation speed, not an
	// endpoint speed: compare against a constant-speed ship at sqrt(40).
	ref, err := NewShip(geo.NewLine(geo.Vec2{}, geo.Vec2{X: 1}), math.Sqrt(40), 12)
	if err != nil {
		t.Fatal(err)
	}
	at, ok := m.ArrivalTime(p)
	if !ok {
		t.Fatalf("maneuver does not cover %v", p)
	}
	got := ManeuverField{M: m}.VerticalAccel(p, at+3)
	want := Signal{
		Arrival:   at,
		Amp:       ref.SignalAt(p).Amp,
		TransAmp:  ref.SignalAt(p).TransAmp,
		Freq:      ref.SignalAt(p).Freq,
		TransFreq: ref.SignalAt(p).TransFreq,
		Sigma:     ref.SignalAt(p).Sigma,
	}.VerticalAccel(at + 3)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("accelerating wake packet = %g, want constant-speed-equivalent %g", got, want)
	}
}

// A collinear two-leg run at constant speed behaves like one leg: every
// point is covered exactly once and the junction introduces no seam in
// arrival times.
func TestManeuverCollinearContinuity(t *testing.T) {
	one, err := NewManeuver(0, 12, []Waypoint{
		{Pos: geo.Vec2{X: 0, Y: 0}, Speed: 5},
		{Pos: geo.Vec2{X: 400, Y: 0}, Speed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewManeuver(0, 12, []Waypoint{
		{Pos: geo.Vec2{X: 0, Y: 0}, Speed: 5},
		{Pos: geo.Vec2{X: 160, Y: 0}, Speed: 5},
		{Pos: geo.Vec2{X: 400, Y: 0}, Speed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geo.Vec2{
		{X: 40, Y: 60}, {X: 159.9, Y: 30}, {X: 160, Y: 30}, {X: 200, Y: -45}, {X: 399, Y: 20},
	} {
		a1, ok1 := one.ArrivalTime(p)
		a2, ok2 := two.ArrivalTime(p)
		if ok1 != ok2 {
			t.Fatalf("coverage mismatch at %v: one=%v two=%v", p, ok1, ok2)
		}
		if math.Abs(a1-a2) > 1e-9 {
			t.Errorf("arrival mismatch at %v: one-leg %g, two-leg %g", p, a1, a2)
		}
		e1 := ManeuverField{M: one}.VerticalAccel(p, a1+2)
		e2 := ManeuverField{M: two}.VerticalAccel(p, a1+2)
		if math.Abs(e1-e2) > 1e-9 {
			t.Errorf("field mismatch at %v: one-leg %g, two-leg %g", p, e1, e2)
		}
	}
}

// A dogleg turn changes the generation heading reported on either side of
// the junction's abeam sectors.
func TestManeuverDoglegHeading(t *testing.T) {
	m, err := NewManeuver(0, 12, []Waypoint{
		{Pos: geo.Vec2{X: 0, Y: 0}, Speed: 5},
		{Pos: geo.Vec2{X: 200, Y: 0}, Speed: 5},
		{Pos: geo.Vec2{X: 200, Y: 200}, Speed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	d1, ok := m.GenerationHeading(geo.Vec2{X: 100, Y: -50})
	if !ok || d1.Dist(geo.Vec2{X: 1, Y: 0}) > 1e-12 {
		t.Errorf("first-leg heading = %v ok=%v, want +X", d1, ok)
	}
	d2, ok := m.GenerationHeading(geo.Vec2{X: 260, Y: 100})
	if !ok || d2.Dist(geo.Vec2{X: 0, Y: 1}) > 1e-12 {
		t.Errorf("second-leg heading = %v ok=%v, want +Y", d2, ok)
	}
	// The outer shadow sector of the turn (beyond both legs' extents) is
	// uncovered.
	if _, ok := m.ArrivalTime(geo.Vec2{X: 280, Y: -80}); ok {
		t.Error("outer turn shadow sector unexpectedly covered")
	}
}

// Constructor validation.
func TestNewManeuverErrors(t *testing.T) {
	a, b := geo.Vec2{X: 0, Y: 0}, geo.Vec2{X: 100, Y: 0}
	cases := []struct {
		name   string
		length float64
		wps    []Waypoint
	}{
		{"too few waypoints", 12, []Waypoint{{Pos: a, Speed: 5}}},
		{"zero speed", 12, []Waypoint{{Pos: a, Speed: 0}, {Pos: b, Speed: 5}}},
		{"negative speed", 12, []Waypoint{{Pos: a, Speed: 5}, {Pos: b, Speed: -1}}},
		{"coincident waypoints", 12, []Waypoint{{Pos: a, Speed: 5}, {Pos: a, Speed: 5}}},
		{"zero hull length", 0, []Waypoint{{Pos: a, Speed: 5}, {Pos: b, Speed: 5}}},
	}
	for _, c := range cases {
		if _, err := NewManeuver(0, c.length, c.wps); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
