package wake

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// checkDominates asserts the box bound dominates the point bound at p over
// the window, with a hair of relative slack for floating-point noise.
func checkDominates(t *testing.T, label string, pa, ps, ba, bs float64, p geo.Vec2, t0, t1 float64) {
	t.Helper()
	const rel, abs = 1e-9, 1e-12
	if pa > ba*(1+rel)+abs {
		t.Fatalf("%s: point accel bound %g exceeds box bound %g at %v window [%g,%g]",
			label, pa, ba, p, t0, t1)
	}
	if ps > bs*(1+rel)+abs {
		t.Fatalf("%s: point slope bound %g exceeds box bound %g at %v window [%g,%g]",
			label, ps, bs, p, t0, t1)
	}
}

// samplePoints returns a deterministic grid of interior points plus the
// corners of [min, max].
func samplePoints(min, max geo.Vec2, n int) []geo.Vec2 {
	pts := []geo.Vec2{min, max, {X: min.X, Y: max.Y}, {X: max.X, Y: min.Y}}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fx := (float64(i) + 0.5) / float64(n)
			fy := (float64(j) + 0.5) / float64(n)
			pts = append(pts, geo.Vec2{
				X: min.X + fx*(max.X-min.X),
				Y: min.Y + fy*(max.Y-min.Y),
			})
		}
	}
	return pts
}

// TestFieldBoundsBoxDominates is the safety property the spatial index
// rests on: for a randomized population of ships, rectangles, and sample
// windows, Field.BoundsBox dominates Field.Bounds at every point inside the
// rectangle. If this holds, an index-skipped node would also have been
// skipped by the sensor's own per-block cull, so indexing cannot change a
// single sample.
func TestFieldBoundsBoxDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		origin := geo.Vec2{X: rng.Float64()*400 - 200, Y: rng.Float64()*400 - 200}
		ang := rng.Float64() * 2 * math.Pi
		dir := geo.Vec2{X: math.Cos(ang), Y: math.Sin(ang)}
		ship, err := NewShip(geo.NewLine(origin, dir), 1+rng.Float64()*9, 5+rng.Float64()*20)
		if err != nil {
			t.Fatal(err)
		}
		ship.Time0 = rng.Float64() * 100
		f := Field{Ship: ship}

		for q := 0; q < 10; q++ {
			c := geo.Vec2{X: rng.Float64()*600 - 300, Y: rng.Float64()*600 - 300}
			w := rng.Float64() * 80
			h := rng.Float64() * 80
			if q == 0 {
				w, h = 0, 0 // degenerate point box
			}
			min := geo.Vec2{X: c.X - w/2, Y: c.Y - h/2}
			max := geo.Vec2{X: c.X + w/2, Y: c.Y + h/2}
			t0 := rng.Float64() * 200
			t1 := t0 + rng.Float64()*5
			ba, bs := f.BoundsBox(min, max, t0, t1)
			for _, p := range samplePoints(min, max, 4) {
				pa, ps := f.Bounds(p, t0, t1)
				checkDominates(t, "ship", pa, ps, ba, bs, p, t0, t1)
			}
		}
	}
}

// TestManeuverBoundsBoxDominates runs the same property against randomized
// accelerating multi-leg maneuvers, whose per-leg generation-speed intervals
// exercise the frequency/amplitude extremes the leg bound takes.
func TestManeuverBoundsBoxDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 150; trial++ {
		nw := 2 + rng.Intn(3)
		wps := make([]Waypoint, nw)
		pos := geo.Vec2{X: rng.Float64()*200 - 100, Y: rng.Float64()*200 - 100}
		for i := range wps {
			wps[i] = Waypoint{Pos: pos, Speed: 1 + rng.Float64()*9}
			step := geo.Vec2{X: rng.Float64()*300 - 150, Y: rng.Float64()*300 - 150}
			if step.Norm() < 1 {
				step = geo.Vec2{X: 50}
			}
			pos = pos.Add(step)
		}
		m, err := NewManeuver(rng.Float64()*50, 5+rng.Float64()*20, wps)
		if err != nil {
			t.Fatal(err)
		}
		f := ManeuverField{M: m}

		for q := 0; q < 10; q++ {
			c := geo.Vec2{X: rng.Float64()*500 - 250, Y: rng.Float64()*500 - 250}
			w := rng.Float64() * 60
			h := rng.Float64() * 60
			min := geo.Vec2{X: c.X - w/2, Y: c.Y - h/2}
			max := geo.Vec2{X: c.X + w/2, Y: c.Y + h/2}
			t0 := rng.Float64() * 150
			t1 := t0 + rng.Float64()*5
			ba, bs := f.BoundsBox(min, max, t0, t1)
			for _, p := range samplePoints(min, max, 4) {
				pa, ps := f.Bounds(p, t0, t1)
				checkDominates(t, "maneuver", pa, ps, ba, bs, p, t0, t1)
			}
		}
	}
}

// TestBoundsBoxFarFieldTiny pins the reason the index pays off: a box the
// wake front has not reached gets a bound far below any realistic cull
// threshold, while the same box after front passage bounds a real signal.
func TestBoundsBoxFarFieldTiny(t *testing.T) {
	ship, err := CrossingShip(geo.Vec2{X: 50, Y: 50}, 10, 0, 0, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := Field{Ship: ship}
	ba, bs := f.BoundsBox(geo.Vec2{X: 0, Y: 2000}, geo.Vec2{X: 100, Y: 2100}, 0, 1)
	if ba > 1e-6 || bs > 1e-6 {
		t.Fatalf("far-field box bound not tiny: accel %g slope %g", ba, bs)
	}
	at := ship.ArrivalTime(geo.Vec2{X: 50, Y: 2050})
	ba, _ = f.BoundsBox(geo.Vec2{X: 0, Y: 2000}, geo.Vec2{X: 100, Y: 2100}, at, at+5)
	if ba <= 0 {
		t.Fatalf("active box bound should be positive, got %g", ba)
	}
}
