package wake

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// TestFieldBoundsDominate: the culling bounds must dominate the exact wake
// signal on every window, everywhere — near the packet, across its onset,
// and far away — or culling would clip real wake energy.
func TestFieldBoundsDominate(t *testing.T) {
	ship, err := NewShip(geo.LineThrough(geo.Vec2{X: -300, Y: 0}, geo.Vec2{X: 300, Y: 0}), 5.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := Field{Ship: ship}
	points := []geo.Vec2{
		{X: 0, Y: 25}, {X: 50, Y: -40}, {X: -120, Y: 12}, {X: 200, Y: 80}, {X: 10, Y: 3},
	}
	const dt = 0.02
	for _, p := range points {
		arrival := ship.ArrivalTime(p)
		// Slide 0.5 s windows across ±60 s around the arrival.
		for w := -60.0; w < 60; w += 0.5 {
			t0 := arrival + w
			t1 := t0 + 0.48
			ba, bs := f.Bounds(p, t0, t1)
			for tt := t0; tt <= t1+1e-9; tt += dt {
				if a := math.Abs(f.VerticalAccel(p, tt)); a > ba+1e-300 {
					t.Fatalf("p=%v window [%.2f,%.2f]: |accel| %g exceeds bound %g", p, t0, t1, a, ba)
				}
				if s := f.Slope(p, tt).Norm(); s > bs+1e-300 {
					t.Fatalf("p=%v window [%.2f,%.2f]: |slope| %g exceeds bound %g", p, t0, t1, s, bs)
				}
			}
		}
	}
}

// TestFieldBoundsCullFarWindows: long before and after the packet the bound
// must fall below the quantization floor, or culling would never trigger.
func TestFieldBoundsCullFarWindows(t *testing.T) {
	ship, err := NewShip(geo.LineThrough(geo.Vec2{X: -300, Y: 0}, geo.Vec2{X: 300, Y: 0}), 5.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := Field{Ship: ship}
	p := geo.Vec2{X: 0, Y: 25}
	arrival := ship.ArrivalTime(p)
	const (
		floorAccel = 0.25 * 9.81 / 1024
		floorSlope = 0.25 / 1024
	)
	ba, bs := f.Bounds(p, arrival-60, arrival-59.5)
	if ba > floorAccel || bs > floorSlope {
		t.Errorf("60 s before arrival the bound should be cullable: accel %g (floor %g), slope %g (floor %g)",
			ba, floorAccel, bs, floorSlope)
	}
	ba, bs = f.Bounds(p, arrival+120, arrival+120.5)
	if ba > floorAccel || bs > floorSlope {
		t.Errorf("120 s after arrival the bound should be cullable: accel %g, slope %g", ba, bs)
	}
	// And near the packet it must NOT be cullable.
	ba, _ = f.Bounds(p, arrival, arrival+0.5)
	if ba <= floorAccel {
		t.Errorf("bound at the packet onset is %g, below the cull floor — would cull the wake itself", ba)
	}
}

// TestManeuverBoundsDominate: same domination property for multi-leg
// accelerating trajectories, including points near a turn that see two legs.
func TestManeuverBoundsDominate(t *testing.T) {
	m, err := NewManeuver(0, 8, []Waypoint{
		{Pos: geo.Vec2{X: -200, Y: -50}, Speed: 4},
		{Pos: geo.Vec2{X: 0, Y: 0}, Speed: 7},
		{Pos: geo.Vec2{X: 180, Y: 120}, Speed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := ManeuverField{M: m}
	points := []geo.Vec2{
		{X: -100, Y: 10}, {X: -5, Y: 30}, {X: 60, Y: 20}, {X: 100, Y: 110},
	}
	const dt = 0.02
	for _, p := range points {
		for w := 0.0; w < 120; w += 0.5 {
			t0 := w
			t1 := t0 + 0.48
			ba, bs := f.Bounds(p, t0, t1)
			for tt := t0; tt <= t1+1e-9; tt += dt {
				if a := math.Abs(f.VerticalAccel(p, tt)); a > ba+1e-300 {
					t.Fatalf("p=%v window [%.2f,%.2f]: |accel| %g exceeds bound %g", p, t0, t1, a, ba)
				}
				if s := f.Slope(p, tt).Norm(); s > bs+1e-300 {
					t.Fatalf("p=%v window [%.2f,%.2f]: |slope| %g exceeds bound %g", p, t0, t1, s, bs)
				}
			}
		}
	}
}
