// Package sensor models the SID sensing hardware: a buoy floating on the
// sea surface carrying an iMote2 with an ITS400 sensor board whose
// three-axis ST LIS3L02DQ accelerometer (±2 g, 12-bit, sampled at 50 Hz)
// measures the buoy's motion.
//
// The buoy is surface-following: its vertical acceleration is gravity plus
// the local surface acceleration (ocean waves + any ship wakes), and it
// tilts with the local surface slope, which couples gravity into the x/y
// axes — this is why the paper uses only the z axis ("the sensor changes
// direction randomly in the ocean"). Moored buoys also drift within a
// bounded radius (~2 m per the paper's reference [21]), which the model
// reproduces because it drives the paper's reported speed-estimation error.
package sensor

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
)

// SurfaceModel is anything that contributes surface motion at a point:
// ocean.Field and wake.Field both satisfy it.
type SurfaceModel interface {
	// VerticalAccel returns the vertical surface acceleration in m/s².
	VerticalAccel(p geo.Vec2, t float64) float64
	// Slope returns the local surface gradient (dimensionless).
	Slope(p geo.Vec2, t float64) geo.Vec2
}

// SurfaceSampler is an optional fast path: models that can produce the
// acceleration and slope in one pass implement it (ocean.Field's component
// loop dominates simulation cost).
type SurfaceSampler interface {
	SampleSurface(p geo.Vec2, t float64) (accel float64, slope geo.Vec2)
}

// SurfaceSeriesSampler is the batched fast path: models that can synthesize
// a whole block of samples at a fixed point implement it (ocean.Field uses
// a phasor-rotation recurrence, wake.Field hoists its per-point packet
// precomputation out of the sample loop). AccumulateSeries adds the model's
// contribution for the n instants t0, t0+dt, … into the caller's buffers:
// accel in m/s², slopeX/slopeY dimensionless. All buffers have length ≥ n.
type SurfaceSeriesSampler interface {
	AccumulateSeries(p geo.Vec2, t0, dt float64, n int, accel, slopeX, slopeY []float64)
}

// MovingSeriesSampler is the batched fast path for a drifting observer:
// sample s is evaluated at position p0 + v·s·dt, which a spectral model can
// still synthesize with a pure phasor rotation (a constant-velocity observer
// only Doppler-shifts each component). SampleBlock prefers this over
// SurfaceSeriesSampler so slow mooring drift is tracked to second order
// within a block instead of being frozen at the block start.
type MovingSeriesSampler interface {
	AccumulateSeriesMoving(p0, v geo.Vec2, t0, dt float64, n int, accel, slopeX, slopeY []float64)
}

// StreamSampler is the stateful streaming fast path: a model that carries
// its own observer (position, drift) and serves consecutive sample blocks
// from an internal synthesis cursor — ocean.SpectralStream's FFT-based
// chunk synthesis. SampleBlock dispatches to it before every other path and
// does not pass a position: the stream owns its observer. One StreamSampler
// serves one node; the pipeline's per-node sequential Block contract is
// exactly the stream's requirement.
type StreamSampler interface {
	AccumulateStream(t0 float64, n int, accel, slopeX, slopeY []float64)
}

// BoundedModel is a SurfaceModel that can bound its own contribution over a
// time window, enabling the sensor to cull it from a block entirely: if the
// model's acceleration and slope bounds over the block are both below the
// sensor's culling thresholds (fractions of one ADC count), evaluating it
// cannot change any quantized sample by more than the threshold, so the
// per-sample evaluation is skipped. Wake packets implement it — a wake is
// a localized Gaussian packet, so for most nodes most blocks are provably
// negligible long before and after the packet passes.
//
// Bounds must be conservative for any observer within ~0.5 m of p over
// [t0, t1] (the most a moored buoy drifts within one block); the sensor
// additionally pads the window and inflates the bounds before comparing
// against its thresholds.
type BoundedModel interface {
	SurfaceModel
	// Bounds returns upper bounds on |VerticalAccel| (m/s²) and |Slope|
	// (dimensionless) over the window [t0, t1] near p.
	Bounds(p geo.Vec2, t0, t1 float64) (accel, slope float64)
}

// RegionBoundedModel is a BoundedModel that can additionally bound its
// contribution over a whole axis-aligned region: BoundsBox must dominate
// Bounds(p, t0, t1) componentwise for every p inside [min, max]. The source
// layer's spatial index evaluates it once per index cell (inflated by the
// buoy drift radius) to decide whether any node bucketed there needs the
// model in its composite at all — the region analogue of the per-block
// cull. Wake fields implement it; see wake.Field.BoundsBox.
type RegionBoundedModel interface {
	BoundedModel
	// BoundsBox returns upper bounds on |VerticalAccel| (m/s²) and |Slope|
	// (dimensionless) over [t0, t1] for every point in [min, max].
	BoundsBox(min, max geo.Vec2, t0, t1 float64) (accel, slope float64)
}

// Composite sums several surface models (e.g. the ambient sea plus one or
// more ship wakes).
type Composite []SurfaceModel

// VerticalAccel implements SurfaceModel.
func (c Composite) VerticalAccel(p geo.Vec2, t float64) float64 {
	var a float64
	for _, m := range c {
		a += m.VerticalAccel(p, t)
	}
	return a
}

// Slope implements SurfaceModel.
func (c Composite) Slope(p geo.Vec2, t float64) geo.Vec2 {
	var s geo.Vec2
	for _, m := range c {
		s = s.Add(m.Slope(p, t))
	}
	return s
}

// SampleSurface implements SurfaceSampler, using each member's fast path
// when it has one.
func (c Composite) SampleSurface(p geo.Vec2, t float64) (accel float64, slope geo.Vec2) {
	for _, m := range c {
		if ss, ok := m.(SurfaceSampler); ok {
			a, sl := ss.SampleSurface(p, t)
			accel += a
			slope = slope.Add(sl)
			continue
		}
		accel += m.VerticalAccel(p, t)
		slope = slope.Add(m.Slope(p, t))
	}
	return accel, slope
}

// AccumulateSeries implements SurfaceSeriesSampler, using each member's
// batched path when it has one and falling back to per-sample evaluation
// otherwise.
func (c Composite) AccumulateSeries(p geo.Vec2, t0, dt float64, n int, accel, slopeX, slopeY []float64) {
	for _, m := range c {
		if bs, ok := m.(SurfaceSeriesSampler); ok {
			bs.AccumulateSeries(p, t0, dt, n, accel, slopeX, slopeY)
			continue
		}
		for s := 0; s < n; s++ {
			t := t0 + float64(s)*dt
			accel[s] += m.VerticalAccel(p, t)
			sl := m.Slope(p, t)
			slopeX[s] += sl.X
			slopeY[s] += sl.Y
		}
	}
}

// AccelConfig describes the accelerometer. The defaults model the
// LIS3L02DQ as configured in the paper.
type AccelConfig struct {
	// CountsPerG is the digital sensitivity (12-bit over ±2 g → 1024).
	CountsPerG float64
	// RangeG is the full-scale range in g (2).
	RangeG float64
	// NoiseStd is the RMS noise in counts added to each sample.
	NoiseStd float64
	// SampleRate in Hz (50 in the paper).
	SampleRate float64
}

// DefaultAccelConfig returns the LIS3L02DQ parameters used in the paper.
func DefaultAccelConfig() AccelConfig {
	return AccelConfig{CountsPerG: 1024, RangeG: 2, NoiseStd: 6, SampleRate: 50}
}

func (c AccelConfig) validate() error {
	if c.CountsPerG <= 0 || c.RangeG <= 0 || c.SampleRate <= 0 {
		return fmt.Errorf("sensor: CountsPerG, RangeG and SampleRate must be positive: %+v", c)
	}
	if c.NoiseStd < 0 {
		return fmt.Errorf("sensor: NoiseStd must be non-negative: %+v", c)
	}
	return nil
}

// Quantize converts an acceleration in g to clamped ADC counts.
func (c AccelConfig) Quantize(accelG float64) int16 {
	counts := math.Round(accelG * c.CountsPerG)
	max := c.RangeG*c.CountsPerG - 1
	if counts > max {
		counts = max
	}
	if counts < -c.RangeG*c.CountsPerG {
		counts = -c.RangeG * c.CountsPerG
	}
	return int16(counts)
}

// CountsToG converts ADC counts back to g.
func (c AccelConfig) CountsToG(counts int16) float64 {
	return float64(counts) / c.CountsPerG
}

// Sample is one three-axis accelerometer reading in ADC counts.
type Sample struct {
	// T is the true (physical) sample time in seconds.
	T float64
	// X, Y, Z are ADC counts. On calm water Z sits near +1·CountsPerG.
	X, Y, Z int16
}

// ZG returns the z reading in g given the config used to record it.
func (s Sample) ZG(c AccelConfig) float64 { return c.CountsToG(s.Z) }

// BuoyConfig describes the moored buoy carrying the sensor.
type BuoyConfig struct {
	// Anchor is the deployed (assigned) position of the buoy.
	Anchor geo.Vec2
	// DriftRadius bounds the mooring drift in meters (~2 m in the paper).
	DriftRadius float64
	// TiltGain scales how strongly surface slope tilts the buoy
	// (1 = buoy aligns exactly with the surface normal).
	TiltGain float64
	// Seed randomizes drift phases and sensor noise.
	Seed int64
}

// Buoy is a deployed sensor buoy. Create with NewBuoy.
type Buoy struct {
	cfg BuoyConfig
	// Drift is modeled as two incommensurate slow oscillations per axis —
	// a deterministic stand-in for mooring wander that keeps Position
	// evaluable at arbitrary times.
	phase [4]float64
	freq  [4]float64
}

// NewBuoy creates a buoy; DriftRadius 0 disables drift, TiltGain 0 defaults
// to 1.
func NewBuoy(cfg BuoyConfig) *Buoy {
	if cfg.TiltGain == 0 {
		cfg.TiltGain = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Buoy{cfg: cfg}
	for i := range b.phase {
		b.phase[i] = rng.Float64() * 2 * math.Pi
		// Mooring wander periods of roughly 30–120 s.
		b.freq[i] = 1.0 / (30 + 90*rng.Float64())
	}
	return b
}

// Anchor returns the assigned deployment position.
func (b *Buoy) Anchor() geo.Vec2 { return b.cfg.Anchor }

// Position returns the drifted position at time t, always within
// DriftRadius of the anchor.
func (b *Buoy) Position(t float64) geo.Vec2 {
	if b.cfg.DriftRadius == 0 {
		return b.cfg.Anchor
	}
	// Each axis combines two oscillations with total amplitude ≤ R/√2 so
	// the 2-D excursion stays within R.
	r := b.cfg.DriftRadius / (2 * math.Sqrt2)
	dx := r * (math.Sin(2*math.Pi*b.freq[0]*t+b.phase[0]) + math.Sin(2*math.Pi*b.freq[1]*t+b.phase[1]))
	dy := r * (math.Sin(2*math.Pi*b.freq[2]*t+b.phase[2]) + math.Sin(2*math.Pi*b.freq[3]*t+b.phase[3]))
	return b.cfg.Anchor.Add(geo.Vec2{X: dx, Y: dy})
}

// CullThresholds are the per-block amplitude floors below which a
// BoundedModel is skipped: a model whose acceleration bound (m/s²) and
// slope bound (dimensionless) over the block both fall under the thresholds
// is not evaluated at all. Zero (either field) disables culling. The source
// layer's spectral mode sets both to a quarter of one ADC count — a
// contribution that small cannot move a quantized sample by more than the
// rounding it already suffers.
type CullThresholds struct {
	Accel float64 // m/s²
	Slope float64 // dimensionless
}

// Sensor couples a buoy with an accelerometer and produces sample streams.
type Sensor struct {
	Buoy  *Buoy
	Accel AccelConfig
	rng   *rand.Rand

	cull        CullThresholds
	cullSkipped int64
	cullChecked int64
}

// SetCullThresholds enables (or, with the zero value, disables) per-block
// culling of BoundedModel members in SampleBlock. Culling is opt-in because
// it changes which models are evaluated — bit-compatibility with recorded
// phasor-mode traces requires it off.
func (s *Sensor) SetCullThresholds(c CullThresholds) { s.cull = c }

// CullStats reports how many BoundedModel block evaluations were skipped
// out of how many were checked since the sensor was created.
func (s *Sensor) CullStats() (skipped, checked int64) { return s.cullSkipped, s.cullChecked }

// CullSlackTime pads the culling window on both sides and CullSlackFactor
// inflates the model's bounds, covering intra-block buoy drift (≤ ~0.1 m
// over a 0.5 s block; amplitude and arrival-time sensitivity to position are
// both well under these margins at the ≥ 2 m distances the decay law clamps
// to). They are exported because the source layer's spatial index must apply
// exactly the same padding and inflation when pre-filtering nodes per batch:
// a node the index drops must be one the sensor's own cull would also have
// dropped, or indexing would change samples.
const (
	CullSlackTime   = 0.25
	CullSlackFactor = 1.15
)

// NewSensor validates the configuration and returns a sensor whose noise
// stream is seeded from the buoy seed.
func NewSensor(buoy *Buoy, accel AccelConfig) (*Sensor, error) {
	if err := accel.validate(); err != nil {
		return nil, err
	}
	return &Sensor{
		Buoy:  buoy,
		Accel: accel,
		rng:   rand.New(rand.NewSource(buoy.cfg.Seed ^ 0x5eed5eed)),
	}, nil
}

// SampleAt produces one three-axis reading of the surface model at time t.
// Noise is drawn from the sensor's sequential noise stream, so successive
// calls model a contiguous recording.
func (s *Sensor) SampleAt(model SurfaceModel, t float64) Sample {
	p := s.Buoy.Position(t)
	var az float64 // m/s²
	var slope geo.Vec2
	if ss, ok := model.(SurfaceSampler); ok {
		az, slope = ss.SampleSurface(p, t)
	} else {
		az = model.VerticalAccel(p, t)
		slope = model.Slope(p, t)
	}
	return s.compose(t, az, slope)
}

// compose turns one raw surface sample (acceleration in m/s², slope
// dimensionless) into the quantized three-axis reading, drawing the x, y, z
// noise values in order from the sensor's sequential noise stream. It is
// the single formula shared by the per-sample and batched paths.
func (s *Sensor) compose(t, az float64, slope geo.Vec2) Sample {
	slope = slope.Scale(s.Buoy.cfg.TiltGain)

	// Tilt couples gravity into the horizontal axes: for small angles the
	// x axis reads g·slopeX. The z axis reads g·cos(tilt) + wave accel
	// ≈ g + az for small tilt.
	tilt := slope.Norm()
	gz := math.Cos(math.Atan(tilt))
	xG := slope.X + s.noiseG()
	yG := slope.Y + s.noiseG()
	zG := gz + az/(ocean.Gravity) + s.noiseG()
	return Sample{
		T: t,
		X: s.Accel.Quantize(xG),
		Y: s.Accel.Quantize(yG),
		Z: s.Accel.Quantize(zG),
	}
}

// BlockBuffers is the reusable scratch space for SampleBlock: surface
// buffers plus the output sample slice. The zero value is ready to use;
// reusing one across blocks eliminates per-block allocation.
type BlockBuffers struct {
	accel, slopeX, slopeY []float64
	samples               []Sample
}

func (b *BlockBuffers) reset(n int) {
	if cap(b.accel) < n {
		b.accel = make([]float64, n)
		b.slopeX = make([]float64, n)
		b.slopeY = make([]float64, n)
	}
	b.accel = b.accel[:n]
	b.slopeX = b.slopeX[:n]
	b.slopeY = b.slopeY[:n]
	for i := 0; i < n; i++ {
		b.accel[i], b.slopeX[i], b.slopeY[i] = 0, 0, 0
	}
	if cap(b.samples) < n {
		b.samples = make([]Sample, 0, n)
	}
	b.samples = b.samples[:0]
}

// SampleBlock produces n consecutive readings starting at t0 at the
// sensor's configured sample rate, using each model member's batched
// synthesis path when it has one. Members implementing MovingSeriesSampler
// (the ambient sea) see the buoy as a constant-velocity observer: position
// is linearized over the block from the buoy's true start and end
// positions, which tracks mooring drift (centimeter-scale per block,
// oscillating over 30–120 s) to second order — the residual is micrometers,
// orders of magnitude below the sensor's noise floor. Members with only the
// fixed-point SurfaceSeriesSampler path are synthesized at the block-start
// position. Members with neither (ship wakes, whose packet arrival phase is
// onset-critical for speed estimation) are evaluated per sample at the
// exact drifted position, matching SampleAt bit for bit.
//
// The returned slice aliases buf and is valid until the next SampleBlock
// call with the same buffers. Noise is drawn from the same sequential
// stream as SampleAt (x, y, z per sample), so a run assembled from blocks
// is deterministic: the same seed and block grid always yield bit-identical
// samples, regardless of which goroutine synthesizes which node's block.
func (s *Sensor) SampleBlock(model SurfaceModel, t0 float64, n int, buf *BlockBuffers) []Sample {
	buf.reset(n)
	rate := s.Accel.SampleRate
	dt := 1 / rate
	p0 := s.Buoy.Position(t0)
	var v geo.Vec2
	if n > 1 {
		span := float64(n-1) / rate
		v = s.Buoy.Position(t0 + span).Sub(p0).Scale(1 / span)
	}
	members := Composite{model}
	if c, ok := model.(Composite); ok {
		members = c
	}
	for _, m := range members {
		if st, ok := m.(StreamSampler); ok {
			// The stream owns its observer (position and drift); see
			// StreamSampler. Dispatched first: a spectral stream also
			// implements the point interfaces for exact evaluation, but in
			// the block path the chunk synthesis is the whole point.
			st.AccumulateStream(t0, n, buf.accel, buf.slopeX, buf.slopeY)
			continue
		}
		if ms, ok := m.(MovingSeriesSampler); ok {
			ms.AccumulateSeriesMoving(p0, v, t0, dt, n, buf.accel, buf.slopeX, buf.slopeY)
			continue
		}
		if bs, ok := m.(SurfaceSeriesSampler); ok {
			bs.AccumulateSeries(p0, t0, dt, n, buf.accel, buf.slopeX, buf.slopeY)
			continue
		}
		if bm, ok := m.(BoundedModel); ok && s.cull.Accel > 0 && s.cull.Slope > 0 {
			s.cullChecked++
			t1 := t0 + float64(n-1)*dt
			ba, bs := bm.Bounds(p0, t0-CullSlackTime, t1+CullSlackTime)
			if ba*CullSlackFactor <= s.cull.Accel && bs*CullSlackFactor <= s.cull.Slope {
				s.cullSkipped++
				continue
			}
		}
		for i := 0; i < n; i++ {
			t := t0 + float64(i)/rate
			p := s.Buoy.Position(t)
			buf.accel[i] += m.VerticalAccel(p, t)
			sl := m.Slope(p, t)
			buf.slopeX[i] += sl.X
			buf.slopeY[i] += sl.Y
		}
	}
	for i := 0; i < n; i++ {
		t := t0 + float64(i)/rate
		buf.samples = append(buf.samples, s.compose(t, buf.accel[i], geo.Vec2{X: buf.slopeX[i], Y: buf.slopeY[i]}))
	}
	return buf.samples
}

func (s *Sensor) noiseG() float64 {
	if s.Accel.NoiseStd == 0 {
		return 0
	}
	return s.rng.NormFloat64() * s.Accel.NoiseStd / s.Accel.CountsPerG
}

// Record samples the model from t0 for dur seconds at the configured rate
// and returns the samples in time order.
func (s *Sensor) Record(model SurfaceModel, t0, dur float64) []Sample {
	n := int(dur * s.Accel.SampleRate)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)/s.Accel.SampleRate
		out = append(out, s.SampleAt(model, t))
	}
	return out
}

// ZSeries extracts the z-axis series in counts as float64 for DSP.
func ZSeries(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s.Z)
	}
	return out
}

// XSeries extracts the x-axis series in counts.
func XSeries(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s.X)
	}
	return out
}

// YSeries extracts the y-axis series in counts.
func YSeries(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s.Y)
	}
	return out
}

// StillWater is a SurfaceModel with no motion at all, useful for tests and
// for calibrating noise floors.
type StillWater struct{}

// VerticalAccel implements SurfaceModel.
func (StillWater) VerticalAccel(geo.Vec2, float64) float64 { return 0 }

// Slope implements SurfaceModel.
func (StillWater) Slope(geo.Vec2, float64) geo.Vec2 { return geo.Vec2{} }
