package sensor

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/stats"
	"github.com/sid-wsn/sid/internal/wake"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestQuantize(t *testing.T) {
	c := DefaultAccelConfig()
	if q := c.Quantize(1.0); q != 1024 {
		t.Errorf("Quantize(1g) = %d, want 1024", q)
	}
	if q := c.Quantize(0); q != 0 {
		t.Errorf("Quantize(0) = %d", q)
	}
	if q := c.Quantize(-1.0); q != -1024 {
		t.Errorf("Quantize(-1g) = %d", q)
	}
	// Clamping at ±2 g.
	if q := c.Quantize(5.0); q != 2047 {
		t.Errorf("Quantize(5g) = %d, want 2047", q)
	}
	if q := c.Quantize(-5.0); q != -2048 {
		t.Errorf("Quantize(-5g) = %d, want -2048", q)
	}
}

func TestCountsToGRoundTrip(t *testing.T) {
	c := DefaultAccelConfig()
	for _, g := range []float64{-1.5, -0.25, 0, 0.5, 1, 1.99} {
		got := c.CountsToG(c.Quantize(g))
		if math.Abs(got-g) > 1.0/c.CountsPerG {
			t.Errorf("round trip %v g -> %v", g, got)
		}
	}
}

func TestAccelConfigValidate(t *testing.T) {
	bad := []AccelConfig{
		{CountsPerG: 0, RangeG: 2, SampleRate: 50},
		{CountsPerG: 1024, RangeG: 0, SampleRate: 50},
		{CountsPerG: 1024, RangeG: 2, SampleRate: 0},
		{CountsPerG: 1024, RangeG: 2, SampleRate: 50, NoiseStd: -1},
	}
	for i, c := range bad {
		b := NewBuoy(BuoyConfig{})
		if _, err := NewSensor(b, c); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBuoyNoDrift(t *testing.T) {
	b := NewBuoy(BuoyConfig{Anchor: geo.Vec2{X: 10, Y: 20}})
	for _, tm := range []float64{0, 100, 5000} {
		if p := b.Position(tm); p != (geo.Vec2{X: 10, Y: 20}) {
			t.Errorf("drift-free buoy moved to %v", p)
		}
	}
}

func TestBuoyDriftBounded(t *testing.T) {
	b := NewBuoy(BuoyConfig{Anchor: geo.Vec2{X: 50, Y: 50}, DriftRadius: 2, Seed: 9})
	var maxDist float64
	for tm := 0.0; tm < 1000; tm += 0.5 {
		d := b.Position(tm).Dist(b.Anchor())
		if d > maxDist {
			maxDist = d
		}
	}
	if maxDist > 2.0+1e-9 {
		t.Errorf("drift %v exceeds radius 2", maxDist)
	}
	if maxDist < 0.2 {
		t.Errorf("drift %v suspiciously small — drift model inactive?", maxDist)
	}
}

func TestBuoyDriftReproducible(t *testing.T) {
	b1 := NewBuoy(BuoyConfig{DriftRadius: 2, Seed: 4})
	b2 := NewBuoy(BuoyConfig{DriftRadius: 2, Seed: 4})
	if b1.Position(123) != b2.Position(123) {
		t.Error("same seed, different drift")
	}
}

func TestStillWaterReadsOneG(t *testing.T) {
	b := NewBuoy(BuoyConfig{Seed: 1})
	cfg := DefaultAccelConfig()
	cfg.NoiseStd = 0
	s, err := NewSensor(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	smp := s.SampleAt(StillWater{}, 0)
	if smp.Z != 1024 {
		t.Errorf("still-water z = %d counts, want 1024", smp.Z)
	}
	if smp.X != 0 || smp.Y != 0 {
		t.Errorf("still-water x/y = %d/%d, want 0", smp.X, smp.Y)
	}
	if !almostEq(smp.ZG(cfg), 1, 1e-3) {
		t.Errorf("ZG = %v", smp.ZG(cfg))
	}
}

func oceanField(t *testing.T, seed int64) *ocean.Field {
	t.Helper()
	spec, err := ocean.NewPiersonMoskowitz(0.4, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRecordOceanStatistics(t *testing.T) {
	// Reproduces the qualitative content of Fig. 5: z oscillates around
	// ~1024 counts (1 g), x/y oscillate around 0 with smaller amplitude.
	f := oceanField(t, 11)
	b := NewBuoy(BuoyConfig{Anchor: geo.Vec2{}, DriftRadius: 2, Seed: 3})
	s, err := NewSensor(b, DefaultAccelConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Record(f, 0, 250)
	if len(rec) != 250*50 {
		t.Fatalf("record length = %d", len(rec))
	}
	z := ZSeries(rec)
	mz, dz := stats.MeanStd(z)
	if math.Abs(mz-1024) > 30 {
		t.Errorf("z mean = %v counts, want ~1024", mz)
	}
	if dz < 10 || dz > 400 {
		t.Errorf("z std = %v counts, want tens to low hundreds", dz)
	}
	x := XSeries(rec)
	mx, _ := stats.MeanStd(x)
	if math.Abs(mx) > 30 {
		t.Errorf("x mean = %v counts, want ~0", mx)
	}
	// Time ordering and sample spacing.
	for i := 1; i < 200; i++ {
		if !almostEq(rec[i].T-rec[i-1].T, 0.02, 1e-9) {
			t.Fatalf("sample spacing broken at %d", i)
		}
	}
}

func TestWakeRaisesZVariance(t *testing.T) {
	// A ship pass must visibly disturb the z series relative to ocean-only —
	// the foundation of node-level detection.
	f := oceanField(t, 12)
	track := geo.NewLine(geo.Vec2{X: -500, Y: -25}, geo.Vec2{X: 1, Y: 0})
	ship, err := wake.NewShip(track, geo.Knots(10), 12)
	if err != nil {
		t.Fatal(err)
	}
	ship.Time0 = 0
	b := NewBuoy(BuoyConfig{Anchor: geo.Vec2{X: 0, Y: 0}, Seed: 7}) // 25 m off track
	cfg := DefaultAccelConfig()
	s, err := NewSensor(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrival := ship.ArrivalTime(b.Anchor())
	// Quiet window well before arrival vs disturbed window around arrival.
	quiet := s.Record(f, arrival-60, 20)
	s2, _ := NewSensor(NewBuoy(BuoyConfig{Anchor: geo.Vec2{X: 0, Y: 0}, Seed: 7}), cfg)
	disturbed := s2.Record(Composite{f, wake.Field{Ship: ship}}, arrival-2, 20)
	_, dQuiet := stats.MeanStd(ZSeries(quiet))
	_, dDist := stats.MeanStd(ZSeries(disturbed))
	if dDist < 1.3*dQuiet {
		t.Errorf("wake did not raise variance: quiet=%v disturbed=%v", dQuiet, dDist)
	}
}

func TestCompositeSums(t *testing.T) {
	f := oceanField(t, 13)
	c := Composite{f, StillWater{}}
	p := geo.Vec2{X: 5, Y: 5}
	if c.VerticalAccel(p, 3) != f.VerticalAccel(p, 3) {
		t.Error("composite with StillWater should equal the field alone")
	}
	c2 := Composite{f, f}
	if !almostEq(c2.VerticalAccel(p, 3), 2*f.VerticalAccel(p, 3), 1e-12) {
		t.Error("composite should sum contributions")
	}
	sl := c2.Slope(p, 3)
	single := f.Slope(p, 3)
	if !almostEq(sl.X, 2*single.X, 1e-12) || !almostEq(sl.Y, 2*single.Y, 1e-12) {
		t.Error("composite slope should sum")
	}
}

func TestNoiseIsReproducibleBySeed(t *testing.T) {
	cfg := DefaultAccelConfig()
	mk := func() []Sample {
		b := NewBuoy(BuoyConfig{Seed: 21})
		s, err := NewSensor(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Record(StillWater{}, 0, 1)
	}
	r1, r2 := mk(), mk()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same seed produced different noise")
		}
	}
}

func TestSeriesExtractors(t *testing.T) {
	samples := []Sample{{T: 0, X: 1, Y: 2, Z: 3}, {T: 0.02, X: -4, Y: 5, Z: -6}}
	if x := XSeries(samples); x[0] != 1 || x[1] != -4 {
		t.Errorf("XSeries = %v", x)
	}
	if y := YSeries(samples); y[0] != 2 || y[1] != 5 {
		t.Errorf("YSeries = %v", y)
	}
	if z := ZSeries(samples); z[0] != 3 || z[1] != -6 {
		t.Errorf("ZSeries = %v", z)
	}
}

func TestCompositeSampleSurfaceFastPath(t *testing.T) {
	f := oceanField(t, 77)
	c := Composite{f, StillWater{}}
	p := geo.Vec2{X: 3, Y: 4}
	a, sl := c.SampleSurface(p, 9)
	if a != c.VerticalAccel(p, 9) || sl != c.Slope(p, 9) {
		t.Error("composite fast path diverges from slow path")
	}
}
