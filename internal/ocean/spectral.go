package ocean

import (
	"fmt"
	"math"
	"sort"

	"github.com/sid-wsn/sid/internal/dsp"
	"github.com/sid-wsn/sid/internal/geo"
)

// This file implements spectral-domain block synthesis of a Field: instead
// of rotating every wave component once per sample (O(samples × components),
// the phasor path in field.go), a SpectralStream synthesizes fixed-length
// Hann-windowed chunks by scattering each component onto the FFT bin grid
// with a short interpolation kernel and inverse-transforming the chunk
// (O(N log N + components × kernel) per N/2 output samples). Consecutive
// chunks overlap by half their length and sum to the unwindowed series
// exactly (constant-overlap-add), so arbitrary sample blocks are served by
// stitching the two chunks that cover each sample. The math, the error
// budget and the equivalence contract against the phasor path are documented
// in docs/SYNTHESIS.md.

// SpectralConfig parametrizes spectral-domain synthesis of a wave field.
// The zero value of every field except Rate selects a documented default.
type SpectralConfig struct {
	// Rate is the output sample rate in Hz. Required.
	Rate float64
	// Window is the FFT chunk length N in samples; must be a power of two
	// ≥ 8. Chunks advance by N/2 (half-overlap Hann). 0 selects 1024
	// (20.48 s of signal at 50 Hz, ~100 KiB of scratch per stream).
	Window int
	// Kernel is the half-width K of the per-component frequency-domain
	// interpolation kernel in bins (each component touches 2K+1 bins).
	// 0 derives K from the field's amplitude content and the tolerances
	// below so the truncation error stays under a quarter of the tolerance
	// (see docs/SYNTHESIS.md); the derived value is clamped to [6, 24].
	Kernel int
	// TolAccel and TolSlope are the synthesis error tolerances the derived
	// kernel width must respect: the maximum per-sample deviation from the
	// exact component sum, in m/s² and dimensionless slope. Zero selects
	// half an LSB of the paper's 12-bit ±2 g accelerometer (g/2048 m/s²
	// and 1/2048), the tolerance of the phasor-equivalence contract.
	TolAccel, TolSlope float64
	// CullAccel and CullSlope are total amplitude budgets for dropping the
	// field's weakest components: components are discarded, weakest first,
	// while the summed acceleration amplitude (a·ω², m/s²) of everything
	// discarded stays ≤ CullAccel AND the summed slope amplitude (a·|k|)
	// stays ≤ CullSlope. Even fully phase-coherent, the dropped components
	// cannot move any sample by more than the budgets. Zero (either)
	// disables culling.
	CullAccel, CullSlope float64
}

// specComp is one wave component prepared for bin-grid scattering.
type specComp struct {
	bin    int     // nearest FFT bin of the per-sample phase step, in [0, N)
	omega  float64 // angular frequency rad/s
	kx, ky float64 // wavenumber components rad/m
	phase  float64 // random phase offset rad
	cA     float64 // accel spectral amplitude −a·ω² (real)
	aX, aY float64 // slope spectral amplitudes a·kx, a·ky (imaginary axis)
	// w[j] is the windowed-Dirichlet kernel weight of bin bin−K+j, with
	// the 1/N inverse-transform normalization folded in. Node-independent:
	// it depends only on the component's fractional bin offset.
	w []complex128
}

// SpectralPlan is the node-independent half of spectral synthesis for one
// Field at one sample rate: the culled component set with precomputed kernel
// weights. Build one per deployment and share it: a plan is immutable after
// construction and safe for any number of concurrent streams.
type SpectralPlan struct {
	field *Field
	rate  float64
	dt    float64
	n     int // chunk length (FFT size), power of two
	hop   int // n/2
	k     int // kernel half-width in bins
	comps []specComp

	culled      int     // components dropped by the amplitude budget
	culledAccel float64 // Σ a·ω² over dropped components (m/s²)
	culledSlope float64 // Σ a·|k| over dropped components
}

// NewSpectralPlan prepares spectral synthesis of f. The plan holds a
// reference to f (for the exact per-sample paths) but never mutates it.
func NewSpectralPlan(f *Field, cfg SpectralConfig) (*SpectralPlan, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("ocean: spectral synthesis needs a positive sample rate, got %g", cfg.Rate)
	}
	n := cfg.Window
	if n == 0 {
		n = 1024
	}
	if n < 8 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ocean: spectral window must be a power of two ≥ 8, got %d", n)
	}
	if cfg.Kernel < 0 || cfg.Kernel > n/4 {
		return nil, fmt.Errorf("ocean: spectral kernel half-width must be in [0, Window/4], got %d", cfg.Kernel)
	}
	p := &SpectralPlan{
		field: f,
		rate:  cfg.Rate,
		dt:    1 / cfg.Rate,
		n:     n,
		hop:   n / 2,
	}
	keep := p.cullComponents(f.comps, cfg.CullAccel, cfg.CullSlope)
	p.k = kernelHalfWidth(cfg, keep, n)
	p.comps = make([]specComp, 0, len(keep))
	for _, c := range keep {
		p.comps = append(p.comps, p.prepare(c))
	}
	return p, nil
}

// cullComponents drops the weakest components within the amplitude budgets
// and returns the survivors in their original order. The selection is
// deterministic: components are ranked by their worst-case normalized
// contribution with index order as the tie-break.
func (p *SpectralPlan) cullComponents(comps []component, cullAccel, cullSlope float64) []component {
	if cullAccel <= 0 || cullSlope <= 0 || len(comps) == 0 {
		return comps
	}
	idx := make([]int, len(comps))
	rank := make([]float64, len(comps))
	for i, c := range comps {
		idx[i] = i
		kmag := math.Hypot(c.kx, c.ky)
		rank[i] = math.Max(c.amp*c.omega*c.omega/cullAccel, c.amp*kmag/cullSlope)
	}
	sort.SliceStable(idx, func(a, b int) bool { return rank[idx[a]] < rank[idx[b]] })
	drop := make([]bool, len(comps))
	var sumA, sumS float64
	for _, i := range idx {
		c := comps[i]
		a := c.amp * c.omega * c.omega
		s := c.amp * math.Hypot(c.kx, c.ky)
		if sumA+a > cullAccel || sumS+s > cullSlope {
			break
		}
		sumA += a
		sumS += s
		drop[i] = true
	}
	keep := make([]component, 0, len(comps))
	for i, c := range comps {
		if drop[i] {
			p.culled++
			continue
		}
		keep = append(keep, c)
	}
	p.culledAccel, p.culledSlope = sumA, sumS
	return keep
}

// kernelHalfWidth derives the kernel half-width K from the component
// amplitudes and the configured tolerances. The per-component truncation
// residual of a Hann kernel cut at ±K bins is bounded by A/(2πK²) per
// sample; residuals of different components carry unrelated phases, so the
// series-level error is estimated as peak ≈ 5 × RMS of the per-component
// bounds and K is chosen to keep that peak under a quarter of the tolerance
// (see docs/SYNTHESIS.md for the derivation and the safety factors).
func kernelHalfWidth(cfg SpectralConfig, comps []component, n int) int {
	if cfg.Kernel != 0 {
		return cfg.Kernel
	}
	tolA := cfg.TolAccel
	if tolA == 0 {
		tolA = Gravity / 2048
	}
	tolS := cfg.TolSlope
	if tolS == 0 {
		tolS = 1.0 / 2048
	}
	var varA, varS float64
	for _, c := range comps {
		a := c.amp * c.omega * c.omega
		s := c.amp * math.Hypot(c.kx, c.ky)
		varA += a * a / 2
		varS += s * s / 2
	}
	need := func(sigma, tol float64) float64 {
		if sigma == 0 || tol <= 0 {
			return 0
		}
		// 5·σ/(2πK²) ≤ tol/4  ⇒  K ≥ sqrt(20·σ/(2π·tol)).
		return math.Sqrt(20 * sigma / (2 * math.Pi * tol))
	}
	k := int(math.Ceil(math.Max(need(math.Sqrt(varA), tolA), need(math.Sqrt(varS), tolS))))
	if k < 6 {
		k = 6
	}
	if k > 24 {
		k = 24
	}
	if k > n/4 {
		k = n / 4
	}
	return k
}

// prepare computes one component's bin index and kernel weights. The
// per-sample phase step of component c is β = −ω·dt; its nearest bin is
// round(β·N/2π) mod N and the weight of bin b+j is Ŵ((2π/N)(j−δ))/N, where
// δ ∈ [−½, ½] is the fractional bin offset and Ŵ is the DFT of the periodic
// Hann window (a three-term Dirichlet combination).
func (p *SpectralPlan) prepare(c component) specComp {
	n := float64(p.n)
	beta := -c.omega * p.dt
	frac := beta * n / (2 * math.Pi)
	braw := math.Round(frac)
	delta := frac - braw
	bin := int(braw) % p.n
	if bin < 0 {
		bin += p.n
	}
	sc := specComp{
		bin:   bin,
		omega: c.omega,
		kx:    c.kx,
		ky:    c.ky,
		phase: c.phase,
		cA:    -c.amp * c.omega * c.omega,
		aX:    c.amp * c.kx,
		aY:    c.amp * c.ky,
		w:     make([]complex128, 2*p.k+1),
	}
	binStep := 2 * math.Pi / n
	for j := -p.k; j <= p.k; j++ {
		theta := binStep * (float64(j) - delta)
		w := hannDFT(theta, p.n)
		sc.w[j+p.k] = w * complex(1/n, 0)
	}
	return sc
}

// dirichlet returns D(θ) = Σ_{u=0}^{N−1} e^{−iθu}
//
//	= e^{−i(N−1)θ/2} · sin(Nθ/2)/sin(θ/2).
func dirichlet(theta float64, n int) complex128 {
	s := math.Sin(theta / 2)
	if math.Abs(s) < 1e-14 {
		return complex(float64(n), 0)
	}
	mag := math.Sin(float64(n)*theta/2) / s
	sp, cp := math.Sincos(-float64(n-1) * theta / 2)
	return complex(mag*cp, mag*sp)
}

// hannDFT returns the DFT of the periodic Hann window w[u] = ½ − ½cos(2πu/N)
// evaluated at continuous frequency θ rad/sample.
func hannDFT(theta float64, n int) complex128 {
	binStep := 2 * math.Pi / float64(n)
	return 0.5*dirichlet(theta, n) -
		0.25*dirichlet(theta-binStep, n) -
		0.25*dirichlet(theta+binStep, n)
}

// NumComponents returns how many components the plan synthesizes (after
// culling).
func (p *SpectralPlan) NumComponents() int { return len(p.comps) }

// CulledComponents returns how many of the field's components the amplitude
// budget discarded, together with the summed acceleration (m/s²) and slope
// amplitudes of everything discarded — the hard ceiling on the error culling
// can introduce.
func (p *SpectralPlan) CulledComponents() (count int, accelSum, slopeSum float64) {
	return p.culled, p.culledAccel, p.culledSlope
}

// KernelHalfWidth returns the kernel half-width K in bins (each component
// scatters onto 2K+1 bins per chunk).
func (p *SpectralPlan) KernelHalfWidth() int { return p.k }

// Window returns the chunk length N in samples.
func (p *SpectralPlan) Window() int { return p.n }

// Field returns the underlying phasor field (used by the exact per-sample
// paths and by equivalence tests).
func (p *SpectralPlan) Field() *Field { return p.field }

// chunkSlot caches one synthesized chunk: the windowed contribution of
// chunk m to output samples [m·hop, m·hop+n) of the stream's grid.
type chunkSlot struct {
	m                     int
	valid                 bool
	accel, slopeX, slopeY []float64
}

// SpectralStream serves one node's sample blocks from a shared SpectralPlan.
// It is the streaming, stateful half of spectral synthesis: it anchors an
// absolute chunk grid at the first block it serves, synthesizes chunks on
// demand, caches the handful that cover the current read position, and adds
// the two overlapping chunks covering each requested sample.
//
// A stream implements sensor.StreamSampler (the block path), plus the
// SurfaceModel/SurfaceSampler point interfaces by delegating to the exact
// phasor field — so per-sample consumers (calibration, evaluation plots) see
// the exact field while the pipeline's block path gets the FFT synthesis.
//
// Streams are NOT safe for concurrent use: each stream belongs to one node
// and the pipeline guarantees per-node calls are sequential (the Source
// contract). Distinct streams sharing one plan may run concurrently.
type SpectralStream struct {
	plan    *SpectralPlan
	pos     geo.Vec2
	posAt   func(t float64) geo.Vec2 // nil for a fixed observer
	started bool
	tBase   float64 // time of grid sample 0
	slots   [3]chunkSlot
	scratch [3][]complex128
	chunks  int64 // chunks synthesized (profiling/culling stats)
}

// NewStream returns a stream for a fixed observer at p.
func (p *SpectralPlan) NewStream(pos geo.Vec2) *SpectralStream {
	return &SpectralStream{plan: p, pos: pos}
}

// NewMovingStream returns a stream for a slowly drifting observer: each
// chunk is synthesized at the frozen position posAt(chunk center time).
// Within a chunk the observer does not move — the spectral path trades the
// phasor path's per-block drift linearization for per-chunk freezing, which
// preserves the ambient sea's statistics but not its exact drifted phases
// (the phasor-equivalence contract therefore holds for fixed observers; see
// docs/SYNTHESIS.md for why drifting ambient phase is statistically
// irrelevant while wake onsets stay exact per sample).
func (p *SpectralPlan) NewMovingStream(posAt func(t float64) geo.Vec2) *SpectralStream {
	return &SpectralStream{plan: p, posAt: posAt}
}

// ChunksSynthesized returns how many chunks the stream has synthesized —
// the denominator of the amortized cost story (each chunk serves hop new
// samples).
func (s *SpectralStream) ChunksSynthesized() int64 { return s.chunks }

// VerticalAccel implements sensor.SurfaceModel via the exact phasor field.
func (s *SpectralStream) VerticalAccel(p geo.Vec2, t float64) float64 {
	return s.plan.field.VerticalAccel(p, t)
}

// Slope implements sensor.SurfaceModel via the exact phasor field.
func (s *SpectralStream) Slope(p geo.Vec2, t float64) geo.Vec2 {
	return s.plan.field.Slope(p, t)
}

// SampleSurface implements sensor.SurfaceSampler via the exact phasor field.
func (s *SpectralStream) SampleSurface(p geo.Vec2, t float64) (float64, geo.Vec2) {
	return s.plan.field.SampleSurface(p, t)
}

// AccumulateStream adds the field's contribution for the n samples
// t0, t0+dt, … into the caller's buffers (accel in m/s², slopes
// dimensionless; all buffers length ≥ n), synthesizing spectral chunks as
// the read position advances. The first call anchors the chunk grid so that
// t0 falls exactly on a grid sample; later calls must stay on that grid
// (the pipeline's blocks do — sample times are global-index × dt). Serving
// the same grid range in one call or many yields bit-identical samples,
// which is what keeps record→replay equivalence exact in spectral mode.
func (s *SpectralStream) AccumulateStream(t0 float64, n int, accel, slopeX, slopeY []float64) {
	if n <= 0 {
		return
	}
	p := s.plan
	if !s.started {
		s.started = true
		s.tBase = t0 - math.Round(t0*p.rate)*p.dt
	}
	si := int(math.Round((t0 - s.tBase) * p.rate))
	hop := p.hop
	for off := 0; off < n; {
		sAbs := si + off
		m := floorDiv(sAbs, hop)
		cnt := (m+1)*hop - sAbs // samples left in this hop segment
		if rest := n - off; cnt > rest {
			cnt = rest
		}
		cur := s.chunk(m)      // covers grid samples [m·hop, m·hop+n)
		prev := s.chunk(m - 1) // covers [(m−1)·hop, (m+1)·hop)
		u1 := sAbs - m*hop
		u0 := u1 + hop
		for i := 0; i < cnt; i++ {
			accel[off+i] += cur.accel[u1+i] + prev.accel[u0+i]
			slopeX[off+i] += cur.slopeX[u1+i] + prev.slopeX[u0+i]
			slopeY[off+i] += cur.slopeY[u1+i] + prev.slopeY[u0+i]
		}
		off += cnt
	}
}

// floorDiv is integer division rounding toward −∞ (a may be negative when
// the first block starts mid-chunk).
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// chunk returns the cached chunk m, synthesizing it into the least recently
// useful slot if absent. Slots are replaced smallest-m first, which under
// the stream's monotone access pattern never evicts a chunk needed later in
// the same call.
func (s *SpectralStream) chunk(m int) *chunkSlot {
	victim := -1
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.valid && sl.m == m {
			return sl
		}
		if !sl.valid {
			victim = i
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(s.slots); i++ {
			if s.slots[i].m < s.slots[victim].m {
				victim = i
			}
		}
	}
	sl := &s.slots[victim]
	s.synthesize(sl, m)
	return sl
}

// synthesize fills slot with chunk m: scatter every component onto the bin
// grid with its kernel weights and phase rotation for this chunk, inverse
// transform in place, and keep the real parts. The three series share the
// per-component phase rotation; the kernel weights come from the shared
// plan.
func (s *SpectralStream) synthesize(sl *chunkSlot, m int) {
	p := s.plan
	n := p.n
	if sl.accel == nil {
		sl.accel = make([]float64, n)
		sl.slopeX = make([]float64, n)
		sl.slopeY = make([]float64, n)
	}
	if s.scratch[0] == nil {
		for i := range s.scratch {
			s.scratch[i] = make([]complex128, n)
		}
	}
	tm := s.tBase + float64(m*p.hop)*p.dt
	pos := s.pos
	if s.posAt != nil {
		pos = s.posAt(tm + 0.5*float64(n)*p.dt)
	}
	sa, sx, sy := s.scratch[0], s.scratch[1], s.scratch[2]
	for i := 0; i < n; i++ {
		sa[i], sx[i], sy[i] = 0, 0, 0
	}
	kHalf := p.k
	mask := n - 1
	for ci := range p.comps {
		c := &p.comps[ci]
		// Phase of the component at the chunk's first sample, at the
		// chunk's frozen observer position.
		sin, cos := math.Sincos(c.kx*pos.X + c.ky*pos.Y + c.phase - c.omega*tm)
		u := complex(cos, sin)
		uA := u * complex(c.cA, 0)
		uX := u * complex(0, c.aX)
		uY := u * complex(0, c.aY)
		base := c.bin - kHalf + n // + n keeps the masked index non-negative
		for j, w := range c.w {
			idx := (base + j) & mask
			sa[idx] += uA * w
			sx[idx] += uX * w
			sy[idx] += uY * w
		}
	}
	// Unnormalized inverse transforms; the 1/N lives in the kernel weights.
	dsp.FFTInPlace(sa, true)
	dsp.FFTInPlace(sx, true)
	dsp.FFTInPlace(sy, true)
	for i := 0; i < n; i++ {
		sl.accel[i] = real(sa[i])
		sl.slopeX[i] = real(sx[i])
		sl.slopeY[i] = real(sy[i])
	}
	sl.m, sl.valid = m, true
	s.chunks++
}
