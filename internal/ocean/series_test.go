package ocean

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

func seriesTestField(t *testing.T) *Field {
	t.Helper()
	spec, err := NewJONSWAP(0.4, 6.0, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewField(FieldConfig{Spectrum: spec, Seed: 42, BuoyRadius: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The phasor recurrence must agree with the direct per-sample evaluation to
// within floating-point noise, including across resync boundaries.
func TestSampleSeriesMatchesSampleSurface(t *testing.T) {
	f := seriesTestField(t)
	p := geo.Vec2{X: 13.7, Y: -4.2}
	const (
		t0 = 3.25
		dt = 1.0 / 50
		n  = resyncInterval*2 + 37 // cross two resync boundaries
	)
	series := f.SampleSeries(p, t0, dt, n)
	if len(series.Accel) != n || len(series.SlopeX) != n || len(series.SlopeY) != n {
		t.Fatalf("series lengths %d/%d/%d, want %d",
			len(series.Accel), len(series.SlopeX), len(series.SlopeY), n)
	}
	// Scale for relative comparison: typical accel magnitude.
	var scale float64
	for _, a := range series.Accel {
		scale += a * a
	}
	scale = math.Sqrt(scale/float64(n)) + 1e-12
	for s := 0; s < n; s++ {
		ts := t0 + float64(s)*dt
		accel, slope := f.SampleSurface(p, ts)
		if d := math.Abs(series.Accel[s] - accel); d > 1e-9*scale {
			t.Fatalf("sample %d: accel %v vs direct %v (Δ %g)", s, series.Accel[s], accel, d)
		}
		if d := math.Abs(series.SlopeX[s] - slope.X); d > 1e-10 {
			t.Fatalf("sample %d: slopeX %v vs direct %v", s, series.SlopeX[s], slope.X)
		}
		if d := math.Abs(series.SlopeY[s] - slope.Y); d > 1e-10 {
			t.Fatalf("sample %d: slopeY %v vs direct %v", s, series.SlopeY[s], slope.Y)
		}
	}
}

// Repeated synthesis of the same block must be bit-identical — the property
// the parallel per-node fan-out relies on.
func TestSampleSeriesDeterministic(t *testing.T) {
	f := seriesTestField(t)
	p := geo.Vec2{X: -8, Y: 21}
	a := f.SampleSeries(p, 1.5, 0.02, 333)
	b := f.SampleSeries(p, 1.5, 0.02, 333)
	for s := range a.Accel {
		if a.Accel[s] != b.Accel[s] || a.SlopeX[s] != b.SlopeX[s] || a.SlopeY[s] != b.SlopeY[s] {
			t.Fatalf("sample %d differs between identical syntheses", s)
		}
	}
}

// AccumulateSeries must add into the buffers, not overwrite them, so
// composite models can stack several sources.
func TestAccumulateSeriesAdds(t *testing.T) {
	f := seriesTestField(t)
	p := geo.Vec2{}
	const n = 16
	accel := make([]float64, n)
	sx := make([]float64, n)
	sy := make([]float64, n)
	for i := range accel {
		accel[i], sx[i], sy[i] = 100, 200, 300
	}
	f.AccumulateSeries(p, 0, 0.02, n, accel, sx, sy)
	base := f.SampleSeries(p, 0, 0.02, n)
	for s := 0; s < n; s++ {
		if got, want := accel[s], 100+base.Accel[s]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("accel[%d] = %v, want %v", s, got, want)
		}
		if got, want := sx[s], 200+base.SlopeX[s]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("slopeX[%d] = %v, want %v", s, got, want)
		}
		if got, want := sy[s], 300+base.SlopeY[s]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("slopeY[%d] = %v, want %v", s, got, want)
		}
	}
}

func TestSampleSeriesEmpty(t *testing.T) {
	f := seriesTestField(t)
	s := f.SampleSeries(geo.Vec2{}, 0, 0.02, 0)
	if len(s.Accel) != 0 {
		t.Fatalf("expected empty series, got %d samples", len(s.Accel))
	}
	// n <= 0 must be a no-op for the accumulate form too.
	f.AccumulateSeries(geo.Vec2{}, 0, 0.02, -3, nil, nil, nil)
}
