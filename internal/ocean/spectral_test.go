package ocean

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// halfLSB is the phasor-equivalence tolerance: half a quantization step of
// the paper's 12-bit ±2 g accelerometer (1024 counts/g), in m/s² for the
// acceleration series and dimensionless for the slopes.
const (
	halfLSBAccel = 0.5 * Gravity / 1024
	halfLSBSlope = 0.5 / 1024
)

func testField(t *testing.T, hs, tp float64, seed int64) *Field {
	t.Helper()
	spec, err := NewPiersonMoskowitz(hs, tp)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewField(FieldConfig{Spectrum: spec, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testPlan(t *testing.T, f *Field, cfg SpectralConfig) *SpectralPlan {
	t.Helper()
	if cfg.Rate == 0 {
		cfg.Rate = 50
	}
	p, err := NewSpectralPlan(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// accumulateBlocks serves n samples from the stream in blocks of blockLen.
func accumulateBlocks(s *SpectralStream, t0, dt float64, n, blockLen int, accel, slopeX, slopeY []float64) {
	for off := 0; off < n; off += blockLen {
		cnt := blockLen
		if n-off < cnt {
			cnt = n - off
		}
		s.AccumulateStream(t0+float64(off)*dt, cnt,
			accel[off:off+cnt], slopeX[off:off+cnt], slopeY[off:off+cnt])
	}
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestSpectralMatchesPhasor is the phasor-equivalence property test: for
// randomized sea states and observer positions, the spectral stream must
// reproduce the phasor series within half a quantization step on every
// sample (the contract documented in docs/SYNTHESIS.md).
func TestSpectralMatchesPhasor(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type caseSpec struct {
		hs, tp float64
		seed   int64
		window int
	}
	cases := []caseSpec{
		{0.15, 3.2, 1, 0},   // smooth
		{0.25, 4.0, 2, 0},   // the default deployment sea
		{1.0, 6.0, 3, 0},    // moderate
		{3.0, 8.5, 4, 0},    // rough
		{0.25, 4.0, 5, 512}, // non-default window
		{0.25, 4.0, 6, 2048},
	}
	for i := 0; i < 8; i++ {
		cases = append(cases, caseSpec{
			hs:   0.1 + 2.9*rng.Float64(),
			tp:   3 + 6*rng.Float64(),
			seed: rng.Int63(),
		})
	}
	const (
		rate = 50.0
		dt   = 1 / rate
		n    = 3000
	)
	for _, tc := range cases {
		f := testField(t, tc.hs, tc.tp, tc.seed)
		plan := testPlan(t, f, SpectralConfig{Rate: rate, Window: tc.window})
		pos := geo.Vec2{X: -200 + 400*rng.Float64(), Y: -200 + 400*rng.Float64()}
		t0 := 100 * rng.Float64()
		// Phasor "blocks" must resync against the exact phase the way the
		// pipeline does, so serve the reference in pipeline-sized blocks.
		ref := SurfaceSeries{
			Accel:  make([]float64, n),
			SlopeX: make([]float64, n),
			SlopeY: make([]float64, n),
		}
		f.AccumulateSeries(pos, t0, dt, n, ref.Accel, ref.SlopeX, ref.SlopeY)

		got := SurfaceSeries{
			Accel:  make([]float64, n),
			SlopeX: make([]float64, n),
			SlopeY: make([]float64, n),
		}
		accumulateBlocks(plan.NewStream(pos), t0, dt, n, 25, got.Accel, got.SlopeX, got.SlopeY)

		da := maxAbsDiff(ref.Accel, got.Accel)
		dx := maxAbsDiff(ref.SlopeX, got.SlopeX)
		dy := maxAbsDiff(ref.SlopeY, got.SlopeY)
		if da > halfLSBAccel || dx > halfLSBSlope || dy > halfLSBSlope {
			t.Errorf("Hs=%.2f Tp=%.2f seed=%d window=%d K=%d: spectral deviates from phasor: accel %.3g (tol %.3g), slopeX %.3g slopeY %.3g (tol %.3g)",
				tc.hs, tc.tp, tc.seed, plan.Window(), plan.KernelHalfWidth(), da, halfLSBAccel, dx, dy, halfLSBSlope)
		}
	}
}

// TestSpectralBoundaryContinuity asserts the overlap-add stitching is exact:
// the same grid range served in pipeline-sized blocks, in uneven blocks, and
// in one call must be bit-identical — no seams at chunk or hop boundaries.
func TestSpectralBoundaryContinuity(t *testing.T) {
	f := testField(t, 0.4, 4.5, 99)
	const (
		rate = 50.0
		dt   = 1 / rate
		n    = 2600 // spans several 512-sample hops
	)
	plan := testPlan(t, f, SpectralConfig{Rate: rate})
	pos := geo.Vec2{X: 31, Y: -47}
	t0 := 12.34

	serve := func(blockLen int) SurfaceSeries {
		out := SurfaceSeries{
			Accel:  make([]float64, n),
			SlopeX: make([]float64, n),
			SlopeY: make([]float64, n),
		}
		accumulateBlocks(plan.NewStream(pos), t0, dt, n, blockLen, out.Accel, out.SlopeX, out.SlopeY)
		return out
	}
	whole := serve(n)
	for _, blockLen := range []int{25, 17, 512, 1000} {
		blocks := serve(blockLen)
		for i := 0; i < n; i++ {
			if blocks.Accel[i] != whole.Accel[i] || blocks.SlopeX[i] != whole.SlopeX[i] || blocks.SlopeY[i] != whole.SlopeY[i] {
				t.Fatalf("block length %d: sample %d differs from single-call synthesis (accel %v vs %v)",
					blockLen, i, blocks.Accel[i], whole.Accel[i])
			}
		}
	}
}

// TestSpectralGapContinuity: a stream that skips ahead (duty-cycled node)
// must produce the same samples at the same grid indices as a stream that
// served every block — chunks live on an absolute grid, not a read cursor.
func TestSpectralGapContinuity(t *testing.T) {
	f := testField(t, 0.3, 5.0, 7)
	const (
		rate = 50.0
		dt   = 1 / rate
		n    = 2000
	)
	plan := testPlan(t, f, SpectralConfig{Rate: rate})
	pos := geo.Vec2{X: 5, Y: 5}

	full := SurfaceSeries{
		Accel:  make([]float64, n),
		SlopeX: make([]float64, n),
		SlopeY: make([]float64, n),
	}
	accumulateBlocks(plan.NewStream(pos), 0, dt, n, 25, full.Accel, full.SlopeX, full.SlopeY)

	// Serve only every 4th 25-sample block, like a duty-cycled node.
	gappy := plan.NewStream(pos)
	for off := 0; off < n; off += 100 {
		accel := make([]float64, 25)
		sx := make([]float64, 25)
		sy := make([]float64, 25)
		gappy.AccumulateStream(float64(off)*dt, 25, accel, sx, sy)
		for i := 0; i < 25; i++ {
			if accel[i] != full.Accel[off+i] || sx[i] != full.SlopeX[off+i] || sy[i] != full.SlopeY[off+i] {
				t.Fatalf("gapped stream sample %d differs from contiguous stream", off+i)
			}
		}
	}
}

// TestSpectralCullingBudget: with amplitude budgets set, the plan must drop
// components, report their summed amplitudes within the budgets, and the
// synthesized series must stay within budget+tolerance of the exact series.
func TestSpectralCullingBudget(t *testing.T) {
	f := testField(t, 0.25, 4.0, 11)
	const (
		rate      = 50.0
		dt        = 1 / rate
		n         = 2000
		cullAccel = 0.25 * Gravity / 1024
		cullSlope = 0.25 / 1024
	)
	plan := testPlan(t, f, SpectralConfig{Rate: rate, CullAccel: cullAccel, CullSlope: cullSlope})
	count, accelSum, slopeSum := plan.CulledComponents()
	if count == 0 {
		t.Fatalf("expected the default sea to have cullable components, got none (of %d)", f.NumComponents())
	}
	if accelSum > cullAccel || slopeSum > cullSlope {
		t.Fatalf("culled amplitude sums exceed budgets: accel %g > %g or slope %g > %g",
			accelSum, cullAccel, slopeSum, cullSlope)
	}
	if plan.NumComponents()+count != f.NumComponents() {
		t.Fatalf("component accounting: %d active + %d culled != %d total",
			plan.NumComponents(), count, f.NumComponents())
	}

	pos := geo.Vec2{X: 12, Y: 80}
	ref := SurfaceSeries{
		Accel:  make([]float64, n),
		SlopeX: make([]float64, n),
		SlopeY: make([]float64, n),
	}
	f.AccumulateSeries(pos, 0, dt, n, ref.Accel, ref.SlopeX, ref.SlopeY)
	got := SurfaceSeries{
		Accel:  make([]float64, n),
		SlopeX: make([]float64, n),
		SlopeY: make([]float64, n),
	}
	accumulateBlocks(plan.NewStream(pos), 0, dt, n, 25, got.Accel, got.SlopeX, got.SlopeY)
	if da := maxAbsDiff(ref.Accel, got.Accel); da > cullAccel+halfLSBAccel {
		t.Errorf("culled accel deviates %g, above budget+tolerance %g", da, cullAccel+halfLSBAccel)
	}
	if ds := math.Max(maxAbsDiff(ref.SlopeX, got.SlopeX), maxAbsDiff(ref.SlopeY, got.SlopeY)); ds > cullSlope+halfLSBSlope {
		t.Errorf("culled slope deviates %g, above budget+tolerance %g", ds, cullSlope+halfLSBSlope)
	}
}

// TestSpectralMovingStreamDeterminism: a drifting stream is deterministic —
// two identically configured streams serve bit-identical samples.
func TestSpectralMovingStreamDeterminism(t *testing.T) {
	f := testField(t, 0.25, 4.0, 21)
	const (
		rate = 50.0
		dt   = 1 / rate
		n    = 1500
	)
	plan := testPlan(t, f, SpectralConfig{Rate: rate})
	posAt := func(t float64) geo.Vec2 {
		return geo.Vec2{X: 3 * math.Sin(2*math.Pi*t/60), Y: 2 * math.Cos(2*math.Pi*t/45)}
	}
	mk := func() SurfaceSeries {
		out := SurfaceSeries{
			Accel:  make([]float64, n),
			SlopeX: make([]float64, n),
			SlopeY: make([]float64, n),
		}
		accumulateBlocks(plan.NewMovingStream(posAt), 0, dt, n, 25, out.Accel, out.SlopeX, out.SlopeY)
		return out
	}
	a, b := mk(), mk()
	for i := 0; i < n; i++ {
		if a.Accel[i] != b.Accel[i] || a.SlopeX[i] != b.SlopeX[i] || a.SlopeY[i] != b.SlopeY[i] {
			t.Fatalf("moving streams diverge at sample %d", i)
		}
	}
}

func BenchmarkSpectralStreamPerSample(b *testing.B) {
	spec, err := NewPiersonMoskowitz(0.25, 4.0)
	if err != nil {
		b.Fatal(err)
	}
	f, err := NewField(FieldConfig{Spectrum: spec, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := NewSpectralPlan(f, SpectralConfig{Rate: 50})
	if err != nil {
		b.Fatal(err)
	}
	s := plan.NewStream(geo.Vec2{X: 10, Y: 10})
	const blockLen = 25
	accel := make([]float64, blockLen)
	sx := make([]float64, blockLen)
	sy := make([]float64, blockLen)
	b.ResetTimer()
	for i := 0; i < b.N; i += blockLen {
		for j := range accel {
			accel[j], sx[j], sy[j] = 0, 0, 0
		}
		s.AccumulateStream(float64(i)/50, blockLen, accel, sx, sy)
	}
}
