package ocean

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// integrate numerically integrates a spectrum over [lo, hi].
func integrate(s Spectrum, lo, hi float64, n int) float64 {
	df := (hi - lo) / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		f := lo + (float64(i)+0.5)*df
		sum += s.Density(f) * df
	}
	return sum
}

func TestPiersonMoskowitzEnergy(t *testing.T) {
	// Total variance of the spectrum must equal Hs²/16.
	s, err := NewPiersonMoskowitz(1.0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	m0 := integrate(s, 0.01, 5, 20000)
	want := 1.0 / 16.0
	if math.Abs(m0-want)/want > 0.02 {
		t.Errorf("m0 = %v, want %v", m0, want)
	}
}

func TestPiersonMoskowitzPeak(t *testing.T) {
	s, _ := NewPiersonMoskowitz(0.8, 4.0)
	if pf := s.PeakFreq(); !almostEq(pf, 0.25, 1e-12) {
		t.Errorf("PeakFreq = %v", pf)
	}
	// Density is maximized at the peak frequency.
	fp := s.PeakFreq()
	dp := s.Density(fp)
	for _, f := range []float64{fp * 0.5, fp * 0.8, fp * 1.3, fp * 2} {
		if s.Density(f) > dp {
			t.Errorf("density at %v Hz exceeds peak density", f)
		}
	}
	if d := s.Density(0); d != 0 {
		t.Errorf("Density(0) = %v", d)
	}
	if d := s.Density(-1); d != 0 {
		t.Errorf("Density(-1) = %v", d)
	}
}

func TestPiersonMoskowitzValidation(t *testing.T) {
	if _, err := NewPiersonMoskowitz(0, 5); err == nil {
		t.Error("expected error for zero Hs")
	}
	if _, err := NewPiersonMoskowitz(1, -5); err == nil {
		t.Error("expected error for negative Tp")
	}
}

func TestJONSWAPEnergyAndPeak(t *testing.T) {
	s, err := NewJONSWAP(1.0, 5.0, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	m0 := integrate(s, 0.01, 5, 20000)
	want := 1.0 / 16.0
	// Goda's normalization is approximate; allow 10%.
	if math.Abs(m0-want)/want > 0.10 {
		t.Errorf("JONSWAP m0 = %v, want ~%v", m0, want)
	}
	// γ>1 sharpens the peak relative to PM.
	pm, _ := NewPiersonMoskowitz(1.0, 5.0)
	fp := s.PeakFreq()
	if s.Density(fp) <= pm.Density(fp) {
		t.Error("JONSWAP peak should exceed PM peak")
	}
}

func TestJONSWAPDefaults(t *testing.T) {
	s, err := NewJONSWAP(1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gamma != 3.3 {
		t.Errorf("default gamma = %v", s.Gamma)
	}
	if _, err := NewJONSWAP(0, 5, 3.3); err == nil {
		t.Error("expected error for zero Hs")
	}
	// γ=1 reduces JONSWAP to PM up to the normalization constant (which is
	// exactly 1 at γ=1).
	j1, _ := NewJONSWAP(1, 5, 1)
	pm, _ := NewPiersonMoskowitz(1, 5)
	for _, f := range []float64{0.1, 0.2, 0.3, 0.5} {
		if !almostEq(j1.Density(f), pm.Density(f), 1e-12) {
			t.Errorf("γ=1 JONSWAP differs from PM at %v Hz", f)
		}
	}
}

func TestSeaStateParams(t *testing.T) {
	prevHs := 0.0
	for _, ss := range []SeaState{SeaCalm, SeaSmooth, SeaSlight, SeaModest, SeaRough} {
		hs, tp, err := ss.Params()
		if err != nil {
			t.Fatalf("%v: %v", ss, err)
		}
		if hs <= prevHs {
			t.Errorf("%v: Hs %v not increasing", ss, hs)
		}
		if tp <= 0 {
			t.Errorf("%v: Tp %v", ss, tp)
		}
		prevHs = hs
		if ss.String() == "" {
			t.Errorf("empty String for %d", int(ss))
		}
	}
	if _, _, err := SeaState(99).Params(); err == nil {
		t.Error("expected error for unknown sea state")
	}
}

func TestDispersionHelpers(t *testing.T) {
	f := 0.2
	k := WavenumberFor(f)
	w := 2 * math.Pi * f
	if !almostEq(w*w, Gravity*k, 1e-9) {
		t.Errorf("dispersion violated: ω²=%v, gk=%v", w*w, Gravity*k)
	}
	c := PhaseSpeedFor(f)
	if !almostEq(c, w/k, 1e-9) {
		t.Errorf("phase speed = %v, want ω/k = %v", c, w/k)
	}
	if got := FreqForPhaseSpeed(c); !almostEq(got, f, 1e-12) {
		t.Errorf("FreqForPhaseSpeed round trip = %v", got)
	}
	if PhaseSpeedFor(0) != 0 || FreqForPhaseSpeed(0) != 0 {
		t.Error("zero-input helpers should return 0")
	}
}

func newTestField(t *testing.T, seed int64) *Field {
	t.Helper()
	s, err := NewPiersonMoskowitz(0.5, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewField(FieldConfig{Spectrum: s, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFieldReproducible(t *testing.T) {
	f1 := newTestField(t, 42)
	f2 := newTestField(t, 42)
	p := geo.Vec2{X: 10, Y: -5}
	for _, tm := range []float64{0, 1.5, 100} {
		if f1.Elevation(p, tm) != f2.Elevation(p, tm) {
			t.Fatal("same seed produced different fields")
		}
	}
	f3 := newTestField(t, 43)
	if f1.Elevation(p, 1) == f3.Elevation(p, 1) {
		t.Error("different seeds produced identical elevation (suspicious)")
	}
}

func TestFieldSignificantWaveHeight(t *testing.T) {
	f := newTestField(t, 1)
	hs := f.SignificantWaveHeight()
	if math.Abs(hs-0.5)/0.5 > 0.1 {
		t.Errorf("realized Hs = %v, want ~0.5", hs)
	}
}

func TestFieldElevationStatistics(t *testing.T) {
	// Time-series std of elevation ≈ Hs/4.
	f := newTestField(t, 2)
	p := geo.Vec2{}
	n := 50 * 600 // 10 minutes at 50 Hz
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		e := f.Elevation(p, float64(i)/50)
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("elevation mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.125)/0.125 > 0.25 {
		t.Errorf("elevation std = %v, want ~0.125 (Hs/4)", std)
	}
}

func TestFieldAccelerationConsistentWithElevation(t *testing.T) {
	// Numerical second derivative of elevation ≈ VerticalAccel.
	f := newTestField(t, 3)
	p := geo.Vec2{X: 3, Y: 7}
	h := 1e-3
	for _, tm := range []float64{0.5, 10, 33.3} {
		num := (f.Elevation(p, tm+h) - 2*f.Elevation(p, tm) + f.Elevation(p, tm-h)) / (h * h)
		got := f.VerticalAccel(p, tm)
		if math.Abs(num-got) > 1e-3*(1+math.Abs(got)) {
			t.Errorf("t=%v: accel %v vs numerical %v", tm, got, num)
		}
	}
}

func TestFieldSlopeConsistentWithElevation(t *testing.T) {
	f := newTestField(t, 4)
	p := geo.Vec2{X: -2, Y: 11}
	h := 1e-4
	for _, tm := range []float64{1, 25} {
		sx := (f.Elevation(geo.Vec2{X: p.X + h, Y: p.Y}, tm) - f.Elevation(geo.Vec2{X: p.X - h, Y: p.Y}, tm)) / (2 * h)
		sy := (f.Elevation(geo.Vec2{X: p.X, Y: p.Y + h}, tm) - f.Elevation(geo.Vec2{X: p.X, Y: p.Y - h}, tm)) / (2 * h)
		got := f.Slope(p, tm)
		if math.Abs(got.X-sx) > 1e-4*(1+math.Abs(sx)) || math.Abs(got.Y-sy) > 1e-4*(1+math.Abs(sy)) {
			t.Errorf("t=%v: slope %v vs numerical (%v, %v)", tm, got, sx, sy)
		}
	}
}

func TestFieldSpectrumShape(t *testing.T) {
	// The synthesized z-acceleration spectrum must peak near the input
	// spectrum's peak frequency band — the "single peak concentration"
	// observation of Fig. 6(a) comes from this property.
	s, _ := NewPiersonMoskowitz(0.5, 4.0)
	f, err := NewField(FieldConfig{Spectrum: s, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const fs = 50.0
	n := int(fs * 600)
	series := make([]float64, n)
	for i := range series {
		series[i] = f.VerticalAccel(geo.Vec2{}, float64(i)/fs)
	}
	// Rough periodogram peak via Goertzel-like scan.
	bestF, bestP := 0.0, 0.0
	for ff := 0.05; ff < 2; ff += 0.01 {
		var re, im float64
		for i, v := range series {
			ang := 2 * math.Pi * ff * float64(i) / fs
			re += v * math.Cos(ang)
			im += v * math.Sin(ang)
		}
		p := re*re + im*im
		if p > bestP {
			bestF, bestP = ff, p
		}
	}
	// Acceleration spectrum is ω⁴-weighted so its peak sits slightly above
	// the elevation peak (0.25 Hz); accept 0.2–0.6 Hz.
	if bestF < 0.2 || bestF > 0.6 {
		t.Errorf("acceleration spectral peak at %v Hz, want in [0.2, 0.6]", bestF)
	}
}

func TestFieldConfigValidation(t *testing.T) {
	s, _ := NewPiersonMoskowitz(0.5, 4)
	cases := []FieldConfig{
		{},
		{Spectrum: s, NumFreqs: -1},
		{Spectrum: s, MinFreq: -1, MaxFreq: 2},
		{Spectrum: s, MinFreq: 2, MaxFreq: 1},
		{Spectrum: s, NumDirs: -2},
		{Spectrum: s, SpreadExp: -1},
	}
	for i, cfg := range cases {
		if _, err := NewField(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFieldDefaultsApplied(t *testing.T) {
	s, _ := NewPiersonMoskowitz(0.5, 4)
	f, err := NewField(FieldConfig{Spectrum: s})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumComponents() == 0 {
		t.Error("no components synthesized with defaults")
	}
}

func TestSampleSurfaceMatchesSeparateCalls(t *testing.T) {
	f := newTestField(t, 6)
	for _, tm := range []float64{0, 7.3, 123.4} {
		p := geo.Vec2{X: 12, Y: -8}
		a, sl := f.SampleSurface(p, tm)
		if a != f.VerticalAccel(p, tm) {
			t.Fatalf("t=%v: accel fast path diverges", tm)
		}
		if sl != f.Slope(p, tm) {
			t.Fatalf("t=%v: slope fast path diverges", tm)
		}
	}
}
