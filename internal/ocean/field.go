package ocean

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sid-wsn/sid/internal/geo"
)

// FieldConfig parametrizes a synthesized directional wave field.
type FieldConfig struct {
	// Spectrum supplies the 1-D energy density. Required.
	Spectrum Spectrum
	// NumFreqs components are drawn between MinFreq and MaxFreq.
	NumFreqs int
	// MinFreq and MaxFreq bound the discretization in Hz.
	MinFreq, MaxFreq float64
	// NumDirs directions are spread around MeanDir.
	NumDirs int
	// MeanDir is the dominant wave direction in radians.
	MeanDir float64
	// SpreadExp is the cosine-power spreading exponent s in
	// D(θ) ∝ cos^{2s}((θ−MeanDir)/2). Higher is narrower. Default 1.
	SpreadExp float64
	// BuoyRadius models the hull's hydrodynamic low-pass response: a buoy
	// of radius r does not follow waves much shorter than its own size,
	// so each component's amplitude is scaled by exp(−(k·r)²). 0 disables
	// (an ideal point follower).
	BuoyRadius float64
	// Seed makes the random phases reproducible.
	Seed int64
}

func (c *FieldConfig) normalize() error {
	if c.Spectrum == nil {
		return fmt.Errorf("ocean: FieldConfig.Spectrum is required")
	}
	if c.NumFreqs == 0 {
		c.NumFreqs = 64
	}
	if c.NumFreqs < 1 {
		return fmt.Errorf("ocean: NumFreqs must be positive, got %d", c.NumFreqs)
	}
	if c.MinFreq == 0 && c.MaxFreq == 0 {
		fp := c.Spectrum.PeakFreq()
		c.MinFreq = fp / 4
		c.MaxFreq = fp * 5
	}
	if c.MinFreq <= 0 || c.MaxFreq <= c.MinFreq {
		return fmt.Errorf("ocean: need 0 < MinFreq < MaxFreq, got [%g, %g]", c.MinFreq, c.MaxFreq)
	}
	if c.NumDirs == 0 {
		c.NumDirs = 8
	}
	if c.NumDirs < 1 {
		return fmt.Errorf("ocean: NumDirs must be positive, got %d", c.NumDirs)
	}
	if c.SpreadExp == 0 {
		c.SpreadExp = 1
	}
	if c.SpreadExp < 0 {
		return fmt.Errorf("ocean: SpreadExp must be non-negative, got %g", c.SpreadExp)
	}
	if c.BuoyRadius < 0 {
		return fmt.Errorf("ocean: BuoyRadius must be non-negative, got %g", c.BuoyRadius)
	}
	return nil
}

// component is one deterministic wave train of the synthesized field.
type component struct {
	amp   float64 // amplitude in meters
	omega float64 // angular frequency rad/s
	kx    float64 // wavenumber x component rad/m
	ky    float64 // wavenumber y component rad/m
	phase float64 // random phase offset rad
}

// Field is a frozen random realization of a directional sea. It is safe for
// concurrent readers once constructed.
type Field struct {
	comps []component
	cfg   FieldConfig
}

// NewField draws a random realization of the configured sea.
func NewField(cfg FieldConfig) (*Field, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	df := (cfg.MaxFreq - cfg.MinFreq) / float64(cfg.NumFreqs)

	// Directional weights D(θ) ∝ cos^{2s}(Δθ/2), normalized to sum 1.
	dirs := make([]float64, cfg.NumDirs)
	weights := make([]float64, cfg.NumDirs)
	var wsum float64
	for j := range dirs {
		// Directions span ±90° around the mean direction.
		frac := 0.5
		if cfg.NumDirs > 1 {
			frac = float64(j) / float64(cfg.NumDirs-1)
		}
		d := -math.Pi/2 + frac*math.Pi
		dirs[j] = cfg.MeanDir + d
		w := math.Pow(math.Cos(d/2), 2*cfg.SpreadExp)
		weights[j] = w
		wsum += w
	}
	for j := range weights {
		weights[j] /= wsum
	}

	f := &Field{cfg: cfg, comps: make([]component, 0, cfg.NumFreqs*cfg.NumDirs)}
	for i := 0; i < cfg.NumFreqs; i++ {
		// Jitter the frequency within its bin to avoid periodic artifacts.
		freq := cfg.MinFreq + (float64(i)+rng.Float64())*df
		s := cfg.Spectrum.Density(freq)
		if s <= 0 {
			continue
		}
		omega := 2 * math.Pi * freq
		k := WavenumberFor(freq)
		hull := 1.0
		if cfg.BuoyRadius > 0 {
			kr := k * cfg.BuoyRadius
			hull = math.Exp(-kr * kr)
		}
		for j := 0; j < cfg.NumDirs; j++ {
			amp := hull * math.Sqrt(2*s*df*weights[j])
			if amp == 0 {
				continue
			}
			f.comps = append(f.comps, component{
				amp:   amp,
				omega: omega,
				kx:    k * math.Cos(dirs[j]),
				ky:    k * math.Sin(dirs[j]),
				phase: rng.Float64() * 2 * math.Pi,
			})
		}
	}
	return f, nil
}

// NumComponents returns the number of deterministic wave trains.
func (f *Field) NumComponents() int { return len(f.comps) }

// Elevation returns the sea-surface elevation η in meters at p and time t.
func (f *Field) Elevation(p geo.Vec2, t float64) float64 {
	var e float64
	for _, c := range f.comps {
		e += c.amp * math.Cos(c.kx*p.X+c.ky*p.Y-c.omega*t+c.phase)
	}
	return e
}

// VerticalAccel returns ∂²η/∂t² in m/s² at p and time t — what an ideal
// surface-following buoy's z accelerometer measures on top of gravity.
func (f *Field) VerticalAccel(p geo.Vec2, t float64) float64 {
	var a float64
	for _, c := range f.comps {
		a -= c.amp * c.omega * c.omega * math.Cos(c.kx*p.X+c.ky*p.Y-c.omega*t+c.phase)
	}
	return a
}

// Slope returns the surface gradient (∂η/∂x, ∂η/∂y) at p and time t; a
// floating buoy tilts with the local slope, which couples gravity into its
// x/y accelerometer axes.
func (f *Field) Slope(p geo.Vec2, t float64) geo.Vec2 {
	var sx, sy float64
	for _, c := range f.comps {
		s := -c.amp * math.Sin(c.kx*p.X+c.ky*p.Y-c.omega*t+c.phase)
		sx += s * c.kx
		sy += s * c.ky
	}
	return geo.Vec2{X: sx, Y: sy}
}

// SampleSurface returns the vertical acceleration and surface slope in a
// single pass over the components (the sensor samples both every tick;
// fusing the loops halves the dominant cost of large simulations).
func (f *Field) SampleSurface(p geo.Vec2, t float64) (accel float64, slope geo.Vec2) {
	for _, c := range f.comps {
		phase := c.kx*p.X + c.ky*p.Y - c.omega*t + c.phase
		sin, cos := math.Sincos(phase)
		accel -= c.amp * c.omega * c.omega * cos
		s := -c.amp * sin
		slope.X += s * c.kx
		slope.Y += s * c.ky
	}
	return accel, slope
}

// SignificantWaveHeight estimates Hs = 4·ση from the component amplitudes
// (the theoretical value of the realized field, not a time-series estimate).
func (f *Field) SignificantWaveHeight() float64 {
	var variance float64
	for _, c := range f.comps {
		variance += c.amp * c.amp / 2
	}
	return 4 * math.Sqrt(variance)
}
