package ocean

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sid-wsn/sid/internal/geo"
)

// FieldConfig parametrizes a synthesized directional wave field.
type FieldConfig struct {
	// Spectrum supplies the 1-D energy density. Required.
	Spectrum Spectrum
	// NumFreqs components are drawn between MinFreq and MaxFreq.
	NumFreqs int
	// MinFreq and MaxFreq bound the discretization in Hz.
	MinFreq, MaxFreq float64
	// NumDirs directions are spread around MeanDir.
	NumDirs int
	// MeanDir is the dominant wave direction in radians.
	MeanDir float64
	// SpreadExp is the cosine-power spreading exponent s in
	// D(θ) ∝ cos^{2s}((θ−MeanDir)/2), dimensionless. Higher is narrower.
	//
	// 0 is a sentinel selecting the default of 1: an explicitly zero
	// exponent (perfectly isotropic spreading) is not representable —
	// use a small positive value such as 1e-9 to approximate it.
	// Negative values are rejected by NewField.
	SpreadExp float64
	// BuoyRadius models the hull's hydrodynamic low-pass response: a buoy
	// of radius r does not follow waves much shorter than its own size,
	// so each component's amplitude is scaled by exp(−(k·r)²). 0 disables
	// (an ideal point follower).
	BuoyRadius float64
	// Seed makes the random phases reproducible.
	Seed int64
}

func (c *FieldConfig) normalize() error {
	if c.Spectrum == nil {
		return fmt.Errorf("ocean: FieldConfig.Spectrum is required")
	}
	if c.NumFreqs == 0 {
		c.NumFreqs = 64
	}
	if c.NumFreqs < 1 {
		return fmt.Errorf("ocean: NumFreqs must be positive, got %d", c.NumFreqs)
	}
	if c.MinFreq == 0 && c.MaxFreq == 0 {
		fp := c.Spectrum.PeakFreq()
		c.MinFreq = fp / 4
		c.MaxFreq = fp * 5
	}
	if c.MinFreq <= 0 || c.MaxFreq <= c.MinFreq {
		return fmt.Errorf("ocean: need 0 < MinFreq < MaxFreq, got [%g, %g]", c.MinFreq, c.MaxFreq)
	}
	if c.NumDirs == 0 {
		c.NumDirs = 8
	}
	if c.NumDirs < 1 {
		return fmt.Errorf("ocean: NumDirs must be positive, got %d", c.NumDirs)
	}
	if c.SpreadExp == 0 {
		c.SpreadExp = 1
	}
	if c.SpreadExp < 0 {
		return fmt.Errorf("ocean: SpreadExp must be non-negative, got %g", c.SpreadExp)
	}
	if c.BuoyRadius < 0 {
		return fmt.Errorf("ocean: BuoyRadius must be non-negative, got %g", c.BuoyRadius)
	}
	return nil
}

// component is one deterministic wave train of the synthesized field.
type component struct {
	amp   float64 // amplitude in meters
	omega float64 // angular frequency rad/s
	kx    float64 // wavenumber x component rad/m
	ky    float64 // wavenumber y component rad/m
	phase float64 // random phase offset rad
}

// Field is a frozen random realization of a directional sea. It is safe for
// concurrent readers once constructed: none of its methods mutate state, so
// any number of goroutines may sample it simultaneously.
type Field struct {
	comps []component
	cfg   FieldConfig
}

// NewField draws a random realization of the configured sea. Construction
// is deterministic: the same FieldConfig (including Seed) always yields a
// bit-identical set of wave components.
func NewField(cfg FieldConfig) (*Field, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	df := (cfg.MaxFreq - cfg.MinFreq) / float64(cfg.NumFreqs)

	// Directional weights D(θ) ∝ cos^{2s}(Δθ/2), normalized to sum 1.
	dirs := make([]float64, cfg.NumDirs)
	weights := make([]float64, cfg.NumDirs)
	var wsum float64
	for j := range dirs {
		// Directions span ±90° around the mean direction.
		frac := 0.5
		if cfg.NumDirs > 1 {
			frac = float64(j) / float64(cfg.NumDirs-1)
		}
		d := -math.Pi/2 + frac*math.Pi
		dirs[j] = cfg.MeanDir + d
		w := math.Pow(math.Cos(d/2), 2*cfg.SpreadExp)
		weights[j] = w
		wsum += w
	}
	for j := range weights {
		weights[j] /= wsum
	}

	f := &Field{cfg: cfg, comps: make([]component, 0, cfg.NumFreqs*cfg.NumDirs)}
	for i := 0; i < cfg.NumFreqs; i++ {
		// Jitter the frequency within its bin to avoid periodic artifacts.
		freq := cfg.MinFreq + (float64(i)+rng.Float64())*df
		s := cfg.Spectrum.Density(freq)
		if s <= 0 {
			continue
		}
		omega := 2 * math.Pi * freq
		k := WavenumberFor(freq)
		hull := 1.0
		if cfg.BuoyRadius > 0 {
			kr := k * cfg.BuoyRadius
			hull = math.Exp(-kr * kr)
		}
		for j := 0; j < cfg.NumDirs; j++ {
			amp := hull * math.Sqrt(2*s*df*weights[j])
			if amp == 0 {
				continue
			}
			f.comps = append(f.comps, component{
				amp:   amp,
				omega: omega,
				kx:    k * math.Cos(dirs[j]),
				ky:    k * math.Sin(dirs[j]),
				phase: rng.Float64() * 2 * math.Pi,
			})
		}
	}
	return f, nil
}

// NumComponents returns the number of deterministic wave trains.
func (f *Field) NumComponents() int { return len(f.comps) }

// Elevation returns the sea-surface elevation η in meters at p and time t.
func (f *Field) Elevation(p geo.Vec2, t float64) float64 {
	var e float64
	for _, c := range f.comps {
		e += c.amp * math.Cos(c.kx*p.X+c.ky*p.Y-c.omega*t+c.phase)
	}
	return e
}

// VerticalAccel returns ∂²η/∂t² in m/s² at p and time t — what an ideal
// surface-following buoy's z accelerometer measures on top of gravity.
func (f *Field) VerticalAccel(p geo.Vec2, t float64) float64 {
	var a float64
	for _, c := range f.comps {
		a -= c.amp * c.omega * c.omega * math.Cos(c.kx*p.X+c.ky*p.Y-c.omega*t+c.phase)
	}
	return a
}

// Slope returns the surface gradient (∂η/∂x, ∂η/∂y) at p and time t; a
// floating buoy tilts with the local slope, which couples gravity into its
// x/y accelerometer axes.
func (f *Field) Slope(p geo.Vec2, t float64) geo.Vec2 {
	var sx, sy float64
	for _, c := range f.comps {
		s := -c.amp * math.Sin(c.kx*p.X+c.ky*p.Y-c.omega*t+c.phase)
		sx += s * c.kx
		sy += s * c.ky
	}
	return geo.Vec2{X: sx, Y: sy}
}

// SampleSurface returns the vertical acceleration and surface slope in a
// single pass over the components (the sensor samples both every tick;
// fusing the loops halves the dominant cost of large simulations).
func (f *Field) SampleSurface(p geo.Vec2, t float64) (accel float64, slope geo.Vec2) {
	for _, c := range f.comps {
		phase := c.kx*p.X + c.ky*p.Y - c.omega*t + c.phase
		sin, cos := math.Sincos(phase)
		accel -= c.amp * c.omega * c.omega * cos
		s := -c.amp * sin
		slope.X += s * c.kx
		slope.Y += s * c.ky
	}
	return accel, slope
}

// SurfaceSeries is a block of uniformly spaced surface samples at one fixed
// point, as produced by Field.SampleSeries. Slice s corresponds to time
// t0 + s·dt.
type SurfaceSeries struct {
	// Accel[s] is the vertical surface acceleration ∂²η/∂t² in m/s².
	Accel []float64
	// SlopeX and SlopeY are the surface gradient components ∂η/∂x and
	// ∂η/∂y (dimensionless).
	SlopeX, SlopeY []float64
}

// SampleSeries synthesizes n consecutive surface samples at the fixed point
// p, starting at time t0 with spacing dt seconds. It is the batched
// equivalent of calling SampleSurface at each instant, but advances every
// spectral component with a phasor-rotation recurrence — two multiplies and
// two adds per component per sample instead of a sin/cos evaluation — which
// makes it several times faster on long blocks.
//
// The result is deterministic: the same field, point, and time grid always
// produce bit-identical series, regardless of how many goroutines sample
// the field concurrently. The recurrence is resynchronized against the
// exact phase every resyncInterval samples, so it stays within a few ulps
// of the direct evaluation for blocks of any length.
func (f *Field) SampleSeries(p geo.Vec2, t0, dt float64, n int) SurfaceSeries {
	s := SurfaceSeries{
		Accel:  make([]float64, n),
		SlopeX: make([]float64, n),
		SlopeY: make([]float64, n),
	}
	f.AccumulateSeries(p, t0, dt, n, s.Accel, s.SlopeX, s.SlopeY)
	return s
}

// resyncInterval bounds the rounding drift of the phasor-rotation
// recurrence: after this many steps each component's phasor is recomputed
// exactly from its phase angle.
const resyncInterval = 512

// AccumulateSeries adds the field's contribution over a block of n samples
// (fixed point p, start time t0, spacing dt seconds) into the caller's
// buffers: accel in m/s², slopeX/slopeY dimensionless. All three buffers
// must have length ≥ n. It performs the same phasor-rotation synthesis as
// SampleSeries without allocating, so composite surface models can sum
// several sources into one block.
func (f *Field) AccumulateSeries(p geo.Vec2, t0, dt float64, n int, accel, slopeX, slopeY []float64) {
	f.AccumulateSeriesMoving(p, geo.Vec2{}, t0, dt, n, accel, slopeX, slopeY)
}

// AccumulateSeriesMoving is AccumulateSeries for an observer moving at
// constant velocity v (m/s) through the field: sample s is evaluated at
// position p0 + v·s·dt. A linearly moving observer only Doppler-shifts
// each component — the per-sample phase step becomes (k·v − ω)·dt, still a
// constant rotation — so the recurrence stays two multiplies per component
// per sample. The sensor layer uses this to track slow mooring drift
// within a block to second order instead of freezing the buoy position.
func (f *Field) AccumulateSeriesMoving(p0, v geo.Vec2, t0, dt float64, n int, accel, slopeX, slopeY []float64) {
	if n <= 0 {
		return
	}
	for i := range f.comps {
		c := &f.comps[i]
		// phase(s) = k·(p0 + v·s·dt) + φ − ω·(t0 + s·dt)
		//          = base + s·step,  step = (k·v − ω)·dt.
		base := c.kx*p0.X + c.ky*p0.Y + c.phase - c.omega*t0
		step := (c.kx*v.X + c.ky*v.Y - c.omega) * dt
		sinP, cosP := math.Sincos(base)
		sinD, cosD := math.Sincos(step)
		aw2 := c.amp * c.omega * c.omega
		for s := 0; s < n; s++ {
			if s > 0 && s%resyncInterval == 0 {
				sinP, cosP = math.Sincos(base + float64(s)*step)
			}
			accel[s] -= aw2 * cosP
			sl := -c.amp * sinP
			slopeX[s] += sl * c.kx
			slopeY[s] += sl * c.ky
			cosP, sinP = cosP*cosD-sinP*sinD, sinP*cosD+cosP*sinD
		}
	}
}

// SignificantWaveHeight estimates Hs = 4·ση from the component amplitudes
// (the theoretical value of the realized field, not a time-series estimate).
func (f *Field) SignificantWaveHeight() float64 {
	var variance float64
	for _, c := range f.comps {
		variance += c.amp * c.amp / 2
	}
	return 4 * math.Sqrt(variance)
}
