// Package ocean synthesizes the wind-driven ocean-wave environment the SID
// buoys float in. It stands in for the paper's sea-trial environment (the
// proprietary traces the repro band flags): a directional random sea built
// from a parametric wave spectrum, from which surface elevation, slope, and
// the vertical acceleration measured by a surface-following buoy can be
// evaluated at any point and time.
//
// The model is linear (Airy) wave superposition in deep water:
//
//	η(x, t)  = Σᵢ aᵢ·cos(kᵢ·x − ωᵢt + φᵢ)
//	η̈(x, t) = −Σᵢ aᵢωᵢ²·cos(kᵢ·x − ωᵢt + φᵢ)
//
// with ω² = g·k and component amplitudes drawn from a Pierson–Moskowitz or
// JONSWAP spectrum with cosine-power directional spreading.
package ocean

import (
	"fmt"
	"math"
)

// Gravity is the standard gravitational acceleration in m/s².
const Gravity = 9.81

// Spectrum is a one-dimensional wave-energy spectral density S(f) in m²/Hz.
type Spectrum interface {
	// Density returns S(f) at frequency f in Hz.
	Density(f float64) float64
	// PeakFreq returns the modal (peak) frequency in Hz.
	PeakFreq() float64
}

// PiersonMoskowitz is the fully-developed-sea spectrum in its
// significant-wave-height parametrization (Bretschneider form):
//
//	S(f) = (5/16)·Hs²·fp⁴·f⁻⁵·exp(−(5/4)·(fp/f)⁴)
type PiersonMoskowitz struct {
	// Hs is the significant wave height in meters.
	Hs float64
	// Tp is the peak wave period in seconds.
	Tp float64
}

// NewPiersonMoskowitz validates the parameters.
func NewPiersonMoskowitz(hs, tp float64) (*PiersonMoskowitz, error) {
	if hs <= 0 || tp <= 0 {
		return nil, fmt.Errorf("ocean: Hs and Tp must be positive, got %g, %g", hs, tp)
	}
	return &PiersonMoskowitz{Hs: hs, Tp: tp}, nil
}

// Density implements Spectrum.
func (s *PiersonMoskowitz) Density(f float64) float64 {
	if f <= 0 {
		return 0
	}
	fp := 1 / s.Tp
	r := fp / f
	r4 := r * r * r * r
	// fp⁴·f⁻⁵ is written as (fp/f)⁴/f to avoid overflow for tiny f.
	return (5.0 / 16.0) * s.Hs * s.Hs * (r4 / f) * math.Exp(-1.25*r4)
}

// PeakFreq implements Spectrum.
func (s *PiersonMoskowitz) PeakFreq() float64 { return 1 / s.Tp }

// JONSWAP is the fetch-limited sea spectrum: Pierson–Moskowitz with a peak
// enhancement factor γ^b. γ = 3.3 is the mean North Sea value.
type JONSWAP struct {
	Hs, Tp float64
	// Gamma is the peak-enhancement factor (1 reduces to PM; default 3.3).
	Gamma float64
}

// NewJONSWAP validates the parameters; gamma <= 0 selects the default 3.3.
func NewJONSWAP(hs, tp, gamma float64) (*JONSWAP, error) {
	if hs <= 0 || tp <= 0 {
		return nil, fmt.Errorf("ocean: Hs and Tp must be positive, got %g, %g", hs, tp)
	}
	if gamma <= 0 {
		gamma = 3.3
	}
	return &JONSWAP{Hs: hs, Tp: tp, Gamma: gamma}, nil
}

// Density implements Spectrum. The spectrum is normalized so that the
// integral matches Hs²/16 (the variance of a sea with significant wave
// height Hs) to within the accuracy of the standard normalization factor.
func (s *JONSWAP) Density(f float64) float64 {
	if f <= 0 {
		return 0
	}
	fp := 1 / s.Tp
	sigma := 0.07
	if f > fp {
		sigma = 0.09
	}
	r := fp / f
	r4 := r * r * r * r
	pm := (5.0 / 16.0) * s.Hs * s.Hs * (r4 / f) * math.Exp(-1.25*r4)
	d := (f - fp) / (sigma * fp)
	b := math.Exp(-0.5 * d * d)
	// Goda's normalization keeps total energy ≈ Hs²/16 as γ varies.
	norm := 1 - 0.287*math.Log(s.Gamma)
	return norm * pm * math.Pow(s.Gamma, b)
}

// PeakFreq implements Spectrum.
func (s *JONSWAP) PeakFreq() float64 { return 1 / s.Tp }

// SeaState describes standard sea conditions on the Douglas scale, used as
// presets for scenarios. State 2-3 matches the near-coast conditions of the
// paper's deployment.
type SeaState int

// Douglas sea states supported by the presets.
const (
	SeaCalm   SeaState = 1 // calm, rippled
	SeaSmooth SeaState = 2 // smooth, wavelets
	SeaSlight SeaState = 3 // slight
	SeaModest SeaState = 4 // moderate
	SeaRough  SeaState = 5 // rough
)

// Params returns representative (Hs, Tp) for the sea state.
func (s SeaState) Params() (hs, tp float64, err error) {
	switch s {
	case SeaCalm:
		return 0.05, 2.0, nil
	case SeaSmooth:
		return 0.2, 3.2, nil
	case SeaSlight:
		return 0.6, 4.8, nil
	case SeaModest:
		return 1.5, 6.5, nil
	case SeaRough:
		return 3.0, 8.5, nil
	default:
		return 0, 0, fmt.Errorf("ocean: unsupported sea state %d", int(s))
	}
}

// String implements fmt.Stringer.
func (s SeaState) String() string {
	switch s {
	case SeaCalm:
		return "calm"
	case SeaSmooth:
		return "smooth"
	case SeaSlight:
		return "slight"
	case SeaModest:
		return "moderate"
	case SeaRough:
		return "rough"
	default:
		return fmt.Sprintf("SeaState(%d)", int(s))
	}
}

// Deep-water dispersion helpers.

// WavenumberFor returns k = (2πf)²/g for deep water.
func WavenumberFor(f float64) float64 {
	w := 2 * math.Pi * f
	return w * w / Gravity
}

// PhaseSpeedFor returns the deep-water phase speed c = g/(2πf).
func PhaseSpeedFor(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return Gravity / (2 * math.Pi * f)
}

// FreqForPhaseSpeed inverts PhaseSpeedFor: the frequency of the deep-water
// wave whose phase speed is c.
func FreqForPhaseSpeed(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return Gravity / (2 * math.Pi * c)
}
