// Package fault is the deterministic chaos harness for the WSN layer: it
// drives scheduled node crashes and revivals, battery depletion, clock
// desynchronization steps, and a Gilbert–Elliott burst-loss channel from
// the discrete-event clock and the simulation's seeded RNG streams. The
// same plan on the same seed reproduces the same failure sequence exactly,
// so every resilience experiment — and every regression test asserting on
// one — is replayable bit for bit (the same contract internal/sim gives
// the fault-free runs).
//
// Plans are pure data; Apply schedules them onto a deployed network. The
// SID runtime applies Config.Faults at construction, and the public facade
// exposes the same plan shape, so any scenario can run under faults.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/sid-wsn/sid/internal/wsn"
)

// Crash takes a node down at a scheduled time, optionally reviving it.
type Crash struct {
	// Node is the victim's ID.
	Node int
	// At is the crash time in simulation seconds.
	At float64
	// ReviveAt restores the node when > At; 0 (or any value ≤ At) means
	// the crash is permanent.
	ReviveAt float64
}

// Depletion empties a node's battery at a scheduled time. Nodes without a
// battery (mains-powered) are crashed permanently instead — the grid went
// down and there is no cell to recover.
type Depletion struct {
	Node int
	At   float64
}

// ClockStep knocks a node's clock by a fixed offset at a scheduled time
// (reboot glitches, temperature steps): the time-sync error the speed
// estimator has to survive.
type ClockStep struct {
	Node int
	At   float64
	// Offset is added to the node's clock offset, in seconds.
	Offset float64
}

// BurstLoss parametrizes a two-state continuous-time Gilbert–Elliott
// channel: the radio alternates between a good and a bad state with
// exponentially distributed sojourn times, and frames are lost with a
// state-dependent probability. Bursts are what defeat blind same-instant
// retries — and what the reliable transport's backoff is for.
type BurstLoss struct {
	// MeanGoodS, MeanBadS are the mean sojourn times in seconds.
	MeanGoodS, MeanBadS float64
	// LossGood, LossBad are per-frame loss probabilities in each state.
	LossGood, LossBad float64
}

// MeanLoss returns the long-run average frame-loss probability.
func (b BurstLoss) MeanLoss() float64 {
	total := b.MeanGoodS + b.MeanBadS
	if total <= 0 {
		return 0
	}
	return (b.MeanGoodS*b.LossGood + b.MeanBadS*b.LossBad) / total
}

func (b BurstLoss) validate() error {
	if b.MeanGoodS <= 0 {
		return fmt.Errorf("fault: Burst.MeanGoodS = %g, must be positive", b.MeanGoodS)
	}
	if b.MeanBadS <= 0 {
		return fmt.Errorf("fault: Burst.MeanBadS = %g, must be positive", b.MeanBadS)
	}
	if b.LossGood < 0 || b.LossGood >= 1 {
		return fmt.Errorf("fault: Burst.LossGood = %g, must be in [0,1)", b.LossGood)
	}
	if b.LossBad < 0 || b.LossBad > 1 {
		return fmt.Errorf("fault: Burst.LossBad = %g, must be in [0,1]", b.LossBad)
	}
	return nil
}

// Plan is a complete, declarative fault schedule. The zero value is the
// empty plan (no faults).
type Plan struct {
	Crashes    []Crash
	Depletions []Depletion
	ClockSteps []ClockStep
	// Burst replaces the radio's Bernoulli loss with a Gilbert–Elliott
	// burst channel for the whole run when non-nil.
	Burst *BurstLoss
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Depletions) == 0 && len(p.ClockSteps) == 0 && p.Burst == nil
}

// Validate checks the plan against a network of n nodes. Error messages
// name the offending entry by slice, index and field (e.g.
// "Crashes[2].Node") so a rejected hand-written plan is correctable
// without a debugger.
func (p Plan) Validate(n int) error {
	entry := func(list string, i, node int, at float64) error {
		if node < 0 || node >= n {
			return fmt.Errorf("fault: %s[%d].Node = %d, outside [0,%d)", list, i, node, n)
		}
		if at < 0 {
			return fmt.Errorf("fault: %s[%d].At = %g, must be ≥ 0", list, i, at)
		}
		return nil
	}
	for i, c := range p.Crashes {
		if err := entry("Crashes", i, c.Node, c.At); err != nil {
			return err
		}
	}
	for i, d := range p.Depletions {
		if err := entry("Depletions", i, d.Node, d.At); err != nil {
			return err
		}
	}
	for i, s := range p.ClockSteps {
		if err := entry("ClockSteps", i, s.Node, s.At); err != nil {
			return err
		}
	}
	if p.Burst != nil {
		return p.Burst.validate()
	}
	return nil
}

// Apply validates the plan and schedules every fault onto the network's
// event queue. Events are scheduled in a canonical order (crashes,
// depletions, clock steps, each in slice order), so two identical plans
// enqueue identically and runs stay bit-identical. Call once, before
// running the scheduler past the earliest fault time.
func Apply(p Plan, net *wsn.Network) error {
	if err := p.Validate(net.NumNodes()); err != nil {
		return err
	}
	sched := net.Sched
	for _, c := range p.Crashes {
		n := net.MustNode(wsn.NodeID(c.Node))
		if err := sched.Schedule(c.At, n.Fail); err != nil {
			return err
		}
		if c.ReviveAt > c.At {
			if err := sched.Schedule(c.ReviveAt, n.Revive); err != nil {
				return err
			}
		}
	}
	for _, d := range p.Depletions {
		n := net.MustNode(wsn.NodeID(d.Node))
		err := sched.Schedule(d.At, func() {
			if n.Battery != nil {
				n.Battery.Deplete()
			} else {
				n.Fail()
			}
		})
		if err != nil {
			return err
		}
	}
	for _, s := range p.ClockSteps {
		n := net.MustNode(wsn.NodeID(s.Node))
		offset := s.Offset
		if err := sched.Schedule(s.At, func() { n.Clock.Adjust(offset) }); err != nil {
			return err
		}
	}
	if p.Burst != nil {
		ch := newGilbertElliott(*p.Burst, sched.RNG("fault.burst"))
		net.SetLossModel(ch.lossy)
	}
	return nil
}

// gilbertElliott is the lazily-advanced continuous-time two-state channel.
// State flips are drawn once, in query order, from a dedicated stream;
// because every query happens at a deterministic event time, the whole
// loss sequence is reproducible.
type gilbertElliott struct {
	cfg      BurstLoss
	rng      *rand.Rand
	bad      bool
	nextFlip float64
}

func newGilbertElliott(cfg BurstLoss, rng *rand.Rand) *gilbertElliott {
	g := &gilbertElliott{cfg: cfg, rng: rng}
	g.nextFlip = rng.ExpFloat64() * cfg.MeanGoodS
	return g
}

// lossy advances the channel to now and draws one frame-loss decision.
func (g *gilbertElliott) lossy(now float64) bool {
	for now >= g.nextFlip {
		g.bad = !g.bad
		mean := g.cfg.MeanGoodS
		if g.bad {
			mean = g.cfg.MeanBadS
		}
		g.nextFlip += g.rng.ExpFloat64() * mean
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	return g.rng.Float64() < p
}

// CrashFraction returns a plan crashing frac of the n nodes (rounded down)
// at staggered times starting at t0, spaced gap seconds apart, never
// touching the protected IDs (e.g. the sink). Victims are chosen by a
// deterministic hash of (seed, index), so the same arguments always pick
// the same nodes — a convenience for sweeps that want "kill 12% of the
// field mid-collection" without hand-listing IDs.
func CrashFraction(n int, frac float64, t0, gap float64, seed int64, protected ...int) Plan {
	count := int(frac * float64(n))
	if count <= 0 {
		return Plan{}
	}
	prot := make(map[int]bool, len(protected))
	for _, id := range protected {
		prot[id] = true
	}
	type scored struct {
		id   int
		hash uint64
	}
	var order []scored
	for id := 0; id < n; id++ {
		if prot[id] {
			continue
		}
		h := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(seed)*0xbf58476d1ce4e5b9
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		h ^= h >> 32
		order = append(order, scored{id, h})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].hash != order[j].hash {
			return order[i].hash < order[j].hash
		}
		return order[i].id < order[j].id
	})
	if count > len(order) {
		count = len(order)
	}
	var p Plan
	for i := 0; i < count; i++ {
		p.Crashes = append(p.Crashes, Crash{Node: order[i].id, At: t0 + float64(i)*gap})
	}
	return p
}
