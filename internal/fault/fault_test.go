package fault

import (
	"math"
	"strings"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sim"
	"github.com/sid-wsn/sid/internal/wsn"
)

func testNet(t *testing.T, seed int64) (*wsn.Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(seed)
	positions := geo.GridSpec{Rows: 2, Cols: 3, Spacing: 25}.Positions()
	radio := wsn.DefaultRadioConfig()
	radio.LossProb = 0
	net, err := wsn.NewNetwork(sched, positions, radio)
	if err != nil {
		t.Fatal(err)
	}
	return net, sched
}

// TestPlanValidation walks every rejection path and pins the diagnostic:
// each message must carry the offending slice, entry index and field name
// so a rejected hand-written plan is correctable on sight. The network has
// 6 nodes (2×3 grid).
func TestPlanValidation(t *testing.T) {
	net, _ := testNet(t, 1)
	cases := []struct {
		name string
		plan Plan
		want string // substring the error must contain
	}{
		{"crash node too high", Plan{Crashes: []Crash{{Node: 99, At: 1}}}, "Crashes[0].Node = 99"},
		{"crash node negative", Plan{Crashes: []Crash{{Node: 0, At: 1}, {Node: -1, At: 1}}}, "Crashes[1].Node = -1"},
		{"crash negative time", Plan{Crashes: []Crash{{Node: 0, At: -1}}}, "Crashes[0].At = -1"},
		{"depletion node out of range", Plan{Depletions: []Depletion{{Node: -1, At: 1}}}, "Depletions[0].Node = -1"},
		{"depletion negative time", Plan{Depletions: []Depletion{{Node: 2, At: 1}, {Node: 3, At: -0.5}}}, "Depletions[1].At = -0.5"},
		{"clock step node out of range", Plan{ClockSteps: []ClockStep{{Node: 6, At: 1}}}, "ClockSteps[0].Node = 6"},
		{"clock step negative time", Plan{ClockSteps: []ClockStep{{Node: 1, At: -2}}}, "ClockSteps[0].At = -2"},
		{"burst zero good sojourn", Plan{Burst: &BurstLoss{MeanGoodS: 0, MeanBadS: 1}}, "Burst.MeanGoodS = 0"},
		{"burst zero bad sojourn", Plan{Burst: &BurstLoss{MeanGoodS: 1, MeanBadS: 0}}, "Burst.MeanBadS = 0"},
		{"burst good loss at one", Plan{Burst: &BurstLoss{MeanGoodS: 1, MeanBadS: 1, LossGood: 1.0}}, "Burst.LossGood = 1"},
		{"burst good loss negative", Plan{Burst: &BurstLoss{MeanGoodS: 1, MeanBadS: 1, LossGood: -0.1}}, "Burst.LossGood = -0.1"},
		{"burst bad loss above one", Plan{Burst: &BurstLoss{MeanGoodS: 1, MeanBadS: 1, LossBad: 1.5}}, "Burst.LossBad = 1.5"},
		{"burst bad loss negative", Plan{Burst: &BurstLoss{MeanGoodS: 1, MeanBadS: 1, LossBad: -1}}, "Burst.LossBad = -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Apply(tc.plan, net)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending field (want substring %q)", err, tc.want)
			}
		})
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if err := Apply(Plan{}, net); err != nil {
		t.Errorf("empty plan: %v", err)
	}
	// Boundary values that must be accepted.
	good := Plan{
		Crashes:    []Crash{{Node: 5, At: 0}},
		Depletions: []Depletion{{Node: 0, At: 0}},
		ClockSteps: []ClockStep{{Node: 0, At: 0, Offset: -3}},
		Burst:      &BurstLoss{MeanGoodS: 1, MeanBadS: 1, LossGood: 0, LossBad: 1},
	}
	if err := good.Validate(net.NumNodes()); err != nil {
		t.Errorf("boundary plan rejected: %v", err)
	}
}

func TestCrashAndRevive(t *testing.T) {
	net, sched := testNet(t, 2)
	plan := Plan{Crashes: []Crash{{Node: 3, At: 1.0, ReviveAt: 2.0}}}
	if err := Apply(plan, net); err != nil {
		t.Fatal(err)
	}
	probe := func(at float64, wantAlive bool) {
		if err := sched.Schedule(at, func() {
			if got := net.MustNode(3).Alive(); got != wantAlive {
				t.Errorf("t=%g: alive=%v, want %v", at, got, wantAlive)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	probe(0.5, true)
	probe(1.5, false)
	probe(2.5, true)
	sched.RunAll()
}

func TestDepletionKillsBatteryNode(t *testing.T) {
	net, sched := testNet(t, 3)
	b, err := wsn.NewBattery(10, wsn.DefaultEnergyConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.MustNode(2).Battery = b
	plan := Plan{Depletions: []Depletion{{Node: 2, At: 1.0}, {Node: 4, At: 1.0}}}
	if err := Apply(plan, net); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if !b.Empty() {
		t.Errorf("battery remaining %g after depletion", b.Remaining())
	}
	if net.MustNode(2).Alive() {
		t.Error("depleted battery node still alive")
	}
	if net.MustNode(4).Alive() {
		t.Error("depleted batteryless node still alive")
	}
	// A revive cannot resurrect an empty battery.
	net.MustNode(2).Revive()
	if net.MustNode(2).Alive() {
		t.Error("revive resurrected a node with an empty battery")
	}
}

func TestClockStepShiftsLocalTime(t *testing.T) {
	net, sched := testNet(t, 4)
	before := net.MustNode(1).Clock.Local(5.0)
	plan := Plan{ClockSteps: []ClockStep{{Node: 1, At: 1.0, Offset: 0.25}}}
	if err := Apply(plan, net); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	after := net.MustNode(1).Clock.Local(5.0)
	if math.Abs((after-before)-0.25) > 1e-12 {
		t.Errorf("clock step moved local time by %g, want 0.25", after-before)
	}
}

func TestGilbertElliottStatistics(t *testing.T) {
	// Sample the channel on a regular grid and check the empirical loss
	// rate tracks MeanLoss, and that losses are burstier than Bernoulli:
	// P(loss | previous loss) must exceed the marginal rate.
	cfg := BurstLoss{MeanGoodS: 1.0, MeanBadS: 0.25, LossGood: 0.02, LossBad: 0.9}
	sched := sim.NewScheduler(7)
	g := newGilbertElliott(cfg, sched.RNG("fault.burst"))
	const samples = 200000
	const dt = 0.01
	losses, pairs, pairLosses := 0, 0, 0
	prev := false
	for i := 0; i < samples; i++ {
		lost := g.lossy(float64(i) * dt)
		if lost {
			losses++
		}
		if prev {
			pairs++
			if lost {
				pairLosses++
			}
		}
		prev = lost
	}
	rate := float64(losses) / samples
	want := cfg.MeanLoss()
	if math.Abs(rate-want) > 0.02 {
		t.Errorf("empirical loss rate %.4f, analytic mean %.4f", rate, want)
	}
	condRate := float64(pairLosses) / float64(pairs)
	if condRate < rate+0.2 {
		t.Errorf("P(loss|loss)=%.3f not burstier than marginal %.3f", condRate, rate)
	}
}

func TestBurstInstallsLossModel(t *testing.T) {
	// An always-bad burst channel must black out a lossless radio.
	net, sched := testNet(t, 8)
	plan := Plan{Burst: &BurstLoss{MeanGoodS: 1e-9, MeanBadS: 1e9, LossGood: 0, LossBad: 1}}
	if err := Apply(plan, net); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	net.MustNode(1).OnMessage = func(n *wsn.Node, msg wsn.Message) { delivered++ }
	for i := 0; i < 20; i++ {
		i := i
		// Send after the (vanishing) initial good sojourn has elapsed.
		if err := sched.Schedule(0.01*float64(i+1), func() {
			_ = net.Unicast(0, 1, "x", i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunAll()
	if delivered != 0 {
		t.Errorf("delivered %d frames through an always-bad channel", delivered)
	}
	if net.Stats().Lost == 0 {
		t.Error("loss counter untouched")
	}
}

func TestCrashFractionDeterministicAndProtected(t *testing.T) {
	p1 := CrashFraction(50, 0.2, 10, 0.5, 42, 0)
	p2 := CrashFraction(50, 0.2, 10, 0.5, 42, 0)
	if len(p1.Crashes) != 10 {
		t.Fatalf("crashes = %d, want 10", len(p1.Crashes))
	}
	for i := range p1.Crashes {
		if p1.Crashes[i] != p2.Crashes[i] {
			t.Fatalf("crash %d differs between identical calls: %+v vs %+v", i, p1.Crashes[i], p2.Crashes[i])
		}
		if p1.Crashes[i].Node == 0 {
			t.Error("protected node 0 was crashed")
		}
	}
	p3 := CrashFraction(50, 0.2, 10, 0.5, 43, 0)
	same := true
	for i := range p1.Crashes {
		if p1.Crashes[i].Node != p3.Crashes[i].Node {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked identical victims")
	}
	if len(CrashFraction(50, 0, 10, 0.5, 42).Crashes) != 0 {
		t.Error("zero fraction should crash nobody")
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	// Two identical runs under the same plan must produce identical
	// network statistics.
	run := func() wsn.Stats {
		net, sched := testNet(t, 11)
		radio := wsn.DefaultRadioConfig()
		plan := Plan{
			Crashes: []Crash{{Node: 4, At: 0.5, ReviveAt: 1.5}},
			Burst:   &BurstLoss{MeanGoodS: 0.5, MeanBadS: 0.1, LossGood: 0.05, LossBad: 0.8},
		}
		_ = radio
		if err := Apply(plan, net); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			at := 0.01 * float64(i)
			if err := sched.Schedule(at, func() {
				_ = net.SendMultiHop(0, 5, "probe", at)
			}); err != nil {
				t.Fatal(err)
			}
		}
		sched.RunAll()
		return net.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical fault plans diverged:\n%+v\n%+v", a, b)
	}
}
