package wsn

import (
	"fmt"
	"math"
)

// Time synchronization: a TPSN-style two-way message exchange run level by
// level down the routing tree. Each child sends a request stamped with its
// local time t1; the parent receives it at its local t2 and replies at t3;
// the child receives the reply at its local t4 and estimates the clock
// offset to its parent as ((t2−t1)+(t3−t4))/2, which cancels the symmetric
// part of the link delay. Asymmetric MAC jitter leaves a millisecond-scale
// residual that accumulates with tree depth — the realistic sync precision
// the SID speed estimator has to live with.

const (
	kindSyncReq  = "_sync.req"
	kindSyncResp = "_sync.resp"
)

type syncReq struct {
	T1 float64 // child's local send time
}

type syncResp struct {
	T1 float64 // echoed from the request
	T2 float64 // parent's local receive time
	T3 float64 // parent's local send time
}

// EnableTimeSync registers the sync protocol handlers on every node.
// It must be called once before StartTimeSync.
func (w *Network) EnableTimeSync() {
	for _, n := range w.nodes {
		node := n
		node.RegisterProtocol(kindSyncReq, func(parent *Node, msg Message) {
			req, ok := msg.Payload.(syncReq)
			if !ok {
				return
			}
			t2 := parent.Now()
			// Reply immediately; t3 == t2 up to CPU time we fold into the
			// link delay model.
			resp := syncResp{T1: req.T1, T2: t2, T3: parent.Now()}
			_ = w.Unicast(parent.ID, msg.Src, kindSyncResp, resp)
		})
		node.RegisterProtocol(kindSyncResp, func(child *Node, msg Message) {
			resp, ok := msg.Payload.(syncResp)
			if !ok {
				return
			}
			t4 := child.Now()
			offset := ((resp.T2 - resp.T1) + (resp.T3 - t4)) / 2
			child.Clock.Adjust(offset)
		})
	}
}

// StartTimeSync schedules one synchronization wave over the tree: nodes at
// depth d initiate their exchange at now + d·levelGap, so parents are
// already synchronized when their children sync to them. Run the scheduler
// afterwards to execute the wave; it completes by now + (maxDepth+1)·levelGap.
// Returns the depth of the tree.
func (w *Network) StartTimeSync(t *Tree, levelGap float64) (int, error) {
	if levelGap <= 0 {
		return 0, fmt.Errorf("wsn: levelGap must be positive, got %g", levelGap)
	}
	maxDepth := 0
	for id, hops := range t.Hops {
		if hops <= 0 {
			continue
		}
		if hops > maxDepth {
			maxDepth = hops
		}
		nid := NodeID(id)
		at := w.Sched.Now() + float64(hops)*levelGap
		err := w.Sched.Schedule(at, func() {
			child := w.nodes[nid]
			if !child.Alive() {
				return
			}
			req := syncReq{T1: child.Now()}
			_ = w.Unicast(nid, t.Parent[nid], kindSyncReq, req)
		})
		if err != nil {
			return 0, err
		}
	}
	return maxDepth, nil
}

// ClockResiduals returns each node's clock error (local − true) at the
// current simulation time; index = node ID.
func (w *Network) ClockResiduals() []float64 {
	now := w.Sched.Now()
	out := make([]float64, len(w.nodes))
	for i, n := range w.nodes {
		out[i] = n.Clock.Local(now) - now
	}
	return out
}

// SyncRMS summarizes residuals relative to the root's clock (what matters
// for comparing timestamps between nodes): the RMS of (nodeᵢ − root).
func (w *Network) SyncRMS(root NodeID) float64 {
	res := w.ClockResiduals()
	if int(root) < 0 || int(root) >= len(res) {
		return math.NaN()
	}
	ref := res[root]
	var s float64
	n := 0
	for i, r := range res {
		if NodeID(i) == root || !w.nodes[i].Alive() {
			continue
		}
		d := r - ref
		s += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}
