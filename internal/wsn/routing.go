package wsn

import "fmt"

// Tree is a BFS routing tree rooted at the sink: every alive, connected
// node knows its parent toward the root and its hop count. The sink-level
// reporting path of §IV-A ("the final decision will be reported to the
// external user") runs over this tree.
type Tree struct {
	Root   NodeID
	Parent []NodeID // Parent[i] = next hop toward root; root's parent is itself
	Hops   []int    // Hops[i] = hop distance to root; -1 if unreachable
}

// BuildTree computes a BFS tree over the current connectivity graph,
// skipping dead nodes.
func (w *Network) BuildTree(root NodeID) (*Tree, error) {
	r, err := w.Node(root)
	if err != nil {
		return nil, err
	}
	if !r.Alive() {
		return nil, fmt.Errorf("wsn: tree root %d is dead", root)
	}
	t := &Tree{
		Root:   root,
		Parent: make([]NodeID, len(w.nodes)),
		Hops:   make([]int, len(w.nodes)),
	}
	for i := range t.Hops {
		t.Hops[i] = -1
		t.Parent[i] = -1
	}
	t.Hops[root] = 0
	t.Parent[root] = root
	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range w.Neighbors(cur) {
			if !w.nodes[nb].Alive() || t.Hops[nb] != -1 {
				continue
			}
			t.Hops[nb] = t.Hops[cur] + 1
			t.Parent[nb] = cur
			queue = append(queue, nb)
		}
	}
	return t, nil
}

// PathToRoot returns the node sequence from id to the root (inclusive), or
// an error if id is disconnected.
func (t *Tree) PathToRoot(id NodeID) ([]NodeID, error) {
	if int(id) < 0 || int(id) >= len(t.Hops) {
		return nil, fmt.Errorf("wsn: no node %d in tree", id)
	}
	if t.Hops[id] < 0 {
		return nil, fmt.Errorf("wsn: node %d unreachable from root %d", id, t.Root)
	}
	path := []NodeID{id}
	for id != t.Root {
		id = t.Parent[id]
		path = append(path, id)
	}
	return path, nil
}

// SendToRoot forwards a message hop by hop along the tree with link-layer
// retries at each hop. Delivery is asynchronous; the returned error covers
// only immediate failures (disconnection).
func (w *Network) SendToRoot(t *Tree, from NodeID, kind string, payload interface{}) error {
	return w.SendToRootTraced(t, from, kind, payload, "")
}

// SendToRootTraced is SendToRoot with a detection-trace wire key stamped
// into the frame so the reliable transport's retransmission/drop spans
// attach to the detection's trace. An empty trace is exactly SendToRoot.
func (w *Network) SendToRootTraced(t *Tree, from NodeID, kind string, payload interface{}, trace string) error {
	path, err := t.PathToRoot(from)
	if err != nil {
		return err
	}
	if len(path) == 1 {
		// Already at the root: deliver locally.
		root := w.nodes[t.Root]
		msg := Message{Seq: w.NextSeq(), Kind: kind, Src: from, From: from, To: t.Root, Trace: trace, Payload: payload}
		w.deliver(root, msg)
		return nil
	}
	msg := Message{Seq: w.NextSeq(), Kind: kind, Src: from, To: t.Root, Trace: trace, Payload: payload}
	w.forwardAlongTree(t, w.nodes[from], msg)
	return nil
}

// forwardAlongTree sends one hop toward the root and chains the next hop in
// the receiving node's delivery path. Interior hops deliver only at the
// destination.
func (w *Network) forwardAlongTree(t *Tree, cur *Node, msg Message) {
	if cur.ID == t.Root {
		w.deliver(cur, msg)
		return
	}
	parent := t.Parent[cur.ID]
	if parent < 0 {
		return
	}
	next := w.nodes[parent]
	cont := func(n *Node, m Message) { w.forwardAlongTree(t, n, m) }
	if w.Radio.Reliable.Enabled {
		w.sendReliable(cur, next, msg, cont)
		return
	}
	// Blind link-layer retries.
	sent := false
	for attempt := 0; attempt <= w.Radio.Retries && !sent; attempt++ {
		sent = w.transmitRelay(cur, next, msg, cont)
	}
}

// transmitRelay is transmit with a custom continuation instead of handler
// delivery, used for multi-hop forwarding.
func (w *Network) transmitRelay(from, to *Node, msg Message, cont func(*Node, Message)) bool {
	if !from.Alive() {
		return false
	}
	w.ctr.sent.Inc()
	if from.Battery != nil {
		from.Battery.Consume(CostTx)
	}
	if w.lossy() {
		w.ctr.lost.Inc()
		return false
	}
	msg.From = from.ID
	toEpoch := to.epoch
	_ = w.Sched.After(w.frameDelay(), func() {
		if !to.Alive() || to.epoch != toEpoch {
			return
		}
		if to.Battery != nil {
			to.Battery.Consume(CostRx)
		}
		cont(to, msg)
	})
	return true
}

// SendMultiHop forwards a message from -> to along a shortest path over
// alive nodes (BFS at send time), with link-layer retries per hop. Interior
// nodes relay without delivering; only the destination's handler runs.
// Used by cluster members to reach a temporary cluster head several hops
// away.
func (w *Network) SendMultiHop(from, to NodeID, kind string, payload interface{}) error {
	return w.SendMultiHopTraced(from, to, kind, payload, "")
}

// SendMultiHopTraced is SendMultiHop with a detection-trace wire key
// stamped into the frame (see SendToRootTraced).
func (w *Network) SendMultiHopTraced(from, to NodeID, kind string, payload interface{}, trace string) error {
	src, err := w.Node(from)
	if err != nil {
		return err
	}
	dst, err := w.Node(to)
	if err != nil {
		return err
	}
	if from == to {
		msg := Message{Seq: w.NextSeq(), Kind: kind, Src: from, From: from, To: to, Trace: trace, Payload: payload}
		w.deliver(dst, msg)
		return nil
	}
	path := w.shortestPath(from, to)
	if path == nil {
		return fmt.Errorf("wsn: no path %d -> %d", from, to)
	}
	msg := Message{Seq: w.NextSeq(), Kind: kind, Src: from, To: to, Trace: trace, Payload: payload}
	w.relayAlongPath(path, 0, src, msg)
	return nil
}

// relayAlongPath forwards msg from path[idx] to path[idx+1] and continues
// recursively at delivery time.
func (w *Network) relayAlongPath(path []NodeID, idx int, cur *Node, msg Message) {
	if cur.ID == path[len(path)-1] {
		w.deliver(cur, msg)
		return
	}
	next := w.nodes[path[idx+1]]
	cont := func(n *Node, m Message) { w.relayAlongPath(path, idx+1, n, m) }
	if w.Radio.Reliable.Enabled {
		w.sendReliable(cur, next, msg, cont)
		return
	}
	sent := false
	for attempt := 0; attempt <= w.Radio.Retries && !sent; attempt++ {
		sent = w.transmitRelay(cur, next, msg, cont)
	}
}

// shortestPath returns a BFS path from a to b over alive nodes, inclusive,
// or nil if disconnected.
func (w *Network) shortestPath(a, b NodeID) []NodeID {
	prev := make([]NodeID, len(w.nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []NodeID{a}
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range w.Neighbors(cur) {
			if !w.nodes[nb].Alive() || prev[nb] != -1 {
				continue
			}
			prev[nb] = cur
			if nb == b {
				found = true
				break
			}
			queue = append(queue, nb)
		}
	}
	if !found {
		return nil
	}
	var rev []NodeID
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path
}

// HopDistance returns the minimum hop count between two nodes over alive
// nodes, or -1 if disconnected.
func (w *Network) HopDistance(a, b NodeID) int {
	if int(a) < 0 || int(a) >= len(w.nodes) || int(b) < 0 || int(b) >= len(w.nodes) {
		return -1
	}
	if a == b {
		return 0
	}
	dist := make([]int, len(w.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range w.Neighbors(cur) {
			if !w.nodes[nb].Alive() || dist[nb] != -1 {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == b {
				return dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return -1
}

// NodesWithinHops returns all alive nodes within maxHops of center
// (excluding center itself), the membership rule for temporary clusters.
func (w *Network) NodesWithinHops(center NodeID, maxHops int) []NodeID {
	if int(center) < 0 || int(center) >= len(w.nodes) || maxHops <= 0 {
		return nil
	}
	dist := make([]int, len(w.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[center] = 0
	queue := []NodeID{center}
	var out []NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= maxHops {
			continue
		}
		for _, nb := range w.Neighbors(cur) {
			if !w.nodes[nb].Alive() || dist[nb] != -1 {
				continue
			}
			dist[nb] = dist[cur] + 1
			out = append(out, nb)
			queue = append(queue, nb)
		}
	}
	return out
}
