package wsn

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/geo"
)

// Multi-level root selection: large fields cannot funnel every report
// through one collection root, so the protocol layer partitions the
// deployment into sub-clusters around k aggregation roots. SelectRoots picks
// the roots deterministically; BuildForest assigns every node to its nearest
// root by hop distance. Both are pure functions of the connectivity graph
// and liveness at call time.

// Forest is the multi-root analogue of Tree: a disjoint set of BFS trees,
// one per root, with every alive reachable node assigned to its hop-nearest
// root (ties broken toward the earliest root in Roots order — deterministic
// for a deterministic root slice).
type Forest struct {
	Roots []NodeID
	// Root[i] is node i's assigned root, -1 if unreachable or dead.
	Root []NodeID
	// Parent[i] is the next hop toward Root[i]; a root's parent is itself.
	Parent []NodeID
	// Hops[i] is the hop distance to Root[i], -1 if unreachable.
	Hops []int
}

// SelectRoots picks k aggregation roots over the alive nodes by
// farthest-point sampling on Euclidean position: the first root is the
// alive node nearest the deployment centroid (ties: lowest ID), each
// subsequent root the alive node farthest from all chosen roots (ties:
// lowest ID). The result is sorted ascending — deterministic regardless of
// map/iteration internals — and capped at the number of alive nodes.
func (w *Network) SelectRoots(k int) []NodeID {
	if k < 1 {
		k = 1
	}
	var alive []*Node
	for _, n := range w.nodes {
		if n.Alive() {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	if k > len(alive) {
		k = len(alive)
	}
	var cx, cy float64
	for _, n := range alive {
		cx += n.Pos.X
		cy += n.Pos.Y
	}
	cx /= float64(len(alive))
	cy /= float64(len(alive))
	centroid := geo.Vec2{X: cx, Y: cy}
	best, bestD := alive[0], alive[0].Pos.Dist(centroid)
	for _, n := range alive[1:] {
		if d := n.Pos.Dist(centroid); d < bestD {
			best, bestD = n, d
		}
	}
	roots := []NodeID{best.ID}
	// minDist[i] tracks each alive node's distance to its nearest chosen root.
	minDist := make(map[NodeID]float64, len(alive))
	for _, n := range alive {
		minDist[n.ID] = n.Pos.Dist(best.Pos)
	}
	for len(roots) < k {
		var far *Node
		farD := -1.0
		// alive is in ascending ID order, so a strict > keeps the lowest ID
		// among equidistant candidates.
		for _, n := range alive {
			if d := minDist[n.ID]; d > farD {
				far, farD = n, d
			}
		}
		if far == nil || farD <= 0 {
			break // every alive node already is (or coincides with) a root
		}
		roots = append(roots, far.ID)
		for _, n := range alive {
			if d := n.Pos.Dist(far.Pos); d < minDist[n.ID] {
				minDist[n.ID] = d
			}
		}
	}
	sortNodeIDs(roots)
	return roots
}

// BuildForest runs a multi-source BFS from the given roots over the alive
// connectivity graph: every reachable node joins the tree of its
// hop-nearest root, with ties resolved by BFS arrival order — roots are
// seeded in slice order, and neighbor expansion is deterministic, so the
// assignment is a pure function of (roots, graph, liveness).
func (w *Network) BuildForest(roots []NodeID) (*Forest, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("wsn: forest needs at least one root")
	}
	f := &Forest{
		Roots:  append([]NodeID(nil), roots...),
		Root:   make([]NodeID, len(w.nodes)),
		Parent: make([]NodeID, len(w.nodes)),
		Hops:   make([]int, len(w.nodes)),
	}
	for i := range f.Hops {
		f.Root[i] = -1
		f.Parent[i] = -1
		f.Hops[i] = -1
	}
	var queue []NodeID
	for _, root := range roots {
		r, err := w.Node(root)
		if err != nil {
			return nil, err
		}
		if !r.Alive() {
			return nil, fmt.Errorf("wsn: forest root %d is dead", root)
		}
		if f.Hops[root] != -1 {
			return nil, fmt.Errorf("wsn: duplicate forest root %d", root)
		}
		f.Root[root] = root
		f.Parent[root] = root
		f.Hops[root] = 0
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range w.Neighbors(cur) {
			if !w.nodes[nb].Alive() || f.Hops[nb] != -1 {
				continue
			}
			f.Root[nb] = f.Root[cur]
			f.Parent[nb] = cur
			f.Hops[nb] = f.Hops[cur] + 1
			queue = append(queue, nb)
		}
	}
	return f, nil
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
