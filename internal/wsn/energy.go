package wsn

import "fmt"

// CostKind labels an energy-consuming operation.
type CostKind int

// Energy cost categories.
const (
	CostTx CostKind = iota
	CostRx
	CostSample
	CostCPU
	CostIdle
	numCostKinds
)

// String implements fmt.Stringer.
func (k CostKind) String() string {
	switch k {
	case CostTx:
		return "tx"
	case CostRx:
		return "rx"
	case CostSample:
		return "sample"
	case CostCPU:
		return "cpu"
	case CostIdle:
		return "idle"
	default:
		return fmt.Sprintf("CostKind(%d)", int(k))
	}
}

// EnergyConfig gives the per-operation energy costs in joules (idle in
// watts). Defaults approximate an iMote2 with an 802.15.4 radio: ~1 mJ per
// frame, tens of µJ per ADC sample.
type EnergyConfig struct {
	TxJ     float64 // per transmitted frame
	RxJ     float64 // per received frame
	SampleJ float64 // per accelerometer sample
	CPUJ    float64 // per detection-window computation
	IdleW   float64 // idle draw in watts
}

// DefaultEnergyConfig returns iMote2-class costs.
func DefaultEnergyConfig() EnergyConfig {
	return EnergyConfig{TxJ: 1e-3, RxJ: 8e-4, SampleJ: 2e-5, CPUJ: 1e-4, IdleW: 2e-3}
}

// Battery tracks remaining energy and a per-kind usage breakdown.
type Battery struct {
	cfg       EnergyConfig
	capacity  float64
	remaining float64
	used      [numCostKinds]float64
}

// NewBattery returns a battery with the given capacity in joules.
// A pair of AA cells is roughly 20 kJ.
func NewBattery(capacityJ float64, cfg EnergyConfig) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("wsn: battery capacity must be positive, got %g", capacityJ)
	}
	return &Battery{cfg: cfg, capacity: capacityJ, remaining: capacityJ}, nil
}

// Consume charges the battery for one operation of the given kind.
func (b *Battery) Consume(kind CostKind) {
	var j float64
	switch kind {
	case CostTx:
		j = b.cfg.TxJ
	case CostRx:
		j = b.cfg.RxJ
	case CostSample:
		j = b.cfg.SampleJ
	case CostCPU:
		j = b.cfg.CPUJ
	default:
		return
	}
	b.drain(kind, j)
}

// AccrueIdle charges idle draw for dt seconds.
func (b *Battery) AccrueIdle(dt float64) {
	if dt > 0 {
		b.drain(CostIdle, b.cfg.IdleW*dt)
	}
}

func (b *Battery) drain(kind CostKind, j float64) {
	if j > b.remaining {
		j = b.remaining
	}
	b.remaining -= j
	b.used[kind] += j
}

// Deplete drains the battery to empty immediately, booking the loss as
// idle draw (fault injection: cell failure, leakage, cold).
func (b *Battery) Deplete() { b.drain(CostIdle, b.remaining) }

// Remaining returns the remaining energy in joules.
func (b *Battery) Remaining() float64 { return b.remaining }

// Capacity returns the initial capacity in joules.
func (b *Battery) Capacity() float64 { return b.capacity }

// Empty reports whether the battery is exhausted.
func (b *Battery) Empty() bool { return b.remaining <= 0 }

// Used returns the energy consumed by the given kind.
func (b *Battery) Used(kind CostKind) float64 {
	if kind < 0 || kind >= numCostKinds {
		return 0
	}
	return b.used[kind]
}

// FractionRemaining returns remaining/capacity.
func (b *Battery) FractionRemaining() float64 { return b.remaining / b.capacity }
