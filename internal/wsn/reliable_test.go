package wsn

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sim"
)

func reliableRadio(loss float64, maxRetrans int) RadioConfig {
	r := perfectRadio()
	r.LossProb = loss
	rc := DefaultReliableConfig()
	rc.MaxRetrans = maxRetrans
	r.Reliable = rc
	return r
}

func TestReliableConfigValidation(t *testing.T) {
	mk := func(mut func(*ReliableConfig)) RadioConfig {
		r := perfectRadio()
		rc := DefaultReliableConfig()
		mut(&rc)
		r.Reliable = rc
		return r
	}
	sched := sim.NewScheduler(1)
	positions := geo.GridSpec{Rows: 1, Cols: 2, Spacing: 25}.Positions()
	bad := []RadioConfig{
		mk(func(c *ReliableConfig) { c.MaxRetrans = -1 }),
		mk(func(c *ReliableConfig) { c.AckTimeout = 0 }),
		mk(func(c *ReliableConfig) { c.Backoff = 0.5 }),
		mk(func(c *ReliableConfig) { c.MaxTimeout = 0.001 }),
		mk(func(c *ReliableConfig) { c.JitterFrac = 1 }),
		mk(func(c *ReliableConfig) { c.JitterFrac = -0.1 }),
	}
	for i, r := range bad {
		if _, err := NewNetwork(sched, positions, r); err == nil {
			t.Errorf("case %d: expected reliable validation error", i)
		}
	}
	// Disabled zero value validates regardless of garbage fields.
	r := perfectRadio()
	r.Reliable = ReliableConfig{Enabled: false, AckTimeout: -1}
	if _, err := NewNetwork(sched, positions, r); err != nil {
		t.Errorf("disabled reliable config should not validate: %v", err)
	}
}

func TestReliableUnicastOvercomesLoss(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, reliableRadio(0.5, 6), 3)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	const sends = 100
	for i := 0; i < sends; i++ {
		if err := net.Unicast(0, 1, "x", i); err != nil {
			t.Fatalf("reliable unicast returned sync error: %v", err)
		}
	}
	sched.RunAll()
	// 7 attempts at 50% loss: effectively everything arrives, exactly once.
	if delivered < sends-1 {
		t.Errorf("delivered %d/%d", delivered, sends)
	}
	st := net.Stats()
	if st.Retransmissions == 0 {
		t.Error("expected retransmissions at 50% loss")
	}
	if st.Acks == 0 {
		t.Error("expected ACK frames")
	}
	if st.ReliableDelivered != delivered {
		t.Errorf("ReliableDelivered = %d, handler saw %d", st.ReliableDelivered, delivered)
	}
}

func TestReliableNoDuplicateDeliveries(t *testing.T) {
	// Heavy loss makes ACK loss (and thus retransmission of already
	// delivered frames) common; duplicate suppression must keep the
	// handler at one call per send.
	net, sched := gridNet(t, 1, 2, 25, reliableRadio(0.4, 8), 9)
	got := make(map[int]int)
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { got[msg.Payload.(int)]++ }
	const sends = 200
	for i := 0; i < sends; i++ {
		if err := net.Unicast(0, 1, "x", i); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunAll()
	for payload, count := range got {
		if count != 1 {
			t.Fatalf("payload %d delivered %d times", payload, count)
		}
	}
	if len(got) < sends-1 {
		t.Errorf("delivered %d/%d distinct payloads", len(got), sends)
	}
}

func TestReliableGivesUpAfterBound(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, reliableRadio(0.9, 1), 5)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	const sends = 50
	for i := 0; i < sends; i++ {
		if err := net.Unicast(0, 1, "x", i); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunAll()
	st := net.Stats()
	// Two attempts at 90% loss: ~81% of sends are abandoned.
	if st.ReliableDropped == 0 {
		t.Fatal("expected drops after the retransmission bound")
	}
	if st.ReliableDropped+st.ReliableDelivered != sends {
		t.Errorf("dropped %d + delivered %d != %d sends",
			st.ReliableDropped, st.ReliableDelivered, sends)
	}
	if delivered != st.ReliableDelivered {
		t.Errorf("handler saw %d, stats say %d", delivered, st.ReliableDelivered)
	}
}

func TestReliableMultiHopPaths(t *testing.T) {
	// 1×6 chain at 50% loss: SendMultiHop and SendToRoot must still get
	// through with per-hop ARQ.
	net, sched := gridNet(t, 1, 6, 25, reliableRadio(0.5, 8), 21)
	got := 0
	interior := 0
	for _, n := range net.Nodes() {
		n.OnMessage = func(nd *Node, msg Message) {
			if nd.ID == 5 {
				got++
			} else {
				interior++
			}
		}
	}
	for i := 0; i < 20; i++ {
		if err := net.SendMultiHop(0, 5, "report", i); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunAll()
	if got < 19 {
		t.Errorf("destination received %d/20", got)
	}
	if interior != 0 {
		t.Errorf("interior nodes delivered %d messages", interior)
	}

	tree, err := net.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	rootGot := 0
	net.MustNode(0).OnMessage = func(n *Node, msg Message) { rootGot++ }
	for i := 0; i < 20; i++ {
		if err := net.SendToRoot(tree, 5, "up", i); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunAll()
	if rootGot < 19 {
		t.Errorf("root received %d/20", rootGot)
	}
}

func TestReliableEnergyAccounted(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, reliableRadio(0, 2), 1)
	cfg := DefaultEnergyConfig()
	b0, _ := NewBattery(10, cfg)
	b1, _ := NewBattery(10, cfg)
	net.MustNode(0).Battery = b0
	net.MustNode(1).Battery = b1
	if err := net.Unicast(0, 1, "x", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	// Lossless: one data frame (0: tx, 1: rx) and one ACK (1: tx, 0: rx).
	if b0.Used(CostTx) != cfg.TxJ || b0.Used(CostRx) != cfg.RxJ {
		t.Errorf("sender energy tx=%g rx=%g", b0.Used(CostTx), b0.Used(CostRx))
	}
	if b1.Used(CostTx) != cfg.TxJ || b1.Used(CostRx) != cfg.RxJ {
		t.Errorf("receiver energy tx=%g rx=%g", b1.Used(CostTx), b1.Used(CostRx))
	}
	if net.Stats().Acks != 1 {
		t.Errorf("Acks = %d", net.Stats().Acks)
	}
}

func TestFailDropsInFlightFrames(t *testing.T) {
	// A frame in flight toward a node that fails — and revives — before
	// delivery must be lost: the radio was down when it arrived.
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	if err := net.Unicast(0, 1, "x", nil); err != nil {
		t.Fatal(err)
	}
	// The frame is now scheduled ~5 ms out. Crash and immediately revive.
	net.MustNode(1).Fail()
	net.MustNode(1).Revive()
	sched.RunAll()
	if delivered != 0 {
		t.Error("frame sent to the previous incarnation was delivered")
	}
	// A fresh send to the revived node goes through.
	if err := net.Unicast(0, 1, "x", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if delivered != 1 {
		t.Errorf("revived node deliveries = %d, want 1", delivered)
	}
}

func TestReliableRetransmissionReachesRevivedNode(t *testing.T) {
	// ARQ retransmissions are fresh frames: one sent after a crash+revive
	// reaches the new incarnation even though the original was lost.
	radio := reliableRadio(0, 4)
	net, sched := gridNet(t, 1, 2, 25, radio, 1)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	if err := net.Unicast(0, 1, "x", nil); err != nil {
		t.Fatal(err)
	}
	net.MustNode(1).Fail()
	// Revive after the first frame would have arrived but before the
	// first retransmission timeout (60 ms).
	if err := sched.After(0.03, func() { net.MustNode(1).Revive() }); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if delivered != 1 {
		t.Errorf("deliveries = %d, want 1 via retransmission", delivered)
	}
	if net.Stats().Retransmissions == 0 {
		t.Error("expected a retransmission to the revived node")
	}
}
