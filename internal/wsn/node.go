// Package wsn is the wireless-sensor-network substrate SID runs on: nodes
// with positions, imperfect clocks and finite batteries, a lossy
// finite-range radio with MAC jitter, hop-limited flooding (used to set up
// the paper's temporary clusters "within six hops"), BFS tree routing to a
// sink, and a two-way message-exchange time-synchronization protocol — the
// middleware services §IV-A says a deployment must provide (localization,
// time synchronization, routing infrastructure).
//
// Everything runs on the deterministic discrete-event engine in
// internal/sim so whole-network scenarios are reproducible from one seed.
package wsn

import (
	"fmt"
	"math/rand"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/sim"
)

// NodeID identifies a node within its network. The sink is a normal node
// designated at network construction.
type NodeID int

// Broadcast is the wildcard destination.
const Broadcast NodeID = -1

// Message is a radio frame. Payload contents are application-defined.
type Message struct {
	// Seq is a network-unique identifier assigned at origination; flooding
	// uses it for duplicate suppression.
	Seq uint64
	// Kind tags the payload for dispatch.
	Kind string
	// Src is the originating node; From is the immediate transmitter.
	Src, From NodeID
	// To is the final destination, or Broadcast.
	To NodeID
	// TTL is the remaining hop budget for flooded messages.
	TTL int
	// ARQ is the per-hop transmission ID used by the reliable transport to
	// match ACKs to data frames and suppress retransmitted duplicates; 0
	// for fire-and-forget frames.
	ARQ uint64
	// Trace is the detection-trace wire key stamped by the runtime on
	// report and confirmation sends; the reliable transport attaches its
	// retransmission/drop spans to it. Empty for untraced frames.
	Trace string
	// Payload carries application data.
	Payload interface{}
}

// Handler consumes a delivered message on a node.
type Handler func(n *Node, msg Message)

// Node is one sensor buoy's networking identity.
type Node struct {
	ID  NodeID
	Pos geo.Vec2
	// Clock is the node's imperfect local clock.
	Clock Clock
	// Battery is nil for mains-powered nodes (e.g. the sink).
	Battery *Battery
	// OnMessage receives application messages (after protocol handlers).
	OnMessage Handler

	net       *Network
	alive     bool
	epoch     int // incarnation counter; bumped by Fail
	protocols map[string]Handler
	seen      map[uint64]struct{}
	seenARQ   map[uint64]struct{}
}

// Alive reports whether the node is powered and functioning.
func (n *Node) Alive() bool { return n.alive && (n.Battery == nil || !n.Battery.Empty()) }

// Fail kills the node (hardware fault injection). Failure is an
// incarnation boundary: frames already in flight toward the node are lost
// even if it is revived before they would arrive (the radio was down), and
// timers armed against the previous incarnation must check Alive/epoch and
// no-op. Transmissions started after a Revive reach the new incarnation
// normally.
func (n *Node) Fail() {
	n.alive = false
	n.epoch++
}

// Revive restores a failed node as a fresh incarnation: alive again with
// the same clock, battery (an empty battery still keeps it dead), position,
// and protocol handlers. Duplicate-suppression history (flood and ARQ seen
// sets) survives the reboot, so retransmissions of frames it already
// consumed are still suppressed.
func (n *Node) Revive() { n.alive = true }

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// LocalTime converts true simulation time to this node's clock reading.
func (n *Node) LocalTime(trueTime float64) float64 { return n.Clock.Local(trueTime) }

// Now returns the node's current local clock reading.
func (n *Node) Now() float64 { return n.Clock.Local(n.net.Sched.Now()) }

// RegisterProtocol installs a kind-specific handler that runs instead of
// OnMessage for messages of that kind (used by the time-sync protocol).
func (n *Node) RegisterProtocol(kind string, h Handler) {
	n.protocols[kind] = h
}

// RadioConfig models the 802.15.4-class radio.
type RadioConfig struct {
	// Range is the maximum link distance in meters.
	Range float64
	// LossProb is the per-transmission frame loss probability in [0, 1).
	LossProb float64
	// BaseDelay is the fixed propagation+processing latency in seconds.
	BaseDelay float64
	// JitterStd is the standard deviation of MAC backoff jitter (seconds).
	JitterStd float64
	// Retries is the number of link-layer retransmissions for unicast
	// frames (flooded frames are fire-and-forget). These are blind
	// same-instant retries with no acknowledgment — the fire-and-forget
	// baseline; see Reliable for the acknowledged transport.
	Retries int
	// Reliable configures the per-hop ACK/retransmission transport. The
	// zero value disables it, keeping the fire-and-forget semantics (and
	// bit-identical runs) of earlier versions.
	Reliable ReliableConfig
}

// DefaultRadioConfig returns parameters typical of an iMote2-class radio in
// a 25 m grid: 60 m range, 5% frame loss, ~5 ms latency with 2 ms jitter.
func DefaultRadioConfig() RadioConfig {
	return RadioConfig{Range: 60, LossProb: 0.05, BaseDelay: 0.005, JitterStd: 0.002, Retries: 2}
}

// Validate checks the radio configuration. NewNetwork validates on
// construction regardless; this export lets configuration surfaces (the
// deployment validator, the serving layer's tenant specs) reject a bad
// radio before building anything.
func (c RadioConfig) Validate() error { return c.validate() }

func (c RadioConfig) validate() error {
	if c.Range <= 0 {
		return fmt.Errorf("wsn: radio range must be positive, got %g", c.Range)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("wsn: loss probability must be in [0,1), got %g", c.LossProb)
	}
	if c.BaseDelay < 0 || c.JitterStd < 0 {
		return fmt.Errorf("wsn: delays must be non-negative: %+v", c)
	}
	if c.Retries < 0 {
		return fmt.Errorf("wsn: retries must be non-negative, got %d", c.Retries)
	}
	return c.Reliable.validate()
}

// Network is a deployed WSN: nodes, connectivity, radio model and stats.
type Network struct {
	Sched *sim.Scheduler
	Radio RadioConfig

	nodes     []*Node
	neighbors [][]NodeID
	seq       uint64
	rng       *rand.Rand

	// lossModel, when set, replaces the Bernoulli LossProb draw (fault
	// injection plugs burst-loss channels in here). It is queried once per
	// frame with the current simulation time.
	lossModel func(now float64) bool

	// arqSeq numbers per-hop reliable transmissions; arqRNG drives the
	// deterministic backoff jitter (its own stream, so enabling the
	// reliable path never perturbs the radio loss sequence).
	arqSeq  uint64
	arqRNG  *rand.Rand
	pending map[uint64]struct{}

	// col is the observability collector; ctr caches the registry counter
	// handles behind Stats() so increments stay lock-free.
	col *obs.Collector
	ctr netCounters
}

// Stats is a snapshot of the network-level counters (the registry under
// "wsn.*" metric names; read it via Network.Stats).
type Stats struct {
	// Sent counts every frame handed to the radio: originals, blind
	// link-layer retries, multi-hop forwards, flood rebroadcasts, ARQ
	// retransmissions, and ACK frames.
	Sent int
	// Delivered counts frames consumed by a protocol or application
	// handler (local sink deliveries included; duplicates excluded).
	Delivered int
	// Lost counts frames dropped by the loss process (Bernoulli or a
	// pluggable channel model), before any propagation delay.
	Lost int
	// Duplicate counts flooded frames suppressed by a receiver that had
	// already consumed the same flood sequence number.
	Duplicate int

	// Acks counts ACK frames transmitted by the reliable per-hop
	// transport (zero unless Radio.Reliable is enabled; ACKs also appear
	// in Sent and, when lost, in Lost).
	Acks int
	// Retransmissions counts timeout-driven data-frame retransmissions of
	// the reliable transport (blind Radio.Retries are not included — they
	// are same-instant repeats inside one Sent attempt sequence).
	Retransmissions int
	// ReliableDelivered counts reliable hops whose data frame reached its
	// receiver's handler exactly once (retransmitted duplicates are
	// suppressed and not re-counted).
	ReliableDelivered int
	// ReliableDropped counts reliable hops abandoned with the receiver
	// never having consumed the frame — retransmissions exhausted or the
	// sender died mid-exchange. Hops where only ACKs were lost do not
	// count: the payload arrived.
	ReliableDropped int
}

// netCounters caches the registry handles for the Stats fields.
type netCounters struct {
	sent, delivered, lost, duplicate        *obs.Counter
	acks, retrans, relDelivered, relDropped *obs.Counter
}

// bindCounters (re-)resolves the counter handles from the collector's
// registry.
func (w *Network) bindCounters() {
	reg := w.col.Registry()
	w.ctr = netCounters{
		sent:         reg.Counter("wsn.sent"),
		delivered:    reg.Counter("wsn.delivered"),
		lost:         reg.Counter("wsn.lost"),
		duplicate:    reg.Counter("wsn.duplicate"),
		acks:         reg.Counter("wsn.acks"),
		retrans:      reg.Counter("wsn.retransmissions"),
		relDelivered: reg.Counter("wsn.reliable_delivered"),
		relDropped:   reg.Counter("wsn.reliable_dropped"),
	}
}

// SetCollector rebinds the network's metrics onto col's registry and
// routes journal events to col. Call it before any traffic flows (counts
// accumulated under the previous registry are not migrated); the sid
// runtime does this at construction so deployment and network metrics
// share one registry.
func (w *Network) SetCollector(col *obs.Collector) {
	if col == nil {
		return
	}
	w.col = col
	w.bindCounters()
}

// Collector returns the network's observability collector (never nil).
func (w *Network) Collector() *obs.Collector { return w.col }

// Stats snapshots the network-level counters.
func (w *Network) Stats() Stats {
	return Stats{
		Sent:              int(w.ctr.sent.Value()),
		Delivered:         int(w.ctr.delivered.Value()),
		Lost:              int(w.ctr.lost.Value()),
		Duplicate:         int(w.ctr.duplicate.Value()),
		Acks:              int(w.ctr.acks.Value()),
		Retransmissions:   int(w.ctr.retrans.Value()),
		ReliableDelivered: int(w.ctr.relDelivered.Value()),
		ReliableDropped:   int(w.ctr.relDropped.Value()),
	}
}

// SetLossModel replaces the radio's Bernoulli frame-loss draw with a custom
// channel model (e.g. a Gilbert–Elliott burst channel from internal/fault).
// The function is called once per transmitted frame with the current
// simulation time and returns true when the frame is lost. Passing nil
// restores the Bernoulli model.
func (w *Network) SetLossModel(m func(now float64) bool) { w.lossModel = m }

// NewNetwork deploys nodes at the given positions. Node i gets ID i.
// Clock imperfections are drawn from the scheduler's "clock" stream:
// offsets uniform in ±maxOffset, drifts uniform in ±maxDriftPPM.
func NewNetwork(sched *sim.Scheduler, positions []geo.Vec2, radio RadioConfig) (*Network, error) {
	if sched == nil {
		return nil, fmt.Errorf("wsn: scheduler is required")
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("wsn: at least one node position is required")
	}
	if err := radio.validate(); err != nil {
		return nil, err
	}
	net := &Network{
		Sched:   sched,
		Radio:   radio,
		rng:     sched.RNG("wsn.radio"),
		arqRNG:  sched.RNG("wsn.arq"),
		pending: make(map[uint64]struct{}),
		col:     obs.New(),
	}
	net.bindCounters()
	clockRNG := sched.RNG("wsn.clock")
	const maxOffset = 0.05   // ±50 ms initial offset
	const maxDriftPPM = 20.0 // ±20 ppm drift
	for i, p := range positions {
		n := &Node{
			ID:  NodeID(i),
			Pos: p,
			Clock: Clock{
				Offset:   (clockRNG.Float64()*2 - 1) * maxOffset,
				DriftPPM: (clockRNG.Float64()*2 - 1) * maxDriftPPM,
			},
			net:       net,
			alive:     true,
			protocols: make(map[string]Handler),
			seen:      make(map[uint64]struct{}),
			seenARQ:   make(map[uint64]struct{}),
		}
		net.nodes = append(net.nodes, n)
	}
	net.rebuildNeighbors()
	return net, nil
}

func (w *Network) rebuildNeighbors() {
	w.neighbors = make([][]NodeID, len(w.nodes))
	for i, a := range w.nodes {
		for j, b := range w.nodes {
			if i == j {
				continue
			}
			if a.Pos.Dist(b.Pos) <= w.Radio.Range {
				w.neighbors[i] = append(w.neighbors[i], NodeID(j))
			}
		}
	}
}

// NumNodes returns the node count.
func (w *Network) NumNodes() int { return len(w.nodes) }

// Node returns the node with the given ID.
func (w *Network) Node(id NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(w.nodes) {
		return nil, fmt.Errorf("wsn: no node %d", id)
	}
	return w.nodes[id], nil
}

// MustNode is Node for known-valid IDs (panics otherwise); used internally
// and in tests.
func (w *Network) MustNode(id NodeID) *Node {
	n, err := w.Node(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Nodes returns all nodes in ID order. The slice is shared; do not modify.
func (w *Network) Nodes() []*Node { return w.nodes }

// Neighbors returns the IDs within radio range of id.
func (w *Network) Neighbors(id NodeID) []NodeID {
	if int(id) < 0 || int(id) >= len(w.neighbors) {
		return nil
	}
	return w.neighbors[id]
}

// NextSeq assigns a network-unique message sequence number.
func (w *Network) NextSeq() uint64 {
	w.seq++
	return w.seq
}

// lossy draws the frame-loss decision: the pluggable loss model when set,
// otherwise Bernoulli(LossProb) from the radio stream.
func (w *Network) lossy() bool {
	if w.lossModel != nil {
		return w.lossModel(w.Sched.Now())
	}
	return w.rng.Float64() < w.Radio.LossProb
}

// frameDelay draws one frame's propagation + MAC-jitter latency.
func (w *Network) frameDelay() float64 {
	delay := w.Radio.BaseDelay
	if w.Radio.JitterStd > 0 {
		j := w.rng.NormFloat64() * w.Radio.JitterStd
		if j < 0 {
			j = -j
		}
		delay += j
	}
	return delay
}

// transmit models one frame over one link: loss, delay, energy, delivery.
// Returns false if the frame was dropped at send time (dead endpoints or
// loss); delivery itself is asynchronous. The receiver's incarnation is
// captured at send time: a frame in flight when the receiver fails is lost
// even if the node revives before the frame would have arrived.
func (w *Network) transmit(from, to *Node, msg Message) bool {
	if !from.Alive() {
		return false
	}
	w.ctr.sent.Inc()
	if from.Battery != nil {
		from.Battery.Consume(CostTx)
	}
	if w.lossy() {
		w.ctr.lost.Inc()
		return false
	}
	delay := w.frameDelay()
	msg.From = from.ID
	toEpoch := to.epoch
	err := w.Sched.After(delay, func() {
		if !to.Alive() || to.epoch != toEpoch {
			return
		}
		if to.Battery != nil {
			to.Battery.Consume(CostRx)
		}
		w.deliver(to, msg)
	})
	return err == nil
}

func (w *Network) deliver(n *Node, msg Message) {
	w.ctr.delivered.Inc()
	if h, ok := n.protocols[msg.Kind]; ok {
		h(n, msg)
		return
	}
	if n.OnMessage != nil {
		n.OnMessage(n, msg)
	}
}

// Unicast sends msg from -> to over a direct link. With the fire-and-forget
// radio it makes Retries+1 blind same-instant attempts and reports loss of
// all of them as an error; with Radio.Reliable enabled it hands the frame
// to the acknowledged transport (asynchronous — persistent loss then shows
// up in Stats.ReliableDropped, not in the return value). It fails
// immediately if the nodes are not in range.
func (w *Network) Unicast(from, to NodeID, kind string, payload interface{}) error {
	src, err := w.Node(from)
	if err != nil {
		return err
	}
	dst, err := w.Node(to)
	if err != nil {
		return err
	}
	if src.Pos.Dist(dst.Pos) > w.Radio.Range {
		return fmt.Errorf("wsn: %d -> %d out of radio range", from, to)
	}
	msg := Message{
		Seq:     w.NextSeq(),
		Kind:    kind,
		Src:     from,
		To:      to,
		Payload: payload,
	}
	if w.Radio.Reliable.Enabled {
		w.sendReliable(src, dst, msg, func(n *Node, m Message) { w.deliver(n, m) })
		return nil
	}
	for attempt := 0; attempt <= w.Radio.Retries; attempt++ {
		if w.transmit(src, dst, msg) {
			return nil
		}
	}
	return fmt.Errorf("wsn: %d -> %d lost after %d attempts", from, to, w.Radio.Retries+1)
}

// Flood originates a hop-limited broadcast: every node within ttl hops that
// receives it (subject to loss) gets one delivery. The paper's temporary
// cluster setup "informs its neighbor nodes within N hops" this way (the
// SID algorithm uses six hops).
func (w *Network) Flood(from NodeID, ttl int, kind string, payload interface{}) error {
	src, err := w.Node(from)
	if err != nil {
		return err
	}
	if ttl <= 0 {
		return fmt.Errorf("wsn: flood TTL must be positive, got %d", ttl)
	}
	msg := Message{
		Seq:     w.NextSeq(),
		Kind:    kind,
		Src:     from,
		To:      Broadcast,
		TTL:     ttl,
		Payload: payload,
	}
	src.seen[msg.Seq] = struct{}{}
	w.forwardFlood(src, msg)
	return nil
}

func (w *Network) forwardFlood(n *Node, msg Message) {
	for _, nb := range w.Neighbors(n.ID) {
		w.transmitFlood(n, w.nodes[nb], msg)
	}
}

func (w *Network) transmitFlood(from, to *Node, msg Message) {
	if !from.Alive() {
		return
	}
	w.ctr.sent.Inc()
	if from.Battery != nil {
		from.Battery.Consume(CostTx)
	}
	if w.lossy() {
		w.ctr.lost.Inc()
		return
	}
	delay := w.frameDelay()
	fwd := msg
	fwd.From = from.ID
	toEpoch := to.epoch
	_ = w.Sched.After(delay, func() {
		if !to.Alive() || to.epoch != toEpoch {
			return
		}
		if to.Battery != nil {
			to.Battery.Consume(CostRx)
		}
		if _, dup := to.seen[fwd.Seq]; dup {
			w.ctr.duplicate.Inc()
			return
		}
		to.seen[fwd.Seq] = struct{}{}
		w.deliver(to, fwd)
		if fwd.TTL > 1 {
			next := fwd
			next.TTL--
			w.forwardFlood(to, next)
		}
	})
}
