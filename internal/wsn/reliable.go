package wsn

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/obs"
)

// Reliable transport: a per-hop stop-and-wait ARQ layered under the unicast
// and multi-hop send paths. Every data frame carries a hop-unique ARQ ID;
// the receiver acknowledges it (ACKs ride the same lossy channel and cost
// the same energy as any frame) and suppresses retransmitted duplicates.
// The sender retransmits on a deterministic exponential-backoff timer with
// jitter drawn from its own RNG stream — enabling the transport therefore
// never perturbs the radio loss sequence of fire-and-forget runs — and
// gives up after a bounded number of retransmissions, counting the drop in
// Stats.ReliableDropped. This is §IV-C's answer to lost reports: the four
// timestamp reports the speed budget assumes (Fig. 12) actually arrive.

// ReliableConfig parametrizes the per-hop ACK/retransmission transport.
// The zero value disables it.
type ReliableConfig struct {
	// Enabled turns the acknowledged transport on for Unicast, SendToRoot
	// and SendMultiHop (floods stay fire-and-forget: invites are
	// redundant by construction).
	Enabled bool
	// MaxRetrans bounds the retransmissions per hop after the first
	// attempt; the hop is abandoned (and counted in ReliableDropped) when
	// they are exhausted.
	MaxRetrans int
	// AckTimeout is the wait before the first retransmission, in seconds.
	// It must exceed one frame round trip (2·BaseDelay plus jitter tails).
	AckTimeout float64
	// Backoff multiplies the timeout after every retransmission (≥ 1);
	// spacing retries out lets the transport ride out burst losses that
	// defeat blind same-instant retries.
	Backoff float64
	// MaxTimeout caps the backed-off timeout, in seconds.
	MaxTimeout float64
	// JitterFrac randomizes each timeout by ±JitterFrac·timeout using the
	// dedicated "wsn.arq" stream, de-synchronizing retransmission storms
	// deterministically.
	JitterFrac float64
}

// DefaultReliableConfig returns an enabled transport tuned for the default
// radio (5 ms links): first retransmission after 60 ms, doubling to a cap
// of 1 s, 4 retransmissions, ±20% jitter.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		Enabled:    true,
		MaxRetrans: 4,
		AckTimeout: 0.06,
		Backoff:    2,
		MaxTimeout: 1.0,
		JitterFrac: 0.2,
	}
}

func (c ReliableConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.MaxRetrans < 0 {
		return fmt.Errorf("wsn: reliable MaxRetrans must be non-negative, got %d", c.MaxRetrans)
	}
	if c.AckTimeout <= 0 {
		return fmt.Errorf("wsn: reliable AckTimeout must be positive, got %g", c.AckTimeout)
	}
	if c.Backoff < 1 {
		return fmt.Errorf("wsn: reliable Backoff must be ≥ 1, got %g", c.Backoff)
	}
	if c.MaxTimeout < c.AckTimeout {
		return fmt.Errorf("wsn: reliable MaxTimeout %g below AckTimeout %g", c.MaxTimeout, c.AckTimeout)
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("wsn: reliable JitterFrac must be in [0,1), got %g", c.JitterFrac)
	}
	return nil
}

// timeout returns the backed-off, jittered wait before retransmission k+1
// (k = attempts already made beyond the first).
func (w *Network) arqTimeout(k int) float64 {
	rc := w.Radio.Reliable
	t := rc.AckTimeout
	for i := 0; i < k; i++ {
		t *= rc.Backoff
		if t >= rc.MaxTimeout {
			t = rc.MaxTimeout
			break
		}
	}
	if rc.JitterFrac > 0 {
		t *= 1 + rc.JitterFrac*(2*w.arqRNG.Float64()-1)
	}
	return t
}

// sendReliable moves msg over the from -> to link with the stop-and-wait
// ARQ and hands it to cont exactly once on delivery. Loss of all attempts
// is counted in Stats.ReliableDropped; there is no failure callback — the
// upper layers are timeout-driven (collection windows, failover), not
// completion-driven, exactly like a real WSN stack.
func (w *Network) sendReliable(from, to *Node, msg Message, cont func(*Node, Message)) {
	w.arqSeq++
	id := w.arqSeq
	msg.ARQ = id
	msg.From = from.ID
	w.pending[id] = struct{}{}
	rc := w.Radio.Reliable
	var attempt func(k int)
	attempt = func(k int) {
		if _, waiting := w.pending[id]; !waiting {
			return // ACKed while the timer was armed
		}
		if !from.Alive() {
			delete(w.pending, id)
			// As in the give-up path below, a drop is only real data loss
			// when the receiver never consumed the frame; a dead sender that
			// merely missed its ACKs did deliver.
			_, got := to.seenARQ[id]
			if !got {
				w.ctr.relDropped.Inc()
			}
			if w.col.Journaling() {
				w.col.Emit(w.Sched.Now(), obs.KindArqDrop, obs.ArqDrop{
					From: int(from.ID), To: int(to.ID), ARQ: id,
					Received: got, Reason: "sender-dead",
				})
			}
			w.traceHopDrop(msg, from, to, "sender-dead")
			return
		}
		if k > 0 {
			w.ctr.retrans.Inc()
			if w.col.Journaling() {
				w.col.Emit(w.Sched.Now(), obs.KindArqRetransmit, obs.ArqHop{
					From: int(from.ID), To: int(to.ID), ARQ: id, Attempt: k,
				})
			}
		}
		w.ctr.sent.Inc()
		if from.Battery != nil {
			from.Battery.Consume(CostTx)
		}
		if w.lossy() {
			w.ctr.lost.Inc()
		} else {
			toEpoch := to.epoch
			_ = w.Sched.After(w.frameDelay(), func() {
				if !to.Alive() || to.epoch != toEpoch {
					return
				}
				if to.Battery != nil {
					to.Battery.Consume(CostRx)
				}
				_, dup := to.seenARQ[id]
				to.seenARQ[id] = struct{}{}
				w.sendAck(to, from, id)
				if !dup {
					w.ctr.relDelivered.Inc()
					cont(to, msg)
				}
			})
		}
		wait := w.arqTimeout(k)
		if k > 0 && msg.Trace != "" && w.col.Tracing() {
			now := w.Sched.Now()
			w.col.Tracer().AddByKey(msg.Trace, obs.Span{
				Kind: obs.SpanHopRetransmit, Start: now, End: now,
				Node: int(from.ID), Peer: int(to.ID), Seq: k, Value: wait,
			})
		}
		if k < rc.MaxRetrans {
			_ = w.Sched.After(wait, func() { attempt(k + 1) })
			return
		}
		_ = w.Sched.After(wait, func() {
			if _, waiting := w.pending[id]; waiting {
				delete(w.pending, id)
				// Count a drop only if the receiver never saw the frame:
				// when only the ACKs were lost the payload did arrive, and
				// the simulation's omniscient stats should say so.
				_, got := to.seenARQ[id]
				if !got {
					w.ctr.relDropped.Inc()
				}
				if w.col.Journaling() {
					w.col.Emit(w.Sched.Now(), obs.KindArqDrop, obs.ArqDrop{
						From: int(from.ID), To: int(to.ID), ARQ: id,
						Received: got, Reason: "retrans-exhausted",
					})
				}
				w.traceHopDrop(msg, from, to, "retrans-exhausted")
			}
		})
	}
	attempt(0)
}

// traceHopDrop attaches an abandoned-hop span to a traced frame's
// detection trace (no-op for untraced frames or without a tracer).
func (w *Network) traceHopDrop(msg Message, from, to *Node, reason string) {
	if msg.Trace == "" || !w.col.Tracing() {
		return
	}
	now := w.Sched.Now()
	w.col.Tracer().AddByKey(msg.Trace, obs.Span{
		Kind: obs.SpanHopDrop, Start: now, End: now,
		Node: int(from.ID), Peer: int(to.ID), Note: reason,
	})
}

// sendAck transmits one acknowledgment frame from -> to. ACKs are
// fire-and-forget (a lost ACK just costs one retransmission, which the
// receiver's duplicate suppression absorbs).
func (w *Network) sendAck(from, to *Node, id uint64) {
	w.ctr.sent.Inc()
	w.ctr.acks.Inc()
	if w.col.Journaling() {
		w.col.Emit(w.Sched.Now(), obs.KindArqAck, obs.ArqHop{
			From: int(from.ID), To: int(to.ID), ARQ: id,
		})
	}
	if from.Battery != nil {
		from.Battery.Consume(CostTx)
	}
	if w.lossy() {
		w.ctr.lost.Inc()
		return
	}
	toEpoch := to.epoch
	_ = w.Sched.After(w.frameDelay(), func() {
		if !to.Alive() || to.epoch != toEpoch {
			return
		}
		if to.Battery != nil {
			to.Battery.Consume(CostRx)
		}
		delete(w.pending, id)
	})
}
