package wsn

import "testing"

// TestReliableSenderDeathDeliveredNotDropped is the regression test for the
// ReliableDropped miscount: a sender that dies after its frame was consumed
// (only the ACKs were lost) must not be tallied as data loss. Before the
// fix the sender-death branch counted the drop unconditionally.
func TestReliableSenderDeathDeliveredNotDropped(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, reliableRadio(0, 4), 1)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	// Deterministic loss: the first frame (the data frame) gets through,
	// every later frame (the receiver's ACK) is lost.
	frames := 0
	net.SetLossModel(func(now float64) bool {
		frames++
		return frames > 1
	})
	if err := net.Unicast(0, 1, "x", 1); err != nil {
		t.Fatalf("unicast: %v", err)
	}
	// Kill the sender after delivery but before the first retransmission
	// timer (AckTimeout 0.06 s, jitter ±20% → earliest 0.048 s).
	if err := sched.Schedule(0.03, func() { net.MustNode(0).Fail() }); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered %d frames, want 1", delivered)
	}
	st := net.Stats()
	if st.ReliableDelivered != 1 {
		t.Errorf("ReliableDelivered = %d, want 1", st.ReliableDelivered)
	}
	if st.ReliableDropped != 0 {
		t.Errorf("ReliableDropped = %d, want 0: receiver consumed the frame", st.ReliableDropped)
	}
}

// TestReliableSenderDeathUndeliveredStillDropped pins the other side of the
// sender-death accounting: if the receiver never consumed the frame, the
// dead sender's hop is real data loss and must be counted.
func TestReliableSenderDeathUndeliveredStillDropped(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, reliableRadio(0, 4), 1)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	net.SetLossModel(func(now float64) bool { return true }) // lose every frame
	if err := net.Unicast(0, 1, "x", 1); err != nil {
		t.Fatalf("unicast: %v", err)
	}
	if err := sched.Schedule(0.03, func() { net.MustNode(0).Fail() }); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered %d frames, want 0", delivered)
	}
	st := net.Stats()
	if st.ReliableDropped != 1 {
		t.Errorf("ReliableDropped = %d, want 1: frame never reached the receiver", st.ReliableDropped)
	}
}
