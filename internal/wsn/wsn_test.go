package wsn

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sim"
)

// gridNet builds a rows×cols grid network with the given spacing and a
// perfect or lossy radio.
func gridNet(t *testing.T, rows, cols int, spacing float64, radio RadioConfig, seed int64) (*Network, *sim.Scheduler) {
	t.Helper()
	g := geo.GridSpec{Rows: rows, Cols: cols, Spacing: spacing}
	sched := sim.NewScheduler(seed)
	net, err := NewNetwork(sched, g.Positions(), radio)
	if err != nil {
		t.Fatal(err)
	}
	return net, sched
}

func perfectRadio() RadioConfig {
	return RadioConfig{Range: 30, LossProb: 0, BaseDelay: 0.005, JitterStd: 0, Retries: 0}
}

func TestNewNetworkValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	if _, err := NewNetwork(nil, []geo.Vec2{{}}, DefaultRadioConfig()); err == nil {
		t.Error("expected error for nil scheduler")
	}
	if _, err := NewNetwork(sched, nil, DefaultRadioConfig()); err == nil {
		t.Error("expected error for no positions")
	}
	bad := []RadioConfig{
		{Range: 0},
		{Range: 10, LossProb: 1},
		{Range: 10, LossProb: -0.1},
		{Range: 10, BaseDelay: -1},
		{Range: 10, JitterStd: -1},
		{Range: 10, Retries: -1},
	}
	for i, r := range bad {
		if _, err := NewNetwork(sched, []geo.Vec2{{}}, r); err == nil {
			t.Errorf("case %d: expected radio validation error", i)
		}
	}
}

func TestNeighborsGrid(t *testing.T) {
	net, _ := gridNet(t, 3, 3, 25, perfectRadio(), 1)
	// Center node (1,1) = id 4: 4-connected within 30 m of 25 m spacing.
	nbs := net.Neighbors(4)
	if len(nbs) != 4 {
		t.Errorf("center neighbors = %v, want 4", nbs)
	}
	// Corner node 0: 2 neighbors.
	if nbs := net.Neighbors(0); len(nbs) != 2 {
		t.Errorf("corner neighbors = %v, want 2", nbs)
	}
	if nbs := net.Neighbors(NodeID(99)); nbs != nil {
		t.Errorf("out-of-range ID neighbors = %v", nbs)
	}
}

func TestNodeLookup(t *testing.T) {
	net, _ := gridNet(t, 2, 2, 25, perfectRadio(), 1)
	if _, err := net.Node(0); err != nil {
		t.Error(err)
	}
	if _, err := net.Node(4); err == nil {
		t.Error("expected error for unknown node")
	}
	if _, err := net.Node(-1); err == nil {
		t.Error("expected error for negative ID")
	}
	if net.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", net.NumNodes())
	}
}

func TestUnicastDelivery(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	var got []Message
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { got = append(got, msg) }
	if err := net.Unicast(0, 1, "hello", 42); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	m := got[0]
	if m.Kind != "hello" || m.Src != 0 || m.From != 0 || m.To != 1 || m.Payload.(int) != 42 {
		t.Errorf("message = %+v", m)
	}
	if net.Stats().Delivered != 1 || net.Stats().Sent != 1 {
		t.Errorf("stats = %+v", net.Stats())
	}
}

func TestUnicastOutOfRange(t *testing.T) {
	net, _ := gridNet(t, 1, 3, 25, perfectRadio(), 1)
	// Node 0 to node 2 is 50 m > 30 m range.
	if err := net.Unicast(0, 2, "x", nil); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := net.Unicast(0, 9, "x", nil); err == nil {
		t.Error("expected unknown-node error")
	}
}

func TestUnicastRetriesOvercomeLoss(t *testing.T) {
	radio := perfectRadio()
	radio.LossProb = 0.5
	radio.Retries = 10
	net, sched := gridNet(t, 1, 2, 25, radio, 7)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	failures := 0
	for i := 0; i < 100; i++ {
		if err := net.Unicast(0, 1, "x", i); err != nil {
			failures++
		}
	}
	sched.RunAll()
	// With 11 attempts at 50% loss, effectively everything goes through.
	if failures > 1 {
		t.Errorf("%d unicast failures", failures)
	}
	if delivered < 99 {
		t.Errorf("delivered %d/100", delivered)
	}
	if net.Stats().Lost == 0 {
		t.Error("expected some lost frames at 50% loss")
	}
}

func TestDeadNodeNeitherSendsNorReceives(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	delivered := 0
	net.MustNode(1).OnMessage = func(n *Node, msg Message) { delivered++ }
	net.MustNode(1).Fail()
	_ = net.Unicast(0, 1, "x", nil)
	sched.RunAll()
	if delivered != 0 {
		t.Error("dead node received a message")
	}
	net.MustNode(1).Revive()
	if err := net.Unicast(0, 1, "x", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if delivered != 1 {
		t.Error("revived node should receive")
	}
}

func TestFloodReachesHopLimit(t *testing.T) {
	// 1×6 line, range 30 at 25 m spacing → chain topology.
	net, sched := gridNet(t, 1, 6, 25, perfectRadio(), 1)
	got := make(map[NodeID]int)
	for _, n := range net.Nodes() {
		id := n.ID
		n.OnMessage = func(_ *Node, msg Message) { got[id]++ }
	}
	if err := net.Flood(0, 3, "alarm", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	// Nodes 1, 2, 3 are within 3 hops; 4 and 5 are not. Node 0 originated.
	for _, id := range []NodeID{1, 2, 3} {
		if got[id] != 1 {
			t.Errorf("node %d deliveries = %d, want 1", id, got[id])
		}
	}
	for _, id := range []NodeID{0, 4, 5} {
		if got[id] != 0 {
			t.Errorf("node %d deliveries = %d, want 0", id, got[id])
		}
	}
}

func TestFloodDuplicateSuppression(t *testing.T) {
	net, sched := gridNet(t, 3, 3, 25, perfectRadio(), 1)
	got := make(map[NodeID]int)
	for _, n := range net.Nodes() {
		id := n.ID
		n.OnMessage = func(_ *Node, msg Message) { got[id]++ }
	}
	if err := net.Flood(4, 4, "alarm", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	for id, c := range got {
		if c != 1 {
			t.Errorf("node %d received %d copies", id, c)
		}
	}
	if len(got) != 8 {
		t.Errorf("flood reached %d nodes, want 8", len(got))
	}
	if net.Stats().Duplicate == 0 {
		t.Error("expected duplicate suppressions in a dense flood")
	}
}

func TestFloodValidation(t *testing.T) {
	net, _ := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	if err := net.Flood(0, 0, "x", nil); err == nil {
		t.Error("expected error for zero TTL")
	}
	if err := net.Flood(99, 1, "x", nil); err == nil {
		t.Error("expected error for unknown origin")
	}
}

func TestBuildTreeAndPaths(t *testing.T) {
	net, _ := gridNet(t, 3, 3, 25, perfectRadio(), 1)
	tree, err := net.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Hops[0] != 0 || tree.Parent[0] != 0 {
		t.Errorf("root entry wrong: %+v", tree)
	}
	// Opposite corner (2,2) = id 8 is 4 hops away in a 4-connected grid.
	if tree.Hops[8] != 4 {
		t.Errorf("corner hops = %d, want 4", tree.Hops[8])
	}
	path, err := tree.PathToRoot(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 || path[0] != 8 || path[len(path)-1] != 0 {
		t.Errorf("path = %v", path)
	}
	if _, err := tree.PathToRoot(99); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestBuildTreeSkipsDeadNodes(t *testing.T) {
	net, _ := gridNet(t, 1, 3, 25, perfectRadio(), 1)
	net.MustNode(1).Fail()
	tree, err := net.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Hops[2] != -1 {
		t.Errorf("node 2 should be unreachable through dead node 1, hops=%d", tree.Hops[2])
	}
	if _, err := tree.PathToRoot(2); err == nil {
		t.Error("expected unreachable error")
	}
	net.MustNode(0).Fail()
	if _, err := net.BuildTree(0); err == nil {
		t.Error("expected error for dead root")
	}
}

func TestSendToRootMultiHop(t *testing.T) {
	net, sched := gridNet(t, 1, 5, 25, perfectRadio(), 1)
	tree, err := net.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []Message
	net.MustNode(0).OnMessage = func(n *Node, msg Message) { got = append(got, msg) }
	if err := net.SendToRoot(tree, 4, "report", "data"); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if len(got) != 1 {
		t.Fatalf("root received %d messages", len(got))
	}
	if got[0].Src != 4 || got[0].From != 1 {
		t.Errorf("message = %+v, want Src=4 From=1", got[0])
	}
}

func TestSendToRootFromRoot(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	tree, _ := net.BuildTree(0)
	count := 0
	net.MustNode(0).OnMessage = func(n *Node, msg Message) { count++ }
	if err := net.SendToRoot(tree, 0, "self", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if count != 1 {
		t.Errorf("self-delivery count = %d", count)
	}
}

func TestSendMultiHop(t *testing.T) {
	net, sched := gridNet(t, 1, 6, 25, perfectRadio(), 1)
	var got []Message
	interior := 0
	for _, n := range net.Nodes() {
		n.OnMessage = func(nd *Node, msg Message) {
			if nd.ID == 5 {
				got = append(got, msg)
			} else {
				interior++
			}
		}
	}
	if err := net.SendMultiHop(0, 5, "report", 7); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if len(got) != 1 {
		t.Fatalf("destination received %d messages", len(got))
	}
	if interior != 0 {
		t.Errorf("interior nodes delivered %d messages, want 0", interior)
	}
	if got[0].Src != 0 || got[0].From != 4 {
		t.Errorf("message = %+v", got[0])
	}
}

func TestSendMultiHopSelfAndErrors(t *testing.T) {
	net, sched := gridNet(t, 1, 3, 25, perfectRadio(), 1)
	count := 0
	net.MustNode(0).OnMessage = func(n *Node, msg Message) { count++ }
	if err := net.SendMultiHop(0, 0, "self", nil); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if count != 1 {
		t.Errorf("self-delivery = %d", count)
	}
	if err := net.SendMultiHop(0, 99, "x", nil); err == nil {
		t.Error("expected unknown-destination error")
	}
	net.MustNode(1).Fail()
	if err := net.SendMultiHop(0, 2, "x", nil); err == nil {
		t.Error("expected no-path error through dead relay")
	}
}

func TestHopDistance(t *testing.T) {
	net, _ := gridNet(t, 3, 3, 25, perfectRadio(), 1)
	if d := net.HopDistance(0, 0); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := net.HopDistance(0, 8); d != 4 {
		t.Errorf("corner distance = %d, want 4", d)
	}
	if d := net.HopDistance(0, 99); d != -1 {
		t.Errorf("unknown distance = %d", d)
	}
	net.MustNode(1).Fail()
	net.MustNode(3).Fail()
	if d := net.HopDistance(0, 8); d != -1 {
		t.Errorf("disconnected distance = %d, want -1", d)
	}
}

func TestNodesWithinHops(t *testing.T) {
	net, _ := gridNet(t, 1, 6, 25, perfectRadio(), 1)
	got := net.NodesWithinHops(0, 2)
	if len(got) != 2 {
		t.Errorf("within 2 hops = %v", got)
	}
	if got := net.NodesWithinHops(0, 0); got != nil {
		t.Errorf("zero hops = %v", got)
	}
	if got := net.NodesWithinHops(99, 2); got != nil {
		t.Errorf("unknown center = %v", got)
	}
	// Six hops — the SID temporary-cluster radius — covers the whole line.
	if got := net.NodesWithinHops(0, 6); len(got) != 5 {
		t.Errorf("within 6 hops = %v", got)
	}
}

func TestClockModel(t *testing.T) {
	c := Clock{Offset: 0.01, DriftPPM: 10}
	local := c.Local(1000)
	want := 1000 + 0.01 + 10e-6*1000
	if math.Abs(local-want) > 1e-12 {
		t.Errorf("Local = %v, want %v", local, want)
	}
	back := c.True(local)
	// True inverts up to the offset-vs-drift interaction (exact for this
	// linear model within float precision at these magnitudes).
	if math.Abs(back-1000) > 1e-6 {
		t.Errorf("True(Local(1000)) = %v", back)
	}
	c.Adjust(-0.01)
	if c.Offset != 0 {
		t.Errorf("Adjust: offset = %v", c.Offset)
	}
}

func TestTimeSyncReducesResiduals(t *testing.T) {
	radio := DefaultRadioConfig()
	net, sched := gridNet(t, 4, 5, 25, radio, 11)
	tree, err := net.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	before := net.SyncRMS(0)
	net.EnableTimeSync()
	if _, err := net.StartTimeSync(tree, 0.5); err != nil {
		t.Fatal(err)
	}
	sched.Run(20)
	after := net.SyncRMS(0)
	// Initial offsets are ±50 ms (RMS ~30 ms); post-sync residuals should
	// be millisecond-scale.
	if before < 0.005 {
		t.Fatalf("suspicious pre-sync RMS %v — initial offsets missing?", before)
	}
	if after > before/3 {
		t.Errorf("sync did not improve enough: before=%v after=%v", before, after)
	}
	if after > 0.02 {
		t.Errorf("post-sync RMS = %v s, want < 20 ms", after)
	}
}

func TestStartTimeSyncValidation(t *testing.T) {
	net, _ := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	tree, _ := net.BuildTree(0)
	net.EnableTimeSync()
	if _, err := net.StartTimeSync(tree, 0); err == nil {
		t.Error("expected error for zero levelGap")
	}
}

func TestSyncRMSUnknownRoot(t *testing.T) {
	net, _ := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	if !math.IsNaN(net.SyncRMS(99)) {
		t.Error("expected NaN for unknown root")
	}
}

func TestBatteryLifecycle(t *testing.T) {
	cfg := DefaultEnergyConfig()
	b, err := NewBattery(0.01, cfg) // tiny battery: 10 mJ
	if err != nil {
		t.Fatal(err)
	}
	if b.Capacity() != 0.01 || b.Remaining() != 0.01 {
		t.Errorf("capacity/remaining = %v/%v", b.Capacity(), b.Remaining())
	}
	b.Consume(CostTx)
	if math.Abs(b.Used(CostTx)-cfg.TxJ) > 1e-15 {
		t.Errorf("Used(tx) = %v", b.Used(CostTx))
	}
	for i := 0; i < 20; i++ {
		b.Consume(CostTx)
	}
	if !b.Empty() {
		t.Errorf("battery should be empty, remaining %v", b.Remaining())
	}
	if b.FractionRemaining() != 0 {
		t.Errorf("fraction = %v", b.FractionRemaining())
	}
	if _, err := NewBattery(0, cfg); err == nil {
		t.Error("expected error for zero capacity")
	}
}

func TestBatteryIdleAndBounds(t *testing.T) {
	b, _ := NewBattery(1, DefaultEnergyConfig())
	b.AccrueIdle(100) // 100 s × 2 mW = 0.2 J
	if math.Abs(b.Remaining()-0.8) > 1e-12 {
		t.Errorf("remaining = %v", b.Remaining())
	}
	b.AccrueIdle(-5) // no-op
	if math.Abs(b.Remaining()-0.8) > 1e-12 {
		t.Error("negative idle changed battery")
	}
	if b.Used(CostKind(99)) != 0 {
		t.Error("unknown kind should report 0")
	}
	b.Consume(CostKind(99)) // no-op
	if math.Abs(b.Remaining()-0.8) > 1e-12 {
		t.Error("unknown kind consumed energy")
	}
}

func TestDeadBatteryKillsNode(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	b, _ := NewBattery(1e-9, DefaultEnergyConfig())
	node := net.MustNode(0)
	node.Battery = b
	b.Consume(CostTx) // drains it
	if node.Alive() {
		t.Error("node with empty battery should be dead")
	}
	if err := net.Unicast(0, 1, "x", nil); err == nil {
		t.Error("expected send failure from a dead-battery node")
	}
	sched.RunAll()
	if net.Stats().Delivered != 0 {
		t.Error("dead-battery node transmitted")
	}
}

func TestEnergyAccountingOnTraffic(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	cfg := DefaultEnergyConfig()
	b0, _ := NewBattery(10, cfg)
	b1, _ := NewBattery(10, cfg)
	net.MustNode(0).Battery = b0
	net.MustNode(1).Battery = b1
	for i := 0; i < 5; i++ {
		if err := net.Unicast(0, 1, "x", nil); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunAll()
	if math.Abs(b0.Used(CostTx)-5*cfg.TxJ) > 1e-12 {
		t.Errorf("tx energy = %v", b0.Used(CostTx))
	}
	if math.Abs(b1.Used(CostRx)-5*cfg.RxJ) > 1e-12 {
		t.Errorf("rx energy = %v", b1.Used(CostRx))
	}
}

func TestCostKindString(t *testing.T) {
	names := map[CostKind]string{
		CostTx: "tx", CostRx: "rx", CostSample: "sample", CostCPU: "cpu",
		CostIdle: "idle", CostKind(42): "CostKind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q", int(k), got)
		}
	}
}

func TestProtocolHandlerPrecedence(t *testing.T) {
	net, sched := gridNet(t, 1, 2, 25, perfectRadio(), 1)
	n1 := net.MustNode(1)
	protoCalls, defaultCalls := 0, 0
	n1.RegisterProtocol("special", func(n *Node, msg Message) { protoCalls++ })
	n1.OnMessage = func(n *Node, msg Message) { defaultCalls++ }
	_ = net.Unicast(0, 1, "special", nil)
	_ = net.Unicast(0, 1, "normal", nil)
	sched.RunAll()
	if protoCalls != 1 || defaultCalls != 1 {
		t.Errorf("proto=%d default=%d, want 1/1", protoCalls, defaultCalls)
	}
}
