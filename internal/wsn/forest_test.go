package wsn

import (
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sim"
)

func forestNet(t *testing.T, rows, cols int) *Network {
	t.Helper()
	sched := sim.NewScheduler(1)
	positions := geo.GridSpec{Rows: rows, Cols: cols, Spacing: 25}.Positions()
	radio := DefaultRadioConfig()
	radio.LossProb = 0
	w, err := NewNetwork(sched, positions, radio)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSelectRootsDeterministicAndSpread: same network, same k, same roots —
// and the roots actually spread across the field instead of clumping.
func TestSelectRootsDeterministicAndSpread(t *testing.T) {
	w := forestNet(t, 10, 10)
	r1 := w.SelectRoots(4)
	r2 := w.SelectRoots(4)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("SelectRoots not deterministic: %v vs %v", r1, r2)
	}
	if len(r1) != 4 {
		t.Fatalf("wanted 4 roots, got %v", r1)
	}
	for i := 1; i < len(r1); i++ {
		if r1[i] <= r1[i-1] {
			t.Fatalf("roots not sorted ascending: %v", r1)
		}
	}
	// Farthest-point sampling on a square grid must not place two roots
	// adjacent to each other.
	for i, a := range r1 {
		for _, b := range r1[i+1:] {
			if d := w.MustNode(a).Pos.Dist(w.MustNode(b).Pos); d < 50 {
				t.Fatalf("roots %d and %d only %g m apart: %v", a, b, d, r1)
			}
		}
	}
	// k capped at the number of alive nodes; k<1 clamps to 1.
	if got := w.SelectRoots(0); len(got) != 1 {
		t.Fatalf("k=0 should clamp to one root, got %v", got)
	}
	small := forestNet(t, 1, 2)
	if got := small.SelectRoots(10); len(got) != 2 {
		t.Fatalf("k beyond population should cap: %v", got)
	}
}

// TestBuildForestNearestRoot: every node lands in the tree of its
// hop-nearest root, parents point toward that root, and dead or duplicate
// roots are rejected.
func TestBuildForestNearestRoot(t *testing.T) {
	w := forestNet(t, 8, 8)
	roots := w.SelectRoots(3)
	f, err := w.BuildForest(roots)
	if err != nil {
		t.Fatal(err)
	}
	for id := range f.Root {
		nid := NodeID(id)
		if f.Root[id] < 0 {
			t.Fatalf("node %d unassigned in a connected grid", id)
		}
		// Assigned root is hop-nearest (ties allowed).
		own := w.HopDistance(nid, f.Root[id])
		if own != f.Hops[id] {
			t.Fatalf("node %d: forest hops %d but graph distance %d", id, f.Hops[id], own)
		}
		for _, r := range roots {
			if d := w.HopDistance(nid, r); d >= 0 && d < own {
				t.Fatalf("node %d assigned root %d at %d hops but root %d is %d hops", id, f.Root[id], own, r, d)
			}
		}
		// Walking parents reaches the assigned root within Hops steps.
		cur := nid
		for steps := 0; cur != f.Root[id]; steps++ {
			if steps > f.Hops[id] {
				t.Fatalf("node %d: parent chain does not reach root %d", id, f.Root[id])
			}
			if f.Root[cur] != f.Root[id] {
				t.Fatalf("node %d: parent chain crosses into tree of %d", id, f.Root[cur])
			}
			cur = f.Parent[cur]
		}
	}

	if _, err := w.BuildForest(nil); err == nil {
		t.Fatal("empty root set should fail")
	}
	if _, err := w.BuildForest([]NodeID{roots[0], roots[0]}); err == nil {
		t.Fatal("duplicate roots should fail")
	}
	w.MustNode(roots[0]).Fail()
	if _, err := w.BuildForest(roots); err == nil {
		t.Fatal("dead root should fail")
	}
}

// TestSelectRootsSkipsDead: dead nodes are neither chosen nor counted.
func TestSelectRootsSkipsDead(t *testing.T) {
	w := forestNet(t, 4, 4)
	center := w.SelectRoots(1)[0]
	w.MustNode(center).Fail()
	next := w.SelectRoots(1)
	if len(next) != 1 || next[0] == center {
		t.Fatalf("dead node selected as root: %v", next)
	}
}
