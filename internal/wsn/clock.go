package wsn

// Clock models a node's imperfect local clock: a fixed offset plus linear
// drift relative to true time. The SID system assumes nodes are
// time-synchronized before deployment and resynchronized by a protocol
// (§IV-C1: "it should run time synchronization and localization
// algorithms"); the residual error after sync is what limits the speed
// estimator's timestamp accuracy.
type Clock struct {
	// Offset is the local-minus-true time offset at true time 0, seconds.
	Offset float64
	// DriftPPM is the frequency error in parts per million.
	DriftPPM float64
}

// Local converts true time to the clock's reading.
func (c Clock) Local(trueTime float64) float64 {
	return trueTime + c.Offset + c.DriftPPM*1e-6*trueTime
}

// True converts a clock reading back to true time.
func (c Clock) True(localTime float64) float64 {
	return (localTime - c.Offset) / (1 + c.DriftPPM*1e-6)
}

// Adjust applies a correction to the clock offset (what a sync protocol
// does after estimating the offset to a reference).
func (c *Clock) Adjust(delta float64) { c.Offset += delta }

// Skew changes the clock's rate by deltaPPM at true time now while keeping
// Local(now) continuous: readings diverge from true time at the new rate
// from now on instead of jumping. This is the smooth spoof of an attacker
// (or a drifting oscillator) that a step detector cannot see, as opposed to
// the discontinuity Adjust produces.
func (c *Clock) Skew(deltaPPM, now float64) {
	c.Offset -= deltaPPM * 1e-6 * now
	c.DriftPPM += deltaPPM
}
