// Package detect implements SID's node-level intrusion detection (§IV-B):
// the per-node pipeline that turns raw z-accelerometer counts into
// detection reports.
//
// Pipeline, following the paper:
//
//  1. Low-pass filter the z series at 1 Hz (ship wake and swell live below
//     1 Hz; chop and sensor noise above it — Fig. 8).
//  2. Subtract the 1 g gravity level and fold negative excursions up
//     ("we have the absolute value of those signal below zero"), since
//     disturbance information lives in both directions.
//  3. Maintain batch statistics (mΔt, dΔt) over u-sample windows (eq. 4)
//     and environment-adaptive moving statistics m′_T, d′_T with
//     forgetting factors β₁ = β₂ = 0.99 (eq. 5). Windows containing
//     threshold crossings do not update the moving statistics, so the
//     adaptive threshold tracks the sea state but not the intrusions.
//  4. Per sample compute the deviation Dᵢ and compare with the threshold
//     D_max = M·m′_T (eqs. 6–7; see ThresholdMode for the two published
//     readings of eq. 6).
//  5. Over each Δt evaluation window compute the anomaly frequency
//     af = N_A/N (eq. 7) and the average crossing energy E_Δt (eq. 8).
//     A window whose af passes the configured threshold yields a Report
//     carrying the onset time and energy — exactly what the paper's node
//     transmits to its temporary cluster head.
package detect

import (
	"fmt"
	"math"

	"github.com/sid-wsn/sid/internal/dsp"
	"github.com/sid-wsn/sid/internal/stats"
)

// UpdateGate selects which samples update the adaptive statistics.
type UpdateGate int

const (
	// GateWindow (default) skips a whole statistics window only when the
	// majority of its samples crossed the threshold (a disturbance is in
	// progress); otherwise all samples are stored. This matches the
	// paper's intent — intrusions must not contaminate the environment
	// statistics — without the truncation bias of per-sample gating,
	// which systematically underestimates m′_T by excluding the upper
	// tail of the ambient distribution and so inflates the false-alarm
	// rate (see DESIGN.md).
	GateWindow UpdateGate = iota
	// GateSample is the paper's literal rule: "if Di is normal, ai will
	// be stored" — crossing samples never update the statistics.
	GateSample
)

// String implements fmt.Stringer.
func (g UpdateGate) String() string {
	switch g {
	case GateWindow:
		return "window"
	case GateSample:
		return "sample"
	default:
		return fmt.Sprintf("UpdateGate(%d)", int(g))
	}
}

// ThresholdMode selects the reading of the paper's eq. (6).
type ThresholdMode int

const (
	// ThresholdModePaper is the literal equation set: Dᵢ = |aᵢ − d′_T|
	// with D_max = M·m′_T. On the folded signal this is a magnitude test
	// against a multiple of the mean folded amplitude.
	ThresholdModePaper ThresholdMode = iota
	// ThresholdModeZScore is the conventional reading: Dᵢ = |aᵢ − m′_T|
	// with D_max = M·d′_T (deviation from the mean in units of the moving
	// standard deviation).
	ThresholdModeZScore
)

// String implements fmt.Stringer.
func (m ThresholdMode) String() string {
	switch m {
	case ThresholdModePaper:
		return "paper"
	case ThresholdModeZScore:
		return "zscore"
	default:
		return fmt.Sprintf("ThresholdMode(%d)", int(m))
	}
}

// Config parametrizes a node-level detector. The zero value is not valid;
// use DefaultConfig as a starting point.
type Config struct {
	// SampleRate of the z series in Hz (50 in the paper).
	SampleRate float64
	// CutoffHz is the low-pass cutoff (1 Hz in the paper).
	CutoffHz float64
	// FilterTaps sizes the FIR low-pass filter.
	FilterTaps int
	// GravityCounts is the 1 g level subtracted from the filtered signal
	// (1024 counts for the LIS3L02DQ at ±2 g/12-bit).
	GravityCounts float64
	// Beta1, Beta2 are the moving-statistics forgetting factors (0.99).
	Beta1, Beta2 float64
	// M is the threshold multiplier (1–3 in the evaluation).
	M float64
	// Mode selects the eq. (6) reading.
	Mode ThresholdMode
	// Gate selects the statistics-update gating (see UpdateGate).
	Gate UpdateGate
	// StatWindow is u, the batch-statistics window length in samples
	// (the paper samples "for a period of time"; 100 samples = 2 s).
	StatWindow int
	// AnomalyWindow is NΔt, the anomaly-frequency evaluation window in
	// samples (Δt ≈ 2 s → 100 samples).
	AnomalyWindow int
	// AnomalyHop is the stride between evaluations of the sliding Δt
	// window, in samples. A hop below the window length overlaps
	// evaluations so a wake train straddling a window boundary is still
	// seen whole. Defaults to AnomalyWindow/2.
	AnomalyHop int
	// AnomalyThreshold is the af fraction required to report (0–1].
	AnomalyThreshold float64
	// WarmupWindows is the number of initial batch windows consumed for
	// initialization before any report can be produced (the paper's
	// Initialization procedure plus filter settling).
	WarmupWindows int
	// FreezeAfterWarmup disables adaptive updates after initialization,
	// turning the detector into the fixed-threshold baseline used by the
	// adaptivity ablation.
	FreezeAfterWarmup bool
	// EscapeWindows guards against threshold lock-up: because only normal
	// samples update the moving statistics (the paper's rule), a sudden,
	// sustained rise in sea state would leave the threshold stuck below
	// the new ambient level forever. After this many consecutive
	// batch windows whose majority of samples cross the threshold —
	// far longer than any wake train — the statistics re-initialize from
	// the full (ungated) window. 0 disables the escape. This mechanism is
	// an addition over the paper, documented in DESIGN.md.
	EscapeWindows int
}

// DefaultConfig returns the paper's operating point: 50 Hz, 1 Hz cutoff,
// β = 0.99, M = 2, Δt = 2 s, af threshold 60%.
func DefaultConfig() Config {
	return Config{
		SampleRate:       50,
		CutoffHz:         1,
		FilterTaps:       101,
		GravityCounts:    1024,
		Beta1:            0.99,
		Beta2:            0.99,
		M:                2,
		Mode:             ThresholdModePaper,
		StatWindow:       100,
		AnomalyWindow:    100,
		AnomalyThreshold: 0.6,
		WarmupWindows:    5,
		EscapeWindows:    15,
	}
}

func (c Config) validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("detect: SampleRate must be positive, got %g", c.SampleRate)
	}
	if c.CutoffHz <= 0 || c.CutoffHz >= c.SampleRate/2 {
		return fmt.Errorf("detect: CutoffHz %g outside (0, %g)", c.CutoffHz, c.SampleRate/2)
	}
	if c.FilterTaps <= 0 {
		return fmt.Errorf("detect: FilterTaps must be positive, got %d", c.FilterTaps)
	}
	if c.Beta1 <= 0 || c.Beta1 >= 1 || c.Beta2 <= 0 || c.Beta2 >= 1 {
		return fmt.Errorf("detect: betas must be in (0,1), got %g, %g", c.Beta1, c.Beta2)
	}
	if c.M <= 0 {
		return fmt.Errorf("detect: M must be positive, got %g", c.M)
	}
	if c.StatWindow <= 0 || c.AnomalyWindow <= 0 {
		return fmt.Errorf("detect: windows must be positive, got %d, %d", c.StatWindow, c.AnomalyWindow)
	}
	if c.AnomalyHop < 0 || c.AnomalyHop > c.AnomalyWindow {
		return fmt.Errorf("detect: AnomalyHop must be in [0, AnomalyWindow], got %d", c.AnomalyHop)
	}
	if c.AnomalyThreshold <= 0 || c.AnomalyThreshold > 1 {
		return fmt.Errorf("detect: AnomalyThreshold must be in (0,1], got %g", c.AnomalyThreshold)
	}
	if c.WarmupWindows < 1 {
		return fmt.Errorf("detect: WarmupWindows must be ≥ 1, got %d", c.WarmupWindows)
	}
	if c.EscapeWindows < 0 {
		return fmt.Errorf("detect: EscapeWindows must be non-negative, got %d", c.EscapeWindows)
	}
	return nil
}

// WindowStat summarizes one completed Δt anomaly-evaluation window.
type WindowStat struct {
	// Start and End are the window's time span (signal time base,
	// group-delay compensated).
	Start, End float64
	// AnomalyFreq is af = N_A / NΔt (eq. 7).
	AnomalyFreq float64
	// Crossings is N_A, the number of threshold crossings.
	Crossings int
	// Energy is E_Δt, the average crossing deviation (eq. 8); 0 when no
	// crossing occurred.
	Energy float64
	// Onset is the time of the first crossing in the window, or NaN.
	Onset float64
	// Threshold is the D_max in force during the window.
	Threshold float64
	// Mean and Std are the EWMA moving mean m′_T and deviation d′_T
	// (eq. 6) in force when the window completed — the context behind
	// Threshold, exposed so telemetry can answer "why did this window
	// (not) trip" without re-running the detector.
	Mean, Std float64
}

// Report is the node-level detection the paper transmits to the temporary
// cluster head: onset time and average crossing energy (§IV-B: "it reports
// EΔ and the onset time").
type Report struct {
	Onset       float64
	Energy      float64
	AnomalyFreq float64
}

// Detector is a streaming node-level detector. Feed samples with Push;
// it is not safe for concurrent use (one detector per node).
type Detector struct {
	cfg    Config
	stream *dsp.Stream
	delay  float64 // filter group delay in seconds

	moving *stats.Moving

	// batch statistics accumulation (normal samples only).
	batch []float64

	// escape bookkeeping: all samples of the current span, gated or not.
	batchAll   []float64
	batchCross int
	consecAnom int

	// sliding anomaly window: ring buffer of the last AnomalyWindow
	// samples' evaluation records.
	ring      []sampleRec
	ringPos   int
	ringFull  bool
	sinceEval int
	hop       int

	samplesSeen   int
	settleSamples int
	warmupSamples int
}

// sampleRec is one sample's contribution to the sliding anomaly window.
type sampleRec struct {
	t       float64
	dev     float64
	crossed bool
}

// New validates cfg and builds a detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fir, err := dsp.LowPassFIR(cfg.CutoffHz, cfg.SampleRate, cfg.FilterTaps, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	moving, err := stats.NewMoving(cfg.Beta1, cfg.Beta2)
	if err != nil {
		return nil, err
	}
	settle := len(fir.Taps)
	hop := cfg.AnomalyHop
	if hop == 0 {
		hop = cfg.AnomalyWindow / 2
		if hop == 0 {
			hop = 1
		}
	}
	return &Detector{
		cfg:           cfg,
		stream:        fir.Stream(),
		delay:         float64(fir.GroupDelay()) / cfg.SampleRate,
		moving:        moving,
		batch:         make([]float64, 0, cfg.StatWindow),
		ring:          make([]sampleRec, cfg.AnomalyWindow),
		hop:           hop,
		settleSamples: settle,
		warmupSamples: cfg.WarmupWindows*cfg.StatWindow + settle,
	}, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// MemBytes returns the detector's resident state in bytes: the FIR taps and
// delay line, the batch-statistics buffers (bounded by StatWindow), and the
// sliding anomaly-window ring (AnomalyWindow records). Every buffer is a
// fixed-size ring or a capacity-bounded accumulator sized from the
// configuration, so once warm this is a constant — the per-node memory
// budget a large field multiplies by its node count.
func (d *Detector) MemBytes() int {
	const recBytes = 24 // sampleRec: two float64s plus a padded bool
	return d.stream.MemBytes() +
		(cap(d.batch)+cap(d.batchAll))*8 +
		cap(d.ring)*recBytes
}

// Threshold returns the current D_max (eq. 7's M·m′_T or the z-score
// variant), or NaN before initialization.
func (d *Detector) Threshold() float64 {
	if !d.moving.Initialized() {
		return math.NaN()
	}
	switch d.cfg.Mode {
	case ThresholdModeZScore:
		return d.cfg.M * d.moving.Std()
	default:
		return d.cfg.M * d.moving.Mean()
	}
}

// deviation computes Dᵢ for a folded sample.
func (d *Detector) deviation(folded float64) float64 {
	switch d.cfg.Mode {
	case ThresholdModeZScore:
		return math.Abs(folded - d.moving.Mean())
	default:
		return math.Abs(folded - d.moving.Std())
	}
}

// Push feeds one raw z sample (ADC counts) taken at time t. When a Δt
// anomaly window completes, its statistics are returned with ok = true.
// Samples must arrive in time order at the configured rate.
func (d *Detector) Push(t float64, zCounts float64) (ws WindowStat, ok bool) {
	filtered := d.stream.Push(zCounts)
	d.samplesSeen++
	// Discard the filter's startup transient: until the delay line is
	// fully primed its output ramps from zero and would wreck the
	// adaptive statistics.
	if d.samplesSeen <= d.settleSamples {
		return WindowStat{}, false
	}
	// The causal filter output at this instant describes the input
	// group-delay seconds ago.
	ft := t - d.delay

	// Preprocess: remove gravity, fold.
	folded := math.Abs(filtered - d.cfg.GravityCounts)

	warm := d.samplesSeen > d.warmupSamples

	crossing := false
	var dev float64
	if d.moving.Initialized() {
		dev = d.deviation(folded)
		crossing = dev > d.Threshold()
	}

	// Adaptive statistics update. GateSample is the paper's literal rule
	// (crossing samples never stored); GateWindow stores whole windows
	// unless a disturbance dominates them.
	if d.cfg.Gate == GateSample && (!crossing || !d.moving.Initialized()) {
		d.batch = append(d.batch, folded)
		if len(d.batch) >= d.cfg.StatWindow {
			if !d.cfg.FreezeAfterWarmup || !warm {
				m, sd := stats.MeanStd(d.batch)
				d.moving.Update(m, sd)
			}
			d.batch = d.batch[:0]
		}
	}

	// Full-window bookkeeping: drives GateWindow updates and the escape
	// mechanism (see Config.EscapeWindows) that re-initializes stuck
	// statistics after a sustained environment shift.
	d.batchAll = append(d.batchAll, folded)
	if crossing {
		d.batchCross++
	}
	if len(d.batchAll) >= d.cfg.StatWindow {
		anomalous := float64(d.batchCross) > 0.5*float64(len(d.batchAll))
		if anomalous {
			d.consecAnom++
		} else {
			d.consecAnom = 0
		}
		update := !d.cfg.FreezeAfterWarmup || !warm
		if d.cfg.Gate == GateWindow && update && (!anomalous || !d.moving.Initialized()) {
			m, sd := stats.MeanStd(d.batchAll)
			d.moving.Update(m, sd)
		}
		if d.cfg.EscapeWindows > 0 && !d.cfg.FreezeAfterWarmup &&
			d.consecAnom >= d.cfg.EscapeWindows {
			m, sd := stats.MeanStd(d.batchAll)
			d.moving.Reinit(m, sd)
			d.consecAnom = 0
			d.batch = d.batch[:0]
		}
		d.batchAll = d.batchAll[:0]
		d.batchCross = 0
	}

	// Sliding anomaly window bookkeeping starts only after warmup.
	if !warm {
		return WindowStat{}, false
	}
	d.ring[d.ringPos] = sampleRec{t: ft, dev: dev, crossed: crossing}
	d.ringPos++
	if d.ringPos == len(d.ring) {
		d.ringPos = 0
		d.ringFull = true
	}
	d.sinceEval++
	if !d.ringFull || d.sinceEval < d.hop {
		return WindowStat{}, false
	}
	d.sinceEval = 0
	return d.evaluateRing(), true
}

// evaluateRing computes the WindowStat over the current ring contents in
// chronological order.
func (d *Detector) evaluateRing() WindowStat {
	n := len(d.ring)
	ws := WindowStat{
		Start:     d.ring[d.ringPos].t, // oldest sample
		End:       d.ring[(d.ringPos+n-1)%n].t,
		Onset:     math.NaN(),
		Threshold: d.Threshold(),
		Mean:      d.moving.Mean(),
		Std:       d.moving.Std(),
	}
	var energy float64
	for i := 0; i < n; i++ {
		rec := d.ring[(d.ringPos+i)%n]
		if !rec.crossed {
			continue
		}
		ws.Crossings++
		energy += rec.dev
		if math.IsNaN(ws.Onset) {
			ws.Onset = rec.t
		}
	}
	ws.AnomalyFreq = float64(ws.Crossings) / float64(n)
	if ws.Crossings > 0 {
		ws.Energy = energy / float64(ws.Crossings)
	}
	return ws
}

// Detected reports whether a window passes the af threshold (the node's
// report condition).
func (d *Detector) Detected(ws WindowStat) bool {
	return ws.AnomalyFreq >= d.cfg.AnomalyThreshold
}

// ReportOf converts a passing window into the transmitted report.
func (d *Detector) ReportOf(ws WindowStat) Report {
	return Report{Onset: ws.Onset, Energy: ws.Energy, AnomalyFreq: ws.AnomalyFreq}
}

// ProcessSeries runs the detector over a whole recording starting at t0
// and returns every completed window. Convenient for offline evaluation.
func (d *Detector) ProcessSeries(t0 float64, z []float64) []WindowStat {
	var out []WindowStat
	for i, v := range z {
		t := t0 + float64(i)/d.cfg.SampleRate
		if ws, ok := d.Push(t, v); ok {
			out = append(out, ws)
		}
	}
	return out
}

// ReportsIn filters the windows that pass the detector's af threshold and
// converts them to reports.
func (d *Detector) ReportsIn(windows []WindowStat) []Report {
	var out []Report
	for _, ws := range windows {
		if d.Detected(ws) {
			out = append(out, d.ReportOf(ws))
		}
	}
	return out
}
