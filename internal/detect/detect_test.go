package detect

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/wake"
)

// synth builds a z-count series of dur seconds for a buoy at pos, over a
// smooth sea, optionally with a ship whose wake front reaches the buoy at
// the returned arrival time.
func synth(t *testing.T, pos geo.Vec2, dur float64, withShip bool, seed int64) (z []float64, arrival float64) {
	t.Helper()
	spec, err := ocean.NewPiersonMoskowitz(0.25, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	model := sensor.Composite{field}
	arrival = math.NaN()
	if withShip {
		// Track parallel to X, 25 m south of the origin row; the buoy at
		// pos sees the front mid-recording.
		track := geo.NewLine(geo.Vec2{X: 0, Y: pos.Y - 25}, geo.Vec2{X: 1, Y: 0})
		ship, err := wake.NewShip(track, geo.Knots(10), 12)
		if err != nil {
			t.Fatal(err)
		}
		// Position the ship so the wake arrives at 60% of the recording.
		ship.Time0 = 0
		raw := ship.ArrivalTime(pos)
		ship.Time0 = dur*0.6 - raw
		arrival = ship.ArrivalTime(pos)
		model = append(model, wake.Field{Ship: ship})
	}
	b := sensor.NewBuoy(sensor.BuoyConfig{Anchor: pos, DriftRadius: 2, Seed: seed})
	sn, err := sensor.NewSensor(b, sensor.DefaultAccelConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := sn.Record(model, 0, dur)
	return sensor.ZSeries(rec), arrival
}

func TestConfigValidation(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		c := DefaultConfig()
		mut(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.SampleRate = 0 }),
		mk(func(c *Config) { c.CutoffHz = 0 }),
		mk(func(c *Config) { c.CutoffHz = 30 }),
		mk(func(c *Config) { c.FilterTaps = 0 }),
		mk(func(c *Config) { c.Beta1 = 1 }),
		mk(func(c *Config) { c.Beta2 = 0 }),
		mk(func(c *Config) { c.M = 0 }),
		mk(func(c *Config) { c.StatWindow = 0 }),
		mk(func(c *Config) { c.AnomalyWindow = -1 }),
		mk(func(c *Config) { c.AnomalyThreshold = 0 }),
		mk(func(c *Config) { c.AnomalyThreshold = 1.5 }),
		mk(func(c *Config) { c.WarmupWindows = 0 }),
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestThresholdBeforeInit(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(d.Threshold()) {
		t.Errorf("pre-init threshold = %v, want NaN", d.Threshold())
	}
}

func TestFalseAlarmsRareOnCalmSea(t *testing.T) {
	// Node-level false alarms are expected occasionally (the paper's
	// Fig. 11 shows only ~70% node-level reliability at M=2, af=60% —
	// that is why the cluster level exists), but they must stay rare.
	z, _ := synth(t, geo.Vec2{}, 300, false, 31)
	d, err := New(DefaultConfig()) // M=2, af=0.6
	if err != nil {
		t.Fatal(err)
	}
	windows := d.ProcessSeries(0, z)
	if len(windows) == 0 {
		t.Fatal("no windows produced")
	}
	reports := d.ReportsIn(windows)
	if len(reports) > 3 {
		t.Errorf("%d false detections in %d windows — too many", len(reports), len(windows))
	}
	// At M=3 with a high af requirement, the calm sea must be silent.
	strict := DefaultConfig()
	strict.M = 3
	strict.AnomalyThreshold = 0.9
	ds, err := New(strict)
	if err != nil {
		t.Fatal(err)
	}
	if r := ds.ReportsIn(ds.ProcessSeries(0, z)); len(r) != 0 {
		t.Errorf("strict detector false alarms: %+v", r)
	}
}

func TestDetectsShipPass(t *testing.T) {
	pos := geo.Vec2{X: 300, Y: 0}
	z, arrival := synth(t, pos, 400, true, 32)
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	windows := d.ProcessSeries(0, z)
	reports := d.ReportsIn(windows)
	if len(reports) == 0 {
		t.Fatal("ship pass not detected")
	}
	// At least one report's onset must fall near the wake packet
	// (front arrival .. arrival + ~3 durations).
	found := false
	for _, r := range reports {
		if r.Onset >= arrival-2 && r.Onset <= arrival+15 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no report near arrival %v; reports %+v", arrival, reports)
	}
}

func TestZScoreModeAlsoDetects(t *testing.T) {
	pos := geo.Vec2{X: 300, Y: 0}
	z, arrival := synth(t, pos, 400, true, 33)
	cfg := DefaultConfig()
	cfg.Mode = ThresholdModeZScore
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := d.ReportsIn(d.ProcessSeries(0, z))
	if len(reports) == 0 {
		t.Fatal("z-score mode missed the ship")
	}
	near := false
	for _, r := range reports {
		if r.Onset >= arrival-2 && r.Onset <= arrival+15 {
			near = true
		}
	}
	if !near {
		t.Errorf("z-score reports not near arrival %v: %+v", arrival, reports)
	}
}

func TestEnergyDecreasesWithDistance(t *testing.T) {
	// The same pass observed farther from the travel line yields lower
	// crossing energy — the ordering C_re relies on.
	run := func(offset float64) float64 {
		spec, _ := ocean.NewPiersonMoskowitz(0.25, 4.0)
		field, _ := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: 40})
		track := geo.NewLine(geo.Vec2{X: 0, Y: -25}, geo.Vec2{X: 1, Y: 0})
		ship, _ := wake.NewShip(track, geo.Knots(10), 12)
		pos := geo.Vec2{X: 300, Y: offset}
		ship.Time0 = 240 - ship.ArrivalTime(pos)
		b := sensor.NewBuoy(sensor.BuoyConfig{Anchor: pos, Seed: 41})
		sn, _ := sensor.NewSensor(b, sensor.DefaultAccelConfig())
		rec := sn.Record(sensor.Composite{field, wake.Field{Ship: ship}}, 0, 400)
		cfg := DefaultConfig()
		cfg.AnomalyThreshold = 0.3
		d, _ := New(cfg)
		reports := d.ReportsIn(d.ProcessSeries(0, sensor.ZSeries(rec)))
		var maxE float64
		for _, r := range reports {
			if r.Energy > maxE {
				maxE = r.Energy
			}
		}
		return maxE
	}
	near := run(0)  // 25 m from track
	far := run(100) // 125 m from track
	if near == 0 {
		t.Fatal("near node saw nothing")
	}
	if far >= near {
		t.Errorf("energy ordering violated: near=%v far=%v", near, far)
	}
}

func TestAdaptiveThresholdTracksSeaState(t *testing.T) {
	// Feed a calm sea, then a rough sea; the threshold must rise.
	mkSeries := func(hs float64, seed int64, dur float64) []float64 {
		spec, _ := ocean.NewPiersonMoskowitz(hs, 4.0)
		field, _ := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: seed})
		b := sensor.NewBuoy(sensor.BuoyConfig{Seed: seed})
		sn, _ := sensor.NewSensor(b, sensor.DefaultAccelConfig())
		return sensor.ZSeries(sn.Record(field, 0, dur))
	}
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	calm := mkSeries(0.1, 50, 200)
	d.ProcessSeries(0, calm)
	calmThresh := d.Threshold()
	rough := mkSeries(0.8, 51, 600)
	d.ProcessSeries(200, rough)
	roughThresh := d.Threshold()
	if math.IsNaN(calmThresh) || math.IsNaN(roughThresh) {
		t.Fatal("threshold not initialized")
	}
	if roughThresh < 2*calmThresh {
		t.Errorf("threshold did not adapt: calm=%v rough=%v", calmThresh, roughThresh)
	}
}

func TestFreezeAfterWarmup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FreezeAfterWarmup = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := synth(t, geo.Vec2{}, 120, false, 52)
	d.ProcessSeries(0, z)
	frozen := d.Threshold()
	// Push a much rougher sea; threshold must not move.
	spec, _ := ocean.NewPiersonMoskowitz(1.5, 5.0)
	field, _ := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: 53})
	b := sensor.NewBuoy(sensor.BuoyConfig{Seed: 53})
	sn, _ := sensor.NewSensor(b, sensor.DefaultAccelConfig())
	rough := sensor.ZSeries(sn.Record(field, 120, 200))
	d.ProcessSeries(120, rough)
	if d.Threshold() != frozen {
		t.Errorf("frozen threshold moved: %v -> %v", frozen, d.Threshold())
	}
}

func TestWindowCadence(t *testing.T) {
	cfg := DefaultConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 50 * 120 // 120 s
	z := make([]float64, n)
	for i := range z {
		z[i] = 1024
	}
	windows := d.ProcessSeries(0, z)
	// Warmup consumes 5 stat windows + filter settling (~12 s); sliding
	// windows are evaluated every hop = 1 s. Expect roughly 105 windows.
	if len(windows) < 100 || len(windows) > 110 {
		t.Errorf("window count = %d", len(windows))
	}
	for i := 1; i < len(windows); i++ {
		// Evaluations advance by the hop (1 s)...
		if gap := windows[i].Start - windows[i-1].Start; math.Abs(gap-1) > 1e-6 {
			t.Fatalf("window %d start gap = %v, want 1 s", i, gap)
		}
		// ...and each spans the full Δt window (2 s).
		span := windows[i].End - windows[i].Start
		if math.Abs(span-(99.0/50.0)) > 1e-6 {
			t.Fatalf("window %d span = %v", i, span)
		}
	}
}

func TestConstantSignalNoCrossings(t *testing.T) {
	d, _ := New(DefaultConfig())
	n := 50 * 60
	z := make([]float64, n)
	for i := range z {
		z[i] = 1024
	}
	for _, ws := range d.ProcessSeries(0, z) {
		if ws.Crossings != 0 || ws.AnomalyFreq != 0 {
			t.Fatalf("constant signal produced crossings: %+v", ws)
		}
		if !math.IsNaN(ws.Onset) {
			t.Fatalf("onset should be NaN with no crossings: %+v", ws)
		}
		if ws.Energy != 0 {
			t.Fatalf("energy should be 0 with no crossings: %+v", ws)
		}
	}
}

func TestStepDisturbanceOnsetTiming(t *testing.T) {
	// A burst injected at a known time must produce a report whose onset is
	// within a second of it (group-delay compensation works).
	cfg := DefaultConfig()
	cfg.AnomalyThreshold = 0.3
	d, _ := New(cfg)
	n := 50 * 120
	z := make([]float64, n)
	for i := range z {
		z[i] = 1024 + 20*math.Sin(2*math.Pi*0.2*float64(i)/50) // mild swell
	}
	burstStart := 80.0
	for i := int(burstStart * 50); i < int((burstStart+3)*50); i++ {
		z[i] += 300 * math.Sin(2*math.Pi*0.5*float64(i)/50)
	}
	reports := d.ReportsIn(d.ProcessSeries(0, z))
	if len(reports) == 0 {
		t.Fatal("burst not detected")
	}
	best := math.Inf(1)
	for _, r := range reports {
		if diff := math.Abs(r.Onset - burstStart); diff < best {
			best = diff
		}
	}
	if best > 2.5 {
		t.Errorf("onset error %v s too large", best)
	}
}

func TestHigherMFewerCrossings(t *testing.T) {
	z, _ := synth(t, geo.Vec2{}, 300, false, 60)
	count := func(m float64) int {
		cfg := DefaultConfig()
		cfg.M = m
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, ws := range d.ProcessSeries(0, z) {
			total += ws.Crossings
		}
		return total
	}
	c1, c3 := count(1), count(3)
	if c3 >= c1 {
		t.Errorf("M=3 crossings (%d) should be below M=1 (%d)", c3, c1)
	}
}

func TestThresholdModeString(t *testing.T) {
	if ThresholdModePaper.String() != "paper" || ThresholdModeZScore.String() != "zscore" {
		t.Error("mode strings wrong")
	}
	if ThresholdMode(9).String() != "ThresholdMode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestDetectedAndReportOf(t *testing.T) {
	d, _ := New(DefaultConfig()) // af threshold 0.6
	ws := WindowStat{AnomalyFreq: 0.7, Onset: 5, Energy: 42}
	if !d.Detected(ws) {
		t.Error("0.7 ≥ 0.6 should detect")
	}
	if d.Detected(WindowStat{AnomalyFreq: 0.5}) {
		t.Error("0.5 < 0.6 should not detect")
	}
	r := d.ReportOf(ws)
	if r.Onset != 5 || r.Energy != 42 || r.AnomalyFreq != 0.7 {
		t.Errorf("report = %+v", r)
	}
}
