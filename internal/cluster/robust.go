package cluster

import (
	"math"
	"sort"

	"github.com/sid-wsn/sid/internal/geo"
)

// This file is the byzantine-tolerant variant of the correlation test:
// EvaluateRobust re-runs Evaluate while greedily trimming the reports most
// inconsistent with the wake's sweep structure, up to a bounded fraction.
// A compromised minority fabricating plausible-but-random reports drags the
// order products of eqs. 10/12 (and the sweep/tau gates) below threshold;
// trimming restores the honest majority's evidence while an all-noise
// collection keeps failing for any subset — the trim budget is far too
// small to sculpt order out of randomness.

// RobustResult is the outcome of a trimmed evaluation.
type RobustResult struct {
	// Result is the accepted evaluation (the untrimmed one when it already
	// detected, otherwise the first detecting trimmed evaluation, otherwise
	// the untrimmed result).
	Result
	// Trimmed lists the node IDs excluded by the accepted evaluation, in
	// trim order. Empty when the untrimmed evaluation was accepted. Only a
	// detecting evaluation ever reports trimmed nodes — they are the
	// witnesses that contradicted a confirmed event, which is what makes
	// them suspects rather than bystanders.
	Trimmed []int
	// Kept holds the reports behind the accepted evaluation (deduplicated,
	// trimmed nodes removed) — the set a head should hand to the speed
	// estimator.
	Kept []Report
}

// EvaluateRobust runs Evaluate, and when the full set does not detect,
// retries with up to maxTrimFrac of the reports removed, one at a time,
// always dropping the report whose onset deviates most from its row band's
// consensus (ties broken toward higher energy deviation, then lower node
// ID — fully deterministic). maxTrimFrac ≤ 0 degrades to plain Evaluate.
func EvaluateRobust(reports []Report, cfg Config, maxTrimFrac float64) (RobustResult, error) {
	rs := DedupAtomic(reports)
	res, err := Evaluate(rs, cfg)
	if err != nil {
		return RobustResult{Result: res, Kept: rs}, err
	}
	full := RobustResult{Result: res, Kept: rs}
	if res.Detected || maxTrimFrac <= 0 {
		return full, nil
	}
	budget := int(maxTrimFrac * float64(len(rs)))
	kept := append([]Report(nil), rs...)
	var trimmed []int
	for t := 0; t < budget; t++ {
		// Evaluate needs ≥ 2 reports for a travel line, and the row gates
		// need structure — below MinRows reports nothing can pass.
		if len(kept) <= 2 || len(kept) <= cfg.MinRows {
			break
		}
		worst := worstOutlier(kept, res.TravelLine, cfg.RowSpacing)
		trimmed = append(trimmed, kept[worst].Node)
		kept = append(kept[:worst], kept[worst+1:]...)
		res, err = Evaluate(kept, cfg)
		if err != nil {
			break
		}
		// A trimmed detection is weaker evidence than an untrimmed one: the
		// trimmer had freedom to sculpt. It is accepted only when the wake's
		// arrival law explains the onsets that remain — an honest pass minus
		// its poisoned witnesses lies tightly on the arrival plane, while a
		// trimmed all-noise set never does, whatever the order gates say.
		if res.Detected && arrivalPlaneCoherent(kept, res.TravelLine) {
			return RobustResult{Result: res, Trimmed: trimmed, Kept: kept}, nil
		}
	}
	// No trimmed subset detected either: report the untrimmed evaluation
	// (the honest "no detection") and accuse no one.
	return full, nil
}

// worstOutlier returns the index of the report most inconsistent with the
// wake's arrival law under the given travel line. A constant-speed pass
// reaches a node once the ship has advanced to the node's along-line
// projection plus the wedge lag, which grows with the node's distance from
// the line — so honest onsets lie near a plane onset ≈ a + b·proj +
// c·dist. The plane is fit by least squares over all reports and the
// largest absolute residual is the outlier (node ID breaks exact ties
// deterministically). Fabricated onsets are anchored to the attacker's
// injection time regardless of position, which is precisely a large plane
// residual; honest far-from-line nodes, whose onsets are legitimately
// late, fit the plane and are spared — a per-band median test cannot make
// that distinction. When the design is singular (e.g. every report in one
// band) the fit degrades to the band-median deviation heuristic.
func worstOutlier(reports []Report, line geo.Line, spacing float64) int {
	if i, ok := planeResidualOutlier(reports, line); ok {
		return i
	}
	return bandMedianOutlier(reports, line, spacing)
}

// fitArrivalPlane solves the least-squares arrival law onset ≈ a + b·proj
// + c·dist over the reports. ok is false when the normal equations are
// singular (collinear geometry — e.g. every report in one band) or there
// are too few reports to overdetermine the 3-parameter fit.
func fitArrivalPlane(reports []Report, line geo.Line) (coef [3]float64, ok bool) {
	if len(reports) < 4 {
		return coef, false
	}
	var m [3][4]float64
	for _, r := range reports {
		x := [3]float64{1, line.Project(r.Pos), line.Dist(r.Pos)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += x[i] * x[j]
			}
			m[i][3] += x[i] * r.Onset
		}
	}
	// Gauss-Jordan with partial pivoting; bail out on a vanishing pivot.
	for c := 0; c < 3; c++ {
		p := c
		for r := c + 1; r < 3; r++ {
			if math.Abs(m[r][c]) > math.Abs(m[p][c]) {
				p = r
			}
		}
		m[c], m[p] = m[p], m[c]
		if math.Abs(m[c][c]) < 1e-9 {
			return coef, false
		}
		for r := 0; r < 3; r++ {
			if r == c {
				continue
			}
			f := m[r][c] / m[c][c]
			for j := c; j < 4; j++ {
				m[r][j] -= f * m[c][j]
			}
		}
	}
	return [3]float64{m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]}, true
}

// planeResidual is a report's absolute deviation from a fitted arrival
// plane.
func planeResidual(r Report, line geo.Line, coef [3]float64) float64 {
	return math.Abs(r.Onset - (coef[0] + coef[1]*line.Project(r.Pos) + coef[2]*line.Dist(r.Pos)))
}

// planeResidualOutlier fits the arrival plane and returns the index with
// the largest absolute residual (node ID breaks exact ties).
func planeResidualOutlier(reports []Report, line geo.Line) (int, bool) {
	coef, ok := fitArrivalPlane(reports, line)
	if !ok {
		return 0, false
	}
	worst, worstRes := 0, -1.0
	for i, r := range reports {
		res := planeResidual(r, line, coef)
		if res > worstRes ||
			(res == worstRes && reports[i].Node < reports[worst].Node) {
			worst, worstRes = i, res
		}
	}
	return worst, true
}

// The coherence gate's constants. Because the trimmer itself removes the
// worst plane residuals, a lone R² bound can be sculpted toward from pure
// noise (a 30% budget on 20 random reports reaches ≈0.71); honest passes
// sit near 0.93 with an RMS residual around a tenth of the fitted sweep
// span, while sculpted noise bottoms out near twice that. Requiring both
// leaves a wide margin on either side.
const (
	// coherenceR2 is the minimum fraction of onset variance the arrival
	// plane must explain before a trimmed detection is believed.
	coherenceR2 = 0.75
	// coherenceRMSFrac caps the RMS plane residual as a fraction of the
	// fitted sweep span (max minus min predicted onset).
	coherenceRMSFrac = 0.15
)

// arrivalPlaneCoherent reports whether the arrival law explains the
// reports' onsets: the plane-fit R² must reach coherenceR2 and the RMS
// residual must stay within coherenceRMSFrac of the fitted sweep span. A
// set whose onsets the plane cannot fit (singular geometry aside) is noise
// whatever its order statistics sculpted down to. Singular fits accept —
// degenerate geometry carries too few reports for the trimmer to sculpt.
func arrivalPlaneCoherent(reports []Report, line geo.Line) bool {
	coef, ok := fitArrivalPlane(reports, line)
	if !ok {
		return true
	}
	var mean float64
	for _, r := range reports {
		mean += r.Onset
	}
	mean /= float64(len(reports))
	var sse, sst float64
	minPred, maxPred := math.Inf(1), math.Inf(-1)
	for _, r := range reports {
		res := planeResidual(r, line, coef)
		sse += res * res
		d := r.Onset - mean
		sst += d * d
		pred := coef[0] + coef[1]*line.Project(r.Pos) + coef[2]*line.Dist(r.Pos)
		minPred = math.Min(minPred, pred)
		maxPred = math.Max(maxPred, pred)
	}
	if sst == 0 {
		return true
	}
	if 1-sse/sst < coherenceR2 {
		return false
	}
	span := maxPred - minPred
	if span <= 0 {
		return false
	}
	return math.Sqrt(sse/float64(len(reports))) <= coherenceRMSFrac*span
}

// bandMedianOutlier is the degenerate-geometry fallback: the largest
// absolute onset deviation from the report's band median, with the energy
// deviation from the band median as tie-breaker and the node ID as final
// deterministic tie-break. Bands with a single report fall back to the
// whole-set medians — a lone fabricated report in its own band must not
// become unimpeachable.
func bandMedianOutlier(reports []Report, line geo.Line, spacing float64) int {
	type bandKey = int
	bandOf := func(r Report) bandKey {
		return int(math.Round(line.Project(r.Pos) / spacing))
	}
	onsets := make(map[bandKey][]float64)
	energies := make(map[bandKey][]float64)
	var allOnsets, allEnergies []float64
	for _, r := range reports {
		b := bandOf(r)
		onsets[b] = append(onsets[b], r.Onset)
		energies[b] = append(energies[b], r.Energy)
		allOnsets = append(allOnsets, r.Onset)
		allEnergies = append(allEnergies, r.Energy)
	}
	allOnsetMed := median(allOnsets)
	allEnergyMed := median(allEnergies)
	worst, worstOnsetDev, worstEnergyDev := 0, -1.0, -1.0
	for i, r := range reports {
		b := bandOf(r)
		var onsetDev, energyDev float64
		if len(onsets[b]) >= 2 {
			onsetDev = math.Abs(r.Onset - median(onsets[b]))
			energyDev = math.Abs(r.Energy - median(energies[b]))
		} else {
			onsetDev = math.Abs(r.Onset - allOnsetMed)
			energyDev = math.Abs(r.Energy - allEnergyMed)
		}
		switch {
		case onsetDev > worstOnsetDev,
			onsetDev == worstOnsetDev && energyDev > worstEnergyDev,
			onsetDev == worstOnsetDev && energyDev == worstEnergyDev &&
				reports[i].Node < reports[worst].Node:
			worst, worstOnsetDev, worstEnergyDev = i, onsetDev, energyDev
		}
	}
	return worst
}

// median returns the middle value (mean of the middle two for even n).
// The input slice is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
