// Package cluster implements SID's cluster-level detection (§IV-C1): the
// spatial/temporal correlation test a temporary cluster head applies to the
// node reports it collects before escalating a detection to the static
// cluster head and the sink.
//
// A ship sweeping the deployment disturbs nodes row by row: within each
// row, nodes closer to the travel line are hit earlier (the cusp locus
// sweeps outward) and with more energy (the d^(−1/3) decay). Randomly
// scattered false alarms have neither ordering. The head therefore scores,
// per row, how well the reports' times and energies agree with the
// distance-to-travel-line order:
//
//	C_rt(i) = N/n  (eq. 9)   ordered-by-time fraction in row i
//	C_Nt    = Π C_rt(i) (eq. 10)
//	C_re(i) = N/n  (eq. 11)  ordered-by-energy fraction in row i
//	C_Ne    = Π C_re(i) (eq. 12)
//	C       = C_Nt × C_Ne (eq. 13)
//
// where n is the number of reports in the row and N the number of reports
// consistent with the required order.
//
// Two points the paper leaves open are resolved here (see DESIGN.md):
//
//   - N's combinatorics: we use the longest order-consistent subsequence
//     (ties allowed), which makes C_rt = 1 exactly when the whole row is
//     ordered, degrades gracefully, and scores a single-report row 1 as
//     the paper specifies.
//   - "Rows": the paper's Fig. 9 has the ship crossing the grid's rows;
//     "the ship will disturb nodes in several rows or columns" depending
//     on its heading. We therefore partition reports into geometric bands
//     by their projection along the estimated travel line (band width =
//     the deployment spacing), which reduces to grid rows or columns for
//     axis-aligned crossings and stays meaningful for oblique ones. The
//     travel line itself is estimated by fitting through the
//     highest-energy third of the reports (wake energy is maximal along
//     the sailing line).
package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/sid-wsn/sid/internal/geo"
)

// Report is one node's positive detection as received by a cluster head.
type Report struct {
	// Node identifies the reporting node.
	Node int
	// Pos is the node's known (assigned) position.
	Pos geo.Vec2
	// Row is the node's grid row index (informational; the correlation
	// uses geometric banding).
	Row int
	// Onset is the node-local time the signal first crossed the threshold.
	Onset float64
	// Energy is the node's average crossing energy E_Δt.
	Energy float64
}

// Config parametrizes the correlation computation.
type Config struct {
	// MinRows is the minimum number of row bands with reports for the
	// correlation to be meaningful (the paper: "if the cluster consists
	// of at least 4 rows of nodes").
	MinRows int
	// CThreshold is the minimum correlation coefficient C to escalate a
	// detection (0.4 in the paper's summary of Tables I and II).
	CThreshold float64
	// MinOrderedRows is the minimum number of rows on the scored side
	// holding at least two reports. Singleton rows score 1 by the paper's
	// rule and so carry no ordering evidence; requiring some multi-report
	// rows keeps a handful of scattered false alarms from confirming with
	// a vacuous C = 1 (see DESIGN.md). Default 2.
	MinOrderedRows int
	// RowSpacing is the deployment distance D used as the row band width
	// (25 m in the paper's evaluation).
	RowSpacing float64
	// SweepThreshold gates on the sweep-order statistic: the wake
	// disturbs the row bands "in a sequential manner" (Fig. 9), so the
	// per-band mean onsets must be monotone in band order. The statistic
	// is the absolute Spearman rank correlation between band index and
	// whole-band (both sides) mean onset; random false alarms rarely
	// exceed 0.7 while a real sweep scores ~1. 0 disables the gate.
	// This gate is separate from C so eq. (13) stays exactly the paper's.
	SweepThreshold float64
	// OrderTauThreshold gates on the within-stratum order concordance:
	// among node pairs at the same distance from the travel line (same
	// cross-line stratum), the wake front's arrival order is exactly the
	// along-line order, independent of the ship's speed. The statistic is
	// the absolute Kendall tau over those pairs. It complements the
	// band-mean sweep: the sweep has only ~4 band ranks to work with (a
	// random set clears 0.7 a third of the time), while the tau draws on
	// every same-stratum pair. Its sign must also agree with the sweep's.
	// 0 disables the gate. Default 0.5.
	OrderTauThreshold float64
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		MinRows:           4,
		CThreshold:        0.4,
		RowSpacing:        25,
		MinOrderedRows:    2,
		SweepThreshold:    0.7,
		OrderTauThreshold: 0.5,
	}
}

func (c Config) validate() error {
	if c.MinRows < 1 {
		return fmt.Errorf("cluster: MinRows must be ≥ 1, got %d", c.MinRows)
	}
	if c.CThreshold < 0 || c.CThreshold > 1 {
		return fmt.Errorf("cluster: CThreshold must be in [0,1], got %g", c.CThreshold)
	}
	if c.RowSpacing <= 0 {
		return fmt.Errorf("cluster: RowSpacing must be positive, got %g", c.RowSpacing)
	}
	if c.MinOrderedRows < 0 {
		return fmt.Errorf("cluster: MinOrderedRows must be non-negative, got %d", c.MinOrderedRows)
	}
	if c.SweepThreshold < 0 || c.SweepThreshold > 1 {
		return fmt.Errorf("cluster: SweepThreshold must be in [0,1], got %g", c.SweepThreshold)
	}
	if c.OrderTauThreshold < 0 || c.OrderTauThreshold > 1 {
		return fmt.Errorf("cluster: OrderTauThreshold must be in [0,1], got %g", c.OrderTauThreshold)
	}
	return nil
}

// Result is the outcome of a correlation evaluation.
type Result struct {
	// C is the correlation coefficient (eq. 13).
	C float64
	// CNt and CNe are the time and energy products (eqs. 10, 12).
	CNt, CNe float64
	// RowsUsed is the number of rows on the scored side holding at least
	// two reports (the rows that contribute ordering evidence).
	RowsUsed int
	// RowsTotal is the number of rows on the scored side with any report,
	// the paper's "cluster consists of at least 4 rows of nodes".
	RowsTotal int
	// SingletonRows is the number of single-report groups encountered on
	// the chosen side.
	SingletonRows int
	// Side identifies which side of the travel line was scored (0 or 1).
	Side int
	// Sweep is the absolute Spearman rank correlation between band order
	// and whole-band mean onset, both sides pooled (1 when fewer than 3
	// bands carry reports — too few to judge; the other gates rule there).
	Sweep float64
	// OrderTau is the absolute Kendall tau of the along-line arrival
	// order among same-distance-stratum report pairs (1 when no such
	// pair exists).
	OrderTau float64
	// Reports is the number of reports considered.
	Reports int
	// TravelLine is the estimated ship travel line the ordering used.
	TravelLine geo.Line
	// Detected is true when C ≥ CThreshold and RowsUsed ≥ MinRows.
	Detected bool
}

// Dedup collapses multiple reports carrying the same node ID into one:
// the highest-energy entry survives and keeps the earliest onset among the
// duplicates (the same merge rule a head applies when a node re-crosses the
// threshold). The SID head already deduplicates at collection time, but
// reports reaching Evaluate through other paths — a replay attack that
// slips a stale duplicate past a head, or a caller assembling reports by
// hand — must not double-count in the per-row products of eqs. 10 and 12:
// a duplicated report is always order-consistent with itself, so dup
// inflation biases C upward. Order is preserved (first occurrence wins the
// slot).
func Dedup(reports []Report) []Report {
	seen := make(map[int]int, len(reports)) // node → index in out
	out := make([]Report, 0, len(reports))
	for _, r := range reports {
		i, dup := seen[r.Node]
		if !dup {
			seen[r.Node] = len(out)
			out = append(out, r)
			continue
		}
		cur := &out[i]
		if r.Energy > cur.Energy {
			cur.Energy = r.Energy
			cur.Pos = r.Pos
			cur.Row = r.Row
		}
		if r.Onset < cur.Onset {
			cur.Onset = r.Onset
		}
	}
	return out
}

// DedupAtomic deduplicates per node keeping each node's single
// highest-energy report as an atomic (onset, energy) pair. Unlike Dedup it
// never combines the earliest onset of one report with the energy of
// another — the byzantine-tolerant path uses it so a low-energy fabricated
// report cannot retroactively rewrite an honest report's onset (see
// EvaluateRobust). Order is preserved (first occurrence wins the slot).
func DedupAtomic(reports []Report) []Report {
	seen := make(map[int]int, len(reports)) // node → index in out
	out := make([]Report, 0, len(reports))
	for _, r := range reports {
		i, dup := seen[r.Node]
		if !dup {
			seen[r.Node] = len(out)
			out = append(out, r)
			continue
		}
		if r.Energy > out[i].Energy {
			out[i] = r
		}
	}
	return out
}

// Evaluate computes the correlation coefficient over a set of reports.
// The travel line is not observed directly; the head evaluates a small set
// of candidate lines — the energy-weighted total-least-squares fit plus
// the two deployment axes through the energy-weighted centroid — and keeps
// the best-correlating one (a maximum-correlation estimate). A true ship
// pass scores high under its own line; random false alarms score low under
// every candidate.
//
// Reports sharing a node ID are deduplicated first (see Dedup): one buoy is
// one witness, however many times it reported.
func Evaluate(reports []Report, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	reports = Dedup(reports)
	if len(reports) == 0 {
		return Result{}, fmt.Errorf("cluster: no reports to evaluate")
	}
	if len(reports) == 1 {
		// Degraded mode (failures left one survivor): no travel line can be
		// fitted and a lone report carries no ordering evidence. Eqs. 9–13
		// score vacuous 1s, the row gates cannot pass, and the head gets a
		// well-formed non-detection instead of an error.
		return Result{
			C: 1, CNt: 1, CNe: 1,
			RowsTotal: 1, SingletonRows: 1, Reports: 1, Sweep: 1, OrderTau: 1,
			TravelLine: geo.NewLine(reports[0].Pos, geo.Vec2{X: 1}),
		}, nil
	}
	lines, err := CandidateTravelLines(reports)
	if err != nil {
		return Result{}, err
	}
	var best Result
	for i, line := range lines {
		res, err := EvaluateWithLine(reports, line, cfg)
		if err != nil {
			return Result{}, err
		}
		if i == 0 || betterCandidate(res, best, cfg) {
			best = res
		}
	}
	return best, nil
}

// EvaluateWithLine computes the correlation against a known travel line
// (used by tests and by heads that already estimated the line, e.g. from
// the speed estimator).
//
// The paper separates the disturbed nodes into the two sides of the travel
// line and analyzes one side ("For simplicity, we only consider one side
// of the nodes below"); accordingly each side is scored independently and
// the better-scoring side is returned.
func EvaluateWithLine(reports []Report, line geo.Line, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if len(reports) == 0 {
		return Result{}, fmt.Errorf("cluster: no reports to evaluate")
	}
	type acc struct {
		cnt, cne   float64
		rows       int
		singletons int
		reports    int
	}
	sides := [2]acc{{cnt: 1, cne: 1}, {cnt: 1, cne: 1}}
	// The sweep statistic uses whole-band mean onsets (both sides pooled):
	// the wake expands symmetrically, so the sweep order is side-independent,
	// and averaging every node in a band keeps one noisy onset in a sparse
	// side from flipping a rank.
	var bandOnsets []float64
	for _, row := range bandByProjection(reports, line, cfg.RowSpacing) {
		var onsetSum float64
		for _, r := range row {
			onsetSum += r.Onset
		}
		bandOnsets = append(bandOnsets, onsetSum/float64(len(row)))
		for si, side := range splitBySide(row, line) {
			if len(side) == 0 {
				continue
			}
			sides[si].reports += len(side)
			if len(side) == 1 {
				sides[si].singletons++
				continue // scores 1: multiplies C unchanged (paper's rule)
			}
			sides[si].rows++
			ordered := append([]Report(nil), side...)
			sort.Slice(ordered, func(i, j int) bool {
				return line.Dist(ordered[i].Pos) < line.Dist(ordered[j].Pos)
			})
			n := float64(len(ordered))
			crt := float64(longestConsistent(ordered, func(a, b Report) bool {
				return a.Onset <= b.Onset
			})) / n
			cre := float64(longestConsistent(ordered, func(a, b Report) bool {
				return a.Energy >= b.Energy
			})) / n
			sides[si].cnt *= crt
			sides[si].cne *= cre
		}
	}
	best := 0
	cOf := func(a acc) float64 { return a.cnt * a.cne }
	okOf := func(a acc) bool {
		return a.rows+a.singletons >= cfg.MinRows && a.rows >= cfg.MinOrderedRows
	}
	// Prefer the side that satisfies the structural row gates; among
	// those (or neither), the higher C. The sweep gate applies only to
	// the final Detected decision, not to which side is reported.
	aOK, bOK := okOf(sides[0]), okOf(sides[1])
	switch {
	case aOK && !bOK:
		best = 0
	case bOK && !aOK:
		best = 1
	default:
		if cOf(sides[1]) > cOf(sides[0]) {
			best = 1
		}
	}
	chosen := sides[best]
	rho, rhoOK := sweepOf(bandOnsets)
	tau, tauOK := orderTau(reports, line, cfg.RowSpacing)
	res := Result{
		CNt:           chosen.cnt,
		CNe:           chosen.cne,
		C:             cOf(chosen),
		RowsUsed:      chosen.rows,
		RowsTotal:     chosen.rows + chosen.singletons,
		SingletonRows: chosen.singletons,
		Reports:       len(reports),
		Side:          best,
		Sweep:         math.Abs(rho),
		OrderTau:      math.Abs(tau),
		TravelLine:    line,
	}
	// A real sweep moves one way along the line, so when both order
	// statistics carry evidence they must agree on the direction.
	signsAgree := !rhoOK || !tauOK || rho*tau > 0
	res.Detected = res.RowsTotal >= cfg.MinRows &&
		res.RowsUsed >= cfg.MinOrderedRows &&
		res.Sweep >= cfg.SweepThreshold &&
		res.OrderTau >= cfg.OrderTauThreshold &&
		signsAgree &&
		res.C >= cfg.CThreshold
	return res, nil
}

// betterCandidate ranks candidate-line results: a fully detecting result
// wins; then one satisfying the structural row gates (which keeps vacuous
// all-singleton candidates from masking a dense low-C evaluation — the
// Table I setting); then higher C; then more ordering evidence.
func betterCandidate(a, b Result, cfg Config) bool {
	rowsOK := func(r Result) bool {
		return r.RowsTotal >= cfg.MinRows && r.RowsUsed >= cfg.MinOrderedRows
	}
	if a.Detected != b.Detected {
		return a.Detected
	}
	if rowsOK(a) != rowsOK(b) {
		return rowsOK(a)
	}
	if a.C != b.C {
		return a.C > b.C
	}
	return a.RowsUsed > b.RowsUsed
}

// sweepOf computes the sweep-order statistic: the Spearman rank
// correlation between band order and band mean onset. Fewer than 3 bands
// cannot be judged and score a vacuous (1, false).
func sweepOf(bandOnsets []float64) (float64, bool) {
	n := len(bandOnsets)
	if n < 3 {
		return 1, false
	}
	// Rank the onsets. Exact ties (simultaneous band onsets, e.g. from
	// quantized timestamps) break toward band order, so an all-equal input
	// ranks as a perfect sweep rather than at the mercy of the sort's
	// internal order.
	type kv struct {
		idx   int
		onset float64
	}
	kvs := make([]kv, n)
	for i, o := range bandOnsets {
		kvs[i] = kv{i, o}
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].onset != kvs[j].onset {
			return kvs[i].onset < kvs[j].onset
		}
		return kvs[i].idx < kvs[j].idx
	})
	rank := make([]int, n)
	for r, e := range kvs {
		rank[e.idx] = r
	}
	var d2 float64
	for i, r := range rank {
		d := float64(i - r)
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1)), true
}

// orderTau computes the within-stratum order concordance: reports are
// stratified by their (rounded) distance from the travel line, and among
// pairs in the same stratum the along-line projection order is compared
// with the onset order — the wake front hits equal-distance nodes in
// exactly the along-line order, whatever the ship's speed. Returns the
// signed Kendall tau over those pairs and whether any comparable pair
// existed (ties in projection or onset are skipped; no pairs scores a
// vacuous (1, false)).
func orderTau(reports []Report, line geo.Line, spacing float64) (float64, bool) {
	type pt struct {
		proj, onset float64
		stratum     int
	}
	ps := make([]pt, len(reports))
	for i, r := range reports {
		d := line.Dist(r.Pos)
		ps[i] = pt{line.Project(r.Pos), r.Onset, int(math.Round(d / spacing))}
	}
	var conc, disc float64
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if ps[i].stratum != ps[j].stratum {
				continue
			}
			dp := ps[i].proj - ps[j].proj
			dt := ps[i].onset - ps[j].onset
			if dp == 0 || dt == 0 {
				continue
			}
			if dp*dt > 0 {
				conc++
			} else {
				disc++
			}
		}
	}
	if conc+disc == 0 {
		return 1, false
	}
	return (conc - disc) / (conc + disc), true
}

// bandByProjection groups reports into row bands by their along-line
// projection, in band order.
func bandByProjection(reports []Report, line geo.Line, spacing float64) [][]Report {
	byBand := make(map[int][]Report)
	for _, r := range reports {
		band := int(math.Round(line.Project(r.Pos) / spacing))
		byBand[band] = append(byBand[band], r)
	}
	keys := make([]int, 0, len(byBand))
	for k := range byBand {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]Report, 0, len(keys))
	for _, k := range keys {
		out = append(out, byBand[k])
	}
	return out
}

// splitBySide partitions a row's reports by which side of the travel line
// they lie on. Reports exactly on the line go to the first side.
func splitBySide(row []Report, line geo.Line) [2][]Report {
	var sides [2][]Report
	for _, r := range row {
		if line.SignedDist(r.Pos) >= 0 {
			sides[0] = append(sides[0], r)
		} else {
			sides[1] = append(sides[1], r)
		}
	}
	return sides
}

// EstimateTravelLine returns the energy-weighted total-least-squares line
// through the report positions: the wake decays with distance from the
// sailing line, so the energy mass traces it. The fitted line generally
// parallels the true track; only the ordering it induces matters for the
// correlation.
func EstimateTravelLine(reports []Report) (geo.Line, error) {
	if len(reports) < 2 {
		return geo.Line{}, fmt.Errorf("cluster: need at least 2 reports to estimate the travel line, got %d", len(reports))
	}
	pts := make([]geo.Vec2, len(reports))
	ws := make([]float64, len(reports))
	for i, r := range reports {
		pts[i] = r.Pos
		e := r.Energy
		if e < 0 {
			e = 0
		}
		ws[i] = e * e // square sharpens the flat d^(−1/3) profile
	}
	return geo.WeightedFitLine(pts, ws)
}

// CandidateTravelLines returns the lines Evaluate scores: three directions
// (the weighted fit's, plus the two deployment axes — the paper's own
// evaluation geometry has ships crossing parallel to a grid axis) anchored
// at two offsets each — the energy-weighted centroid (a ship crossing
// through the deployment) and the maximum-energy report's position (a ship
// passing outside it, where the energy mass necessarily falls inside the
// hull of the grid and would misplace the line).
func CandidateTravelLines(reports []Report) ([]geo.Line, error) {
	fit, err := EstimateTravelLine(reports)
	if err != nil {
		return nil, err
	}
	maxPos := reports[0].Pos
	maxE := reports[0].Energy
	for _, r := range reports[1:] {
		if r.Energy > maxE {
			maxE = r.Energy
			maxPos = r.Pos
		}
	}
	dirs := []geo.Vec2{fit.Dir, {X: 1, Y: 0}, {X: 0, Y: 1}}
	anchors := []geo.Vec2{fit.Origin, maxPos}
	lines := make([]geo.Line, 0, len(dirs)*len(anchors))
	for _, d := range dirs {
		for _, a := range anchors {
			lines = append(lines, geo.NewLine(a, d))
		}
	}
	return lines, nil
}

// longestConsistent returns the length of the longest subsequence of rs
// (which is ordered by distance) that satisfies the pairwise order
// predicate — an O(n²) LIS, fine for row sizes of a handful of nodes.
func longestConsistent(rs []Report, ok func(a, b Report) bool) int {
	if len(rs) == 0 {
		return 0
	}
	best := make([]int, len(rs))
	overall := 1
	for i := range rs {
		best[i] = 1
		for j := 0; j < i; j++ {
			if ok(rs[j], rs[i]) && best[j]+1 > best[i] {
				best[i] = best[j] + 1
			}
		}
		if best[i] > overall {
			overall = best[i]
		}
	}
	return overall
}

// MajorityVote is the baseline cluster rule for the ablation study: detect
// when at least quorum reports arrived, ignoring all structure.
func MajorityVote(reports []Report, quorum int) bool {
	return quorum > 0 && len(reports) >= quorum
}

// MeanOnset returns the average onset time of the reports, NaN when empty.
func MeanOnset(reports []Report) float64 {
	if len(reports) == 0 {
		return math.NaN()
	}
	var s float64
	for _, r := range reports {
		s += r.Onset
	}
	return s / float64(len(reports))
}
