package cluster

import (
	"math/rand"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// TestDedupCollapsesReplayedReports is the regression test for the replay
// double-count: the same node's report appearing twice used to multiply
// into the per-row products twice (a duplicate is always order-consistent
// with itself, inflating C). Dedup must make the duplicated set score
// exactly like the clean set.
func TestDedupCollapsesReplayedReports(t *testing.T) {
	clean := shipReports(4, 5, 25, geo.Knots(10), 0.05, 0.02, 9)
	replayed := append(append([]Report(nil), clean...), clean[3], clean[7], clean[7])
	cleanRes, err := Evaluate(clean, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dupRes, err := Evaluate(replayed, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dupRes != cleanRes {
		t.Errorf("replayed duplicates changed the evaluation:\nclean %+v\n  dup %+v", cleanRes, dupRes)
	}
	if dupRes.Reports != len(clean) {
		t.Errorf("duplicates counted: Reports = %d, want %d", dupRes.Reports, len(clean))
	}
}

// TestDedupMergeRule pins the merge semantics: highest energy wins the
// slot, earliest onset survives, first occurrence keeps its position.
func TestDedupMergeRule(t *testing.T) {
	in := []Report{
		{Node: 1, Onset: 10, Energy: 5, Row: 0},
		{Node: 2, Onset: 11, Energy: 6, Row: 0},
		{Node: 1, Onset: 8, Energy: 9, Row: 1, Pos: geo.Vec2{X: 1}},
	}
	out := Dedup(in)
	if len(out) != 2 {
		t.Fatalf("want 2 deduped reports, got %d", len(out))
	}
	if out[0].Node != 1 || out[1].Node != 2 {
		t.Fatalf("order not preserved: %+v", out)
	}
	if out[0].Energy != 9 || out[0].Onset != 8 || out[0].Pos.X != 1 {
		t.Errorf("merge rule violated: %+v", out[0])
	}
}

// TestEvaluateRobustSurvivesByzantineMinority: a clean pass plus 20%
// fabricated random reports must fail the plain gates yet recover under
// trimming, and the trimmed IDs must be exactly the fabricators.
func TestEvaluateRobustSurvivesByzantineMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	clean := shipReports(4, 5, 25, geo.Knots(10), 0.05, 0.02, 11)
	poisoned := append([]Report(nil), clean...)
	byz := map[int]bool{}
	for i := 0; i < 4; i++ { // 4 of 24 ≈ 17%
		nid := 100 + i
		byz[nid] = true
		poisoned = append(poisoned, Report{
			Node: nid,
			Pos: geo.Vec2{
				X: rng.Float64() * 3 * 25,
				Y: rng.Float64() * 4 * 25,
			},
			Onset:  rng.Float64() * 300, // random stale/early onsets
			Energy: 20 + rng.Float64()*30,
		})
	}
	cfg := DefaultConfig()
	plain, err := Evaluate(poisoned, cfg)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := EvaluateRobust(poisoned, cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !robust.Detected {
		t.Fatalf("robust evaluation missed the pass (plain C=%.3f detected=%v, robust C=%.3f)",
			plain.C, plain.Detected, robust.C)
	}
	for _, id := range robust.Trimmed {
		if !byz[id] {
			t.Errorf("honest node %d was trimmed", id)
		}
	}
	for _, r := range robust.Kept {
		if byz[r.Node] && robust.Detected {
			// Some fabricated reports may survive if they happen to be
			// consistent; the gate only needs enough of them gone. Don't
			// fail, but record for visibility.
			t.Logf("fabricated node %d survived the trim", r.Node)
		}
	}
	if plain.Detected {
		t.Log("note: plain evaluation also detected on this seed (gates absorbed the noise)")
	}
}

// TestEvaluateRobustDoesNotInventDetections: all-random reports must stay
// undetected for every trim the budget allows — trimming must not sculpt
// order out of noise.
func TestEvaluateRobustDoesNotInventDetections(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		reports := randomReports(4, 5, 25, seed)
		res, err := EvaluateRobust(reports, DefaultConfig(), 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Errorf("seed %d: trimming fabricated a detection (C=%.3f, trimmed %v)",
				seed, res.C, res.Trimmed)
		}
		if len(res.Trimmed) != 0 {
			t.Errorf("seed %d: non-detecting evaluation accused nodes %v", seed, res.Trimmed)
		}
	}
}

// TestEvaluateRobustCleanPassUntouched: when the plain gates already pass,
// the robust variant must return the identical result and trim no one.
func TestEvaluateRobustCleanPassUntouched(t *testing.T) {
	reports := shipReports(4, 5, 25, geo.Knots(10), 0.05, 0.02, 9)
	plain, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	robust, err := EvaluateRobust(reports, DefaultConfig(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Detected {
		t.Fatal("precondition: clean pass should detect")
	}
	if robust.Result != plain || len(robust.Trimmed) != 0 {
		t.Errorf("robust changed a clean evaluation: %+v vs %+v (trimmed %v)",
			robust.Result, plain, robust.Trimmed)
	}
}
