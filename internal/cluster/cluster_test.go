package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wake"
)

// shipReports synthesizes per-row reports from the wake geometry: a grid of
// rows×cols nodes at the given spacing, a ship crossing below the grid
// parallel to the rows' long axis... here the travel line runs along +X at
// y = -25, so within a row (same y) distance to the line is constant —
// instead we lay rows along Y so each row spans distances. See the grid
// orientation note in the test bodies.
func shipReports(rows, cols int, spacing float64, speed float64, jitterT, jitterE float64, seed int64) []Report {
	// Rows indexed by x (each "row" is a line of nodes at the same x,
	// spanning y). Ship travels along +X at y = -25: nodes at higher y are
	// farther from the line — matching Fig. 9's geometry.
	rng := rand.New(rand.NewSource(seed))
	track := geo.NewLine(geo.Vec2{X: 0, Y: -25}, geo.Vec2{X: 1, Y: 0})
	ship, _ := wake.NewShip(track, speed, 12)
	var out []Report
	for rx := 0; rx < rows; rx++ {
		for cy := 0; cy < cols; cy++ {
			pos := geo.Vec2{X: float64(rx) * spacing, Y: float64(cy) * spacing}
			sig := ship.SignalAt(pos)
			out = append(out, Report{
				Node:   rx*cols + cy,
				Pos:    pos,
				Row:    rx,
				Onset:  sig.Arrival + rng.NormFloat64()*jitterT,
				Energy: sig.Amp * (1 + rng.NormFloat64()*jitterE),
			})
		}
	}
	return out
}

// randomReports synthesizes structure-free false alarms.
func randomReports(rows, cols int, spacing float64, seed int64) []Report {
	rng := rand.New(rand.NewSource(seed))
	var out []Report
	for rx := 0; rx < rows; rx++ {
		for cy := 0; cy < cols; cy++ {
			out = append(out, Report{
				Node:   rx*cols + cy,
				Pos:    geo.Vec2{X: float64(rx) * spacing, Y: float64(cy) * spacing},
				Row:    rx,
				Onset:  rng.Float64() * 100,
				Energy: rng.Float64() * 50,
			})
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := Evaluate([]Report{{}}, Config{MinRows: 0, CThreshold: 0.4, RowSpacing: 25}); err == nil {
		t.Error("expected error for MinRows 0")
	}
	if _, err := Evaluate([]Report{{}}, Config{MinRows: 4, CThreshold: -1, RowSpacing: 25}); err == nil {
		t.Error("expected error for negative threshold")
	}
	if _, err := Evaluate([]Report{{}}, Config{MinRows: 4, CThreshold: 2, RowSpacing: 25}); err == nil {
		t.Error("expected error for threshold > 1")
	}
	if _, err := Evaluate([]Report{{}}, Config{MinRows: 4, CThreshold: 0.4, RowSpacing: 0}); err == nil {
		t.Error("expected error for zero RowSpacing")
	}
	if _, err := Evaluate(nil, DefaultConfig()); err == nil {
		t.Error("expected error for no reports")
	}
}

func TestPerfectShipPassScoresOne(t *testing.T) {
	reports := shipReports(4, 5, 25, geo.Knots(10), 0, 0, 1)
	res, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.C, 1, 1e-9) {
		t.Errorf("noise-free pass C = %v, want 1", res.C)
	}
	if !res.Detected {
		t.Error("noise-free pass not detected")
	}
	if res.RowsUsed < 4 {
		t.Errorf("RowsUsed = %d", res.RowsUsed)
	}
}

func TestNoisyShipPassStillDetected(t *testing.T) {
	// Timestamp jitter ~0.3 s and 10% energy noise: C should stay high.
	reports := shipReports(4, 5, 25, geo.Knots(10), 0.3, 0.1, 2)
	res, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.C < 0.4 {
		t.Errorf("noisy pass C = %v, want ≥ 0.4", res.C)
	}
	if !res.Detected {
		t.Error("noisy pass not detected")
	}
}

func TestRandomReportsScoreLow(t *testing.T) {
	// Table I's content: false alarms have near-zero correlation.
	var sum float64
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		reports := randomReports(4, 5, 25, seed)
		res, err := Evaluate(reports, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sum += res.C
		if res.Detected {
			t.Errorf("seed %d: random reports detected with C=%v (rows=%d/%d)",
				seed, res.C, res.RowsUsed, res.RowsTotal)
		}
	}
	// Best-side/best-line selection puts a floor under individual random
	// sets; on average the correlation must sit well below the threshold
	// (the dense Table I setting scores far lower still — see eval).
	if mean := sum / trials; mean > 0.3 {
		t.Errorf("mean random C = %v, want ≤ 0.3", mean)
	}
}

func TestMoreRowsLowerC(t *testing.T) {
	// C is a product over rows, so more rows → lower C (Table II's trend).
	noisy := func(rows int) float64 {
		var sum float64
		const trials = 20
		for seed := int64(0); seed < trials; seed++ {
			reports := shipReports(rows, 5, 25, geo.Knots(10), 0.5, 0.2, seed)
			res, err := Evaluate(reports, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sum += res.C
		}
		return sum / trials
	}
	c4, c6 := noisy(4), noisy(6)
	if c6 >= c4 {
		t.Errorf("C should fall with row count: rows=4 → %v, rows=6 → %v", c4, c6)
	}
}

func TestSingleReportRowsScoreOne(t *testing.T) {
	// The paper: C_rt(i) = 1 if there is only one report in a row. Four
	// reports in four distinct projection bands, arbitrary times/energies.
	line := geo.NewLine(geo.Vec2{X: 0, Y: -25}, geo.Vec2{X: 1, Y: 0})
	reports := []Report{
		{Node: 0, Pos: geo.Vec2{X: 0, Y: 0}, Onset: 14.2, Energy: 3},
		{Node: 1, Pos: geo.Vec2{X: 25, Y: 10}, Onset: 9.1, Energy: 7},
		{Node: 2, Pos: geo.Vec2{X: 50, Y: 25}, Onset: 11.0, Energy: 5},
		{Node: 3, Pos: geo.Vec2{X: 75, Y: 5}, Onset: 2.4, Energy: 1},
	}
	res, err := EvaluateWithLine(reports, line, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.C, 1, 1e-9) {
		t.Errorf("single-report rows C = %v, want 1", res.C)
	}
}

func TestEvaluateWithKnownLine(t *testing.T) {
	line := geo.NewLine(geo.Vec2{X: 0, Y: -25}, geo.Vec2{X: 1, Y: 0})
	reports := shipReports(4, 5, 25, geo.Knots(16), 0, 0, 3)
	res, err := EvaluateWithLine(reports, line, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.C, 1, 1e-9) {
		t.Errorf("known-line C = %v", res.C)
	}
	if _, err := EvaluateWithLine(nil, line, DefaultConfig()); err == nil {
		t.Error("expected error for empty reports")
	}
}

func TestBestSideScored(t *testing.T) {
	// Nodes on both sides of the travel line: each side is scored
	// independently and the better one is chosen (the paper considers one
	// side). Here the upper side is perfectly ordered while the lower
	// side's energies are corrupted.
	line := geo.NewLine(geo.Vec2{X: 0, Y: 0}, geo.Vec2{X: 1, Y: 0})
	ship, _ := wake.NewShip(line, geo.Knots(10), 12)
	var reports []Report
	for i, y := range []float64{-50, -25, 25, 50} {
		pos := geo.Vec2{X: 100, Y: y}
		sig := ship.SignalAt(pos)
		e := sig.Amp
		if y < 0 {
			e = -y // corrupt: farther node gets more energy
		}
		reports = append(reports, Report{Node: i, Pos: pos, Onset: sig.Arrival, Energy: e})
	}
	res, err := EvaluateWithLine(reports, line, Config{MinRows: 1, CThreshold: 0.4, RowSpacing: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.C, 1, 1e-9) {
		t.Errorf("best-side C = %v, want 1", res.C)
	}
	if res.RowsUsed != 1 {
		t.Errorf("RowsUsed = %d, want 1", res.RowsUsed)
	}
	if res.Side != 0 {
		t.Errorf("Side = %d, want 0 (upper side is positive)", res.Side)
	}
}

func TestMinRowsGate(t *testing.T) {
	// Against the true travel line, a 2-band deployment cannot satisfy
	// MinRows = 4 however perfect the correlation is.
	line := geo.NewLine(geo.Vec2{X: 0, Y: -25}, geo.Vec2{X: 1, Y: 0})
	reports := shipReports(2, 5, 25, geo.Knots(10), 0, 0, 4)
	res, err := EvaluateWithLine(reports, line, DefaultConfig()) // MinRows 4
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Errorf("2 bands must not satisfy MinRows=4 (RowsUsed=%d)", res.RowsUsed)
	}
	if !almostEq(res.C, 1, 1e-9) {
		t.Errorf("noise-free correlation C = %v, want 1", res.C)
	}
}

func TestTravelLineEstimation(t *testing.T) {
	// The strongest-energy node of each row is the closest to the line;
	// the fitted line should be close to parallel with the true track.
	reports := shipReports(5, 6, 25, geo.Knots(10), 0, 0.05, 5)
	res, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trueDir := geo.Vec2{X: 1, Y: 0}
	a := geo.AngleBetween(res.TravelLine.Dir, trueDir)
	if a > math.Pi/2 {
		a = math.Pi - a
	}
	if a > geo.Deg(15) {
		t.Errorf("estimated travel line off by %v°", geo.ToDeg(a))
	}
}

func TestTravelLineNeedsTwoReports(t *testing.T) {
	reports := []Report{{Node: 0, Pos: geo.Vec2{}, Onset: 1, Energy: 2}}
	if _, err := EstimateTravelLine(reports); err == nil {
		t.Error("expected travel-line estimation error with one report")
	}
	// Evaluate degrades instead of erroring: a lone surviving report is a
	// well-formed non-detection (vacuous C with failing row gates).
	res, err := Evaluate(reports, Config{MinRows: 1, CThreshold: 0.1, RowSpacing: 25})
	if err != nil {
		t.Fatalf("Evaluate with one report should degrade, got error: %v", err)
	}
	if res.Detected {
		t.Error("a lone report must never confirm a detection")
	}
	if res.Reports != 1 || res.RowsUsed != 0 || res.SingletonRows != 1 {
		t.Errorf("degraded result malformed: %+v", res)
	}
}

func TestMajorityVote(t *testing.T) {
	reports := randomReports(2, 3, 25, 6)
	if !MajorityVote(reports, 4) {
		t.Error("6 reports ≥ quorum 4")
	}
	if MajorityVote(reports, 10) {
		t.Error("6 reports < quorum 10")
	}
	if MajorityVote(reports, 0) {
		t.Error("zero quorum must be rejected")
	}
	if MajorityVote(nil, 1) {
		t.Error("no reports should not pass")
	}
}

func TestMeanOnset(t *testing.T) {
	rs := []Report{{Onset: 1}, {Onset: 3}}
	if m := MeanOnset(rs); m != 2 {
		t.Errorf("MeanOnset = %v", m)
	}
	if !math.IsNaN(MeanOnset(nil)) {
		t.Error("MeanOnset(nil) should be NaN")
	}
}

func TestLongestConsistentBounds(t *testing.T) {
	// Property: 1 ≤ N ≤ n for any report set, so 0 < C_rt ≤ 1.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		rs := make([]Report, n)
		for i := range rs {
			rs[i] = Report{Onset: rng.Float64(), Energy: rng.Float64()}
		}
		got := longestConsistent(rs, func(a, b Report) bool { return a.Onset <= b.Onset })
		if got < 1 || got > n {
			t.Fatalf("longestConsistent out of bounds: %d of %d", got, n)
		}
	}
	if got := longestConsistent(nil, nil); got != 0 {
		t.Errorf("empty longestConsistent = %d", got)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
