package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// TestSimultaneousOnsetsPinned pins the zero-variance corner: every node
// reports the same onset and energy. Ties are order-consistent under
// eqs. (9)–(12), tied band means rank in band order (a perfect sweep), and
// the stratified tau has no comparable pair — the evaluation must come out
// a well-formed detection with C = 1 rather than depend on sort internals.
func TestSimultaneousOnsetsPinned(t *testing.T) {
	var reports []Report
	for rx := 0; rx < 5; rx++ {
		for ry := 0; ry < 4; ry++ {
			reports = append(reports, Report{
				Node: rx*4 + ry,
				Pos:  geo.Vec2{X: float64(rx) * 25, Y: float64(ry) * 25},
				Row:  ry, Onset: 42, Energy: 7,
			})
		}
	}
	res, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.C != 1 || res.CNt != 1 || res.CNe != 1 {
		t.Errorf("C/CNt/CNe = %v/%v/%v, want all 1", res.C, res.CNt, res.CNe)
	}
	if res.Sweep != 1 {
		t.Errorf("Sweep = %v, want 1 (tied band means rank in band order)", res.Sweep)
	}
	if res.OrderTau != 1 {
		t.Errorf("OrderTau = %v, want vacuous 1 (no comparable pair)", res.OrderTau)
	}
	if !res.Detected {
		t.Error("simultaneous onsets over a full grid must still detect")
	}
}

// TestSingleRowNeverDetects pins degraded geometry: all reports in one grid
// row can never satisfy the row gates, whatever the candidate line, but
// must evaluate cleanly.
func TestSingleRowNeverDetects(t *testing.T) {
	var reports []Report
	for rx := 0; rx < 5; rx++ {
		reports = append(reports, Report{
			Node: rx,
			Pos:  geo.Vec2{X: float64(rx) * 25, Y: 50},
			Row:  2, Onset: 100 + float64(rx)*5, Energy: 50 - float64(rx),
		})
	}
	res, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Errorf("single-row cluster detected: %+v", res)
	}
}

// TestSingleReportDegradedMode pins the lone-survivor path: one report
// yields a vacuous non-detection, not an error.
func TestSingleReportDegradedMode(t *testing.T) {
	res, err := Evaluate([]Report{{Node: 3, Pos: geo.Vec2{X: 25, Y: 50}, Onset: 9, Energy: 2}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("single report must not detect")
	}
	if res.C != 1 || res.Sweep != 1 || res.OrderTau != 1 {
		t.Errorf("vacuous scores: C=%v Sweep=%v OrderTau=%v, want 1s", res.C, res.Sweep, res.OrderTau)
	}
	if res.RowsTotal != 1 || res.RowsUsed != 0 {
		t.Errorf("rows = %d/%d, want 0 used of 1 total", res.RowsUsed, res.RowsTotal)
	}
}

// TestAllEqualEnergies pins the flat-energy corner: equal energies are
// order-consistent (ties allowed in eq. 11), so C_Ne must be exactly 1 and
// detection rides on the time ordering alone.
func TestAllEqualEnergies(t *testing.T) {
	reports := shipReports(4, 5, 25, geo.Knots(10), 0, 0, 1)
	for i := range reports {
		reports[i].Energy = 10
	}
	res, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CNe != 1 {
		t.Errorf("CNe = %v, want 1 for all-equal energies", res.CNe)
	}
	if !res.Detected {
		t.Errorf("flat-energy noise-free pass must still detect: %+v", res)
	}
}

// TestEvaluateOrderInvariant pins that the evaluation is a function of the
// report set, not its order: every decision and count is identical under
// shuffling, and the scores agree to float summation noise (the weighted
// line fit accumulates in input order, so the last bits may differ).
func TestEvaluateOrderInvariant(t *testing.T) {
	reports := shipReports(4, 5, 25, geo.Knots(10), 0.3, 0.1, 3)
	base, err := Evaluate(reports, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Report(nil), reports...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		res, err := Evaluate(shuffled, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected != base.Detected || res.RowsUsed != base.RowsUsed ||
			res.RowsTotal != base.RowsTotal || res.SingletonRows != base.SingletonRows ||
			res.Side != base.Side || res.Reports != base.Reports {
			t.Fatalf("trial %d: decision depends on report order:\n%+v\nvs\n%+v", trial, base, res)
		}
		const tol = 1e-9
		for _, d := range []struct {
			name    string
			got, at float64
		}{
			{"C", res.C, base.C}, {"CNt", res.CNt, base.CNt}, {"CNe", res.CNe, base.CNe},
			{"Sweep", res.Sweep, base.Sweep}, {"OrderTau", res.OrderTau, base.OrderTau},
		} {
			if math.Abs(d.got-d.at) > tol {
				t.Fatalf("trial %d: %s = %v, want %v", trial, d.name, d.got, d.at)
			}
		}
	}
}

// TestSweepTieBreak pins sweepOf's tie handling directly: equal band means
// rank in band order (perfect sweep), a reversed sequence scores −1, and
// fewer than three bands is vacuous.
func TestSweepTieBreak(t *testing.T) {
	if rho, ok := sweepOf([]float64{5, 5, 5, 5}); !ok || rho != 1 {
		t.Errorf("all-tied bands: (%v, %v), want (1, true)", rho, ok)
	}
	if rho, ok := sweepOf([]float64{4, 3, 2, 1}); !ok || rho != -1 {
		t.Errorf("reversed bands: (%v, %v), want (-1, true)", rho, ok)
	}
	if rho, ok := sweepOf([]float64{1, 2}); ok || rho != 1 {
		t.Errorf("two bands: (%v, %v), want vacuous (1, false)", rho, ok)
	}
	if rho, ok := sweepOf([]float64{1, 2, 2, 3}); !ok || rho != 1 {
		t.Errorf("partial ties in order: (%v, %v), want (1, true)", rho, ok)
	}
}
