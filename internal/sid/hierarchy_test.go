package sid

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/sid-wsn/sid/internal/cluster"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wsn"
)

// hierConfig returns a 6×6 crossing-ship deployment with deterministic
// radio timing (no loss, no jitter) so the flat and hierarchical protocols
// can be compared report-for-report: with stochastic radio state the two
// modes draw from the RNG in different orders and the runs diverge for
// reasons unrelated to aggregation.
func hierConfig(enabled bool) Config {
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
	cfg.Seed = 106
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterStd = 0
	if enabled {
		cfg.Hierarchy = DefaultHierarchyConfig()
		cfg.Hierarchy.Enabled = true
	}
	return cfg
}

func runHier(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	return rt
}

func sortedReports(reports []cluster.Report) []cluster.Report {
	out := append([]cluster.Report(nil), reports...)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// TestHierarchyMatchesFlatCollection is the aggregation tier's core
// contract: routing member reports through sub-heads in batched summaries
// must deliver the same reports to the same heads and confirm the same
// intrusions — only the radio path changes, never the protocol outcome.
func TestHierarchyMatchesFlatCollection(t *testing.T) {
	flat := runHier(t, hierConfig(false))
	hier := runHier(t, hierConfig(true))
	if len(flat.SinkReports()) == 0 {
		t.Fatal("flat run produced no sink reports; comparison would be vacuous")
	}
	if len(hier.SinkReports()) != len(flat.SinkReports()) {
		t.Fatalf("sink reports: hierarchy %d vs flat %d", len(hier.SinkReports()), len(flat.SinkReports()))
	}
	for i, f := range flat.SinkReports() {
		h := hier.SinkReports()[i]
		// Time is the sink-local arrival instant and may shift by the
		// aggregation latency. MeanOnset sums the reports in arrival order,
		// which batching permutes — identical multiset, last-ulp different
		// sum — so it gets a rounding tolerance instead of DeepEqual.
		if math.Abs(h.MeanOnset-f.MeanOnset) > 1e-9 {
			t.Errorf("sink report %d mean onset: flat %v vs hier %v", i, f.MeanOnset, h.MeanOnset)
		}
		h.Time, f.Time = 0, 0
		h.MeanOnset, f.MeanOnset = 0, 0
		if !reflect.DeepEqual(f, h) {
			t.Errorf("sink report %d differs:\nflat: %+v\nhier: %+v", i, f, h)
		}
	}
	if len(hier.Evaluations()) != len(flat.Evaluations()) {
		t.Fatalf("evaluations: hierarchy %d vs flat %d", len(hier.Evaluations()), len(flat.Evaluations()))
	}
	for i, fe := range flat.Evaluations() {
		he := hier.Evaluations()[i]
		if fe.Head != he.Head {
			t.Errorf("evaluation %d head: flat %d vs hier %d", i, fe.Head, he.Head)
		}
		// Arrival order differs (batched vs per-member), the collected set
		// must not.
		if !reflect.DeepEqual(sortedReports(fe.Reports), sortedReports(he.Reports)) {
			t.Errorf("evaluation %d reports differ:\nflat: %+v\nhier: %+v",
				i, sortedReports(fe.Reports), sortedReports(he.Reports))
		}
		if fe.Result.Detected != he.Result.Detected || fe.Result.C != he.Result.C {
			t.Errorf("evaluation %d result: flat C=%g det=%v vs hier C=%g det=%v",
				i, fe.Result.C, fe.Result.Detected, he.Result.C, he.Result.Detected)
		}
	}
	// NodeReports are produced below the protocol layer and must be
	// bit-identical regardless of collection topology.
	if !reflect.DeepEqual(flat.NodeReports(), hier.NodeReports()) {
		t.Error("node reports differ between flat and hierarchical runs")
	}
	// The aggregation tier must have actually engaged, or the parity above
	// proves nothing.
	if g := hier.Observability().Registry().Gauge("sid.subheads").Value(); g < 1 {
		t.Fatalf("no sub-heads selected (gauge %g)", g)
	}
	routed := false
	for _, ns := range hier.nodes {
		if len(ns.agg) > 0 {
			routed = true
		}
	}
	if !routed {
		t.Fatal("no sub-head ever buffered a report — hierarchy never engaged")
	}
}

// TestHierarchyWorkersBitIdentical extends the Workers determinism contract
// to the aggregation tier: summary batching happens in scheduler events, so
// worker count must not change a single report or sink byte.
func TestHierarchyWorkersBitIdentical(t *testing.T) {
	base := hierConfig(true)
	base.Workers = 1
	serial := runHier(t, base)
	if len(serial.SinkReports()) == 0 {
		t.Fatal("serial hierarchical run produced no sink reports")
	}
	for _, workers := range []int{2, 4} {
		cfg := hierConfig(true)
		cfg.Workers = workers
		rt := runHier(t, cfg)
		if !reflect.DeepEqual(serial.SinkReports(), rt.SinkReports()) {
			t.Errorf("workers=%d: sink reports differ from serial hierarchical run", workers)
		}
		if !reflect.DeepEqual(serial.NodeReports(), rt.NodeReports()) {
			t.Errorf("workers=%d: node reports differ from serial hierarchical run", workers)
		}
	}
}

// TestHierarchySubHeadDeathFallback: members whose sub-head is dead fall
// back to reporting directly, so losing every sub-head degrades the
// deployment to the flat protocol instead of losing the detection.
func TestHierarchySubHeadDeathFallback(t *testing.T) {
	cfg := hierConfig(true)
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	subHeads := map[int]bool{}
	for _, ns := range rt.nodes {
		if ns.subHead >= 0 {
			subHeads[int(ns.subHead)] = true
		}
	}
	if len(subHeads) == 0 {
		t.Fatal("no sub-heads assigned")
	}
	for id := range subHeads {
		rt.Network().MustNode(wsn.NodeID(id)).Fail()
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkReports()) == 0 {
		t.Fatalf("detection lost with dead sub-heads (clusters: %d, cancelled: %d)",
			rt.ClustersFormed(), rt.Cancelled())
	}
	for _, ns := range rt.nodes {
		for _, b := range ns.agg {
			if len(b.reports) > 0 {
				t.Errorf("node %d buffered reports despite dead sub-heads", ns.id)
			}
		}
	}
}
