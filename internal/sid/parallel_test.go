package sid

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// runDeployment runs one full ship-crossing deployment with the given
// worker count and returns everything observable at the sink.
func runDeployment(t *testing.T, workers int) ([]SinkReport, []Evaluation) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
	cfg.Seed = 106
	cfg.Workers = workers
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	return rt.SinkReports(), rt.Evaluations()
}

// The parallel sample-synthesis pipeline must be invisible in the results:
// the same seed must produce byte-identical detections whether blocks are
// synthesized serially or fanned out across a worker pool. This is the
// determinism contract documented on Config.Workers.
func TestParallelRunBitIdentical(t *testing.T) {
	serialReports, serialEvals := runDeployment(t, 1)
	if len(serialReports) == 0 {
		t.Fatal("serial run produced no sink reports; the comparison would be vacuous")
	}
	for _, workers := range []int{0, 2, 4, 7} {
		reports, evals := runDeployment(t, workers)
		if !reflect.DeepEqual(serialReports, reports) {
			t.Errorf("workers=%d: sink reports differ from serial run\nserial:   %+v\nparallel: %+v",
				workers, serialReports, reports)
		}
		// Evaluation.Err is an error value; compare via message to keep
		// DeepEqual meaningful.
		if len(serialEvals) != len(evals) {
			t.Errorf("workers=%d: %d evaluations vs %d serial", workers, len(evals), len(serialEvals))
			continue
		}
		for i := range evals {
			if fmt.Sprint(serialEvals[i].Err) != fmt.Sprint(evals[i].Err) {
				t.Errorf("workers=%d: evaluation %d error %v vs serial %v",
					workers, i, evals[i].Err, serialEvals[i].Err)
			}
			a, b := serialEvals[i], evals[i]
			a.Err, b.Err = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("workers=%d: evaluation %d differs from serial run", workers, i)
			}
		}
	}
}
