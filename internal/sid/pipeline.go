package sid

import (
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/parallel"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wsn"
)

// This file is the streaming ingest/detect loop: the batch pipeline that
// pulls sample blocks from the deployment's source, tees them into an
// attached recording, and feeds each node's detector. Protocol reactions
// (cluster setup, reports, evaluation) live in protocol.go.

// Run drives the deployment for dur seconds of simulated time: sampling,
// detection, clustering, correlation, and sink reporting all happen inside.
//
// Each sensing batch is a single scheduler event processed in three
// phases: gate (serial — decide which nodes sense, charge idle energy),
// produce (parallel — each sensing node's sample block comes from the
// source, fanned across Config.Workers goroutines), and consume (serial,
// ascending node order — detector pushes and protocol reactions). Message
// deliveries are scheduler events of their own, so no protocol state
// changes while a batch event runs; the pipeline is therefore observably
// identical to the fully serial implementation, and runs are bit-identical
// for any worker count.
//
// The loop is streaming end to end: the source hands out one batch per
// node at a time, the detector consumes it into its bounded anomaly-window
// ring, and the block reference is dropped before the next batch — no
// stage ever buffers a full run, so a deployment can run online against an
// unbounded stream.
//
// Run may be called repeatedly to advance the deployment in segments (the
// serving layer ingests one chunk per segment). The global sample index
// persists across segments (r.sampleIdx), so index-addressed sources —
// trace replays, push-fed streams — stay aligned: segment N+1 asks for the
// sample right after the last one segment N consumed. Segments should be
// multiples of SampleBatch; a misaligned segment still runs, but its last
// batch extends past the segment end, exactly as a single long Run's final
// batch would.
func (r *Runtime) Run(dur float64) error {
	start := r.sched.Now()
	end := start + dur
	sampleRate := r.src.Rate()
	perBatch := int(r.cfg.SampleBatch * sampleRate)
	if perBatch < 1 {
		perBatch = 1
	}
	prep, _ := r.src.(source.BatchPreparer)
	active := make([]*nodeState, 0, len(r.nodes))
	var batchAt func(t float64, sampleIdx int)
	batchAt = func(t float64, sampleIdx int) {
		r.sampleIdx = sampleIdx + perBatch
		active = active[:0]
		for _, ns := range r.nodes {
			if r.senseGate(ns, sampleIdx, perBatch, sampleRate) {
				active = append(active, ns)
			}
		}
		stop := r.col.Profiler().Start("synthesis")
		if prep != nil {
			// Serial staging hook: the synthetic source queries its spatial
			// wake index here, once per batch, before the parallel fan-out.
			prep.PrepareBatch(sampleIdx, t, perBatch)
		}
		parallel.ForEach(len(active), r.cfg.Workers, func(i int) {
			ns := active[i]
			ns.block = r.src.Block(int(ns.id), sampleIdx, t, perBatch)
		})
		stop()
		if r.rec != nil {
			// Tee in the serial phase, after the fan-out joined and before
			// consumption nils the blocks: recording observes exactly what
			// the detectors are about to see and never perturbs the run.
			for _, ns := range active {
				r.rec.Append(int(ns.id), sampleIdx, ns.block)
			}
		}
		// Memory accounting happens while the blocks are still resident —
		// consumeBlock drops them — so the gauge reflects a node's true
		// high-water mark, sample block included.
		r.trackNodeMem()
		stop = r.col.Profiler().Start("detect")
		for _, ns := range active {
			r.consumeBlock(ns)
		}
		stop()
		r.boundHistory()
		next := t + float64(perBatch)/sampleRate
		if next < end {
			_ = r.sched.Schedule(next, func() { batchAt(next, sampleIdx+perBatch) })
		}
	}
	if err := r.sched.Schedule(start, func() { batchAt(start, r.sampleIdx) }); err != nil {
		return err
	}
	r.sched.Run(end)
	return nil
}

// senseGate decides whether a node senses the current batch, charging idle
// energy either way. It runs in the serial pre-pass of a batch event, so
// ordering matches the historical one-node-at-a-time implementation.
func (r *Runtime) senseGate(ns *nodeState, sampleIdx, perBatch int, rate float64) bool {
	node := r.net.MustNode(ns.id)
	if !node.Alive() {
		return false
	}
	if node.Battery != nil {
		node.Battery.AccrueIdle(float64(perBatch) / rate)
	}
	// Duty cycling: non-sentinel nodes run coarse mode (every fourth
	// batch) unless woken by an invite or active in a cluster.
	now := r.sched.Now()
	woken := now < ns.awakeTil || (ns.inTempCluster && now < ns.membership)
	if !ns.sentinel && !woken && (sampleIdx/perBatch)%4 != 0 {
		return false
	}
	return true
}

// consumeBlock feeds one node's sample block into its detector and reacts
// to completed anomaly windows. Serial phase: network sends and battery
// accounting happen here, in node order.
func (r *Runtime) consumeBlock(ns *nodeState) {
	node := r.net.MustNode(ns.id)
	for _, smp := range ns.block {
		if node.Battery != nil {
			node.Battery.Consume(wsn.CostSample)
		}
		ws, done := ns.det.Push(smp.T, float64(smp.Z))
		if !done {
			continue
		}
		if node.Battery != nil {
			node.Battery.Consume(wsn.CostCPU)
		}
		// Journal windows with at least one crossing (quiet windows would
		// drown the ring, and their Onset is NaN — not JSON). The guard
		// keeps the no-op path allocation-free: the payload is only boxed
		// when a journal is attached.
		if ws.Crossings > 0 && r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindNodeWindow, obs.NodeWindow{
				Node: int(ns.id), Start: ws.Start, End: ws.End,
				AF: ws.AnomalyFreq, Crossings: ws.Crossings,
				Energy: ws.Energy, Onset: ws.Onset,
				Threshold: ws.Threshold, Mean: ws.Mean, Std: ws.Std,
			})
		}
		if ns.det.Detected(ws) {
			r.onNodeDetection(ns, node, ns.det.ReportOf(ws))
		}
	}
	ns.block = nil
}
