package sid

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/wsn"
)

// This file is the head-side defense layer against the internal/adversary
// attack model. Three mechanisms, each paired with the attack it answers:
//
//   - Freshness gating (defenseAdmit): a report's onset must lie inside the
//     physically possible window for the collection — replayed stale
//     reports reproduce a real pass's consistent space-time pattern and
//     sail through the pure order-statistics gates, but their onsets are
//     necessarily old. Timestamps cross the network in node-local clock,
//     so the gate compares against the head's local clock with slack for
//     sync residuals.
//   - Trimmed evaluation (cluster.EvaluateRobust, wired in headDeadline):
//     fabricated reports have fresh onsets and plausible energies, so
//     gating cannot see them; they reveal themselves only against the
//     honest majority's wake-sweep structure.
//   - Suspicion and quarantine: every piece of per-node evidence (a
//     freshness rejection, a trimmed-by-consensus verdict in a detecting
//     evaluation) bumps a score; past SuspicionThreshold the node's
//     reports are refused outright, which caps what a persistent
//     compromised node can inject over a long run.
//
// The suspicion ledger charges the node ID a report claims to come from.
// The implemented attacks do not forge origins (a replayer re-sends its
// own genuine report), so the charge lands on the compromised node; an
// origin-forging attacker could frame honest nodes, and defending that
// needs link-layer authentication — outside this model, noted here so the
// limitation is explicit.

// DefenseConfig configures the head-side defenses. The zero value disables
// them all, keeping runs bit-identical to the undefended protocol.
type DefenseConfig struct {
	// Enabled turns the defense layer on.
	Enabled bool
	// StaleSlack extends the freshness window into the past, beyond the
	// collection window itself, to absorb clock-sync residuals and
	// multi-hop delivery delay (seconds).
	StaleSlack float64
	// FutureSlack is how far into the head's future an onset may claim to
	// be (seconds) — sync residuals make small leads legitimate.
	FutureSlack float64
	// MaxTrimFrac bounds the fraction of reports cluster.EvaluateRobust may
	// discard while searching for a detecting honest subset.
	MaxTrimFrac float64
	// SuspicionThreshold quarantines a node when its suspicion score
	// reaches it. 0 disables quarantine (scores still accumulate).
	SuspicionThreshold int
	// RobustSpeed switches the post-confirmation speed fit to the
	// leave-one-out estimator, which survives one spoofed timestamp among
	// the four chosen nodes.
	RobustSpeed bool
}

// DefaultDefenseConfig returns the defended-arm settings used by the
// adversarial evaluation.
func DefaultDefenseConfig() DefenseConfig {
	return DefenseConfig{
		Enabled:            true,
		StaleSlack:         20,
		FutureSlack:        5,
		MaxTrimFrac:        0.25,
		SuspicionThreshold: 3,
		RobustSpeed:        true,
	}
}

func (d DefenseConfig) validate() error {
	if !d.Enabled {
		return nil
	}
	if d.StaleSlack < 0 {
		return fmt.Errorf("sid: Defense.StaleSlack must be non-negative, got %g", d.StaleSlack)
	}
	if d.FutureSlack < 0 {
		return fmt.Errorf("sid: Defense.FutureSlack must be non-negative, got %g", d.FutureSlack)
	}
	if d.MaxTrimFrac < 0 || d.MaxTrimFrac >= 1 {
		return fmt.Errorf("sid: Defense.MaxTrimFrac must be in [0,1), got %g", d.MaxTrimFrac)
	}
	if d.SuspicionThreshold < 0 {
		return fmt.Errorf("sid: Defense.SuspicionThreshold must be non-negative, got %d", d.SuspicionThreshold)
	}
	return nil
}

// defenseAdmit decides whether a head folds a report into its collection.
// The returned reason ("quarantined", "stale", "future", "energy") feeds
// the rejection journal and the suspicion ledger.
func (r *Runtime) defenseAdmit(head *nodeState, p ReportPayload) (bool, string) {
	if int(p.Node) >= 0 && int(p.Node) < len(r.quarantined) && r.quarantined[p.Node] {
		return false, "quarantined"
	}
	if p.Energy <= 0 {
		return false, "energy"
	}
	d := r.cfg.Defense
	headLocal := r.net.MustNode(head.id).LocalTime(r.sched.Now())
	if p.Onset < headLocal-r.cfg.CollectWindow-d.StaleSlack {
		return false, "stale"
	}
	if p.Onset > headLocal+d.FutureSlack {
		return false, "future"
	}
	return true, ""
}

// rejectReport books a refused report: counter, journal, and a suspicion
// bump against the claimed origin (quarantined origins are already charged;
// re-charging them would just inflate the score).
func (r *Runtime) rejectReport(head *nodeState, p ReportPayload, reason string) {
	r.ctr.rejected.Inc()
	if r.col.Journaling() {
		r.col.Emit(r.sched.Now(), obs.KindReportReject, obs.ReportReject{
			Head: int(head.id), Node: int(p.Node),
			Onset: p.Onset, Energy: p.Energy, Reason: reason,
		})
	}
	if r.col.Tracing() {
		now := r.sched.Now()
		r.col.Tracer().Add(int(head.id), obs.Span{
			Kind: obs.SpanReportReject, Start: now, End: now,
			Node: int(p.Node), Peer: int(head.id), Note: reason,
		})
	}
	if reason != "quarantined" {
		r.suspect(int(p.Node), reason)
	}
}

// suspect bumps a node's suspicion score and quarantines it at the
// threshold. Runs only in the scheduler's serial phases, so the ledger is
// deterministic for any Workers value.
func (r *Runtime) suspect(node int, reason string) {
	if node < 0 || node >= len(r.suspicion) {
		return
	}
	r.suspicion[node]++
	r.ctr.suspicions.Inc()
	d := r.cfg.Defense
	quarantined := false
	if d.SuspicionThreshold > 0 && r.suspicion[node] >= d.SuspicionThreshold &&
		!r.quarantined[node] && wsn.NodeID(node) != r.cfg.SinkID {
		r.quarantined[node] = true
		r.ctr.quarantines.Inc()
		quarantined = true
	}
	if r.col.Journaling() {
		r.col.Emit(r.sched.Now(), obs.KindSuspicion, obs.Suspicion{
			Node: node, Score: r.suspicion[node],
			Reason: reason, Quarantined: quarantined,
		})
	}
}

// SuspicionScores returns the per-node suspicion ledger, indexed by node ID.
func (r *Runtime) SuspicionScores() []int {
	return append([]int(nil), r.suspicion...)
}

// QuarantinedNodes returns the IDs currently under quarantine, ascending.
func (r *Runtime) QuarantinedNodes() []int {
	var out []int
	for id, q := range r.quarantined {
		if q {
			out = append(out, id)
		}
	}
	return out
}

// RejectedReports returns how many reports the defense layer refused
// (registry: "defense.rejected").
func (r *Runtime) RejectedReports() int { return int(r.ctr.rejected.Value()) }
