package sid

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/wsn"
)

// tracedRun runs the standard crossing deployment with a tracer attached
// and returns the tracer plus the sink-report count.
func tracedRun(t *testing.T, workers int) (*obs.Tracer, int) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
	cfg.Seed = 106
	cfg.Workers = workers
	col := obs.New()
	tr := obs.NewTracer("golden")
	tr.Genesis(0, 150, "crossing")
	col.SetTracer(tr)
	cfg.Obs = col
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	return tr, len(rt.SinkReports())
}

// TestTraceDeterministicAcrossWorkers pins the tracer's determinism
// contract: the serialized pipeline span set of the golden scenario is
// byte-identical whether blocks are synthesized serially or across a
// worker pool, because every tracer mutation happens in a scheduler-serial
// phase — the same discipline TestParallelRunBitIdentical pins for the
// sink reports themselves.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	serialTr, nReports := tracedRun(t, 1)
	if nReports == 0 {
		t.Fatal("golden scenario produced no sink reports; the comparison would be vacuous")
	}
	serial := serialTr.SerializePipeline()
	if len(serial) == 0 {
		t.Fatal("no trace spans serialized")
	}
	ids := serialTr.ConfirmedIDs()
	if len(ids) != nReports {
		t.Fatalf("%d confirmed traces for %d sink reports; they must be index-aligned", len(ids), nReports)
	}
	for _, workers := range []int{4} {
		tr, _ := tracedRun(t, workers)
		got := tr.SerializePipeline()
		if !bytes.Equal(serial, got) {
			t.Errorf("workers=%d: trace serialization differs from serial run (%d vs %d bytes)",
				workers, len(got), len(serial))
		}
	}
}

// TestTraceSpanCoverage asserts a confirmed detection's trace actually
// tells the causal story: genesis, onset windows, member transmissions,
// the collection window, evaluation, speed fit, and sink confirmation.
func TestTraceSpanCoverage(t *testing.T) {
	tr, _ := tracedRun(t, 1)
	set := tr.Traces()
	if len(set.Traces) == 0 {
		t.Fatal("no confirmed traces")
	}
	kinds := map[string]int{}
	for _, doc := range set.Traces {
		if !strings.HasPrefix(doc.ID, "golden/s0/") {
			t.Errorf("trace %q not linked to ship 0", doc.ID)
		}
		for _, s := range doc.Spans {
			kinds[s.Kind]++
		}
	}
	for _, want := range []string{
		obs.SpanWakeGenesis, obs.SpanNodeOnset, obs.SpanReportTx,
		obs.SpanClusterColl, obs.SpanClusterEval, obs.SpanSpeedEstimate,
		obs.SpanSinkConfirm,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s span in any confirmed trace (have %v)", want, kinds)
		}
	}
	// Every trace carries exactly one collection window and one sink
	// confirmation.
	for _, doc := range set.Traces {
		k := map[string]int{}
		for _, s := range doc.Spans {
			k[s.Kind]++
		}
		if k[obs.SpanClusterColl] != 1 || k[obs.SpanSinkConfirm] != 1 {
			t.Errorf("trace %s: collect=%d confirm=%d, want 1/1", doc.ID, k[obs.SpanClusterColl], k[obs.SpanSinkConfirm])
		}
	}
}

// TestTraceLossyRadio exercises the ARQ span path: with frame loss the
// traced hops must record retransmissions without perturbing the
// protocol's RNG draws (the trace rides on the side of the radio, it never
// steers it).
func TestTraceLossyRadio(t *testing.T) {
	run := func(traced bool) (*obs.Tracer, []SinkReport) {
		cfg := DefaultConfig()
		cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
		cfg.Seed = 106
		cfg.Radio.LossProb = 0.2
		cfg.Radio.Reliable = wsn.DefaultReliableConfig()
		var tr *obs.Tracer
		if traced {
			col := obs.New()
			tr = obs.NewTracer("lossy")
			tr.Genesis(0, 150, "crossing")
			col.SetTracer(tr)
			cfg.Obs = col
		}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 150))
		if err := rt.Run(450); err != nil {
			t.Fatal(err)
		}
		return tr, rt.SinkReports()
	}
	_, plain := run(false)
	tr, traced := run(true)
	if len(plain) == 0 {
		t.Fatal("lossy run produced no sink reports")
	}
	if len(plain) != len(traced) {
		t.Fatalf("tracing changed the outcome: %d reports traced vs %d untraced", len(traced), len(plain))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Errorf("sink report %d differs with tracing on:\n%+v\n%+v", i, plain[i], traced[i])
		}
	}
	retrans := 0
	for _, doc := range tr.Traces().Traces {
		for _, s := range doc.Spans {
			if s.Kind == obs.SpanHopRetransmit {
				retrans++
				if s.Seq < 1 {
					t.Errorf("retransmit span with attempt %d", s.Seq)
				}
			}
		}
	}
	if retrans == 0 {
		t.Error("20% frame loss produced no hop.retransmit spans in any confirmed trace")
	}
}
