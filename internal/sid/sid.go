// Package sid wires the SID pieces into the distributed system of the
// paper's Algorithm SID: every node runs the adaptive node-level detector
// (internal/detect) on its own simulated buoy; a node whose anomaly
// frequency passes the threshold either sets up a temporary cluster
// (flooding an invite within six hops and becoming the head) or reports to
// the head it already belongs to; the head collects reports for a window,
// cancels the cluster if too few arrive ("its positive finding may be a
// false alarm"), otherwise runs the spatial/temporal correlation test
// (internal/cluster) and, when the correlation coefficient passes, sends a
// detection — with a ship speed/heading estimate when the four-node
// condition is met (internal/speed) — to the sink over the routing tree.
//
// The runtime owns the whole simulated deployment: ocean field, ships,
// buoys, sensors, clocks, radios, batteries, and the discrete-event
// scheduler.
package sid

import (
	"fmt"
	"math"

	"github.com/sid-wsn/sid/internal/cluster"
	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/parallel"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/sim"
	"github.com/sid-wsn/sid/internal/speed"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Message kinds used by the SID protocol.
const (
	KindInvite     = "sid.invite"
	KindReport     = "sid.report"
	KindSinkReport = "sid.sink"
)

// ReportPayload is a member's detection report to its temporary cluster
// head (the paper: "it reports EΔ and the onset time").
type ReportPayload struct {
	Node   wsn.NodeID
	Row    int
	Pos    geo.Vec2
	Onset  float64 // node-local clock time of onset
	Energy float64
}

// SinkReport is what the sink finally receives for one confirmed intrusion.
type SinkReport struct {
	// Head is the temporary cluster head that confirmed the intrusion.
	Head wsn.NodeID
	// Time is the sink-local time of the report's arrival.
	Time float64
	// C is the correlation coefficient of the confirming evaluation.
	C float64
	// Reports is the number of member reports used.
	Reports int
	// MeanOnset is the average onset across reports (head-local time).
	MeanOnset float64
	// HasSpeed reports whether the four-node speed condition was met.
	HasSpeed bool
	// Speed is the estimated intruder speed in m/s (if HasSpeed).
	Speed float64
	// Heading is the estimated sailing-line angle in radians (if HasSpeed).
	Heading float64
}

// Config assembles a full SID deployment.
type Config struct {
	// Grid is the manual buoy deployment (§III-A).
	Grid geo.GridSpec
	// Hs, Tp parametrize the ambient sea (Pierson–Moskowitz).
	Hs, Tp float64
	// Detect configures every node's detector.
	Detect detect.Config
	// Cluster configures the correlation test.
	Cluster cluster.Config
	// Radio configures the network links (including the optional reliable
	// per-hop transport, Radio.Reliable).
	Radio wsn.RadioConfig
	// Failover configures cluster-head failover (heartbeats, deterministic
	// re-election, one-time deadline extension). The zero value disables
	// it, keeping runs bit-identical to the pre-failover protocol.
	Failover FailoverConfig
	// Faults is a deterministic fault plan (node crashes/revivals, battery
	// depletion, clock steps, burst loss) applied at construction. The
	// zero value injects nothing.
	Faults fault.Plan
	// ClusterHops is the temporary-cluster radius (6 in Algorithm SID).
	ClusterHops int
	// CollectWindow is how long a head collects reports before evaluating,
	// in seconds. It must cover the wake's sweep across the deployment.
	CollectWindow float64
	// MinReports cancels the temporary cluster when fewer reports arrive
	// ("if the cluster head has not received any reporting within a
	// certain period of time, it will cancel the temporary cluster").
	MinReports int
	// SinkID designates the sink node (default 0).
	SinkID wsn.NodeID
	// DriftRadius is the buoy mooring drift in meters (2 in the paper).
	DriftRadius float64
	// BatteryJ equips each non-sink node with a battery when positive.
	BatteryJ float64
	// Energy is the per-operation cost model (used when BatteryJ > 0).
	Energy wsn.EnergyConfig
	// SampleBatch is the sensing granularity in seconds: nodes process
	// their accumulated samples in batches this long (0.5 s default).
	SampleBatch float64
	// DutyCycle implements §IV-A's power management: the fraction of
	// nodes that stay fully active as sentinels while the rest run a
	// coarse mode ("some nodes in a group may keep active to perform a
	// coarse detection while other nodes sleep"). Coarse nodes process
	// only every fourth sampling batch — keeping their adaptive
	// statistics warm at a quarter of the sensing energy — until a
	// cluster invite wakes them to the full rate for the membership
	// window ("upon a positive detection is made, sleeping nodes should
	// be activated and increase the sampling rate"). 0 or 1 disables
	// duty cycling (all nodes always on).
	DutyCycle float64
	// Workers bounds the goroutines used to synthesize per-node sample
	// blocks inside each sensing batch: 0 uses all cores (GOMAXPROCS),
	// 1 forces serial synthesis. Every node's samples depend only on its
	// own random streams, so runs are bit-identical for any Workers
	// value — the knob trades wall-clock time only.
	Workers int
	// Seed drives every random stream in the deployment.
	Seed int64
	// Obs is the observability collector the deployment reports into
	// (metrics registry, optional journal, optional profiler). Nil gets a
	// private registry-only collector, so counters always work. Journal
	// events carry simulation time exclusively and are emitted only from
	// the scheduler's serial phases, so the journal is byte-identical
	// across Workers values; attaching a collector never changes
	// simulation results.
	Obs *obs.Collector
}

// DefaultConfig returns a 4×5 grid at 25 m spacing on a smooth sea with
// the paper's algorithm parameters.
func DefaultConfig() Config {
	return Config{
		Grid:          geo.GridSpec{Rows: 4, Cols: 5, Spacing: 25},
		Hs:            0.25,
		Tp:            4.0,
		Detect:        detect.DefaultConfig(),
		Cluster:       cluster.DefaultConfig(),
		Radio:         wsn.DefaultRadioConfig(),
		ClusterHops:   6,
		CollectWindow: 90,
		MinReports:    6,
		SinkID:        0,
		DriftRadius:   2,
		SampleBatch:   0.5,
	}
}

func (c Config) validate() error {
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.Hs <= 0 || c.Tp <= 0 {
		return fmt.Errorf("sid: Hs and Tp must be positive, got %g, %g", c.Hs, c.Tp)
	}
	if c.ClusterHops <= 0 {
		return fmt.Errorf("sid: ClusterHops must be positive, got %d", c.ClusterHops)
	}
	if c.CollectWindow <= 0 {
		return fmt.Errorf("sid: CollectWindow must be positive, got %g", c.CollectWindow)
	}
	if c.MinReports < 1 {
		return fmt.Errorf("sid: MinReports must be ≥ 1, got %d", c.MinReports)
	}
	if int(c.SinkID) < 0 || int(c.SinkID) >= c.Grid.NumNodes() {
		return fmt.Errorf("sid: SinkID %d outside grid", c.SinkID)
	}
	if c.DriftRadius < 0 {
		return fmt.Errorf("sid: DriftRadius must be non-negative, got %g", c.DriftRadius)
	}
	if c.SampleBatch <= 0 {
		return fmt.Errorf("sid: SampleBatch must be positive, got %g", c.SampleBatch)
	}
	if c.DutyCycle < 0 || c.DutyCycle > 1 {
		return fmt.Errorf("sid: DutyCycle must be in [0,1], got %g", c.DutyCycle)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sid: Workers must be non-negative, got %d", c.Workers)
	}
	if err := c.Failover.validate(); err != nil {
		return err
	}
	return c.Faults.Validate(c.Grid.NumNodes())
}

// nodeState is the per-node SID protocol state (Algorithm SID's variables).
type nodeState struct {
	id   wsn.NodeID
	row  int
	pos  geo.Vec2
	sens *sensor.Sensor
	det  *detect.Detector

	inTempCluster bool
	headID        wsn.NodeID
	membership    float64 // true time the membership expires

	// sentinel marks nodes that stay awake under duty cycling; others
	// sleep until an invite wakes them.
	sentinel bool
	awakeTil float64 // wake-on-invite expiry for non-sentinels

	// head-only state
	isHead   bool
	reports  []cluster.Report
	deadline float64
	// lastReportAt is when the head last accepted a report; extended marks
	// its one-time deadline extension as spent.
	lastReportAt float64
	extended     bool

	// failover state: lastBeat is the last proof of life from the head;
	// electEpoch invalidates stale watchdog/candidacy closures (every
	// newer observation bumps it); lastReport/hasReport retain the node's
	// own report for re-sending to a replacement head.
	lastBeat   float64
	electEpoch int
	lastReport ReportPayload
	hasReport  bool

	// sendErrs counts this node's synchronous send failures (no route to
	// the destination at send time).
	sendErrs int

	// Batched-synthesis scratch: bufs is reused across batches, block is
	// the node's freshly synthesized samples for the current batch. Both
	// are touched by exactly one goroutine per batch (the one that claims
	// this node in the parallel fan-out), then read serially.
	bufs  sensor.BlockBuffers
	block []sensor.Sample
}

// Runtime is a running SID deployment.
type Runtime struct {
	cfg   Config
	sched *sim.Scheduler
	net   *wsn.Network
	tree  *wsn.Tree
	field *ocean.Field
	model sensor.Composite
	nodes []*nodeState

	sinkReports []SinkReport
	nodeReports []NodeReport
	evaluations []Evaluation

	// col is the observability collector; ctr caches its registry counter
	// handles (the source of truth for the protocol tallies); cHist is the
	// correlation-coefficient histogram.
	col   *obs.Collector
	ctr   sidCounters
	cHist *obs.Histogram
}

// sidCounters caches the registry handles behind the Runtime's protocol
// tallies so hot-path increments skip the registry's name lookup.
type sidCounters struct {
	clustersFormed *obs.Counter
	cancelled      *obs.Counter
	failovers      *obs.Counter
	deadlineExt    *obs.Counter
	sendErrors     *obs.Counter
}

// clusterCBounds buckets the correlation coefficient C ∈ [0,1] around the
// default 0.7 detection threshold.
var clusterCBounds = []float64{0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1}

func (r *Runtime) bindCounters() {
	reg := r.col.Registry()
	r.ctr = sidCounters{
		clustersFormed: reg.Counter("sid.clusters_formed"),
		cancelled:      reg.Counter("sid.cancelled"),
		failovers:      reg.Counter("sid.failovers"),
		deadlineExt:    reg.Counter("sid.deadline_extensions"),
		sendErrors:     reg.Counter("sid.send_errors"),
	}
	r.cHist = reg.Histogram("cluster.c", clusterCBounds)
}

// gaugeTreeDepth publishes the routing tree's maximum hop count as the
// "sid.tree_depth" gauge (updated again after failover route repair).
func (r *Runtime) gaugeTreeDepth() {
	depth := 0
	for _, h := range r.tree.Hops {
		if h > depth {
			depth = h
		}
	}
	r.col.Registry().Gauge("sid.tree_depth").Set(float64(depth))
}

// Cancelled returns how many temporary clusters ended without a confirmed
// detection: cancelled for lack of reports, lost to head death, or
// evaluated below the correlation threshold (registry: "sid.cancelled").
func (r *Runtime) Cancelled() int { return int(r.ctr.cancelled.Value()) }

// ClustersFormed counts temporary cluster setups (registry:
// "sid.clusters_formed").
func (r *Runtime) ClustersFormed() int { return int(r.ctr.clustersFormed.Value()) }

// Failovers counts successful cluster-head takeovers (registry:
// "sid.failovers").
func (r *Runtime) Failovers() int { return int(r.ctr.failovers.Value()) }

// DeadlineExtensions counts one-time collection-deadline extensions
// (registry: "sid.deadline_extensions").
func (r *Runtime) DeadlineExtensions() int { return int(r.ctr.deadlineExt.Value()) }

// Observability returns the deployment's collector (never nil; a private
// registry-only collector is created when Config.Obs was nil).
func (r *Runtime) Observability() *obs.Collector { return r.col }

// countSend books a synchronous send failure (typically: no route to the
// destination because intermediate nodes died) against the sending node
// and the deployment. Asynchronous losses are the radio stats' business;
// these are the errors the protocol used to discard silently.
func (r *Runtime) countSend(id wsn.NodeID, err error) {
	if err != nil {
		r.ctr.sendErrors.Inc()
		r.nodes[id].sendErrs++
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindSendError, obs.SendError{
				Node: int(id), Err: err.Error(),
			})
		}
	}
}

// SendErrors returns the deployment-wide count of synchronous send
// failures (routing errors at send time — distinct from radio frame loss;
// registry: "sid.send_errors").
func (r *Runtime) SendErrors() int { return int(r.ctr.sendErrors.Value()) }

// NodeSendErrors returns per-node synchronous send-failure counts,
// indexed by node ID.
func (r *Runtime) NodeSendErrors() []int {
	out := make([]int, len(r.nodes))
	for i, ns := range r.nodes {
		out[i] = ns.sendErrs
	}
	return out
}

// NewRuntime builds the deployment: ocean, buoys, sensors, detectors,
// network, routing tree, and time synchronization.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler(cfg.Seed)
	spec, err := ocean.NewPiersonMoskowitz(cfg.Hs, cfg.Tp)
	if err != nil {
		return nil, err
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: cfg.Seed ^ 0x0cea})
	if err != nil {
		return nil, err
	}
	positions := cfg.Grid.Positions()
	net, err := wsn.NewNetwork(sched, positions, cfg.Radio)
	if err != nil {
		return nil, err
	}
	col := cfg.Obs
	if col == nil {
		col = obs.New()
	}
	net.SetCollector(col)
	r := &Runtime{
		cfg:   cfg,
		sched: sched,
		net:   net,
		field: field,
		model: sensor.Composite{field},
		col:   col,
	}
	r.bindCounters()
	seedRNG := sched.RNG("sid.nodes")
	for i, pos := range positions {
		id := wsn.NodeID(i)
		row, _ := cfg.Grid.RowCol(i)
		buoy := sensor.NewBuoy(sensor.BuoyConfig{
			Anchor:      pos,
			DriftRadius: cfg.DriftRadius,
			Seed:        seedRNG.Int63(),
		})
		sens, err := sensor.NewSensor(buoy, sensor.DefaultAccelConfig())
		if err != nil {
			return nil, err
		}
		det, err := detect.New(cfg.Detect)
		if err != nil {
			return nil, err
		}
		ns := &nodeState{id: id, row: row, pos: pos, sens: sens, det: det, headID: -1, sentinel: true}
		if cfg.DutyCycle > 0 && cfg.DutyCycle < 1 {
			// Deterministic hash spreads the sentinel set over the grid.
			h := (uint64(i)*2654435761 + uint64(cfg.Seed)) % 1000
			ns.sentinel = float64(h) < cfg.DutyCycle*1000 || id == cfg.SinkID
		}
		r.nodes = append(r.nodes, ns)
		node := net.MustNode(id)
		if cfg.BatteryJ > 0 && id != cfg.SinkID {
			b, err := wsn.NewBattery(cfg.BatteryJ, cfg.Energy)
			if err != nil {
				return nil, err
			}
			node.Battery = b
		}
		node.OnMessage = r.onMessage
	}
	tree, err := net.BuildTree(cfg.SinkID)
	if err != nil {
		return nil, err
	}
	r.tree = tree
	r.gaugeTreeDepth()
	if !cfg.Faults.Empty() {
		if err := fault.Apply(cfg.Faults, net); err != nil {
			return nil, err
		}
	}
	net.EnableTimeSync()
	if _, err := net.StartTimeSync(tree, 0.5); err != nil {
		return nil, err
	}
	return r, nil
}

// AddShip introduces an intruder into the surface model.
func (r *Runtime) AddShip(s *wake.Ship) {
	r.model = append(r.model, wake.Field{Ship: s})
}

// AddSource introduces an arbitrary surface-motion source (e.g. a
// wake.ManeuverField for a waypoint-following vessel). Sources superpose
// linearly through the sensor.Composite model, which is how the scenario
// engine builds multi-ship trials.
func (r *Runtime) AddSource(m sensor.SurfaceModel) {
	r.model = append(r.model, m)
}

// Network exposes the underlying WSN (for fault injection in tests).
func (r *Runtime) Network() *wsn.Network { return r.net }

// Scheduler exposes the simulation clock.
func (r *Runtime) Scheduler() *sim.Scheduler { return r.sched }

// SinkReports returns the confirmed intrusions received by the sink so far.
func (r *Runtime) SinkReports() []SinkReport { return r.sinkReports }

// NodeReport is one node-level detection event, recorded in the order the
// deployment produced them. It is the raw per-node report stream the
// scenario golden traces pin: Time is the true simulation time of the
// detection, Onset/Energy are what the node reports to its head (Onset in
// the node's local clock, as it crosses the network).
type NodeReport struct {
	Node   wsn.NodeID
	Time   float64
	Onset  float64
	Energy float64
}

// NodeReports returns every node-level detection so far, in event order.
func (r *Runtime) NodeReports() []NodeReport { return r.nodeReports }

// Evaluation records one temporary cluster head's deadline processing:
// the reports it had collected and (when enough arrived) the correlation
// result. Exposed for analysis and debugging of deployments.
type Evaluation struct {
	// Head is the temporary cluster head.
	Head wsn.NodeID
	// Reports are the collected member reports (own report included).
	Reports []cluster.Report
	// Result is the correlation outcome; zero when the cluster was
	// cancelled for lack of reports before evaluating.
	Result cluster.Result
	// Err reports an evaluation failure (e.g. too few reports to fit a
	// travel line).
	Err error
}

// Evaluations returns every cluster-head evaluation so far, in order.
func (r *Runtime) Evaluations() []Evaluation { return r.evaluations }

// Run drives the deployment for dur seconds of simulated time: sampling,
// detection, clustering, correlation, and sink reporting all happen inside.
//
// Each sensing batch is a single scheduler event processed in three
// phases: gate (serial — decide which nodes sense, charge idle energy),
// synthesize (parallel — each sensing node's sample block fans out across
// Config.Workers goroutines), and consume (serial, ascending node order —
// detector pushes and protocol reactions). Message deliveries are
// scheduler events of their own, so no protocol state changes while a
// batch event runs; the pipeline is therefore observably identical to the
// fully serial implementation, and runs are bit-identical for any worker
// count.
func (r *Runtime) Run(dur float64) error {
	start := r.sched.Now()
	end := start + dur
	sampleRate := r.nodes[0].sens.Accel.SampleRate
	perBatch := int(r.cfg.SampleBatch * sampleRate)
	if perBatch < 1 {
		perBatch = 1
	}
	active := make([]*nodeState, 0, len(r.nodes))
	var batchAt func(t float64, sampleIdx int)
	batchAt = func(t float64, sampleIdx int) {
		active = active[:0]
		for _, ns := range r.nodes {
			if r.senseGate(ns, sampleIdx, perBatch, sampleRate) {
				active = append(active, ns)
			}
		}
		stop := r.col.Profiler().Start("synthesis")
		parallel.ForEach(len(active), r.cfg.Workers, func(i int) {
			ns := active[i]
			ns.block = ns.sens.SampleBlock(r.model, t, perBatch, &ns.bufs)
		})
		stop()
		stop = r.col.Profiler().Start("detect")
		for _, ns := range active {
			r.consumeBlock(ns)
		}
		stop()
		next := t + float64(perBatch)/sampleRate
		if next < end {
			_ = r.sched.Schedule(next, func() { batchAt(next, sampleIdx+perBatch) })
		}
	}
	if err := r.sched.Schedule(start, func() { batchAt(start, 0) }); err != nil {
		return err
	}
	r.sched.Run(end)
	return nil
}

// senseGate decides whether a node senses the current batch, charging idle
// energy either way. It runs in the serial pre-pass of a batch event, so
// ordering matches the historical one-node-at-a-time implementation.
func (r *Runtime) senseGate(ns *nodeState, sampleIdx, perBatch int, rate float64) bool {
	node := r.net.MustNode(ns.id)
	if !node.Alive() {
		return false
	}
	if node.Battery != nil {
		node.Battery.AccrueIdle(float64(perBatch) / rate)
	}
	// Duty cycling: non-sentinel nodes run coarse mode (every fourth
	// batch) unless woken by an invite or active in a cluster.
	now := r.sched.Now()
	woken := now < ns.awakeTil || (ns.inTempCluster && now < ns.membership)
	if !ns.sentinel && !woken && (sampleIdx/perBatch)%4 != 0 {
		return false
	}
	return true
}

// consumeBlock feeds one node's freshly synthesized sample block into its
// detector and reacts to completed anomaly windows. Serial phase: network
// sends and battery accounting happen here, in node order.
func (r *Runtime) consumeBlock(ns *nodeState) {
	node := r.net.MustNode(ns.id)
	for _, smp := range ns.block {
		if node.Battery != nil {
			node.Battery.Consume(wsn.CostSample)
		}
		ws, done := ns.det.Push(smp.T, float64(smp.Z))
		if !done {
			continue
		}
		if node.Battery != nil {
			node.Battery.Consume(wsn.CostCPU)
		}
		// Journal windows with at least one crossing (quiet windows would
		// drown the ring, and their Onset is NaN — not JSON). The guard
		// keeps the no-op path allocation-free: the payload is only boxed
		// when a journal is attached.
		if ws.Crossings > 0 && r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindNodeWindow, obs.NodeWindow{
				Node: int(ns.id), Start: ws.Start, End: ws.End,
				AF: ws.AnomalyFreq, Crossings: ws.Crossings,
				Energy: ws.Energy, Onset: ws.Onset,
				Threshold: ws.Threshold, Mean: ws.Mean, Std: ws.Std,
			})
		}
		if ns.det.Detected(ws) {
			r.onNodeDetection(ns, node, ns.det.ReportOf(ws))
		}
	}
	ns.block = nil
}

// onNodeDetection implements the DetectIntrusion branch of Algorithm SID.
func (r *Runtime) onNodeDetection(ns *nodeState, node *wsn.Node, rep detect.Report) {
	now := r.sched.Now()
	payload := ReportPayload{
		Node:   ns.id,
		Row:    ns.row,
		Pos:    ns.pos,
		Onset:  node.LocalTime(rep.Onset), // timestamps cross the network in local time
		Energy: rep.Energy,
	}
	ns.lastReport = payload
	ns.hasReport = true
	r.nodeReports = append(r.nodeReports, NodeReport{
		Node: ns.id, Time: now, Onset: payload.Onset, Energy: payload.Energy,
	})
	if r.col.Journaling() {
		r.col.Emit(now, obs.KindNodeReport, obs.NodeReport{
			Node: int(ns.id), Row: ns.row, Onset: payload.Onset,
			Energy: payload.Energy, AF: rep.AnomalyFreq,
		})
	}
	if ns.inTempCluster && now < ns.membership {
		if ns.isHead {
			r.acceptReport(ns, payload)
			return
		}
		if r.col.Journaling() {
			r.col.Emit(now, obs.KindReportSend, obs.ReportSend{
				Node: int(ns.id), Head: int(ns.headID),
				Onset: payload.Onset, Energy: payload.Energy,
			})
		}
		r.countSend(ns.id, r.net.SendMultiHop(ns.id, ns.headID, KindReport, payload))
		return
	}
	// SetUpTempCluster: become head, invite neighbors within six hops.
	ns.inTempCluster = true
	ns.isHead = true
	ns.headID = ns.id
	ns.membership = now + r.cfg.CollectWindow
	ns.deadline = ns.membership
	ns.reports = ns.reports[:0]
	ns.extended = false
	r.ctr.clustersFormed.Inc()
	if r.col.Journaling() {
		r.col.Emit(now, obs.KindClusterSetup, obs.ClusterSetup{
			Head: int(ns.id), Deadline: ns.deadline,
		})
	}
	r.acceptReport(ns, payload)
	r.countSend(ns.id, r.net.Flood(ns.id, r.cfg.ClusterHops, KindInvite, ns.id))
	deadline := ns.deadline
	_ = r.sched.Schedule(deadline, func() { r.headDeadline(ns, deadline) })
	if r.cfg.Failover.Enabled {
		r.startHeartbeats(ns, deadline)
	}
}

// onMessage dispatches SID protocol messages.
func (r *Runtime) onMessage(node *wsn.Node, msg wsn.Message) {
	ns := r.nodes[node.ID]
	switch msg.Kind {
	case KindInvite:
		head, ok := msg.Payload.(wsn.NodeID)
		if !ok {
			return
		}
		// Already in a cluster: keep the first membership (the paper does
		// not merge clusters; extra invites are ignored).
		if ns.inTempCluster && r.sched.Now() < ns.membership {
			return
		}
		ns.inTempCluster = true
		ns.isHead = false
		ns.headID = head
		ns.membership = r.sched.Now() + r.cfg.CollectWindow
		ns.awakeTil = ns.membership // wake a sleeping node for the window
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterJoin, obs.ClusterJoin{
				Node: int(ns.id), Head: int(head), Until: ns.membership,
			})
		}
		r.observeHead(ns)
	case KindHeartbeat:
		head, ok := msg.Payload.(wsn.NodeID)
		if !ok {
			return
		}
		if ns.inTempCluster && !ns.isHead && head == ns.headID &&
			r.sched.Now() < ns.membership {
			r.observeHead(ns)
		}
	case KindTakeover:
		payload, ok := msg.Payload.(TakeoverPayload)
		if !ok {
			return
		}
		r.onTakeover(ns, payload)
	case KindReport:
		payload, ok := msg.Payload.(ReportPayload)
		if !ok {
			return
		}
		if ns.isHead {
			r.acceptReport(ns, payload)
		}
	case KindSinkReport:
		payload, ok := msg.Payload.(SinkReport)
		if !ok {
			return
		}
		if node.ID == r.cfg.SinkID {
			payload.Time = node.LocalTime(r.sched.Now())
			r.sinkReports = append(r.sinkReports, payload)
			if r.col.Journaling() {
				r.col.Emit(r.sched.Now(), obs.KindSinkReport, obs.SinkReport{
					Head: int(payload.Head), C: payload.C,
					Reports: payload.Reports, MeanOnset: payload.MeanOnset,
					HasSpeed: payload.HasSpeed, Speed: payload.Speed,
					Heading: payload.Heading,
				})
			}
		}
	}
}

// eventGap is the maximum onset separation (seconds) for two reports from
// the same node to be considered observations of the same disturbance
// event (a wake train seen by overlapping Δt windows) rather than separate
// events.
const eventGap = 15.0

// acceptReport stores a member report at the head, deduplicating per node:
// a node may cross the threshold in several windows — noise before the
// wake, or the wake seen by overlapping windows. The highest-energy event
// survives ("we only record the reports which have the highest detected
// energy within the test period"), and within that event the earliest
// onset is kept — the paper's onset is "the time when the signal first
// exceeds the threshold", which is the wake-front arrival the speed
// estimator needs.
func (r *Runtime) acceptReport(head *nodeState, p ReportPayload) {
	head.lastReportAt = r.sched.Now()
	if r.col.Journaling() {
		first := true
		for i := range head.reports {
			if head.reports[i].Node == int(p.Node) {
				first = false
				break
			}
		}
		r.col.Emit(r.sched.Now(), obs.KindReportAccept, obs.ReportAccept{
			Head: int(head.id), Node: int(p.Node),
			Onset: p.Onset, Energy: p.Energy, First: first,
		})
	}
	for i := range head.reports {
		if head.reports[i].Node == int(p.Node) {
			cur := &head.reports[i]
			sameEvent := math.Abs(p.Onset-cur.Onset) < eventGap
			switch {
			case p.Energy > cur.Energy && sameEvent:
				cur.Energy = p.Energy
				if p.Onset < cur.Onset {
					cur.Onset = p.Onset
				}
			case p.Energy > cur.Energy:
				cur.Energy = p.Energy
				cur.Onset = p.Onset
			case sameEvent && p.Onset < cur.Onset:
				cur.Onset = p.Onset
			}
			return
		}
	}
	head.reports = append(head.reports, cluster.Report{
		Node:   int(p.Node),
		Pos:    p.Pos,
		Row:    p.Row,
		Onset:  p.Onset,
		Energy: p.Energy,
	})
}

// headDeadline runs SpaceTimeDataProcessing when the collection window
// closes.
func (r *Runtime) headDeadline(ns *nodeState, deadline float64) {
	if !ns.isHead || ns.deadline != deadline {
		return
	}
	if !r.net.MustNode(ns.id).Alive() {
		// The head died holding the role (no failover, or no member left
		// to take over): the collection is lost, not evaluated.
		ns.isHead = false
		ns.inTempCluster = false
		ns.headID = -1
		reports := ns.reports
		ns.reports = nil
		r.ctr.cancelled.Inc()
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterCancel, obs.ClusterCancel{
				Head: int(ns.id), Reports: len(reports), Reason: "head-dead",
			})
		}
		r.evaluations = append(r.evaluations, Evaluation{
			Head: ns.id, Reports: reports,
			Err: fmt.Errorf("sid: head %d dead at collection deadline", ns.id),
		})
		return
	}
	// One-time extension when reports are still trickling in — typically
	// because retransmissions or a failover delayed the tail.
	fo := r.cfg.Failover
	if fo.Enabled && fo.ExtendWindow > 0 && !ns.extended &&
		len(ns.reports) > 0 && deadline-ns.lastReportAt <= fo.ExtendWindow {
		ns.extended = true
		next := deadline + fo.ExtendWindow
		ns.deadline = next
		ns.membership = next
		r.ctr.deadlineExt.Inc()
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterExtend, obs.ClusterExtend{
				Head: int(ns.id), Deadline: next,
			})
		}
		_ = r.sched.Schedule(next, func() { r.headDeadline(ns, next) })
		if fo.HeartbeatPeriod > 0 {
			r.startHeartbeats(ns, next)
		}
		return
	}
	ns.isHead = false
	ns.inTempCluster = false
	ns.headID = -1
	reports := ns.reports
	ns.reports = nil
	if len(reports) < r.cfg.MinReports {
		r.ctr.cancelled.Inc()
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterCancel, obs.ClusterCancel{
				Head: int(ns.id), Reports: len(reports), Reason: "min-reports",
			})
		}
		r.evaluations = append(r.evaluations, Evaluation{Head: ns.id, Reports: reports})
		return
	}
	stop := r.col.Profiler().Start("cluster")
	res, err := cluster.Evaluate(reports, r.cfg.Cluster)
	stop()
	r.evaluations = append(r.evaluations, Evaluation{Head: ns.id, Reports: reports, Result: res, Err: err})
	if err == nil {
		r.cHist.Observe(res.C)
	}
	if r.col.Journaling() {
		ev := obs.ClusterEval{
			Head: int(ns.id), Reports: len(reports),
			C: res.C, CNt: res.CNt, CNe: res.CNe,
			Sweep: res.Sweep, OrderTau: res.OrderTau,
			RowsUsed: res.RowsUsed, RowsTotal: res.RowsTotal,
			Detected: res.Detected,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		r.col.Emit(r.sched.Now(), obs.KindClusterEval, ev)
	}
	if err != nil || !res.Detected {
		r.ctr.cancelled.Inc()
		return
	}
	sink := SinkReport{
		Head:      ns.id,
		C:         res.C,
		Reports:   len(reports),
		MeanOnset: cluster.MeanOnset(reports),
	}
	// Ship speed condition: four suitable detections around the travel
	// line (§IV-C2).
	dets := make([]speed.Detection, len(reports))
	for i, rep := range reports {
		dets[i] = speed.Detection{Pos: rep.Pos, Time: rep.Onset, Energy: rep.Energy}
	}
	stop = r.col.Profiler().Start("speed")
	est, fits, estErr := speed.EstimateFromDetectionsTrace(dets, res.TravelLine, r.cfg.Grid.Spacing)
	stop()
	if r.col.Journaling() {
		for _, fit := range fits {
			r.col.Emit(r.sched.Now(), obs.KindSpeedFit, obs.SpeedFit{
				Head: int(ns.id), AlphaRad: fit.Alpha,
				Slope: fit.Slope, SSE: fit.SSE,
				OK: fit.OK, Chosen: fit.Chosen,
			})
		}
	}
	if estErr == nil {
		sink.HasSpeed = true
		sink.Speed = est.Speed
		sink.Heading = est.Alpha
	}
	tree := r.tree
	if r.cfg.Failover.Enabled {
		// Route repair: the BFS tree was built at deployment time; nodes
		// that died since would silently eat the confirmation. Rebuilding
		// over the alive topology models a self-healing collection tree
		// (CTP-style); it is part of the resilience layer, so plain runs
		// keep the paper's static tree.
		if repaired, err := r.net.BuildTree(r.cfg.SinkID); err == nil {
			r.tree = repaired
			tree = repaired
			r.gaugeTreeDepth()
		}
	}
	r.countSend(ns.id, r.net.SendToRoot(tree, ns.id, KindSinkReport, sink))
}

// EnergyReport summarizes battery state across the deployment.
type EnergyReport struct {
	NodesWithBattery int
	MeanFraction     float64
	MinFraction      float64
	DeadNodes        int
}

// Energy returns the current battery summary.
func (r *Runtime) Energy() EnergyReport {
	rep := EnergyReport{MinFraction: math.Inf(1)}
	var sum float64
	for _, n := range r.net.Nodes() {
		if n.Battery == nil {
			continue
		}
		rep.NodesWithBattery++
		f := n.Battery.FractionRemaining()
		sum += f
		if f < rep.MinFraction {
			rep.MinFraction = f
		}
		if n.Battery.Empty() {
			rep.DeadNodes++
		}
	}
	if rep.NodesWithBattery > 0 {
		rep.MeanFraction = sum / float64(rep.NodesWithBattery)
	} else {
		rep.MinFraction = 0
	}
	return rep
}
