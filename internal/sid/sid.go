// Package sid wires the SID pieces into the distributed system of the
// paper's Algorithm SID: every node runs the adaptive node-level detector
// (internal/detect) on its own sample stream; a node whose anomaly
// frequency passes the threshold either sets up a temporary cluster
// (flooding an invite within six hops and becoming the head) or reports to
// the head it already belongs to; the head collects reports for a window,
// cancels the cluster if too few arrive ("its positive finding may be a
// false alarm"), otherwise runs the spatial/temporal correlation test
// (internal/cluster) and, when the correlation coefficient passes, sends a
// detection — with a ship speed/heading estimate when the four-node
// condition is met (internal/speed) — to the sink over the routing tree.
//
// The runtime owns the protocol side of a deployment: clocks, radios,
// batteries, detectors, and the discrete-event scheduler. Sample
// *production* lives behind internal/source: by default the runtime builds
// the simulated field (ocean + ships + buoys + sensors), but any
// source.Source — notably a SIDTRACE replay — can drive the same pipeline.
// The package is split along those lines: this file holds configuration and
// runtime construction, pipeline.go the streaming ingest/detect loop,
// protocol.go the cluster protocol, and failover.go head failover.
package sid

import (
	"fmt"
	"math"

	"github.com/sid-wsn/sid/internal/adversary"
	"github.com/sid-wsn/sid/internal/cluster"
	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/sim"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Config assembles a full SID deployment.
type Config struct {
	// Grid is the manual buoy deployment (§III-A).
	Grid geo.GridSpec
	// Hs, Tp parametrize the ambient sea (Pierson–Moskowitz). Only used
	// when Source is nil (the runtime builds the synthetic field itself).
	Hs, Tp float64
	// Detect configures every node's detector.
	Detect detect.Config
	// Cluster configures the correlation test.
	Cluster cluster.Config
	// Radio configures the network links (including the optional reliable
	// per-hop transport, Radio.Reliable).
	Radio wsn.RadioConfig
	// Failover configures cluster-head failover (heartbeats, deterministic
	// re-election, one-time deadline extension). The zero value disables
	// it, keeping runs bit-identical to the pre-failover protocol.
	Failover FailoverConfig
	// Hierarchy configures two-level report collection: members hand their
	// reports to deterministically chosen sub-cluster heads, which forward
	// batched summaries to the temporary cluster head (hierarchy.go). The
	// zero value disables it, keeping runs bit-identical to the flat
	// protocol; large fields want it on so collection traffic scales.
	Hierarchy HierarchyConfig
	// Faults is a deterministic fault plan (node crashes/revivals, battery
	// depletion, clock steps, burst loss) applied at construction. The
	// zero value injects nothing.
	Faults fault.Plan
	// Adversary is a deterministic attack plan (byzantine report
	// injection, smooth clock spoofing) applied at construction. The zero
	// value attacks nothing. Unlike Faults, compromised nodes lie rather
	// than fail — see internal/adversary.
	Adversary adversary.Plan
	// Defense configures the head-side defenses (freshness gating, trimmed
	// evaluation, suspicion/quarantine, robust speed fit). The zero value
	// disables them, keeping runs bit-identical to the undefended
	// protocol.
	Defense DefenseConfig
	// ClusterHops is the temporary-cluster radius (6 in Algorithm SID).
	ClusterHops int
	// CollectWindow is how long a head collects reports before evaluating,
	// in seconds. It must cover the wake's sweep across the deployment.
	CollectWindow float64
	// MinReports cancels the temporary cluster when fewer reports arrive
	// ("if the cluster head has not received any reporting within a
	// certain period of time, it will cancel the temporary cluster").
	MinReports int
	// SinkID designates the sink node (default 0).
	SinkID wsn.NodeID
	// DriftRadius is the buoy mooring drift in meters (2 in the paper).
	// Only used when Source is nil.
	DriftRadius float64
	// BatteryJ equips each non-sink node with a battery when positive.
	BatteryJ float64
	// Energy is the per-operation cost model (used when BatteryJ > 0).
	Energy wsn.EnergyConfig
	// SampleBatch is the sensing granularity in seconds: nodes process
	// their accumulated samples in batches this long (0.5 s default).
	SampleBatch float64
	// DutyCycle implements §IV-A's power management: the fraction of
	// nodes that stay fully active as sentinels while the rest run a
	// coarse mode ("some nodes in a group may keep active to perform a
	// coarse detection while other nodes sleep"). Coarse nodes process
	// only every fourth sampling batch — keeping their adaptive
	// statistics warm at a quarter of the sensing energy — until a
	// cluster invite wakes them to the full rate for the membership
	// window ("upon a positive detection is made, sleeping nodes should
	// be activated and increase the sampling rate"). 0 or 1 disables
	// duty cycling (all nodes always on).
	DutyCycle float64
	// HistoryWindow bounds the runtime's in-memory detection history: node
	// reports and cluster evaluations older than this many seconds of
	// simulation time are evicted in the batch loop's serial phase. 0 (the
	// default) keeps everything — the historical behavior, right for test
	// runs that inspect the full history afterwards. Long-running large
	// fields want it set to a few collection windows, which makes the
	// runtime's resident state a function of activity rate instead of run
	// length. Sink reports — the deployment's actual output, one per
	// confirmed intrusion — are never evicted.
	HistoryWindow float64
	// Workers bounds the goroutines used to produce per-node sample
	// blocks inside each sensing batch: 0 uses all cores (GOMAXPROCS),
	// 1 forces serial production. Every node's samples depend only on its
	// own streams, so runs are bit-identical for any Workers value — the
	// knob trades wall-clock time only.
	Workers int
	// Synthesis selects the synthetic source's sample-synthesis path when
	// Source is nil: the zero value is the exact phasor reference,
	// source.SynthSpectral the FFT-based spectral path (equivalent within
	// half a quantization step; see docs/SYNTHESIS.md). Ignored when
	// Source is non-nil.
	Synthesis source.SynthesisMode
	// Seed drives every random stream in the deployment.
	Seed int64
	// Source supplies every node's sample stream. Nil builds the synthetic
	// simulated field from Hs/Tp/DriftRadius/Seed — the classic deployment.
	// A non-nil source (e.g. a SIDTRACE replay) must serve exactly
	// Grid.NumNodes() node streams; Hs/Tp/DriftRadius are then unused.
	Source source.Source
	// RecordTo, when non-nil, tees every consumed sample block into the
	// recording (per node, in the batch loop's serial phase, so recording
	// never perturbs the run). Save the recording as SIDTRACE files or
	// replay it directly via Recording.Source.
	RecordTo *source.Recording
	// Obs is the observability collector the deployment reports into
	// (metrics registry, optional journal, optional profiler). Nil gets a
	// private registry-only collector, so counters always work. Journal
	// events carry simulation time exclusively and are emitted only from
	// the scheduler's serial phases, so the journal is byte-identical
	// across Workers values; attaching a collector never changes
	// simulation results.
	Obs *obs.Collector
}

// DefaultConfig returns a 4×5 grid at 25 m spacing on a smooth sea with
// the paper's algorithm parameters.
func DefaultConfig() Config {
	return Config{
		Grid:          geo.GridSpec{Rows: 4, Cols: 5, Spacing: 25},
		Hs:            0.25,
		Tp:            4.0,
		Detect:        detect.DefaultConfig(),
		Cluster:       cluster.DefaultConfig(),
		Radio:         wsn.DefaultRadioConfig(),
		ClusterHops:   6,
		CollectWindow: 90,
		MinReports:    6,
		SinkID:        0,
		DriftRadius:   2,
		SampleBatch:   0.5,
	}
}

// Validate checks the configuration. It is the single source of truth for
// deployment validation: the root facade delegates here rather than
// duplicating the rules.
func (c Config) Validate() error {
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.Source == nil {
		// Sea-state parameters only matter when the runtime synthesizes
		// the field itself; a replay carries its own physics.
		if c.Hs <= 0 || c.Tp <= 0 {
			return fmt.Errorf("sid: Hs and Tp must be positive, got %g, %g", c.Hs, c.Tp)
		}
		if c.DriftRadius < 0 {
			return fmt.Errorf("sid: DriftRadius must be non-negative, got %g", c.DriftRadius)
		}
		if c.Synthesis != source.SynthPhasor && c.Synthesis != source.SynthSpectral {
			return fmt.Errorf("sid: unknown synthesis mode %d", c.Synthesis)
		}
	} else if n := c.Source.NumNodes(); n != c.Grid.NumNodes() {
		return fmt.Errorf("sid: source serves %d node streams, grid has %d nodes", n, c.Grid.NumNodes())
	}
	if err := c.Radio.Validate(); err != nil {
		return err
	}
	if c.ClusterHops <= 0 {
		return fmt.Errorf("sid: ClusterHops must be positive, got %d", c.ClusterHops)
	}
	if c.CollectWindow <= 0 {
		return fmt.Errorf("sid: CollectWindow must be positive, got %g", c.CollectWindow)
	}
	if c.MinReports < 1 {
		return fmt.Errorf("sid: MinReports must be ≥ 1, got %d", c.MinReports)
	}
	if int(c.SinkID) < 0 || int(c.SinkID) >= c.Grid.NumNodes() {
		return fmt.Errorf("sid: SinkID %d outside grid", c.SinkID)
	}
	if c.SampleBatch <= 0 {
		return fmt.Errorf("sid: SampleBatch must be positive, got %g", c.SampleBatch)
	}
	if c.DutyCycle < 0 || c.DutyCycle > 1 {
		return fmt.Errorf("sid: DutyCycle must be in [0,1], got %g", c.DutyCycle)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sid: Workers must be non-negative, got %d", c.Workers)
	}
	if c.HistoryWindow < 0 {
		return fmt.Errorf("sid: HistoryWindow must be non-negative, got %g", c.HistoryWindow)
	}
	if err := c.Failover.validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.Grid.NumNodes()); err != nil {
		return err
	}
	if err := c.Adversary.Validate(c.Grid.NumNodes()); err != nil {
		return err
	}
	return c.Defense.validate()
}

// nodeState is the per-node SID protocol state (Algorithm SID's variables).
type nodeState struct {
	id  wsn.NodeID
	row int
	pos geo.Vec2
	det *detect.Detector

	inTempCluster bool
	headID        wsn.NodeID
	membership    float64 // true time the membership expires

	// sentinel marks nodes that stay awake under duty cycling; others
	// sleep until an invite wakes them.
	sentinel bool
	awakeTil float64 // wake-on-invite expiry for non-sentinels

	// head-only state
	isHead   bool
	reports  []cluster.Report
	deadline float64
	// lastReportAt is when the head last accepted a report; extended marks
	// its one-time deadline extension as spent.
	lastReportAt float64
	extended     bool

	// failover state: lastBeat is the last proof of life from the head;
	// electEpoch invalidates stale watchdog/candidacy closures (every
	// newer observation bumps it); lastReport/hasReport retain the node's
	// own report for re-sending to a replacement head.
	lastBeat   float64
	electEpoch int
	lastReport ReportPayload
	hasReport  bool

	// sendErrs counts this node's synchronous send failures (no route to
	// the destination at send time).
	sendErrs int

	// hierarchy state: subHead is the node's assigned sub-cluster head (-1
	// when the aggregation tier is off); agg is a sub-head's per-destination
	// buffer of member reports awaiting a summary flush (hierarchy.go).
	subHead wsn.NodeID
	agg     []aggBatch

	// block is the node's sample block for the current batch, produced by
	// the source in the parallel fan-out and consumed serially. Touched by
	// exactly one goroutine per batch.
	block []sensor.Sample
}

// Runtime is a running SID deployment.
type Runtime struct {
	cfg   Config
	sched *sim.Scheduler
	net   *wsn.Network
	tree  *wsn.Tree
	src   source.Source
	rec   *source.Recording
	nodes []*nodeState

	sinkReports []SinkReport
	nodeReports []NodeReport
	evaluations []Evaluation

	// peakNodeBytes is the largest per-node resident footprint seen so far
	// (memory.go; registry gauge "sid.peak_node_bytes").
	peakNodeBytes int

	// sampleIdx is the global index of the next unconsumed sample,
	// persisted across Run segments so index-addressed sources (trace
	// replays, push streams) stay aligned when a deployment is advanced in
	// chunks.
	sampleIdx int

	// suspicion and quarantined are the defense layer's per-node ledger
	// (defense.go); allocated even when defenses are off so accessors are
	// always safe.
	suspicion   []int
	quarantined []bool

	// col is the observability collector; ctr caches its registry counter
	// handles (the source of truth for the protocol tallies); cHist is the
	// correlation-coefficient histogram.
	col   *obs.Collector
	ctr   sidCounters
	cHist *obs.Histogram
}

// sidCounters caches the registry handles behind the Runtime's protocol
// tallies so hot-path increments skip the registry's name lookup.
type sidCounters struct {
	clustersFormed *obs.Counter
	cancelled      *obs.Counter
	failovers      *obs.Counter
	deadlineExt    *obs.Counter
	sendErrors     *obs.Counter
	injections     *obs.Counter
	rejected       *obs.Counter
	suspicions     *obs.Counter
	quarantines    *obs.Counter
}

// clusterCBounds buckets the correlation coefficient C ∈ [0,1] around the
// default 0.7 detection threshold.
var clusterCBounds = []float64{0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1}

func (r *Runtime) bindCounters() {
	reg := r.col.Registry()
	r.ctr = sidCounters{
		clustersFormed: reg.Counter("sid.clusters_formed"),
		cancelled:      reg.Counter("sid.cancelled"),
		failovers:      reg.Counter("sid.failovers"),
		deadlineExt:    reg.Counter("sid.deadline_extensions"),
		sendErrors:     reg.Counter("sid.send_errors"),
		injections:     reg.Counter("adversary.injections"),
		rejected:       reg.Counter("defense.rejected"),
		suspicions:     reg.Counter("defense.suspicions"),
		quarantines:    reg.Counter("defense.quarantined"),
	}
	r.cHist = reg.Histogram("cluster.c", clusterCBounds)
}

// gaugeTreeDepth publishes the routing tree's maximum hop count as the
// "sid.tree_depth" gauge (updated again after failover route repair).
func (r *Runtime) gaugeTreeDepth() {
	depth := 0
	for _, h := range r.tree.Hops {
		if h > depth {
			depth = h
		}
	}
	r.col.Registry().Gauge("sid.tree_depth").Set(float64(depth))
}

// Cancelled returns how many temporary clusters ended without a confirmed
// detection: cancelled for lack of reports, lost to head death, or
// evaluated below the correlation threshold (registry: "sid.cancelled").
func (r *Runtime) Cancelled() int { return int(r.ctr.cancelled.Value()) }

// ClustersFormed counts temporary cluster setups (registry:
// "sid.clusters_formed").
func (r *Runtime) ClustersFormed() int { return int(r.ctr.clustersFormed.Value()) }

// Failovers counts successful cluster-head takeovers (registry:
// "sid.failovers").
func (r *Runtime) Failovers() int { return int(r.ctr.failovers.Value()) }

// DeadlineExtensions counts one-time collection-deadline extensions
// (registry: "sid.deadline_extensions").
func (r *Runtime) DeadlineExtensions() int { return int(r.ctr.deadlineExt.Value()) }

// Observability returns the deployment's collector (never nil; a private
// registry-only collector is created when Config.Obs was nil).
func (r *Runtime) Observability() *obs.Collector { return r.col }

// countSend books a synchronous send failure (typically: no route to the
// destination because intermediate nodes died) against the sending node
// and the deployment. Asynchronous losses are the radio stats' business;
// these are the errors the protocol used to discard silently.
func (r *Runtime) countSend(id wsn.NodeID, err error) {
	if err != nil {
		r.ctr.sendErrors.Inc()
		r.nodes[id].sendErrs++
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindSendError, obs.SendError{
				Node: int(id), Err: err.Error(),
			})
		}
	}
}

// SendErrors returns the deployment-wide count of synchronous send
// failures (routing errors at send time — distinct from radio frame loss;
// registry: "sid.send_errors").
func (r *Runtime) SendErrors() int { return int(r.ctr.sendErrors.Value()) }

// NodeSendErrors returns per-node synchronous send-failure counts,
// indexed by node ID.
func (r *Runtime) NodeSendErrors() []int {
	out := make([]int, len(r.nodes))
	for i, ns := range r.nodes {
		out[i] = ns.sendErrs
	}
	return out
}

// NewRuntime builds the deployment: sample source (the simulated field
// unless Config.Source overrides it), detectors, network, routing tree,
// and time synchronization.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler(cfg.Seed)
	positions := cfg.Grid.Positions()
	src := cfg.Source
	if src == nil {
		// The synthetic field derives its buoy seeds from the same
		// (seed, "sid.nodes") stream the scheduler would hand out, so a
		// defaulted Source is bit-identical to the pre-source runtime.
		s, err := source.NewSynthetic(source.SyntheticConfig{
			Positions:   positions,
			Hs:          cfg.Hs,
			Tp:          cfg.Tp,
			DriftRadius: cfg.DriftRadius,
			Seed:        cfg.Seed,
			Synthesis:   cfg.Synthesis,
		})
		if err != nil {
			return nil, err
		}
		src = s
	}
	net, err := wsn.NewNetwork(sched, positions, cfg.Radio)
	if err != nil {
		return nil, err
	}
	col := cfg.Obs
	if col == nil {
		col = obs.New()
	}
	net.SetCollector(col)
	r := &Runtime{
		cfg:   cfg,
		sched: sched,
		net:   net,
		src:   src,
		rec:   cfg.RecordTo,
		col:   col,
	}
	r.bindCounters()
	for i, pos := range positions {
		id := wsn.NodeID(i)
		row, _ := cfg.Grid.RowCol(i)
		det, err := detect.New(cfg.Detect)
		if err != nil {
			return nil, err
		}
		ns := &nodeState{id: id, row: row, pos: pos, det: det, headID: -1, subHead: -1, sentinel: true}
		if cfg.DutyCycle > 0 && cfg.DutyCycle < 1 {
			// Deterministic hash spreads the sentinel set over the grid.
			h := (uint64(i)*2654435761 + uint64(cfg.Seed)) % 1000
			ns.sentinel = float64(h) < cfg.DutyCycle*1000 || id == cfg.SinkID
		}
		r.nodes = append(r.nodes, ns)
		node := net.MustNode(id)
		if cfg.BatteryJ > 0 && id != cfg.SinkID {
			b, err := wsn.NewBattery(cfg.BatteryJ, cfg.Energy)
			if err != nil {
				return nil, err
			}
			node.Battery = b
		}
		node.OnMessage = r.onMessage
	}
	if r.rec != nil {
		r.rec.Init(src.Rate(), src.Scale(), positions, cfg.Seed)
	}
	tree, err := net.BuildTree(cfg.SinkID)
	if err != nil {
		return nil, err
	}
	r.tree = tree
	r.gaugeTreeDepth()
	if !cfg.Faults.Empty() {
		if err := fault.Apply(cfg.Faults, net); err != nil {
			return nil, err
		}
	}
	if cfg.Hierarchy.Enabled {
		if err := r.setupHierarchy(); err != nil {
			return nil, err
		}
	}
	r.suspicion = make([]int, len(positions))
	r.quarantined = make([]bool, len(positions))
	if err := r.applyAdversary(); err != nil {
		return nil, err
	}
	net.EnableTimeSync()
	if _, err := net.StartTimeSync(tree, 0.5); err != nil {
		return nil, err
	}
	return r, nil
}

// AddShip introduces an intruder into the surface model. Panics when the
// sample source is not appendable (see AddSource).
func (r *Runtime) AddShip(s *wake.Ship) {
	r.AddSource(wake.Field{Ship: s})
}

// AddSource introduces an arbitrary surface-motion source (e.g. a
// wake.ManeuverField for a waypoint-following vessel). Sources superpose
// linearly through the synthetic field, which is how the scenario engine
// builds multi-ship trials. It panics when the sample source does not
// implement source.Appender — a trace replay is an immutable recording;
// its ships are whatever was recorded.
func (r *Runtime) AddSource(m sensor.SurfaceModel) {
	ap, ok := r.src.(source.Appender)
	if !ok {
		panic(fmt.Sprintf("sid: sample source %T cannot accept surface sources (replays are immutable recordings)", r.src))
	}
	ap.AddSource(m)
}

// Source exposes the deployment's sample source.
func (r *Runtime) Source() source.Source { return r.src }

// Network exposes the underlying WSN (for fault injection in tests).
func (r *Runtime) Network() *wsn.Network { return r.net }

// Scheduler exposes the simulation clock.
func (r *Runtime) Scheduler() *sim.Scheduler { return r.sched }

// SinkReports returns the confirmed intrusions received by the sink so far.
func (r *Runtime) SinkReports() []SinkReport { return r.sinkReports }

// NodeReport is one node-level detection event, recorded in the order the
// deployment produced them. It is the raw per-node report stream the
// scenario golden traces pin: Time is the true simulation time of the
// detection, Onset/Energy are what the node reports to its head (Onset in
// the node's local clock, as it crosses the network).
type NodeReport struct {
	Node   wsn.NodeID
	Time   float64
	Onset  float64
	Energy float64
}

// NodeReports returns every node-level detection so far, in event order.
func (r *Runtime) NodeReports() []NodeReport { return r.nodeReports }

// Evaluation records one temporary cluster head's deadline processing:
// the reports it had collected and (when enough arrived) the correlation
// result. Exposed for analysis and debugging of deployments.
type Evaluation struct {
	// Head is the temporary cluster head.
	Head wsn.NodeID
	// Time is the simulation time of the deadline processing (what
	// HistoryWindow eviction ages against).
	Time float64
	// Reports are the collected member reports (own report included).
	Reports []cluster.Report
	// Result is the correlation outcome; zero when the cluster was
	// cancelled for lack of reports before evaluating.
	Result cluster.Result
	// Err reports an evaluation failure (e.g. too few reports to fit a
	// travel line).
	Err error
	// Trimmed lists node IDs the defended evaluation excluded to reach a
	// detection (empty for undefended runs and clean passes).
	Trimmed []int
}

// Evaluations returns every cluster-head evaluation so far, in order.
func (r *Runtime) Evaluations() []Evaluation { return r.evaluations }

// EnergyReport summarizes battery state across the deployment.
type EnergyReport struct {
	NodesWithBattery int
	MeanFraction     float64
	MinFraction      float64
	DeadNodes        int
}

// Energy returns the current battery summary.
func (r *Runtime) Energy() EnergyReport {
	rep := EnergyReport{MinFraction: math.Inf(1)}
	var sum float64
	for _, n := range r.net.Nodes() {
		if n.Battery == nil {
			continue
		}
		rep.NodesWithBattery++
		f := n.Battery.FractionRemaining()
		sum += f
		if f < rep.MinFraction {
			rep.MinFraction = f
		}
		if n.Battery.Empty() {
			rep.DeadNodes++
		}
	}
	if rep.NodesWithBattery > 0 {
		rep.MeanFraction = sum / float64(rep.NodesWithBattery)
	} else {
		rep.MinFraction = 0
	}
	return rep
}
