package sid

// Memory-bounded node state: a 100×100 field multiplies every per-node byte
// by 10,000 and every per-event record by the activity rate, so the runtime
// accounts for both. The detector side is bounded by construction — fixed
// rings sized from the detect configuration (detect.Detector.MemBytes) —
// and this file adds the two pieces the runtime owns: eviction of the
// report/evaluation history past Config.HistoryWindow, and the
// "sid.peak_node_bytes" gauge tracking the largest per-node resident
// footprint the run has seen. Both run in the batch loop's serial phase, so
// they are deterministic and never race the synthesis fan-out.

// memReportBytes approximates one collected report's resident size
// (cluster.Report and ReportPayload: six machine words each).
const memReportBytes = 48

// memSampleBytes approximates one sensor.Sample (float64 + 3×int16, padded).
const memSampleBytes = 16

// memBytes is the node's resident protocol + detector state in bytes:
// detector rings, head-side collected reports, sub-head aggregation
// buffers, and the in-flight sample block.
func (ns *nodeState) memBytes() int {
	b := ns.det.MemBytes() +
		cap(ns.reports)*memReportBytes +
		cap(ns.block)*memSampleBytes
	for i := range ns.agg {
		b += cap(ns.agg[i].reports) * memReportBytes
	}
	return b
}

// trackNodeMem updates the peak per-node footprint after a batch. The scan
// is O(nodes) with a tiny constant — noise next to the synthesis work the
// same batch just did.
func (r *Runtime) trackNodeMem() {
	peak := r.peakNodeBytes
	for _, ns := range r.nodes {
		if b := ns.memBytes(); b > peak {
			peak = b
		}
	}
	if peak > r.peakNodeBytes {
		r.peakNodeBytes = peak
		r.col.Registry().Gauge("sid.peak_node_bytes").Set(float64(peak))
	}
}

// PeakNodeBytes returns the largest per-node resident state observed so far
// (registry: "sid.peak_node_bytes"). Zero until the first batch completes.
func (r *Runtime) PeakNodeBytes() int { return r.peakNodeBytes }

// boundHistory evicts node reports and evaluations older than
// Config.HistoryWindow. No-op when the window is 0 (keep everything).
func (r *Runtime) boundHistory() {
	w := r.cfg.HistoryWindow
	if w <= 0 {
		return
	}
	cutoff := r.sched.Now() - w
	r.nodeReports = trimOld(r.nodeReports, func(nr NodeReport) bool { return nr.Time >= cutoff })
	r.evaluations = trimOld(r.evaluations, func(ev Evaluation) bool { return ev.Time >= cutoff })
}

// trimOld drops the slice's leading elements failing keep, compacting in
// place and zeroing the vacated tail so evicted entries (and anything they
// reference — report slices, errors) are actually collectible. Entries are
// appended in time order, so only a prefix ever expires.
func trimOld[T any](s []T, keep func(T) bool) []T {
	i := 0
	for i < len(s) && !keep(s[i]) {
		i++
	}
	if i == 0 {
		return s
	}
	n := copy(s, s[i:])
	var zero T
	for j := n; j < len(s); j++ {
		s[j] = zero
	}
	return s[:n]
}
