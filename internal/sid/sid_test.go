package sid

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Config rejection paths are covered once, table-driven, in config_test.go.

// crossGridShip returns a ship crossing the grid perpendicular to its rows
// (heading +Y), passing between grid columns, with the wake front reaching
// the grid around tArrive.
func crossGridShip(t *testing.T, cfg Config, knots, tArrive float64) *wake.Ship {
	t.Helper()
	center := cfg.Grid.Center()
	track := geo.NewLine(geo.Vec2{X: center.X + cfg.Grid.Spacing/2, Y: -200}, geo.Vec2{X: 0, Y: 1})
	ship, err := wake.NewShip(track, geo.Knots(knots), 12)
	if err != nil {
		t.Fatal(err)
	}
	// Shift Time0 so the front reaches the grid center around tArrive.
	ship.Time0 = tArrive - (ship.ArrivalTime(center) - ship.Time0)
	return ship
}

func TestQuietSeaNoSinkReports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 101
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(400); err != nil {
		t.Fatal(err)
	}
	if n := len(rt.SinkReports()); n != 0 {
		t.Errorf("quiet sea produced %d sink reports: %+v", n, rt.SinkReports())
	}
}

func TestShipCrossingConfirmedAtSink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 102
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(400); err != nil {
		t.Fatal(err)
	}
	reports := rt.SinkReports()
	if len(reports) == 0 {
		t.Fatalf("ship crossing produced no sink reports (clusters formed: %d, cancelled: %d)",
			rt.ClustersFormed(), rt.Cancelled())
	}
	r := reports[0]
	if r.C < cfg.Cluster.CThreshold {
		t.Errorf("confirmed C = %v below threshold", r.C)
	}
	if r.Reports < cfg.MinReports {
		t.Errorf("confirmed with %d reports < MinReports %d", r.Reports, cfg.MinReports)
	}
	// Onsets should be in the neighborhood of the crossing.
	if r.MeanOnset < 100 || r.MeanOnset > 320 {
		t.Errorf("mean onset %v outside the crossing window", r.MeanOnset)
	}
}

func TestSpeedEstimateAtSink(t *testing.T) {
	// A larger grid so the four-node configuration exists around the
	// track; the estimate should land within ~25% of truth (paper: 20%
	// plus our sea/noise). The estimator picks its four nodes by highest
	// window energy, and energies of neighboring detectors are often
	// within a percent of each other, so individual seeds sit on a
	// knife-edge: across seeds 101–112 the error distribution is ~1–19%
	// with a heavy tail of outliers (46–87%) where the near-tie resolves
	// to a poorly placed node pair. Seed 106 is a representative
	// mid-distribution draw.
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
	cfg.Seed = 106
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	var est *SinkReport
	for i := range rt.SinkReports() {
		if rt.SinkReports()[i].HasSpeed {
			est = &rt.SinkReports()[i]
			break
		}
	}
	if est == nil {
		t.Fatalf("no sink report carried a speed estimate (reports: %+v)", rt.SinkReports())
	}
	truth := geo.Knots(10)
	if math.Abs(est.Speed-truth)/truth > 0.25 {
		t.Errorf("speed estimate %v kn, truth 10 kn", geo.ToKnots(est.Speed))
	}
}

func TestClusterCancelledWithoutCorroboration(t *testing.T) {
	// Kill every node except one row's worth: a single detector can form
	// a cluster but never gather MinReports, so the cluster cancels.
	cfg := DefaultConfig()
	cfg.Seed = 104
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fail all but 3 nodes (MinReports is 4).
	for id := 3; id < cfg.Grid.NumNodes(); id++ {
		rt.Network().MustNode(wsn.NodeID(id)).Fail()
	}
	rt.AddShip(crossGridShip(t, cfg, 16, 120))
	if err := rt.Run(300); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkReports()) != 0 {
		t.Errorf("under-corroborated intrusion reached the sink: %+v", rt.SinkReports())
	}
	if rt.ClustersFormed() == 0 {
		t.Skip("no node detected at all with 3 survivors — nothing to cancel")
	}
	if rt.Cancelled() == 0 {
		t.Error("expected cluster cancellations")
	}
}

func TestPacketLossStillDetects(t *testing.T) {
	// 20% frame loss with retries: the cluster protocol must still
	// assemble enough reports.
	cfg := DefaultConfig()
	cfg.Radio.LossProb = 0.2
	cfg.Radio.Retries = 3
	cfg.Seed = 105
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(400); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkReports()) == 0 {
		t.Errorf("detection lost to packet loss (formed %d, cancelled %d, net stats %+v)",
			rt.ClustersFormed(), rt.Cancelled(), rt.Network().Stats())
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatteryJ = 50
	cfg.Energy = wsn.DefaultEnergyConfig()
	cfg.Seed = 106
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 100))
	if err := rt.Run(200); err != nil {
		t.Fatal(err)
	}
	e := rt.Energy()
	if e.NodesWithBattery != cfg.Grid.NumNodes()-1 {
		t.Errorf("NodesWithBattery = %d", e.NodesWithBattery)
	}
	if e.MeanFraction >= 1 || e.MeanFraction <= 0 {
		t.Errorf("MeanFraction = %v, want in (0,1)", e.MeanFraction)
	}
	if e.DeadNodes != 0 {
		t.Errorf("nodes died unexpectedly: %d", e.DeadNodes)
	}
	// Sampling dominates: 200 s × 50 Hz × 20 µJ = 0.2 J per node, plus
	// idle 0.4 J; battery must have drained measurably.
	if e.MinFraction > 0.999 {
		t.Errorf("batteries barely used: %v", e.MinFraction)
	}
}

func TestReproducibleRuns(t *testing.T) {
	run := func() []SinkReport {
		cfg := DefaultConfig()
		cfg.Seed = 107
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 120))
		if err := rt.Run(300); err != nil {
			t.Fatal(err)
		}
		return rt.SinkReports()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in report count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestTwoShipsTwoDetections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 5, Cols: 5, Spacing: 25}
	cfg.Seed = 108
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	rt.AddShip(crossGridShip(t, cfg, 16, 500))
	if err := rt.Run(800); err != nil {
		t.Fatal(err)
	}
	reports := rt.SinkReports()
	if len(reports) < 2 {
		t.Fatalf("expected ≥2 confirmed intrusions, got %d (formed %d, cancelled %d)",
			len(reports), rt.ClustersFormed(), rt.Cancelled())
	}
	// The two confirmations should be well separated in time.
	var onsets []float64
	for _, r := range reports {
		onsets = append(onsets, r.MeanOnset)
	}
	spread := 0.0
	for _, o := range onsets {
		for _, p := range onsets {
			if d := math.Abs(o - p); d > spread {
				spread = d
			}
		}
	}
	if spread < 200 {
		t.Errorf("confirmations not separated: onsets %v", onsets)
	}
}

func TestDutyCycleSavesEnergyAndStillDetects(t *testing.T) {
	run := func(duty float64) (detections int, meanBattery float64) {
		cfg := DefaultConfig()
		cfg.Grid = geo.GridSpec{Rows: 5, Cols: 5, Spacing: 25}
		cfg.DutyCycle = duty
		cfg.BatteryJ = 100
		cfg.Energy = wsn.DefaultEnergyConfig()
		cfg.Seed = 202
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 150))
		if err := rt.Run(400); err != nil {
			t.Fatal(err)
		}
		return len(rt.SinkReports()), rt.Energy().MeanFraction
	}
	fullDet, fullBat := run(0) // duty cycling disabled
	dutyDet, dutyBat := run(0.5)
	if fullDet == 0 {
		t.Fatal("always-on deployment missed the ship")
	}
	if dutyDet == 0 {
		t.Error("duty-cycled deployment missed the ship (wake-on-invite broken?)")
	}
	if dutyBat <= fullBat {
		t.Errorf("duty cycling saved no energy: duty=%v full=%v", dutyBat, fullBat)
	}
}

func TestDutyCycleValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DutyCycle = 1.5
	if _, err := NewRuntime(cfg); err == nil {
		t.Error("expected error for DutyCycle > 1")
	}
	cfg.DutyCycle = -0.1
	if _, err := NewRuntime(cfg); err == nil {
		t.Error("expected error for negative DutyCycle")
	}
}
