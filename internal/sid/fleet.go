package sid

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/parallel"
)

// FleetConfig shards many independent deployments — one per surveillance
// field — over the process's cores. Each deployment is a complete, isolated
// SID instance (own scheduler, sample source, network, collector); the
// fleet only fans their Run loops out and aggregates their metrics, which
// is the scaling shape of a monitoring service running many fields at once.
type FleetConfig struct {
	// Deployments configures each field. Per-deployment Workers is forced
	// to 1: the fleet owns the cores and parallelizes *across* deployments,
	// and runs are bit-identical for any Workers value, so this only moves
	// where the parallelism lives. A deployment with a nil Obs gets its own
	// private collector so per-field metrics stay attributable.
	Deployments []Config
	// Workers bounds the deployments running concurrently: 0 uses all
	// cores (GOMAXPROCS), 1 runs the fleet serially. Results are
	// bit-identical for any value — deployments share no state.
	Workers int
}

// Fleet is a set of independent SID deployments run as one unit.
type Fleet struct {
	workers int
	rts     []*Runtime
}

// NewFleet validates and constructs every deployment. Constructing eagerly
// (and serially) keeps configuration errors at build time and attributable
// to their deployment index.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Deployments) == 0 {
		return nil, fmt.Errorf("sid: fleet needs at least one deployment")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sid: fleet Workers must be non-negative, got %d", cfg.Workers)
	}
	f := &Fleet{workers: cfg.Workers}
	for i, dc := range cfg.Deployments {
		dc.Workers = 1
		if dc.Obs == nil {
			dc.Obs = obs.New()
		}
		rt, err := NewRuntime(dc)
		if err != nil {
			return nil, fmt.Errorf("sid: fleet deployment %d: %w", i, err)
		}
		f.rts = append(f.rts, rt)
	}
	return f, nil
}

// Size returns the number of deployments.
func (f *Fleet) Size() int { return len(f.rts) }

// Runtime returns deployment i (for per-field setup — ships, faults — and
// per-field results).
func (f *Fleet) Runtime(i int) *Runtime { return f.rts[i] }

// Run advances every deployment by dur seconds of simulated time, fanning
// the fields across Workers goroutines. Each field's outcome is identical
// to running it alone: deployments share no mutable state, and the journal
// (if any) of each field's collector stays a serial, per-field stream —
// aggregation happens at the metrics level (Snapshot), never by
// interleaving journals, which would destroy their byte-determinism.
//
// The first failing deployment's error (lowest index) is returned;
// remaining deployments still complete their runs.
func (f *Fleet) Run(dur float64) error {
	errs := make([]error, len(f.rts))
	parallel.ForEach(len(f.rts), f.workers, func(i int) {
		errs[i] = f.rts[i].Run(dur)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sid: fleet deployment %d: %w", i, err)
		}
	}
	return nil
}

// Snapshot merges every deployment's registry into one fleet-level view
// (counters sum, gauges take the max, histograms merge bucket-wise). The
// result is deterministic: per-field registries are simulation-determined
// and the merge is order-independent.
func (f *Fleet) Snapshot() obs.Snapshot {
	snaps := make([]obs.Snapshot, len(f.rts))
	for i, rt := range f.rts {
		snaps[i] = rt.Observability().Registry().Snapshot()
	}
	return obs.MergeSnapshots(snaps...)
}

// SinkReportsTotal counts confirmed intrusions across the fleet.
func (f *Fleet) SinkReportsTotal() int {
	total := 0
	for _, rt := range f.rts {
		total += len(rt.SinkReports())
	}
	return total
}
