package sid

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Cluster-head failover: the temporary cluster head of Algorithm SID is a
// single point of failure for the whole confirmation — if it dies
// mid-collection, every member report it gathered dies with it and the
// intrusion goes unreported. With failover enabled the head leases its
// role instead of owning it: it floods a heartbeat through the cluster
// every HeartbeatPeriod, members run a watchdog, and when HeartbeatMiss
// periods pass silently the members elect a replacement by the
// deterministic lowest-ID-alive rule — each candidate waits
// ElectionGap·(id+1) before claiming the role, so the lowest alive ID
// claims first and its takeover flood cancels every later candidacy.
// Members retain their last report and re-send it to the new head, which
// restarts collection against the original membership window. Everything
// runs as ordinary scheduler events off the deterministic clock: identical
// seeds and fault plans fail over identically.

// Additional SID message kinds used by failover.
const (
	// KindHeartbeat is the head's periodic role lease (payload: head ID).
	KindHeartbeat = "sid.heartbeat"
	// KindTakeover announces an elected replacement head (payload:
	// TakeoverPayload).
	KindTakeover = "sid.takeover"
)

// TakeoverPayload announces that New replaces Old as the cluster head.
type TakeoverPayload struct {
	Old, New wsn.NodeID
}

// FailoverConfig parametrizes cluster-head failover. The zero value
// disables it, keeping default runs bit-identical to the pre-failover
// protocol.
type FailoverConfig struct {
	// Enabled turns heartbeats, watchdogs and elections on.
	Enabled bool
	// HeartbeatPeriod is the head's lease-renewal interval in seconds.
	HeartbeatPeriod float64
	// HeartbeatMiss is how many silent periods a member tolerates before
	// declaring the head dead and starting an election.
	HeartbeatMiss int
	// ElectionGap staggers candidacies: a member with ID k claims the role
	// ElectionGap·(k+1) seconds after declaring the head dead, so the
	// lowest alive ID wins deterministically. It must exceed the cluster's
	// flood propagation time (a few frame delays).
	ElectionGap float64
	// ExtendWindow grants the head one deadline extension of this many
	// seconds when a report arrived within the last ExtendWindow seconds
	// of the collection window — reports are still trickling in, often
	// because retransmissions or a failover delayed them. 0 disables.
	ExtendWindow float64
}

// DefaultFailoverConfig returns an enabled failover tuned for the default
// 90 s collection window: 5 s heartbeats, head declared dead after 3
// silent periods, 50 ms election stagger, one 15 s extension.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Enabled:         true,
		HeartbeatPeriod: 5,
		HeartbeatMiss:   3,
		ElectionGap:     0.05,
		ExtendWindow:    15,
	}
}

func (c FailoverConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.HeartbeatPeriod <= 0 {
		return fmt.Errorf("sid: failover HeartbeatPeriod must be positive, got %g", c.HeartbeatPeriod)
	}
	if c.HeartbeatMiss < 1 {
		return fmt.Errorf("sid: failover HeartbeatMiss must be ≥ 1, got %d", c.HeartbeatMiss)
	}
	if c.ElectionGap <= 0 {
		return fmt.Errorf("sid: failover ElectionGap must be positive, got %g", c.ElectionGap)
	}
	if c.ExtendWindow < 0 {
		return fmt.Errorf("sid: failover ExtendWindow must be non-negative, got %g", c.ExtendWindow)
	}
	return nil
}

// startHeartbeats begins the head's lease-renewal loop for the collection
// window ending at deadline. The loop stops on its own when the node loses
// the head role (deadline passed, failover elsewhere) or dies.
func (r *Runtime) startHeartbeats(ns *nodeState, deadline float64) {
	period := r.cfg.Failover.HeartbeatPeriod
	var beat func()
	beat = func() {
		if !ns.isHead || ns.deadline != deadline {
			return
		}
		if !r.net.MustNode(ns.id).Alive() {
			return
		}
		r.countSend(ns.id, r.net.Flood(ns.id, r.cfg.ClusterHops, KindHeartbeat, ns.id))
		_ = r.sched.After(period, beat)
	}
	_ = r.sched.After(period, beat)
}

// observeHead records proof of life for the member's head and re-arms the
// watchdog. Called on invite, heartbeat, and takeover receipt.
func (r *Runtime) observeHead(ns *nodeState) {
	fo := r.cfg.Failover
	if !fo.Enabled {
		return
	}
	ns.lastBeat = r.sched.Now()
	ns.electEpoch++
	epoch := ns.electEpoch
	silence := fo.HeartbeatPeriod * float64(fo.HeartbeatMiss)
	_ = r.sched.After(silence, func() { r.watchdogFired(ns, epoch) })
}

// watchdogFired runs when a member has heard nothing from its head for the
// full tolerance window: every later proof of life bumps electEpoch, so a
// stale epoch means a newer watchdog is armed and this one stands down.
func (r *Runtime) watchdogFired(ns *nodeState, epoch int) {
	if ns.electEpoch != epoch || !ns.inTempCluster || ns.isHead {
		return
	}
	now := r.sched.Now()
	if now >= ns.membership || !r.net.MustNode(ns.id).Alive() {
		return
	}
	// Head presumed dead: stagger this node's candidacy by its ID so the
	// lowest alive member claims the role first.
	delay := r.cfg.Failover.ElectionGap * float64(ns.id+1)
	_ = r.sched.After(delay, func() { r.claimHead(ns, epoch) })
}

// claimHead promotes a member to replacement head unless a takeover or a
// resumed heartbeat (both bump electEpoch) beat it to it.
func (r *Runtime) claimHead(ns *nodeState, epoch int) {
	if ns.electEpoch != epoch || !ns.inTempCluster || ns.isHead {
		return
	}
	now := r.sched.Now()
	if now >= ns.membership || !r.net.MustNode(ns.id).Alive() {
		return
	}
	old := ns.headID
	ns.electEpoch++
	ns.isHead = true
	ns.headID = ns.id
	ns.deadline = ns.membership
	ns.reports = ns.reports[:0]
	ns.extended = false
	r.ctr.failovers.Inc()
	if r.col.Journaling() {
		r.col.Emit(now, obs.KindFailoverElect, obs.FailoverElect{
			Old: int(old), New: int(ns.id),
		})
	}
	if r.col.Tracing() {
		r.col.Tracer().Failover(int(old), int(ns.id), now)
	}
	if ns.hasReport {
		r.acceptReport(ns, ns.lastReport)
	}
	r.countSend(ns.id, r.net.Flood(ns.id, r.cfg.ClusterHops, KindTakeover, TakeoverPayload{Old: old, New: ns.id}))
	deadline := ns.deadline
	_ = r.sched.Schedule(deadline, func() { r.headDeadline(ns, deadline) })
	r.startHeartbeats(ns, deadline)
}

// onTakeover redirects a member to the elected replacement head and
// re-sends its retained report so the new head can rebuild the collection
// the old head took down with it.
func (r *Runtime) onTakeover(ns *nodeState, p TakeoverPayload) {
	now := r.sched.Now()
	if !ns.inTempCluster || now >= ns.membership || ns.id == p.New {
		return
	}
	// Only members of the failed head's cluster follow; an unrelated
	// cluster's flood passing through is ignored.
	if ns.headID != p.Old && ns.headID != p.New {
		return
	}
	if ns.isHead {
		// Concurrent claim lost to a lower ID (possible only when the
		// winner's flood was lost toward us): step down and follow.
		if p.New > ns.id {
			return
		}
		ns.isHead = false
		ns.reports = nil
	}
	ns.headID = p.New
	r.observeHead(ns)
	if ns.hasReport {
		trace := ""
		if r.col.Tracing() {
			tr := r.col.Tracer()
			tr.TxStart(int(p.New), int(ns.id), now)
			trace = tr.KeyOf(int(p.New))
		}
		r.countSend(ns.id, r.net.SendMultiHopTraced(ns.id, p.New, KindReport, ns.lastReport, trace))
	}
}
