package sid

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/adversary"
)

// TestByzantineRunDeterministicAcrossWorkers: an attacked, defended run
// must be bit-identical for any Workers value — injections are scheduler
// events drawing from a dedicated stream in the serial phases, so the
// parallel sample fan-out cannot reorder them.
func TestByzantineRunDeterministicAcrossWorkers(t *testing.T) {
	base := func(workers int) *Runtime {
		cfg := DefaultConfig()
		cfg.Seed = 404
		cfg.Workers = workers
		cfg.Defense = DefaultDefenseConfig()
		cfg.Adversary = adversary.Plan{
			Byzantine: adversary.ByzantineFraction(cfg.Grid.NumNodes(), 0.2,
				adversary.ByzantineNode{Behavior: adversary.Fabricate, Start: 120, Period: 15, Count: 8, EnergyBase: 50},
				cfg.Seed, int(cfg.SinkID)),
			ClockSpoofs: []adversary.ClockSpoof{{Node: 7, At: 60, SkewPPM: 8000}},
		}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 150))
		if err := rt.Run(350); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	serial := base(1)
	parallel := base(4)
	if a, b := serial.InjectedReports(), parallel.InjectedReports(); a != b || a == 0 {
		t.Errorf("injections differ (or zero): %d vs %d", a, b)
	}
	sa, sb := serial.SinkReports(), parallel.SinkReports()
	if len(sa) != len(sb) {
		t.Fatalf("sink report counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("sink report %d differs:\n  %+v\n  %+v", i, sa[i], sb[i])
		}
	}
	na, nb := serial.NodeReports(), parallel.NodeReports()
	if len(na) != len(nb) {
		t.Fatalf("node report counts differ: %d vs %d", len(na), len(nb))
	}
	qa, qb := serial.SuspicionScores(), parallel.SuspicionScores()
	for i := range qa {
		if qa[i] != qb[i] {
			t.Errorf("suspicion ledger differs at node %d: %d vs %d", i, qa[i], qb[i])
		}
	}
}

// TestReplayAttackRejectedAndQuarantined: replayers re-sending their
// genuine reports long after the pass must be caught by freshness gating,
// accumulate suspicion, and land in quarantine — while the genuine crossing
// stays confirmed.
func TestReplayAttackRejectedAndQuarantined(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 405
	cfg.Defense = DefaultDefenseConfig()
	// Replay campaign well after the wake has swept through: stale by
	// construction once the collection windows of the pass have closed.
	replayers := adversary.ByzantineFraction(cfg.Grid.NumNodes(), 0.2,
		adversary.ByzantineNode{Behavior: adversary.Replay, Start: 300, Period: 20, Count: 5},
		cfg.Seed, int(cfg.SinkID))
	cfg.Adversary = adversary.Plan{Byzantine: replayers}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkReports()) == 0 {
		t.Fatal("defended run lost the genuine crossing")
	}
	if rt.RejectedReports() == 0 {
		t.Error("no replayed report was rejected")
	}
	quarantined := map[int]bool{}
	for _, id := range rt.QuarantinedNodes() {
		quarantined[id] = true
	}
	byz := map[int]bool{}
	for _, b := range replayers {
		byz[b.Node] = true
	}
	for id := range quarantined {
		if !byz[id] {
			t.Errorf("honest node %d was quarantined", id)
		}
	}
	// At least one persistent replayer (5 stale injections each, threshold
	// 3) must have crossed into quarantine.
	hit := false
	for id := range byz {
		if quarantined[id] {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no replayer quarantined (suspicion: %v, rejected: %d)",
			rt.SuspicionScores(), rt.RejectedReports())
	}
	// Every stale sink confirmation would carry a MeanOnset far from the
	// pass; defended runs must not relay the replayed pattern.
	for _, s := range rt.SinkReports() {
		if s.MeanOnset > 300 {
			t.Errorf("stale confirmation reached the sink: %+v", s)
		}
	}
}

// TestDefenseDisabledMatchesBaseline: with the zero DefenseConfig and an
// empty adversary plan, the new plumbing must leave a clean run
// bit-identical to the pre-adversary protocol (the golden corpus pins
// that). Enabling the defenses on a clean run is NOT bit-identical — the
// atomic merge keeps the strongest window's onset instead of the earliest
// — but it must preserve every detection: same heads, same evaluation
// times, same correlation outcome, onsets within the merge's window-scale
// slack.
func TestDefenseDisabledMatchesBaseline(t *testing.T) {
	run := func(defense bool) []SinkReport {
		cfg := DefaultConfig()
		cfg.Seed = 102 // same seed as TestShipCrossingConfirmedAtSink
		if defense {
			cfg.Defense = DefaultDefenseConfig()
		}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 150))
		if err := rt.Run(400); err != nil {
			t.Fatal(err)
		}
		return rt.SinkReports()
	}
	off := run(false)
	on := run(true)
	if len(off) == 0 {
		t.Fatal("baseline run detected nothing")
	}
	if len(off) != len(on) {
		t.Fatalf("defenses changed a clean run: %d vs %d sink reports", len(off), len(on))
	}
	for i := range off {
		if off[i].Head != on[i].Head || off[i].Time != on[i].Time ||
			off[i].C != on[i].C || off[i].Reports != on[i].Reports {
			t.Errorf("clean-run sink report %d differs with defenses on:\n  off %+v\n   on %+v", i, off[i], on[i])
		}
		if d := math.Abs(off[i].MeanOnset - on[i].MeanOnset); d > 2 {
			t.Errorf("clean-run mean onset moved %.2fs with defenses on", d)
		}
	}
}
