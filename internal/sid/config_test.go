package sid

import (
	"strings"
	"testing"

	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/source"
)

// TestConfigValidation is the single table covering every rejection path of
// Config.Validate — the unified validator the root facade delegates to. One
// case per rule, each asserting on a fragment of the error message so a
// rule can't silently swap for another.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // error substring
	}{
		{"grid rows", func(c *Config) { c.Grid.Rows = 0 }, "grid"},
		{"Hs", func(c *Config) { c.Hs = 0 }, "Hs and Tp"},
		{"Tp", func(c *Config) { c.Tp = -1 }, "Hs and Tp"},
		{"DriftRadius", func(c *Config) { c.DriftRadius = -1 }, "DriftRadius"},
		{"ClusterHops", func(c *Config) { c.ClusterHops = 0 }, "ClusterHops"},
		{"CollectWindow", func(c *Config) { c.CollectWindow = 0 }, "CollectWindow"},
		{"MinReports", func(c *Config) { c.MinReports = 0 }, "MinReports"},
		{"SinkID high", func(c *Config) { c.SinkID = 99 }, "SinkID"},
		{"SinkID negative", func(c *Config) { c.SinkID = -1 }, "SinkID"},
		{"SampleBatch", func(c *Config) { c.SampleBatch = 0 }, "SampleBatch"},
		{"DutyCycle low", func(c *Config) { c.DutyCycle = -0.1 }, "DutyCycle"},
		{"DutyCycle high", func(c *Config) { c.DutyCycle = 1.5 }, "DutyCycle"},
		{"Workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"failover heartbeat period", func(c *Config) {
			c.Failover = DefaultFailoverConfig()
			c.Failover.HeartbeatPeriod = 0
		}, "HeartbeatPeriod"},
		{"failover heartbeat miss", func(c *Config) {
			c.Failover = DefaultFailoverConfig()
			c.Failover.HeartbeatMiss = 0
		}, "HeartbeatMiss"},
		{"failover election gap", func(c *Config) {
			c.Failover = DefaultFailoverConfig()
			c.Failover.ElectionGap = 0
		}, "ElectionGap"},
		{"failover extend window", func(c *Config) {
			c.Failover = DefaultFailoverConfig()
			c.Failover.ExtendWindow = -1
		}, "ExtendWindow"},
		{"fault crash node", func(c *Config) {
			c.Faults.Crashes = []fault.Crash{{Node: 999, At: 10}}
		}, "outside"},
		{"fault negative time", func(c *Config) {
			c.Faults.Crashes = []fault.Crash{{Node: 1, At: -5}}
		}, "Crashes[0].At"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	t.Run("source node mismatch", func(t *testing.T) {
		src, err := source.TraceFromSamples(50, 1024, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Source = src // 0 node streams vs the grid's 20 nodes
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "node streams") {
			t.Errorf("source/grid mismatch not rejected: %v", err)
		}
	})

	t.Run("source skips sea checks", func(t *testing.T) {
		// With a source attached the sea-state parameters are unused and
		// must not be validated.
		cfg := DefaultConfig()
		src, err := source.TraceFromSamples(50, 1024,
			make([][]sensor.Sample, cfg.Grid.NumNodes()))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Source = src
		cfg.Hs, cfg.Tp, cfg.DriftRadius = 0, 0, -1
		if err := cfg.Validate(); err != nil {
			t.Errorf("replay config rejected for unused sea parameters: %v", err)
		}
	})

	t.Run("default valid", func(t *testing.T) {
		if err := DefaultConfig().Validate(); err != nil {
			t.Errorf("DefaultConfig invalid: %v", err)
		}
	})
}
