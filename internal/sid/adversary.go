package sid

import (
	"fmt"
	"math/rand"

	"github.com/sid-wsn/sid/internal/adversary"
	"github.com/sid-wsn/sid/internal/obs"
)

// This file applies an adversary.Plan to a running deployment. Clock
// spoofs are wsn-level and delegated to adversary.ApplyClocks; byzantine
// report injection lives here because a convincing injection must travel
// the real protocol — a fabricated report joins the node's current cluster
// or sets up a temporary cluster exactly like a genuine detection would
// (dispatchReport), so the attack load on radios, heads, and the sink is
// physical, not bookkept.
//
// Determinism: every injection is a scheduled discrete event, and all
// fabricated payload randomness is drawn from the dedicated
// ("adversary.byz") stream inside those events — the scheduler's serial
// phases — so runs are bit-identical for any Workers value and any
// attached observability.

// applyAdversary schedules the configured attack plan. Called from
// NewRuntime after fault application, before the run starts.
func (r *Runtime) applyAdversary() error {
	plan := r.cfg.Adversary
	if plan.Empty() {
		return nil
	}
	if err := adversary.ApplyClocks(plan, r.net); err != nil {
		return err
	}
	rng := r.sched.RNG("adversary.byz")
	for i, b := range plan.Byzantine {
		b := b
		period := b.Period
		if period == 0 {
			period = 10
		}
		count := b.Count
		if count == 0 {
			count = 1
		}
		for k := 0; k < count; k++ {
			at := b.Start + float64(k)*period
			if err := r.sched.Schedule(at, func() { r.inject(b, rng) }); err != nil {
				return fmt.Errorf("sid: Adversary.Byzantine[%d]: %w", i, err)
			}
		}
	}
	return nil
}

// inject performs one byzantine injection: build the lying payload, journal
// the ground truth, and hand it to the same dispatch path a genuine
// detection takes.
func (r *Runtime) inject(b adversary.ByzantineNode, rng *rand.Rand) {
	ns := r.nodes[b.Node]
	node := r.net.MustNode(ns.id)
	if !node.Alive() {
		// A crashed or drained node cannot transmit — the fault layer wins.
		return
	}
	var payload ReportPayload
	switch b.Behavior {
	case adversary.Replay:
		if !ns.hasReport {
			// Nothing genuine overheard yet; a replayer stays silent rather
			// than fabricating (that would be the other behavior).
			return
		}
		payload = ns.lastReport // stale onset and all
	default: // adversary.Fabricate
		jitter := b.OnsetJitter
		if jitter == 0 {
			jitter = 2
		}
		payload = ReportPayload{
			Node: ns.id,
			Row:  ns.row,
			Pos:  ns.pos,
			// Plausible: onset just before "now" on the node's own clock,
			// energy in [0.5, 1.5]·EnergyBase.
			Onset:  node.LocalTime(r.sched.Now()) - rng.Float64()*jitter,
			Energy: b.EnergyBase * (0.5 + rng.Float64()),
		}
	}
	r.ctr.injections.Inc()
	if r.col.Journaling() {
		r.col.Emit(r.sched.Now(), obs.KindByzantineInject, obs.ByzantineInject{
			Node: int(ns.id), Behavior: b.Behavior.String(),
			Onset: payload.Onset, Energy: payload.Energy,
		})
	}
	r.dispatchReport(ns, payload)
}

// InjectedReports returns how many byzantine reports entered the protocol
// (registry: "adversary.injections").
func (r *Runtime) InjectedReports() int { return int(r.ctr.injections.Value()) }
