package sid

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/source"
)

// TestGridSmoke runs a downscaled version of the large-field scaling
// configuration (sidbench -exp grid) with every scaling feature engaged at
// once — spectral synthesis behind the spatial wake index, duty-cycled
// sentinels, two-level report collection, and a bounded detection history —
// and requires the crossing to be detected with all of them active. The
// full-size 100×100 measurement lives in the bench harness; this keeps the
// feature interaction under the regular test and race targets.
func TestGridSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 8, Cols: 8, Spacing: 25}
	cfg.Seed = 11
	cfg.Synthesis = source.SynthSpectral
	cfg.DutyCycle = 0.2
	cfg.CollectWindow = 30
	cfg.HistoryWindow = 60
	cfg.Hierarchy = DefaultHierarchyConfig()
	cfg.Hierarchy.Enabled = true
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 30))
	if err := rt.Run(60); err != nil {
		t.Fatal(err)
	}
	if len(rt.NodeReports()) == 0 {
		t.Fatal("no node detections with index+hierarchy+bounded history engaged")
	}
	syn, ok := rt.Source().(*source.Synthetic)
	if !ok {
		t.Fatalf("source is %T, not the synthetic field", rt.Source())
	}
	if st := syn.SynthesisStats(); st.IndexNodesOffered == 0 {
		t.Fatal("spatial index never engaged")
	}
	if rt.PeakNodeBytes() <= 0 {
		t.Fatal("peak node bytes not tracked")
	}
	if g := rt.Observability().Registry().Gauge("sid.subheads").Value(); g < 1 {
		t.Fatalf("no sub-cluster heads elected: gauge %g", g)
	}
}
