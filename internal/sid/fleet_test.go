package sid

import (
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/obs"
)

// fleetTestConfig is a small, fast deployment for fleet sharding tests.
func fleetTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Grid.Rows = 3
	cfg.Grid.Cols = 3
	cfg.Seed = seed
	return cfg
}

// TestFleetMatchesStandaloneRuns pins the fleet's isolation contract: each
// deployment's results are identical to running it alone, and the merged
// snapshot is the per-field sum (counters) across the fleet.
func TestFleetMatchesStandaloneRuns(t *testing.T) {
	const dur = 30
	seeds := []int64{11, 22, 33}

	solo := make([]*Runtime, len(seeds))
	for i, seed := range seeds {
		rt, err := NewRuntime(fleetTestConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(dur); err != nil {
			t.Fatal(err)
		}
		solo[i] = rt
	}

	var fc FleetConfig
	for _, seed := range seeds {
		fc.Deployments = append(fc.Deployments, fleetTestConfig(seed))
	}
	fleet, err := NewFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(dur); err != nil {
		t.Fatal(err)
	}

	for i := range seeds {
		rt := fleet.Runtime(i)
		if !reflect.DeepEqual(rt.NodeReports(), solo[i].NodeReports()) {
			t.Errorf("deployment %d: fleet node reports differ from standalone run", i)
		}
		if !reflect.DeepEqual(rt.SinkReports(), solo[i].SinkReports()) {
			t.Errorf("deployment %d: fleet sink reports differ from standalone run", i)
		}
		want := solo[i].Observability().Registry().Snapshot()
		got := rt.Observability().Registry().Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("deployment %d: fleet registry snapshot differs from standalone run", i)
		}
	}

	merged := fleet.Snapshot()
	wantFormed := int64(0)
	for _, rt := range solo {
		wantFormed += int64(rt.ClustersFormed())
	}
	for _, c := range merged.Counters {
		if c.Name == "sid.clusters_formed" && c.Value != wantFormed {
			t.Errorf("merged sid.clusters_formed = %d, want %d", c.Value, wantFormed)
		}
	}
}

// TestFleetDeterministicAcrossWorkers pins that the fleet's outer
// parallelism knob changes nothing but wall-clock time.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	const dur = 30
	run := func(workers int) ([]NodeReport, obs.Snapshot) {
		t.Helper()
		fc := FleetConfig{Workers: workers}
		for _, seed := range []int64{5, 6, 7, 8} {
			fc.Deployments = append(fc.Deployments, fleetTestConfig(seed))
		}
		fleet, err := NewFleet(fc)
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Run(dur); err != nil {
			t.Fatal(err)
		}
		var reports []NodeReport
		for i := 0; i < fleet.Size(); i++ {
			reports = append(reports, fleet.Runtime(i).NodeReports()...)
		}
		return reports, fleet.Snapshot()
	}
	r1, s1 := run(1)
	rN, sN := run(0)
	if !reflect.DeepEqual(r1, rN) {
		t.Error("fleet node reports differ between Workers=1 and Workers=0")
	}
	if !reflect.DeepEqual(s1, sN) {
		t.Error("fleet merged snapshot differs between Workers=1 and Workers=0")
	}
}

// TestFleetConfigErrors covers fleet-level validation.
func TestFleetConfigErrors(t *testing.T) {
	if _, err := NewFleet(FleetConfig{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewFleet(FleetConfig{Deployments: []Config{fleetTestConfig(1)}, Workers: -1}); err == nil {
		t.Error("negative fleet Workers accepted")
	}
	bad := fleetTestConfig(1)
	bad.MinReports = 0
	if _, err := NewFleet(FleetConfig{Deployments: []Config{bad}}); err == nil {
		t.Error("invalid deployment config accepted")
	}
}
