package sid

import (
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wsn"
)

func TestFailoverConfigValidation(t *testing.T) {
	mk := func(mut func(*FailoverConfig)) Config {
		c := DefaultConfig()
		fo := DefaultFailoverConfig()
		mut(&fo)
		c.Failover = fo
		return c
	}
	bad := []Config{
		mk(func(f *FailoverConfig) { f.HeartbeatPeriod = 0 }),
		mk(func(f *FailoverConfig) { f.HeartbeatMiss = 0 }),
		mk(func(f *FailoverConfig) { f.ElectionGap = 0 }),
		mk(func(f *FailoverConfig) { f.ExtendWindow = -1 }),
	}
	for i, c := range bad {
		if _, err := NewRuntime(c); err == nil {
			t.Errorf("case %d: expected failover validation error", i)
		}
	}
	// Disabled zero value passes regardless of the other fields.
	c := DefaultConfig()
	c.Failover = FailoverConfig{Enabled: false, ElectionGap: -5}
	if _, err := NewRuntime(c); err != nil {
		t.Errorf("disabled failover should validate: %v", err)
	}
	// Fault plans are validated through the config too.
	c = DefaultConfig()
	c.Faults = fault.Plan{Crashes: []fault.Crash{{Node: 999, At: 1}}}
	if _, err := NewRuntime(c); err == nil {
		t.Error("expected fault-plan validation error")
	}
}

// killFirstHead arms a once-per-second probe that crashes the first
// non-sink cluster head it finds holding at least four reports with at
// least 20 s of collection window left (so the members' watchdog can run
// its course), returning a pointer to the victim's ID (-1 until the kill
// happens). The probe is an ordinary scheduler event, so the kill time is
// deterministic for a given seed.
func killFirstHead(rt *Runtime, from, until float64) *wsn.NodeID {
	victim := new(wsn.NodeID)
	*victim = -1
	var probe func(t float64)
	probe = func(t float64) {
		if *victim >= 0 || t > until {
			return
		}
		for _, ns := range rt.nodes {
			if ns.isHead && ns.id != rt.cfg.SinkID &&
				len(ns.reports) >= 4 && ns.membership-t >= 20 {
				*victim = ns.id
				rt.net.MustNode(ns.id).Fail()
				return
			}
		}
		_ = rt.sched.Schedule(t+1, func() { probe(t + 1) })
	}
	_ = rt.sched.Schedule(from, func() { probe(from) })
	return victim
}

func failoverCfg() Config {
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
	cfg.Seed = 102
	cfg.Radio.Reliable = wsn.DefaultReliableConfig()
	cfg.Failover = DefaultFailoverConfig()
	return cfg
}

func TestHeadFailoverMidCollection(t *testing.T) {
	// Kill the first cluster head mid-collection. With failover the
	// members elect the lowest alive ID, re-send their retained reports,
	// and the intrusion is still confirmed at the sink.
	cfg := failoverCfg()
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	victim := killFirstHead(rt, 140, 400)
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	if *victim < 0 {
		t.Fatal("probe never found a cluster head to kill")
	}
	if rt.Failovers() == 0 {
		t.Fatal("head died mid-collection but no failover happened")
	}
	reports := rt.SinkReports()
	if len(reports) == 0 {
		t.Fatalf("no sink report despite failover (failovers=%d, cancelled=%d)",
			rt.Failovers(), rt.Cancelled())
	}
	for _, sr := range reports {
		if sr.Head == *victim {
			t.Errorf("dead head %d signed a sink report", *victim)
		}
	}
}

func TestNoFailoverLosesCollection(t *testing.T) {
	// Same kill without failover: the collection dies with the head and
	// is recorded as a dead-head cancellation, never a confirmation by
	// that head.
	cfg := failoverCfg()
	cfg.Failover = FailoverConfig{}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	victim := killFirstHead(rt, 140, 400)
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	if *victim < 0 {
		t.Fatal("probe never found a cluster head to kill")
	}
	if rt.Failovers() != 0 {
		t.Errorf("failovers = %d with failover disabled", rt.Failovers())
	}
	deadHeadCancel := false
	for _, ev := range rt.Evaluations() {
		if ev.Head == *victim && ev.Err != nil {
			deadHeadCancel = true
		}
	}
	if !deadHeadCancel {
		t.Error("dead head's collection was not recorded as lost")
	}
	for _, sr := range rt.SinkReports() {
		if sr.Head == *victim {
			t.Errorf("dead head %d confirmed a detection", *victim)
		}
	}
}

func TestBurstLossReliableStillConfirms(t *testing.T) {
	// A Gilbert–Elliott channel averaging ~30% loss: the reliable
	// transport's backed-off retransmissions ride out the bursts and the
	// crossing is still confirmed.
	cfg := failoverCfg()
	cfg.Radio.LossProb = 0
	cfg.Faults.Burst = &fault.BurstLoss{
		MeanGoodS: 2.0, MeanBadS: 1.0, LossGood: 0.05, LossBad: 0.8,
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(450); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkReports()) == 0 {
		t.Fatalf("no confirmation under burst loss with reliable transport (clusters=%d cancelled=%d)",
			rt.ClustersFormed(), rt.Cancelled())
	}
	st := rt.Network().Stats()
	if st.Retransmissions == 0 {
		t.Error("burst loss should force retransmissions")
	}
	if st.Lost == 0 {
		t.Error("burst channel never lost a frame")
	}
}

func TestSendErrorsCounted(t *testing.T) {
	// A member partitioned from its head gets a synchronous routing error
	// on report; the error must be counted, not discarded.
	cfg := DefaultConfig()
	cfg.Grid = geo.GridSpec{Rows: 1, Cols: 6, Spacing: 25}
	cfg.Seed = 9
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Make node 5 a member of head 0, then cut every route between them
	// (range 60 m covers two 25 m hops, so kill all four interior nodes).
	ns := rt.nodes[5]
	ns.inTempCluster = true
	ns.headID = 0
	ns.membership = 1e9
	for id := 1; id <= 4; id++ {
		rt.net.MustNode(wsn.NodeID(id)).Fail()
	}
	rt.onNodeDetection(ns, rt.net.MustNode(5), detect.Report{Onset: 1, Energy: 4})
	if rt.SendErrors() != 1 {
		t.Errorf("SendErrors = %d, want 1", rt.SendErrors())
	}
	perNode := rt.NodeSendErrors()
	if perNode[5] != 1 {
		t.Errorf("node 5 send errors = %d, want 1", perNode[5])
	}
	for id, n := range perNode {
		if id != 5 && n != 0 {
			t.Errorf("node %d send errors = %d, want 0", id, n)
		}
	}
}

// The resilience machinery must preserve the Workers determinism contract:
// identical seeds and identical fault plans produce bit-identical results
// for any worker count, even with failover, reliable transport, burst loss
// and mid-run crashes all active.
func TestFaultedRunBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]SinkReport, []Evaluation, int, wsn.Stats) {
		cfg := failoverCfg()
		cfg.Workers = workers
		cfg.Faults = fault.CrashFraction(cfg.Grid.NumNodes(), 0.1, 160, 2, 42, int(cfg.SinkID))
		cfg.Faults.Burst = &fault.BurstLoss{
			MeanGoodS: 3.0, MeanBadS: 0.6, LossGood: 0.03, LossBad: 0.7,
		}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 150))
		if err := rt.Run(450); err != nil {
			t.Fatal(err)
		}
		return rt.SinkReports(), rt.Evaluations(), rt.Failovers(), rt.Network().Stats()
	}
	baseReports, baseEvals, baseFailovers, baseStats := run(1)
	for _, workers := range []int{0, 3} {
		reports, evals, failovers, stats := run(workers)
		if !reflect.DeepEqual(baseReports, reports) {
			t.Errorf("workers=%d: sink reports diverge under faults\nserial:   %+v\nparallel: %+v",
				workers, baseReports, reports)
		}
		if len(evals) != len(baseEvals) {
			t.Errorf("workers=%d: %d evaluations vs %d serial", workers, len(evals), len(baseEvals))
		}
		if failovers != baseFailovers {
			t.Errorf("workers=%d: %d failovers vs %d serial", workers, failovers, baseFailovers)
		}
		if stats != baseStats {
			t.Errorf("workers=%d: network stats diverge\nserial:   %+v\nparallel: %+v",
				workers, baseStats, stats)
		}
	}
}
