package sid

import (
	"fmt"
	"math"
	"time"

	"github.com/sid-wsn/sid/internal/cluster"
	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/speed"
	"github.com/sid-wsn/sid/internal/wsn"
)

// This file is the cluster protocol: Algorithm SID's reaction to a node
// detection (SetUpTempCluster / report-to-head), message dispatch, report
// deduplication at the head, and the collection-deadline evaluation
// (SpaceTimeDataProcessing). Head failover lives in failover.go.

// Message kinds used by the SID protocol.
const (
	KindInvite     = "sid.invite"
	KindReport     = "sid.report"
	KindSinkReport = "sid.sink"
)

// ReportPayload is a member's detection report to its temporary cluster
// head (the paper: "it reports EΔ and the onset time").
type ReportPayload struct {
	Node   wsn.NodeID
	Row    int
	Pos    geo.Vec2
	Onset  float64 // node-local clock time of onset
	Energy float64
}

// SinkReport is what the sink finally receives for one confirmed intrusion.
type SinkReport struct {
	// Head is the temporary cluster head that confirmed the intrusion.
	Head wsn.NodeID
	// Time is the sink-local time of the report's arrival.
	Time float64
	// C is the correlation coefficient of the confirming evaluation.
	C float64
	// Reports is the number of member reports used.
	Reports int
	// MeanOnset is the average onset across reports (head-local time).
	MeanOnset float64
	// HasSpeed reports whether the four-node speed condition was met.
	HasSpeed bool
	// Speed is the estimated intruder speed in m/s (if HasSpeed).
	Speed float64
	// Heading is the estimated sailing-line angle in radians (if HasSpeed).
	Heading float64
}

// onNodeDetection implements the DetectIntrusion branch of Algorithm SID.
func (r *Runtime) onNodeDetection(ns *nodeState, node *wsn.Node, rep detect.Report) {
	now := r.sched.Now()
	payload := ReportPayload{
		Node:   ns.id,
		Row:    ns.row,
		Pos:    ns.pos,
		Onset:  node.LocalTime(rep.Onset), // timestamps cross the network in local time
		Energy: rep.Energy,
	}
	ns.lastReport = payload
	ns.hasReport = true
	r.nodeReports = append(r.nodeReports, NodeReport{
		Node: ns.id, Time: now, Onset: payload.Onset, Energy: payload.Energy,
	})
	if r.col.Journaling() {
		r.col.Emit(now, obs.KindNodeReport, obs.NodeReport{
			Node: int(ns.id), Row: ns.row, Onset: payload.Onset,
			Energy: payload.Energy, AF: rep.AnomalyFreq,
		})
	}
	r.dispatchReport(ns, payload)
}

// dispatchReport is the protocol reaction to a report originating at ns —
// report to the current head, accept locally when ns is the head, or set up
// a temporary cluster. Factored out of onNodeDetection because byzantine
// injection (adversary.go) must travel the same path as a genuine
// detection: the attack's radio traffic, cluster formations, and sink load
// are real.
func (r *Runtime) dispatchReport(ns *nodeState, payload ReportPayload) {
	now := r.sched.Now()
	if ns.inTempCluster && now < ns.membership {
		if ns.isHead {
			r.acceptReport(ns, payload)
			return
		}
		if r.col.Journaling() {
			r.col.Emit(now, obs.KindReportSend, obs.ReportSend{
				Node: int(ns.id), Head: int(ns.headID),
				Onset: payload.Onset, Energy: payload.Energy,
			})
		}
		trace := ""
		if r.col.Tracing() {
			tr := r.col.Tracer()
			tr.Add(int(ns.headID), obs.Span{
				Kind: obs.SpanNodeOnset, Start: payload.Onset, End: now, Node: int(ns.id),
			})
			tr.TxStart(int(ns.headID), int(ns.id), now)
			trace = tr.KeyOf(int(ns.headID))
		}
		if r.hierRoute(ns) {
			// Two-level collection: hand the report to the sub-cluster head
			// for batched forwarding. Journal and trace exactly as a direct
			// send — the report's protocol meaning is unchanged, only its
			// radio path differs.
			r.countSend(ns.id, r.net.SendMultiHopTraced(ns.id, ns.subHead, KindSubReport,
				SubReportPayload{Head: ns.headID, Report: payload}, trace))
			return
		}
		r.countSend(ns.id, r.net.SendMultiHopTraced(ns.id, ns.headID, KindReport, payload, trace))
		return
	}
	// SetUpTempCluster: become head, invite neighbors within six hops.
	ns.inTempCluster = true
	ns.isHead = true
	ns.headID = ns.id
	ns.membership = now + r.cfg.CollectWindow
	ns.deadline = ns.membership
	ns.reports = ns.reports[:0]
	ns.extended = false
	r.ctr.clustersFormed.Inc()
	if r.col.Journaling() {
		r.col.Emit(now, obs.KindClusterSetup, obs.ClusterSetup{
			Head: int(ns.id), Deadline: ns.deadline,
		})
	}
	if r.col.Tracing() {
		tr := r.col.Tracer()
		tr.StartCluster(int(ns.id), now, ns.deadline)
		tr.Add(int(ns.id), obs.Span{
			Kind: obs.SpanNodeOnset, Start: payload.Onset, End: now, Node: int(ns.id),
		})
	}
	r.acceptReport(ns, payload)
	r.countSend(ns.id, r.net.Flood(ns.id, r.cfg.ClusterHops, KindInvite, ns.id))
	deadline := ns.deadline
	_ = r.sched.Schedule(deadline, func() { r.headDeadline(ns, deadline) })
	if r.cfg.Failover.Enabled {
		r.startHeartbeats(ns, deadline)
	}
}

// onMessage dispatches SID protocol messages.
func (r *Runtime) onMessage(node *wsn.Node, msg wsn.Message) {
	ns := r.nodes[node.ID]
	switch msg.Kind {
	case KindInvite:
		head, ok := msg.Payload.(wsn.NodeID)
		if !ok {
			return
		}
		// Already in a cluster: keep the first membership (the paper does
		// not merge clusters; extra invites are ignored).
		if ns.inTempCluster && r.sched.Now() < ns.membership {
			return
		}
		ns.inTempCluster = true
		ns.isHead = false
		ns.headID = head
		ns.membership = r.sched.Now() + r.cfg.CollectWindow
		ns.awakeTil = ns.membership // wake a sleeping node for the window
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterJoin, obs.ClusterJoin{
				Node: int(ns.id), Head: int(head), Until: ns.membership,
			})
		}
		r.observeHead(ns)
	case KindHeartbeat:
		head, ok := msg.Payload.(wsn.NodeID)
		if !ok {
			return
		}
		if ns.inTempCluster && !ns.isHead && head == ns.headID &&
			r.sched.Now() < ns.membership {
			r.observeHead(ns)
		}
	case KindTakeover:
		payload, ok := msg.Payload.(TakeoverPayload)
		if !ok {
			return
		}
		r.onTakeover(ns, payload)
	case KindReport:
		payload, ok := msg.Payload.(ReportPayload)
		if !ok {
			return
		}
		if ns.isHead {
			r.acceptReport(ns, payload)
		}
	case KindSubReport:
		payload, ok := msg.Payload.(SubReportPayload)
		if !ok {
			return
		}
		if r.cfg.Hierarchy.Enabled {
			r.onSubReport(ns, payload)
		}
	case KindSummary:
		payload, ok := msg.Payload.(SummaryPayload)
		if !ok {
			return
		}
		if ns.isHead && ns.id == payload.Head {
			for _, rep := range payload.Reports {
				r.acceptReport(ns, rep)
			}
		}
	case KindSinkReport:
		payload, ok := msg.Payload.(SinkReport)
		if !ok {
			return
		}
		if node.ID == r.cfg.SinkID {
			payload.Time = node.LocalTime(r.sched.Now())
			r.sinkReports = append(r.sinkReports, payload)
			if r.col.Tracing() && msg.Trace != "" {
				r.col.Tracer().ConfirmByKey(msg.Trace, r.sched.Now())
			}
			if r.col.Journaling() {
				r.col.Emit(r.sched.Now(), obs.KindSinkReport, obs.SinkReport{
					Head: int(payload.Head), C: payload.C,
					Reports: payload.Reports, MeanOnset: payload.MeanOnset,
					HasSpeed: payload.HasSpeed, Speed: payload.Speed,
					Heading: payload.Heading,
				})
			}
		}
	}
}

// eventGap is the maximum onset separation (seconds) for two reports from
// the same node to be considered observations of the same disturbance
// event (a wake train seen by overlapping Δt windows) rather than separate
// events.
const eventGap = 15.0

// acceptReport stores a member report at the head, deduplicating per node:
// a node may cross the threshold in several windows — noise before the
// wake, or the wake seen by overlapping windows. The highest-energy event
// survives ("we only record the reports which have the highest detected
// energy within the test period"), and within that event the earliest
// onset is kept — the paper's onset is "the time when the signal first
// exceeds the threshold", which is the wake-front arrival the speed
// estimator needs.
func (r *Runtime) acceptReport(head *nodeState, p ReportPayload) {
	if r.cfg.Defense.Enabled {
		if ok, reason := r.defenseAdmit(head, p); !ok {
			r.rejectReport(head, p, reason)
			return
		}
	}
	head.lastReportAt = r.sched.Now()
	if r.col.Tracing() {
		// Close the member's in-flight transmission span (no-op for the
		// head's own report, which never opened one).
		r.col.Tracer().TxEnd(int(head.id), int(p.Node), r.sched.Now())
	}
	if r.col.Journaling() {
		first := true
		for i := range head.reports {
			if head.reports[i].Node == int(p.Node) {
				first = false
				break
			}
		}
		r.col.Emit(r.sched.Now(), obs.KindReportAccept, obs.ReportAccept{
			Head: int(head.id), Node: int(p.Node),
			Onset: p.Onset, Energy: p.Energy, First: first,
		})
	}
	for i := range head.reports {
		if head.reports[i].Node == int(p.Node) {
			cur := &head.reports[i]
			if r.cfg.Defense.Enabled {
				// Atomic merge: a defended head keeps the (onset, energy)
				// pair of the strongest report as a unit. The permissive
				// earliest-onset rule below lets a low-energy fabrication
				// near the genuine event drag an honest witness's onset to
				// the attacker's chosen time; binding onset to the report
				// that carries the energy removes that lever at the cost of
				// a slightly later (strongest-window) onset estimate.
				if p.Energy > cur.Energy {
					cur.Energy = p.Energy
					cur.Onset = p.Onset
				}
				return
			}
			sameEvent := math.Abs(p.Onset-cur.Onset) < eventGap
			switch {
			case p.Energy > cur.Energy && sameEvent:
				cur.Energy = p.Energy
				if p.Onset < cur.Onset {
					cur.Onset = p.Onset
				}
			case p.Energy > cur.Energy:
				cur.Energy = p.Energy
				cur.Onset = p.Onset
			case sameEvent && p.Onset < cur.Onset:
				cur.Onset = p.Onset
			}
			return
		}
	}
	head.reports = append(head.reports, cluster.Report{
		Node:   int(p.Node),
		Pos:    p.Pos,
		Row:    p.Row,
		Onset:  p.Onset,
		Energy: p.Energy,
	})
}

// headDeadline runs SpaceTimeDataProcessing when the collection window
// closes.
func (r *Runtime) headDeadline(ns *nodeState, deadline float64) {
	if !ns.isHead || ns.deadline != deadline {
		return
	}
	if !r.net.MustNode(ns.id).Alive() {
		// The head died holding the role (no failover, or no member left
		// to take over): the collection is lost, not evaluated.
		ns.isHead = false
		ns.inTempCluster = false
		ns.headID = -1
		reports := ns.reports
		ns.reports = nil
		r.ctr.cancelled.Inc()
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterCancel, obs.ClusterCancel{
				Head: int(ns.id), Reports: len(reports), Reason: "head-dead",
			})
		}
		if r.col.Tracing() {
			r.col.Tracer().Cancel(int(ns.id))
		}
		r.evaluations = append(r.evaluations, Evaluation{
			Head: ns.id, Time: r.sched.Now(), Reports: reports,
			Err: fmt.Errorf("sid: head %d dead at collection deadline", ns.id),
		})
		return
	}
	// One-time extension when reports are still trickling in — typically
	// because retransmissions or a failover delayed the tail.
	fo := r.cfg.Failover
	if fo.Enabled && fo.ExtendWindow > 0 && !ns.extended &&
		len(ns.reports) > 0 && deadline-ns.lastReportAt <= fo.ExtendWindow {
		ns.extended = true
		next := deadline + fo.ExtendWindow
		ns.deadline = next
		ns.membership = next
		r.ctr.deadlineExt.Inc()
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterExtend, obs.ClusterExtend{
				Head: int(ns.id), Deadline: next,
			})
		}
		if r.col.Tracing() {
			r.col.Tracer().Extend(int(ns.id), next)
		}
		_ = r.sched.Schedule(next, func() { r.headDeadline(ns, next) })
		if fo.HeartbeatPeriod > 0 {
			r.startHeartbeats(ns, next)
		}
		return
	}
	ns.isHead = false
	ns.inTempCluster = false
	ns.headID = -1
	reports := ns.reports
	ns.reports = nil
	if len(reports) < r.cfg.MinReports {
		r.ctr.cancelled.Inc()
		if r.col.Journaling() {
			r.col.Emit(r.sched.Now(), obs.KindClusterCancel, obs.ClusterCancel{
				Head: int(ns.id), Reports: len(reports), Reason: "min-reports",
			})
		}
		if r.col.Tracing() {
			r.col.Tracer().Cancel(int(ns.id))
		}
		r.evaluations = append(r.evaluations, Evaluation{Head: ns.id, Time: r.sched.Now(), Reports: reports})
		return
	}
	var evalWall time.Time
	if r.col.Tracing() {
		evalWall = time.Now() // wall overlay only; zeroed in deterministic serialization
	}
	stop := r.col.Profiler().Start("cluster")
	evalReports := reports
	var trimmed []int
	var res cluster.Result
	var err error
	if r.cfg.Defense.Enabled {
		// Byzantine-tolerant path: trim up to MaxTrimFrac of the reports
		// when the full set fails the gates. Only a detecting trimmed
		// evaluation accuses anyone.
		robust, rerr := cluster.EvaluateRobust(reports, r.cfg.Cluster, r.cfg.Defense.MaxTrimFrac)
		res, err = robust.Result, rerr
		trimmed = robust.Trimmed
		evalReports = robust.Kept
	} else {
		res, err = cluster.Evaluate(reports, r.cfg.Cluster)
	}
	stop()
	r.evaluations = append(r.evaluations, Evaluation{
		Head: ns.id, Time: r.sched.Now(), Reports: reports,
		Result: res, Err: err, Trimmed: trimmed,
	})
	if err == nil {
		r.cHist.Observe(res.C)
	}
	if r.col.Journaling() {
		ev := obs.ClusterEval{
			Head: int(ns.id), Reports: len(reports),
			C: res.C, CNt: res.CNt, CNe: res.CNe,
			Sweep: res.Sweep, OrderTau: res.OrderTau,
			RowsUsed: res.RowsUsed, RowsTotal: res.RowsTotal,
			Detected: res.Detected,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		r.col.Emit(r.sched.Now(), obs.KindClusterEval, ev)
	}
	if r.col.Tracing() {
		now := r.sched.Now()
		r.col.Tracer().Add(int(ns.id), obs.Span{
			Kind: obs.SpanClusterEval, Start: now, End: now, Node: int(ns.id),
			Seq: len(reports), Value: res.C,
			WallNs: time.Since(evalWall).Nanoseconds(),
		})
	}
	if err != nil || !res.Detected {
		r.ctr.cancelled.Inc()
		if r.col.Tracing() {
			r.col.Tracer().Cancel(int(ns.id))
		}
		return
	}
	// Nodes trimmed out of a confirming evaluation contradicted a real
	// event's space-time structure — that is evidence, and it accumulates.
	for _, id := range trimmed {
		r.suspect(id, "trimmed")
	}
	sink := SinkReport{
		Head:      ns.id,
		C:         res.C,
		Reports:   len(evalReports),
		MeanOnset: cluster.MeanOnset(evalReports),
	}
	// Ship speed condition: four suitable detections around the travel
	// line (§IV-C2). The defended path fits only the kept reports and uses
	// the leave-one-out estimator, which survives one spoofed timestamp.
	dets := make([]speed.Detection, len(evalReports))
	for i, rep := range evalReports {
		dets[i] = speed.Detection{Pos: rep.Pos, Time: rep.Onset, Energy: rep.Energy}
	}
	if r.col.Tracing() {
		evalWall = time.Now()
	}
	stop = r.col.Profiler().Start("speed")
	var est speed.Estimate
	var fits []speed.CandidateFit
	var estErr error
	if r.cfg.Defense.Enabled && r.cfg.Defense.RobustSpeed {
		var robust speed.RobustEstimate
		robust, estErr = speed.RobustFromDetections(dets, res.TravelLine, r.cfg.Grid.Spacing)
		est = robust.Estimate
		if estErr == nil && robust.Dropped >= 0 && robust.Dropped < len(evalReports) {
			r.suspect(evalReports[robust.Dropped].Node, "speed-outlier")
		}
	} else {
		est, fits, estErr = speed.EstimateFromDetectionsTrace(dets, res.TravelLine, r.cfg.Grid.Spacing)
	}
	stop()
	if r.col.Journaling() {
		for _, fit := range fits {
			r.col.Emit(r.sched.Now(), obs.KindSpeedFit, obs.SpeedFit{
				Head: int(ns.id), AlphaRad: fit.Alpha,
				Slope: fit.Slope, SSE: fit.SSE,
				OK: fit.OK, Chosen: fit.Chosen,
			})
		}
	}
	if estErr == nil {
		sink.HasSpeed = true
		sink.Speed = est.Speed
		sink.Heading = est.Alpha
	}
	if r.col.Tracing() {
		now := r.sched.Now()
		sp := obs.Span{
			Kind: obs.SpanSpeedEstimate, Start: now, End: now, Node: int(ns.id),
			WallNs: time.Since(evalWall).Nanoseconds(),
		}
		if estErr == nil {
			sp.Value = est.Speed
		} else {
			sp.Note = "no-fit"
		}
		r.col.Tracer().Add(int(ns.id), sp)
	}
	tree := r.tree
	if r.cfg.Failover.Enabled {
		// Route repair: the BFS tree was built at deployment time; nodes
		// that died since would silently eat the confirmation. Rebuilding
		// over the alive topology models a self-healing collection tree
		// (CTP-style); it is part of the resilience layer, so plain runs
		// keep the paper's static tree.
		if repaired, err := r.net.BuildTree(r.cfg.SinkID); err == nil {
			r.tree = repaired
			tree = repaired
			r.gaugeTreeDepth()
		}
	}
	trace := ""
	if r.col.Tracing() {
		// Detach the build from the head: the same node may form a new
		// cluster while this confirmation is still in flight, and the sink
		// re-binds by the wire key stamped into the frame.
		trace = r.col.Tracer().Detach(int(ns.id), r.sched.Now())
	}
	r.countSend(ns.id, r.net.SendToRootTraced(tree, ns.id, KindSinkReport, sink, trace))
}
