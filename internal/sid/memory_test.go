package sid

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// TestHistoryWindowBoundsState: with HistoryWindow set, the runtime's
// report/evaluation history holds only the recent past, while the unbounded
// run keeps everything — and the bounded run's recent tail matches the
// unbounded run's, so eviction is forgetting, not corruption.
func TestHistoryWindowBoundsState(t *testing.T) {
	run := func(window float64) *Runtime {
		cfg := DefaultConfig()
		cfg.Grid = geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25}
		cfg.Seed = 106
		cfg.HistoryWindow = window
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddShip(crossGridShip(t, cfg, 10, 150))
		if err := rt.Run(450); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	full := run(0)
	bounded := run(60)
	if len(full.NodeReports()) == 0 {
		t.Fatal("unbounded run produced no node reports")
	}
	if len(bounded.NodeReports()) >= len(full.NodeReports()) {
		t.Fatalf("eviction kept everything: bounded %d vs full %d",
			len(bounded.NodeReports()), len(full.NodeReports()))
	}
	cutoff := bounded.Scheduler().Now() - 60
	for _, nr := range bounded.NodeReports() {
		if nr.Time < cutoff {
			t.Fatalf("report at %g survived cutoff %g", nr.Time, cutoff)
		}
	}
	// The surviving tail is exactly the unbounded history's tail.
	tail := full.NodeReports()[len(full.NodeReports())-len(bounded.NodeReports()):]
	for i, nr := range bounded.NodeReports() {
		if nr != tail[i] {
			t.Fatalf("bounded tail diverges at %d: %+v vs %+v", i, nr, tail[i])
		}
	}
	for _, ev := range bounded.Evaluations() {
		if ev.Time < cutoff {
			t.Fatalf("evaluation at %g survived cutoff %g", ev.Time, cutoff)
		}
	}
	// Sink reports are the run's output and must never be evicted.
	if len(bounded.SinkReports()) != len(full.SinkReports()) {
		t.Fatalf("sink reports evicted: bounded %d vs full %d",
			len(bounded.SinkReports()), len(full.SinkReports()))
	}
	// Eviction must not perturb the run itself.
	if bounded.ClustersFormed() != full.ClustersFormed() {
		t.Fatalf("cluster counts diverge: %d vs %d", bounded.ClustersFormed(), full.ClustersFormed())
	}
}

// TestPeakNodeBytesGauge: the peak per-node footprint is published, sane
// (dominated by the detector's fixed rings plus the sample block), and
// monotone over a run.
func TestPeakNodeBytesGauge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 102
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.PeakNodeBytes() != 0 {
		t.Fatalf("peak nonzero before any batch: %d", rt.PeakNodeBytes())
	}
	rt.AddShip(crossGridShip(t, cfg, 10, 150))
	if err := rt.Run(400); err != nil {
		t.Fatal(err)
	}
	peak := rt.PeakNodeBytes()
	floor := rt.nodes[0].det.MemBytes()
	if peak < floor {
		t.Fatalf("peak %d below the detector's fixed state %d", peak, floor)
	}
	// A node's state is rings plus one sample block plus a cluster's worth
	// of reports — tens of kilobytes, never megabytes.
	if peak > 1<<20 {
		t.Fatalf("implausible per-node peak %d bytes", peak)
	}
	if g := rt.Observability().Registry().Gauge("sid.peak_node_bytes").Value(); int(g) != peak {
		t.Fatalf("gauge %g disagrees with accessor %d", g, peak)
	}
}
