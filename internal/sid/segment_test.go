package sid

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
)

// TestSegmentedRunMatchesSingleRun pins the chunked-advance contract the
// serving layer depends on: replaying a recording in many short Run
// segments is bit-identical — sink reports, node reports, journal bytes —
// to replaying it in one call. This exercises the runtime's persistent
// global sample index; before it existed, every Run call restarted the
// index at zero and segmented replays of index-addressed sources silently
// served nothing.
func TestSegmentedRunMatchesSingleRun(t *testing.T) {
	const dur = 160.0
	cfg := DefaultConfig()
	cfg.Seed = 11

	// Record a crossing so the equivalence covers real protocol traffic.
	rec := &source.Recording{}
	recCfg := cfg
	recCfg.RecordTo = rec
	rt, err := NewRuntime(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	ship, err := wake.CrossingShip(cfg.Grid.Center(), 10, 0, 0, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddShip(ship)
	if err := rt.Run(dur); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rt.SinkReports()) == 0 {
		t.Fatal("recording run produced no detections; the segment test needs protocol traffic")
	}

	replay := func(segments []float64) (*Runtime, []byte) {
		t.Helper()
		src, err := rec.Source()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		j := obs.NewJournal(0)
		j.SetSink(&buf)
		col := obs.New()
		col.SetJournal(j)
		rcfg := cfg
		rcfg.Source = src
		rcfg.Obs = col
		rrt, err := NewRuntime(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range segments {
			if err := rrt.Run(seg); err != nil {
				t.Fatal(err)
			}
		}
		return rrt, buf.Bytes()
	}

	whole, wholeJournal := replay([]float64{dur})
	if !reflect.DeepEqual(whole.SinkReports(), rt.SinkReports()) {
		t.Fatal("whole replay diverges from the recording run")
	}

	segs := make([]float64, 16)
	for i := range segs {
		segs[i] = 10
	}
	chunked, chunkedJournal := replay(segs)

	if !reflect.DeepEqual(chunked.SinkReports(), whole.SinkReports()) {
		t.Errorf("segmented sink reports differ:\n got %+v\nwant %+v",
			chunked.SinkReports(), whole.SinkReports())
	}
	if !reflect.DeepEqual(chunked.NodeReports(), whole.NodeReports()) {
		t.Errorf("segmented node reports differ (%d vs %d)",
			len(chunked.NodeReports()), len(whole.NodeReports()))
	}
	if !bytes.Equal(chunkedJournal, wholeJournal) {
		t.Errorf("segmented journal is not bit-identical (%d vs %d bytes)",
			len(chunkedJournal), len(wholeJournal))
	}
}
