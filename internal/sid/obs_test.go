package sid

import "testing"

// TestConsumeBlockNoOpCollectorZeroAllocs pins the observability overhead
// contract: with no journal attached (the default registry-only collector),
// the per-node detection step must not allocate. Counter increments are
// cached atomic handles and journal payloads are only boxed behind the
// Journaling() guard.
func TestConsumeBlockNoOpCollectorZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	// A high threshold multiplier keeps the quiet sea below the anomaly
	// threshold, so the (allocating) report path never fires and the test
	// measures the pure sense→detect loop.
	cfg.Detect.M = 10
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns := rt.nodes[0]
	blk := rt.src.Block(0, 0, 0, 50)
	// Warm up: detector batch buffers and window rings reach steady-state
	// capacity during the first windows.
	for i := 0; i < 50; i++ {
		ns.block = blk
		rt.consumeBlock(ns)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ns.block = blk
		rt.consumeBlock(ns)
	})
	if allocs != 0 {
		t.Errorf("consumeBlock allocated %.1f objects/op with a no-op collector, want 0", allocs)
	}
	if len(rt.nodeReports) != 0 {
		t.Fatalf("quiet sea produced %d node reports; raise Detect.M so the test measures the no-detection path", len(rt.nodeReports))
	}
}
