package sid

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Hierarchical report aggregation: on a 100×100-node field, every member of
// a temporary cluster radioing its report straight to the head concentrates
// hundreds of multi-hop unicasts on the head's neighborhood within one
// collection window. The hierarchy layer splits the deployment into k
// sub-clusters around deterministically chosen sub-heads
// (wsn.SelectRoots/BuildForest): a member hands its report to its
// sub-head, which buffers reports per destination head and forwards them in
// batched summaries. The head applies exactly the same per-report
// acceptance (dedup, defense gates, tracing TxEnd) to a summarized report
// as to a direct one, so evaluation results are unchanged — only the radio
// traffic shape differs. Disabled (the zero value), runs are bit-identical
// to the flat protocol.

// Message kinds of the aggregation tier.
const (
	// KindSubReport is a member handing its report to its sub-cluster head
	// for aggregation (payload: SubReportPayload).
	KindSubReport = "sid.subreport"
	// KindSummary is a sub-cluster head forwarding buffered reports to the
	// collection head (payload: SummaryPayload).
	KindSummary = "sid.summary"
)

// HierarchyConfig enables two-level report collection.
type HierarchyConfig struct {
	// Enabled turns the aggregation tier on. Off (the zero value), members
	// report directly to their cluster head and runs are bit-identical to
	// the flat protocol.
	Enabled bool
	// SubHeads is the number of sub-cluster heads. 0 picks one per 64
	// nodes (rounded up) — enough that a sub-cluster stays within a radio
	// neighborhood on grid deployments.
	SubHeads int
	// FlushInterval is how long a sub-head may hold buffered reports before
	// forwarding them (seconds). It bounds the extra report latency the
	// aggregation tier adds, so it must be small against CollectWindow.
	FlushInterval float64
	// MaxBatch flushes a sub-head's buffer early once this many reports
	// for one head have accumulated.
	MaxBatch int
}

// DefaultHierarchyConfig returns the aggregation tier's defaults (still
// disabled; set Enabled yourself).
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{FlushInterval: 2, MaxBatch: 8}
}

func (c HierarchyConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.SubHeads < 0 {
		return fmt.Errorf("sid: Hierarchy.SubHeads must be non-negative, got %d", c.SubHeads)
	}
	if c.FlushInterval <= 0 {
		return fmt.Errorf("sid: Hierarchy.FlushInterval must be positive, got %g", c.FlushInterval)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("sid: Hierarchy.MaxBatch must be ≥ 1, got %d", c.MaxBatch)
	}
	return nil
}

// subHeadCount resolves the configured sub-head count for n nodes.
func (c HierarchyConfig) subHeadCount(n int) int {
	if c.SubHeads > 0 {
		return c.SubHeads
	}
	return (n + 63) / 64
}

// SubReportPayload is a member's report traveling to its sub-head, tagged
// with the collection head it must ultimately reach.
type SubReportPayload struct {
	Head   wsn.NodeID
	Report ReportPayload
}

// SummaryPayload is a sub-head's batched forward to one collection head.
type SummaryPayload struct {
	Head    wsn.NodeID
	Reports []ReportPayload
}

// aggBatch is a sub-head's buffer of member reports destined for one
// collection head. armed marks a pending flush timer; epoch invalidates
// stale timer closures after an early (MaxBatch) flush re-arms the buffer.
type aggBatch struct {
	head    wsn.NodeID
	reports []ReportPayload
	armed   bool
	epoch   int
}

// setupHierarchy partitions the deployment into sub-clusters. Called from
// NewRuntime after fault injection, so construction-time failures are
// excluded from sub-head duty; sub-heads that die later are bypassed per
// report (see hierRoute).
func (r *Runtime) setupHierarchy() error {
	k := r.cfg.Hierarchy.subHeadCount(len(r.nodes))
	roots := r.net.SelectRoots(k)
	forest, err := r.net.BuildForest(roots)
	if err != nil {
		return fmt.Errorf("sid: hierarchy setup: %w", err)
	}
	for _, ns := range r.nodes {
		ns.subHead = forest.Root[ns.id]
	}
	r.col.Registry().Gauge("sid.subheads").Set(float64(len(roots)))
	return nil
}

// hierRoute reports whether ns should hand its report to a sub-head rather
// than sending directly: the aggregation tier is on, ns has a live sub-head
// that is neither itself nor already the destination head. Falling back to
// the direct path whenever any of that fails keeps the hierarchy an
// optimization, never a new failure mode.
func (r *Runtime) hierRoute(ns *nodeState) bool {
	return r.cfg.Hierarchy.Enabled &&
		ns.subHead >= 0 &&
		ns.subHead != ns.id &&
		ns.subHead != ns.headID &&
		r.net.MustNode(ns.subHead).Alive()
}

// onSubReport buffers a member report at the sub-head and schedules its
// forwarding: immediately once MaxBatch reports for the same head are
// waiting, otherwise after FlushInterval. Runs inside a message-delivery
// scheduler event, so buffering is serial and deterministic.
func (r *Runtime) onSubReport(ns *nodeState, p SubReportPayload) {
	// A sub-head that happens to be the destination head (it joined the
	// same temporary cluster) short-circuits the buffer entirely.
	if ns.isHead && ns.id == p.Head {
		r.acceptReport(ns, p.Report)
		return
	}
	var b *aggBatch
	for i := range ns.agg {
		if ns.agg[i].head == p.Head {
			b = &ns.agg[i]
			break
		}
	}
	if b == nil {
		ns.agg = append(ns.agg, aggBatch{head: p.Head})
		b = &ns.agg[len(ns.agg)-1]
	}
	b.reports = append(b.reports, p.Report)
	if len(b.reports) >= r.cfg.Hierarchy.MaxBatch {
		r.flushSummary(ns, p.Head)
		return
	}
	if !b.armed {
		b.armed = true
		b.epoch++
		epoch := b.epoch
		head := p.Head
		_ = r.sched.Schedule(r.sched.Now()+r.cfg.Hierarchy.FlushInterval, func() {
			for i := range ns.agg {
				if ns.agg[i].head == head && ns.agg[i].armed && ns.agg[i].epoch == epoch {
					r.flushSummary(ns, head)
					return
				}
			}
		})
	}
}

// flushSummary drains the sub-head's buffer for one head into a single
// multi-hop summary message. The summary carries the head's trace key so
// wire-level tracing re-binds each report to the cluster trace; the head's
// acceptReport closes the members' transmission spans as usual.
func (r *Runtime) flushSummary(ns *nodeState, head wsn.NodeID) {
	var b *aggBatch
	for i := range ns.agg {
		if ns.agg[i].head == head {
			b = &ns.agg[i]
			break
		}
	}
	if b == nil || len(b.reports) == 0 {
		return
	}
	reports := b.reports
	b.reports = nil
	b.armed = false
	if !r.net.MustNode(ns.id).Alive() {
		// The sub-head died holding buffered reports: they are lost, exactly
		// as a dead member's direct report would be.
		return
	}
	if r.col.Journaling() {
		r.col.Emit(r.sched.Now(), obs.KindSummaryFlush, obs.SummaryFlush{
			Sub: int(ns.id), Head: int(head), Reports: len(reports),
		})
	}
	trace := ""
	if r.col.Tracing() {
		trace = r.col.Tracer().KeyOf(int(head))
	}
	r.countSend(ns.id, r.net.SendMultiHopTraced(ns.id, head, KindSummary,
		SummaryPayload{Head: head, Reports: reports}, trace))
}
