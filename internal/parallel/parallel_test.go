package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

// Index-distinct writes must produce identical results regardless of the
// worker count — the determinism contract the SID runtime relies on.
func TestForEachDeterministicOutputs(t *testing.T) {
	const n = 257
	compute := func(workers int) []float64 {
		out := make([]float64, n)
		ForEach(n, workers, func(i int) {
			v := float64(i)
			for k := 0; k < 100; k++ {
				v = v*1.0000001 + float64(k)
			}
			out[i] = v
		})
		return out
	}
	serial := compute(1)
	for _, workers := range []int{2, 4, 16} {
		got := compute(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %v, serial %v", workers, i, got[i], serial[i])
			}
		}
	}
}
