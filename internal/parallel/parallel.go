// Package parallel provides the deterministic fan-out primitive the SID
// runtime uses to spread per-node work across cores.
//
// Determinism contract: ForEach guarantees only that every fn(i) has
// completed when it returns — it says nothing about execution order.
// Callers keep runs reproducible by making each fn(i) depend only on
// index-private state (its own RNG stream, its own output slot), so the
// results are bit-identical whether the work ran on one goroutine or many.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) exactly once for every i in [0, n), fanning the
// calls across up to workers goroutines, and returns when all calls have
// completed. workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 (or
// n <= 1) runs everything inline on the calling goroutine with no
// synchronization overhead.
//
// Each fn(i) must write only to index-distinct storage and read only state
// that no other invocation mutates; under that contract the results are
// independent of scheduling and therefore deterministic.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing by atomic counter: each worker claims the next
	// unclaimed index, so uneven per-item cost still balances.
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
