// Package speed implements SID's intruder speed estimation (§IV-C2,
// eqs. 14–16): the fixed Kelvin cusp angle turns four wake-front detection
// timestamps into the ship's speed and heading.
//
// Geometry (Fig. 10): two node pairs, each pair separated by the
// deployment distance D along the same (column) direction, sit on opposite
// sides of the sailing line. The wake front sweeping a node pair at angle
// θ = 20° (the paper rounds 19°28′) gives, with α the angle between the
// sailing line and the row direction:
//
//	t2 − t1 = D·cos(α−θ) / (v·sinθ)            (pair i, eq. 14)
//	t4 − t3 = −D·cos(α+θ) / (v·sinθ)           (pair j, eq. 15)
//
// which are the paper's v = D·sin(70°+α)/((t2−t1)·sinθ) and
// v = D·sin(α−70°)/((t4−t3)·sinθ), since sin(70°+α) = cos(α−20°) and
// sin(α−70°) = −cos(α+20°). Eliminating v:
//
//	α = arctan( (t2+t4−t1−t3)/(t2+t3−t1−t4) · tan70° )   (eq. 16)
//
// because 1/tan20° = tan70°. The estimate inherits three real error
// sources reproduced by the substrates: node mooring drift (~2 m), time
// synchronization residuals, and the 19°28′→20° rounding — which is how
// the paper ends up within 20% of truth in Fig. 12.
package speed

import (
	"fmt"
	"math"
	"sort"

	"github.com/sid-wsn/sid/internal/geo"
)

// Theta is the cusp-locus angle used by the estimator (the paper's 20°).
var Theta = geo.Deg(20)

// Estimate is the output of the four-timestamp estimator.
type Estimate struct {
	// Speed is the estimated ship speed in m/s.
	Speed float64
	// SpeedI and SpeedJ are the two per-pair estimates (eqs. 14, 15).
	SpeedI, SpeedJ float64
	// Alpha is the estimated angle between the sailing line and the row
	// direction, in radians, in (−π/2, 3π/2).
	Alpha float64
	// Forward reports the travel direction along the row axis:
	// true when the resolved heading has a positive +row component.
	Forward bool
}

// Estimate4 runs eqs. (14)–(16) on four timestamps: t1, t2 from the pair
// on the positive (left-of-heading) side of the sailing line — t1 at the
// near node, t2 at its +column neighbor — and t3, t4 likewise from the
// pair on the negative side. D is the node separation in meters.
//
// Four timestamps alone determine the heading only up to a reflection
// (swapping which pair is left of travel mirrors the configuration), so
// Alpha and Forward assume the stated pair convention; callers that know
// the node positions should use EstimateFromDetections, which resolves the
// ambiguity from the sweep order ("the moving direction of the ship … is
// easy to obtain with the timestamps of the four nodes", §IV-C2). The
// Speed estimate is unaffected by the ambiguity.
func Estimate4(t1, t2, t3, t4, d float64) (Estimate, error) {
	if d <= 0 {
		return Estimate{}, fmt.Errorf("speed: node separation must be positive, got %g", d)
	}
	a := t2 - t1
	b := t4 - t3
	den := a - b
	if den == 0 {
		return Estimate{}, fmt.Errorf("speed: degenerate timestamps (t2+t3 == t1+t4)")
	}
	alpha := math.Atan((a + b) / den * math.Tan(geo.Deg(70)))
	sinT := math.Sin(Theta)
	vi := math.Inf(1)
	if a != 0 {
		vi = d * math.Sin(geo.Deg(70)+alpha) / (a * sinT)
	}
	vj := math.Inf(1)
	if b != 0 {
		vj = d * math.Sin(alpha-geo.Deg(70)) / (b * sinT)
	}
	// The arctan branch is ambiguous by π: a ship heading the other way
	// flips the signs of both pair estimates. Pick the branch that makes
	// the speeds positive.
	if isNeg(vi) && isNeg(vj) || (isNeg(vi) && !finite(vj)) || (isNeg(vj) && !finite(vi)) {
		alpha += math.Pi
		vi, vj = -vi, -vj
	}
	est := Estimate{SpeedI: vi, SpeedJ: vj, Alpha: alpha, Forward: math.Cos(alpha) > 0}
	switch {
	case finite(vi) && vi > 0 && finite(vj) && vj > 0:
		est.Speed = (vi + vj) / 2
	case finite(vi) && vi > 0:
		est.Speed = vi
	case finite(vj) && vj > 0:
		est.Speed = vj
	default:
		return Estimate{}, fmt.Errorf("speed: no positive finite pair estimate (vi=%g, vj=%g)", vi, vj)
	}
	return est, nil
}

func isNeg(v float64) bool  { return finite(v) && v < 0 }
func finite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// Detection is a single node's wake-front detection: where and when
// (cluster-head view: assigned position, reported onset, reported energy).
type Detection struct {
	Pos    geo.Vec2
	Time   float64
	Energy float64
}

// EstimateFromDetections assembles the four-node configuration of Fig. 10
// from a set of detections and runs Estimate4. It needs the estimated
// travel line (to separate the two sides), the grid spacing D, and at
// least one vertically-adjacent node pair on each side of the line.
// Following the paper's method ("we only record the reports which have the
// highest detected energy"), it picks the strongest-energy eligible pair
// per side.
func EstimateFromDetections(dets []Detection, line geo.Line, d float64) (Estimate, error) {
	est, _, err := EstimateFromDetectionsTrace(dets, line, d)
	return est, err
}

// CandidateFit records one candidate heading of the reflection-ambiguity
// resolution in EstimateFromDetections: the candidate α, the fitted
// arrival-law slope (1/v in s/m) and residual sum of squares, whether the
// fit was admissible (positive slope, non-degenerate spread), and whether
// it won. Exposed for telemetry; the estimate itself is unaffected.
type CandidateFit struct {
	Alpha  float64
	Slope  float64
	SSE    float64
	OK     bool
	Chosen bool
}

// EstimateFromDetectionsTrace is EstimateFromDetections plus the per
// candidate-heading fits of the ambiguity resolution, for journaling. The
// trace is nil when the four-node assembly fails before any fit runs.
func EstimateFromDetectionsTrace(dets []Detection, line geo.Line, d float64) (Estimate, []CandidateFit, error) {
	if d <= 0 {
		return Estimate{}, nil, fmt.Errorf("speed: grid spacing must be positive, got %g", d)
	}
	if len(dets) < 4 {
		return Estimate{}, nil, fmt.Errorf("speed: need at least 4 detections, got %d", len(dets))
	}
	var pos, neg []Detection
	for _, det := range dets {
		if line.SignedDist(det.Pos) >= 0 {
			pos = append(pos, det)
		} else {
			neg = append(neg, det)
		}
	}
	pi, err := strongestPair(pos, d)
	if err != nil {
		return Estimate{}, nil, fmt.Errorf("speed: positive side: %w", err)
	}
	pj, err := strongestPair(neg, d)
	if err != nil {
		return Estimate{}, nil, fmt.Errorf("speed: negative side: %w", err)
	}
	est, err := Estimate4(pi[0].Time, pi[1].Time, pj[0].Time, pj[1].Time, d)
	if err != nil {
		return Estimate{}, nil, err
	}
	// Resolve the reflection ambiguities. The four timestamps pin |tan α|
	// (eq. 16) but not the quadrant: the travel line handed in is
	// undirected, so which pair convention held (a mirror about the row
	// axis, α → −α) and which way the ship went along the line (α → α+π)
	// are both open — four candidate headings in all. Each candidate
	// predicts the arrival law t ≈ t0 + (u·p + dist/tanθ)/v over every
	// detection; keep the candidate with the best least-squares fit among
	// those with a positive slope (the wake must arrive later downstream).
	// Scoring all detections keeps a single noisy onset from flipping the
	// branch. Speed is invariant under these reflections and stays as
	// eqs. (14)–(15) computed it.
	bestAlpha, bestSSE, bestIdx := est.Alpha, math.Inf(1), -1
	trace := make([]CandidateFit, 0, 4)
	for _, a := range []float64{est.Alpha, -est.Alpha, math.Pi - est.Alpha, math.Pi + est.Alpha} {
		fit := CandidateFit{Alpha: geo.NormalizeAngle(a)}
		u := geo.Vec2{X: math.Cos(a), Y: math.Sin(a)}
		n := float64(len(dets))
		var sx, sy, sxx, sxy float64
		for _, det := range dets {
			s := u.Dot(det.Pos) + line.Dist(det.Pos)/math.Tan(Theta)
			sx += s
			sy += det.Time
			sxx += s * s
			sxy += s * det.Time
		}
		den := sxx - sx*sx/n
		if den <= 0 {
			trace = append(trace, fit)
			continue
		}
		slope := (sxy - sx*sy/n) / den
		fit.Slope = slope
		if slope <= 0 {
			trace = append(trace, fit)
			continue
		}
		icept := (sy - slope*sx) / n
		var sse float64
		for _, det := range dets {
			s := u.Dot(det.Pos) + line.Dist(det.Pos)/math.Tan(Theta)
			r := det.Time - icept - slope*s
			sse += r * r
		}
		fit.SSE = sse
		fit.OK = true
		if sse < bestSSE {
			bestSSE, bestAlpha, bestIdx = sse, a, len(trace)
		}
		trace = append(trace, fit)
	}
	if bestIdx >= 0 {
		trace[bestIdx].Chosen = true
	}
	est.Alpha = geo.NormalizeAngle(bestAlpha)
	est.Forward = math.Cos(est.Alpha) > 0
	return est, trace, nil
}

// strongestPair finds the highest-energy detection that has a +column
// (same X, +D in Y) neighbor, returning [near, primed] in that order.
func strongestPair(dets []Detection, d float64) ([2]Detection, error) {
	const tol = 1e-6
	sorted := append([]Detection(nil), dets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy > sorted[j].Energy })
	for _, base := range sorted {
		for _, other := range dets {
			if math.Abs(other.Pos.X-base.Pos.X) < tol*d+1e-9 &&
				math.Abs(other.Pos.Y-(base.Pos.Y+d)) < tol*d+1e-9 {
				return [2]Detection{base, other}, nil
			}
		}
	}
	return [2]Detection{}, fmt.Errorf("no vertically adjacent detection pair among %d detections", len(dets))
}

// HeadingOf converts an Estimate's α (angle to the row/X axis) into a unit
// direction vector for the estimated sailing line.
func HeadingOf(e Estimate) geo.Vec2 {
	return geo.Vec2{X: math.Cos(e.Alpha), Y: math.Sin(e.Alpha)}
}
