package speed

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

// gridDetections synthesizes detections for a 4×5 grid (25 m spacing) from
// the wake-front arrival model on the given sailing line: arrival = (foot
// projection + dist/tanθ)/v, energy decaying with distance to the line.
// jitter adds Gaussian onset noise.
func gridDetections(line geo.Line, v, jitter float64, rng *rand.Rand) []Detection {
	var dets []Detection
	for row := 0; row < 4; row++ {
		for col := 0; col < 5; col++ {
			p := geo.Vec2{X: float64(col) * 25, Y: float64(row) * 25}
			t := (line.Project(p) + line.Dist(p)/math.Tan(Theta)) / v
			if jitter > 0 {
				t += rng.NormFloat64() * jitter
			}
			dets = append(dets, Detection{
				Pos:    p,
				Time:   t,
				Energy: 100 / (1 + line.Dist(p)),
			})
		}
	}
	return dets
}

// TestEstimateFromDetectionsRandomized is a property test: for random
// speeds and headings, detections generated from the estimator's own
// arrival model must be recovered near-exactly, and the resolved heading
// must never point against the true travel direction — regardless of which
// way the (undirected) travel line is handed in.
func TestEstimateFromDetectionsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		v := 2 + rng.Float64()*8 // 2–10 m/s
		// Shallow crossing angle, all four travel quadrants.
		alphaDeg := -30 + rng.Float64()*60
		if rng.Intn(2) == 1 {
			alphaDeg += 180
		}
		phi := geo.Deg(alphaDeg)
		u := geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)}
		// The sailing line crosses mid-grid; hand the estimator the
		// undirected line with a random orientation.
		lineDir := u
		if rng.Intn(2) == 1 {
			lineDir = geo.Vec2{X: -u.X, Y: -u.Y}
		}
		track := geo.NewLine(geo.Vec2{X: 50, Y: 37.5}, u)
		line := geo.NewLine(geo.Vec2{X: 50, Y: 37.5}, lineDir)
		dets := gridDetections(track, v, 0, rng)
		est, err := EstimateFromDetections(dets, line, 25)
		if err != nil {
			t.Fatalf("trial %d (v=%.2f alpha=%.1f): %v", trial, v, alphaDeg, err)
		}
		if math.Abs(est.Speed-v)/v > 1e-6 {
			t.Errorf("trial %d: speed = %v, want %v (alpha=%.1f)", trial, est.Speed, v, alphaDeg)
		}
		if dot := HeadingOf(est).Dot(u); dot <= 0 {
			t.Errorf("trial %d: heading mirrored: est %.1f° vs true %.1f° (dot %.3f)",
				trial, geo.ToDeg(est.Alpha), alphaDeg, dot)
		}
		if aerr := geo.AngleBetween(HeadingOf(est), u); aerr > 1e-6 {
			t.Errorf("trial %d: heading off by %v rad", trial, aerr)
		}
	}
}

// TestEstimateHeadingNeverMirroredUnderJitter pins the reflection
// resolution under onset noise: the covariance over all detections decides
// the travel direction, so moderate per-node jitter must never flip the
// estimated heading into the opposite half-plane.
func TestEstimateHeadingNeverMirroredUnderJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mirrored := 0
	for trial := 0; trial < 300; trial++ {
		v := 3 + rng.Float64()*6
		alphaDeg := -30 + rng.Float64()*60
		if rng.Intn(2) == 1 {
			alphaDeg += 180
		}
		phi := geo.Deg(alphaDeg)
		u := geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)}
		track := geo.NewLine(geo.Vec2{X: 50, Y: 37.5}, u)
		dets := gridDetections(track, v, 0.5, rng)
		est, err := EstimateFromDetections(dets, track, 25)
		if err != nil {
			// Jitter can degenerate the four timestamps; that is a
			// no-estimate, not a wrong estimate.
			continue
		}
		if est.Speed <= 0 {
			t.Errorf("trial %d: non-positive speed %v", trial, est.Speed)
		}
		if HeadingOf(est).Dot(u) <= 0 {
			mirrored++
			t.Errorf("trial %d: heading mirrored under jitter: est %.1f° vs true %.1f°",
				trial, geo.ToDeg(est.Alpha), alphaDeg)
		}
	}
	if mirrored > 0 {
		t.Errorf("%d/300 trials mirrored", mirrored)
	}
}
