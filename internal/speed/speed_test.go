package speed

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wake"
)

// arrival computes the wake-front arrival time at p for a ship on line
// (origin o, heading angle phi) at speed v, using cusp half-angle theta:
// the front passes p when the ship is dist/tan(theta) beyond p's
// projection on the sailing line.
func arrival(p, o geo.Vec2, phi, v, theta float64) float64 {
	u := geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)}
	line := geo.NewLine(o, u)
	return (line.Project(p) + line.Dist(p)/math.Tan(theta)) / v
}

// fourNodeTimes generates (t1..t4) for the Fig. 10 layout: pair i at
// (0, yi), (0, yi+D) on the positive side; pair j at (xj, yj), (xj, yj+D)
// on the negative side.
func fourNodeTimes(o geo.Vec2, phi, v, theta, d float64) (t1, t2, t3, t4 float64) {
	si := geo.Vec2{X: 0, Y: 30}
	spi := geo.Vec2{X: 0, Y: 30 + d}
	sj := geo.Vec2{X: 50, Y: -30 - d}
	spj := geo.Vec2{X: 50, Y: -30}
	t1 = arrival(si, o, phi, v, theta)
	t2 = arrival(spi, o, phi, v, theta)
	t3 = arrival(sj, o, phi, v, theta)
	t4 = arrival(spj, o, phi, v, theta)
	return
}

func TestEstimate4ExactWhenModelMatchesTheta(t *testing.T) {
	// Arrivals generated with the estimator's own θ = 20° must be
	// recovered near-exactly for a range of crossing angles and speeds.
	for _, alpha := range []float64{-30, -10, 0, 15, 30, 45, 60} {
		for _, v := range []float64{geo.Knots(10), geo.Knots(16), 3, 12} {
			phi := geo.Deg(alpha)
			t1, t2, t3, t4 := fourNodeTimes(geo.Vec2{}, phi, v, Theta, 25)
			est, err := Estimate4(t1, t2, t3, t4, 25)
			if err != nil {
				t.Fatalf("alpha=%v v=%v: %v", alpha, v, err)
			}
			if math.Abs(est.Speed-v)/v > 1e-9 {
				t.Errorf("alpha=%v: speed = %v, want %v", alpha, est.Speed, v)
			}
			gotA := geo.NormalizeAngle(est.Alpha)
			if math.Abs(gotA-phi) > 1e-9 {
				t.Errorf("alpha=%v: estimated %v°", alpha, geo.ToDeg(gotA))
			}
			if !est.Forward {
				t.Errorf("alpha=%v: Forward = false for +X-ish heading", alpha)
			}
		}
	}
}

func TestEstimate4WithKelvinMismatch(t *testing.T) {
	// Arrivals generated with the physical 19°28′ cusp angle while the
	// estimator assumes 20°: a small systematic error remains, well within
	// the paper's 20% bracket.
	for _, alphaDeg := range []float64{0, 20, 40} {
		v := geo.Knots(10)
		t1, t2, t3, t4 := fourNodeTimes(geo.Vec2{}, geo.Deg(alphaDeg), v, wake.KelvinHalfAngle, 25)
		est, err := Estimate4(t1, t2, t3, t4, 25)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(est.Speed-v) / v
		if relErr > 0.10 {
			t.Errorf("alpha=%v: relative error %v too large", alphaDeg, relErr)
		}
		if relErr == 0 {
			t.Errorf("alpha=%v: suspiciously exact despite angle mismatch", alphaDeg)
		}
	}
}

func TestEstimate4ReverseHeadingSpeed(t *testing.T) {
	// Ship traveling in the −X direction: four timestamps alone leave the
	// heading reflection-ambiguous, but the speed must still come out
	// positive and accurate.
	v := geo.Knots(12)
	phi := geo.Deg(180 + 25)
	t1, t2, t3, t4 := fourNodeTimes(geo.Vec2{X: 100, Y: 0}, phi, v, Theta, 25)
	est, err := Estimate4(t1, t2, t3, t4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if est.Speed <= 0 {
		t.Fatalf("reverse heading speed = %v", est.Speed)
	}
	if math.Abs(est.Speed-v)/v > 0.02 {
		t.Errorf("reverse heading speed = %v, want %v", est.Speed, v)
	}
}

func TestHeadingDisambiguation(t *testing.T) {
	// With positions available, EstimateFromDetections resolves the travel
	// direction: run the same grid with a forward and a reverse ship.
	grid := geo.GridSpec{Rows: 6, Cols: 5, Spacing: 25}
	for _, tc := range []struct {
		phiDeg  float64
		forward bool
	}{
		{15, true},
		{180 + 15, false},
		{-20, true},
		{160, false},
	} {
		phi := geo.Deg(tc.phiDeg)
		u := geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)}
		line := geo.NewLine(geo.Vec2{X: 50, Y: 60}, u)
		ship, err := wake.NewShip(line, geo.Knots(10), 12)
		if err != nil {
			t.Fatal(err)
		}
		var dets []Detection
		for r := 0; r < grid.Rows; r++ {
			for c := 0; c < grid.Cols; c++ {
				p := grid.Pos(r, c)
				sig := ship.SignalAt(p)
				dets = append(dets, Detection{Pos: p, Time: sig.Arrival, Energy: sig.Amp})
			}
		}
		est, err := EstimateFromDetections(dets, line, 25)
		if err != nil {
			t.Fatalf("phi=%v: %v", tc.phiDeg, err)
		}
		if est.Forward != tc.forward {
			t.Errorf("phi=%v: Forward = %v, want %v (alpha=%v°)",
				tc.phiDeg, est.Forward, tc.forward, geo.ToDeg(est.Alpha))
		}
		// Resolved heading within 15° of truth.
		diff := math.Abs(geo.NormalizeAngle(est.Alpha - phi))
		if diff > geo.Deg(15) {
			t.Errorf("phi=%v: heading off by %v°", tc.phiDeg, geo.ToDeg(diff))
		}
	}
}

func TestEstimate4Validation(t *testing.T) {
	if _, err := Estimate4(1, 2, 3, 4, 0); err == nil {
		t.Error("expected error for zero D")
	}
	// a == b → degenerate denominator.
	if _, err := Estimate4(0, 1, 0, 1, 25); err == nil {
		t.Error("expected degenerate-timestamp error")
	}
}

func TestEstimate4PerPairConsistency(t *testing.T) {
	v := geo.Knots(16)
	t1, t2, t3, t4 := fourNodeTimes(geo.Vec2{}, geo.Deg(10), v, Theta, 25)
	est, err := Estimate4(t1, t2, t3, t4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.SpeedI-est.SpeedJ) > 1e-6*v {
		t.Errorf("pair estimates disagree: %v vs %v", est.SpeedI, est.SpeedJ)
	}
	h := HeadingOf(est)
	if math.Abs(h.Norm()-1) > 1e-12 {
		t.Errorf("heading not unit: %v", h)
	}
	want := geo.Vec2{X: math.Cos(geo.Deg(10)), Y: math.Sin(geo.Deg(10))}
	if h.Sub(want).Norm() > 1e-6 {
		t.Errorf("heading = %v, want %v", h, want)
	}
}

func TestEstimateFromDetections(t *testing.T) {
	// A full grid of detections; the helper must find adjacent pairs on
	// both sides of the line and recover the speed.
	v := geo.Knots(10)
	phi := geo.Deg(15)
	o := geo.Vec2{X: 0, Y: 60} // line passes through the grid interior
	u := geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)}
	line := geo.NewLine(o, u)
	ship, err := wake.NewShip(line, v, 12)
	if err != nil {
		t.Fatal(err)
	}
	grid := geo.GridSpec{Rows: 6, Cols: 5, Spacing: 25}
	var dets []Detection
	for r := 0; r < grid.Rows; r++ {
		for c := 0; c < grid.Cols; c++ {
			p := grid.Pos(r, c)
			sig := ship.SignalAt(p)
			dets = append(dets, Detection{Pos: p, Time: sig.Arrival, Energy: sig.Amp})
		}
	}
	est, err := EstimateFromDetections(dets, line, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Speed-v)/v > 0.10 {
		t.Errorf("speed = %v, want %v ± 10%%", est.Speed, v)
	}
}

func TestEstimateFromDetectionsErrors(t *testing.T) {
	line := geo.NewLine(geo.Vec2{}, geo.Vec2{X: 1, Y: 0})
	if _, err := EstimateFromDetections(nil, line, 25); err == nil {
		t.Error("expected error for no detections")
	}
	dets := []Detection{
		{Pos: geo.Vec2{X: 0, Y: 10}, Time: 1},
		{Pos: geo.Vec2{X: 0, Y: 35}, Time: 2},
		{Pos: geo.Vec2{X: 0, Y: 60}, Time: 3},
		{Pos: geo.Vec2{X: 25, Y: 10}, Time: 4},
	}
	// All on the positive side: no pair below the line.
	if _, err := EstimateFromDetections(dets, line, 25); err == nil {
		t.Error("expected error with one-sided detections")
	}
	if _, err := EstimateFromDetections(dets, line, 0); err == nil {
		t.Error("expected error for zero spacing")
	}
	// Nodes present on both sides but no vertical adjacency below.
	dets2 := []Detection{
		{Pos: geo.Vec2{X: 0, Y: 10}, Time: 1},
		{Pos: geo.Vec2{X: 0, Y: 35}, Time: 2},
		{Pos: geo.Vec2{X: 0, Y: -10}, Time: 3},
		{Pos: geo.Vec2{X: 25, Y: -60}, Time: 4},
	}
	if _, err := EstimateFromDetections(dets2, line, 25); err == nil {
		t.Error("expected error with no adjacent pair on negative side")
	}
}

func TestStrongestPairPicksHighestEnergy(t *testing.T) {
	d := 25.0
	dets := []Detection{
		{Pos: geo.Vec2{X: 0, Y: 0}, Time: 1, Energy: 1},
		{Pos: geo.Vec2{X: 0, Y: 25}, Time: 2, Energy: 0.5},
		{Pos: geo.Vec2{X: 50, Y: 0}, Time: 3, Energy: 9},
		{Pos: geo.Vec2{X: 50, Y: 25}, Time: 4, Energy: 4},
	}
	pair, err := strongestPair(dets, d)
	if err != nil {
		t.Fatal(err)
	}
	if pair[0].Energy != 9 || pair[1].Energy != 4 {
		t.Errorf("pair = %+v", pair)
	}
}
