package speed

import (
	"math"

	"github.com/sid-wsn/sid/internal/geo"
)

// This file is the clock-spoof defense for the four-timestamp estimator: a
// leave-one-out (RANSAC-style, but exhaustive and deterministic — the
// candidate set is tiny) variant of EstimateFromDetections. A smoothly
// skewed clock shifts its node's reported onset by up to seconds without
// any step a sanity check could flag; when that node is one of the four
// the assembly picks, eqs. 14–16 invert the corrupted differences into a
// grossly wrong speed and heading. The honest detections still obey the
// arrival law t ≈ t0 + (u·p + dist/tanθ)/v, so the spoofed fit shows up as
// a large residual sum — and refitting without the one detection whose
// removal most improves the normalized residual recovers the honest
// estimate.

// RobustEstimate is the outcome of the leave-one-out fit.
type RobustEstimate struct {
	Estimate
	// Dropped is the index (into the detections slice handed in) of the
	// excluded detection, or -1 when the full-set fit was kept.
	Dropped int
	// FullSSE and BestSSE are the normalized (per-detection) residual sums
	// of the chosen arrival-law candidate for the full fit and the accepted
	// fit; FullSSE is +Inf when the full assembly failed outright.
	FullSSE, BestSSE float64
}

// looImprovement is how much smaller (relative) a leave-one-out fit's
// normalized residual must be before it replaces the full fit: dropping a
// point always helps a little, so only a decisive improvement — the
// signature of a single corrupted timestamp — justifies discarding a
// witness.
const looImprovement = 0.25

// RobustFromDetections runs EstimateFromDetectionsTrace on the full set
// and, with at least 5 detections (the four-node assembly must survive the
// exclusion), on every leave-one-out subset. The full fit is kept unless a
// subset's normalized residual beats it by looImprovement; among subsets,
// the smallest residual wins, ties going to the smallest excluded index —
// fully deterministic. When the full fit fails outright (a spoofed onset
// can break the pair assembly or the positivity constraint), any
// successful subset fit is accepted.
func RobustFromDetections(dets []Detection, line geo.Line, d float64) (RobustEstimate, error) {
	fullEst, fullTrace, fullErr := EstimateFromDetectionsTrace(dets, line, d)
	full := RobustEstimate{Estimate: fullEst, Dropped: -1, FullSSE: math.Inf(1), BestSSE: math.Inf(1)}
	if fullErr == nil {
		full.FullSSE = chosenNormSSE(fullTrace, len(dets))
		full.BestSSE = full.FullSSE
	}
	if len(dets) < 5 {
		return full, fullErr
	}
	best := full
	sub := make([]Detection, 0, len(dets)-1)
	for k := range dets {
		sub = sub[:0]
		sub = append(sub, dets[:k]...)
		sub = append(sub, dets[k+1:]...)
		est, trace, err := EstimateFromDetectionsTrace(sub, line, d)
		if err != nil {
			continue
		}
		norm := chosenNormSSE(trace, len(sub))
		if norm < best.BestSSE {
			best = RobustEstimate{Estimate: est, Dropped: k, FullSSE: full.FullSSE, BestSSE: norm}
		}
	}
	switch {
	case fullErr != nil && best.Dropped >= 0:
		// Full assembly broke; a subset rescued the estimate.
		return best, nil
	case fullErr != nil:
		return full, fullErr
	case best.Dropped >= 0 && best.BestSSE < looImprovement*full.FullSSE:
		return best, nil
	default:
		return full, nil
	}
}

// chosenNormSSE extracts the winning candidate's residual sum from a fit
// trace, normalized per detection so full and leave-one-out fits compare
// on equal footing. +Inf when no candidate was admissible.
func chosenNormSSE(trace []CandidateFit, n int) float64 {
	for _, f := range trace {
		if f.Chosen {
			return f.SSE / float64(n)
		}
	}
	return math.Inf(1)
}
