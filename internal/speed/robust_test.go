package speed

import (
	"math"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// gridDetections builds the full-grid detection set used by the estimator
// tests: every node of a 6×5 grid with the true wake arrival and amplitude.
func cleanGridDetections(t *testing.T, line geo.Line, v float64) []Detection {
	t.Helper()
	ship, err := wake.NewShip(line, v, 12)
	if err != nil {
		t.Fatal(err)
	}
	grid := geo.GridSpec{Rows: 6, Cols: 5, Spacing: 25}
	var dets []Detection
	for r := 0; r < grid.Rows; r++ {
		for c := 0; c < grid.Cols; c++ {
			p := grid.Pos(r, c)
			sig := ship.SignalAt(p)
			dets = append(dets, Detection{Pos: p, Time: sig.Arrival, Energy: sig.Amp})
		}
	}
	return dets
}

func testLine() geo.Line {
	phi := geo.Deg(15)
	return geo.NewLine(geo.Vec2{X: 0, Y: 60}, geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)})
}

// TestRobustSurvivesSpoofedTimestamp: one node's clock is smoothly skewed
// (adversary.ClockSpoof semantics — wsn.Clock.Skew accumulating error since
// sync), its energy boosted so the four-node assembly must pick it. The
// plain estimator inverts the corrupted difference into a wrong speed; the
// leave-one-out fit must identify exactly that detection and recover.
func TestRobustSurvivesSpoofedTimestamp(t *testing.T) {
	v := geo.Knots(10)
	line := testLine()
	dets := cleanGridDetections(t, line, v)

	// Find the highest-energy detection that has a +Y neighbor (a
	// strongestPair base) and make it the unambiguous pick for its side.
	spoofed := -1
	for i, det := range dets {
		if spoofed >= 0 && dets[spoofed].Energy >= det.Energy {
			continue
		}
		for _, other := range dets {
			if math.Abs(other.Pos.X-det.Pos.X) < 1e-6 && math.Abs(other.Pos.Y-(det.Pos.Y+25)) < 1e-6 {
				spoofed = i
				break
			}
		}
	}
	if spoofed < 0 {
		t.Fatal("no pair base found")
	}
	dets[spoofed].Energy *= 10

	// A 10000 ppm spoof applied 600 s before the crossing: the clock reads
	// 6 s ahead by the time the wake arrives, with no step anywhere.
	var honest, spoofedClock wsn.Clock
	spoofedClock.Skew(10000, 0)
	errAt := spoofedClock.Local(600) - honest.Local(600)
	dets[spoofed].Time += errAt

	plain, plainErr := EstimateFromDetections(dets, line, 25)
	robust, err := RobustFromDetections(dets, line, 25)
	if err != nil {
		t.Fatal(err)
	}
	if robust.Dropped != spoofed {
		t.Fatalf("dropped detection %d, want the spoofed %d (fullSSE=%g bestSSE=%g)",
			robust.Dropped, spoofed, robust.FullSSE, robust.BestSSE)
	}
	if relErr := math.Abs(robust.Speed-v) / v; relErr > 0.10 {
		t.Errorf("robust speed = %v, want %v ± 10%%", robust.Speed, v)
	}
	if plainErr == nil {
		if relErr := math.Abs(plain.Speed-v) / v; relErr < 0.15 {
			t.Logf("note: plain estimator absorbed the spoof on this geometry (err %.1f%%)", relErr*100)
		}
	}
	if !(robust.BestSSE < robust.FullSSE) {
		t.Errorf("accepted fit did not improve the residual: full=%g best=%g",
			robust.FullSSE, robust.BestSSE)
	}
}

// TestRobustCleanFitUnchanged: with honest detections the full fit must be
// kept verbatim — no witness is discarded without decisive evidence.
func TestRobustCleanFitUnchanged(t *testing.T) {
	v := geo.Knots(10)
	line := testLine()
	dets := cleanGridDetections(t, line, v)
	plain, err := EstimateFromDetections(dets, line, 25)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := RobustFromDetections(dets, line, 25)
	if err != nil {
		t.Fatal(err)
	}
	if robust.Dropped != -1 {
		t.Errorf("clean fit dropped detection %d", robust.Dropped)
	}
	if robust.Estimate != plain {
		t.Errorf("robust changed a clean estimate: %+v vs %+v", robust.Estimate, plain)
	}
}

// TestRobustTooFewDetections: with only 4 detections there is nothing to
// leave out — the full fit (or its error) passes through.
func TestRobustTooFewDetections(t *testing.T) {
	line := geo.NewLine(geo.Vec2{}, geo.Vec2{X: 1})
	d := 25.0
	dets := []Detection{
		{Pos: geo.Vec2{X: 0, Y: 30}, Time: 1, Energy: 1},
		{Pos: geo.Vec2{X: 0, Y: 55}, Time: 2, Energy: 1},
		{Pos: geo.Vec2{X: 50, Y: -55}, Time: 3, Energy: 1},
		{Pos: geo.Vec2{X: 50, Y: -30}, Time: 3.5, Energy: 1},
	}
	robust, err := RobustFromDetections(dets, line, d)
	if err != nil {
		t.Fatal(err)
	}
	if robust.Dropped != -1 {
		t.Errorf("4-detection fit dropped %d", robust.Dropped)
	}
	if _, err := RobustFromDetections(dets[:3], line, d); err == nil {
		t.Error("expected error for 3 detections")
	}
}

// TestClockStepDoesNotMirrorHeading is the fault.ClockStep interaction
// regression: a stepped clock on one of the four assembly nodes perturbs
// eq. 16 but must not flip the reflection-ambiguity resolution — the
// candidate arrival-law fit scores ALL detections, so a single corrupted
// onset cannot mirror the heading across the travel line.
func TestClockStepDoesNotMirrorHeading(t *testing.T) {
	v := geo.Knots(10)
	phi := geo.Deg(15)
	line := testLine()
	for _, step := range []float64{-2.5, -1.0, 1.0, 2.5} {
		dets := cleanGridDetections(t, line, v)
		// fault.ClockStep semantics: wsn.Clock.Adjust(step) shifts every
		// subsequent local reading by the step.
		var c wsn.Clock
		c.Adjust(step)
		victim := 7 // interior node; in the assembly's candidate pool
		dets[victim].Time = c.Local(dets[victim].Time)
		dets[victim].Energy *= 10 // force it into the four-node pick

		est, err := EstimateFromDetections(dets, line, 25)
		if err != nil {
			t.Fatalf("step %+.1f: %v", step, err)
		}
		gotA := geo.NormalizeAngle(est.Alpha)
		if math.Abs(gotA-phi) > geo.Deg(45) {
			t.Errorf("step %+.1f s: heading mirrored: α = %.1f°, want ≈ %.1f°",
				step, geo.ToDeg(gotA), geo.ToDeg(phi))
		}
		if !est.Forward {
			t.Errorf("step %+.1f s: Forward flipped", step)
		}
	}
}
