package dsp

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
)

// Cached plans must reproduce the textbook DFT for both power-of-two and
// Bluestein sizes, including after repeated reuse of the same plan.
func TestPlannedFFTMatchesNaive(t *testing.T) {
	for _, n := range []int{8, 64, 12, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*1.3))
		}
		for rep := 0; rep < 3; rep++ { // reuse the cached plan
			got := FFT(x)
			for k := 0; k < n; k++ {
				var want complex128
				for i := 0; i < n; i++ {
					ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
					want += x[i] * cmplx.Exp(complex(0, ang))
				}
				if cmplx.Abs(got[k]-want) > 1e-9*float64(n) {
					t.Fatalf("n=%d rep=%d bin %d: got %v want %v", n, rep, k, got[k], want)
				}
			}
		}
	}
}

// Concurrent first use of a size must not race and must all agree: every
// goroutine ends up transforming through the same (or an identical) plan.
func TestPlanCacheConcurrent(t *testing.T) {
	const n = 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%17), float64(i%5))
	}
	want := FFT(x)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				got := FFT(x)
				for k := range got {
					if got[k] != want[k] {
						errs <- "concurrent FFT result differs"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// The inverse plan must round-trip through the forward plan for a
// non-power-of-two (Bluestein) length.
func TestBluesteinPlanRoundTrip(t *testing.T) {
	const n = 1500
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.01), 0)
	}
	back := IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, back[i], x[i])
		}
	}
}
