package dsp

import (
	"fmt"
	"math"
)

// WindowType selects a tapering window for spectral analysis.
type WindowType int

// Supported window functions.
const (
	Rectangular WindowType = iota
	Hann
	Hamming
	Blackman
)

// String implements fmt.Stringer.
func (w WindowType) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return fmt.Sprintf("WindowType(%d)", int(w))
	}
}

// Window returns the n window coefficients for the given type. n must be
// positive. The symmetric (periodic-compatible) form w[i] over i=0..n-1 is
// used, suitable for both filtering and spectral analysis.
func Window(t WindowType, n int) ([]float64, error) {
	if err := mustPositive("window length", n); err != nil {
		return nil, err
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w, nil
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		x := float64(i) / den
		switch t {
		case Rectangular:
			w[i] = 1
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			return nil, fmt.Errorf("dsp: unknown window type %d", int(t))
		}
	}
	return w, nil
}

// CoherentGain returns the mean of the window coefficients, used to
// normalize amplitude spectra taken through a window.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var s float64
	for _, v := range w {
		s += v
	}
	return s / float64(len(w))
}

// PowerGain returns the mean of the squared window coefficients, used to
// normalize power spectral density estimates (Welch's U factor).
func PowerGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s / float64(len(w))
}

// ApplyWindow multiplies x by w element-wise into a new slice.
// len(x) must equal len(w).
func ApplyWindow(x, w []float64) ([]float64, error) {
	if len(x) != len(w) {
		return nil, fmt.Errorf("dsp: window length %d != signal length %d", len(w), len(x))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * w[i]
	}
	return out, nil
}
