package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// MorletCWT computes a continuous wavelet transform with the Morlet mother
// wavelet the paper selects for wave analysis (§III-C2, eq. 3):
//
//	Ψ(t) = π^(−1/4)·exp(−t²/2)·exp(i·ω₀·t)
//
// ω₀ (Omega0) is the non-dimensional mother-wavelet frequency; 6 is the
// standard choice that makes the wavelet approximately admissible and maps
// scale s to Fourier frequency f ≈ ω₀ / (2π·s).
type MorletCWT struct {
	// Omega0 is the mother wavelet center frequency (default 6).
	Omega0 float64
	// SampleRate of the analyzed signal in Hz.
	SampleRate float64
}

// NewMorletCWT returns a transform with ω₀ = 6 at the given sample rate.
func NewMorletCWT(sampleRate float64) (*MorletCWT, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: CWT sample rate must be positive, got %g", sampleRate)
	}
	return &MorletCWT{Omega0: 6, SampleRate: sampleRate}, nil
}

// ScaleForFreq returns the wavelet scale (in samples) whose center Fourier
// frequency is f Hz.
func (m *MorletCWT) ScaleForFreq(f float64) float64 {
	return m.Omega0 * m.SampleRate / (2 * math.Pi * f)
}

// FreqForScale inverts ScaleForFreq.
func (m *MorletCWT) FreqForScale(s float64) float64 {
	return m.Omega0 * m.SampleRate / (2 * math.Pi * s)
}

// Scalogram holds |W(s, t)|² over a grid of frequencies (rows) and times
// (all samples, columns). It is the 3-D plot of Fig. 7 in matrix form.
type Scalogram struct {
	// Freqs[i] is the Fourier-equivalent frequency of row i in Hz.
	Freqs []float64
	// Power[i][n] is |W(sᵢ, n)|² at sample n.
	Power [][]float64
	// SampleRate echoes the input rate.
	SampleRate float64
}

// Transform computes the CWT power of x at the given analysis frequencies
// (Hz). Each row is computed by frequency-domain multiplication with the
// scaled wavelet's Fourier transform, the standard O(N log N) per-scale
// method (Torrence & Compo).
func (m *MorletCWT) Transform(x []float64, freqs []float64) (*Scalogram, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("dsp: CWT input must be non-empty")
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("dsp: CWT needs at least one analysis frequency")
	}
	for _, f := range freqs {
		if f <= 0 || f > m.SampleRate/2 {
			return nil, fmt.Errorf("dsp: CWT frequency %g Hz outside (0, %g]", f, m.SampleRate/2)
		}
	}
	n := len(x)
	padded := NextPow2(n)
	cx := make([]complex128, padded)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	fftRadix2(cx, false)

	sg := &Scalogram{
		Freqs:      append([]float64(nil), freqs...),
		Power:      make([][]float64, len(freqs)),
		SampleRate: m.SampleRate,
	}
	norm := math.Pow(math.Pi, -0.25)
	work := make([]complex128, padded)
	for i, f := range freqs {
		s := m.ScaleForFreq(f) // scale in samples
		for k := 0; k < padded; k++ {
			// wavelet FT: sqrt(2πs)·π^{-1/4}·exp(−(s·ω−ω₀)²/2) for ω>0
			var wk float64
			if k <= padded/2 {
				wk = 2 * math.Pi * float64(k) / float64(padded)
			} else {
				wk = -2 * math.Pi * float64(padded-k) / float64(padded)
			}
			if wk <= 0 {
				work[k] = 0
				continue
			}
			arg := s*wk - m.Omega0
			w := math.Sqrt(2*math.Pi*s) * norm * math.Exp(-arg*arg/2)
			work[k] = cx[k] * complex(w, 0)
		}
		fftRadix2(work, true)
		row := make([]float64, n)
		scale := 1 / float64(padded)
		for t := 0; t < n; t++ {
			w := work[t] * complex(scale, 0)
			row[t] = real(w * cmplx.Conj(w))
		}
		sg.Power[i] = row
	}
	return sg, nil
}

// LogFreqs returns nf logarithmically spaced frequencies in [lo, hi].
func LogFreqs(lo, hi float64, nf int) ([]float64, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("dsp: need 0 < lo < hi, got [%g, %g]", lo, hi)
	}
	if err := mustPositive("frequency count", nf); err != nil {
		return nil, err
	}
	out := make([]float64, nf)
	if nf == 1 {
		out[0] = lo
		return out, nil
	}
	ratio := math.Log(hi / lo)
	for i := 0; i < nf; i++ {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(nf-1))
	}
	return out, nil
}

// BandFraction returns the fraction of total scalogram power contained in
// rows whose frequency lies in [lo, hi). Fig. 7's observation — "ship waves
// mainly focus on the low frequency spectrum" — is quantified by a high
// BandFraction below 1 Hz during a ship passage.
func (sg *Scalogram) BandFraction(lo, hi float64) float64 {
	var band, total float64
	for i, f := range sg.Freqs {
		var rowSum float64
		for _, p := range sg.Power[i] {
			rowSum += p
		}
		total += rowSum
		if f >= lo && f < hi {
			band += rowSum
		}
	}
	if total == 0 {
		return 0
	}
	return band / total
}

// TimeSlicePower returns the summed power across all frequencies at sample n.
func (sg *Scalogram) TimeSlicePower(n int) float64 {
	var s float64
	for i := range sg.Power {
		if n >= 0 && n < len(sg.Power[i]) {
			s += sg.Power[i][n]
		}
	}
	return s
}
