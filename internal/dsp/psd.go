package dsp

import "fmt"

// WelchConfig configures Welch's averaged-periodogram PSD estimate.
type WelchConfig struct {
	// SegmentSize is the per-segment FFT length. Must be positive.
	SegmentSize int
	// Overlap is the number of overlapping samples between segments
	// (default SegmentSize/2).
	Overlap int
	// Window tapers each segment (default Hann).
	Window WindowType
	// SampleRate in Hz. Must be positive.
	SampleRate float64
}

// PSD is a one-sided power spectral density estimate.
type PSD struct {
	// Freqs[k] in Hz.
	Freqs []float64
	// Density[k] in signal-units²/Hz.
	Density []float64
	// Segments is the number of averaged periodogram segments.
	Segments int
}

// Welch estimates the power spectral density of x by averaging windowed,
// overlapping periodograms. At least one full segment is required.
func Welch(x []float64, cfg WelchConfig) (*PSD, error) {
	if err := mustPositive("Welch segment size", cfg.SegmentSize); err != nil {
		return nil, err
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("dsp: Welch sample rate must be positive, got %g", cfg.SampleRate)
	}
	if cfg.Overlap == 0 {
		cfg.Overlap = cfg.SegmentSize / 2
	}
	if cfg.Overlap < 0 || cfg.Overlap >= cfg.SegmentSize {
		return nil, fmt.Errorf("dsp: Welch overlap %d must be in [0, %d)", cfg.Overlap, cfg.SegmentSize)
	}
	if len(x) < cfg.SegmentSize {
		return nil, fmt.Errorf("dsp: Welch needs at least %d samples, got %d", cfg.SegmentSize, len(x))
	}
	if cfg.Window == Rectangular {
		cfg.Window = Hann
	}
	win, err := Window(cfg.Window, cfg.SegmentSize)
	if err != nil {
		return nil, err
	}
	u := PowerGain(win) // window power normalization
	hop := cfg.SegmentSize - cfg.Overlap
	half := cfg.SegmentSize/2 + 1
	acc := make([]float64, half)
	segs := 0
	for start := 0; start+cfg.SegmentSize <= len(x); start += hop {
		seg, err := ApplyWindow(x[start:start+cfg.SegmentSize], win)
		if err != nil {
			return nil, err
		}
		ps := PowerSpectrum(seg)
		for k := range acc {
			acc[k] += ps[k]
		}
		segs++
	}
	psd := &PSD{
		Freqs:    make([]float64, half),
		Density:  make([]float64, half),
		Segments: segs,
	}
	n := float64(cfg.SegmentSize)
	norm := 1 / (cfg.SampleRate * n * u * float64(segs))
	for k := 0; k < half; k++ {
		psd.Freqs[k] = BinFreq(k, cfg.SegmentSize, cfg.SampleRate)
		d := acc[k] * norm
		// One-sided spectrum: double all bins except DC and Nyquist.
		if k != 0 && !(cfg.SegmentSize%2 == 0 && k == half-1) {
			d *= 2
		}
		psd.Density[k] = d
	}
	return psd, nil
}

// PeakFreq returns the frequency with the highest density.
func (p *PSD) PeakFreq() float64 {
	best := 0
	for k := range p.Density {
		if p.Density[k] > p.Density[best] {
			best = k
		}
	}
	return p.Freqs[best]
}

// BandPower integrates the density over [lo, hi) with the rectangle rule.
func (p *PSD) BandPower(lo, hi float64) float64 {
	if len(p.Freqs) < 2 {
		return 0
	}
	df := p.Freqs[1] - p.Freqs[0]
	var s float64
	for k, f := range p.Freqs {
		if f >= lo && f < hi {
			s += p.Density[k] * df
		}
	}
	return s
}
