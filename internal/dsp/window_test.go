package dsp

import (
	"math"
	"testing"
)

func TestWindowShapes(t *testing.T) {
	for _, wt := range []WindowType{Rectangular, Hann, Hamming, Blackman} {
		w, err := Window(wt, 65)
		if err != nil {
			t.Fatalf("%v: %v", wt, err)
		}
		if len(w) != 65 {
			t.Fatalf("%v: length %d", wt, len(w))
		}
		// Symmetry.
		for i := 0; i < len(w)/2; i++ {
			if !almostEq(w[i], w[len(w)-1-i], 1e-12) {
				t.Errorf("%v not symmetric at %d", wt, i)
			}
		}
		// Peak at center, bounded by 1.
		mid := len(w) / 2
		for i, v := range w {
			if v > w[mid]+1e-12 {
				t.Errorf("%v: w[%d]=%v exceeds center %v", wt, i, v, w[mid])
			}
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v: w[%d]=%v out of [0,1]", wt, i, v)
			}
		}
	}
}

func TestWindowEndpoints(t *testing.T) {
	hann, _ := Window(Hann, 33)
	if !almostEq(hann[0], 0, 1e-12) || !almostEq(hann[32], 0, 1e-12) {
		t.Errorf("Hann endpoints should be 0: %v %v", hann[0], hann[32])
	}
	ham, _ := Window(Hamming, 33)
	if !almostEq(ham[0], 0.08, 1e-12) {
		t.Errorf("Hamming endpoint = %v, want 0.08", ham[0])
	}
	rect, _ := Window(Rectangular, 4)
	for _, v := range rect {
		if v != 1 {
			t.Errorf("rectangular coefficient %v != 1", v)
		}
	}
}

func TestWindowDegenerate(t *testing.T) {
	if _, err := Window(Hann, 0); err == nil {
		t.Error("expected error for zero-length window")
	}
	if _, err := Window(Hann, -3); err == nil {
		t.Error("expected error for negative window")
	}
	w, err := Window(Hann, 1)
	if err != nil || len(w) != 1 || w[0] != 1 {
		t.Errorf("single-sample window = %v, %v", w, err)
	}
	if _, err := Window(WindowType(99), 8); err == nil {
		t.Error("expected error for unknown window type")
	}
}

func TestWindowTypeString(t *testing.T) {
	cases := map[WindowType]string{
		Rectangular:    "rectangular",
		Hann:           "hann",
		Hamming:        "hamming",
		Blackman:       "blackman",
		WindowType(42): "WindowType(42)",
	}
	for wt, want := range cases {
		if got := wt.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(wt), got, want)
		}
	}
}

func TestGains(t *testing.T) {
	rect, _ := Window(Rectangular, 16)
	if g := CoherentGain(rect); !almostEq(g, 1, 1e-12) {
		t.Errorf("rect coherent gain = %v", g)
	}
	if g := PowerGain(rect); !almostEq(g, 1, 1e-12) {
		t.Errorf("rect power gain = %v", g)
	}
	hann, _ := Window(Hann, 1001)
	if g := CoherentGain(hann); math.Abs(g-0.5) > 0.01 {
		t.Errorf("hann coherent gain = %v, want ~0.5", g)
	}
	if g := PowerGain(hann); math.Abs(g-0.375) > 0.01 {
		t.Errorf("hann power gain = %v, want ~0.375", g)
	}
	if g := CoherentGain(nil); g != 0 {
		t.Errorf("CoherentGain(nil) = %v", g)
	}
	if g := PowerGain(nil); g != 0 {
		t.Errorf("PowerGain(nil) = %v", g)
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3}
	w := []float64{0.5, 1, 0.5}
	out, err := ApplyWindow(x, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 2, 1.5}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := ApplyWindow(x, w[:2]); err == nil {
		t.Error("expected length-mismatch error")
	}
}
