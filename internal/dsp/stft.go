package dsp

import (
	"fmt"
	"math"
)

// STFTConfig configures a short-time Fourier transform. The paper's Fig. 6
// uses 2048-point windows at 50 Hz (40.96 s per frame).
type STFTConfig struct {
	// WindowSize is the number of samples per frame. Must be positive.
	WindowSize int
	// HopSize is the stride between consecutive frames. Defaults to
	// WindowSize/2 when zero.
	HopSize int
	// Window is the taper applied to each frame.
	Window WindowType
	// SampleRate in Hz, used to annotate frequencies. Must be positive.
	SampleRate float64
}

func (c *STFTConfig) normalize() error {
	if err := mustPositive("STFT window size", c.WindowSize); err != nil {
		return err
	}
	if c.HopSize == 0 {
		c.HopSize = c.WindowSize / 2
		if c.HopSize == 0 {
			c.HopSize = 1
		}
	}
	if err := mustPositive("STFT hop size", c.HopSize); err != nil {
		return err
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: STFT sample rate must be positive, got %g", c.SampleRate)
	}
	return nil
}

// Frame is one STFT frame: the power spectrum of a windowed signal segment.
type Frame struct {
	// Start is the index of the first sample of the frame in the input.
	Start int
	// Time is the center time of the frame in seconds.
	Time float64
	// Power holds |X[k]|² for one-sided bins 0..WindowSize/2.
	Power []float64
}

// Spectrogram is the result of an STFT: a sequence of frames plus the
// frequency axis.
type Spectrogram struct {
	Frames []Frame
	// Freqs[k] is the center frequency of bin k in Hz.
	Freqs []float64
	// Config echoes the configuration that produced the spectrogram.
	Config STFTConfig
}

// STFT computes the short-time Fourier transform of x. Frames that would
// run past the end of the signal are dropped (no padding), matching the
// windowed-transform description in §III-C1.
func STFT(x []float64, cfg STFTConfig) (*Spectrogram, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	win, err := Window(cfg.Window, cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	half := cfg.WindowSize/2 + 1
	freqs := make([]float64, half)
	for k := range freqs {
		freqs[k] = BinFreq(k, cfg.WindowSize, cfg.SampleRate)
	}
	var frames []Frame
	for start := 0; start+cfg.WindowSize <= len(x); start += cfg.HopSize {
		seg, err := ApplyWindow(x[start:start+cfg.WindowSize], win)
		if err != nil {
			return nil, err
		}
		frames = append(frames, Frame{
			Start: start,
			Time:  (float64(start) + float64(cfg.WindowSize)/2) / cfg.SampleRate,
			Power: PowerSpectrum(seg),
		})
	}
	return &Spectrogram{Frames: frames, Freqs: freqs, Config: cfg}, nil
}

// BandEnergy sums the power of f's bins whose frequency lies in [lo, hi).
func (s *Spectrogram) BandEnergy(f Frame, lo, hi float64) float64 {
	var e float64
	for k, p := range f.Power {
		if s.Freqs[k] >= lo && s.Freqs[k] < hi {
			e += p
		}
	}
	return e
}

// TotalPower sums all frames' total spectral power.
func (s *Spectrogram) TotalPower() float64 {
	var e float64
	for _, f := range s.Frames {
		for _, p := range f.Power {
			e += p
		}
	}
	return e
}

// Peak describes a local maximum of a power spectrum.
type Peak struct {
	Bin   int
	Freq  float64
	Power float64
}

// FindPeaks locates local maxima of power that exceed rel·max(power),
// separated by at least minSepBins bins. Peaks are returned in descending
// power order. It is the quantitative form of the paper's "single peak" vs
// "multiple peaks and wide crests" observation in Fig. 6.
func FindPeaks(power, freqs []float64, rel float64, minSepBins int) []Peak {
	if len(power) == 0 || len(power) != len(freqs) {
		return nil
	}
	var max float64
	for _, p := range power {
		if p > max {
			max = p
		}
	}
	if max == 0 {
		return nil
	}
	thresh := rel * max
	var cands []Peak
	for k := 1; k < len(power)-1; k++ {
		if power[k] >= power[k-1] && power[k] > power[k+1] && power[k] >= thresh {
			cands = append(cands, Peak{Bin: k, Freq: freqs[k], Power: power[k]})
		}
	}
	// Also consider the endpoints as peaks when they dominate their
	// neighbor, since the lowest ocean-wave bin often holds the maximum.
	if len(power) >= 2 {
		if power[0] > power[1] && power[0] >= thresh {
			cands = append(cands, Peak{Bin: 0, Freq: freqs[0], Power: power[0]})
		}
		last := len(power) - 1
		if power[last] > power[last-1] && power[last] >= thresh {
			cands = append(cands, Peak{Bin: last, Freq: freqs[last], Power: power[last]})
		}
	}
	// Sort by power descending (insertion sort: candidate lists are tiny).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].Power > cands[j-1].Power; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	// Greedy min-separation selection.
	var out []Peak
	for _, c := range cands {
		ok := true
		for _, sel := range out {
			if abs(sel.Bin-c.Bin) < minSepBins {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// SmoothSpectrum returns the moving average of power with the given
// half-width (window 2·halfWidth+1, shrinking at the edges). Periodograms
// of a single random-sea realization fluctuate bin to bin; smoothing
// recovers the underlying spectral shape before peak analysis.
func SmoothSpectrum(power []float64, halfWidth int) []float64 {
	if halfWidth <= 0 || len(power) == 0 {
		out := make([]float64, len(power))
		copy(out, power)
		return out
	}
	out := make([]float64, len(power))
	for i := range power {
		lo, hi := i-halfWidth, i+halfWidth
		if lo < 0 {
			lo = 0
		}
		if hi >= len(power) {
			hi = len(power) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += power[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// SpectralCentroid returns the power-weighted mean frequency of a spectrum.
func SpectralCentroid(power, freqs []float64) float64 {
	var num, den float64
	for k := range power {
		num += power[k] * freqs[k]
		den += power[k]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SpectralFlatness returns the ratio of geometric to arithmetic mean of the
// spectrum in (0, 1]; a pure tone approaches 0, white noise approaches 1.
// The ship+ocean mixture's "wide crests without distinct peaks" shows up as
// increased flatness relative to calm ocean spectra.
func SpectralFlatness(power []float64) float64 {
	if len(power) == 0 {
		return 0
	}
	var logSum, sum float64
	n := 0
	for _, p := range power {
		if p <= 0 {
			continue
		}
		logSum += math.Log(p)
		sum += p
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return math.Exp(logSum/float64(n)) / (sum / float64(n))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
