package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter described by its tap coefficients.
type FIR struct {
	Taps []float64
}

// LowPassFIR designs a windowed-sinc low-pass filter with the given cutoff
// frequency (Hz), sample rate (Hz), and number of taps (made odd so the
// filter has integer group delay). The node-level detector uses cutoff=1 Hz
// at 50 Hz to "filter out the frequency above 1 Hz" (§IV-B, Fig. 8).
func LowPassFIR(cutoff, sampleRate float64, taps int, window WindowType) (*FIR, error) {
	if cutoff <= 0 || cutoff >= sampleRate/2 {
		return nil, fmt.Errorf("dsp: cutoff %g Hz must be in (0, %g)", cutoff, sampleRate/2)
	}
	if err := mustPositive("FIR taps", taps); err != nil {
		return nil, err
	}
	if taps%2 == 0 {
		taps++
	}
	w, err := Window(window, taps)
	if err != nil {
		return nil, err
	}
	fc := cutoff / sampleRate // normalized cutoff in cycles/sample
	mid := (taps - 1) / 2
	h := make([]float64, taps)
	var sum float64
	for i := 0; i < taps; i++ {
		n := float64(i - mid)
		var v float64
		if n == 0 {
			v = 2 * fc
		} else {
			v = math.Sin(2*math.Pi*fc*n) / (math.Pi * n)
		}
		h[i] = v * w[i]
		sum += h[i]
	}
	// Normalize for unity DC gain.
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return &FIR{Taps: h}, nil
}

// HighPassFIR designs a windowed-sinc high-pass filter by spectral inversion
// of the corresponding low-pass design.
func HighPassFIR(cutoff, sampleRate float64, taps int, window WindowType) (*FIR, error) {
	lp, err := LowPassFIR(cutoff, sampleRate, taps, window)
	if err != nil {
		return nil, err
	}
	h := lp.Taps
	mid := (len(h) - 1) / 2
	for i := range h {
		h[i] = -h[i]
	}
	h[mid] += 1
	return &FIR{Taps: h}, nil
}

// GroupDelay returns the filter's group delay in samples ((taps−1)/2 for the
// linear-phase designs produced by this package).
func (f *FIR) GroupDelay() int { return (len(f.Taps) - 1) / 2 }

// Apply filters x and returns a slice of the same length. Edges are handled
// by implicit zero padding; output sample i is aligned with input sample i
// (the group delay is compensated).
func (f *FIR) Apply(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	full := Convolve(x, f.Taps)
	delay := f.GroupDelay()
	out := make([]float64, len(x))
	copy(out, full[delay:delay+len(x)])
	return out
}

// Stream runs the filter as a causal streaming operation: each pushed
// sample yields one output sample delayed by the group delay. It is the
// form a sensor node would run online.
type Stream struct {
	taps []float64
	buf  []float64
	pos  int
}

// Stream returns a streaming instance of the filter.
func (f *FIR) Stream() *Stream {
	return &Stream{taps: f.Taps, buf: make([]float64, len(f.Taps))}
}

// Push feeds one input sample and returns the next (causal) output sample.
func (s *Stream) Push(x float64) float64 {
	s.buf[s.pos] = x
	s.pos = (s.pos + 1) % len(s.buf)
	var acc float64
	idx := s.pos
	// buf[pos] is now the oldest sample; taps are applied newest-first.
	for i := len(s.taps) - 1; i >= 0; i-- {
		acc += s.taps[i] * s.buf[idx]
		idx++
		if idx == len(s.buf) {
			idx = 0
		}
	}
	return acc
}

// Reset clears the stream state.
// MemBytes returns the stream's resident state in bytes: tap and delay-line
// slices plus the cursor. Each detector builds its own filter, so the taps
// count against the owning node's budget.
func (s *Stream) MemBytes() int {
	return (cap(s.taps)+cap(s.buf))*8 + 8
}

func (s *Stream) Reset() {
	for i := range s.buf {
		s.buf[i] = 0
	}
	s.pos = 0
}

// Decimate low-pass filters x (anti-aliasing at 0.8×Nyquist of the output
// rate) and keeps every factor-th sample.
func Decimate(x []float64, sampleRate float64, factor int) ([]float64, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("dsp: decimation factor must be positive, got %d", factor)
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	outRate := sampleRate / float64(factor)
	lp, err := LowPassFIR(0.4*outRate, sampleRate, 101, Hamming)
	if err != nil {
		return nil, err
	}
	filtered := lp.Apply(x)
	out := make([]float64, 0, len(x)/factor+1)
	for i := 0; i < len(filtered); i += factor {
		out = append(out, filtered[i])
	}
	return out, nil
}

// Goertzel evaluates the power of a single DFT bin at the given target
// frequency, a cheap narrowband detector suitable for energy-constrained
// nodes (an alternative to a full FFT at node level).
func Goertzel(x []float64, targetFreq, sampleRate float64) float64 {
	if len(x) == 0 || sampleRate <= 0 {
		return 0
	}
	k := math.Round(float64(len(x)) * targetFreq / sampleRate)
	omega := 2 * math.Pi * k / float64(len(x))
	coeff := 2 * math.Cos(omega)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}
