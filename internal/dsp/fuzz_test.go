package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

// decodeComplex interprets data as interleaved int8 re/im pairs scaled to
// [-16, 16) — a dynamic range that keeps roundoff analysis simple without
// hiding algorithmic errors.
func decodeComplex(data []byte) []complex128 {
	if len(data) > 4096 {
		data = data[:4096]
	}
	n := len(data) / 2
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(float64(int8(data[2*i]))/8, float64(int8(data[2*i+1]))/8)
	}
	return x
}

// FuzzFFTRoundTrip checks IFFT(FFT(x)) == x and Parseval's identity for
// arbitrary inputs and lengths. The seed corpus deliberately covers the
// radix-2 path (powers of two), the Bluestein chirp-z path (primes and
// other non-powers-of-two), and degenerate lengths, so the seeds alone are
// a regression test under plain `go test`.
func FuzzFFTRoundTrip(f *testing.F) {
	impulse := make([]byte, 2*17) // n=17: prime, Bluestein
	impulse[0] = 127
	f.Add(impulse)
	ramp := make([]byte, 2*15) // n=15: odd composite, Bluestein
	for i := range ramp {
		ramp[i] = byte(i * 9)
	}
	f.Add(ramp)
	alt := make([]byte, 2*32) // n=32: radix-2
	for i := 0; i < len(alt); i += 4 {
		alt[i] = 100
		alt[i+2] = 156 // int8 -100
	}
	f.Add(alt)
	f.Add([]byte{1, 2})                 // n=1
	f.Add(make([]byte, 2*63))           // n=63, all zero
	f.Add([]byte("bluestein-127-....")) // n=9
	f.Fuzz(func(t *testing.T, data []byte) {
		x := decodeComplex(data)
		if len(x) == 0 {
			return
		}
		n := len(x)
		X := FFT(x)
		if len(X) != n {
			t.Fatalf("FFT changed length: %d -> %d", n, len(X))
		}
		y := IFFT(X)
		if len(y) != n {
			t.Fatalf("IFFT changed length: %d -> %d", n, len(y))
		}
		var maxAbs float64
		for _, v := range x {
			maxAbs = math.Max(maxAbs, cmplx.Abs(v))
		}
		// Roundoff grows ~log n for radix-2 and through two embedded
		// transforms for Bluestein; this bound is loose for both but
		// tight enough to catch any algorithmic error.
		tol := 1e-10 * (1 + maxAbs) * float64(n)
		for i := range x {
			if d := cmplx.Abs(y[i] - x[i]); d > tol || math.IsNaN(d) {
				t.Fatalf("n=%d: roundtrip error %g at %d (tol %g)", n, d, i, tol)
			}
		}
		var tE, fE float64
		for i := range x {
			tE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			fE += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		fE /= float64(n)
		if d := math.Abs(tE - fE); d > tol*(1+tE) {
			t.Fatalf("n=%d: Parseval violated: time %g vs freq %g", n, tE, fE)
		}
	})
}

// FuzzSTFTFraming checks the STFT's framing arithmetic for arbitrary
// signal lengths, window sizes (odd sizes exercise Bluestein) and hops:
// the frame count must be floor((n-win)/hop)+1, frame starts must step by
// the hop, and every frame must carry win/2+1 finite, non-negative power
// bins. Seeds pin the boundary cases (signal shorter than the window,
// signal length an exact multiple of the hop, window 1).
func FuzzSTFTFraming(f *testing.F) {
	f.Add(make([]byte, 100), uint16(30), uint16(10)) // exact multiple: 8 frames
	f.Add(make([]byte, 10), uint16(30), uint16(10))  // shorter than window: 0 frames
	f.Add(make([]byte, 64), uint16(31), uint16(7))   // odd window: Bluestein
	f.Add(make([]byte, 50), uint16(1), uint16(1))    // window 1
	f.Add([]byte("signal"), uint16(5), uint16(2))
	f.Fuzz(func(t *testing.T, data []byte, winRaw, hopRaw uint16) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		x := make([]float64, len(data))
		for i, b := range data {
			x[i] = float64(int8(b)) / 8
		}
		win := int(winRaw)%300 + 1
		hop := int(hopRaw)%64 + 1
		sg, err := STFT(x, STFTConfig{
			WindowSize: win,
			HopSize:    hop,
			Window:     Hann,
			SampleRate: 50,
		})
		if err != nil {
			t.Fatalf("valid config rejected (win=%d hop=%d n=%d): %v", win, hop, len(x), err)
		}
		want := 0
		if len(x) >= win {
			want = (len(x)-win)/hop + 1
		}
		if len(sg.Frames) != want {
			t.Fatalf("win=%d hop=%d n=%d: %d frames, want %d", win, hop, len(x), len(sg.Frames), want)
		}
		if len(sg.Freqs) != win/2+1 {
			t.Fatalf("win=%d: %d freq bins, want %d", win, len(sg.Freqs), win/2+1)
		}
		for i, fr := range sg.Frames {
			if fr.Start != i*hop {
				t.Fatalf("frame %d: start %d, want %d", i, fr.Start, i*hop)
			}
			if len(fr.Power) != win/2+1 {
				t.Fatalf("frame %d: %d power bins, want %d", i, len(fr.Power), win/2+1)
			}
			for k, p := range fr.Power {
				if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("frame %d bin %d: bad power %g", i, k, p)
				}
			}
		}
	})
}
