package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqC(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// naiveDFT is the O(N²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 128, 257} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		for k := range want {
			if !almostEqC(got[k], want[k], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if out := FFT(nil); out != nil {
		t.Errorf("FFT(nil) = %v", out)
	}
	if out := IFFT(nil); out != nil {
		t.Errorf("IFFT(nil) = %v", out)
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 13, 64, 100, 255, 256} {
		x := randComplex(rng, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !almostEqC(y[i], x[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2i, 3, -4}
	orig := append([]complex128(nil), x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT mutated input at %d", i)
		}
	}
	y := []complex128{1, 2, 3} // non power of two
	origY := append([]complex128(nil), y...)
	FFT(y)
	for i := range y {
		if y[i] != origY[i] {
			t.Fatalf("Bluestein FFT mutated input at %d", i)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, alpha, beta float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(beta) || math.IsInf(beta, 0) {
			return true
		}
		alpha = math.Mod(alpha, 100)
		beta = math.Mod(beta, 100)
		r := rand.New(rand.NewSource(seed))
		n := 16
		x := randComplex(r, n)
		y := randComplex(r, n)
		combined := make([]complex128, n)
		ca, cb := complex(alpha, 0), complex(beta, 0)
		for i := range combined {
			combined[i] = ca*x[i] + cb*y[i]
		}
		fx, fy, fc := FFT(x), FFT(y), FFT(combined)
		for k := range fc {
			if !almostEqC(fc[k], ca*fx[k]+cb*fy[k], 1e-6*(1+math.Abs(alpha)+math.Abs(beta))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 50, 64, 100, 2048} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := FFTReal(x)
		var specEnergy float64
		for _, c := range spec {
			specEnergy += real(c)*real(c) + imag(c)*imag(c)
		}
		timeEnergy := TotalEnergy(x)
		if !almostEq(specEnergy/float64(n), timeEnergy, 1e-6*timeEnergy+1e-9) {
			t.Errorf("n=%d Parseval violated: %v vs %v", n, specEnergy/float64(n), timeEnergy)
		}
	}
}

func TestFFTPureTone(t *testing.T) {
	// A pure tone at bin 5 must put all its energy in bin 5 (and N-5).
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 5 * float64(i) / float64(n))
	}
	spec := FFTReal(x)
	for k := 0; k < n; k++ {
		mag := cmplx.Abs(spec[k])
		if k == 5 || k == n-5 {
			if !almostEq(mag, float64(n)/2, 1e-8) {
				t.Errorf("bin %d magnitude = %v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-8 {
			t.Errorf("bin %d magnitude = %v, want ~0", k, mag)
		}
	}
}

func TestPowerSpectrum(t *testing.T) {
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 10 * float64(i) / float64(n))
	}
	ps := PowerSpectrum(x)
	if len(ps) != n/2+1 {
		t.Fatalf("PowerSpectrum length = %d, want %d", len(ps), n/2+1)
	}
	best := 0
	for k := range ps {
		if ps[k] > ps[best] {
			best = k
		}
	}
	if best != 10 {
		t.Errorf("peak at bin %d, want 10", best)
	}
	if out := PowerSpectrum(nil); out != nil {
		t.Errorf("PowerSpectrum(nil) = %v", out)
	}
}

func TestBinFreqFreqBin(t *testing.T) {
	if f := BinFreq(10, 2048, 50); !almostEq(f, 10*50.0/2048, 1e-12) {
		t.Errorf("BinFreq = %v", f)
	}
	if k := FreqBin(1.0, 2048, 50); k != 41 {
		t.Errorf("FreqBin(1 Hz) = %d, want 41", k)
	}
	if k := FreqBin(-5, 2048, 50); k != 0 {
		t.Errorf("FreqBin clamp low = %d", k)
	}
	if k := FreqBin(1e9, 2048, 50); k != 1024 {
		t.Errorf("FreqBin clamp high = %d", k)
	}
	// Round trip within half-bin resolution.
	for _, f := range []float64{0.1, 0.5, 1, 3, 24} {
		k := FreqBin(f, 2048, 50)
		if got := BinFreq(k, 2048, 50); math.Abs(got-f) > 50.0/2048 {
			t.Errorf("round trip %v Hz -> bin %d -> %v Hz", f, k, got)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestConvolve(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{0, 1, 0.5}
	got := Convolve(a, b)
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("Convolve length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-10) {
			t.Errorf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := Convolve(nil, b); out != nil {
		t.Errorf("Convolve(nil, b) = %v", out)
	}
}

func TestConvolveCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := 1+rng.Intn(30), 1+rng.Intn(30)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for i := range ab {
			if !almostEq(ab[i], ba[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDetrend(t *testing.T) {
	x := []float64{11, 9, 10, 10}
	m := Detrend(x)
	if !almostEq(m, 10, 1e-12) {
		t.Errorf("removed mean = %v, want 10", m)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if !almostEq(sum, 0, 1e-12) {
		t.Errorf("detrended sum = %v", sum)
	}
	if m := Detrend(nil); m != 0 {
		t.Errorf("Detrend(nil) = %v", m)
	}
}
