package dsp

import (
	"math"
	"testing"
)

func chirpPlusTone(n int, sampleRate float64) []float64 {
	// First half: 0.2 Hz tone. Second half: 0.2 Hz + 0.6 Hz.
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / sampleRate
		x[i] = math.Sin(2 * math.Pi * 0.2 * ts)
		if i >= n/2 {
			x[i] += 0.8 * math.Sin(2*math.Pi*0.6*ts)
		}
	}
	return x
}

func TestSTFTBasic(t *testing.T) {
	const fs = 50.0
	x := chirpPlusTone(50*200, fs) // 200 s
	sg, err := STFT(x, STFTConfig{WindowSize: 2048, Window: Hann, SampleRate: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Frames) == 0 {
		t.Fatal("no frames")
	}
	if len(sg.Freqs) != 1025 {
		t.Fatalf("freq axis length = %d, want 1025", len(sg.Freqs))
	}
	// First frame: single dominant component near 0.2 Hz.
	first := sg.Frames[0]
	peaks := FindPeaks(first.Power, sg.Freqs, 0.2, 5)
	if len(peaks) == 0 {
		t.Fatal("no peaks in first frame")
	}
	if math.Abs(peaks[0].Freq-0.2) > 0.05 {
		t.Errorf("first-frame peak at %v Hz, want ~0.2", peaks[0].Freq)
	}
	// Last frame: two components.
	last := sg.Frames[len(sg.Frames)-1]
	peaks = FindPeaks(last.Power, sg.Freqs, 0.2, 5)
	if len(peaks) < 2 {
		t.Fatalf("expected ≥2 peaks in mixed frame, got %d", len(peaks))
	}
	// The two strongest peaks should bracket 0.2 and 0.6 Hz.
	found02, found06 := false, false
	for _, p := range peaks[:2] {
		if math.Abs(p.Freq-0.2) < 0.05 {
			found02 = true
		}
		if math.Abs(p.Freq-0.6) < 0.05 {
			found06 = true
		}
	}
	if !found02 || !found06 {
		t.Errorf("mixed-frame peaks = %+v, want 0.2 and 0.6 Hz", peaks[:2])
	}
}

func TestSTFTFrameTiming(t *testing.T) {
	x := make([]float64, 1000)
	sg, err := STFT(x, STFTConfig{WindowSize: 256, HopSize: 128, Window: Hann, SampleRate: 50})
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := (1000-256)/128 + 1
	if len(sg.Frames) != wantFrames {
		t.Errorf("frames = %d, want %d", len(sg.Frames), wantFrames)
	}
	for i, f := range sg.Frames {
		if f.Start != i*128 {
			t.Errorf("frame %d start = %d", i, f.Start)
		}
		wantTime := (float64(f.Start) + 128) / 50
		if !almostEq(f.Time, wantTime, 1e-12) {
			t.Errorf("frame %d time = %v, want %v", i, f.Time, wantTime)
		}
	}
}

func TestSTFTValidation(t *testing.T) {
	x := make([]float64, 100)
	if _, err := STFT(x, STFTConfig{WindowSize: 0, SampleRate: 50}); err == nil {
		t.Error("expected error for zero window")
	}
	if _, err := STFT(x, STFTConfig{WindowSize: 64, SampleRate: 0}); err == nil {
		t.Error("expected error for zero sample rate")
	}
	if _, err := STFT(x, STFTConfig{WindowSize: 64, HopSize: -1, SampleRate: 50}); err == nil {
		t.Error("expected error for negative hop")
	}
	// Signal shorter than the window yields zero frames, not an error.
	sg, err := STFT(x, STFTConfig{WindowSize: 256, SampleRate: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Frames) != 0 {
		t.Errorf("expected no frames, got %d", len(sg.Frames))
	}
}

func TestBandEnergy(t *testing.T) {
	const fs = 50.0
	n := 2048
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*0.5*ts) + math.Sin(2*math.Pi*5*ts)
	}
	sg, err := STFT(x, STFTConfig{WindowSize: 2048, Window: Hann, SampleRate: fs})
	if err != nil {
		t.Fatal(err)
	}
	f := sg.Frames[0]
	low := sg.BandEnergy(f, 0.1, 1)
	high := sg.BandEnergy(f, 4, 6)
	mid := sg.BandEnergy(f, 2, 3)
	if low <= 10*mid || high <= 10*mid {
		t.Errorf("band energies: low=%v mid=%v high=%v", low, mid, high)
	}
	if tp := sg.TotalPower(); tp < low+high {
		t.Errorf("TotalPower=%v < band sums", tp)
	}
}

func TestFindPeaksEdgeCases(t *testing.T) {
	if p := FindPeaks(nil, nil, 0.5, 1); p != nil {
		t.Errorf("FindPeaks(nil) = %v", p)
	}
	if p := FindPeaks([]float64{0, 0, 0}, []float64{0, 1, 2}, 0.5, 1); p != nil {
		t.Errorf("all-zero peaks = %v", p)
	}
	// Mismatched lengths.
	if p := FindPeaks([]float64{1, 2}, []float64{0}, 0.5, 1); p != nil {
		t.Errorf("mismatched peaks = %v", p)
	}
	// Endpoint maximum is reported.
	p := FindPeaks([]float64{10, 1, 0.5}, []float64{0, 1, 2}, 0.2, 1)
	if len(p) == 0 || p[0].Bin != 0 {
		t.Errorf("endpoint peak missing: %+v", p)
	}
}

func TestFindPeaksMinSeparation(t *testing.T) {
	power := []float64{0, 5, 4.9, 0, 0, 0, 0, 0, 3, 0}
	freqs := make([]float64, len(power))
	for i := range freqs {
		freqs[i] = float64(i)
	}
	peaks := FindPeaks(power, freqs, 0.1, 3)
	// Bins 1 and 2 are within 3 bins of each other; only the stronger (1)
	// plus bin 8 survive.
	if len(peaks) != 2 {
		t.Fatalf("peaks = %+v, want 2", peaks)
	}
	if peaks[0].Bin != 1 || peaks[1].Bin != 8 {
		t.Errorf("peaks = %+v", peaks)
	}
}

func TestSpectralCentroid(t *testing.T) {
	power := []float64{0, 1, 0, 1, 0}
	freqs := []float64{0, 1, 2, 3, 4}
	if c := SpectralCentroid(power, freqs); !almostEq(c, 2, 1e-12) {
		t.Errorf("centroid = %v, want 2", c)
	}
	if c := SpectralCentroid([]float64{0, 0}, []float64{1, 2}); c != 0 {
		t.Errorf("zero-power centroid = %v", c)
	}
}

func TestSpectralFlatness(t *testing.T) {
	// Flat spectrum → 1; single spike → small.
	flat := []float64{1, 1, 1, 1}
	if f := SpectralFlatness(flat); !almostEq(f, 1, 1e-12) {
		t.Errorf("flatness(flat) = %v", f)
	}
	spike := []float64{1e-9, 1e-9, 1000, 1e-9}
	if f := SpectralFlatness(spike); f > 0.01 {
		t.Errorf("flatness(spike) = %v, want near 0", f)
	}
	if f := SpectralFlatness(nil); f != 0 {
		t.Errorf("flatness(nil) = %v", f)
	}
	if f := SpectralFlatness([]float64{0, 0}); f != 0 {
		t.Errorf("flatness(zeros) = %v", f)
	}
}

func TestSmoothSpectrum(t *testing.T) {
	in := []float64{0, 0, 9, 0, 0}
	out := SmoothSpectrum(in, 1)
	want := []float64{0, 3, 3, 3, 0}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Total mass approximately preserved away from edges; zero half-width
	// copies.
	same := SmoothSpectrum(in, 0)
	for i := range in {
		if same[i] != in[i] {
			t.Error("halfWidth 0 should copy")
		}
	}
	same[0] = 99
	if in[0] == 99 {
		t.Error("SmoothSpectrum must not alias its input")
	}
	if out := SmoothSpectrum(nil, 2); len(out) != 0 {
		t.Errorf("nil input -> %v", out)
	}
	// Edges shrink the window instead of zero-padding.
	edge := SmoothSpectrum([]float64{6, 0, 0, 0, 0}, 2)
	if !almostEq(edge[0], 2, 1e-12) { // mean of {6,0,0}
		t.Errorf("edge[0] = %v, want 2", edge[0])
	}
}
