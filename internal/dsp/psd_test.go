package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchPeakFrequency(t *testing.T) {
	const fs = 50.0
	n := int(fs * 400)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = 3*math.Sin(2*math.Pi*0.3*ts) + 0.1*rng.NormFloat64()
	}
	psd, err := Welch(x, WelchConfig{SegmentSize: 2048, SampleRate: fs})
	if err != nil {
		t.Fatal(err)
	}
	if psd.Segments < 5 {
		t.Errorf("segments = %d, want several", psd.Segments)
	}
	if pf := psd.PeakFreq(); math.Abs(pf-0.3) > 0.05 {
		t.Errorf("peak frequency = %v, want ~0.3", pf)
	}
}

func TestWelchPowerConservation(t *testing.T) {
	// For a sinusoid of amplitude A, total band power ≈ A²/2.
	const fs = 50.0
	n := int(fs * 600)
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 * math.Sin(2*math.Pi*1.5*float64(i)/fs)
	}
	psd, err := Welch(x, WelchConfig{SegmentSize: 1024, SampleRate: fs})
	if err != nil {
		t.Fatal(err)
	}
	power := psd.BandPower(0.5, 3)
	if math.Abs(power-2) > 0.1 { // A²/2 = 2
		t.Errorf("band power = %v, want ~2", power)
	}
}

func TestWelchWhiteNoiseFlat(t *testing.T) {
	const fs = 50.0
	rng := rand.New(rand.NewSource(8))
	n := int(fs * 2000)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	psd, err := Welch(x, WelchConfig{SegmentSize: 512, SampleRate: fs})
	if err != nil {
		t.Fatal(err)
	}
	// White noise with unit variance: PSD ≈ 1/(fs/2) per Hz one-sided = 0.04.
	want := 2.0 / fs
	var sum float64
	cnt := 0
	for k, f := range psd.Freqs {
		if f < 1 || f > 24 {
			continue
		}
		sum += psd.Density[k]
		cnt++
	}
	mean := sum / float64(cnt)
	if math.Abs(mean-want)/want > 0.15 {
		t.Errorf("white-noise PSD level = %v, want ~%v", mean, want)
	}
}

func TestWelchValidation(t *testing.T) {
	x := make([]float64, 100)
	if _, err := Welch(x, WelchConfig{SegmentSize: 0, SampleRate: 50}); err == nil {
		t.Error("expected error for zero segment")
	}
	if _, err := Welch(x, WelchConfig{SegmentSize: 64, SampleRate: 0}); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, err := Welch(x, WelchConfig{SegmentSize: 64, Overlap: 64, SampleRate: 50}); err == nil {
		t.Error("expected error for overlap == segment")
	}
	if _, err := Welch(x[:10], WelchConfig{SegmentSize: 64, SampleRate: 50}); err == nil {
		t.Error("expected error for short input")
	}
}

func TestPSDBandPowerDegenerate(t *testing.T) {
	p := &PSD{Freqs: []float64{0}, Density: []float64{1}}
	if bp := p.BandPower(0, 10); bp != 0 {
		t.Errorf("single-bin band power = %v", bp)
	}
}
