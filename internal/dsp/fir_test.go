package dsp

import (
	"math"
	"testing"
)

// toneResponse measures the filter's gain at freq by filtering a pure tone
// and comparing RMS in the steady-state middle of the signal.
func toneResponse(f *FIR, freq, sampleRate float64) float64 {
	n := int(sampleRate * 60)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / sampleRate)
	}
	y := f.Apply(x)
	var inE, outE float64
	for i := n / 4; i < 3*n/4; i++ {
		inE += x[i] * x[i]
		outE += y[i] * y[i]
	}
	if inE == 0 {
		return 0
	}
	return math.Sqrt(outE / inE)
}

func TestLowPassFIRResponse(t *testing.T) {
	lp, err := LowPassFIR(1.0, 50, 201, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	// Passband: ~unity gain.
	for _, f := range []float64{0.1, 0.3, 0.5} {
		g := toneResponse(lp, f, 50)
		if math.Abs(g-1) > 0.05 {
			t.Errorf("gain at %v Hz = %v, want ~1", f, g)
		}
	}
	// Stopband: strong attenuation.
	for _, f := range []float64{3, 5, 10, 20} {
		g := toneResponse(lp, f, 50)
		if g > 0.01 {
			t.Errorf("gain at %v Hz = %v, want < 0.01", f, g)
		}
	}
}

func TestLowPassFIRDCGain(t *testing.T) {
	lp, err := LowPassFIR(1.0, 50, 101, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tap := range lp.Taps {
		sum += tap
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("DC gain = %v, want 1", sum)
	}
}

func TestLowPassFIROddTaps(t *testing.T) {
	lp, err := LowPassFIR(1.0, 50, 100, Hamming) // even request becomes odd
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Taps)%2 != 1 {
		t.Errorf("taps = %d, want odd", len(lp.Taps))
	}
	if lp.GroupDelay() != (len(lp.Taps)-1)/2 {
		t.Errorf("GroupDelay = %d", lp.GroupDelay())
	}
}

func TestLowPassFIRValidation(t *testing.T) {
	if _, err := LowPassFIR(0, 50, 101, Hamming); err == nil {
		t.Error("expected error for zero cutoff")
	}
	if _, err := LowPassFIR(25, 50, 101, Hamming); err == nil {
		t.Error("expected error for cutoff at Nyquist")
	}
	if _, err := LowPassFIR(1, 50, 0, Hamming); err == nil {
		t.Error("expected error for zero taps")
	}
}

func TestHighPassFIRResponse(t *testing.T) {
	hp, err := HighPassFIR(5, 50, 201, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if g := toneResponse(hp, 0.5, 50); g > 0.02 {
		t.Errorf("HP gain at 0.5 Hz = %v, want ~0", g)
	}
	if g := toneResponse(hp, 15, 50); math.Abs(g-1) > 0.05 {
		t.Errorf("HP gain at 15 Hz = %v, want ~1", g)
	}
}

func TestFIRApplyEmpty(t *testing.T) {
	lp, _ := LowPassFIR(1, 50, 11, Hamming)
	if out := lp.Apply(nil); out != nil {
		t.Errorf("Apply(nil) = %v", out)
	}
}

func TestStreamMatchesApply(t *testing.T) {
	lp, err := LowPassFIR(2, 50, 31, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*0.7*float64(i)/50) + 0.3*math.Sin(2*math.Pi*9*float64(i)/50)
	}
	st := lp.Stream()
	streamOut := make([]float64, n)
	for i, v := range x {
		streamOut[i] = st.Push(v)
	}
	// Stream output is causal: streamOut[i] corresponds to Apply output at
	// i - groupDelay (Apply compensates the delay).
	applied := lp.Apply(x)
	d := lp.GroupDelay()
	for i := d; i < n; i++ {
		if !almostEq(streamOut[i], applied[i-d], 1e-9) {
			t.Fatalf("stream[%d]=%v != applied[%d]=%v", i, streamOut[i], i-d, applied[i-d])
		}
	}
}

func TestStreamReset(t *testing.T) {
	lp, _ := LowPassFIR(2, 50, 15, Hamming)
	st := lp.Stream()
	st.Push(100)
	st.Push(-50)
	st.Reset()
	// After reset, pushing zeros yields zeros.
	for i := 0; i < 20; i++ {
		if out := st.Push(0); out != 0 {
			t.Fatalf("post-reset output %v != 0", out)
		}
	}
}

func TestDecimate(t *testing.T) {
	const fs = 50.0
	n := int(fs * 100)
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*0.5*ts) + math.Sin(2*math.Pi*20*ts)
	}
	out, err := Decimate(x, fs, 5) // 10 Hz output; 20 Hz tone must vanish
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n/5 {
		t.Fatalf("decimated length = %d, want %d", len(out), n/5)
	}
	// The 0.5 Hz tone survives: RMS ≈ 1/√2.
	var e float64
	for _, v := range out[len(out)/4 : 3*len(out)/4] {
		e += v * v
	}
	rms := math.Sqrt(e / float64(len(out)/2))
	if math.Abs(rms-math.Sqrt2/2) > 0.05 {
		t.Errorf("decimated RMS = %v, want ~0.707", rms)
	}
}

func TestDecimateFactorOne(t *testing.T) {
	x := []float64{1, 2, 3}
	out, err := Decimate(x, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("factor-1 decimate altered data")
		}
	}
	// Must be a copy, not an alias.
	out[0] = 99
	if x[0] == 99 {
		t.Error("factor-1 decimate aliases input")
	}
	if _, err := Decimate(x, 50, 0); err == nil {
		t.Error("expected error for zero factor")
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const fs = 50.0
	n := 500
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = 2*math.Sin(2*math.Pi*5*ts) + 0.5*math.Sin(2*math.Pi*12*ts)
	}
	spec := PowerSpectrum(x)
	k5 := FreqBin(5, n, fs)
	g5 := Goertzel(x, 5, fs)
	if !almostEq(g5, spec[k5], 1e-6*spec[k5]) {
		t.Errorf("Goertzel(5Hz) = %v, FFT bin = %v", g5, spec[k5])
	}
	// Strong bin dominates weak bin.
	if g12 := Goertzel(x, 12, fs); g5 < 10*g12 {
		t.Errorf("expected 5 Hz power >> 12 Hz: %v vs %v", g5, g12)
	}
	if g := Goertzel(nil, 5, fs); g != 0 {
		t.Errorf("Goertzel(nil) = %v", g)
	}
	if g := Goertzel(x, 5, 0); g != 0 {
		t.Errorf("Goertzel with zero rate = %v", g)
	}
}
