package dsp

import (
	"math"
	"testing"
)

func TestMorletCWTLocalizesToneInFrequency(t *testing.T) {
	const fs = 50.0
	m, err := NewMorletCWT(fs)
	if err != nil {
		t.Fatal(err)
	}
	n := int(fs * 120)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.5 * float64(i) / fs)
	}
	freqs, err := LogFreqs(0.05, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := m.Transform(x, freqs)
	if err != nil {
		t.Fatal(err)
	}
	// The row with the highest total power must be the one closest to 0.5 Hz.
	best, bestPow := 0, 0.0
	for i := range sg.Power {
		var s float64
		for _, p := range sg.Power[i] {
			s += p
		}
		if s > bestPow {
			best, bestPow = i, s
		}
	}
	if math.Abs(sg.Freqs[best]-0.5) > 0.1 {
		t.Errorf("dominant CWT row at %v Hz, want ~0.5", sg.Freqs[best])
	}
}

func TestMorletCWTLocalizesBurstInTime(t *testing.T) {
	const fs = 50.0
	m, _ := NewMorletCWT(fs)
	n := int(fs * 200)
	x := make([]float64, n)
	// A 0.5 Hz burst between t=100 s and t=110 s (a wake-like wave train).
	for i := range x {
		ts := float64(i) / fs
		if ts >= 100 && ts < 110 {
			x[i] = math.Sin(2 * math.Pi * 0.5 * ts)
		}
	}
	freqs := []float64{0.25, 0.5, 1.0}
	sg, err := m.Transform(x, freqs)
	if err != nil {
		t.Fatal(err)
	}
	inside := sg.TimeSlicePower(int(105 * fs))
	outside := sg.TimeSlicePower(int(50 * fs))
	if inside < 100*outside+1e-12 {
		t.Errorf("burst not localized: inside=%v outside=%v", inside, outside)
	}
}

func TestMorletCWTBandFraction(t *testing.T) {
	const fs = 50.0
	m, _ := NewMorletCWT(fs)
	n := int(fs * 100)
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = math.Sin(2 * math.Pi * 0.4 * ts) // all energy below 1 Hz
	}
	freqs, _ := LogFreqs(0.1, 10, 25)
	sg, err := m.Transform(x, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if frac := sg.BandFraction(0.1, 1); frac < 0.95 {
		t.Errorf("low-band fraction = %v, want > 0.95", frac)
	}
	if frac := sg.BandFraction(5, 10); frac > 0.01 {
		t.Errorf("high-band fraction = %v, want ~0", frac)
	}
}

func TestMorletScaleFreqRoundTrip(t *testing.T) {
	m, _ := NewMorletCWT(50)
	for _, f := range []float64{0.1, 0.5, 1, 5, 20} {
		s := m.ScaleForFreq(f)
		if got := m.FreqForScale(s); !almostEq(got, f, 1e-9) {
			t.Errorf("round trip %v Hz -> %v", f, got)
		}
	}
}

func TestMorletCWTValidation(t *testing.T) {
	if _, err := NewMorletCWT(0); err == nil {
		t.Error("expected error for zero sample rate")
	}
	m, _ := NewMorletCWT(50)
	if _, err := m.Transform(nil, []float64{1}); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := m.Transform([]float64{1, 2}, nil); err == nil {
		t.Error("expected error for no frequencies")
	}
	if _, err := m.Transform([]float64{1, 2}, []float64{0}); err == nil {
		t.Error("expected error for zero frequency")
	}
	if _, err := m.Transform([]float64{1, 2}, []float64{26}); err == nil {
		t.Error("expected error for frequency above Nyquist")
	}
}

func TestLogFreqs(t *testing.T) {
	fs, err := LogFreqs(0.1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 5 {
		t.Fatalf("len = %d", len(fs))
	}
	if !almostEq(fs[0], 0.1, 1e-12) || !almostEq(fs[4], 10, 1e-9) {
		t.Errorf("endpoints = %v, %v", fs[0], fs[4])
	}
	// Log spacing: constant ratio.
	r := fs[1] / fs[0]
	for i := 2; i < len(fs); i++ {
		if !almostEq(fs[i]/fs[i-1], r, 1e-9) {
			t.Errorf("non-constant ratio at %d", i)
		}
	}
	if _, err := LogFreqs(0, 10, 5); err == nil {
		t.Error("expected error for lo=0")
	}
	if _, err := LogFreqs(10, 1, 5); err == nil {
		t.Error("expected error for hi<lo")
	}
	if _, err := LogFreqs(0.1, 10, 0); err == nil {
		t.Error("expected error for nf=0")
	}
	single, err := LogFreqs(0.5, 10, 1)
	if err != nil || len(single) != 1 || single[0] != 0.5 {
		t.Errorf("single freq = %v, %v", single, err)
	}
}

func TestScalogramTimeSliceOutOfRange(t *testing.T) {
	m, _ := NewMorletCWT(50)
	x := make([]float64, 256)
	x[128] = 1
	sg, err := m.Transform(x, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if p := sg.TimeSlicePower(-1); p != 0 {
		t.Errorf("negative index power = %v", p)
	}
	if p := sg.TimeSlicePower(10_000); p != 0 {
		t.Errorf("out-of-range power = %v", p)
	}
}
