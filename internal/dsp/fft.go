// Package dsp implements the signal-processing substrate SID depends on:
// FFT (radix-2 and Bluestein for arbitrary lengths), window functions,
// the short-time Fourier transform used for Fig. 6, Welch power spectral
// density estimation, the Morlet continuous wavelet transform used for
// Fig. 7, windowed-sinc FIR filter design for the 1 Hz node-level low-pass
// filter (Fig. 8), Goertzel single-bin detection, and spectral peak
// analysis.
//
// The paper's evaluation was done with MATLAB-style tooling; the repro band
// flags "weak DSP tooling" in Go, so everything here is implemented from
// scratch on the standard library.
//
// All transforms are pure functions of their inputs and safe for concurrent
// use: the twiddle-factor/bit-reversal plans they share are built once per
// transform size, cached process-wide, and never mutated afterwards (see
// plan.go). Frequencies are in Hz and sample rates in samples/second
// throughout.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place-free discrete Fourier transform of x and returns
// a new slice. Any length is supported: powers of two use the radix-2
// algorithm, other lengths use Bluestein's chirp-z transform.
//
// The convention is X[k] = Σ_n x[n]·exp(-2πi·kn/N) with no normalization.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		fftRadix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT with 1/N normalization, so that
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = make([]complex128, n)
		copy(out, x)
		fftRadix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftRadix2 runs an iterative in-place radix-2 Cooley-Tukey transform.
// len(a) must be a power of two. inverse selects conjugate twiddles
// (without the 1/N scaling). The bit-reversal permutation and twiddle
// factors come from the process-wide plan cache, so repeated transforms of
// the same size pay no setup cost.
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	p := planFor(n)
	for i, j := range p.rev {
		if int(j) > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	tw := p.tw
	if inverse {
		tw = p.twInv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * tw[k*stride]
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// using a power-of-two convolution of length ≥ 2N−1. The chirp factors and
// the transformed filter sequence come from the plan cache; only the
// per-call data transform is computed here.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	p := bluesteinPlanFor(n, inverse)
	a := make([]complex128, p.m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.w[k]
	}
	fftRadix2(a, false)
	for i := range a {
		a[i] *= p.bFFT[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(p.m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * p.w[k]
	}
	return out
}

// FFTInPlace transforms x in place without allocating. len(x) must be a
// power of two (or zero); other lengths return an error without touching x.
// inverse selects the conjugate-twiddle transform WITHOUT the 1/N
// normalization — callers that need a true inverse must scale by 1/N
// themselves (or fold it into the spectrum, as the ocean synthesizer does).
//
// This is the zero-allocation primitive behind the spectral-domain block
// synthesizer (see internal/ocean and docs/SYNTHESIS.md), which transforms
// the same chunk buffers thousands of times per run. The twiddle and
// bit-reversal tables come from the process-wide plan cache, so concurrent
// calls of any size are safe and pay no per-call setup.
func FFTInPlace(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFTInPlace requires a power-of-two length, got %d", n)
	}
	fftRadix2(x, inverse)
	return nil
}

// FFTReal transforms a real signal and returns the full complex spectrum of
// the same length.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// PowerSpectrum returns |X[k]|² for the one-sided spectrum of a real signal:
// bins 0..N/2 inclusive. The input is transformed as-is (no windowing).
func PowerSpectrum(x []float64) []float64 {
	spec := FFTReal(x)
	half := len(x)/2 + 1
	if len(x) == 0 {
		return nil
	}
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		out[k] = re*re + im*im
	}
	return out
}

// BinFreq returns the center frequency in Hz of FFT bin k for a transform of
// length n at the given sample rate.
func BinFreq(k, n int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(n)
}

// FreqBin returns the FFT bin index closest to freq for a transform of
// length n at the given sample rate, clamped to the one-sided range.
func FreqBin(freq float64, n int, sampleRate float64) int {
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if max := n / 2; k > max {
		k = max
	}
	return k
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)−1) computed via FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	ca := make([]complex128, m)
	cb := make([]complex128, m)
	for i, v := range a {
		ca[i] = complex(v, 0)
	}
	for i, v := range b {
		cb[i] = complex(v, 0)
	}
	fftRadix2(ca, false)
	fftRadix2(cb, false)
	for i := range ca {
		ca[i] *= cb[i]
	}
	fftRadix2(ca, true)
	out := make([]float64, n)
	scale := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(ca[i]) * scale
	}
	return out
}

// Parseval checks are used by tests; TotalEnergy returns Σ|x[n]|².
func TotalEnergy(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Detrend subtracts the mean from x in place and returns the removed mean.
// Node-level preprocessing uses it to remove the 1 g gravity offset before
// thresholding.
func Detrend(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var m float64
	for _, v := range x {
		m += v
	}
	m /= float64(len(x))
	for i := range x {
		x[i] -= m
	}
	return m
}

// mustPositive is a small validation helper shared by the package.
func mustPositive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("dsp: %s must be positive, got %d", name, v)
	}
	return nil
}
