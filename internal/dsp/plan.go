package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// fftPlan caches the size-dependent constants of the radix-2 transform:
// the bit-reversal permutation and the twiddle-factor tables for both
// transform directions. Plans are immutable once built, so a single plan
// is safely shared by any number of concurrent transforms.
type fftPlan struct {
	n int
	// rev[i] is the bit-reversed index of i; entries with rev[i] > i mark
	// the swaps of the input permutation.
	rev []int32
	// tw[j] = exp(-2πi·j/n) for j in [0, n/2): the forward twiddles.
	// twInv holds the conjugates for the inverse transform. Each entry is
	// computed directly from its angle (not by repeated multiplication),
	// which keeps large transforms accurate to a few ulps.
	tw, twInv []complex128
}

// fftPlans caches one plan per power-of-two size for the lifetime of the
// process. Sizes used by SID are few (the STFT window, Welch segments,
// convolution paddings), so the cache stays small while eliminating the
// per-call permutation and twiddle recomputation the transforms previously
// paid.
var fftPlans sync.Map // int -> *fftPlan

// planFor returns the shared plan for a power-of-two transform size n,
// building and caching it on first use. Concurrent first calls may build
// the plan twice; exactly one copy wins and is shared from then on.
func planFor(n int) *fftPlan {
	if p, ok := fftPlans.Load(n); ok {
		return p.(*fftPlan)
	}
	p := newFFTPlan(n)
	actual, _ := fftPlans.LoadOrStore(n, p)
	return actual.(*fftPlan)
}

func newFFTPlan(n int) *fftPlan {
	p := &fftPlan{
		n:     n,
		rev:   make([]int32, n),
		tw:    make([]complex128, n/2),
		twInv: make([]complex128, n/2),
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		shift = 64
	}
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	for j := 0; j < n/2; j++ {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		p.tw[j] = complex(c, s)
		p.twInv[j] = complex(c, -s)
	}
	return p
}

// bluesteinPlan caches the length-dependent constants of the chirp-z
// transform for one (n, direction) pair: the chirp factors and the
// pre-transformed filter sequence. Immutable after construction.
type bluesteinPlan struct {
	n, m int
	// w[k] = exp(sign·iπ·k²/n), the chirp factors.
	w []complex128
	// bFFT is the forward radix-2 FFT of the chirp filter b, ready for
	// pointwise multiplication in the convolution.
	bFFT []complex128
}

type bluesteinKey struct {
	n       int
	inverse bool
}

var bluesteinPlans sync.Map // bluesteinKey -> *bluesteinPlan

func bluesteinPlanFor(n int, inverse bool) *bluesteinPlan {
	key := bluesteinKey{n: n, inverse: inverse}
	if p, ok := bluesteinPlans.Load(key); ok {
		return p.(*bluesteinPlan)
	}
	p := newBluesteinPlan(n, inverse)
	actual, _ := bluesteinPlans.LoadOrStore(key, p)
	return actual.(*bluesteinPlan)
}

func newBluesteinPlan(n int, inverse bool) *bluesteinPlan {
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign·iπ·k²/n). k² mod 2n avoids precision
	// loss for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(b, false)
	return &bluesteinPlan{n: n, m: m, w: w, bFFT: b}
}
