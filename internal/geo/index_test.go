package geo

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteBox is the reference QueryBox: scan every point.
func bruteBox(pts []Vec2, min, max Vec2) []int {
	var out []int
	for i, p := range pts {
		if p.X >= min.X && p.X <= max.X && p.Y >= min.Y && p.Y <= max.Y {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexQueryBoxMatchesBruteForce is the core property: over randomized
// point sets (jittered grids and uniform scatters), randomized cell sizes,
// and randomized query boxes, the index returns exactly the brute-force
// all-point scan, sorted ascending.
func TestIndexQueryBoxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var pts []Vec2
		switch trial % 3 {
		case 0: // jittered grid, the deployment shape
			rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
			sp := 5 + 45*rng.Float64()
			g := GridSpec{Rows: rows, Cols: cols, Spacing: sp}
			pts = g.Positions()
			for i := range pts {
				pts[i].X += (rng.Float64() - 0.5) * sp
				pts[i].Y += (rng.Float64() - 0.5) * sp
			}
		case 1: // uniform scatter
			n := 1 + rng.Intn(300)
			pts = make([]Vec2, n)
			for i := range pts {
				pts[i] = Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			}
		default: // degenerate: collinear points
			n := 1 + rng.Intn(50)
			pts = make([]Vec2, n)
			for i := range pts {
				pts[i] = Vec2{X: rng.Float64() * 500, Y: 7}
			}
		}
		cell := 0.0 // auto
		if trial%2 == 1 {
			cell = 0.5 + rng.Float64()*200
		}
		ix := NewIndex(pts, cell)
		var buf []int
		for q := 0; q < 20; q++ {
			a := Vec2{X: rng.Float64()*1400 - 200, Y: rng.Float64()*1400 - 200}
			b := Vec2{X: rng.Float64()*1400 - 200, Y: rng.Float64()*1400 - 200}
			min := Vec2{X: math2min(a.X, b.X), Y: math2min(a.Y, b.Y)}
			max := Vec2{X: math2max(a.X, b.X), Y: math2max(a.Y, b.Y)}
			buf = ix.QueryBox(min, max, buf[:0])
			want := bruteBox(pts, min, max)
			if !equalInts(buf, want) {
				t.Fatalf("trial %d query %d: index returned %v, brute force %v (box [%v,%v], cell %g)",
					trial, q, buf, want, min, max, ix.CellSize())
			}
			if !sort.IntsAreSorted(buf) {
				t.Fatalf("trial %d query %d: result not sorted: %v", trial, q, buf)
			}
		}
	}
}

func math2min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func math2max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestIndexQueryRegionMatchesBruteForce checks that a region query with a
// box-overlap predicate returns a superset of the points in the box (cells
// are coarser than the box) and that every returned point's cell actually
// passed the predicate.
func TestIndexQueryRegionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]Vec2, n)
		for i := range pts {
			pts[i] = Vec2{X: rng.Float64() * 800, Y: rng.Float64() * 800}
		}
		ix := NewIndex(pts, 0)
		qmin := Vec2{X: rng.Float64() * 800, Y: rng.Float64() * 800}
		qmax := Vec2{X: qmin.X + rng.Float64()*300, Y: qmin.Y + rng.Float64()*300}
		overlaps := func(cmin, cmax Vec2) bool {
			return cmax.X >= qmin.X && cmin.X <= qmax.X && cmax.Y >= qmin.Y && cmin.Y <= qmax.Y
		}
		got := ix.QueryRegion(overlaps, nil)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: region result not sorted: %v", trial, got)
		}
		inGot := make(map[int]bool, len(got))
		for _, i := range got {
			inGot[i] = true
		}
		for _, i := range bruteBox(pts, qmin, qmax) {
			if !inGot[i] {
				t.Fatalf("trial %d: point %d (%v) inside query box missing from region result", trial, i, pts[i])
			}
		}
		// Determinism: a second identical query returns the same slice.
		again := ix.QueryRegion(overlaps, nil)
		if !equalInts(got, again) {
			t.Fatalf("trial %d: region query not deterministic: %v then %v", trial, got, again)
		}
	}
}

// TestIndexEdgeCases covers the corners called out in the issue: the empty
// query, a box fully off-grid, and a single-node grid.
func TestIndexEdgeCases(t *testing.T) {
	pts := GridSpec{Rows: 3, Cols: 4, Spacing: 25}.Positions()
	ix := NewIndex(pts, 0)

	// Empty (inverted) query box.
	if got := ix.QueryBox(Vec2{X: 10, Y: 10}, Vec2{X: 5, Y: 5}, nil); len(got) != 0 {
		t.Fatalf("inverted box returned %v", got)
	}
	// Box fully off-grid.
	if got := ix.QueryBox(Vec2{X: 5000, Y: 5000}, Vec2{X: 6000, Y: 6000}, nil); len(got) != 0 {
		t.Fatalf("off-grid box returned %v", got)
	}
	if got := ix.QueryBox(Vec2{X: -6000, Y: -6000}, Vec2{X: -5000, Y: -5000}, nil); len(got) != 0 {
		t.Fatalf("negative off-grid box returned %v", got)
	}
	// Degenerate zero-area box exactly on a node.
	if got := ix.QueryBox(Vec2{X: 25, Y: 25}, Vec2{X: 25, Y: 25}, nil); len(got) != 1 {
		t.Fatalf("point box on a node returned %v", got)
	}
	// Whole-plane query returns every node in order.
	all := ix.QueryBox(Vec2{X: -1e9, Y: -1e9}, Vec2{X: 1e9, Y: 1e9}, nil)
	if len(all) != len(pts) {
		t.Fatalf("whole-plane query returned %d of %d points", len(all), len(pts))
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("whole-plane query out of order at %d: %v", i, all)
		}
	}

	// Single-node grid.
	one := NewIndex([]Vec2{{X: 3, Y: 4}}, 0)
	if got := one.QueryBox(Vec2{X: 0, Y: 0}, Vec2{X: 10, Y: 10}, nil); !equalInts(got, []int{0}) {
		t.Fatalf("single-node hit returned %v", got)
	}
	if got := one.QueryBox(Vec2{X: 5, Y: 5}, Vec2{X: 10, Y: 10}, nil); len(got) != 0 {
		t.Fatalf("single-node miss returned %v", got)
	}
	if one.Len() != 1 {
		t.Fatalf("Len = %d", one.Len())
	}

	// Empty index.
	empty := NewIndex(nil, 0)
	if got := empty.QueryBox(Vec2{X: -1, Y: -1}, Vec2{X: 1, Y: 1}, nil); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
	if got := empty.QueryRegion(func(_, _ Vec2) bool { return true }, nil); len(got) != 0 {
		t.Fatalf("empty index region returned %v", got)
	}
}

// TestPositionsInto pins the reuse contract: same contents as Positions,
// and no reallocation when the destination already has capacity.
func TestPositionsInto(t *testing.T) {
	g := GridSpec{Rows: 4, Cols: 5, Spacing: 25, Origin: Vec2{X: 3, Y: -7}}
	want := g.Positions()
	buf := g.PositionsInto(nil)
	if len(buf) != len(want) {
		t.Fatalf("PositionsInto len %d, want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("PositionsInto[%d] = %v, want %v", i, buf[i], want[i])
		}
	}
	again := g.PositionsInto(buf)
	if &again[0] != &buf[0] {
		t.Fatalf("PositionsInto reallocated despite sufficient capacity")
	}
	small := GridSpec{Rows: 2, Cols: 2, Spacing: 10}
	shrunk := small.PositionsInto(buf)
	if len(shrunk) != 4 || &shrunk[0] != &buf[0] {
		t.Fatalf("PositionsInto did not reuse buffer for smaller grid")
	}
}
