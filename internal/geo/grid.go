package geo

import (
	"fmt"
	"math"
)

// GridSpec describes a manual grid deployment of sensor buoys as used in the
// SID sea trials: Rows × Cols nodes with uniform spacing, anchored at Origin.
// Rows advance along +Y, columns along +X.
type GridSpec struct {
	Rows, Cols int
	// Spacing is the node deployment distance D in meters (25 m in the
	// paper's evaluation).
	Spacing float64
	// Origin is the position of node (row 0, col 0).
	Origin Vec2
}

// Validate reports whether the spec describes a non-empty grid.
func (g GridSpec) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("geo: grid must have positive dimensions, got %dx%d", g.Rows, g.Cols)
	}
	if g.Spacing <= 0 {
		return fmt.Errorf("geo: grid spacing must be positive, got %g", g.Spacing)
	}
	return nil
}

// NumNodes returns the total number of grid positions.
func (g GridSpec) NumNodes() int { return g.Rows * g.Cols }

// Pos returns the position of the node at (row, col).
func (g GridSpec) Pos(row, col int) Vec2 {
	return Vec2{
		X: g.Origin.X + float64(col)*g.Spacing,
		Y: g.Origin.Y + float64(row)*g.Spacing,
	}
}

// Index returns the linear node index for (row, col), numbering row-major.
func (g GridSpec) Index(row, col int) int { return row*g.Cols + col }

// RowCol inverts Index.
func (g GridSpec) RowCol(idx int) (row, col int) {
	return idx / g.Cols, idx % g.Cols
}

// Positions returns the positions of all nodes in index order. It allocates
// a fresh slice on every call; hot setup paths that rebuild deployments per
// trial should reuse a buffer through PositionsInto instead.
func (g GridSpec) Positions() []Vec2 {
	return g.PositionsInto(nil)
}

// PositionsInto writes all node positions in index order into dst, growing
// it only if its capacity is insufficient, and returns the filled slice.
// A nil dst allocates; passing the previous return value back in makes
// repeated calls allocation-free.
func (g GridSpec) PositionsInto(dst []Vec2) []Vec2 {
	n := g.NumNodes()
	if cap(dst) < n {
		dst = make([]Vec2, 0, n)
	}
	dst = dst[:0]
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			dst = append(dst, g.Pos(r, c))
		}
	}
	return dst
}

// Center returns the centroid of the deployment.
func (g GridSpec) Center() Vec2 {
	return Vec2{
		X: g.Origin.X + float64(g.Cols-1)*g.Spacing/2,
		Y: g.Origin.Y + float64(g.Rows-1)*g.Spacing/2,
	}
}

// Bounds returns the axis-aligned bounding box (min, max) of the deployment.
func (g GridSpec) Bounds() (min, max Vec2) {
	min = g.Origin
	max = g.Pos(g.Rows-1, g.Cols-1)
	return min, max
}

// FitLine fits a least-squares directed line through the given points using
// principal-component orientation. At least one point is required; a single
// point yields a line along +X.
func FitLine(pts []Vec2) (Line, error) {
	return WeightedFitLine(pts, nil)
}

// WeightedFitLine fits a total-least-squares line with per-point weights
// (nil weights = uniform). Cluster heads use it to estimate a ship's travel
// line from report positions weighted by wake energy. Weights must be
// non-negative with a positive sum.
func WeightedFitLine(pts []Vec2, weights []float64) (Line, error) {
	if len(pts) == 0 {
		return Line{}, fmt.Errorf("geo: FitLine needs at least one point")
	}
	if weights != nil && len(weights) != len(pts) {
		return Line{}, fmt.Errorf("geo: %d weights for %d points", len(weights), len(pts))
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	var cx, cy, wsum float64
	for i, p := range pts {
		wi := w(i)
		if wi < 0 {
			return Line{}, fmt.Errorf("geo: negative weight %g", wi)
		}
		cx += wi * p.X
		cy += wi * p.Y
		wsum += wi
	}
	if wsum <= 0 {
		return Line{}, fmt.Errorf("geo: weights sum to %g", wsum)
	}
	c := Vec2{cx / wsum, cy / wsum}
	var sxx, sxy, syy float64
	for i, p := range pts {
		wi := w(i)
		dx, dy := p.X-c.X, p.Y-c.Y
		sxx += wi * dx * dx
		sxy += wi * dx * dy
		syy += wi * dy * dy
	}
	if sxx == 0 && syy == 0 {
		return NewLine(c, Vec2{1, 0}), nil
	}
	// Principal eigenvector of the 2x2 covariance matrix.
	// For [[sxx, sxy], [sxy, syy]] the largest eigenvalue is
	// λ = (sxx+syy)/2 + sqrt(((sxx-syy)/2)^2 + sxy^2).
	half := (sxx - syy) / 2
	lambda := (sxx+syy)/2 + math.Sqrt(half*half+sxy*sxy)
	var dir Vec2
	if sxy != 0 {
		dir = Vec2{lambda - syy, sxy}
	} else if sxx >= syy {
		dir = Vec2{1, 0}
	} else {
		dir = Vec2{0, 1}
	}
	return NewLine(c, dir), nil
}
