package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Arithmetic(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{-1, 2}
	if got := v.Add(w); got != (Vec2{2, 6}) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := v.Sub(w); got != (Vec2{4, 2}) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := v.Dot(w); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := v.Cross(w); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestVec2Unit(t *testing.T) {
	u := Vec2{3, 4}.Unit()
	if !almostEq(u.Norm(), 1, eps) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
	if z := (Vec2{}).Unit(); z != (Vec2{}) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestVec2Rotate(t *testing.T) {
	v := Vec2{1, 0}
	r := v.Rotate(math.Pi / 2)
	if !almostEq(r.X, 0, eps) || !almostEq(r.Y, 1, eps) {
		t.Errorf("Rotate 90° = %v, want (0,1)", r)
	}
	// Rotation preserves length (property check over a few samples).
	for _, a := range []float64{0.1, 1.3, -2.2, math.Pi} {
		w := Vec2{2.5, -7.1}.Rotate(a)
		if !almostEq(w.Norm(), Vec2{2.5, -7.1}.Norm(), 1e-9) {
			t.Errorf("rotation by %v changed norm", a)
		}
	}
}

func TestVec2RotateProperty(t *testing.T) {
	f := func(x, y, angle float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		// Constrain to a numerically sane domain.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		angle = math.Mod(angle, 2*math.Pi)
		v := Vec2{x, y}
		r := v.Rotate(angle).Rotate(-angle)
		tol := 1e-9 * (1 + v.Norm())
		return almostEq(r.X, v.X, tol) && almostEq(r.Y, v.Y, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineDistProject(t *testing.T) {
	l := NewLine(Vec2{0, 0}, Vec2{1, 0})
	if d := l.Dist(Vec2{5, 3}); !almostEq(d, 3, eps) {
		t.Errorf("Dist = %v, want 3", d)
	}
	if d := l.SignedDist(Vec2{5, 3}); !almostEq(d, 3, eps) {
		t.Errorf("SignedDist = %v, want +3", d)
	}
	if d := l.SignedDist(Vec2{5, -3}); !almostEq(d, -3, eps) {
		t.Errorf("SignedDist = %v, want -3", d)
	}
	if p := l.Project(Vec2{5, 3}); !almostEq(p, 5, eps) {
		t.Errorf("Project = %v, want 5", p)
	}
	if at := l.At(2); at != (Vec2{2, 0}) {
		t.Errorf("At(2) = %v, want (2,0)", at)
	}
}

func TestLineThrough(t *testing.T) {
	l := LineThrough(Vec2{1, 1}, Vec2{4, 5})
	if !almostEq(l.Dir.Norm(), 1, eps) {
		t.Errorf("Dir not unit: %v", l.Dir)
	}
	if d := l.Dist(Vec2{4, 5}); !almostEq(d, 0, eps) {
		t.Errorf("endpoint should lie on line, dist %v", d)
	}
}

func TestNewLineZeroDir(t *testing.T) {
	l := NewLine(Vec2{2, 3}, Vec2{})
	if l.Dir != (Vec2{1, 0}) {
		t.Errorf("zero-dir line Dir = %v, want +X", l.Dir)
	}
}

func TestDegConversions(t *testing.T) {
	if !almostEq(Deg(180), math.Pi, eps) {
		t.Errorf("Deg(180) = %v", Deg(180))
	}
	if !almostEq(ToDeg(math.Pi/2), 90, eps) {
		t.Errorf("ToDeg(π/2) = %v", ToDeg(math.Pi/2))
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, eps) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1000)
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi+eps {
			return false
		}
		// Same direction modulo 2π.
		s1, c1 := math.Sincos(a)
		s2, c2 := math.Sincos(n)
		return almostEq(s1, s2, 1e-6) && almostEq(c1, c2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleBetween(t *testing.T) {
	if a := AngleBetween(Vec2{1, 0}, Vec2{0, 1}); !almostEq(a, math.Pi/2, eps) {
		t.Errorf("AngleBetween = %v, want π/2", a)
	}
	if a := AngleBetween(Vec2{1, 0}, Vec2{-1, 0}); !almostEq(a, math.Pi, eps) {
		t.Errorf("AngleBetween = %v, want π", a)
	}
	if a := AngleBetween(Vec2{2, 2}, Vec2{5, 5}); !almostEq(a, 0, 1e-7) {
		t.Errorf("AngleBetween = %v, want 0", a)
	}
}

func TestKnots(t *testing.T) {
	if v := Knots(10); !almostEq(v, 5.14444, 1e-9) {
		t.Errorf("Knots(10) = %v", v)
	}
	if kn := ToKnots(Knots(16)); !almostEq(kn, 16, 1e-9) {
		t.Errorf("round trip = %v", kn)
	}
}

func TestGridSpec(t *testing.T) {
	g := GridSpec{Rows: 4, Cols: 5, Spacing: 25}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n := g.NumNodes(); n != 20 {
		t.Errorf("NumNodes = %d, want 20", n)
	}
	if p := g.Pos(2, 3); p != (Vec2{75, 50}) {
		t.Errorf("Pos(2,3) = %v, want (75,50)", p)
	}
	if i := g.Index(2, 3); i != 13 {
		t.Errorf("Index(2,3) = %d, want 13", i)
	}
	r, c := g.RowCol(13)
	if r != 2 || c != 3 {
		t.Errorf("RowCol(13) = (%d,%d), want (2,3)", r, c)
	}
	if got := len(g.Positions()); got != 20 {
		t.Errorf("Positions len = %d", got)
	}
	ctr := g.Center()
	if !almostEq(ctr.X, 50, eps) || !almostEq(ctr.Y, 37.5, eps) {
		t.Errorf("Center = %v", ctr)
	}
	min, max := g.Bounds()
	if min != (Vec2{0, 0}) || max != (Vec2{100, 75}) {
		t.Errorf("Bounds = %v %v", min, max)
	}
}

func TestGridSpecValidateErrors(t *testing.T) {
	bad := []GridSpec{
		{Rows: 0, Cols: 5, Spacing: 25},
		{Rows: 4, Cols: 0, Spacing: 25},
		{Rows: 4, Cols: 5, Spacing: 0},
		{Rows: -1, Cols: 5, Spacing: 25},
		{Rows: 4, Cols: 5, Spacing: -3},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, g)
		}
	}
}

func TestGridIndexRoundTripProperty(t *testing.T) {
	g := GridSpec{Rows: 7, Cols: 9, Spacing: 10}
	f := func(idx uint16) bool {
		i := int(idx) % g.NumNodes()
		r, c := g.RowCol(i)
		return g.Index(r, c) == i && r >= 0 && r < g.Rows && c >= 0 && c < g.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLineExact(t *testing.T) {
	// Points exactly on y = 2x + 1.
	pts := []Vec2{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	l, err := FitLine(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if d := l.Dist(p); d > 1e-9 {
			t.Errorf("point %v at distance %v from fit", p, d)
		}
	}
}

func TestFitLineVertical(t *testing.T) {
	pts := []Vec2{{5, 0}, {5, 1}, {5, 2}}
	l, err := FitLine(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if d := l.Dist(p); d > 1e-9 {
			t.Errorf("point %v at distance %v from vertical fit", p, d)
		}
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine(nil); err == nil {
		t.Error("expected error for empty input")
	}
	l, err := FitLine([]Vec2{{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Origin != (Vec2{3, 4}) {
		t.Errorf("single-point fit origin = %v", l.Origin)
	}
}

func TestFitLineNoisy(t *testing.T) {
	// Noisy samples around y = -0.5x + 10; the fitted direction should be
	// within a few degrees of the true direction.
	truth := NewLine(Vec2{0, 10}, Vec2{1, -0.5})
	pts := []Vec2{
		{0, 10.1}, {2, 8.95}, {4, 8.1}, {6, 6.9}, {8, 6.05}, {10, 4.9},
	}
	l, err := FitLine(pts)
	if err != nil {
		t.Fatal(err)
	}
	a := AngleBetween(l.Dir, truth.Dir)
	if a > math.Pi/2 {
		a = math.Pi - a // direction sign is arbitrary
	}
	if a > Deg(3) {
		t.Errorf("fit direction off by %v°", ToDeg(a))
	}
}
