// Package geo provides the planar geometry primitives used throughout SID:
// positions of buoys on the sea surface, sailing lines of ships, angles, and
// grid deployments.
//
// The coordinate system is a local tangent plane in meters. X grows east, Y
// grows north. Angles are in radians unless a name says otherwise, measured
// counter-clockwise from the +X axis.
package geo

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement on the sea surface, in meters.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z) component of the cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated counter-clockwise by angle radians.
func (v Vec2) Rotate(angle float64) Vec2 {
	s, c := math.Sincos(angle)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the direction of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }

// Line is an infinite directed line: the set of points Origin + t·Dir.
// Dir is kept unit length by the constructor.
type Line struct {
	Origin Vec2
	Dir    Vec2
}

// NewLine returns the directed line through origin with direction dir.
// A zero dir yields a line with direction +X.
func NewLine(origin, dir Vec2) Line {
	u := dir.Unit()
	if u == (Vec2{}) {
		u = Vec2{1, 0}
	}
	return Line{Origin: origin, Dir: u}
}

// LineThrough returns the directed line from a toward b.
func LineThrough(a, b Vec2) Line { return NewLine(a, b.Sub(a)) }

// Dist returns the perpendicular distance from p to the line.
func (l Line) Dist(p Vec2) float64 {
	return math.Abs(l.Dir.Cross(p.Sub(l.Origin)))
}

// SignedDist returns the signed perpendicular distance from p to the line:
// positive if p lies to the left of the direction of travel.
func (l Line) SignedDist(p Vec2) float64 {
	return l.Dir.Cross(p.Sub(l.Origin))
}

// Project returns the scalar position of p's projection along the line,
// i.e. t such that Origin + t·Dir is the closest point on the line to p.
func (l Line) Project(p Vec2) float64 {
	return l.Dir.Dot(p.Sub(l.Origin))
}

// At returns the point Origin + t·Dir.
func (l Line) At(t float64) Vec2 { return l.Origin.Add(l.Dir.Scale(t)) }

// Angle returns the direction of the line in radians in (-π, π].
func (l Line) Angle() float64 { return l.Dir.Angle() }

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// ToDeg converts radians to degrees.
func ToDeg(r float64) float64 { return r * 180 / math.Pi }

// NormalizeAngle reduces an angle to (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a <= -math.Pi:
		a += 2 * math.Pi
	case a > math.Pi:
		a -= 2 * math.Pi
	}
	return a
}

// AngleBetween returns the unsigned angle between two directions in [0, π].
func AngleBetween(a, b Vec2) float64 {
	ua, ub := a.Unit(), b.Unit()
	d := ua.Dot(ub)
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// Knots converts a speed in knots to meters per second.
func Knots(kn float64) float64 { return kn * 0.514444 }

// ToKnots converts a speed in meters per second to knots.
func ToKnots(ms float64) float64 { return ms / 0.514444 }
