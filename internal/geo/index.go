package geo

import (
	"math"
	"sort"
)

// Index is a uniform-bucket spatial index over a fixed set of points (buoy
// deployment positions). It exists so large fields can answer "which nodes
// could a wake front possibly touch right now?" without scanning every node:
// the wake layer turns its analytic envelope into an axis-aligned region and
// only the nodes bucketed inside it pay even the block-level bound check.
//
// The index is immutable after construction and safe for concurrent readers.
// All query results are node indices into the constructing slice, sorted
// ascending, so downstream iteration order — and therefore every
// determinism contract built on it — is independent of bucket layout.
type Index struct {
	pts        []Vec2
	min, max   Vec2 // bounding box of the indexed points
	cell       float64
	rows, cols int
	// buckets holds, per cell (row-major), the indices of the points inside
	// it in ascending order. Cells are half-open [min, min+cell) except the
	// last row/column, which absorbs points on the outer boundary.
	buckets [][]int32
}

// autoCellTarget is the mean points-per-bucket the auto-sized cell aims for.
// Around 16 keeps bucket walks short while the per-cell predicate (one box
// bound evaluation) amortizes over enough nodes to be worth paying.
const autoCellTarget = 16

// AutoCell returns a reasonable uniform cell size for the given points:
// buckets average about autoCellTarget points each. Degenerate inputs
// (fewer than two points, or all points collinear on an axis) get a cell of
// 1 m, which collapses the index to a handful of buckets and keeps every
// query correct if unexciting.
func AutoCell(pts []Vec2) float64 {
	if len(pts) < 2 {
		return 1
	}
	min, max := pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	area := (max.X - min.X) * (max.Y - min.Y)
	if area <= 0 {
		return 1
	}
	c := math.Sqrt(area * autoCellTarget / float64(len(pts)))
	if c <= 0 || math.IsNaN(c) {
		return 1
	}
	return c
}

// NewIndex builds a uniform-bucket index over pts. cell <= 0 selects an
// automatic size via AutoCell. The points are copied; the argument slice is
// not retained.
func NewIndex(pts []Vec2, cell float64) *Index {
	if cell <= 0 {
		cell = AutoCell(pts)
	}
	ix := &Index{cell: cell, pts: append([]Vec2(nil), pts...)}
	if len(pts) == 0 {
		return ix
	}
	ix.min, ix.max = pts[0], pts[0]
	for _, p := range pts[1:] {
		ix.min.X = math.Min(ix.min.X, p.X)
		ix.min.Y = math.Min(ix.min.Y, p.Y)
		ix.max.X = math.Max(ix.max.X, p.X)
		ix.max.Y = math.Max(ix.max.Y, p.Y)
	}
	ix.cols = int((ix.max.X-ix.min.X)/cell) + 1
	ix.rows = int((ix.max.Y-ix.min.Y)/cell) + 1
	ix.buckets = make([][]int32, ix.rows*ix.cols)
	for i, p := range pts {
		// Clamp so boundary points (exactly max.X / max.Y) land in the last
		// row/column instead of one past it.
		c := ix.clampCol(int((p.X - ix.min.X) / cell))
		r := ix.clampRow(int((p.Y - ix.min.Y) / cell))
		b := r*ix.cols + c
		ix.buckets[b] = append(ix.buckets[b], int32(i))
	}
	return ix
}

func (ix *Index) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= ix.cols {
		return ix.cols - 1
	}
	return c
}

func (ix *Index) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= ix.rows {
		return ix.rows - 1
	}
	return r
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// At returns the indexed position of point i.
func (ix *Index) At(i int) Vec2 { return ix.pts[i] }

// CellSize returns the bucket edge length in meters.
func (ix *Index) CellSize() float64 { return ix.cell }

// Cells returns the bucket grid dimensions (rows, cols).
func (ix *Index) Cells() (rows, cols int) { return ix.rows, ix.cols }

// cellBox returns the axis-aligned rectangle covered by cell (r, c). Points
// clamped inward from the outer boundary still lie inside it because the
// grid spans the full point bounding box.
func (ix *Index) cellBox(r, c int) (min, max Vec2) {
	min = Vec2{X: ix.min.X + float64(c)*ix.cell, Y: ix.min.Y + float64(r)*ix.cell}
	max = Vec2{X: min.X + ix.cell, Y: min.Y + ix.cell}
	return min, max
}

// QueryBox appends to out the indices of every point p with
// min.X <= p.X <= max.X and min.Y <= p.Y <= max.Y (inclusive on all edges)
// and returns the extended slice sorted ascending. Passing a reused out
// slice (sliced to [:0]) makes repeated queries allocation-free once grown.
func (ix *Index) QueryBox(min, max Vec2, out []int) []int {
	base := len(out)
	if len(ix.pts) == 0 || min.X > max.X || min.Y > max.Y {
		return out
	}
	if max.X < ix.min.X || min.X > ix.max.X || max.Y < ix.min.Y || min.Y > ix.max.Y {
		return out
	}
	c0 := ix.clampCol(int(math.Floor((min.X - ix.min.X) / ix.cell)))
	c1 := ix.clampCol(int(math.Floor((max.X - ix.min.X) / ix.cell)))
	r0 := ix.clampRow(int(math.Floor((min.Y - ix.min.Y) / ix.cell)))
	r1 := ix.clampRow(int(math.Floor((max.Y - ix.min.Y) / ix.cell)))
	for r := r0; r <= r1; r++ {
		rim := r == r0 || r == r1
		for c := c0; c <= c1; c++ {
			b := ix.buckets[r*ix.cols+c]
			if len(b) == 0 {
				continue
			}
			// Interior cells lie strictly inside the query box, so their
			// points are all hits; only rim cells need the per-point test.
			if !rim && c > c0 && c < c1 {
				for _, i := range b {
					out = append(out, int(i))
				}
				continue
			}
			for _, i := range b {
				p := ix.pts[i]
				if p.X >= min.X && p.X <= max.X && p.Y >= min.Y && p.Y <= max.Y {
					out = append(out, int(i))
				}
			}
		}
	}
	sort.Ints(out[base:])
	return out
}

// QueryRegion walks every non-empty bucket, calls keep with the bucket's
// rectangle, and appends the bucket's point indices to out when keep returns
// true. The result is sorted ascending. keep must be conservative: if any
// point of interest could lie inside the rectangle, it must return true.
//
// This is the wake-culling workhorse: keep evaluates an analytic box bound
// over the cell rectangle (inflated by the caller for drift), so whole
// buckets of provably-quiet nodes are skipped with a single evaluation.
func (ix *Index) QueryRegion(keep func(cellMin, cellMax Vec2) bool, out []int) []int {
	base := len(out)
	for r := 0; r < ix.rows; r++ {
		for c := 0; c < ix.cols; c++ {
			b := ix.buckets[r*ix.cols+c]
			if len(b) == 0 {
				continue
			}
			cmin, cmax := ix.cellBox(r, c)
			if !keep(cmin, cmax) {
				continue
			}
			for _, i := range b {
				out = append(out, int(i))
			}
		}
	}
	sort.Ints(out[base:])
	return out
}
