// Package stats provides the streaming statistics SID's node-level detector
// is built on: batch mean/standard deviation over a sampling window
// (eq. 4 in the paper), exponentially-weighted moving statistics with
// forgetting factors β₁, β₂ (eq. 5), numerically stable online moments
// (Welford), and small descriptive-statistics helpers used by the
// evaluation harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs
// (the paper's eq. 4 uses the population form: (1/u)·Σ(aᵢ−m)²).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd computes mean and population standard deviation in one pass,
// matching the paper's eq. (4) definitions of mΔt and dΔt.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// MinMax returns the smallest and largest values in xs.
// It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
// It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Welford accumulates mean and variance online with numerical stability.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running moments.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples observed.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the running sample (Bessel-corrected) variance.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Moving tracks the paper's environment-adaptive statistics (eq. 5):
//
//	m′_T = β₁·m′_T + mΔt·(1−β₁)
//	d′_T = β₂·d′_T + dΔt·(1−β₂)
//
// where (mΔt, dΔt) are the batch statistics of each completed sampling
// window. β₁ and β₂ are empirically 0.99 in the paper; the first window
// initializes the moving values directly so the threshold is usable
// immediately after the Initialization procedure.
type Moving struct {
	Beta1, Beta2 float64

	init bool
	m    float64
	d    float64
}

// NewMoving returns a Moving with the given forgetting factors. Factors
// outside (0, 1) are rejected.
func NewMoving(beta1, beta2 float64) (*Moving, error) {
	if beta1 <= 0 || beta1 >= 1 || beta2 <= 0 || beta2 >= 1 {
		return nil, fmt.Errorf("stats: betas must be in (0,1), got %g, %g", beta1, beta2)
	}
	return &Moving{Beta1: beta1, Beta2: beta2}, nil
}

// Update folds one window's batch statistics into the moving statistics.
func (mv *Moving) Update(mean, std float64) {
	if !mv.init {
		mv.m, mv.d = mean, std
		mv.init = true
		return
	}
	mv.m = mv.Beta1*mv.m + mean*(1-mv.Beta1)
	mv.d = mv.Beta2*mv.d + std*(1-mv.Beta2)
}

// Reinit discards the history and restarts the moving statistics from the
// given values (used when the environment has demonstrably shifted, e.g. a
// sustained sea-state change that the crossing-gated updates cannot track).
func (mv *Moving) Reinit(mean, std float64) {
	mv.m, mv.d = mean, std
	mv.init = true
}

// Initialized reports whether at least one window has been folded in.
func (mv *Moving) Initialized() bool { return mv.init }

// Mean returns m′_T, the moving average.
func (mv *Moving) Mean() float64 { return mv.m }

// Std returns d′_T, the moving standard deviation.
func (mv *Moving) Std() float64 { return mv.d }

// Histogram is a fixed-bin histogram over [Min, Max). Samples outside the
// range are clamped into the first/last bin so totals are preserved.
type Histogram struct {
	Min, Max float64
	Counts   []int
	n        int
}

// NewHistogram creates a histogram with the given number of bins. bins must
// be positive and max > min.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: need max > min, got [%g, %g)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.n++
}

// N returns the total number of recorded samples.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}
