package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, d := MeanStd(xs)
	if !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if !almostEq(d, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", d)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if d := StdDev(nil); d != 0 {
		t.Errorf("StdDev(nil) = %v", d)
	}
	if r := RMS(nil); r != 0 {
		t.Errorf("RMS(nil) = %v", r)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %v, %v", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEq(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestRMS(t *testing.T) {
	if r := RMS([]float64{3, 4, 3, 4}); !almostEq(r, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", r)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2.25, 3.75, 0, 10, -7.5, 2.125}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean = %v, want %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Std(), StdDev(xs), 1e-12) {
		t.Errorf("Std = %v, want %v", w.Std(), StdDev(xs))
	}
}

func TestWelfordSampleVar(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.SampleVar() != 0 {
		t.Error("empty Welford should report zero variance")
	}
	w.Add(5)
	if w.SampleVar() != 0 {
		t.Error("single-sample SampleVar should be 0")
	}
	w.Add(7)
	if !almostEq(w.SampleVar(), 2, 1e-12) {
		t.Errorf("SampleVar = %v, want 2", w.SampleVar())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWelfordProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		scale := 1 + math.Abs(Mean(xs)) + StdDev(xs)
		return almostEq(w.Mean(), Mean(xs), 1e-8*scale) &&
			almostEq(w.Std(), StdDev(xs), 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMovingValidation(t *testing.T) {
	for _, pair := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}, {-1, 0.5}, {0.5, 2}} {
		if _, err := NewMoving(pair[0], pair[1]); err == nil {
			t.Errorf("expected error for betas %v", pair)
		}
	}
	if _, err := NewMoving(0.99, 0.99); err != nil {
		t.Errorf("valid betas rejected: %v", err)
	}
}

func TestMovingFirstWindowInitializes(t *testing.T) {
	mv, err := NewMoving(0.99, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Initialized() {
		t.Error("should not be initialized before first update")
	}
	mv.Update(10, 2)
	if !mv.Initialized() {
		t.Error("should be initialized after first update")
	}
	if mv.Mean() != 10 || mv.Std() != 2 {
		t.Errorf("first window should initialize directly: %v, %v", mv.Mean(), mv.Std())
	}
}

func TestMovingEWMA(t *testing.T) {
	mv, _ := NewMoving(0.9, 0.8)
	mv.Update(10, 2)
	mv.Update(20, 4)
	if !almostEq(mv.Mean(), 0.9*10+0.1*20, 1e-12) {
		t.Errorf("Mean = %v", mv.Mean())
	}
	if !almostEq(mv.Std(), 0.8*2+0.2*4, 1e-12) {
		t.Errorf("Std = %v", mv.Std())
	}
}

func TestMovingReinit(t *testing.T) {
	mv, _ := NewMoving(0.99, 0.99)
	mv.Update(1, 0.1)
	mv.Reinit(50, 5)
	if mv.Mean() != 50 || mv.Std() != 5 {
		t.Errorf("Reinit: mean=%v std=%v", mv.Mean(), mv.Std())
	}
	if !mv.Initialized() {
		t.Error("Reinit should mark initialized")
	}
	// A fresh Moving can also be Reinit'd directly.
	mv2, _ := NewMoving(0.99, 0.99)
	mv2.Reinit(3, 1)
	if !mv2.Initialized() || mv2.Mean() != 3 {
		t.Error("Reinit on fresh Moving failed")
	}
}

func TestMovingConvergesToStationary(t *testing.T) {
	// Feeding a constant (m, d) forever must converge to exactly that.
	mv, _ := NewMoving(0.99, 0.99)
	mv.Update(5, 1) // seed with something else first
	for i := 0; i < 3000; i++ {
		mv.Update(42, 7)
	}
	if !almostEq(mv.Mean(), 42, 1e-6) || !almostEq(mv.Std(), 7, 1e-6) {
		t.Errorf("did not converge: mean=%v std=%v", mv.Mean(), mv.Std())
	}
}

func TestMovingTracksSlowChange(t *testing.T) {
	// The adaptive threshold's purpose: follow a slowly rising sea state.
	mv, _ := NewMoving(0.99, 0.99)
	mv.Update(1, 0.1)
	var last float64
	for i := 0; i < 2000; i++ {
		target := 1 + float64(i)*0.001
		mv.Update(target, 0.1)
		last = target
	}
	if math.Abs(mv.Mean()-last) > 0.2 {
		t.Errorf("moving mean lagging too far: %v vs %v", mv.Mean(), last)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 3.5, 9.9, -5, 15} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	// -5 clamps into bin 0; 15 clamps into bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 15
		t.Errorf("bin4 = %d, want 2", h.Counts[4])
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almostEq(h.Mode(), 1, 1e-12) {
		t.Errorf("Mode = %v", h.Mode())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("expected error for empty range")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Error("expected error for inverted range")
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	h, _ := NewHistogram(-1, 1, 8)
	for i := 0; i < 1000; i++ {
		h.Add(math.Sin(float64(i)) * 2) // half the values out of range
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 1000 || h.N() != 1000 {
		t.Errorf("counts lost: total=%d N=%d", total, h.N())
	}
}
