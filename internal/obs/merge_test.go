package obs

import "testing"

func snapWithHist(name string, bounds []float64, buckets []int64, count int64, sum float64) Snapshot {
	return Snapshot{Histograms: []HistogramValue{{Name: name, Bounds: bounds, Buckets: buckets, Count: count, Sum: sum}}}
}

func counterOf(s Snapshot, name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{
		Counters: []CounterValue{{Name: "c", Value: 3}},
		Gauges:   []GaugeValue{{Name: "g", Value: 2}},
	}
	b := Snapshot{
		Counters: []CounterValue{{Name: "c", Value: 4}},
		Gauges:   []GaugeValue{{Name: "g", Value: 7}},
	}
	m := MergeSnapshots(a, b)
	if v, _ := counterOf(m, "c"); v != 7 {
		t.Errorf("counter sum = %d, want 7", v)
	}
	if len(m.Gauges) != 1 || m.Gauges[0].Value != 7 {
		t.Errorf("gauge max = %+v", m.Gauges)
	}
	if _, ok := counterOf(m, "merge.dropped"); ok {
		t.Error("merge.dropped present without any drop")
	}
}

func TestMergeSnapshotsHistogramDrops(t *testing.T) {
	bounds := []float64{1, 2}
	for _, tc := range []struct {
		name        string
		snaps       []Snapshot
		wantDropped int64
		wantCount   int64
	}{
		{
			name: "identical bounds merge bucket-wise",
			snaps: []Snapshot{
				snapWithHist("h", bounds, []int64{1, 0, 2}, 3, 5),
				snapWithHist("h", bounds, []int64{0, 2, 1}, 3, 6),
			},
			wantDropped: 0,
			wantCount:   6,
		},
		{
			name: "mismatched values drop",
			snaps: []Snapshot{
				snapWithHist("h", bounds, []int64{1, 0, 0}, 1, 1),
				snapWithHist("h", []float64{1, 5}, []int64{0, 1, 0}, 1, 2),
			},
			wantDropped: 1,
			wantCount:   1,
		},
		{
			name: "mismatched length drop",
			snaps: []Snapshot{
				snapWithHist("h", bounds, []int64{1, 0, 0}, 1, 1),
				snapWithHist("h", []float64{1}, []int64{0, 1}, 1, 2),
				snapWithHist("h", []float64{1, 2, 3}, []int64{0, 0, 1, 0}, 1, 3),
			},
			wantDropped: 2,
			wantCount:   1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := MergeSnapshots(tc.snaps...)
			got, ok := counterOf(m, "merge.dropped")
			if tc.wantDropped == 0 && ok {
				t.Errorf("merge.dropped = %d, want absent", got)
			}
			if tc.wantDropped > 0 && got != tc.wantDropped {
				t.Errorf("merge.dropped = %d, want %d", got, tc.wantDropped)
			}
			if len(m.Histograms) != 1 {
				t.Fatalf("histograms = %d, want 1", len(m.Histograms))
			}
			if m.Histograms[0].Count != tc.wantCount {
				t.Errorf("count = %d, want %d (first shape wins)", m.Histograms[0].Count, tc.wantCount)
			}
		})
	}
}
