// Package obs is the SID runtime's zero-dependency observability layer:
// a typed metrics registry (counters, gauges, fixed-bucket histograms),
// a structured event journal keyed by simulation time, and span-style
// wall-clock stage profiling.
//
// The three concerns are deliberately separated by determinism class:
//
//   - The registry holds monotonic counters and point-in-time gauges whose
//     values are functions of the simulation alone — identical for every
//     run of the same seed, whatever the worker count.
//   - The journal records what happened and when in *simulation* time.
//     Events are emitted only from the scheduler's serial phases, so a
//     journal serialized to JSONL is byte-identical across worker counts.
//   - The profiler measures wall-clock durations, which are inherently
//     nondeterministic; they live strictly outside the journal so that
//     enabling profiling can never perturb a pinned trace.
//
// A Collector bundles the three. The zero-cost contract: a runtime given
// no collector creates a registry-only one (atomic increments, no
// allocation), journal emission sites guard on Journaling() before
// building any payload, and profiling sites guard on a nil Profiler —
// so the disabled paths add no allocations to the hot loops.
package obs

// Collector bundles the observability sinks a runtime writes to. Configure
// it (journal, profiler) before handing it to a runtime: the runtime may
// cache the profiler at construction.
type Collector struct {
	registry *Registry
	journal  *Journal
	profiler *Profiler
	tracer   *Tracer
}

// New returns a collector with a fresh registry and no journal or
// profiler — the always-on, allocation-free configuration.
func New() *Collector {
	return &Collector{registry: NewRegistry()}
}

// Registry returns the metrics registry (nil only for a nil collector).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.registry
}

// SetJournal attaches (or, with nil, detaches) the event journal.
func (c *Collector) SetJournal(j *Journal) { c.journal = j }

// Journal returns the attached journal, or nil.
func (c *Collector) Journal() *Journal {
	if c == nil {
		return nil
	}
	return c.journal
}

// SetProfiler attaches (or, with nil, detaches) the stage profiler.
// Attach before constructing the runtime that should use it.
func (c *Collector) SetProfiler(p *Profiler) { c.profiler = p }

// Profiler returns the attached profiler, or nil.
func (c *Collector) Profiler() *Profiler {
	if c == nil {
		return nil
	}
	return c.profiler
}

// SetTracer attaches (or, with nil, detaches) the detection trace
// assembler. Attach before the run starts: traces reference wake-genesis
// marks recorded at ship-add time.
func (c *Collector) SetTracer(t *Tracer) { c.tracer = t }

// Tracer returns the attached tracer, or nil.
func (c *Collector) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Tracing reports whether detection spans should be recorded. Emission
// sites on hot paths must guard on it so the disabled path allocates
// nothing, mirroring Journaling().
func (c *Collector) Tracing() bool { return c != nil && c.tracer != nil }

// Journaling reports whether events should be emitted. Emission sites must
// guard on it before building a payload so the disabled path allocates
// nothing.
func (c *Collector) Journaling() bool { return c != nil && c.journal != nil }

// Emit records one journal event at simulation time t. It is a no-op
// without a journal, but callers on hot paths should still guard with
// Journaling() — constructing data already costs an allocation.
func (c *Collector) Emit(t float64, kind string, data any) {
	if c.Journaling() {
		c.journal.Emit(t, kind, data)
	}
}
