package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegisterDebugPProfGating(t *testing.T) {
	for _, tc := range []struct {
		name       string
		pprof      bool
		wantStatus int
	}{
		{"pprof off", false, http.StatusNotFound},
		{"pprof on", true, http.StatusOK},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mux := http.NewServeMux()
			RegisterDebug(mux, tc.pprof)
			srv := httptest.NewServer(mux)
			defer srv.Close()

			resp, err := http.Get(srv.URL + "/debug/vars")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/debug/vars status = %d, want 200 regardless of pprof", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("/debug/vars content type = %q", ct)
			}

			for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != tc.wantStatus {
					t.Errorf("%s status = %d, want %d", path, resp.StatusCode, tc.wantStatus)
				}
			}
		})
	}
}
