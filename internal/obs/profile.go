package obs

import (
	"sort"
	"sync"
	"time"
)

// Profiler aggregates wall-clock spans per pipeline stage. Durations are
// real time and therefore nondeterministic; they are kept strictly apart
// from the journal so profiling can never perturb a pinned trace. The SID
// runtime opens spans only when a profiler is attached — a nil profiler
// costs a pointer test per stage and nothing else.
type Profiler struct {
	mu     sync.Mutex
	stages map[string]*stageAgg
}

type stageAgg struct {
	count int64
	nanos int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{stages: make(map[string]*stageAgg)}
}

// Observe folds one measured duration into a stage's aggregate.
func (p *Profiler) Observe(stage string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.stages[stage]
	if !ok {
		a = &stageAgg{}
		p.stages[stage] = a
	}
	a.count++
	a.nanos += d.Nanoseconds()
}

var noopStop = func() {}

// Start opens a span; call the returned func to close it. On a nil
// profiler it returns a shared no-op (no allocation, no clock read).
func (p *Profiler) Start(stage string) func() {
	if p == nil {
		return noopStop
	}
	t0 := time.Now()
	return func() { p.Observe(stage, time.Since(t0)) }
}

// StageStat is one stage's aggregate in a profiler snapshot.
type StageStat struct {
	// Stage names the pipeline stage (e.g. "synthesis", "detect").
	Stage string `json:"stage"`
	// Count is the number of spans observed.
	Count int64 `json:"count"`
	// TotalNs is the summed wall-clock nanoseconds across spans.
	TotalNs int64 `json:"total_ns"`
}

// NsPerOp returns the mean span duration in nanoseconds.
func (s StageStat) NsPerOp() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.TotalNs) / float64(s.Count)
}

// Snapshot returns the per-stage aggregates sorted by stage name.
func (p *Profiler) Snapshot() []StageStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageStat, 0, len(p.stages))
	for name, a := range p.stages {
		out = append(out, StageStat{Stage: name, Count: a.count, TotalNs: a.nanos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
