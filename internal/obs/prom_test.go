package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"sid.reports_sent", "sid_reports_sent"},
		{"serve.slo.ingest_confirm_ms", "serve_slo_ingest_confirm_ms"},
		{"9lives", "_9lives"},
		{"ok_name:sub", "ok_name:sub"},
		{"sp ace", "sp_ace"},
	} {
		if got := PromName(tc.in); got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sid.reports").Add(12)
	reg.Gauge("tree.depth").Set(3.5)
	h := reg.Histogram("serve.slo.detection_e2e_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE sid_reports counter\nsid_reports 12\n",
		"# TYPE tree_depth gauge\ntree_depth 3.5\n",
		"# TYPE serve_slo_detection_e2e_ms histogram\n",
		`serve_slo_detection_e2e_ms_bucket{le="1"} 1`,
		`serve_slo_detection_e2e_ms_bucket{le="10"} 2`,
		`serve_slo_detection_e2e_ms_bucket{le="100"} 3`,
		`serve_slo_detection_e2e_ms_bucket{le="+Inf"} 4`,
		"serve_slo_detection_e2e_ms_sum 555.5",
		"serve_slo_detection_e2e_ms_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"no type", "orphan 1\n"},
		{"bad name", "# TYPE bad.dot counter\nbad.dot 1\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"unknown type", "# TYPE a summary\na 1\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 1\n"},
		{"histogram missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
	} {
		if err := ValidatePrometheus([]byte(tc.in)); err == nil {
			t.Errorf("%s: lint accepted:\n%s", tc.name, tc.in)
		}
	}
	if err := ValidatePrometheus(nil); err != nil {
		t.Errorf("empty exposition should lint clean: %v", err)
	}
}
