package obs

import (
	"sync/atomic"
	"testing"
)

// The registry primitives sit on the per-sample hot path of every traced
// deployment, so contention matters: these benchmarks hammer one metric
// from all procs, the worst case for the atomics.

func BenchmarkCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("lost increments: %d of %d", c.Value(), b.N)
	}
}

func BenchmarkGaugeParallel(b *testing.B) {
	g := NewRegistry().Gauge("bench.gauge")
	b.RunParallel(func(pb *testing.PB) {
		var i float64
		for pb.Next() {
			i++
			g.Set(i)
		}
	})
	if g.Value() == 0 {
		b.Fatal("gauge never set")
	}
}

func BenchmarkHistogramParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist", []float64{1, 2, 5, 10, 100})
	var n atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(float64(n.Add(1) % 128))
		}
	})
}
