package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: named counters, gauges, and
// fixed-bucket histograms. Lookups are mutex-guarded get-or-create; hot
// paths resolve their handles once and then increment lock-free, so a
// registry adds two atomic adds to a counted event and nothing else.
//
// All registered values are functions of the simulation alone (no wall
// clock), so snapshots are deterministic for a given seed.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonic event count. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative only to correct a miscount; counters are
// conceptually monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float value. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation v lands in the
// first bucket whose upper bound is ≥ v, or the overflow bucket past the
// last bound. Observations are not hot-path events in SID (per-evaluation,
// per-report), so a small mutex keeps count/sum/bucket updates coherent.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; len(buckets) = len(bounds)+1
	buckets []int64
	count   int64
	sum     float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.count++
	h.sum += v
}

// Counter returns the counter registered under name, creating it on first
// use. Resolve handles once outside hot loops.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending upper bounds on first use (later calls may pass nil
// bounds to mean "whatever it was created with"). It panics on unsorted
// bounds — a registration-time programming error, not a runtime condition.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if ok {
		return h
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
	}
	h = &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Buckets[i] counts
// observations ≤ Bounds[i]; the final bucket is the overflow past the last
// bound.
type HistogramValue struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name so its JSON form is deterministic.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. Safe to call while the
// simulation runs, though mid-event snapshots may catch a half-updated
// multi-metric invariant (each individual metric is coherent).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:    name,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]int64(nil), h.buckets...),
			Count:   h.count,
			Sum:     h.sum,
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// MarshalJSON renders the snapshot (fields already sorted by Snapshot).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
