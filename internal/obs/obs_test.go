package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRegistryCounters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("a.count") != c {
		t.Error("Counter not idempotent per name")
	}
	g := reg.Gauge("a.gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1, 1.5, 2.5, 10} {
		h.Observe(v)
	}
	s := reg.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	// 0.5 and 1 land in ≤1; 1.5 in ≤2; 2.5 in ≤3; 10 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hv.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (full: %v)", i, hv.Buckets[i], w, hv.Buckets)
		}
	}
	if hv.Count != 5 || hv.Sum != 15.5 {
		t.Errorf("count/sum = %d/%g, want 5/15.5", hv.Count, hv.Sum)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		// Register in different orders; snapshot must sort.
		names := []string{"z", "m", "a", "k"}
		for _, n := range names {
			reg.Counter(n).Add(int64(len(n)))
		}
		reg.Gauge("g2").Set(2)
		reg.Gauge("g1").Set(1)
		return reg
	}
	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot JSON not deterministic:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"name":"a"`) {
		t.Errorf("unexpected snapshot: %s", a)
	}
}

func TestJournalRingBounded(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Emit(float64(i), "k", nil)
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(evs))
	}
	for i, e := range evs {
		if want := float64(i + 2); e.T != want {
			t.Errorf("event[%d].T = %g, want %g", i, e.T, want)
		}
	}
	if j.Total() != 5 {
		t.Errorf("total = %d, want 5", j.Total())
	}
}

func TestJournalSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(2)
	j.SetSink(&buf)
	j.Emit(1.5, KindNodeReport, NodeReport{Node: 3, Row: 1, Onset: 10, Energy: 2.5, AF: 0.7})
	j.Emit(2.5, KindClusterSetup, ClusterSetup{Head: 3, Deadline: 92.5})
	j.Emit(3.5, "x", nil) // evicts the first from the ring, not the sink
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	raws, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != 3 {
		t.Fatalf("sink lines = %d, want 3", len(raws))
	}
	if raws[0].Kind != KindNodeReport || raws[0].T != 1.5 {
		t.Errorf("line 0 = %+v", raws[0])
	}
	var nr NodeReport
	if err := json.Unmarshal(raws[0].Data, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.Node != 3 || nr.AF != 0.7 {
		t.Errorf("payload = %+v", nr)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.after--
	return len(p), nil
}

func TestJournalSinkErrorSticky(t *testing.T) {
	j := NewJournal(4)
	j.SetSink(&failWriter{after: 1})
	j.Emit(1, "a", nil)
	j.Emit(2, "b", nil)
	j.Emit(3, "c", nil)
	if j.Err() == nil {
		t.Fatal("want sink error")
	}
	if got := len(j.Events()); got != 3 {
		t.Errorf("ring kept %d events, want 3 despite sink failure", got)
	}
}

func TestCollectorNilSafety(t *testing.T) {
	var c *Collector
	if c.Journaling() {
		t.Error("nil collector journaling")
	}
	c.Emit(1, "k", nil) // must not panic
	if c.Registry() != nil || c.Journal() != nil || c.Profiler() != nil {
		t.Error("nil collector returned non-nil parts")
	}
	var p *Profiler
	p.Start("x")() // no-op
	p.Observe("x", time.Second)
	if p.Snapshot() != nil {
		t.Error("nil profiler snapshot not nil")
	}
}

func TestProfiler(t *testing.T) {
	p := NewProfiler()
	p.Observe("detect", 10*time.Millisecond)
	p.Observe("detect", 30*time.Millisecond)
	p.Observe("cluster", 5*time.Millisecond)
	s := p.Snapshot()
	if len(s) != 2 {
		t.Fatalf("stages = %d, want 2", len(s))
	}
	// Sorted: cluster before detect.
	if s[0].Stage != "cluster" || s[1].Stage != "detect" {
		t.Errorf("order = %v", s)
	}
	if s[1].Count != 2 || s[1].TotalNs != int64(40*time.Millisecond) {
		t.Errorf("detect agg = %+v", s[1])
	}
	if got := s[1].NsPerOp(); got != float64(20*time.Millisecond) {
		t.Errorf("ns/op = %g", got)
	}
	stop := p.Start("speed")
	stop()
	if s := p.Snapshot(); len(s) != 3 || s[2].Count != 1 {
		t.Errorf("after span: %+v", s)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.test").Add(7)
	srv, err := Serve("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "serve.test") {
		t.Errorf("/debug/vars missing registry snapshot: %s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}
