package obs

import "sort"

// MergeSnapshots aggregates per-deployment registry snapshots into one
// fleet-level view: counters sum (they are event counts), gauges take the
// maximum (they are point-in-time levels — tree depth, etc. — where the
// fleet-wide worst case is the useful aggregate), and histograms with
// identical bounds merge bucket-wise. Histograms whose bounds disagree
// across snapshots keep the first shape and drop the others — metric names
// are expected to imply their bounds, so this only happens on misuse — and
// every dropped histogram increments the "merge.dropped" counter in the
// result, so the loss is visible instead of silent.
//
// The result is sorted by name like any Snapshot, so merging is
// deterministic regardless of input order.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]*HistogramValue{}
	var dropped int64
	for _, s := range snaps {
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			if cur, ok := gauges[g.Name]; !ok || g.Value > cur {
				gauges[g.Name] = g.Value
			}
		}
		for _, h := range s.Histograms {
			cur, ok := hists[h.Name]
			if !ok {
				cp := HistogramValue{
					Name:    h.Name,
					Bounds:  append([]float64(nil), h.Bounds...),
					Buckets: append([]int64(nil), h.Buckets...),
					Count:   h.Count,
					Sum:     h.Sum,
				}
				hists[h.Name] = &cp
				continue
			}
			if !sameBounds(cur.Bounds, h.Bounds) {
				dropped++
				continue
			}
			for i, b := range h.Buckets {
				cur.Buckets[i] += b
			}
			cur.Count += h.Count
			cur.Sum += h.Sum
		}
	}
	if dropped > 0 {
		counters["merge.dropped"] += dropped
	}
	var out Snapshot
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
