package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one journal entry: what happened (Kind, with a typed payload in
// Data) and when in *simulation* time (T). Wall-clock values never enter a
// journal — see Profiler for those — so a journal is a pure function of
// the simulated run and serializes byte-identically for any worker count.
type Event struct {
	// T is the simulation time of the event in seconds.
	T float64 `json:"t"`
	// Kind tags the payload; see the Kind* constants in events.go.
	Kind string `json:"kind"`
	// Data is the typed payload (one of the structs in events.go).
	Data any `json:"data,omitempty"`
}

// RawEvent is a decoded journal line whose payload is still raw JSON;
// consumers switch on Kind and unmarshal Data into the matching payload
// struct.
type RawEvent struct {
	T    float64         `json:"t"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Journal is a bounded in-memory event ring with an optional JSONL sink.
// The ring keeps the most recent Cap events for in-process inspection; the
// sink, when set, receives every event as one JSON line at emission time.
//
// Emission is mutex-guarded for safety, but the SID runtime only emits
// from the scheduler's serial phases — which is what makes the JSONL
// output deterministic.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest event
	n       int // events currently in the ring
	total   int64
	sink    io.Writer
	sinkErr error
}

// DefaultJournalCap bounds the in-memory ring when NewJournal is given a
// non-positive capacity.
const DefaultJournalCap = 4096

// NewJournal returns a journal whose ring holds up to capacity events
// (DefaultJournalCap if capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{ring: make([]Event, capacity)}
}

// SetSink attaches a JSONL writer that receives every emitted event (the
// ring only retains the newest Cap). The journal does not buffer or close
// the writer; wrap files in a bufio.Writer and flush via the caller.
func (j *Journal) SetSink(w io.Writer) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = w
}

// Emit appends one event. Sink write failures are sticky: the first error
// is retained (Err) and further sink writes are skipped; the ring keeps
// recording.
func (j *Journal) Emit(t float64, kind string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := Event{T: t, Kind: kind, Data: data}
	if j.sink != nil && j.sinkErr == nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			_, err = j.sink.Write(line)
		}
		if err != nil {
			j.sinkErr = fmt.Errorf("obs: journal sink: %w", err)
		}
	}
	idx := (j.start + j.n) % len(j.ring)
	j.ring[idx] = e
	if j.n < len(j.ring) {
		j.n++
	} else {
		j.start = (j.start + 1) % len(j.ring)
	}
	j.total++
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.ring[(j.start+i)%len(j.ring)]
	}
	return out
}

// Total returns the number of events ever emitted (≥ len(Events()); the
// ring evicts, the sink does not).
func (j *Journal) Total() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Err returns the first sink write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// ReadJSONL decodes a JSONL journal stream (as produced by the sink) into
// raw events. Blank lines are skipped; a malformed line aborts with its
// line number.
func ReadJSONL(r io.Reader) ([]RawEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []RawEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e RawEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading journal: %w", err)
	}
	return out, nil
}
