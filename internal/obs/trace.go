package obs

import (
	"encoding/json"
	"sort"
	"strconv"
	"sync"
)

// Span kinds emitted by the pipeline and serving layers. A confirmed
// detection's causal trace is the ordered set of these from wake genesis
// to the served event.
const (
	SpanWakeGenesis   = "wake.genesis"    // sim-time of the ship crossing that caused the trace
	SpanNodeOnset     = "node.onset"      // a node's wake-onset window → its detection report
	SpanReportTx      = "report.tx"       // member report in flight: send → head accept
	SpanReportReject  = "report.reject"   // defense layer rejected a report at the head
	SpanHopRetransmit = "hop.retransmit"  // one ARQ retransmission on a traced hop
	SpanHopDrop       = "hop.drop"        // ARQ gave up on a traced hop
	SpanFailoverElect = "failover.elect"  // a member replaced a dead cluster head
	SpanClusterColl   = "cluster.collect" // temp-cluster report collection window
	SpanClusterEval   = "cluster.eval"    // head correlation evaluation (sim-instant, wall overlay)
	SpanSpeedEstimate = "speed.estimate"  // arrival-law speed fit (sim-instant, wall overlay)
	SpanSinkConfirm   = "sink.confirm"    // head send → sink confirmation
	SpanServeIngest   = "serve.ingest"    // serving layer: the chunk whose processing confirmed the trace
	SpanServeDeliver  = "serve.deliver"   // serving layer: detection event delivery to subscribers
)

// Span is one interval of a detection trace. Start and End are simulation
// seconds; instantaneous protocol steps (evaluation, election) have
// Start == End. WallNs is an optional wall-clock overlay with the same
// discipline as the profiler: it never enters the deterministic
// serialization (SerializePipeline zeroes it), so enabling it cannot
// perturb a pinned trace.
type Span struct {
	Trace  string  `json:"trace,omitempty"`
	Kind   string  `json:"kind"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Node   int     `json:"node"`
	Peer   int     `json:"peer,omitempty"`
	Seq    int     `json:"seq,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Note   string  `json:"note,omitempty"`
	WallNs int64   `json:"wall_ns,omitempty"`
}

// GenesisMark records the simulation time a ship's wake entered the run —
// the causal root every confirmed trace is linked back to.
type GenesisMark struct {
	Ship int     `json:"ship"`
	T    float64 `json:"t"`
	Note string  `json:"note,omitempty"`
}

// TraceDoc is one confirmed detection's complete trace: the deterministic
// pipeline spans plus any serving-layer spans attached after confirmation.
type TraceDoc struct {
	ID    string `json:"id"`
	Spans []Span `json:"spans"`
	Serve []Span `json:"serve,omitempty"`
}

// TraceSet is the JSON document served at /v1/tenants/{id}/traces and
// consumed by `sidwatch trace`.
type TraceSet struct {
	Label   string        `json:"label,omitempty"`
	Genesis []GenesisMark `json:"genesis,omitempty"`
	Traces  []TraceDoc    `json:"traces"`
}

// traceBuild accumulates spans for one temporary cluster from setup until
// sink confirmation (or cancellation). The wire key is stable across
// failovers; the head index the build is filed under follows the election.
type traceBuild struct {
	key       string
	head      int     // head at setup time (a TraceID component)
	sender    int     // head at sink-send time (differs after failover)
	deadline  float64 // collection deadline at setup time (a TraceID component)
	spans     []Span
	pendingTx map[int]float64 // member node → report send time
	sinkSent  float64
	id        string // final TraceID, set at confirmation
	dead      bool   // cancelled: late spans are dropped
}

// Tracer assembles causal detection traces. Every mutating call happens in
// a scheduler-serial phase (block consumption, message handlers, deadline
// and ARQ timers) — the same discipline as the journal — so the
// deterministic serialization is byte-identical across worker counts.
// TraceIDs are pure functions of deterministic run state (label, ship,
// cluster head, collection deadline), never of wall time.
type Tracer struct {
	mu     sync.Mutex
	label  string
	marks  []GenesisMark
	active map[int]*traceBuild    // keyed by current head
	byKey  map[string]*traceBuild // wire-key aliases (wsn hop spans)
	wait   map[string]*traceBuild // detached at sink-send, awaiting arrival
	done   []*traceBuild          // confirmed, in confirmation order
	serve  map[string][]Span      // TraceID → serving-layer spans
}

// NewTracer returns a tracer whose TraceIDs are namespaced by label
// (typically the serving tenant ID; empty for in-process runs that don't
// need a namespace).
func NewTracer(label string) *Tracer {
	return &Tracer{
		label:  label,
		active: map[int]*traceBuild{},
		byKey:  map[string]*traceBuild{},
		wait:   map[string]*traceBuild{},
		serve:  map[string][]Span{},
	}
}

// Label returns the tracer's TraceID namespace.
func (t *Tracer) Label() string { return t.label }

func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Genesis records a wake-genesis mark: ship entered the simulation with
// its crossing centered at sim-time tc. Confirmed traces link to the
// nearest preceding mark.
func (t *Tracer) Genesis(ship int, tc float64, note string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.marks = append(t.marks, GenesisMark{Ship: ship, T: tc, Note: note})
}

// StartCluster opens a trace build for a temporary cluster formed by head
// at time now with collection deadline deadline. The build's wire key —
// stamped into traced messages — is derived from the same state as the
// eventual TraceID, so it is identical across worker counts.
func (t *Tracer) StartCluster(head int, now, deadline float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.label + "/c" + strconv.Itoa(head) + "@" + fmtF(deadline)
	b := &traceBuild{
		key:       key,
		head:      head,
		deadline:  deadline,
		pendingTx: map[int]float64{},
	}
	b.spans = append(b.spans, Span{Kind: SpanClusterColl, Start: now, End: deadline, Node: head})
	t.active[head] = b
	t.byKey[key] = b
}

// KeyOf returns the wire key of head's active cluster ("" if none) for
// tagging outbound messages so the radio layer can attach hop spans.
func (t *Tracer) KeyOf(head int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.active[head]; ok {
		return b.key
	}
	return ""
}

// Add appends a span to head's active trace build (no-op if none).
func (t *Tracer) Add(head int, s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.active[head]; ok {
		b.spans = append(b.spans, s)
	}
}

// AddByKey appends a span to the build owning the wire key — the radio
// layer's entry point for ARQ retransmission/drop spans, which may land
// after the trace has already been confirmed (a lost ACK retransmits a
// frame the receiver consumed long ago).
func (t *Tracer) AddByKey(key string, s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.byKey[key]; ok && !b.dead {
		b.spans = append(b.spans, s)
	}
}

// Extend moves the collection window's end to the extended deadline. The
// TraceID keeps the original deadline — identity is fixed at setup.
func (t *Tracer) Extend(head int, deadline float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.active[head]
	if !ok {
		return
	}
	for i := range b.spans {
		if b.spans[i].Kind == SpanClusterColl {
			b.spans[i].End = deadline
			return
		}
	}
}

// TxStart records a member report leaving node for head at time now.
func (t *Tracer) TxStart(head, node int, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.active[head]; ok {
		b.pendingTx[node] = now
	}
}

// TxEnd closes a member report-transmission span at head acceptance.
func (t *Tracer) TxEnd(head, node int, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.active[head]
	if !ok {
		return
	}
	if start, ok := b.pendingTx[node]; ok {
		delete(b.pendingTx, node)
		b.spans = append(b.spans, Span{Kind: SpanReportTx, Start: start, End: now, Node: node, Peer: head})
	}
}

// Failover re-files old's build under the elected head and records the
// election. The wire key and TraceID components are unchanged: the trace
// is the cluster's, not the head's.
func (t *Tracer) Failover(old, elected int, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.active[old]
	if !ok {
		return
	}
	delete(t.active, old)
	t.active[elected] = b
	b.spans = append(b.spans, Span{Kind: SpanFailoverElect, Start: now, End: now, Node: elected, Peer: old})
}

// Cancel drops head's active build (cluster cancelled: head dead with no
// successor, too few reports, or evaluation rejected). Late hop spans for
// its key are discarded.
func (t *Tracer) Cancel(head int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.active[head]; ok {
		b.dead = true
		delete(t.active, head)
	}
}

// Detach records the head handing its confirmation to the routing layer
// and moves the build out of the head-keyed active set into the
// awaiting-confirmation set — the same node may legitimately form a new
// cluster while its report is still in flight to the sink. Returns the
// wire key to stamp on the sink-report frame ("" if no active build);
// ConfirmByKey finalizes against that key at sink arrival.
func (t *Tracer) Detach(head int, now float64) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.active[head]
	if !ok {
		return ""
	}
	delete(t.active, head)
	b.sender = head
	b.sinkSent = now
	t.wait[b.key] = b
	return b.key
}

// ConfirmByKey finalizes a detached build at sink arrival time now: links
// the trace to its genesis mark (the latest mark at or before the
// collection window's start, i.e. the crossing that caused it), derives
// the TraceID from (label, ship, cluster head, deadline), and moves the
// build to the confirmed set. Returns the TraceID ("" if the key is
// unknown).
func (t *Tracer) ConfirmByKey(key string, now float64) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.wait[key]
	if !ok {
		return ""
	}
	delete(t.wait, key)

	start := b.deadline
	if len(b.spans) > 0 {
		start = b.spans[0].Start
	}
	ship := -1
	var markT float64
	var markNote string
	for _, m := range t.marks {
		if m.T <= start && (ship < 0 || m.T >= markT) {
			ship, markT, markNote = m.Ship, m.T, m.Note
		}
	}
	if ship < 0 && len(t.marks) > 0 {
		// All marks are in the future of the window: attribute to the
		// earliest (deterministic fallback for early-threshold noise).
		first := t.marks[0]
		for _, m := range t.marks[1:] {
			if m.T < first.T {
				first = m
			}
		}
		ship, markT, markNote = first.Ship, first.T, first.Note
	}
	if ship >= 0 {
		b.spans = append(b.spans, Span{Kind: SpanWakeGenesis, Start: markT, End: markT, Node: -1, Seq: ship, Note: markNote})
	}
	sent := b.sinkSent
	if sent == 0 {
		sent = now
	}
	b.spans = append(b.spans, Span{Kind: SpanSinkConfirm, Start: sent, End: now, Node: b.sender})

	b.id = t.label + "/s" + strconv.Itoa(ship) + "/c" + strconv.Itoa(b.head) + "@" + fmtF(b.deadline)
	t.done = append(t.done, b)
	return b.id
}

// ConfirmedIDs returns the TraceIDs of confirmed traces in confirmation
// order — index-aligned with the runtime's sink-report slice.
func (t *Tracer) ConfirmedIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, len(t.done))
	for i, b := range t.done {
		ids[i] = b.id
	}
	return ids
}

// ServeSpan attaches a serving-layer span to a confirmed trace. Serving
// spans live outside the deterministic serialization (they carry
// wall-clock overlays and depend on ingest chunking), like the profiler
// lives outside the journal.
func (t *Tracer) ServeSpan(id string, s Span) {
	if id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.serve[id] = append(t.serve[id], s)
}

// sortSpans orders spans canonically: by start, end, kind, node, peer,
// seq. Emission order is already deterministic (serial phases only), but
// the canonical order makes the serialized form robust to refactors that
// reorder same-instant emissions.
func sortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Seq < b.Seq
	})
}

// SerializePipeline renders every confirmed trace's pipeline spans as
// canonical JSONL: traces sorted by TraceID, spans in canonical order,
// wall-clock overlays zeroed. This is the byte-identical form — the same
// golden scenario serializes to the same bytes for any worker count,
// in-process or over the wire.
func (t *Tracer) SerializePipeline() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	builds := append([]*traceBuild(nil), t.done...)
	sort.Slice(builds, func(i, j int) bool { return builds[i].id < builds[j].id })
	var out []byte
	for _, b := range builds {
		spans := append([]Span(nil), b.spans...)
		sortSpans(spans)
		for _, s := range spans {
			s.Trace = b.id
			s.WallNs = 0
			line, err := json.Marshal(s)
			if err != nil {
				continue
			}
			out = append(out, line...)
			out = append(out, '\n')
		}
	}
	return out
}

// Traces returns the full trace set — pipeline spans with wall overlays
// intact plus serving-layer spans — in confirmation order.
func (t *Tracer) Traces() TraceSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := TraceSet{Label: t.label, Genesis: append([]GenesisMark(nil), t.marks...)}
	set.Traces = make([]TraceDoc, 0, len(t.done))
	for _, b := range t.done {
		spans := append([]Span(nil), b.spans...)
		sortSpans(spans)
		doc := TraceDoc{ID: b.id, Spans: spans}
		if sv := t.serve[b.id]; len(sv) > 0 {
			doc.Serve = append([]Span(nil), sv...)
		}
		set.Traces = append(set.Traces, doc)
	}
	return set
}
