package obs

// Event kinds emitted by the SID pipeline. Node IDs are plain ints here so
// the journal format does not depend on the wsn package (and so external
// tools can decode it with nothing but this file).
const (
	// KindNodeWindow is a completed Δt anomaly-evaluation window that
	// contained at least one threshold crossing (payload: NodeWindow).
	// Quiet windows are not journaled — at 50 Hz they would dominate the
	// ring without carrying information.
	KindNodeWindow = "node.window"
	// KindNodeReport is a node-level detection — a window whose anomaly
	// frequency passed the af threshold (payload: NodeReport).
	KindNodeReport = "node.report"
	// KindClusterSetup is a node promoting itself to temporary cluster
	// head (payload: ClusterSetup).
	KindClusterSetup = "cluster.setup"
	// KindClusterJoin is a node accepting a cluster invite (payload:
	// ClusterJoin).
	KindClusterJoin = "cluster.join"
	// KindReportSend is a member sending its report to its head (payload:
	// ReportSend).
	KindReportSend = "report.send"
	// KindReportAccept is a head folding a member report into its
	// collection, after per-node deduplication (payload: ReportAccept).
	KindReportAccept = "report.accept"
	// KindClusterExtend is a head spending its one-time collection
	// deadline extension (payload: ClusterExtend).
	KindClusterExtend = "cluster.extend"
	// KindClusterCancel is a collection ending without an evaluation —
	// too few reports, or the head died holding the role (payload:
	// ClusterCancel).
	KindClusterCancel = "cluster.cancel"
	// KindClusterEval is a head's correlation evaluation: C = C_Nt × C_Ne
	// with the sweep and order-tau gate inputs (payload: ClusterEval).
	KindClusterEval = "cluster.eval"
	// KindSpeedFit is one candidate-heading least-squares fit of the
	// speed estimator's reflection-ambiguity resolution (payload:
	// SpeedFit). The chosen candidate is marked.
	KindSpeedFit = "speed.fit"
	// KindSinkReport is the sink receiving a confirmed intrusion
	// (payload: SinkReport).
	KindSinkReport = "sink.report"
	// KindFailoverElect is a member claiming a dead head's role (payload:
	// FailoverElect).
	KindFailoverElect = "failover.elect"
	// KindArqRetransmit is a timeout-driven ARQ retransmission (payload:
	// ArqHop).
	KindArqRetransmit = "arq.retransmit"
	// KindArqAck is an ARQ acknowledgment transmission (payload: ArqHop).
	KindArqAck = "arq.ack"
	// KindArqDrop is a reliable hop abandoned — retransmissions exhausted
	// or the sender died (payload: ArqDrop).
	KindArqDrop = "arq.drop"
	// KindSendError is a synchronous send failure the protocol observed
	// (payload: SendError).
	KindSendError = "send.error"
	// KindByzantineInject is a compromised node injecting a fabricated or
	// replayed report into the protocol (payload: ByzantineInject). Emitted
	// by the adversary layer, not the defenses — it records ground truth
	// about the attack, which is what lets a journal reader audit whether
	// the defenses caught it.
	KindByzantineInject = "adversary.inject"
	// KindReportReject is a head's defense layer refusing a report —
	// quarantined origin, stale or future onset (payload: ReportReject).
	KindReportReject = "report.reject"
	// KindSuspicion is a node's suspicion score changing — a freshness
	// rejection or a trimmed-by-consensus verdict — possibly crossing into
	// quarantine (payload: Suspicion).
	KindSuspicion = "defense.suspect"
	// KindSummaryFlush is a sub-cluster head forwarding its buffered member
	// reports to a collection head as one summary (payload: SummaryFlush).
	KindSummaryFlush = "hier.summary"
	// KindMetrics is a registry snapshot embedded in the journal, usually
	// once at end of run (payload: Snapshot).
	KindMetrics = "metrics"
)

// NodeWindow is the payload of KindNodeWindow: one anomaly window with its
// EWMA context — the moving mean m′_T and deviation d′_T behind the
// threshold in force, which is what makes a "why did this (not) trip"
// question answerable from the journal alone.
type NodeWindow struct {
	Node      int     `json:"node"`
	Start     float64 `json:"start"`
	End       float64 `json:"end"`
	AF        float64 `json:"af"`
	Crossings int     `json:"crossings"`
	Energy    float64 `json:"energy"`
	Onset     float64 `json:"onset"`
	Threshold float64 `json:"threshold"`
	Mean      float64 `json:"mean"`
	Std       float64 `json:"std"`
}

// NodeReport is the payload of KindNodeReport.
type NodeReport struct {
	Node   int     `json:"node"`
	Row    int     `json:"row"`
	Onset  float64 `json:"onset"`
	Energy float64 `json:"energy"`
	AF     float64 `json:"af"`
}

// ClusterSetup is the payload of KindClusterSetup.
type ClusterSetup struct {
	Head     int     `json:"head"`
	Deadline float64 `json:"deadline"`
}

// ClusterJoin is the payload of KindClusterJoin.
type ClusterJoin struct {
	Node  int     `json:"node"`
	Head  int     `json:"head"`
	Until float64 `json:"until"`
}

// ReportSend is the payload of KindReportSend.
type ReportSend struct {
	Node   int     `json:"node"`
	Head   int     `json:"head"`
	Onset  float64 `json:"onset"`
	Energy float64 `json:"energy"`
}

// ReportAccept is the payload of KindReportAccept. First reports whether
// this was the node's first report of the collection (false: the head's
// per-node deduplication merged it into an existing entry).
type ReportAccept struct {
	Head   int     `json:"head"`
	Node   int     `json:"node"`
	Onset  float64 `json:"onset"`
	Energy float64 `json:"energy"`
	First  bool    `json:"first"`
}

// ClusterExtend is the payload of KindClusterExtend.
type ClusterExtend struct {
	Head     int     `json:"head"`
	Deadline float64 `json:"deadline"`
}

// ClusterCancel is the payload of KindClusterCancel.
type ClusterCancel struct {
	Head    int    `json:"head"`
	Reports int    `json:"reports"`
	Reason  string `json:"reason"`
}

// ClusterEval is the payload of KindClusterEval: the correlation outcome
// with every gate input (eq. 13's C = C_Nt × C_Ne, the sweep statistic,
// and the order-tau gate).
type ClusterEval struct {
	Head      int     `json:"head"`
	Reports   int     `json:"reports"`
	C         float64 `json:"c"`
	CNt       float64 `json:"c_nt"`
	CNe       float64 `json:"c_ne"`
	Sweep     float64 `json:"sweep"`
	OrderTau  float64 `json:"order_tau"`
	RowsUsed  int     `json:"rows_used"`
	RowsTotal int     `json:"rows_total"`
	Detected  bool    `json:"detected"`
	Err       string  `json:"err,omitempty"`
}

// SpeedFit is the payload of KindSpeedFit: one candidate heading of the
// estimator's arrival-law fit. Slope is the fitted 1/v (s/m); SSE the
// residual sum of squares; Chosen marks the winning candidate.
type SpeedFit struct {
	Head     int     `json:"head"`
	AlphaRad float64 `json:"alpha_rad"`
	Slope    float64 `json:"slope"`
	SSE      float64 `json:"sse"`
	OK       bool    `json:"ok"`
	Chosen   bool    `json:"chosen"`
}

// SinkReport is the payload of KindSinkReport.
type SinkReport struct {
	Head      int     `json:"head"`
	C         float64 `json:"c"`
	Reports   int     `json:"reports"`
	MeanOnset float64 `json:"mean_onset"`
	HasSpeed  bool    `json:"has_speed"`
	Speed     float64 `json:"speed,omitempty"`
	Heading   float64 `json:"heading,omitempty"`
}

// FailoverElect is the payload of KindFailoverElect.
type FailoverElect struct {
	Old int `json:"old"`
	New int `json:"new"`
}

// ArqHop is the payload of KindArqRetransmit and KindArqAck. For a
// retransmission, From/To are the data direction and Attempt counts
// retransmissions so far (1 = first retransmission); for an ACK, From is
// the acknowledging receiver.
type ArqHop struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	ARQ     uint64 `json:"arq"`
	Attempt int    `json:"attempt,omitempty"`
}

// ArqDrop is the payload of KindArqDrop. Received reports whether the
// receiver had in fact consumed the frame (only the ACKs were lost), in
// which case the drop is bookkeeping, not data loss.
type ArqDrop struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	ARQ      uint64 `json:"arq"`
	Received bool   `json:"received"`
	Reason   string `json:"reason"`
}

// SendError is the payload of KindSendError.
type SendError struct {
	Node int    `json:"node"`
	Err  string `json:"err"`
}

// ByzantineInject is the payload of KindByzantineInject: one injected
// report, with the behavior ("fabricate" or "replay") that produced it.
type ByzantineInject struct {
	Node     int     `json:"node"`
	Behavior string  `json:"behavior"`
	Onset    float64 `json:"onset"`
	Energy   float64 `json:"energy"`
}

// ReportReject is the payload of KindReportReject. Reason is one of
// "quarantined", "stale", "future", or "energy".
type ReportReject struct {
	Head   int     `json:"head"`
	Node   int     `json:"node"`
	Onset  float64 `json:"onset"`
	Energy float64 `json:"energy"`
	Reason string  `json:"reason"`
}

// Suspicion is the payload of KindSuspicion: a node's updated score after
// one more piece of evidence, and whether the update quarantined it.
type Suspicion struct {
	Node        int    `json:"node"`
	Score       int    `json:"score"`
	Reason      string `json:"reason"`
	Quarantined bool   `json:"quarantined"`
}

// SummaryFlush is the payload of KindSummaryFlush: a sub-cluster head
// draining its buffer of member reports toward one collection head.
type SummaryFlush struct {
	Sub     int `json:"sub"`
	Head    int `json:"head"`
	Reports int `json:"reports"`
}
