package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is a debug HTTP endpoint serving pprof profiles and expvar
// metrics (including the published registry snapshot under the "sid"
// variable). It exists for interactive performance work — nothing in the
// simulation depends on it.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

var (
	publishOnce sync.Once
	publishedRg atomic.Pointer[Registry]
)

// PublishRegistry exposes reg as the expvar "sid" variable. expvar
// registration is global and permanent, so the variable is registered once
// and reads whatever registry was published last — callers that run many
// deployments (e.g. sidbench's scenario sweep) re-publish the current one.
func PublishRegistry(reg *Registry) {
	if reg != nil {
		publishedRg.Store(reg)
	}
	publishOnce.Do(func() {
		expvar.Publish("sid", expvar.Func(func() any {
			return publishedRg.Load().Snapshot() // nil-safe: empty snapshot
		}))
	})
}

// RegisterDebug mounts the debug routes — /debug/vars always, and
// /debug/pprof/* only when enablePProf is set — onto an existing mux, so
// servers with their own API surface (the detection server) can carry the
// same diagnostics endpoints Serve exposes instead of binding a second
// port. pprof is opt-in for outward-facing servers: CPU and trace
// profiling are a denial-of-service surface on a multi-tenant box.
func RegisterDebug(mux *http.ServeMux, enablePProf bool) {
	mux.Handle("/debug/vars", expvar.Handler())
	if !enablePProf {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the debug endpoint on addr (e.g. "localhost:6060" or ":0")
// and publishes reg (may be nil) as the expvar "sid" variable. Routes:
// /debug/pprof/* and /debug/vars.
func Serve(addr string, reg *Registry) (*Server, error) {
	PublishRegistry(reg)
	mux := http.NewServeMux()
	RegisterDebug(mux, true)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr(),
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
