package obs

import (
	"bytes"
	"strings"
	"testing"
)

func kindsOf(spans []Span) map[string]int {
	m := map[string]int{}
	for _, s := range spans {
		m[s.Kind]++
	}
	return m
}

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer("t1")
	tr.Genesis(0, 60, "crossing")
	tr.Genesis(1, 90, "crossing")

	tr.StartCluster(5, 62, 152)
	if got := tr.KeyOf(5); got != "t1/c5@152" {
		t.Errorf("KeyOf = %q", got)
	}
	tr.Add(5, Span{Kind: SpanNodeOnset, Start: 61, End: 64, Node: 5})
	tr.TxStart(5, 7, 65)
	tr.TxEnd(5, 7, 65.4)
	tr.TxEnd(5, 5, 66) // head's own report: never opened, must be a no-op

	key := tr.Detach(5, 152)
	if key != "t1/c5@152" {
		t.Fatalf("Detach key = %q", key)
	}
	if got := tr.KeyOf(5); got != "" {
		t.Errorf("KeyOf after detach = %q, want empty", got)
	}
	id := tr.ConfirmByKey(key, 152.8)
	// Genesis link: window starts at 62, ship 0 crossed at 60 (ship 1 at 90
	// is later than the start) → the trace belongs to ship 0.
	if want := "t1/s0/c5@152"; id != want {
		t.Fatalf("TraceID = %q, want %q", id, want)
	}
	if ids := tr.ConfirmedIDs(); len(ids) != 1 || ids[0] != id {
		t.Errorf("ConfirmedIDs = %v", ids)
	}

	set := tr.Traces()
	if len(set.Traces) != 1 || set.Traces[0].ID != id {
		t.Fatalf("Traces = %+v", set.Traces)
	}
	k := kindsOf(set.Traces[0].Spans)
	for _, want := range []string{SpanClusterColl, SpanNodeOnset, SpanReportTx, SpanWakeGenesis, SpanSinkConfirm} {
		if k[want] != 1 {
			t.Errorf("span kind %s count = %d, want 1 (have %v)", want, k[want], k)
		}
	}
	for _, s := range set.Traces[0].Spans {
		switch s.Kind {
		case SpanReportTx:
			if s.Start != 65 || s.End != 65.4 || s.Node != 7 || s.Peer != 5 {
				t.Errorf("report.tx span = %+v", s)
			}
		case SpanSinkConfirm:
			if s.Start != 152 || s.End != 152.8 || s.Node != 5 {
				t.Errorf("sink.confirm span = %+v", s)
			}
		case SpanWakeGenesis:
			if s.Start != 60 || s.Seq != 0 || s.Note != "crossing" {
				t.Errorf("wake.genesis span = %+v", s)
			}
		}
	}
}

func TestTracerFailoverRekeys(t *testing.T) {
	tr := NewTracer("")
	tr.Genesis(0, 10, "")
	tr.StartCluster(3, 12, 100)
	key := tr.KeyOf(3)
	tr.Failover(3, 8, 50)
	if got := tr.KeyOf(3); got != "" {
		t.Errorf("old head still active: %q", got)
	}
	// The wire key survives the election — in-flight frames still attach.
	if got := tr.KeyOf(8); got != key {
		t.Errorf("KeyOf(elected) = %q, want %q", got, key)
	}
	tr.AddByKey(key, Span{Kind: SpanHopRetransmit, Start: 51, End: 51, Node: 2, Peer: 8, Seq: 1})
	got := tr.ConfirmByKey(tr.Detach(8, 100), 100.5)
	// TraceID keeps the setup-time head: identity is the cluster's.
	if want := "/s0/c3@100"; got != want {
		t.Errorf("TraceID after failover = %q, want %q", got, want)
	}
	set := tr.Traces()
	k := kindsOf(set.Traces[0].Spans)
	if k[SpanFailoverElect] != 1 || k[SpanHopRetransmit] != 1 {
		t.Errorf("kinds = %v", k)
	}
	for _, s := range set.Traces[0].Spans {
		if s.Kind == SpanSinkConfirm && s.Node != 8 {
			t.Errorf("sink.confirm sender = %d, want elected head 8", s.Node)
		}
	}
}

func TestTracerCancelDropsLateSpans(t *testing.T) {
	tr := NewTracer("")
	tr.StartCluster(4, 5, 95)
	key := tr.KeyOf(4)
	tr.Cancel(4)
	tr.AddByKey(key, Span{Kind: SpanHopRetransmit, Start: 96, End: 96}) // late ARQ: dropped
	if got := tr.Detach(4, 95); got != "" {
		t.Errorf("Detach after cancel = %q, want empty", got)
	}
	if id := tr.ConfirmByKey(key, 96); id != "" {
		t.Errorf("ConfirmByKey after cancel = %q, want empty", id)
	}
	if set := tr.Traces(); len(set.Traces) != 0 {
		t.Errorf("cancelled build confirmed: %+v", set.Traces)
	}
}

func TestTracerExtendKeepsIdentity(t *testing.T) {
	tr := NewTracer("")
	tr.Genesis(2, 1, "")
	tr.StartCluster(0, 2, 50)
	tr.Extend(0, 80)
	id := tr.ConfirmByKey(tr.Detach(0, 80), 80.2)
	// Identity pins the setup-time deadline even though the window grew.
	if want := "/s2/c0@50"; id != want {
		t.Errorf("TraceID = %q, want %q", id, want)
	}
	set := tr.Traces()
	for _, s := range set.Traces[0].Spans {
		if s.Kind == SpanClusterColl && s.End != 80 {
			t.Errorf("collect window end = %g, want extended 80", s.End)
		}
	}
}

func TestTracerGenesisFallback(t *testing.T) {
	// All marks are in the future of the collection window: attribute to
	// the earliest mark rather than leaving the trace shipless.
	tr := NewTracer("")
	tr.Genesis(3, 200, "")
	tr.Genesis(1, 150, "")
	tr.StartCluster(0, 10, 100)
	id := tr.ConfirmByKey(tr.Detach(0, 100), 101)
	if want := "/s1/c0@100"; id != want {
		t.Errorf("fallback TraceID = %q, want %q", id, want)
	}

	// No marks at all: ship is -1 and no wake.genesis span is emitted.
	tr2 := NewTracer("")
	tr2.StartCluster(0, 10, 100)
	id2 := tr2.ConfirmByKey(tr2.Detach(0, 100), 101)
	if want := "/s-1/c0@100"; id2 != want {
		t.Errorf("markless TraceID = %q, want %q", id2, want)
	}
	if k := kindsOf(tr2.Traces().Traces[0].Spans); k[SpanWakeGenesis] != 0 {
		t.Errorf("markless trace grew a genesis span: %v", k)
	}
}

func TestTracerDetachAllowsNewCluster(t *testing.T) {
	// The same node may form a second cluster while its first sink report
	// is in flight; both must confirm under distinct TraceIDs.
	tr := NewTracer("")
	tr.Genesis(0, 5, "")
	tr.StartCluster(9, 6, 50)
	k1 := tr.Detach(9, 50)
	tr.StartCluster(9, 55, 120) // before the first confirms
	k2 := tr.Detach(9, 120)
	if k1 == k2 {
		t.Fatalf("wire keys collide: %q", k1)
	}
	id1 := tr.ConfirmByKey(k1, 51)
	id2 := tr.ConfirmByKey(k2, 121)
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Errorf("ids = %q, %q", id1, id2)
	}
	if ids := tr.ConfirmedIDs(); len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Errorf("confirmation order = %v", ids)
	}
}

func TestSerializePipelineDeterministicAndWallFree(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer("x")
		tr.Genesis(0, 30, "crossing")
		tr.StartCluster(2, 31, 90)
		tr.Add(2, Span{Kind: SpanClusterEval, Start: 90, End: 90, Node: 2, WallNs: 123456})
		tr.ConfirmByKey(tr.Detach(2, 90), 90.5)
		return tr
	}
	a, b := build().SerializePipeline(), build().SerializePipeline()
	if !bytes.Equal(a, b) {
		t.Errorf("serialization not reproducible:\n%s\n%s", a, b)
	}
	if strings.Contains(string(a), "wall_ns") {
		t.Errorf("wall clock leaked into the deterministic serialization:\n%s", a)
	}
	tr := build()
	// Serve spans carry wall overlays and never enter the pipeline form.
	tr.ServeSpan(tr.ConfirmedIDs()[0], Span{Kind: SpanServeIngest, Start: 0, End: 10, WallNs: 9e6})
	if !bytes.Equal(tr.SerializePipeline(), a) {
		t.Error("serve spans changed the pipeline serialization")
	}
	set := tr.Traces()
	if len(set.Traces[0].Serve) != 1 || set.Traces[0].Serve[0].WallNs != 9e6 {
		t.Errorf("serve spans missing from Traces(): %+v", set.Traces[0])
	}
	// Wall overlays stay intact in the full trace set.
	found := false
	for _, s := range set.Traces[0].Spans {
		if s.Kind == SpanClusterEval && s.WallNs == 123456 {
			found = true
		}
	}
	if !found {
		t.Error("wall overlay stripped from Traces()")
	}
}

func TestCollectorTracerNilSafety(t *testing.T) {
	var c *Collector
	if c.Tracing() {
		t.Error("nil collector tracing")
	}
	if c.Tracer() != nil {
		t.Error("nil collector returned a tracer")
	}
	col := New()
	if col.Tracing() {
		t.Error("collector without tracer reports tracing")
	}
	col.SetTracer(NewTracer("z"))
	if !col.Tracing() || col.Tracer().Label() != "z" {
		t.Error("SetTracer not visible")
	}
}
