package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromName sanitizes a registry metric name into the Prometheus exposition
// charset: dots (and anything else outside [a-zA-Z0-9_:]) become
// underscores, and a leading digit gets a leading underscore.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-bucketed series with _sum and
// _count. Snapshot order is name-sorted already, so the output is stable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		n := PromName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := PromName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := PromName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// ValidatePrometheus is a promtool-free lint of the text exposition
// format: every non-comment line must be `name[{labels}] value`, every
// sample must be preceded by a # TYPE declaration for its family, and
// histogram families must end with matching _sum/_count plus a +Inf
// bucket. It exists so CI can assert ?format=prom output parses without
// adding a dependency.
func ValidatePrometheus(b []byte) error {
	types := map[string]string{}
	infSeen := map[string]bool{}
	sums := map[string]bool{}
	counts := map[string]bool{}
	family := func(name string) (string, bool) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if _, ok := types[base]; ok && types[base] == "histogram" {
					return base, true
				}
			}
		}
		_, ok := types[name]
		return name, ok
	}
	for lineNo, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram":
					types[fields[2]] = fields[3]
				default:
					return fmt.Errorf("prom line %d: unknown type %q", lineNo+1, fields[3])
				}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("prom line %d: no value separator: %q", lineNo+1, line)
		}
		name, value := line[:sp], line[sp+1:]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("prom line %d: unterminated label set: %q", lineNo+1, line)
			}
			labels := name[i+1 : len(name)-1]
			name = name[:i]
			for _, lv := range strings.Split(labels, ",") {
				eq := strings.IndexByte(lv, '=')
				if eq <= 0 || len(lv) < eq+3 || lv[eq+1] != '"' || lv[len(lv)-1] != '"' {
					return fmt.Errorf("prom line %d: malformed label %q", lineNo+1, lv)
				}
			}
		}
		if name != PromName(name) {
			return fmt.Errorf("prom line %d: invalid metric name %q", lineNo+1, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("prom line %d: bad value %q", lineNo+1, value)
		}
		fam, declared := family(name)
		if !declared {
			return fmt.Errorf("prom line %d: sample %q has no preceding # TYPE", lineNo+1, name)
		}
		if types[fam] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket") && strings.Contains(line, `le="+Inf"`):
				infSeen[fam] = true
			case strings.HasSuffix(name, "_sum"):
				sums[fam] = true
			case strings.HasSuffix(name, "_count"):
				counts[fam] = true
			}
		}
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		if !infSeen[fam] || !sums[fam] || !counts[fam] {
			return fmt.Errorf("prom histogram %s: missing +Inf bucket, _sum, or _count", fam)
		}
	}
	return nil
}
