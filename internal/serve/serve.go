package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/sensor"
)

// Config tunes the detection server. The zero value is usable: every
// field has a default.
type Config struct {
	// Workers bounds how many tenant pipelines advance concurrently
	// (0 = GOMAXPROCS). It is a semaphore over chunk processing, not a
	// fixed pool: with 1k mostly-idle tenants only the active ones hold
	// slots. Results are bit-identical for any value.
	Workers int
	// MaxTenants caps concurrent tenants (0 = 4096).
	MaxTenants int
	// DefaultQueue is the per-tenant ingest queue depth in chunks when
	// the create request doesn't choose one (0 = 4).
	DefaultQueue int
	// SubscriberBuffer is the per-subscriber event channel depth
	// (0 = 256). A consumer further behind than this stalls its tenant's
	// pipeline — by design; see tenant.deliver.
	SubscriberBuffer int
	// MaxBodyBytes caps ingest and create bodies (0 = 32 MiB).
	MaxBodyBytes int64
	// PProf exposes net/http/pprof on the debug mux. Off by default: the
	// profiling endpoints are a DoS surface on a multi-tenant box.
	PProf bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	if c.DefaultQueue <= 0 {
		c.DefaultQueue = 4
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	errBusy   = errors.New("ingest queue full")
	errGone   = errors.New("tenant is closed")
	errFailed = errors.New("tenant pipeline failed")
)

// Server is the multi-tenant detection service. Create it with New, mount
// Handler on any http.Server (tests use httptest), and Close it to drain
// every tenant.
type Server struct {
	cfg Config
	reg *obs.Registry
	sem chan struct{}
	mux *http.ServeMux

	ctrCreated  *obs.Counter
	ctrClosed   *obs.Counter
	ctrChunks   *obs.Counter
	ctrRejected *obs.Counter
	ctrDropped  *obs.Counter

	mu      sync.Mutex
	tenants map[string]*tenant
	nextID  int
	closed  bool
}

// New builds a server. The registry carries the service's own counters
// (tenants created/closed, chunks processed, 429s, events dropped during
// drain) and merges into /v1/metrics alongside the tenants' registries.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:         cfg,
		reg:         reg,
		sem:         make(chan struct{}, cfg.Workers),
		mux:         http.NewServeMux(),
		ctrCreated:  reg.Counter("serve.tenants_created"),
		ctrClosed:   reg.Counter("serve.tenants_closed"),
		ctrChunks:   reg.Counter("serve.chunks_processed"),
		ctrRejected: reg.Counter("serve.rejected_busy"),
		ctrDropped:  reg.Counter("serve.events_dropped"),
		tenants:     map[string]*tenant{},
	}
	s.mux.HandleFunc("POST /v1/tenants", s.handleCreate)
	s.mux.HandleFunc("GET /v1/tenants", s.handleList)
	s.mux.HandleFunc("GET /v1/tenants/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/tenants/{id}/chunks", s.handleChunks)
	s.mux.HandleFunc("GET /v1/tenants/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/tenants/{id}/detections", s.handleDetections)
	s.mux.HandleFunc("GET /v1/tenants/{id}/metrics", s.handleTenantMetrics)
	s.mux.HandleFunc("GET /v1/tenants/{id}/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	obs.RegisterDebug(s.mux, cfg.PProf)
	return s
}

// Handler returns the server's HTTP handler (API plus /debug/pprof and
// /debug/vars via obs.RegisterDebug).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's own metrics registry (for expvar
// publication by cmd/sidserve).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close drains and shuts down every tenant and refuses new ones.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	all := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil { // skip mid-create placeholders; handleCreate drops them
			all = append(all, t)
		}
	}
	s.tenants = map[string]*tenant{}
	s.mu.Unlock()
	for _, t := range all {
		t.shutdown()
	}
	for _, t := range all {
		<-t.done
		s.ctrClosed.Inc()
	}
}

// acquire/release gate pipeline work behind the worker semaphore.
func (s *Server) acquire() { s.sem <- struct{}{} }
func (s *Server) release() { <-s.sem }

// lookup finds a tenant or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *tenant {
	id := r.PathValue("id")
	s.mu.Lock()
	t := s.tenants[id]
	s.mu.Unlock()
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no tenant %q", id))
	}
	return t
}

func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding create request: %v", err))
		return
	}
	if req.ID != "" && !validID(req.ID) {
		httpError(w, http.StatusBadRequest, "tenant id must be 1-64 chars of [A-Za-z0-9_.-]")
		return
	}
	// Reserve the slot first so a competing create can't take the same id
	// while the pipeline is being built; the placeholder nil is replaced
	// on success and removed on failure.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, fmt.Sprintf("tenant limit %d reached", s.cfg.MaxTenants))
		return
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("t%d", s.nextID)
		s.nextID++
	} else if _, dup := s.tenants[id]; dup {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Sprintf("tenant %q already exists", id))
		return
	}
	s.tenants[id] = nil
	s.mu.Unlock()

	t, err := newTenant(s, id, req)
	s.mu.Lock()
	if err != nil || s.closed {
		delete(s.tenants, id)
		s.mu.Unlock()
		if err == nil {
			httpError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("building deployment: %v", err))
		return
	}
	s.tenants[id] = t
	s.mu.Unlock()
	go t.loop()
	s.ctrCreated.Inc()
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID: id, Nodes: t.nodes, RateHz: t.rate, CountsPerG: t.scale, QueueCap: t.queueCap,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	all := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			all = append(all, t)
		}
	}
	s.mu.Unlock()
	out := make([]TenantStatus, 0, len(all))
	for _, t := range all {
		out = append(out, t.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if t := s.lookup(w, r); t != nil {
		writeJSON(w, http.StatusOK, t.status())
	}
}

func (s *Server) handleDetections(w http.ResponseWriter, r *http.Request) {
	if t := s.lookup(w, r); t != nil {
		writeJSON(w, http.StatusOK, t.detections())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	t := s.tenants[id]
	if t != nil { // a nil entry is a mid-create reservation; leave it alone
		delete(s.tenants, id)
	}
	s.mu.Unlock()
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no tenant %q", id))
		return
	}
	t.shutdown()
	<-t.done // synchronous drain: accepted chunks finish before the 200
	s.ctrClosed.Inc()
	writeJSON(w, http.StatusOK, t.status())
}

func (s *Server) handleChunks(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(w, r)
	if t == nil {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var (
		dur   float64
		nodes [][]sensor.Sample
	)
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, ContentTypeBundle):
		d, ns, rate, scale, err := DecodeBundle(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if rate != 0 && (rate != t.rate || scale != t.scale) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf(
				"bundle rate/scale %g/%g does not match tenant %g/%g", rate, scale, t.rate, t.scale))
			return
		}
		dur, nodes = d, ns
	case ct == "" || strings.HasPrefix(ct, ContentTypeJSON):
		var c Chunk
		if err := json.NewDecoder(body).Decode(&c); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding chunk: %v", err))
			return
		}
		dur, nodes = c.DurationS, c.Samples()
	default:
		httpError(w, http.StatusUnsupportedMediaType, fmt.Sprintf(
			"content type %q (want %s or %s)", ct, ContentTypeJSON, ContentTypeBundle))
		return
	}
	if err := t.validateChunk(dur, nodes); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	samples := 0
	for _, ns := range nodes {
		samples += len(ns)
	}
	resp, err := t.enqueue(dur, nodes, samples)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, resp)
	case errors.Is(err, errBusy):
		s.ctrRejected.Inc()
		// The queue drains at pipeline speed; one chunk is the natural
		// retry quantum and sub-second waits round up.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errGone):
		httpError(w, http.StatusGone, err.Error())
	default:
		httpError(w, http.StatusConflict, err.Error())
	}
}

// validateChunk enforces the ingest invariants that keep a tenant's
// timeline aligned: durations quantized to the sensing batch (a partial
// batch would make the pipeline overrun the segment boundary) and sample
// counts bounded by the window (so the pending buffer stays bounded by
// one chunk).
func (t *tenant) validateChunk(dur float64, nodes [][]sensor.Sample) error {
	if dur <= 0 {
		return fmt.Errorf("chunk duration must be positive, got %g", dur)
	}
	if batches := dur / t.batchS; math.Abs(batches-math.Round(batches)) > 1e-9 {
		return fmt.Errorf("chunk duration %gs is not a multiple of the sensing batch (%gs)", dur, t.batchS)
	}
	if len(nodes) > t.nodes {
		return fmt.Errorf("chunk has %d node streams, tenant has %d nodes", len(nodes), t.nodes)
	}
	maxSamples := int(dur*t.rate + 0.5)
	for node, ns := range nodes {
		if len(ns) > maxSamples {
			return fmt.Errorf("node %d: %d samples exceed the %gs window (%d at %g Hz)",
				node, len(ns), dur, maxSamples, t.rate)
		}
	}
	return nil
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(w, r)
	if t == nil {
		return
	}
	sub, err := t.subscribe()
	if err != nil {
		httpError(w, http.StatusGone, err.Error())
		return
	}
	defer t.unsubscribe(sub)
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return // tenant finished; stream is complete
			}
			var err error
			if sse {
				_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.line)
			} else if _, err = w.Write(ev.line); err == nil {
				_, err = w.Write([]byte{'\n'})
			}
			if err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleTenantMetrics(w http.ResponseWriter, r *http.Request) {
	if t := s.lookup(w, r); t != nil {
		writeMetrics(w, r, obs.MergeSnapshots(t.col.Registry().Snapshot(), t.sloReg.Snapshot()))
	}
}

// handleMetrics serves the aggregate view: every tenant's registry (and
// wall-clock SLO registry) merged with the server's own via
// obs.MergeSnapshots (counters sum, gauges take the fleet-wide max,
// histograms merge bucket-wise).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snaps := []obs.Snapshot{s.reg.Snapshot()}
	for _, t := range s.tenants {
		if t != nil {
			snaps = append(snaps, t.col.Registry().Snapshot(), t.sloReg.Snapshot())
		}
	}
	s.mu.Unlock()
	writeMetrics(w, r, obs.MergeSnapshots(snaps...))
}

// writeMetrics renders a snapshot as JSON or, with ?format=prom, as
// Prometheus text exposition format 0.0.4.
func writeMetrics(w http.ResponseWriter, r *http.Request, snap obs.Snapshot) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = obs.WritePrometheus(w, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTraces serves a traced tenant's confirmed detection traces: the
// full TraceSet (genesis marks, pipeline spans with wall overlays, serving
// spans) as JSON, or with ?format=jsonl the deterministic pipeline-span
// serialization — the byte-identical form the integration tests pin.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(w, r)
	if t == nil {
		return
	}
	if t.tracer == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("tenant %q was created without tracing", t.id))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(t.tracer.SerializePipeline())
		return
	}
	writeJSON(w, http.StatusOK, t.tracer.Traces())
}

// marshalEvent builds one obs.Event-shaped JSONL line (no trailing
// newline), exactly as the journal sink would.
func marshalEvent(t float64, kind string, data any) ([]byte, error) {
	return json.Marshal(obs.Event{T: t, Kind: kind, Data: data})
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
