package serve

import (
	"fmt"
	"sync"
	"time"

	sidapi "github.com/sid-wsn/sid"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/sensor"
	isid "github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/source"
)

// chunkJob is one accepted ingest unit queued for the tenant loop. wall is
// the accept time; the SLO histograms measure queue wait + pipeline time
// from it.
type chunkJob struct {
	seq     int
	dur     float64
	nodes   [][]sensor.Sample
	samples int
	wall    time.Time
}

// event is one line of a tenant's output stream: the SSE event name and
// the JSON line (no trailing newline). Journal lines are forwarded with
// the exact bytes the pipeline's JSONL sink produced, which is what makes
// the wire stream byte-identical to an in-process journal.
type event struct {
	name string
	line []byte
}

// subscriber is one attached event-stream consumer. Events are delivered
// through a buffered channel; gone is closed by unsubscribe so a stalled
// delivery can abandon a departed consumer.
type subscriber struct {
	ch   chan event
	gone chan struct{}
}

// tenant is one served surveillance field: a facade-configured pipeline, a
// push source, a bounded ingest queue and a fan-out of event subscribers.
// A single loop goroutine owns the pipeline — Append and Run never race —
// so the tenant inherits the runtime's determinism wholesale.
type tenant struct {
	id       string
	srv      *Server
	rt       *isid.Runtime
	push     *source.Push
	col      *obs.Collector
	tracer   *obs.Tracer // nil unless the tenant was created with Trace
	rate     float64
	scale    float64
	batchS   float64
	nodes    int
	queueCap int

	// sloReg is a separate wall-clock registry: the pipeline registry holds
	// only sim-deterministic values, and latency SLOs are inherently wall
	// time — same separation as journal vs profiler.
	sloReg     *obs.Registry
	hSLOIngest *obs.Histogram // serve.slo.ingest_confirm_ms
	hSLOE2E    *obs.Histogram // serve.slo.detection_e2e_ms

	ingest  chan chunkJob
	closing chan struct{} // closed once: no new ingest, loop drains and exits
	done    chan struct{} // closed by the loop on exit
	stop    sync.Once

	mu         sync.Mutex
	subs       map[*subscriber]struct{}
	seq        int     // next chunk sequence number
	acceptedS  float64 // simulated seconds accepted into the queue
	processedS float64 // simulated seconds fully processed
	dets       []sidapi.Detection
	failed     error // sticky pipeline error; refuses further ingest
	closed     bool  // delete/shutdown initiated
}

// CreateRequest is the body of POST /v1/tenants. Spec is the public
// facade's Config verbatim — the server compiles it through the same
// single lowering path the library uses, so a served field is exactly the
// field sid.NewDeployment would build.
type CreateRequest struct {
	// ID names the tenant ([A-Za-z0-9_.-], ≤64 chars); empty asks the
	// server to assign one.
	ID string `json:"id,omitempty"`
	// Spec is the deployment configuration (facade sid.Config JSON).
	Spec sidapi.Config `json:"spec"`
	// Queue overrides the tenant's ingest queue depth in chunks
	// (default Config.DefaultQueue).
	Queue int `json:"queue,omitempty"`
	// RateHz and CountsPerG describe the sample streams the tenant will
	// be fed; zero takes the sensor defaults (50 Hz, 1024 counts/g).
	RateHz     float64 `json:"rate_hz,omitempty"`
	CountsPerG float64 `json:"counts_per_g,omitempty"`
	// Journal turns on the pipeline's event journal; its JSONL lines are
	// forwarded verbatim on the tenant's event stream.
	Journal bool `json:"journal,omitempty"`
	// Trace turns on detection tracing: every sink-confirmed detection
	// carries a causal span trace served at /v1/tenants/{id}/traces.
	Trace bool `json:"trace,omitempty"`
	// Genesis seeds the tracer's wake-genesis marks — the producer knows
	// when its recorded ships cross; the server only sees samples.
	Genesis []obs.GenesisMark `json:"genesis,omitempty"`
}

// sloBoundsMs are the latency histogram bounds (milliseconds) for the
// per-tenant SLO histograms: ingest-confirm (chunk accept → ingest ack)
// and detection-e2e (chunk accept → detection event delivered).
var sloBoundsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// CreateResponse confirms tenant creation.
type CreateResponse struct {
	ID         string  `json:"id"`
	Nodes      int     `json:"nodes"`
	RateHz     float64 `json:"rate_hz"`
	CountsPerG float64 `json:"counts_per_g"`
	QueueCap   int     `json:"queue_cap"`
}

// IngestResponse acknowledges an accepted chunk (202). Processing is
// asynchronous; the KindIngest stream event confirms completion.
type IngestResponse struct {
	Seq  int     `json:"seq"`
	TEnd float64 `json:"t_end"`
}

// TenantStatus is one tenant's public state.
type TenantStatus struct {
	ID          string  `json:"id"`
	Nodes       int     `json:"nodes"`
	RateHz      float64 `json:"rate_hz"`
	AcceptedS   float64 `json:"accepted_s"`
	ProcessedS  float64 `json:"processed_s"`
	Detections  int     `json:"detections"`
	QueueLen    int     `json:"queue_len"`
	QueueCap    int     `json:"queue_cap"`
	Subscribers int     `json:"subscribers"`
	Closed      bool    `json:"closed"`
	Err         string  `json:"err,omitempty"`
}

// newTenant compiles a tenant spec into a running pipeline. The returned
// tenant's loop is not yet started; the server starts it after
// registration so a failed registration leaks nothing.
func newTenant(srv *Server, id string, req CreateRequest) (*tenant, error) {
	rate, scale := req.RateHz, req.CountsPerG
	def := sensor.DefaultAccelConfig()
	if rate == 0 {
		rate = def.SampleRate
	}
	if scale == 0 {
		scale = def.CountsPerG
	}
	queue := req.Queue
	if queue <= 0 {
		queue = srv.cfg.DefaultQueue
	}
	rc := req.Spec.RuntimeConfig()
	if rc.Workers == 0 {
		// Parallelism comes from concurrent tenants; a spec that asks for
		// Workers explicitly keeps it (results are bit-identical either way).
		rc.Workers = 1
	}
	push, err := source.NewPush(rate, scale, rc.Grid.NumNodes())
	if err != nil {
		return nil, err
	}
	rc.Source = push
	col := obs.New()
	rc.Obs = col
	sloReg := obs.NewRegistry()
	t := &tenant{
		id:       id,
		srv:      srv,
		push:     push,
		col:      col,
		rate:     rate,
		scale:    scale,
		batchS:   rc.SampleBatch,
		nodes:    rc.Grid.NumNodes(),
		queueCap: queue,
		ingest:   make(chan chunkJob, queue),
		closing:  make(chan struct{}),
		done:     make(chan struct{}),
		subs:     map[*subscriber]struct{}{},

		sloReg:     sloReg,
		hSLOIngest: sloReg.Histogram("serve.slo.ingest_confirm_ms", sloBoundsMs),
		hSLOE2E:    sloReg.Histogram("serve.slo.detection_e2e_ms", sloBoundsMs),
	}
	if req.Trace {
		tr := obs.NewTracer(id)
		for _, m := range req.Genesis {
			tr.Genesis(m.Ship, m.T, m.Note)
		}
		col.SetTracer(tr)
		t.tracer = tr
	}
	if req.Journal {
		j := obs.NewJournal(0)
		j.SetSink(journalTap{t})
		col.SetJournal(j)
	}
	rt, err := isid.NewRuntime(rc)
	if err != nil {
		return nil, err
	}
	t.rt = rt
	return t, nil
}

// journalTap forwards the pipeline's JSONL sink lines onto the tenant's
// event stream. The Journal writes exactly one line per Write call; the
// tap copies the bytes (the journal reuses its buffer) and trims the
// newline. Writes only happen inside rt.Run, i.e. on the tenant loop
// goroutine, so delivery ordering matches emission ordering.
type journalTap struct{ t *tenant }

func (jt journalTap) Write(p []byte) (int, error) {
	line := make([]byte, len(p))
	copy(line, p)
	for len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	jt.t.deliver(event{name: sseJournal, line: line})
	return len(p), nil
}

// enqueue accepts a chunk into the bounded ingest queue without blocking.
// It returns the assigned sequence number and end time, or errBusy when
// the queue is full (the HTTP layer turns that into 429 + Retry-After).
func (t *tenant) enqueue(dur float64, nodes [][]sensor.Sample, samples int) (IngestResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return IngestResponse{}, errGone
	}
	if t.failed != nil {
		return IngestResponse{}, fmt.Errorf("%w: %v", errFailed, t.failed)
	}
	job := chunkJob{seq: t.seq, dur: dur, nodes: nodes, samples: samples, wall: time.Now()}
	select {
	case t.ingest <- job:
	default:
		return IngestResponse{}, errBusy
	}
	t.seq++
	t.acceptedS += dur
	return IngestResponse{Seq: job.seq, TEnd: t.acceptedS}, nil
}

// loop is the tenant's single pipeline goroutine: it alternates feeding
// and running (the Push source's contract), broadcasts the resulting
// events, and on close drains whatever was already accepted before
// emitting the terminal event and releasing the subscribers.
func (t *tenant) loop() {
	defer close(t.done)
	for {
		select {
		case job := <-t.ingest:
			t.process(job)
		case <-t.closing:
			for {
				select {
				case job := <-t.ingest:
					t.process(job)
				default:
					t.finish()
					return
				}
			}
		}
	}
}

// process runs one accepted chunk through the pipeline under a server
// worker slot: append every node's samples, advance the simulation by the
// chunk duration, then publish the new detections and the ingest
// confirmation.
func (t *tenant) process(job chunkJob) {
	t.mu.Lock()
	alreadyFailed := t.failed != nil
	t.mu.Unlock()
	if alreadyFailed {
		// The stream is poisoned; confirm nothing, the error event and the
		// sticky 409 already told the producer.
		return
	}
	t.srv.acquire()
	err := func() error {
		defer t.srv.release()
		for node, samples := range job.nodes {
			if len(samples) == 0 {
				continue
			}
			if err := t.push.Append(node, samples); err != nil {
				return err
			}
		}
		return t.rt.Run(job.dur)
	}()
	if err != nil {
		t.fail(err)
		return
	}
	t.mu.Lock()
	have := len(t.dets)
	startS := t.processedS
	t.mu.Unlock()
	reports := t.rt.SinkReports()
	var ids []string
	if t.tracer != nil && len(reports) > have {
		ids = t.tracer.ConfirmedIDs()
	}
	for i, r := range reports[have:] {
		det := toDetection(r)
		t.mu.Lock()
		t.dets = append(t.dets, det)
		t.mu.Unlock()
		t.emit(KindDetection, det)
		e2e := time.Since(job.wall)
		t.hSLOE2E.Observe(float64(e2e) / float64(time.Millisecond))
		// ConfirmedIDs is index-aligned with SinkReports; attach the
		// serving-layer spans to the detection's trace.
		if di := have + i; di < len(ids) {
			simNow := t.rt.Scheduler().Now()
			t.tracer.ServeSpan(ids[di], obs.Span{
				Kind: obs.SpanServeIngest, Start: startS, End: startS + job.dur,
				Node: -1, Seq: job.seq, WallNs: e2e.Nanoseconds(),
			})
			t.tracer.ServeSpan(ids[di], obs.Span{
				Kind: obs.SpanServeDeliver, Start: simNow, End: simNow,
				Node: -1, Seq: job.seq, WallNs: time.Since(job.wall).Nanoseconds(),
			})
		}
	}
	t.mu.Lock()
	t.processedS += job.dur
	tEnd := t.processedS
	t.mu.Unlock()
	t.srv.ctrChunks.Inc()
	t.emit(KindIngest, IngestDone{Seq: job.seq, TEnd: tEnd, Samples: job.samples})
	t.hSLOIngest.Observe(float64(time.Since(job.wall)) / float64(time.Millisecond))
}

// fail records a sticky pipeline error and tells the stream.
func (t *tenant) fail(err error) {
	t.mu.Lock()
	if t.failed == nil {
		t.failed = err
	}
	t.mu.Unlock()
	t.emit(KindError, StreamError{Err: err.Error()})
}

// finish emits the terminal event and closes every subscriber channel.
// It runs as the loop's last act, so no emit can follow the close.
func (t *tenant) finish() {
	t.mu.Lock()
	n := len(t.dets)
	processed := t.processedS
	t.mu.Unlock()
	t.emit(KindEnd, EndOfStream{IngestedS: processed, Detections: n})
	t.mu.Lock()
	for sub := range t.subs {
		close(sub.ch)
	}
	t.subs = nil
	t.mu.Unlock()
}

// emit wraps a server-side payload as an obs.Event-shaped line stamped
// with the pipeline's simulation clock (never wall clock — the stream
// stays a pure function of spec and feed) and delivers it.
func (t *tenant) emit(kind string, data any) {
	line, err := marshalEvent(t.rt.Scheduler().Now(), kind, data)
	if err != nil {
		return
	}
	t.deliver(event{name: kind, line: line})
}

// deliver fans one event out to every subscriber, in order per
// subscriber. Delivery into a full subscriber channel blocks — that stall
// propagates to the tenant loop, the ingest queue fills, and producers
// see 429: bounded buffering end to end. The two unblock paths are the
// subscriber departing (gone) and tenant close, which downgrades to
// best-effort so draining can never deadlock on a stalled consumer.
func (t *tenant) deliver(ev event) {
	t.mu.Lock()
	subs := make([]*subscriber, 0, len(t.subs))
	for s := range t.subs {
		subs = append(subs, s)
	}
	t.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- ev:
		case <-sub.gone:
		case <-t.closing:
			select {
			case sub.ch <- ev:
			case <-sub.gone:
			default:
				t.srv.ctrDropped.Inc()
			}
		}
	}
}

// subscribe attaches an event-stream consumer. Subscribers attached after
// ingestion starts see only subsequent events.
func (t *tenant) subscribe() (*subscriber, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.subs == nil {
		return nil, errGone
	}
	sub := &subscriber{
		ch:   make(chan event, t.srv.cfg.SubscriberBuffer),
		gone: make(chan struct{}),
	}
	t.subs[sub] = struct{}{}
	return sub, nil
}

// unsubscribe detaches a consumer and unblocks any stalled delivery to it.
func (t *tenant) unsubscribe(sub *subscriber) {
	close(sub.gone)
	t.mu.Lock()
	if t.subs != nil {
		delete(t.subs, sub)
	}
	t.mu.Unlock()
}

// shutdown initiates close (idempotent): no new chunks or subscribers are
// accepted, the loop drains what was already accepted and exits. Callers
// wait on t.done for the drain to finish.
func (t *tenant) shutdown() {
	t.stop.Do(func() {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		close(t.closing)
	})
}

// status snapshots the tenant's public state.
func (t *tenant) status() TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStatus{
		ID:          t.id,
		Nodes:       t.nodes,
		RateHz:      t.rate,
		AcceptedS:   t.acceptedS,
		ProcessedS:  t.processedS,
		Detections:  len(t.dets),
		QueueLen:    len(t.ingest),
		QueueCap:    t.queueCap,
		Subscribers: len(t.subs),
		Closed:      t.closed,
	}
	if t.failed != nil {
		st.Err = t.failed.Error()
	}
	return st
}

// detections snapshots the confirmed intrusions so far.
func (t *tenant) detections() []sidapi.Detection {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]sidapi.Detection(nil), t.dets...)
}

// toDetection converts a sink report exactly like the facade's
// Deployment.Detections does — same struct, same unit conversions — so
// marshaling a wire detection and marshaling an in-process run's detection
// produce identical bytes.
func toDetection(r isid.SinkReport) sidapi.Detection {
	det := sidapi.Detection{
		Time:      r.Time,
		C:         r.C,
		Reports:   r.Reports,
		MeanOnset: r.MeanOnset,
		HasSpeed:  r.HasSpeed,
	}
	if r.HasSpeed {
		det.SpeedKnots = geo.ToKnots(r.Speed)
		det.HeadingDeg = geo.ToDeg(r.Heading)
	}
	return det
}
