package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	sidapi "github.com/sid-wsn/sid"
	"github.com/sid-wsn/sid/internal/obs"
)

// testSpec is the integration deployment: the facade default (5×5) at a
// seed whose 10 kn crossing yields two confirmed detections (one with a
// speed estimate) within 250 s.
func testSpec() sidapi.Config {
	cfg := sidapi.DefaultDeployment()
	cfg.Seed = 101
	return cfg
}

// cheapSpec is a 3×3 field for lifecycle/backpressure tests that only
// need a running pipeline, not detections.
func cheapSpec() sidapi.Config {
	cfg := sidapi.DefaultDeployment()
	cfg.Rows, cfg.Cols = 3, 3
	cfg.Seed = 7
	return cfg
}

var testIntruder = sidapi.Intruder{SpeedKnots: 10, CrossAt: 100}

const (
	testDur    = 250.0
	testChunkS = 10.0
)

func createTenant(t *testing.T, baseURL string, req CreateRequest) CreateResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/tenants", ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create tenant: status %d: %s", resp.StatusCode, b)
	}
	var cr CreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// postChunk POSTs one chunk body, retrying on 429 until the queue accepts
// it (verifying Retry-After is present on every rejection).
func postChunk(t *testing.T, baseURL, id string, contentType string, body []byte) IngestResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(baseURL+"/v1/tenants/"+id+"/chunks", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var ir IngestResponse
			err := json.NewDecoder(resp.Body).Decode(&ir)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return ir
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if time.Now().After(deadline) {
				t.Fatal("queue never drained")
			}
			time.Sleep(10 * time.Millisecond)
		default:
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("post chunk: status %d: %s", resp.StatusCode, b)
		}
	}
}

func deleteTenant(t *testing.T, baseURL, id string) TenantStatus {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, baseURL+"/v1/tenants/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("delete tenant: status %d: %s", resp.StatusCode, b)
	}
	var st TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamLines subscribes to a tenant's JSONL event stream in a goroutine.
// The returned function waits for the stream to end (tenant deleted →
// channel closed → EOF) and returns the raw lines.
func streamLines(t *testing.T, baseURL, id string) func() [][]byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/tenants/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var lines [][]byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
		}
	}()
	return func() [][]byte {
		select {
		case <-done:
			return lines
		case <-time.After(60 * time.Second):
			t.Fatal("event stream did not terminate")
			return nil
		}
	}
}

// TestServeWireByteIdentity is the serving determinism gate: the facade
// fleet, the in-process recorded run, and a served tenant fed that
// recording over HTTP must produce byte-identical detection JSON — and
// the tenant's full event stream (journal lines included) must be
// byte-identical across server worker counts and per-tenant Workers
// values. This extends TestRecordReplayEquivalence's contract to the wire.
func TestServeWireByteIdentity(t *testing.T) {
	cfg := testSpec()
	feed, err := BuildFeed(FeedSpec{
		Spec:      cfg,
		Intruders: []sidapi.Intruder{testIntruder},
		Duration:  testDur,
		ChunkS:    testChunkS,
		Journal:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Detections) == 0 {
		t.Fatal("feed produced no detections; the identity test needs some")
	}

	// Reference path: the same config run through the public fleet API.
	fleet, err := sidapi.NewFleet(sidapi.FleetConfig{Deployments: []sidapi.Config{cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.AddIntruder(0, testIntruder); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(testDur); err != nil {
		t.Fatal(err)
	}
	want := fleet.Field(0).Detections()
	if !reflect.DeepEqual(want, feed.Detections) {
		t.Fatalf("feed reference diverges from facade fleet:\n got %+v\nwant %+v", feed.Detections, want)
	}
	wantJSON := make([][]byte, len(want))
	for i, d := range want {
		if wantJSON[i], err = json.Marshal(d); err != nil {
			t.Fatal(err)
		}
	}

	combos := []struct{ server, spec int }{{1, 1}, {4, 1}, {4, 2}}
	var streams [][]byte
	for _, c := range combos {
		c := c
		t.Run(fmt.Sprintf("server%d_spec%d", c.server, c.spec), func(t *testing.T) {
			srv := New(Config{Workers: c.server})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			spec := cfg
			spec.Workers = c.spec
			cr := createTenant(t, ts.URL, CreateRequest{Spec: spec, Journal: true})
			if cr.Nodes != 25 || cr.RateHz != 50 {
				t.Fatalf("create response %+v", cr)
			}
			wait := streamLines(t, ts.URL, cr.ID)
			for _, chunk := range feed.Chunks {
				postChunk(t, ts.URL, cr.ID, ContentTypeBundle, chunk)
			}

			// The wire detections endpoint must match the facade results
			// byte for byte once the stream is drained.
			st := deleteTenant(t, ts.URL, cr.ID)
			if st.ProcessedS != testDur {
				t.Errorf("processed %gs, want %g", st.ProcessedS, testDur)
			}
			lines := wait()
			if len(lines) == 0 {
				t.Fatal("empty event stream")
			}

			var journal bytes.Buffer
			var dets [][]byte
			var end *EndOfStream
			ingests := 0
			for _, line := range lines {
				var ev obs.RawEvent
				if err := json.Unmarshal(line, &ev); err != nil {
					t.Fatalf("bad stream line %q: %v", line, err)
				}
				switch {
				case ev.Kind == KindDetection:
					dets = append(dets, append([]byte(nil), ev.Data...))
				case ev.Kind == KindIngest:
					ingests++
				case ev.Kind == KindEnd:
					end = new(EndOfStream)
					if err := json.Unmarshal(ev.Data, end); err != nil {
						t.Fatal(err)
					}
				case ev.Kind == KindError:
					t.Fatalf("stream error event: %s", ev.Data)
				case !strings.HasPrefix(ev.Kind, "serve."):
					journal.Write(line)
					journal.WriteByte('\n')
				}
			}
			if ingests != len(feed.Chunks) {
				t.Errorf("%d ingest confirmations, want %d", ingests, len(feed.Chunks))
			}
			if end == nil {
				t.Error("no terminal serve.end event")
			} else if end.Detections != len(want) || end.IngestedS != testDur {
				t.Errorf("end event %+v, want %d detections over %gs", end, len(want), testDur)
			}
			if len(dets) != len(wantJSON) {
				t.Fatalf("%d wire detections, want %d", len(dets), len(wantJSON))
			}
			for i := range dets {
				if !bytes.Equal(dets[i], wantJSON[i]) {
					t.Errorf("detection %d:\n wire %s\nwant %s", i, dets[i], wantJSON[i])
				}
			}
			if !bytes.Equal(journal.Bytes(), feed.Journal) {
				t.Errorf("wire journal is not bit-identical to the in-process run (%d vs %d bytes)",
					journal.Len(), len(feed.Journal))
			}
			streams = append(streams, bytes.Join(lines, []byte("\n")))
		})
	}
	for i := 1; i < len(streams); i++ {
		if !bytes.Equal(streams[i], streams[0]) {
			t.Errorf("combo %d: event stream differs from combo 0 — worker counts leaked into the wire", i)
		}
	}
}

// TestServeSSERoundTrip covers the SSE framing and the JSON chunk format:
// create a tenant, POST a silent JSON chunk, and read the ingest
// confirmation back as a named SSE event.
func TestServeSSERoundTrip(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cr := createTenant(t, ts.URL, CreateRequest{Spec: cheapSpec()})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tenants/"+cr.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("content type %q", got)
	}

	body, _ := json.Marshal(Chunk{DurationS: 1})
	postChunk(t, ts.URL, cr.ID, ContentTypeJSON, body)

	sc := bufio.NewScanner(resp.Body)
	var evName, data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			evName = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if evName != KindIngest {
		t.Fatalf("SSE event %q, want %q", evName, KindIngest)
	}
	var ev obs.RawEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("SSE data %q: %v", data, err)
	}
	var id IngestDone
	if err := json.Unmarshal(ev.Data, &id); err != nil {
		t.Fatal(err)
	}
	if id.Seq != 0 || id.TEnd != 1 {
		t.Errorf("ingest confirmation %+v", id)
	}
	deleteTenant(t, ts.URL, cr.ID)
}

// TestServeBackpressure pins the bounded-buffering contract: a consumer
// that stops reading stalls its tenant's pipeline (the subscriber channel
// fills, delivery blocks), the bounded ingest queue fills, and further
// POSTs get 429 + Retry-After — never unbounded buffering, never a
// deadlock. Releasing the consumer drains everything.
func TestServeBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, SubscriberBuffer: 1, DefaultQueue: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cr := createTenant(t, ts.URL, CreateRequest{Spec: cheapSpec()})

	// A subscriber that never reads — the end state of a slow SSE consumer
	// once its channel buffer (capacity 1 here) is full.
	srv.mu.Lock()
	tn := srv.tenants[cr.ID]
	srv.mu.Unlock()
	sub, err := tn.subscribe()
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(Chunk{DurationS: 1})
	accepted, got429 := 0, false
	for i := 0; i < 10 && !got429; i++ {
		resp, err := http.Post(ts.URL+"/v1/tenants/"+cr.ID+"/chunks", ContentTypeJSON, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Errorf("Retry-After %q, want \"1\"", ra)
			}
		default:
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	// Capacity with queue=1, buffer=1 is at most 3 chunks (one confirmed
	// into the buffer, one blocked on delivery, one queued) — the loop must
	// have hit the wall.
	if !got429 {
		t.Fatal("no 429 despite stalled consumer and full queue")
	}
	if accepted == 0 || accepted > 3 {
		t.Errorf("%d chunks accepted before 429, want 1..3", accepted)
	}
	if srv.ctrRejected.Value() == 0 {
		t.Error("serve.rejected_busy counter not incremented")
	}

	// Releasing the consumer un-wedges the pipeline: the queue drains and
	// ingest resumes.
	tn.unsubscribe(sub)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/tenants/"+cr.ID+"/chunks", ContentTypeJSON, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after consumer release")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := deleteTenant(t, ts.URL, cr.ID)
	if st.AcceptedS != st.ProcessedS {
		t.Errorf("delete left %gs accepted vs %gs processed", st.AcceptedS, st.ProcessedS)
	}
}

// TestServeDeleteDrains pins DELETE's synchronous-drain contract: every
// accepted chunk is processed before the response, the stream gets a
// terminal serve.end, and the tenant is gone afterwards.
func TestServeDeleteDrains(t *testing.T) {
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cr := createTenant(t, ts.URL, CreateRequest{Spec: cheapSpec()})
	wait := streamLines(t, ts.URL, cr.ID)

	body, _ := json.Marshal(Chunk{DurationS: 1})
	for i := 0; i < 3; i++ {
		postChunk(t, ts.URL, cr.ID, ContentTypeJSON, body)
	}
	st := deleteTenant(t, ts.URL, cr.ID)
	if st.ProcessedS != 3 || !st.Closed {
		t.Errorf("post-drain status %+v, want 3s processed and closed", st)
	}

	lines := wait()
	if len(lines) == 0 {
		t.Fatal("no events")
	}
	var last obs.RawEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != KindEnd {
		t.Errorf("last event kind %q, want %q", last.Kind, KindEnd)
	}
	var end EndOfStream
	if err := json.Unmarshal(last.Data, &end); err != nil {
		t.Fatal(err)
	}
	if end.IngestedS != 3 {
		t.Errorf("end event reports %gs ingested, want 3", end.IngestedS)
	}

	resp, err := http.Get(ts.URL + "/v1/tenants/" + cr.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted tenant still answers status %d", resp.StatusCode)
	}
}

// TestServeNoGoroutineLeaks creates tenants with attached subscribers,
// deletes some mid-stream, closes the server over the rest, and requires
// the goroutine count to return to baseline — no leaked tenant loops or
// stream handlers.
func TestServeNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		srv := New(Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		body, _ := json.Marshal(Chunk{DurationS: 1})
		var waits []func() [][]byte
		var ids []string
		for i := 0; i < 4; i++ {
			cr := createTenant(t, ts.URL, CreateRequest{Spec: cheapSpec()})
			ids = append(ids, cr.ID)
			waits = append(waits, streamLines(t, ts.URL, cr.ID))
			postChunk(t, ts.URL, cr.ID, ContentTypeJSON, body)
		}
		// Half deleted mid-stream with their consumers attached; the rest
		// are drained by srv.Close on the way out.
		deleteTenant(t, ts.URL, ids[0])
		deleteTenant(t, ts.URL, ids[1])
		waits[0]()
		waits[1]()
	}()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, want ≤ %d (baseline %d + slack)", n, before+2, before)
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeAPIErrors sweeps the HTTP error surface.
func TestServeAPIErrors(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, ct string, body []byte) (int, string) {
		resp, err := http.Post(ts.URL+path, ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code, _ := post("/v1/tenants", ContentTypeJSON, []byte("{nope")); code != 400 {
		t.Errorf("malformed create: %d", code)
	}
	bad := cheapSpec()
	bad.Rows = 0
	body, _ := json.Marshal(CreateRequest{Spec: bad})
	if code, msg := post("/v1/tenants", ContentTypeJSON, body); code != 400 {
		t.Errorf("invalid spec: %d %s", code, msg)
	}
	body, _ = json.Marshal(CreateRequest{ID: "no spaces!", Spec: cheapSpec()})
	if code, _ := post("/v1/tenants", ContentTypeJSON, body); code != 400 {
		t.Errorf("invalid id accepted")
	}

	cr := createTenant(t, ts.URL, CreateRequest{ID: "dup", Spec: cheapSpec()})
	body, _ = json.Marshal(CreateRequest{ID: "dup", Spec: cheapSpec()})
	if code, _ := post("/v1/tenants", ContentTypeJSON, body); code != 409 {
		t.Errorf("duplicate id: want 409")
	}

	for _, path := range []string{
		"/v1/tenants/ghost", "/v1/tenants/ghost/events",
		"/v1/tenants/ghost/metrics", "/v1/tenants/ghost/detections",
	} {
		if code := get(path); code != 404 {
			t.Errorf("GET %s: %d, want 404", path, code)
		}
	}
	if code, _ := post("/v1/tenants/ghost/chunks", ContentTypeJSON, []byte(`{"duration_s":1}`)); code != 404 {
		t.Error("chunk to missing tenant accepted")
	}

	chunks := "/v1/tenants/" + cr.ID + "/chunks"
	cases := []struct {
		name string
		body Chunk
	}{
		{"zero duration", Chunk{}},
		{"partial batch", Chunk{DurationS: 0.7}},
		{"too many streams", Chunk{DurationS: 1, Nodes: make([][]Sample, 10)}},
		{"overfull node", Chunk{DurationS: 1, Nodes: [][]Sample{make([]Sample, 51)}}},
	}
	for _, c := range cases {
		b, _ := json.Marshal(c.body)
		if code, msg := post(chunks, ContentTypeJSON, b); code != 400 {
			t.Errorf("%s: %d %s, want 400", c.name, code, msg)
		}
	}
	if code, _ := post(chunks, "text/plain", []byte("hi")); code != 415 {
		t.Error("wrong content type accepted")
	}
	if code, _ := post(chunks, ContentTypeBundle, []byte("NOTMAGIC")); code != 400 {
		t.Error("garbage bundle accepted")
	}

	// Metrics endpoints answer with snapshots.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "serve.tenants_created" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("merged metrics missing serve.tenants_created")
	}
	if code := get("/v1/tenants/" + cr.ID + "/metrics"); code != 200 {
		t.Error("tenant metrics unavailable")
	}
}
