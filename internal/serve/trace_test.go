package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	sidapi "github.com/sid-wsn/sid"
	"github.com/sid-wsn/sid/internal/obs"
)

// waitProcessed polls a tenant's status until it has processed wantS
// seconds of signal.
func waitProcessed(t *testing.T, baseURL, id string, wantS float64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/v1/tenants/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st TenantStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Err != "" {
			t.Fatalf("tenant failed: %s", st.Err)
		}
		if st.ProcessedS >= wantS {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant stuck at %gs of %gs", st.ProcessedS, wantS)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeTraceWireIdentity extends the wire byte-identity gate to
// detection traces: a tenant created with tracing and fed the recorded
// feed must serve exactly the bytes the in-process recording serialized,
// for every server/tenant worker combination. The tenant ID doubles as
// the TraceID namespace, so it must match the recording's TraceLabel.
func TestServeTraceWireIdentity(t *testing.T) {
	const label = "golden-trace"
	cfg := testSpec()
	feed, err := BuildFeed(FeedSpec{
		Spec:       cfg,
		Intruders:  []sidapi.Intruder{testIntruder},
		Duration:   testDur,
		ChunkS:     testChunkS,
		TraceLabel: label,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Detections) == 0 {
		t.Fatal("feed produced no detections; the identity test needs some")
	}
	if len(feed.Trace) == 0 {
		t.Fatal("traced feed serialized no spans")
	}
	if len(feed.Genesis) != 1 || feed.Genesis[0].T != testIntruder.CrossAt {
		t.Fatalf("genesis marks = %+v", feed.Genesis)
	}

	combos := []struct{ server, spec int }{{1, 1}, {4, 1}, {4, 2}}
	for _, c := range combos {
		c := c
		t.Run(fmt.Sprintf("server%d_spec%d", c.server, c.spec), func(t *testing.T) {
			srv := New(Config{Workers: c.server})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			spec := cfg
			spec.Workers = c.spec
			cr := createTenant(t, ts.URL, CreateRequest{
				ID: label, Spec: spec, Trace: true, Genesis: feed.Genesis,
			})
			for _, chunk := range feed.Chunks {
				postChunk(t, ts.URL, cr.ID, ContentTypeBundle, chunk)
			}
			waitProcessed(t, ts.URL, cr.ID, testDur)

			resp, err := http.Get(ts.URL + "/v1/tenants/" + cr.ID + "/traces?format=jsonl")
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("traces: status %d: %s", resp.StatusCode, got)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Errorf("traces content type %q", ct)
			}
			if !bytes.Equal(got, feed.Trace) {
				t.Errorf("served trace differs from the in-process recording (%d vs %d bytes)",
					len(got), len(feed.Trace))
			}

			// The full trace set carries what the JSONL form deliberately
			// omits: serving-layer spans with wall-clock overlays.
			resp, err = http.Get(ts.URL + "/v1/tenants/" + cr.ID + "/traces")
			if err != nil {
				t.Fatal(err)
			}
			var set obs.TraceSet
			err = json.NewDecoder(resp.Body).Decode(&set)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if set.Label != label || len(set.Traces) != len(feed.Detections) {
				t.Fatalf("trace set label=%q traces=%d, want %q/%d",
					set.Label, len(set.Traces), label, len(feed.Detections))
			}
			for _, doc := range set.Traces {
				if !strings.HasPrefix(doc.ID, label+"/") {
					t.Errorf("trace %q outside tenant namespace", doc.ID)
				}
				kinds := map[string]int{}
				for _, s := range doc.Serve {
					kinds[s.Kind]++
					if s.WallNs <= 0 {
						t.Errorf("serve span %s without wall overlay: %+v", s.Kind, s)
					}
				}
				if kinds[obs.SpanServeIngest] != 1 || kinds[obs.SpanServeDeliver] != 1 {
					t.Errorf("trace %s serve spans = %v, want one ingest and one deliver", doc.ID, kinds)
				}
			}
			deleteTenant(t, ts.URL, cr.ID)
		})
	}
}

// TestServeTraceEndpointErrors pins the traces endpoint's error surface.
func TestServeTraceEndpointErrors(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/tenants/ghost/traces"); code != 404 {
		t.Errorf("missing tenant traces: %d, want 404", code)
	}
	// A tenant created without tracing has no trace set to serve.
	cr := createTenant(t, ts.URL, CreateRequest{Spec: cheapSpec()})
	if code := get("/v1/tenants/" + cr.ID + "/traces"); code != 404 {
		t.Errorf("untraced tenant traces: %d, want 404", code)
	}
	deleteTenant(t, ts.URL, cr.ID)
}

// TestServeMetricsPrometheus pins the ?format=prom exposition on both
// metrics endpoints: it must lint clean (promtool-free validator) and
// carry the per-tenant SLO histograms once chunks have flowed.
func TestServeMetricsPrometheus(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cr := createTenant(t, ts.URL, CreateRequest{Spec: cheapSpec()})
	body, _ := json.Marshal(Chunk{DurationS: 1})
	postChunk(t, ts.URL, cr.ID, ContentTypeJSON, body)
	waitProcessed(t, ts.URL, cr.ID, 1)

	fetch := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("GET %s: content type %q", path, ct)
		}
		if err := obs.ValidatePrometheus(b); err != nil {
			t.Errorf("GET %s: exposition does not lint: %v", path, err)
		}
		return string(b)
	}

	tenantProm := fetch("/v1/tenants/" + cr.ID + "/metrics?format=prom")
	for _, want := range []string{
		"# TYPE serve_slo_ingest_confirm_ms histogram",
		"serve_slo_ingest_confirm_ms_count 1",
		"# TYPE serve_slo_detection_e2e_ms histogram",
	} {
		if !strings.Contains(tenantProm, want) {
			t.Errorf("tenant exposition missing %q", want)
		}
	}
	serverProm := fetch("/v1/metrics?format=prom")
	for _, want := range []string{
		"serve_tenants_created 1",
		"serve_slo_ingest_confirm_ms_count 1",
	} {
		if !strings.Contains(serverProm, want) {
			t.Errorf("server exposition missing %q", want)
		}
	}
	// The JSON form still answers without the format parameter, with the
	// SLO histograms merged in.
	resp, err := http.Get(ts.URL + "/v1/tenants/" + cr.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "serve.slo.ingest_confirm_ms" && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Error("tenant JSON metrics missing the ingest SLO histogram")
	}
	deleteTenant(t, ts.URL, cr.ID)
}

// TestServeDebugRoutes pins the debug surface of the detection server:
// /debug/vars is always mounted, /debug/pprof only with Config.PProf.
func TestServeDebugRoutes(t *testing.T) {
	for _, tc := range []struct {
		name       string
		pprof      bool
		wantStatus int
	}{
		{"default locked down", false, http.StatusNotFound},
		{"opt-in", true, http.StatusOK},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(Config{PProf: tc.pprof})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			resp, err := http.Get(ts.URL + "/debug/vars")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/debug/vars status = %d", resp.StatusCode)
			}
			resp, err = http.Get(ts.URL + "/debug/pprof/")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("/debug/pprof/ status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
		})
	}
}
