// Package serve is the detection-as-a-service layer: a multi-tenant HTTP
// server that runs the SID pipeline as a long-lived service. A tenant is
// one surveillance field: it is created from the public facade's Config
// JSON, fed per-node sample chunks (JSON blocks or binary SIDTRACE
// bundles) over POST, and streams its journal events, sink confirmations
// and ingest acknowledgments back over SSE or chunked JSONL.
//
// The serving contract extends the repo's determinism guarantee to the
// wire: a tenant fed the recording of a simulated run produces detections
// byte-identical to the facade running the same configuration in process,
// for any server worker count and any per-tenant Workers value. Ingest is
// explicitly backpressured — each tenant has a bounded chunk queue, a full
// queue yields 429 with Retry-After, and a slow event consumer stalls its
// tenant's pipeline (filling the queue) rather than buffering without
// bound. See docs/SERVING.md.
package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/trace"
)

// Content types accepted by the chunk ingest endpoint.
const (
	// ContentTypeJSON is a Chunk as a JSON document.
	ContentTypeJSON = "application/json"
	// ContentTypeBundle is a binary SIDTRACE bundle (EncodeBundle).
	ContentTypeBundle = "application/x-sidtrace"
)

// Event kinds the server adds to the stream alongside the pipeline's own
// journal kinds (obs.Kind*). Every stream line is one obs.Event-shaped JSON
// object {"t","kind","data"} with t in simulation time, so the stream stays
// deterministic for a given tenant spec and sample feed.
const (
	// KindDetection is a confirmed intrusion; data is the facade's
	// Detection, byte-identical to marshaling an in-process run's result.
	KindDetection = "serve.detection"
	// KindIngest acknowledges one fully processed chunk (payload
	// IngestDone) — the sink confirmation the load generator measures
	// ingest-to-detection latency against.
	KindIngest = "serve.ingest"
	// KindEnd is the stream's terminal event (payload EndOfStream),
	// emitted when the tenant is deleted or the server shuts down.
	KindEnd = "serve.end"
	// KindError reports a pipeline failure (payload StreamError); the
	// tenant refuses further ingest afterwards.
	KindError = "serve.error"

	// sseJournal is the SSE event name for passthrough journal lines
	// (their JSON "kind" carries the precise obs kind).
	sseJournal = "journal"
)

// IngestDone is the payload of KindIngest.
type IngestDone struct {
	// Seq is the chunk's ingest sequence number (0-based).
	Seq int `json:"seq"`
	// TEnd is the tenant's simulated time after the chunk.
	TEnd float64 `json:"t_end"`
	// Samples is how many samples the chunk carried across all nodes.
	Samples int `json:"samples"`
}

// EndOfStream is the payload of KindEnd.
type EndOfStream struct {
	IngestedS  float64 `json:"ingested_s"`
	Detections int     `json:"detections"`
}

// StreamError is the payload of KindError.
type StreamError struct {
	Err string `json:"err"`
}

// Sample is one three-axis accelerometer reading on the JSON wire. T is
// the absolute sample time in seconds on the tenant's simulated timeline;
// X, Y, Z are ADC counts.
type Sample struct {
	T float64 `json:"t"`
	X int16   `json:"x"`
	Y int16   `json:"y"`
	Z int16   `json:"z"`
}

// Chunk is the JSON ingest body: DurationS seconds of per-node samples.
// DurationS must be a positive multiple of the deployment's sensing batch
// (0.5 s by default); Nodes[i] is node i's samples for the window and may
// be short or empty (the node is silent — a chunk with no samples at all
// still advances simulated time). Nodes may list fewer streams than the
// grid has; trailing nodes are silent.
type Chunk struct {
	DurationS float64    `json:"duration_s"`
	Nodes     [][]Sample `json:"nodes"`
}

// Samples converts the wire chunk to per-node sensor samples.
func (c Chunk) Samples() [][]sensor.Sample {
	out := make([][]sensor.Sample, len(c.Nodes))
	for i, ns := range c.Nodes {
		if len(ns) == 0 {
			continue
		}
		out[i] = make([]sensor.Sample, len(ns))
		for j, s := range ns {
			out[i][j] = sensor.Sample{T: s.T, X: s.X, Y: s.Y, Z: s.Z}
		}
	}
	return out
}

// bundleMagic identifies a binary chunk bundle: a duration plus one full
// SIDTRACE recording per node, length-prefixed.
var bundleMagic = [8]byte{'S', 'I', 'D', 'B', 'N', 'D', 'L', '1'}

// EncodeBundle writes one binary ingest chunk: durationS seconds of
// per-node samples, each node serialized as a standalone SIDTRACE stream
// (so the chunk carries rate, scale and positions in-band, and any SIDTRACE
// tooling can open a node's slice). Empty node streams are encoded as
// zero-length entries. pos may be nil (zero positions).
func EncodeBundle(w io.Writer, durationS, rate, scale float64, pos []geo.Vec2, seed int64, nodes [][]sensor.Sample) error {
	if durationS <= 0 {
		return fmt.Errorf("serve: bundle duration must be positive, got %g", durationS)
	}
	if _, err := w.Write(bundleMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, durationS); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(nodes))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for node, samples := range nodes {
		buf.Reset()
		if len(samples) > 0 {
			h := trace.Header{SampleRate: rate, CountsPerG: scale, StartTime: samples[0].T, Seed: seed}
			if node < len(pos) {
				h.Pos = pos[node]
			}
			if err := trace.Write(&buf, h, samples); err != nil {
				return fmt.Errorf("serve: bundle node %d: %w", node, err)
			}
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBundle parses an EncodeBundle chunk. rate and scale are taken from
// the first non-empty node stream (0, 0 for an all-silent chunk).
func DecodeBundle(r io.Reader) (durationS float64, nodes [][]sensor.Sample, rate, scale float64, err error) {
	var magic [8]byte
	if _, err = io.ReadFull(r, magic[:]); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("serve: reading bundle magic: %w", err)
	}
	if magic != bundleMagic {
		return 0, nil, 0, 0, errors.New("serve: bad magic (not a chunk bundle)")
	}
	if err = binary.Read(r, binary.LittleEndian, &durationS); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("serve: reading bundle duration: %w", err)
	}
	var n uint32
	if err = binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("serve: reading bundle node count: %w", err)
	}
	const maxNodes = 1 << 16
	if n > maxNodes {
		return 0, nil, 0, 0, fmt.Errorf("serve: implausible bundle node count %d", n)
	}
	nodes = make([][]sensor.Sample, n)
	for i := range nodes {
		var byteLen uint32
		if err = binary.Read(r, binary.LittleEndian, &byteLen); err != nil {
			return 0, nil, 0, 0, fmt.Errorf("serve: reading bundle node %d length: %w", i, err)
		}
		if byteLen == 0 {
			continue
		}
		h, samples, err := trace.Read(io.LimitReader(r, int64(byteLen)))
		if err != nil {
			return 0, nil, 0, 0, fmt.Errorf("serve: bundle node %d: %w", i, err)
		}
		if rate == 0 {
			rate, scale = h.SampleRate, h.CountsPerG
		} else if h.SampleRate != rate || h.CountsPerG != scale {
			return 0, nil, 0, 0, fmt.Errorf("serve: bundle node %d rate/scale %g/%g differs from %g/%g",
				i, h.SampleRate, h.CountsPerG, rate, scale)
		}
		nodes[i] = samples
	}
	return durationS, nodes, rate, scale, nil
}

// ChunksFromSource slices a replayable source (typically a Recording's
// Trace) into encoded bundle chunks of chunkDur seconds covering [0,
// total). It drives the Source contract exactly like the pipeline does —
// strictly increasing global indices per node — so it consumes streaming
// traces in bounded memory. The load generator and the CI smoke feed these
// bytes straight to the ingest endpoint.
func ChunksFromSource(src source.Source, pos []geo.Vec2, seed int64, total, chunkDur float64) ([][]byte, error) {
	if chunkDur <= 0 || total <= 0 {
		return nil, fmt.Errorf("serve: total and chunkDur must be positive, got %g, %g", total, chunkDur)
	}
	rate := src.Rate()
	perChunk := int(chunkDur*rate + 0.5)
	if perChunk < 1 {
		return nil, fmt.Errorf("serve: chunkDur %g below one sample at %g Hz", chunkDur, rate)
	}
	nChunks := int(total/chunkDur + 0.5)
	out := make([][]byte, 0, nChunks)
	for k := 0; k < nChunks; k++ {
		t0 := float64(k) * chunkDur
		nodes := make([][]sensor.Sample, src.NumNodes())
		for node := range nodes {
			blk := src.Block(node, k*perChunk, t0, perChunk)
			if len(blk) > 0 {
				nodes[node] = append([]sensor.Sample(nil), blk...)
			}
		}
		var buf bytes.Buffer
		if err := EncodeBundle(&buf, chunkDur, rate, src.Scale(), pos, seed, nodes); err != nil {
			return nil, err
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}
