package serve

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/source"
)

func TestBundleRoundTrip(t *testing.T) {
	nodes := [][]sensor.Sample{
		{{T: 0, X: 1, Y: 2, Z: 3}, {T: 0.02, X: 4, Y: 5, Z: 6}},
		nil, // silent node
		{{T: 0, X: -7, Y: 8, Z: -9}},
	}
	pos := []geo.Vec2{{X: 0, Y: 0}, {X: 25, Y: 0}, {X: 50, Y: 0}}
	var buf bytes.Buffer
	if err := EncodeBundle(&buf, 2.5, 50, 1024, pos, 42, nodes); err != nil {
		t.Fatal(err)
	}
	dur, got, rate, scale, err := DecodeBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dur != 2.5 || rate != 50 || scale != 1024 {
		t.Fatalf("dur=%g rate=%g scale=%g", dur, rate, scale)
	}
	if len(got) != 3 || got[1] != nil {
		t.Fatalf("decoded %d node streams, silent=%v", len(got), got[1])
	}
	for node := range nodes {
		if len(got[node]) != len(nodes[node]) {
			t.Fatalf("node %d: %d samples, want %d", node, len(got[node]), len(nodes[node]))
		}
		for i, s := range nodes[node] {
			g := got[node][i]
			if g.X != s.X || g.Y != s.Y || g.Z != s.Z {
				t.Errorf("node %d sample %d: %+v != %+v", node, i, g, s)
			}
		}
	}

	if _, _, _, _, err := DecodeBundle(bytes.NewReader([]byte("BADMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	if err := EncodeBundle(&buf, 0, 50, 1024, nil, 0, nil); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestChunksFromSource pins that slicing a trace into bundles and decoding
// them back reproduces the trace's samples, chunk-aligned.
func TestChunksFromSource(t *testing.T) {
	const rate, scale = 50.0, 1024.0
	mk := func(n int, t0 float64) []sensor.Sample {
		out := make([]sensor.Sample, n)
		for i := range out {
			out[i] = sensor.Sample{T: t0 + float64(i)/rate, X: int16(i), Y: int16(2 * i), Z: int16(3 * i)}
		}
		return out
	}
	all := [][]sensor.Sample{mk(100, 0), mk(100, 0)} // two nodes, 2 s
	tr, err := source.TraceFromSamples(rate, scale, all)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := ChunksFromSource(tr, nil, 9, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("%d chunks, want 4", len(chunks))
	}
	for k, chunk := range chunks {
		dur, nodes, _, _, err := DecodeBundle(bytes.NewReader(chunk))
		if err != nil {
			t.Fatalf("chunk %d: %v", k, err)
		}
		if dur != 0.5 || len(nodes) != 2 {
			t.Fatalf("chunk %d: dur=%g nodes=%d", k, dur, len(nodes))
		}
		for node := range nodes {
			want := all[node][k*25 : (k+1)*25]
			if len(nodes[node]) != 25 {
				t.Fatalf("chunk %d node %d: %d samples", k, node, len(nodes[node]))
			}
			for i := range want {
				g := nodes[node][i]
				if g.X != want[i].X || g.Y != want[i].Y || g.Z != want[i].Z {
					t.Fatalf("chunk %d node %d sample %d differs", k, node, i)
				}
			}
		}
	}
}

func TestChunkSamplesConversion(t *testing.T) {
	c := Chunk{
		DurationS: 1,
		Nodes: [][]Sample{
			{{T: 0.5, X: 1, Y: 2, Z: 3}},
			{},
		},
	}
	got := c.Samples()
	want := [][]sensor.Sample{{{T: 0.5, X: 1, Y: 2, Z: 3}}, nil}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Samples() = %+v, want %+v", got, want)
	}
}
