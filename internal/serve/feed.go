package serve

import (
	"bytes"
	"fmt"

	sidapi "github.com/sid-wsn/sid"
	"github.com/sid-wsn/sid/internal/obs"
	isid "github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
)

// FeedSpec describes a recorded feed: a facade-configured deployment, the
// intruders crossing it, and how to slice the resulting recording into
// ingest chunks.
type FeedSpec struct {
	// Spec is the deployment, exactly as a tenant would be created.
	Spec sidapi.Config
	// Intruders cross the field (facade geometry — wake.CrossingShip).
	Intruders []sidapi.Intruder
	// Duration is the simulated length of the feed in seconds.
	Duration float64
	// ChunkS is the chunk duration; must divide Duration and be a
	// multiple of the deployment's sensing batch.
	ChunkS float64
	// Journal captures the run's JSONL journal for wire-determinism
	// comparisons.
	Journal bool
	// TraceLabel, when non-empty, attaches a detection tracer under this
	// label (use the tenant ID the feed will be replayed into) and captures
	// the run's deterministic trace serialization for wire comparisons.
	TraceLabel string
}

// Feed is a replayable ingest load: the encoded bundle chunks of a
// recorded run plus the run's own results, which are exactly what a
// tenant fed these chunks must reproduce (the record→replay equivalence
// contract, extended to the wire).
type Feed struct {
	// Chunks are EncodeBundle bodies for POST /v1/tenants/{id}/chunks,
	// in ingest order.
	Chunks [][]byte
	// Detections are the recorded run's confirmed intrusions — identical
	// to what the facade's Deployment.Detections returns for this spec.
	Detections []sidapi.Detection
	// Journal is the recorded run's JSONL journal (nil unless requested).
	// A served tenant with journaling on must forward these exact lines.
	Journal []byte
	// Genesis holds the wake-genesis marks of the recorded intruders (one
	// per intruder, in order) — pass them in the tenant's CreateRequest so
	// the served traces link to the same causal roots.
	Genesis []obs.GenesisMark
	// Trace is the recorded run's deterministic trace serialization (nil
	// unless TraceLabel was set). A served tenant created with the same
	// label and genesis marks must serve these exact bytes.
	Trace []byte
}

// BuildFeed runs the deployment once in process with a recording attached
// and returns the recording sliced into wire chunks, alongside the run's
// detections and (optionally) journal. The load generator uses it to
// manufacture realistic tenant traffic; the integration tests use it as
// the in-process reference the served results must match byte for byte.
func BuildFeed(fs FeedSpec) (*Feed, error) {
	if fs.Duration <= 0 || fs.ChunkS <= 0 {
		return nil, fmt.Errorf("serve: feed duration and chunk must be positive, got %g, %g", fs.Duration, fs.ChunkS)
	}
	rc := fs.Spec.RuntimeConfig()
	rec := &source.Recording{}
	rc.RecordTo = rec
	var buf bytes.Buffer
	var tr *obs.Tracer
	if fs.Journal || fs.TraceLabel != "" {
		col := obs.New()
		if fs.Journal {
			j := obs.NewJournal(0)
			j.SetSink(&buf)
			col.SetJournal(j)
		}
		if fs.TraceLabel != "" {
			tr = obs.NewTracer(fs.TraceLabel)
			col.SetTracer(tr)
		}
		rc.Obs = col
	}
	rt, err := isid.NewRuntime(rc)
	if err != nil {
		return nil, err
	}
	center := rc.Grid.Center()
	var genesis []obs.GenesisMark
	if tr != nil {
		for i, in := range fs.Intruders {
			m := obs.GenesisMark{Ship: i, T: in.CrossAt, Note: "crossing"}
			tr.Genesis(m.Ship, m.T, m.Note)
			genesis = append(genesis, m)
		}
	}
	for _, in := range fs.Intruders {
		ship, err := wake.CrossingShip(center,
			in.SpeedKnots, in.HeadingDeg, in.OffsetM, in.CrossAt, in.LengthM)
		if err != nil {
			return nil, err
		}
		rt.AddShip(ship)
	}
	if err := rt.Run(fs.Duration); err != nil {
		return nil, err
	}
	if err := rec.Err(); err != nil {
		return nil, err
	}
	src, err := rec.Source()
	if err != nil {
		return nil, err
	}
	chunks, err := ChunksFromSource(src, src.Positions(), src.Seed(), fs.Duration, fs.ChunkS)
	if err != nil {
		return nil, err
	}
	feed := &Feed{Chunks: chunks}
	for _, r := range rt.SinkReports() {
		feed.Detections = append(feed.Detections, toDetection(r))
	}
	if fs.Journal {
		feed.Journal = append([]byte(nil), buf.Bytes()...)
	}
	if tr != nil {
		feed.Genesis = genesis
		feed.Trace = tr.SerializePipeline()
	}
	return feed, nil
}
