package source

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wake"
)

func synthFor(t *testing.T, mode SynthesisMode, drift float64, ship bool) *Synthetic {
	t.Helper()
	var positions []geo.Vec2
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			positions = append(positions, geo.Vec2{X: float64(c) * 25, Y: float64(r) * 25})
		}
	}
	s, err := NewSynthetic(SyntheticConfig{
		Positions:   positions,
		Hs:          0.25,
		Tp:          4.0,
		DriftRadius: drift,
		Seed:        1234,
		Synthesis:   mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ship {
		sh, err := wake.NewShip(geo.LineThrough(geo.Vec2{X: -200, Y: -30}, geo.Vec2{X: 300, Y: -30}), 5.1, 8)
		if err != nil {
			t.Fatal(err)
		}
		sh.Time0 = -20
		s.AddSource(wake.Field{Ship: sh})
	}
	return s
}

// TestSpectralSourceMatchesPhasor is the end-to-end equivalence test: for a
// fixed (non-drifting) deployment, the spectral source must produce the
// same quantized samples as the phasor source within one ADC count on every
// axis — the noise streams are identical, so the only difference is the
// sub-half-count synthesis deviation, which rounding can amplify to at most
// one count.
func TestSpectralSourceMatchesPhasor(t *testing.T) {
	phasor := synthFor(t, SynthPhasor, 0, true)
	spectral := synthFor(t, SynthSpectral, 0, true)
	if spectral.Synthesis() != SynthSpectral {
		t.Fatalf("mode not recorded: %v", spectral.Synthesis())
	}
	const (
		perBatch = 25
		batches  = 200 // 100 s at 50 Hz: covers the wake crossing
	)
	var offByOne, total int
	for b := 0; b < batches; b++ {
		idx := b * perBatch
		t0 := float64(idx) / 50
		for node := 0; node < phasor.NumNodes(); node++ {
			pb := phasor.Block(node, idx, t0, perBatch)
			sb := spectral.Block(node, idx, t0, perBatch)
			if len(pb) != len(sb) {
				t.Fatalf("node %d batch %d: block lengths differ: %d vs %d", node, b, len(pb), len(sb))
			}
			for i := range pb {
				if pb[i].T != sb[i].T {
					t.Fatalf("node %d sample %d: times differ: %v vs %v", node, idx+i, pb[i].T, sb[i].T)
				}
				dz := int(pb[i].Z) - int(sb[i].Z)
				dx := int(pb[i].X) - int(sb[i].X)
				dy := int(pb[i].Y) - int(sb[i].Y)
				for _, d := range []int{dz, dx, dy} {
					if d < -1 || d > 1 {
						t.Fatalf("node %d sample %d: counts differ by %d (phasor %+v, spectral %+v)",
							node, idx+i, d, pb[i], sb[i])
					}
					if d != 0 {
						offByOne++
					}
				}
				total += 3
			}
		}
	}
	// Off-by-one rounding flips must be rare: the synthesis deviation is
	// well under half a count (kernel truncation ≪ culling budget ≈ ⅛
	// count), so only samples already within that margin of a rounding
	// boundary can flip — a few percent, not tens.
	if frac := float64(offByOne) / float64(total); frac > 0.05 {
		t.Errorf("%.2f%% of samples differ by one count — synthesis deviation larger than expected", 100*frac)
	}
}

// TestSpectralSourceDeterminism: the spectral source is deterministic with
// drift and wakes — two identical configurations produce bit-identical
// streams block by block.
func TestSpectralSourceDeterminism(t *testing.T) {
	a := synthFor(t, SynthSpectral, 2.0, true)
	b := synthFor(t, SynthSpectral, 2.0, true)
	const perBatch = 25
	for batch := 0; batch < 120; batch++ {
		idx := batch * perBatch
		t0 := float64(idx) / 50
		for node := 0; node < a.NumNodes(); node++ {
			ab := a.Block(node, idx, t0, perBatch)
			bb := b.Block(node, idx, t0, perBatch)
			for i := range ab {
				if ab[i] != bb[i] {
					t.Fatalf("node %d sample %d: runs diverge: %+v vs %+v", node, idx+i, ab[i], bb[i])
				}
			}
		}
	}
}

// TestSpectralSourceCullStats: after a run with a distant wake, the sensors
// must have culled most wake-block evaluations and the plan must have
// dropped some components.
func TestSpectralSourceCullStats(t *testing.T) {
	s := synthFor(t, SynthSpectral, 0, true)
	const perBatch = 25
	for batch := 0; batch < 200; batch++ {
		idx := batch * perBatch
		t0 := float64(idx) / 50
		for node := 0; node < s.NumNodes(); node++ {
			s.Block(node, idx, t0, perBatch)
		}
	}
	st := s.SynthesisStats()
	if st.Mode != SynthSpectral {
		t.Fatalf("stats mode: %v", st.Mode)
	}
	if st.WakeBlocksChecked == 0 {
		t.Fatal("no wake blocks were checked — BoundedModel culling is not wired")
	}
	if st.WakeBlocksSkipped == 0 {
		t.Error("no wake blocks were culled over 100 s — bounds are not tight enough to ever trigger")
	}
	if st.WakeBlocksSkipped >= st.WakeBlocksChecked {
		t.Error("every wake block was culled — the wake never reached any sensor")
	}
	t.Logf("culling: %d/%d wake blocks skipped, %d/%d components dropped (accel sum %.2g m/s²)",
		st.WakeBlocksSkipped, st.WakeBlocksChecked, st.CulledComponents,
		st.CulledComponents+st.ActiveComponents, st.CulledAccelSum)
}

// TestPhasorModeUnchanged: constructing a phasor source must not enable any
// culling — stats stay zero, so recorded goldens are untouched by the
// existence of the spectral machinery.
func TestPhasorModeUnchanged(t *testing.T) {
	s := synthFor(t, SynthPhasor, 2.0, true)
	const perBatch = 25
	for batch := 0; batch < 40; batch++ {
		idx := batch * perBatch
		for node := 0; node < s.NumNodes(); node++ {
			s.Block(node, idx, float64(idx)/50, perBatch)
		}
	}
	st := s.SynthesisStats()
	if st.WakeBlocksChecked != 0 || st.WakeBlocksSkipped != 0 || st.CulledComponents != 0 {
		t.Fatalf("phasor mode ran culling: %+v", st)
	}
}
