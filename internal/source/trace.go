package source

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/trace"
)

// decodeChunk is how many samples a trace node decodes from its stream per
// refill. Together with one batch of look-ahead it bounds a replay's
// per-node memory at roughly (decodeChunk + batch) samples — a few KiB —
// independent of the recording length, which is what lets a deployment
// replay an unbounded stream.
const decodeChunk = 1024

// traceNode is one node's replay state: a streaming decoder (nil once
// drained or for a fully in-memory trace) plus the bounded pending window.
type traceNode struct {
	dec      *trace.Decoder
	closer   io.Closer
	startIdx int             // global sample index of the recording's first sample
	pending  []sensor.Sample // decoded, not yet served
	pendIdx  int             // global index of pending[0]
	out      []sensor.Sample // reused per-call output block
	eof      bool
}

// Trace replays SIDTRACE recordings, one per node, through the detection
// pipeline. Construct with TraceFromSamples (in-memory) or OpenTraceDir
// (streaming from disk). Sample times are recomputed from the pipeline's
// batch clock — not the stored times — so a replay is bit-identical in time
// to the synthesis that recorded it.
type Trace struct {
	rate  float64
	scale float64
	pos   []geo.Vec2
	seed  int64
	nodes []traceNode
}

// TraceFromSamples builds an in-memory replay source: nodes[i] is node i's
// recorded stream (may be empty — that node never senses). The global index
// of each stream's first sample is reconstructed from its first sample time
// as round(T·rate), so recordings that began mid-run replay in place.
func TraceFromSamples(rate, scale float64, nodes [][]sensor.Sample) (*Trace, error) {
	if rate <= 0 || scale <= 0 {
		return nil, fmt.Errorf("source: trace rate and scale must be positive, got %g, %g", rate, scale)
	}
	t := &Trace{rate: rate, scale: scale, pos: make([]geo.Vec2, len(nodes))}
	for _, samples := range nodes {
		tn := traceNode{pending: samples, eof: true}
		if len(samples) > 0 {
			tn.startIdx = globalIndex(samples[0].T, rate)
			tn.pendIdx = tn.startIdx
		}
		t.nodes = append(t.nodes, tn)
	}
	return t, nil
}

// globalIndex converts a sample time to its global index at the given rate.
func globalIndex(t, rate float64) int { return int(t*rate + 0.5) }

// TraceFile returns the canonical per-node recording filename inside a
// trace directory.
func TraceFile(dir string, node int) string {
	return filepath.Join(dir, fmt.Sprintf("node_%03d.sidtrc", node))
}

// OpenTraceDir opens a directory of per-node recordings (node_000.sidtrc,
// node_001.sidtrc, …) as a streaming replay source. Nodes are read
// incrementally during replay; call Close when done. All recordings must
// share one sample rate and ADC scale.
func OpenTraceDir(dir string) (*Trace, error) {
	t := &Trace{}
	for node := 0; ; node++ {
		f, err := os.Open(TraceFile(dir, node))
		if errors.Is(err, os.ErrNotExist) {
			break
		}
		if err != nil {
			t.Close()
			return nil, err
		}
		dec, err := trace.NewDecoder(f)
		if err != nil {
			f.Close()
			t.Close()
			return nil, fmt.Errorf("source: node %d: %w", node, err)
		}
		h := dec.Header()
		if node == 0 {
			t.rate, t.scale, t.seed = h.SampleRate, h.CountsPerG, h.Seed
		} else if h.SampleRate != t.rate || h.CountsPerG != t.scale {
			f.Close()
			t.Close()
			return nil, fmt.Errorf("source: node %d rate/scale %g/%g differs from node 0's %g/%g",
				node, h.SampleRate, h.CountsPerG, t.rate, t.scale)
		}
		start := globalIndex(h.StartTime, h.SampleRate)
		t.pos = append(t.pos, h.Pos)
		t.nodes = append(t.nodes, traceNode{
			dec: dec, closer: f, startIdx: start, pendIdx: start,
		})
	}
	if len(t.nodes) == 0 {
		return nil, fmt.Errorf("source: no node traces (node_000.sidtrc …) in %s", dir)
	}
	return t, nil
}

// Close releases any open trace files. Safe on an in-memory trace.
func (t *Trace) Close() error {
	var first error
	for i := range t.nodes {
		if c := t.nodes[i].closer; c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
			t.nodes[i].closer = nil
		}
	}
	return first
}

// Rate implements Source.
func (t *Trace) Rate() float64 { return t.rate }

// Scale implements Source.
func (t *Trace) Scale() float64 { return t.scale }

// NumNodes implements Source.
func (t *Trace) NumNodes() int { return len(t.nodes) }

// Seed returns the generating scenario's seed recorded in the trace
// headers (0 for real or in-memory data).
func (t *Trace) Seed() int64 { return t.seed }

// Positions returns the recorded buoy positions, indexed by node.
func (t *Trace) Positions() []geo.Vec2 { return t.pos }

// Block implements Source: serve the recorded samples with global indices
// in [idx, idx+n), with times recomputed as t0 + i/rate — the exact formula
// sensor.SampleBlock uses, which is what makes replayed onsets bit-identical
// to the originating simulation. Consumed samples are dropped, keeping the
// pending window bounded.
func (t *Trace) Block(node, idx int, t0 float64, n int) []sensor.Sample {
	ns := &t.nodes[node]
	// Refill the pending window until it covers the batch (or the stream
	// ends). Decoding happens here, on the goroutine that owns this node
	// for the batch.
	for !ns.eof && ns.pendIdx+len(ns.pending) < idx+n {
		want := idx + n - (ns.pendIdx + len(ns.pending))
		if want < decodeChunk {
			want = decodeChunk
		}
		chunk := make([]sensor.Sample, want)
		got, err := ns.dec.Next(chunk)
		ns.pending = append(ns.pending, chunk[:got]...)
		if err != nil {
			// EOF ends the stream cleanly; a short or corrupt file also
			// ends it — the pipeline treats the node as silent from here.
			ns.eof = true
		}
	}
	// Drop anything before the batch: per-node batches arrive in strictly
	// increasing idx order, so earlier samples are never requested again.
	if drop := idx - ns.pendIdx; drop > 0 {
		if drop > len(ns.pending) {
			drop = len(ns.pending)
		}
		ns.pending = ns.pending[drop:]
		ns.pendIdx += drop
	}
	ns.out = ns.out[:0]
	for j := ns.pendIdx; j < idx+n && j-ns.pendIdx < len(ns.pending); j++ {
		if j < idx {
			continue
		}
		s := ns.pending[j-ns.pendIdx]
		s.T = t0 + float64(j-idx)/t.rate
		ns.out = append(ns.out, s)
	}
	if len(ns.out) == 0 {
		return nil
	}
	return ns.out
}
