// Package source abstracts where the detection pipeline's samples come
// from. The SID stack (node detector → temporary cluster → correlation →
// speed estimate) is one algorithm whatever produces the accelerometer
// readings; this package separates sample *production* from the protocol so
// the same `internal/sid` pipeline runs against
//
//   - Synthetic: the simulated deployment (ocean field + ship wakes +
//     buoy/sensor models), synthesized per node in batched blocks, exactly
//     as the pre-refactor Runtime did — with a choice of synthesis engine
//     (SynthPhasor, the exact reference, or SynthSpectral, FFT-based block
//     synthesis; see docs/SYNTHESIS.md), and
//   - Trace: replayed SIDTRACE recordings — the stand-in for the paper's
//     sea-trial data — streamed per node with bounded memory.
//
// The contract mirrors the pipeline's batch loop: the runtime asks each
// node for the block of samples covering one sensing batch, identified both
// by the batch start time t0 and by the global sample index of the batch's
// first sample. Sources must compute sample times from (t0, position in
// block) the same way `sensor.SampleBlock` does, so a replayed stream is
// bit-identical in time to the synthesis that recorded it — onset times are
// sample times, and the record→replay equivalence guarantee rests on this.
package source

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/sim"
)

// Source produces per-node sample blocks on demand for the detection
// pipeline. One Source serves one deployment.
//
// Block returns node's samples for the sensing batch whose first sample has
// global index idx and time t0, n samples long at Rate(). The returned
// slice may be shorter than n (stream exhausted mid-batch) or nil (nothing
// for this node in this batch — e.g. a finite trace that ended); it is
// valid only until the node's next Block call. Batches are requested in
// strictly increasing idx order per node; a source never rewinds.
//
// Implementations must be safe for concurrent Block calls on *distinct*
// nodes (the pipeline fans per-node synthesis across workers); per-node
// calls are sequential.
type Source interface {
	// Rate is the sample rate in Hz.
	Rate() float64
	// Scale is the ADC sensitivity in counts per g — recorded into trace
	// headers and needed to interpret the int16 counts.
	Scale() float64
	// NumNodes is how many node streams the source serves.
	NumNodes() int
	// Block returns node's samples for the batch (idx, t0, n). See the
	// interface comment for the aliasing and concurrency contract.
	Block(node, idx int, t0 float64, n int) []sensor.Sample
}

// Appender is the optional extension a Source implements when surface
// models can be added to it after construction (the synthetic field's
// AddShip/AddSource path). Trace replays are immutable recordings and do
// not implement it.
type Appender interface {
	AddSource(m sensor.SurfaceModel)
}

// SynthesisMode selects how Synthetic turns the wave field into sample
// blocks. The zero value is the phasor path, so existing configurations and
// recorded traces are unaffected by the existence of the spectral mode.
type SynthesisMode int

const (
	// SynthPhasor rotates every wave component once per sample (the
	// original path: O(samples × components), exact per-sample drift
	// linearization). This is the bit-compatibility reference: golden
	// traces and seeded regression runs were recorded in this mode.
	SynthPhasor SynthesisMode = iota
	// SynthSpectral synthesizes each node's samples by inverse FFT of the
	// sampled wave spectrum in overlapping windowed chunks
	// (O(N log N + components × kernel) per N/2 samples — see
	// docs/SYNTHESIS.md), with component culling below the quantization
	// floor and per-block wake-packet culling. Equivalent to the phasor
	// path within half a quantization step for a fixed observer; a
	// drifting observer is frozen per chunk instead of per sample (wake
	// onsets remain exact per sample in both modes).
	SynthSpectral
)

// String implements fmt.Stringer for logs and bench metadata.
func (m SynthesisMode) String() string {
	switch m {
	case SynthPhasor:
		return "phasor"
	case SynthSpectral:
		return "spectral"
	default:
		return fmt.Sprintf("SynthesisMode(%d)", int(m))
	}
}

// SyntheticConfig assembles a simulated sample source.
type SyntheticConfig struct {
	// Positions are the node deployment positions (grid anchors).
	Positions []geo.Vec2
	// Hs, Tp parametrize the ambient Pierson–Moskowitz sea.
	Hs, Tp float64
	// DriftRadius is the buoy mooring drift bound in meters.
	DriftRadius float64
	// Accel describes the accelerometer; the zero value selects
	// sensor.DefaultAccelConfig (the paper's LIS3L02DQ).
	Accel sensor.AccelConfig
	// Seed drives the ocean phases, buoy drift and sensor noise. The
	// derivations (the "sid.nodes" buoy-seed stream, the ocean's
	// seed^0x0cea) are pinned: they must match what the pre-refactor
	// runtime drew so existing seeded runs stay bit-identical.
	Seed int64
	// Synthesis selects the block synthesis path; the zero value is the
	// phasor reference path. The field realization, buoy seeds and noise
	// streams are identical in both modes — only the ambient-sea series
	// synthesis differs, within the documented tolerance.
	Synthesis SynthesisMode
	// SpectralWindow overrides the spectral chunk length (power of two;
	// 0 selects the ocean package default of 1024 samples). Ignored in
	// phasor mode.
	SpectralWindow int
}

// cullFraction sets the culling floors as a fraction of one ADC count: a
// model or component bundle whose whole contribution stays below a quarter
// count cannot move any quantized sample beyond the rounding it already
// suffers, keeping the spectral mode inside the half-count equivalence
// contract with margin.
const cullFraction = 0.25

// synthNode is one node's synthesis state: its sensor (buoy + noise
// stream), the reusable block scratch, and — in spectral mode — the node's
// own composite model headed by its spectral stream. Each is touched by
// exactly one goroutine per batch.
type synthNode struct {
	sens  *sensor.Sensor
	bufs  sensor.BlockBuffers
	model sensor.Composite // spectral mode only; phasor mode shares Synthetic.model
}

// Synthetic synthesizes every node's samples from a composite surface
// model: the ambient ocean field plus any number of ship wakes. It is the
// extracted sample-production half of the old monolithic sid.Runtime.
//
// In phasor mode (the zero SynthesisMode) all nodes share one model slice;
// in spectral mode each node's model starts with its own SpectralStream
// over the shared SpectralPlan, and wake models appended by AddSource are
// culled per node-block via their Bounds.
type Synthetic struct {
	rate    float64
	scale   float64
	mode    SynthesisMode
	model   sensor.Composite
	nodes   []synthNode
	plan    *ocean.SpectralPlan // spectral mode only
	perNode bool
}

// NewSynthetic builds the ocean field and one sensor per node.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if len(cfg.Positions) == 0 {
		return nil, fmt.Errorf("source: no node positions")
	}
	if cfg.Hs <= 0 || cfg.Tp <= 0 {
		return nil, fmt.Errorf("source: Hs and Tp must be positive, got %g, %g", cfg.Hs, cfg.Tp)
	}
	if cfg.Synthesis != SynthPhasor && cfg.Synthesis != SynthSpectral {
		return nil, fmt.Errorf("source: unknown synthesis mode %d", int(cfg.Synthesis))
	}
	accel := cfg.Accel
	if accel == (sensor.AccelConfig{}) {
		accel = sensor.DefaultAccelConfig()
	}
	spec, err := ocean.NewPiersonMoskowitz(cfg.Hs, cfg.Tp)
	if err != nil {
		return nil, err
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: cfg.Seed ^ 0x0cea})
	if err != nil {
		return nil, err
	}
	s := &Synthetic{
		rate:  accel.SampleRate,
		scale: accel.CountsPerG,
		mode:  cfg.Synthesis,
		model: sensor.Composite{field},
		nodes: make([]synthNode, 0, len(cfg.Positions)),
	}
	cull := sensor.CullThresholds{
		Accel: cullFraction * ocean.Gravity / accel.CountsPerG,
		Slope: cullFraction / accel.CountsPerG,
	}
	if cfg.Synthesis == SynthSpectral {
		s.perNode = true
		s.plan, err = ocean.NewSpectralPlan(field, ocean.SpectralConfig{
			Rate:   accel.SampleRate,
			Window: cfg.SpectralWindow,
			// Tolerances: half a count, the phasor-equivalence contract.
			TolAccel: 0.5 * ocean.Gravity / accel.CountsPerG,
			TolSlope: 0.5 / accel.CountsPerG,
			// Component culling spends half of the cull budget; wake
			// culling at the sensor spends the other half independently.
			CullAccel: 0.5 * cull.Accel,
			CullSlope: 0.5 * cull.Slope,
		})
		if err != nil {
			return nil, err
		}
	}
	// Buoy seeds come from the "sid.nodes" stream in node order — the same
	// stream, same draws, as the pre-source runtime construction.
	seedRNG := sim.RNG(cfg.Seed, "sid.nodes")
	for _, pos := range cfg.Positions {
		buoy := sensor.NewBuoy(sensor.BuoyConfig{
			Anchor:      pos,
			DriftRadius: cfg.DriftRadius,
			Seed:        seedRNG.Int63(),
		})
		sens, err := sensor.NewSensor(buoy, accel)
		if err != nil {
			return nil, err
		}
		node := synthNode{sens: sens}
		if s.perNode {
			var stream *ocean.SpectralStream
			if cfg.DriftRadius > 0 {
				stream = s.plan.NewMovingStream(buoy.Position)
			} else {
				stream = s.plan.NewStream(pos)
			}
			node.model = sensor.Composite{stream}
			sens.SetCullThresholds(cull)
		}
		s.nodes = append(s.nodes, node)
	}
	return s, nil
}

// Rate implements Source.
func (s *Synthetic) Rate() float64 { return s.rate }

// Scale implements Source.
func (s *Synthetic) Scale() float64 { return s.scale }

// NumNodes implements Source.
func (s *Synthetic) NumNodes() int { return len(s.nodes) }

// Synthesis returns the active synthesis mode.
func (s *Synthetic) Synthesis() SynthesisMode { return s.mode }

// Block implements Source: the node's sensor synthesizes n samples from
// the node's model (phasor mode: the shared composite; spectral mode: the
// node's own stream-headed composite), reusing the node's scratch buffers.
// idx is unused — synthesis is a pure function of (t0, n) and the node's
// sequential noise stream.
func (s *Synthetic) Block(node, idx int, t0 float64, n int) []sensor.Sample {
	ns := &s.nodes[node]
	model := s.model
	if s.perNode {
		model = ns.model
	}
	return ns.sens.SampleBlock(model, t0, n, &ns.bufs)
}

// AddSource implements Appender: the model superposes linearly, so ship
// wakes (or any surface disturbance) stack onto the ambient sea. Call only
// between pipeline runs — blocks synthesized after the call see the new
// source. In spectral mode the model is appended to every node's composite
// (each node owns its model so its spectral stream can head it).
func (s *Synthetic) AddSource(m sensor.SurfaceModel) {
	s.model = append(s.model, m)
	if s.perNode {
		for i := range s.nodes {
			s.nodes[i].model = append(s.nodes[i].model, m)
		}
	}
}

// SynthesisStats reports the spectral mode's culling effectiveness: how
// many spectral components the amplitude budget dropped (with the summed
// amplitudes of everything dropped), and how many per-node wake-block
// evaluations the sensors skipped out of how many they checked. All zeros
// in phasor mode.
type SynthesisStats struct {
	Mode              SynthesisMode
	ActiveComponents  int
	CulledComponents  int
	CulledAccelSum    float64 // m/s²
	CulledSlopeSum    float64 // dimensionless
	WakeBlocksSkipped int64
	WakeBlocksChecked int64
}

// SynthesisStats aggregates culling counters across the plan and all node
// sensors. Call it between pipeline runs (it reads per-node state the
// workers mutate during a batch).
func (s *Synthetic) SynthesisStats() SynthesisStats {
	st := SynthesisStats{Mode: s.mode}
	if s.plan != nil {
		st.ActiveComponents = s.plan.NumComponents()
		st.CulledComponents, st.CulledAccelSum, st.CulledSlopeSum = s.plan.CulledComponents()
	}
	for i := range s.nodes {
		skipped, checked := s.nodes[i].sens.CullStats()
		st.WakeBlocksSkipped += skipped
		st.WakeBlocksChecked += checked
	}
	return st
}
