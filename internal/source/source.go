// Package source abstracts where the detection pipeline's samples come
// from. The SID stack (node detector → temporary cluster → correlation →
// speed estimate) is one algorithm whatever produces the accelerometer
// readings; this package separates sample *production* from the protocol so
// the same `internal/sid` pipeline runs against
//
//   - Synthetic: the simulated deployment (ocean field + ship wakes +
//     buoy/sensor models), synthesized per node in batched blocks, exactly
//     as the pre-refactor Runtime did, and
//   - Trace: replayed SIDTRACE recordings — the stand-in for the paper's
//     sea-trial data — streamed per node with bounded memory.
//
// The contract mirrors the pipeline's batch loop: the runtime asks each
// node for the block of samples covering one sensing batch, identified both
// by the batch start time t0 and by the global sample index of the batch's
// first sample. Sources must compute sample times from (t0, position in
// block) the same way `sensor.SampleBlock` does, so a replayed stream is
// bit-identical in time to the synthesis that recorded it — onset times are
// sample times, and the record→replay equivalence guarantee rests on this.
package source

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/sim"
)

// Source produces per-node sample blocks on demand for the detection
// pipeline. One Source serves one deployment.
//
// Block returns node's samples for the sensing batch whose first sample has
// global index idx and time t0, n samples long at Rate(). The returned
// slice may be shorter than n (stream exhausted mid-batch) or nil (nothing
// for this node in this batch — e.g. a finite trace that ended); it is
// valid only until the node's next Block call. Batches are requested in
// strictly increasing idx order per node; a source never rewinds.
//
// Implementations must be safe for concurrent Block calls on *distinct*
// nodes (the pipeline fans per-node synthesis across workers); per-node
// calls are sequential.
type Source interface {
	// Rate is the sample rate in Hz.
	Rate() float64
	// Scale is the ADC sensitivity in counts per g — recorded into trace
	// headers and needed to interpret the int16 counts.
	Scale() float64
	// NumNodes is how many node streams the source serves.
	NumNodes() int
	// Block returns node's samples for the batch (idx, t0, n). See the
	// interface comment for the aliasing and concurrency contract.
	Block(node, idx int, t0 float64, n int) []sensor.Sample
}

// Appender is the optional extension a Source implements when surface
// models can be added to it after construction (the synthetic field's
// AddShip/AddSource path). Trace replays are immutable recordings and do
// not implement it.
type Appender interface {
	AddSource(m sensor.SurfaceModel)
}

// SyntheticConfig assembles a simulated sample source.
type SyntheticConfig struct {
	// Positions are the node deployment positions (grid anchors).
	Positions []geo.Vec2
	// Hs, Tp parametrize the ambient Pierson–Moskowitz sea.
	Hs, Tp float64
	// DriftRadius is the buoy mooring drift bound in meters.
	DriftRadius float64
	// Accel describes the accelerometer; the zero value selects
	// sensor.DefaultAccelConfig (the paper's LIS3L02DQ).
	Accel sensor.AccelConfig
	// Seed drives the ocean phases, buoy drift and sensor noise. The
	// derivations (the "sid.nodes" buoy-seed stream, the ocean's
	// seed^0x0cea) are pinned: they must match what the pre-refactor
	// runtime drew so existing seeded runs stay bit-identical.
	Seed int64
}

// synthNode is one node's synthesis state: its sensor (buoy + noise
// stream) and the reusable block scratch. Each is touched by exactly one
// goroutine per batch.
type synthNode struct {
	sens *sensor.Sensor
	bufs sensor.BlockBuffers
}

// Synthetic synthesizes every node's samples from a composite surface
// model: the ambient ocean field plus any number of ship wakes. It is the
// extracted sample-production half of the old monolithic sid.Runtime.
type Synthetic struct {
	rate  float64
	scale float64
	model sensor.Composite
	nodes []synthNode
}

// NewSynthetic builds the ocean field and one sensor per node.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if len(cfg.Positions) == 0 {
		return nil, fmt.Errorf("source: no node positions")
	}
	if cfg.Hs <= 0 || cfg.Tp <= 0 {
		return nil, fmt.Errorf("source: Hs and Tp must be positive, got %g, %g", cfg.Hs, cfg.Tp)
	}
	accel := cfg.Accel
	if accel == (sensor.AccelConfig{}) {
		accel = sensor.DefaultAccelConfig()
	}
	spec, err := ocean.NewPiersonMoskowitz(cfg.Hs, cfg.Tp)
	if err != nil {
		return nil, err
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: cfg.Seed ^ 0x0cea})
	if err != nil {
		return nil, err
	}
	s := &Synthetic{
		rate:  accel.SampleRate,
		scale: accel.CountsPerG,
		model: sensor.Composite{field},
		nodes: make([]synthNode, 0, len(cfg.Positions)),
	}
	// Buoy seeds come from the "sid.nodes" stream in node order — the same
	// stream, same draws, as the pre-source runtime construction.
	seedRNG := sim.RNG(cfg.Seed, "sid.nodes")
	for _, pos := range cfg.Positions {
		buoy := sensor.NewBuoy(sensor.BuoyConfig{
			Anchor:      pos,
			DriftRadius: cfg.DriftRadius,
			Seed:        seedRNG.Int63(),
		})
		sens, err := sensor.NewSensor(buoy, accel)
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, synthNode{sens: sens})
	}
	return s, nil
}

// Rate implements Source.
func (s *Synthetic) Rate() float64 { return s.rate }

// Scale implements Source.
func (s *Synthetic) Scale() float64 { return s.scale }

// NumNodes implements Source.
func (s *Synthetic) NumNodes() int { return len(s.nodes) }

// Block implements Source: the node's sensor synthesizes n samples from
// the composite model, reusing the node's scratch buffers. idx is unused —
// synthesis is a pure function of (t0, n) and the node's sequential noise
// stream.
func (s *Synthetic) Block(node, idx int, t0 float64, n int) []sensor.Sample {
	ns := &s.nodes[node]
	return ns.sens.SampleBlock(s.model, t0, n, &ns.bufs)
}

// AddSource implements Appender: the model superposes linearly, so ship
// wakes (or any surface disturbance) stack onto the ambient sea. Call only
// between pipeline runs — blocks synthesized after the call see the new
// source.
func (s *Synthetic) AddSource(m sensor.SurfaceModel) {
	s.model = append(s.model, m)
}
