// Package source abstracts where the detection pipeline's samples come
// from. The SID stack (node detector → temporary cluster → correlation →
// speed estimate) is one algorithm whatever produces the accelerometer
// readings; this package separates sample *production* from the protocol so
// the same `internal/sid` pipeline runs against
//
//   - Synthetic: the simulated deployment (ocean field + ship wakes +
//     buoy/sensor models), synthesized per node in batched blocks, exactly
//     as the pre-refactor Runtime did — with a choice of synthesis engine
//     (SynthPhasor, the exact reference, or SynthSpectral, FFT-based block
//     synthesis; see docs/SYNTHESIS.md), and
//   - Trace: replayed SIDTRACE recordings — the stand-in for the paper's
//     sea-trial data — streamed per node with bounded memory.
//
// The contract mirrors the pipeline's batch loop: the runtime asks each
// node for the block of samples covering one sensing batch, identified both
// by the batch start time t0 and by the global sample index of the batch's
// first sample. Sources must compute sample times from (t0, position in
// block) the same way `sensor.SampleBlock` does, so a replayed stream is
// bit-identical in time to the synthesis that recorded it — onset times are
// sample times, and the record→replay equivalence guarantee rests on this.
package source

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/sim"
)

// Source produces per-node sample blocks on demand for the detection
// pipeline. One Source serves one deployment.
//
// Block returns node's samples for the sensing batch whose first sample has
// global index idx and time t0, n samples long at Rate(). The returned
// slice may be shorter than n (stream exhausted mid-batch) or nil (nothing
// for this node in this batch — e.g. a finite trace that ended); it is
// valid only until the node's next Block call. Batches are requested in
// strictly increasing idx order per node; a source never rewinds.
//
// Implementations must be safe for concurrent Block calls on *distinct*
// nodes (the pipeline fans per-node synthesis across workers); per-node
// calls are sequential.
type Source interface {
	// Rate is the sample rate in Hz.
	Rate() float64
	// Scale is the ADC sensitivity in counts per g — recorded into trace
	// headers and needed to interpret the int16 counts.
	Scale() float64
	// NumNodes is how many node streams the source serves.
	NumNodes() int
	// Block returns node's samples for the batch (idx, t0, n). See the
	// interface comment for the aliasing and concurrency contract.
	Block(node, idx int, t0 float64, n int) []sensor.Sample
}

// Appender is the optional extension a Source implements when surface
// models can be added to it after construction (the synthetic field's
// AddShip/AddSource path). Trace replays are immutable recordings and do
// not implement it.
type Appender interface {
	AddSource(m sensor.SurfaceModel)
}

// BatchPreparer is the optional extension a Source implements when it wants
// a serial hook before each batch's parallel per-node Block fan-out. The
// pipeline calls PrepareBatch exactly once per batch — from the serial
// scheduler event, never concurrently with Block — with the same (idx, t0,
// n) every node's Block call of that batch will receive. Synthetic uses it
// to query its spatial index once per active wake and stage per-node active
// model lists, so the parallel phase stays free of shared mutable state.
type BatchPreparer interface {
	PrepareBatch(idx int, t0 float64, n int)
}

// SynthesisMode selects how Synthetic turns the wave field into sample
// blocks. The zero value is the phasor path, so existing configurations and
// recorded traces are unaffected by the existence of the spectral mode.
type SynthesisMode int

const (
	// SynthPhasor rotates every wave component once per sample (the
	// original path: O(samples × components), exact per-sample drift
	// linearization). This is the bit-compatibility reference: golden
	// traces and seeded regression runs were recorded in this mode.
	SynthPhasor SynthesisMode = iota
	// SynthSpectral synthesizes each node's samples by inverse FFT of the
	// sampled wave spectrum in overlapping windowed chunks
	// (O(N log N + components × kernel) per N/2 samples — see
	// docs/SYNTHESIS.md), with component culling below the quantization
	// floor and per-block wake-packet culling. Equivalent to the phasor
	// path within half a quantization step for a fixed observer; a
	// drifting observer is frozen per chunk instead of per sample (wake
	// onsets remain exact per sample in both modes).
	SynthSpectral
)

// String implements fmt.Stringer for logs and bench metadata.
func (m SynthesisMode) String() string {
	switch m {
	case SynthPhasor:
		return "phasor"
	case SynthSpectral:
		return "spectral"
	default:
		return fmt.Sprintf("SynthesisMode(%d)", int(m))
	}
}

// SyntheticConfig assembles a simulated sample source.
type SyntheticConfig struct {
	// Positions are the node deployment positions (grid anchors).
	Positions []geo.Vec2
	// Hs, Tp parametrize the ambient Pierson–Moskowitz sea.
	Hs, Tp float64
	// DriftRadius is the buoy mooring drift bound in meters.
	DriftRadius float64
	// Accel describes the accelerometer; the zero value selects
	// sensor.DefaultAccelConfig (the paper's LIS3L02DQ).
	Accel sensor.AccelConfig
	// Seed drives the ocean phases, buoy drift and sensor noise. The
	// derivations (the "sid.nodes" buoy-seed stream, the ocean's
	// seed^0x0cea) are pinned: they must match what the pre-refactor
	// runtime drew so existing seeded runs stay bit-identical.
	Seed int64
	// Synthesis selects the block synthesis path; the zero value is the
	// phasor reference path. The field realization, buoy seeds and noise
	// streams are identical in both modes — only the ambient-sea series
	// synthesis differs, within the documented tolerance.
	Synthesis SynthesisMode
	// SpectralWindow overrides the spectral chunk length (power of two;
	// 0 selects the ocean package default of 1024 samples). Ignored in
	// phasor mode.
	SpectralWindow int
	// DisableIndex turns off the spatial wake index that spectral mode
	// builds over Positions, forcing every node to carry every wake model
	// and pay the per-block bound check (the pre-index behavior). The
	// indexed and unindexed paths are bit-identical — the flag exists for
	// cross-checks and A/B benchmarks, not correctness. Ignored in phasor
	// mode, which never indexes.
	DisableIndex bool
}

// cullFraction sets the culling floors as a fraction of one ADC count: a
// model or component bundle whose whole contribution stays below a quarter
// count cannot move any quantized sample beyond the rounding it already
// suffers, keeping the spectral mode inside the half-count equivalence
// contract with margin.
const cullFraction = 0.25

// indexDriftMargin is the extra inflation (meters) added to the drift
// radius when the spatial index pads a cell rectangle for a region bound.
// It covers the ~0.5 m intra-block observer slack the point Bounds contract
// already tolerates, with headroom — the region bound must dominate the
// point bound at the *drifted* position the sensor's own cull evaluates at.
const indexDriftMargin = 1.0

// synthNode is one node's synthesis state: its sensor (buoy + noise
// stream), the reusable block scratch, and — in spectral mode — the node's
// own composite model headed by its spectral stream. Each is touched by
// exactly one goroutine per batch.
type synthNode struct {
	sens  *sensor.Sensor
	bufs  sensor.BlockBuffers
	model sensor.Composite // spectral mode only; phasor mode shares Synthetic.model
	// batch is the per-batch active composite when the spatial index is on:
	// model plus only the indexed wakes whose region bound reaches this
	// node's cell. Rebuilt by PrepareBatch (serial) and read by Block
	// (parallel, this node's goroutine only); capacity is reused.
	batch sensor.Composite
}

// Synthetic synthesizes every node's samples from a composite surface
// model: the ambient ocean field plus any number of ship wakes. It is the
// extracted sample-production half of the old monolithic sid.Runtime.
//
// In phasor mode (the zero SynthesisMode) all nodes share one model slice;
// in spectral mode each node's model starts with its own SpectralStream
// over the shared SpectralPlan, and wake models appended by AddSource are
// culled per node-block via their Bounds.
type Synthetic struct {
	rate    float64
	scale   float64
	mode    SynthesisMode
	model   sensor.Composite
	nodes   []synthNode
	plan    *ocean.SpectralPlan // spectral mode only
	perNode bool

	// Spatial index state (spectral mode, unless disabled). boxed holds the
	// region-boundable wakes routed through the index instead of being
	// appended to every node's composite; PrepareBatch queries the index
	// once per boxed wake per batch and stages each node's active list.
	index    *geo.Index
	cull     sensor.CullThresholds
	driftPad float64
	boxed    []sensor.RegionBoundedModel
	queryBuf []int
	// preparedFor is the batch idx the nodes' batch composites are staged
	// for, -1 when unstaged. Written only from the serial PrepareBatch /
	// AddSource; Block only reads it.
	preparedFor int64
	// Index effectiveness counters: node-blocks selected (paid at least the
	// block-level bound check) vs node-blocks the index could have offered.
	idxSelected int64
	idxOffered  int64
}

// NewSynthetic builds the ocean field and one sensor per node.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if len(cfg.Positions) == 0 {
		return nil, fmt.Errorf("source: no node positions")
	}
	if cfg.Hs <= 0 || cfg.Tp <= 0 {
		return nil, fmt.Errorf("source: Hs and Tp must be positive, got %g, %g", cfg.Hs, cfg.Tp)
	}
	if cfg.Synthesis != SynthPhasor && cfg.Synthesis != SynthSpectral {
		return nil, fmt.Errorf("source: unknown synthesis mode %d", int(cfg.Synthesis))
	}
	accel := cfg.Accel
	if accel == (sensor.AccelConfig{}) {
		accel = sensor.DefaultAccelConfig()
	}
	spec, err := ocean.NewPiersonMoskowitz(cfg.Hs, cfg.Tp)
	if err != nil {
		return nil, err
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: cfg.Seed ^ 0x0cea})
	if err != nil {
		return nil, err
	}
	s := &Synthetic{
		rate:        accel.SampleRate,
		scale:       accel.CountsPerG,
		mode:        cfg.Synthesis,
		model:       sensor.Composite{field},
		nodes:       make([]synthNode, 0, len(cfg.Positions)),
		preparedFor: -1,
	}
	cull := sensor.CullThresholds{
		Accel: cullFraction * ocean.Gravity / accel.CountsPerG,
		Slope: cullFraction / accel.CountsPerG,
	}
	if cfg.Synthesis == SynthSpectral {
		s.perNode = true
		if !cfg.DisableIndex {
			s.index = geo.NewIndex(cfg.Positions, 0)
			s.cull = cull
			// Index cells are inflated by the mooring drift radius plus a
			// margin, so the region bound covers every position a node
			// bucketed in the cell can observe from.
			s.driftPad = cfg.DriftRadius + indexDriftMargin
		}
		s.plan, err = ocean.NewSpectralPlan(field, ocean.SpectralConfig{
			Rate:   accel.SampleRate,
			Window: cfg.SpectralWindow,
			// Tolerances: half a count, the phasor-equivalence contract.
			TolAccel: 0.5 * ocean.Gravity / accel.CountsPerG,
			TolSlope: 0.5 / accel.CountsPerG,
			// Component culling spends half of the cull budget; wake
			// culling at the sensor spends the other half independently.
			CullAccel: 0.5 * cull.Accel,
			CullSlope: 0.5 * cull.Slope,
		})
		if err != nil {
			return nil, err
		}
	}
	// Buoy seeds come from the "sid.nodes" stream in node order — the same
	// stream, same draws, as the pre-source runtime construction.
	seedRNG := sim.RNG(cfg.Seed, "sid.nodes")
	for _, pos := range cfg.Positions {
		buoy := sensor.NewBuoy(sensor.BuoyConfig{
			Anchor:      pos,
			DriftRadius: cfg.DriftRadius,
			Seed:        seedRNG.Int63(),
		})
		sens, err := sensor.NewSensor(buoy, accel)
		if err != nil {
			return nil, err
		}
		node := synthNode{sens: sens}
		if s.perNode {
			var stream *ocean.SpectralStream
			if cfg.DriftRadius > 0 {
				stream = s.plan.NewMovingStream(buoy.Position)
			} else {
				stream = s.plan.NewStream(pos)
			}
			node.model = sensor.Composite{stream}
			sens.SetCullThresholds(cull)
		}
		s.nodes = append(s.nodes, node)
	}
	return s, nil
}

// Rate implements Source.
func (s *Synthetic) Rate() float64 { return s.rate }

// Scale implements Source.
func (s *Synthetic) Scale() float64 { return s.scale }

// NumNodes implements Source.
func (s *Synthetic) NumNodes() int { return len(s.nodes) }

// Synthesis returns the active synthesis mode.
func (s *Synthetic) Synthesis() SynthesisMode { return s.mode }

// Block implements Source: the node's sensor synthesizes n samples from
// the node's model (phasor mode: the shared composite; spectral mode: the
// node's own stream-headed composite), reusing the node's scratch buffers.
// With the spatial index active the node's per-batch staged composite is
// used when PrepareBatch ran for this batch; un-staged calls (direct Block
// users outside the pipeline) conservatively carry every indexed wake, so
// they are exactly the unindexed path. idx otherwise only identifies the
// batch — synthesis is a pure function of (t0, n) and the node's sequential
// noise stream.
func (s *Synthetic) Block(node, idx int, t0 float64, n int) []sensor.Sample {
	ns := &s.nodes[node]
	model := s.model
	if s.perNode {
		model = ns.model
		if s.index != nil && len(s.boxed) > 0 {
			if s.preparedFor == int64(idx) {
				model = ns.batch
			} else {
				ns.batch = append(ns.batch[:0], ns.model...)
				for _, bm := range s.boxed {
					ns.batch = append(ns.batch, bm)
				}
				model = ns.batch
			}
		}
	}
	return ns.sens.SampleBlock(model, t0, n, &ns.bufs)
}

// PrepareBatch implements BatchPreparer: once per batch, serially, it
// queries the spatial index for each region-boundable wake and stages every
// node's active composite for the parallel Block fan-out. The per-cell
// predicate evaluates the wake's BoundsBox over the cell inflated by the
// drift padding, over the same slack-padded window and against the same
// inflated thresholds the sensor's own per-block cull uses — so a node the
// index drops is provably one whose sensor would have culled the wake
// anyway, and indexed synthesis stays bit-identical to unindexed.
func (s *Synthetic) PrepareBatch(idx int, t0 float64, n int) {
	if s.index == nil || len(s.boxed) == 0 {
		return
	}
	for i := range s.nodes {
		ns := &s.nodes[i]
		ns.batch = append(ns.batch[:0], ns.model...)
	}
	t1 := t0 + float64(n-1)/s.rate
	w0, w1 := t0-sensor.CullSlackTime, t1+sensor.CullSlackTime
	pad := s.driftPad
	for _, bm := range s.boxed {
		bm := bm
		s.queryBuf = s.index.QueryRegion(func(cmin, cmax geo.Vec2) bool {
			lo := geo.Vec2{X: cmin.X - pad, Y: cmin.Y - pad}
			hi := geo.Vec2{X: cmax.X + pad, Y: cmax.Y + pad}
			ba, bs := bm.BoundsBox(lo, hi, w0, w1)
			return ba*sensor.CullSlackFactor > s.cull.Accel ||
				bs*sensor.CullSlackFactor > s.cull.Slope
		}, s.queryBuf[:0])
		for _, node := range s.queryBuf {
			ns := &s.nodes[node]
			ns.batch = append(ns.batch, bm)
		}
		s.idxSelected += int64(len(s.queryBuf))
		s.idxOffered += int64(len(s.nodes))
	}
	s.preparedFor = int64(idx)
}

// AddSource implements Appender: the model superposes linearly, so ship
// wakes (or any surface disturbance) stack onto the ambient sea. Call only
// between pipeline runs — blocks synthesized after the call see the new
// source. In spectral mode the model is appended to every node's composite
// (each node owns its model so its spectral stream can head it), except
// that with the spatial index active, region-boundable wakes are instead
// routed through the index: PrepareBatch adds them only to the nodes their
// region bound can reach each batch.
func (s *Synthetic) AddSource(m sensor.SurfaceModel) {
	s.model = append(s.model, m)
	if !s.perNode {
		return
	}
	s.preparedFor = -1 // staged batch composites no longer cover the model set
	if s.index != nil {
		if bm, ok := m.(sensor.RegionBoundedModel); ok {
			s.boxed = append(s.boxed, bm)
			return
		}
	}
	for i := range s.nodes {
		s.nodes[i].model = append(s.nodes[i].model, m)
	}
}

// SynthesisStats reports the spectral mode's culling effectiveness: how
// many spectral components the amplitude budget dropped (with the summed
// amplitudes of everything dropped), and how many per-node wake-block
// evaluations the sensors skipped out of how many they checked. All zeros
// in phasor mode.
type SynthesisStats struct {
	Mode              SynthesisMode
	ActiveComponents  int
	CulledComponents  int
	CulledAccelSum    float64 // m/s²
	CulledSlopeSum    float64 // dimensionless
	WakeBlocksSkipped int64
	WakeBlocksChecked int64
	// Spatial-index effectiveness: of the node×wake block evaluations the
	// index was offered, how many it let through (selected). The selected
	// fraction is the index hit rate — low is good, it means most nodes
	// never even see an active wake's bound check.
	IndexedWakes      int
	IndexNodeBlocks   int64 // selected: node-blocks that carried an indexed wake
	IndexNodesOffered int64 // offered: node-blocks the index filtered
}

// IndexHitRate returns IndexNodeBlocks / IndexNodesOffered, the fraction of
// node-blocks the spatial index let through to the per-block bound check
// (0 when the index never filtered anything).
func (st SynthesisStats) IndexHitRate() float64 {
	if st.IndexNodesOffered == 0 {
		return 0
	}
	return float64(st.IndexNodeBlocks) / float64(st.IndexNodesOffered)
}

// SynthesisStats aggregates culling counters across the plan and all node
// sensors. Call it between pipeline runs (it reads per-node state the
// workers mutate during a batch).
func (s *Synthetic) SynthesisStats() SynthesisStats {
	st := SynthesisStats{Mode: s.mode}
	if s.plan != nil {
		st.ActiveComponents = s.plan.NumComponents()
		st.CulledComponents, st.CulledAccelSum, st.CulledSlopeSum = s.plan.CulledComponents()
	}
	for i := range s.nodes {
		skipped, checked := s.nodes[i].sens.CullStats()
		st.WakeBlocksSkipped += skipped
		st.WakeBlocksChecked += checked
	}
	st.IndexedWakes = len(s.boxed)
	st.IndexNodeBlocks = s.idxSelected
	st.IndexNodesOffered = s.idxOffered
	return st
}
