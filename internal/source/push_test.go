package source

import (
	"testing"

	"github.com/sid-wsn/sid/internal/sensor"
)

func pushSamples(n int, t0, rate float64, base int16) []sensor.Sample {
	out := make([]sensor.Sample, n)
	for i := range out {
		out[i] = sensor.Sample{T: t0 + float64(i)/rate, X: base + int16(i), Y: 2, Z: 3}
	}
	return out
}

func TestPushValidation(t *testing.T) {
	if _, err := NewPush(0, 1024, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPush(50, 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewPush(50, 1024, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	p, err := NewPush(50, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 50 || p.Scale() != 1024 || p.NumNodes() != 2 {
		t.Errorf("accessors: rate=%g scale=%g nodes=%d", p.Rate(), p.Scale(), p.NumNodes())
	}
	if err := p.Append(5, pushSamples(1, 0, 50, 0)); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := p.Append(0, nil); err != nil {
		t.Errorf("empty append must be a silent no-op, got %v", err)
	}
}

// TestPushBlockMirrorsTrace pins Push's replay semantics: samples are
// served by global index with times recomputed from the batch clock, and
// consumed samples are dropped.
func TestPushBlockMirrorsTrace(t *testing.T) {
	const rate = 50.0
	p, err := NewPush(rate, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append(0, pushSamples(25, 0, rate, 0)); err != nil {
		t.Fatal(err)
	}
	blk := p.Block(0, 0, 0, 25)
	if len(blk) != 25 {
		t.Fatalf("block of %d, want 25", len(blk))
	}
	for i, s := range blk {
		if s.X != int16(i) || s.T != float64(i)/rate {
			t.Fatalf("sample %d: %+v", i, s)
		}
	}

	// Next chunk continues the stream; the consumed window is droppable.
	if err := p.Append(0, pushSamples(25, 0.5, rate, 25)); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 50 {
		t.Errorf("pending %d, want 50 (nothing dropped until the next Block)", p.Pending())
	}
	blk = p.Block(0, 25, 0.5, 25)
	if len(blk) != 25 || blk[0].X != 25 || blk[0].T != 0.5 {
		t.Fatalf("second block: len=%d first=%+v", len(blk), blk[0])
	}
	if p.Pending() != 25 {
		t.Errorf("pending %d after consuming block, want 25", p.Pending())
	}

	// A gap or an overlap is a stream error, not a silent misalignment.
	if err := p.Append(0, pushSamples(5, 1.5, rate, 0)); err == nil {
		t.Error("gapped append accepted")
	}
	if err := p.Append(0, pushSamples(5, 0.9, rate, 0)); err == nil {
		t.Error("overlapping append accepted")
	}

	// Asking past the buffered window serves what exists, nothing more.
	if err := p.Append(0, pushSamples(10, 1.0, rate, 50)); err != nil {
		t.Fatal(err)
	}
	blk = p.Block(0, 50, 1.0, 25)
	if len(blk) != 10 {
		t.Errorf("partial window served %d, want 10", len(blk))
	}
	if blk = p.Block(0, 75, 1.5, 25); blk != nil {
		t.Errorf("exhausted window served %d samples", len(blk))
	}
}

// TestPushLateStart pins the Trace-like behavior for a stream whose first
// sample arrives mid-run: earlier blocks are silent, the stream then
// serves from its pinned global start index.
func TestPushLateStart(t *testing.T) {
	const rate = 50.0
	p, err := NewPush(rate, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append(0, pushSamples(25, 10, rate, 0)); err != nil {
		t.Fatal(err)
	}
	if blk := p.Block(0, 0, 0, 25); blk != nil {
		t.Errorf("pre-start block served %d samples", len(blk))
	}
	blk := p.Block(0, 500, 10, 25)
	if len(blk) != 25 || blk[0].T != 10 {
		t.Fatalf("late stream: len=%d first=%+v", len(blk), blk)
	}
}
